// cache_speedup — measures the tentpole claim of the content-addressed
// result cache (scenario/result_cache.h): a warm cache answers repeated
// scenarios without recomputing, and run_sweep shares one evaluation across
// every grid point of a canonical equivalence class.
//
// Two workloads:
//   * warm-batch: N renamed copies of the most expensive Table 1 scenario
//     through run_batch — cold (no cache) vs warm (store pre-warmed, every
//     copy served as a hit).
//   * sweep-shared: the registered sweep/table1-grid (96 points, clean
//     policy-none lane, 6 canonical classes) through run_sweep — cold
//     (plain Runner) vs cross-point sharing (cache-armed Runner, a FRESH
//     cache per repeat, so the number measures sharing, not reuse across
//     repeats).
//
// Every row carries a `parity` boolean: the cached/shared frames were
// compared bit-identically against the cold frames, per slot and metric,
// and the cached path re-run at engine/batch threads {1, 0} with identical
// results, before the row was emitted.  `--json FILE` writes the committed
// BENCH_cache.json artefact via the shared bench/bench_json.h contract.
//
//   ./cache_speedup [--repeat N] [--json FILE]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "bench_json.h"
#include "scenario/registry.h"
#include "scenario/result_cache.h"
#include "scenario/runner.h"
#include "scenario/sink.h"
#include "scenario/sweep.h"
#include "support/ascii.h"
#include "support/cli.h"

namespace {

using Clock = std::chrono::steady_clock;
using arsf::scenario::CacheStats;
using arsf::scenario::CollectingSink;
using arsf::scenario::ResultCache;
using arsf::scenario::Runner;
using arsf::scenario::RunnerOptions;
using arsf::scenario::Scenario;
using arsf::scenario::ScenarioResult;
using arsf::scenario::SweepSpec;

double seconds_since(const Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Slot-by-slot bit-identical metric comparison (keys, order and values).
bool identical_metrics(const std::vector<ScenarioResult>& a,
                       const std::vector<ScenarioResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a[i].ok() || !b[i].ok()) return false;
    if (a[i].metrics.size() != b[i].metrics.size()) return false;
    for (std::size_t m = 0; m < a[i].metrics.size(); ++m) {
      if (a[i].metrics[m].key != b[i].metrics[m].key) return false;
      if (a[i].metrics[m].value != b[i].metrics[m].value) return false;
    }
  }
  return true;
}

struct WorkloadResult {
  bool ok = false;
  bool parity = false;
  double cold_seconds = 0.0;
  double cached_seconds = 0.0;
  std::uint64_t fresh_evaluations = 0;  ///< frames NOT served from cache
};

/// Workload A: a batch of @p copies renamed clones of @p scenario, cold vs
/// against a pre-warmed store.
WorkloadResult run_warm_batch(const Scenario& scenario, std::size_t copies, int repeat) {
  WorkloadResult out;
  std::vector<Scenario> batch;
  for (std::size_t i = 0; i < copies; ++i) {
    Scenario copy = scenario;
    copy.name = scenario.name + "/copy-" + std::to_string(i);
    batch.push_back(std::move(copy));
  }

  const Runner cold_runner;
  std::vector<ScenarioResult> cold;
  out.cold_seconds = 1e300;
  for (int r = 0; r < repeat; ++r) {
    const auto start = Clock::now();
    cold = cold_runner.run_batch(std::span<const Scenario>{batch});
    out.cold_seconds = std::min(out.cold_seconds, seconds_since(start));
  }
  for (const ScenarioResult& result : cold) {
    if (!result.ok()) {
      std::fprintf(stderr, "warm-batch cold: %s: %s\n", result.scenario.c_str(),
                   result.error.c_str());
      return out;
    }
  }

  ResultCache cache;
  RunnerOptions options;
  options.cache = &cache;
  const Runner warm_runner{options};
  if (!warm_runner.run(batch.front()).ok()) return out;  // pre-warm the store

  std::vector<ScenarioResult> warm;
  out.cached_seconds = 1e300;
  for (int r = 0; r < repeat; ++r) {
    const auto start = Clock::now();
    warm = warm_runner.run_batch(std::span<const Scenario>{batch});
    out.cached_seconds = std::min(out.cached_seconds, seconds_since(start));
  }
  out.parity = identical_metrics(warm, cold);
  for (const ScenarioResult& result : warm) {
    if (!result.from_cache) ++out.fresh_evaluations;
  }

  // Thread-count invariance half of the parity bit: the warm batch forced
  // serial must be bit-identical too.
  RunnerOptions serial = options;
  serial.num_threads = 1;
  const std::vector<ScenarioResult> warm_serial =
      Runner{serial}.run_batch(std::span<const Scenario>{batch});
  out.parity = out.parity && identical_metrics(warm_serial, cold);

  out.ok = true;
  return out;
}

/// Workload B: the whole sweep, cold (plain Runner) vs cross-point sharing
/// (cache-armed Runner, fresh cache each repeat).
WorkloadResult run_shared_sweep(const SweepSpec& spec, int repeat) {
  WorkloadResult out;

  const Runner cold_runner;
  CollectingSink cold;
  out.cold_seconds = 1e300;
  for (int r = 0; r < repeat; ++r) {
    CollectingSink sink;
    const auto start = Clock::now();
    arsf::scenario::run_sweep(spec, cold_runner, sink);
    out.cold_seconds = std::min(out.cold_seconds, seconds_since(start));
    cold = std::move(sink);
  }
  for (const ScenarioResult& result : cold.results()) {
    if (!result.ok()) {
      std::fprintf(stderr, "sweep cold: %s: %s\n", result.scenario.c_str(),
                   result.error.c_str());
      return out;
    }
  }

  CollectingSink shared;
  out.cached_seconds = 1e300;
  for (int r = 0; r < repeat; ++r) {
    ResultCache cache;  // fresh per repeat: measure sharing, not reuse
    RunnerOptions options;
    options.cache = &cache;
    const Runner runner{options};
    CollectingSink sink;
    const auto start = Clock::now();
    arsf::scenario::run_sweep(spec, runner, sink);
    out.cached_seconds = std::min(out.cached_seconds, seconds_since(start));
    shared = std::move(sink);
  }
  out.parity = identical_metrics(shared.results(), cold.results());
  for (const ScenarioResult& result : shared.results()) {
    if (!result.from_cache) ++out.fresh_evaluations;
  }

  // Batch-thread invariance: the shared sweep forced serial must be
  // bit-identical too.
  {
    ResultCache cache;
    RunnerOptions options;
    options.cache = &cache;
    options.num_threads = 1;
    CollectingSink serial;
    arsf::scenario::run_sweep(spec, Runner{options}, serial);
    out.parity = out.parity && identical_metrics(serial.results(), cold.results());
  }

  out.ok = true;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const arsf::support::ArgParser args{argc, argv};
  const auto repeat = static_cast<int>(args.get_int("repeat", 5));
  const std::string json_path = args.get_string("json", "");
  constexpr double kAcceptanceFloor = 5.0;
  constexpr std::size_t kCopies = 12;

  // The most expensive Table 1 scenario by world count, resolved from the
  // registry — the same acceptance workload the fused bench uses.
  const auto table1 = arsf::scenario::registry().match("table1/");
  const Scenario* largest = nullptr;
  for (const Scenario* scenario : table1) {
    if (largest == nullptr ||
        arsf::scenario::estimated_worlds(*scenario) > arsf::scenario::estimated_worlds(*largest)) {
      largest = scenario;
    }
  }
  if (largest == nullptr) {
    std::fprintf(stderr, "no table1/ scenarios registered\n");
    return 1;
  }
  const SweepSpec& grid = arsf::scenario::registry().sweep_at("sweep/table1-grid");

  std::printf("cache_speedup — content-addressed result cache\n");
  std::printf("warm-batch workload: %zu copies of %s (%llu worlds); sweep workload: %s "
              "(%llu points); repeat=%d\n\n",
              kCopies, largest->name.c_str(),
              static_cast<unsigned long long>(arsf::scenario::estimated_worlds(*largest)),
              grid.name.c_str(), static_cast<unsigned long long>(grid.size()), repeat);

  struct RowSpec {
    const char* label;
    WorkloadResult result;
    std::uint64_t slots;
  };
  std::vector<RowSpec> rows;
  rows.push_back({"warm-batch", run_warm_batch(*largest, kCopies, repeat),
                  static_cast<std::uint64_t>(kCopies)});
  rows.push_back({"sweep-shared", run_shared_sweep(grid, repeat), grid.size()});

  arsf::bench::BenchReport report{"cache_speedup"};
  arsf::support::TextTable table{
      {"workload", "slots", "fresh", "cold ms", "cached ms", "speedup", "parity"}};
  bool all_ok = true;
  bool all_parity = true;
  bool all_above_floor = true;

  for (const RowSpec& row : rows) {
    if (!row.result.ok) {
      all_ok = false;
      continue;
    }
    const double speedup = row.result.cold_seconds / row.result.cached_seconds;
    all_parity = all_parity && row.result.parity;
    all_above_floor = all_above_floor && speedup >= kAcceptanceFloor;

    table.add_row({row.label, std::to_string(row.slots),
                   std::to_string(row.result.fresh_evaluations),
                   arsf::support::format_number(row.result.cold_seconds * 1e3, 2),
                   arsf::support::format_number(row.result.cached_seconds * 1e3, 2),
                   arsf::support::format_number(speedup, 2),
                   row.result.parity ? "yes" : "NO"});

    auto& fields = report.add_row();
    fields.text("workload", row.label);
    fields.number("slots", row.slots);
    fields.number("fresh_evaluations", row.result.fresh_evaluations);
    fields.number("cold_ms", row.result.cold_seconds * 1e3);
    fields.number("cached_ms", row.result.cached_seconds * 1e3);
    fields.number("speedup", speedup);
    fields.boolean("parity", row.result.parity);
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("acceptance floor: %.1fx per workload — %s\n", kAcceptanceFloor,
              all_above_floor ? "met" : "NOT met");

  report.summary().text("batch_workload", largest->name);
  report.summary().text("sweep_workload", grid.name);
  report.summary().number("repeat", std::uint64_t{static_cast<unsigned>(repeat)});
  report.summary().number("acceptance_floor", kAcceptanceFloor);
  report.summary().boolean("all_above_floor", all_above_floor);
  report.summary().boolean("all_parity", all_parity);
  report.write_if_requested(json_path);

  return (all_ok && all_parity) ? 0 : 1;
}
