// Reproduces Table I of the paper: expected fusion-interval width under the
// Ascending vs the Descending communication schedule, for eight (widths, fa)
// configurations, by exhaustive enumeration of all measurement combinations
// on the integer grid (the paper's own methodology, Section IV-A).
//
// The configurations come from the scenario registry ("fused/table1/"
// family — the 3-member fused twins of the Table 1 scenarios, one world pass
// per scenario for expected width + width histogram + detection rate, every
// metric bit-identical to the standalone analyses) and run as one concurrent
// batch through the scenario Runner; the CSV output is the unified
// long-format report.  --standalone falls back to the unfused "table1/"
// family for A/B comparisons.
//
//   ./table1_schedule_comparison [--csv out.csv] [--rows 8] [--threads N]
//                                [--standalone]

#include <chrono>
#include <cstdio>
#include <optional>

#include "scenario/registry.h"
#include "scenario/report.h"
#include "scenario/runner.h"
#include "scenario/sink.h"
#include "sim/experiment.h"
#include "support/ascii.h"
#include "support/cli.h"

namespace {

std::string widths_text(const std::vector<double>& widths) {
  std::string text = "{";
  for (std::size_t i = 0; i < widths.size(); ++i) {
    if (i) text += ",";
    text += arsf::support::format_number(widths[i], 0);
  }
  return text + "}";
}

}  // namespace

int main(int argc, char** argv) {
  using Clock = std::chrono::steady_clock;
  const arsf::support::ArgParser args{argc, argv};
  const auto max_rows = static_cast<std::size_t>(args.get_int("rows", 8));
  const std::string csv_path = args.get_string("csv", "");
  const auto threads = static_cast<unsigned>(args.get_int("threads", 0));
  const bool standalone = args.has("standalone");

  // Both families register ascending/descending pairs in row order; the
  // fused twins deliver the same metrics (plus histogram bins) in ONE world
  // pass per scenario instead of one pass per analysis.
  const auto scenarios =
      arsf::scenario::registry().match(standalone ? "table1/" : "fused/table1/");
  const std::size_t count = std::min(scenarios.size(), max_rows * 2);
  const auto reference = arsf::sim::paper_table1_reference();

  std::printf("Table I — comparison of sensor communication schedules\n");
  std::printf("E|S| by exhaustive enumeration, f = ceil(n/2)-1, attacked = fa most precise\n");
  std::printf("(%zu scenarios from the registry, one Runner batch%s)\n\n", count,
              standalone ? "" : ", fused 3-member bundles");

  const auto start = Clock::now();
  const arsf::scenario::Runner runner{{.num_threads = threads}};
  // Summary table collects in memory; the optional CSV report streams out
  // row by row as scenarios finish (scenario/sink.h).
  arsf::scenario::TeeSink sink;
  arsf::scenario::CollectingSink collected;
  sink.attach(collected);
  std::optional<arsf::scenario::CsvStreamSink> csv;
  if (!csv_path.empty()) sink.attach(csv.emplace(csv_path));
  runner.run_batch(std::span<const arsf::scenario::Scenario* const>{scenarios.data(), count},
                   sink);
  const auto& results = collected.results();
  const double seconds = std::chrono::duration<double>(Clock::now() - start).count();

  arsf::support::TextTable table{{"config", "E|S| Asc", "E|S| Desc", "paper Asc", "paper Desc",
                                  "E|S| clean", "worlds", "detect"}};
  for (std::size_t row = 0; row * 2 + 1 < count; ++row) {
    const auto& ascending = results[row * 2];
    const auto& descending = results[row * 2 + 1];
    const auto& scenario = *scenarios[row * 2];
    if (!ascending.ok() || !descending.ok()) {
      std::fprintf(stderr, "row %zu failed: %s%s\n", row, ascending.error.c_str(),
                   descending.error.c_str());
      return 1;
    }
    const std::string config_text = "n=" + std::to_string(scenario.n()) +
                                    ", fa=" + std::to_string(scenario.fa) +
                                    ", L=" + widths_text(scenario.widths);
    const double detected = ascending.metric("detected_worlds") +
                            descending.metric("detected_worlds");
    table.add_row({config_text,
                   arsf::support::format_number(ascending.metric("expected_width"), 2),
                   arsf::support::format_number(descending.metric("expected_width"), 2),
                   arsf::support::format_number(reference[row].ascending, 2),
                   arsf::support::format_number(reference[row].descending, 2),
                   arsf::support::format_number(ascending.metric("expected_width_no_attack"), 2),
                   arsf::support::format_number(ascending.metric("worlds"), 0),
                   arsf::support::format_number(detected, 0)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("batch wall-clock: %s s\n\n", arsf::support::format_number(seconds, 2).c_str());

  if (csv) {
    std::printf("unified report: %s (%zu entries, streamed)\n", csv_path.c_str(),
                csv->entries());
  }

  std::printf("Shape checks (paper's claims): Descending >= Ascending on every row;\n");
  std::printf("gaps grow when interval widths differ strongly; zero detection events.\n");
  return 0;
}
