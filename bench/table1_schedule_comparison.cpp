// Reproduces Table I of the paper: expected fusion-interval width under the
// Ascending vs the Descending communication schedule, for eight (widths, fa)
// configurations, by exhaustive enumeration of all measurement combinations
// on the integer grid (the paper's own methodology, Section IV-A).
//
// The attacker compromises the fa most precise sensors (Theorem 4's
// strongest choice; width ties resolved in her favour) and plays the
// Bayesian expectation-maximising policy of problem (2); when her slots come
// last she has full knowledge and the policy solves problem (1) exactly.
//
//   ./table1_schedule_comparison [--csv out.csv] [--rows 8]

#include <chrono>
#include <cstdio>

#include "sim/experiment.h"
#include "support/ascii.h"
#include "support/cli.h"
#include "support/csv.h"

namespace {

std::string widths_text(const std::vector<double>& widths) {
  std::string text = "{";
  for (std::size_t i = 0; i < widths.size(); ++i) {
    if (i) text += ",";
    text += arsf::support::format_number(widths[i], 0);
  }
  return text + "}";
}

}  // namespace

int main(int argc, char** argv) {
  using Clock = std::chrono::steady_clock;
  const arsf::support::ArgParser args{argc, argv};
  const auto max_rows = static_cast<std::size_t>(args.get_int("rows", 8));
  const std::string csv_path = args.get_string("csv", "");

  const auto configs = arsf::sim::paper_table1_configs();
  const auto reference = arsf::sim::paper_table1_reference();

  std::printf("Table I — comparison of sensor communication schedules\n");
  std::printf("E|S| by exhaustive enumeration, f = ceil(n/2)-1, attacked = fa most precise\n\n");

  arsf::support::TextTable table{{"config", "E|S| Asc", "E|S| Desc", "paper Asc", "paper Desc",
                                  "E|S| clean", "worlds", "detect", "sec"}};
  std::unique_ptr<arsf::support::CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<arsf::support::CsvWriter>(csv_path);
    csv->write_row({"n", "fa", "widths", "ascending", "descending", "paper_ascending",
                    "paper_descending", "no_attack", "worlds"});
  }

  for (std::size_t i = 0; i < configs.size() && i < max_rows; ++i) {
    const auto& [widths, fa] = configs[i];
    const auto start = Clock::now();
    const arsf::sim::Table1Row row = arsf::sim::compare_schedules(widths, fa);
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();

    const std::string config_text = "n=" + std::to_string(widths.size()) +
                                    ", fa=" + std::to_string(fa) + ", L=" + widths_text(widths);
    table.add_row({config_text, arsf::support::format_number(row.e_ascending, 2),
                   arsf::support::format_number(row.e_descending, 2),
                   arsf::support::format_number(reference[i].ascending, 2),
                   arsf::support::format_number(reference[i].descending, 2),
                   arsf::support::format_number(row.e_no_attack, 2),
                   std::to_string(row.worlds), std::to_string(row.detected),
                   arsf::support::format_number(seconds, 2)});
    if (csv) {
      csv->write_row({std::to_string(widths.size()), std::to_string(fa), widths_text(widths),
                      arsf::support::format_number(row.e_ascending, 6),
                      arsf::support::format_number(row.e_descending, 6),
                      arsf::support::format_number(reference[i].ascending, 2),
                      arsf::support::format_number(reference[i].descending, 2),
                      arsf::support::format_number(row.e_no_attack, 6),
                      std::to_string(row.worlds)});
    }
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("Shape checks (paper's claims): Descending >= Ascending on every row;\n");
  std::printf("gaps grow when interval widths differ strongly; zero detection events.\n");
  return 0;
}
