// Worst-case fast-lane speedup bench: the exhaustive oracle
// (worst_case_fusion / worst_case_over_sets) vs the run-batched lane
// (sim/engine/attacked_lane.h) on the registered worst-case workloads,
// single-threaded so the number is the lane's algorithmic win, not fan-out.
//
// Workloads:
//   * stress/worstcase-over-sets — the over-all-subsets stress scenario
//     (widths {2,2,3,4,5}, fa=2, every C(5,2) subset searched);
//   * every fig4/ family (fixed smallest-widths attacked set);
//   * the fig4 families on a step-0.25 grid (radices x4: the regime where
//     digit runs amortise best, mirroring the clean lane's scaling).
//
// Both paths are also cross-checked per workload; a mismatch fails the
// bench.  --json FILE additionally emits the rows as machine-readable data
// (bench/bench_json.h — the shared bench flag).
//
//   ./worstcase_fast_speedup [--repeat N] [--json FILE]

#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "bench_timing.h"
#include "scenario/analysis.h"
#include "scenario/registry.h"
#include "sim/worstcase.h"
#include "support/ascii.h"
#include "support/cli.h"

namespace {

using arsf::bench::ms_text;
using arsf::bench::ratio_text;
using arsf::bench::time_best_of;

}  // namespace

int main(int argc, char** argv) {
  const arsf::support::ArgParser args{argc, argv};
  const auto repeat = static_cast<int>(args.get_int("repeat", 5));
  const std::string json_path = args.get_string("json", "");

  std::printf("Worst-case fast lane vs oracle (single-threaded, best of %d)\n\n", repeat);
  arsf::support::TextTable table{
      {"workload", "configurations", "oracle ms", "fast ms", "speedup", "parity"}};
  arsf::bench::BenchReport report{"worstcase_fast_speedup"};
  bool all_match = true;
  bool stress_ok = false;

  struct FixedSetCase {
    std::string label;
    arsf::sim::WorstCaseConfig config;
  };
  std::vector<FixedSetCase> cases;

  const auto& registry = arsf::scenario::registry();
  for (const auto* scenario : registry.match("fig4/")) {
    for (const double step : {1.0, 0.25}) {
      const arsf::SystemConfig system = scenario->system();
      FixedSetCase entry;
      entry.label = scenario->name + (step == 1.0 ? "" : "/step=0.25");
      entry.config.widths = arsf::tick_widths(system, arsf::Quantizer{step});
      entry.config.f = system.f;
      entry.config.attacked = arsf::scenario::resolve_attacked(
          *scenario, system, arsf::sched::ascending_order(system));
      entry.config.num_threads = 1;
      cases.push_back(std::move(entry));
    }
  }

  for (const FixedSetCase& entry : cases) {
    arsf::sim::WorstCaseResult oracle;
    arsf::sim::WorstCaseResult fast;
    const double oracle_s =
        time_best_of(repeat, [&] { oracle = arsf::sim::worst_case_fusion(entry.config); });
    const double fast_s =
        time_best_of(repeat, [&] { fast = arsf::sim::worst_case_fusion_fast(entry.config); });
    const bool match = oracle.max_width == fast.max_width && oracle.argmax == fast.argmax &&
                       oracle.configurations == fast.configurations;
    all_match &= match;
    table.add_row({entry.label, std::to_string(oracle.configurations), ms_text(oracle_s),
                   ms_text(fast_s), ratio_text(oracle_s / fast_s), match ? "OK" : "MISMATCH"});

    auto& row = report.add_row();
    row.text("workload", entry.label);
    row.number("configurations", oracle.configurations);
    row.number("oracle_ms", oracle_s * 1e3);
    row.number("fast_ms", fast_s * 1e3);
    row.number("speedup", oracle_s / fast_s);
    row.boolean("parity", match);
  }

  {
    // The over-all-sets stress workload — the ROADMAP acceptance target
    // (>= 3x single-threaded) is measured here.
    const auto& scenario = registry.at("stress/worstcase-over-sets");
    const arsf::SystemConfig system = scenario.system();
    const std::vector<arsf::Tick> widths =
        arsf::tick_widths(system, arsf::Quantizer{scenario.step});
    arsf::Tick oracle = 0;
    arsf::Tick fast = 0;
    std::vector<arsf::SensorId> oracle_set;
    std::vector<arsf::SensorId> fast_set;
    const double oracle_s = time_best_of(repeat, [&] {
      oracle = arsf::sim::worst_case_over_sets(widths, system.f, scenario.fa, &oracle_set, 1);
    });
    const double fast_s = time_best_of(repeat, [&] {
      fast = arsf::sim::worst_case_over_sets_fast(widths, system.f, scenario.fa, &fast_set, 1);
    });
    const bool match = oracle == fast && oracle_set == fast_set;
    all_match &= match;
    const double speedup = oracle_s / fast_s;
    stress_ok = speedup >= 3.0;
    table.add_row({scenario.name, "10 subsets", ms_text(oracle_s), ms_text(fast_s),
                   ratio_text(speedup), match ? "OK" : "MISMATCH"});

    auto& row = report.add_row();
    row.text("workload", scenario.name);
    row.number("subsets", std::uint64_t{10});
    row.number("oracle_ms", oracle_s * 1e3);
    row.number("fast_ms", fast_s * 1e3);
    row.number("speedup", speedup);
    row.boolean("parity", match);
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("parity on every workload: %s\n", all_match ? "PASS" : "FAIL");
  std::printf("over-all-sets stress workload speedup >= 3x: %s\n",
              stress_ok ? "PASS" : "FAIL");

  auto& summary = report.summary();
  summary.boolean("parity", all_match);
  summary.boolean("stress_speedup_ge_3x", stress_ok);
  report.write_if_requested(json_path);

  return all_match && stress_ok ? 0 : 1;
}
