// Ablation A — attacker policy strength per schedule.
//
// DESIGN.md calls out the attacker model as the main modelling choice in the
// Table I reproduction.  This bench quantifies it: for a fixed configuration
// it computes the exact expected fusion width (exhaustive enumeration) under
// each built-in policy, per schedule, plus the cheating oracle upper bound.
// The expectation-maximising policy must dominate every honest policy and be
// dominated by the oracle; the schedule gap (Descending - Ascending) shows
// how much of the attacker's power each policy actually uses.

#include <cstdio>

#include "sim/enumerate.h"
#include "support/ascii.h"

namespace {

double run(const arsf::SystemConfig& system, const arsf::sched::Order& order,
           arsf::attack::AttackPolicy* policy, bool oracle, std::uint64_t* detected) {
  arsf::sim::EnumerateConfig config;
  config.system = system;
  config.order = order;
  config.attacked = arsf::sched::choose_attacked_set(
      system, order, 1, arsf::sched::AttackedSetRule::kSmallestWidths);
  config.policy = policy;
  config.oracle = oracle;
  const auto result = arsf::sim::enumerate_expected_width(config);
  if (detected != nullptr) *detected += result.detected_worlds;
  return result.expected_width;
}

}  // namespace

int main() {
  const arsf::SystemConfig system = arsf::make_config({5.0, 11.0, 17.0});
  std::printf("Ablation A — attacker policy strength (n=3, L={5,11,17}, fa=1, exact E|S|)\n\n");

  struct Entry {
    const char* label;
    std::unique_ptr<arsf::attack::AttackPolicy> policy;
    bool oracle;
  };
  std::vector<Entry> entries;
  entries.push_back({"correct (benign)", std::make_unique<arsf::attack::CorrectPolicy>(), false});
  entries.push_back({"random-feasible", std::make_unique<arsf::attack::RandomFeasiblePolicy>(),
                     false});
  entries.push_back({"shift-right", std::make_unique<arsf::attack::ShiftPolicy>(
                                        arsf::attack::ShiftPolicy::Side::kRight),
                     false});
  entries.push_back({"shift-alternate", std::make_unique<arsf::attack::ShiftPolicy>(
                                            arsf::attack::ShiftPolicy::Side::kAlternate),
                     false});
  entries.push_back({"expectation (paper)", arsf::attack::make_expectation_policy(), false});
  entries.push_back({"oracle (upper bound)", arsf::attack::make_oracle_policy(), true});

  arsf::support::TextTable table{{"policy", "E|S| Asc", "E|S| Desc", "gap", "detections"}};
  double expectation_desc = 0.0;
  double oracle_desc = 0.0;
  for (auto& entry : entries) {
    std::uint64_t detected = 0;
    const double ascending =
        run(system, arsf::sched::ascending_order(system), entry.policy.get(), entry.oracle,
            &detected);
    entry.policy->reset();
    const double descending =
        run(system, arsf::sched::descending_order(system), entry.policy.get(), entry.oracle,
            &detected);
    if (std::string(entry.label).rfind("expectation", 0) == 0) expectation_desc = descending;
    if (std::string(entry.label).rfind("oracle", 0) == 0) oracle_desc = descending;
    table.add_row({entry.label, arsf::support::format_number(ascending, 3),
                   arsf::support::format_number(descending, 3),
                   arsf::support::format_number(descending - ascending, 3),
                   std::to_string(detected)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Checks: expectation dominates the heuristics; with full information\n");
  std::printf("(Descending, attacker last) expectation == oracle: %s\n",
              std::abs(expectation_desc - oracle_desc) < 1e-9 ? "PASS" : "FAIL");
  return 0;
}
