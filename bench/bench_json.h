#pragma once
// Shared machine-readable output for the bench binaries.
//
// Every speedup bench prints a human TextTable; CI and the repo's committed
// BENCH_*.json artefacts want the same numbers as data.  A bench collects
// one BenchRow per workload plus top-level summary fields and calls
// write_if_requested(path) with its `--json FILE` argument — no file is
// touched when the flag is absent.  Output is one pretty-stable JSON object:
//
//   {"bench":"<name>","rows":[{...},...],"summary":{...}}
//
// Values are emitted as numbers (round-trip doubles / exact uint64),
// booleans, or escaped strings, in insertion order, so diffs of committed
// artefacts stay readable.
//
// Deliberately NOT built on scenario/json.h's JsonBuilder: that writer
// targets the repo's own round-trip parser, which rejects \uXXXX escapes,
// so it must keep its restricted escape set — while this output is consumed
// by standard JSON parsers (CI, python -m json.tool) and therefore must
// \u-escape every control character.  The two escape rules differ by
// contract, not by accident.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace arsf::bench {

class JsonFields {
 public:
  void text(const std::string& key, const std::string& value) {
    add(key, "\"" + escape(value) + "\"");
  }
  void number(const std::string& key, double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    add(key, buffer);
  }
  void number(const std::string& key, std::uint64_t value) {
    add(key, std::to_string(value));
  }
  void boolean(const std::string& key, bool value) { add(key, value ? "true" : "false"); }

  [[nodiscard]] std::string render() const {
    std::string body;
    for (const auto& [key, value] : fields_) {
      if (!body.empty()) body += ",";
      body += "\"" + escape(key) + "\":" + value;
    }
    return "{" + body + "}";
  }

 private:
  static std::string escape(const std::string& text) {
    std::string out;
    for (const char ch : text) {
      if (ch == '"' || ch == '\\') {
        out += '\\';
        out += ch;
      } else if (static_cast<unsigned char>(ch) < 0x20) {
        // Control characters are invalid raw inside a JSON string.
        char buffer[8];
        std::snprintf(buffer, sizeof buffer, "\\u%04x", static_cast<unsigned char>(ch));
        out += buffer;
      } else {
        out += ch;
      }
    }
    return out;
  }
  void add(const std::string& key, std::string rendered) {
    fields_.emplace_back(key, std::move(rendered));
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

/// One bench invocation's machine-readable report: named rows + a summary.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  /// Adds and returns the next row (stable storage until the next add_row).
  JsonFields& add_row() { return rows_.emplace_back(); }
  JsonFields& summary() { return summary_; }

  [[nodiscard]] std::string render() const {
    std::string rows;
    for (const JsonFields& row : rows_) {
      if (!rows.empty()) rows += ",";
      rows += row.render();
    }
    return "{\"bench\":\"" + name_ + "\",\"rows\":[" + rows +
           "],\"summary\":" + summary_.render() + "}";
  }

  /// Writes render() + '\n' to @p path; no-op when path is empty (the
  /// shared `--json FILE` contract: absent flag, no file).
  void write_if_requested(const std::string& path) const {
    if (path.empty()) return;
    std::ofstream out{path, std::ios::trunc};
    out << render() << '\n';
    out.flush();  // surface buffered write failures (ENOSPC) before the check
    if (!out) throw std::runtime_error("bench --json: cannot write " + path);
    std::fprintf(stderr, "bench json: %s\n", path.c_str());
  }

 private:
  std::string name_;
  std::vector<JsonFields> rows_;
  JsonFields summary_;
};

}  // namespace arsf::bench
