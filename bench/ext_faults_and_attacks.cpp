// Extension experiment — random faults in addition to attacks.
//
// The paper's conclusion announces this as future work: "Since we assumed
// uncompromised sensors always provide correct measurements, an extension of
// this work will introduce random faults in addition to attacks."  This
// bench runs the combined scenario: the stealthy expectation-maximising
// attacker compromises the most precise sensor while every *uncompromised*
// sensor is subject to a random fault process.  Reported per fault rate:
//
//   * containment — how often the fusion interval still holds the truth
//     (the Marzullo guarantee needs actual liars <= f; rounds where
//     faults + attacks exceed f are exactly where containment is lost);
//   * discard rates — faulty sensors are discarded by the non-overlap
//     detector, healthy sensors are not, and the certificate-following
//     attacker is NEVER flagged even when the bus carries faulty intervals.

#include <cstdio>

#include "sim/resilience.h"
#include "support/ascii.h"

int main() {
  arsf::sim::ResilienceConfig base;
  base.system = arsf::make_config({5.0, 8.0, 11.0, 14.0, 17.0});  // n=5, f=2
  base.schedule = arsf::sched::ScheduleKind::kAscending;
  base.fa = 1;
  base.rounds = 8'000;
  base.fault.kind = arsf::sensors::FaultKind::kOffset;
  base.fault.magnitude = 30.0;  // well outside every interval: a hard fault
  base.fault.p_recover = 0.2;

  std::printf("Extension — faults + attacks (n=5, f=2, fa=1 attacked, offset faults on the\n");
  std::printf("uncompromised sensors; %zu rounds per row; Ascending schedule)\n\n", base.rounds);

  arsf::support::TextTable table{{"fault p_enter", "containment", "E|S|", "faulty rounds",
                                  "faulty flagged", "healthy flagged", "attacker flagged",
                                  "over budget"}};

  for (const double p_enter : {0.0, 0.01, 0.05, 0.1, 0.2}) {
    arsf::sim::ResilienceConfig config = base;
    config.fault.p_enter = p_enter;
    arsf::attack::ExpectationPolicy policy;
    config.policy = &policy;
    const auto result = arsf::sim::run_resilience(config);

    const double flagged_rate =
        result.faulty_present
            ? 100.0 * static_cast<double>(result.faulty_flagged) /
                  static_cast<double>(result.faulty_present)
            : 0.0;
    table.add_row({arsf::support::format_number(p_enter, 2),
                   arsf::support::format_number(100.0 * result.containment_rate(), 2) + "%",
                   arsf::support::format_number(result.width.mean(), 2),
                   std::to_string(result.faulty_present),
                   arsf::support::format_number(flagged_rate, 1) + "%",
                   std::to_string(result.healthy_flagged),
                   std::to_string(result.attacked_flagged),
                   std::to_string(result.over_budget)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Checks: containment is 100%% at fault rate 0 and degrades with the number of\n");
  std::printf("over-budget rounds (faults + attacks > f, where Marzullo's guarantee genuinely\n");
  std::printf("ends); hard faults are discarded by the non-overlap detector.  Finding: while\n");
  std::printf("the budget holds, the attacker's stealth certificates survive faults on the\n");
  std::printf("bus — but in over-budget rounds even healthy sensors and the careful attacker\n");
  std::printf("can be flagged, motivating the paper's footnote-1 fault model over time.\n");
  return 0;
}
