// Regenerates Figure 3 of the paper: the two sufficient-condition cases of
// Theorem 1, in which the attacker has an optimal policy even without full
// knowledge.  For each case the harness draws the configuration and
// verifies, by exhaustive enumeration over every admissible completion, that
// the constructed attack matches the full-information optimum (problem (1)).

#include <cstdio>

#include "core/fusion.h"
#include "support/ascii.h"

namespace {

using arsf::Tick;
using arsf::TickInterval;

Tick fused(const std::vector<TickInterval>& intervals, int f) {
  const Tick width = arsf::fused_width_ticks(intervals, f);
  return width > 0 ? width : 0;
}

}  // namespace

int main() {
  std::printf("Figure 3 — the two sufficient-condition cases of Theorem 1\n\n");

  // --------------------------------------------------------------- Case 1
  // All seen correct intervals coincide; unseen intervals small enough that
  // the attacker can guarantee her intervals contain all correct intervals.
  {
    const int f = 2;  // n=5, fa=2
    const std::vector<TickInterval> seen = {{0, 4}, {0, 4}};
    const TickInterval delta{0, 4};
    const Tick attacked_width = 10;
    const Tick slack = (attacked_width - delta.width()) / 2;  // (|mmin|-|S|)/2 = 3
    const TickInterval attack{delta.lo - slack, delta.hi + slack};

    arsf::support::IntervalDiagram diagram{60};
    diagram.add("s1 = s2 (seen)", 0, 4);
    diagram.add("a1 = a2", static_cast<double>(attack.lo), static_cast<double>(attack.hi),
                true);
    std::printf("Case 1: seen intervals coincide; unseen width <= %lld\n%s\n",
                static_cast<long long>(slack), diagram.render().c_str());

    bool optimal_everywhere = true;
    for (Tick w = 1; w <= slack; ++w) {
      for (Tick t = delta.lo; t <= delta.hi; ++t) {
        for (Tick lo = t - w; lo <= t; ++lo) {
          const TickInterval unseen{lo, lo + w};
          const Tick achieved = fused({seen[0], seen[1], unseen, attack, attack}, f);
          Tick best = 0;
          for (Tick lo1 = -16; lo1 <= 10; ++lo1) {
            for (Tick lo2 = -16; lo2 <= 10; ++lo2) {
              const TickInterval a1{lo1, lo1 + attacked_width};
              const TickInterval a2{lo2, lo2 + attacked_width};
              if (!a1.contains(delta) || !a2.contains(delta)) continue;
              best = std::max(best, fused({seen[0], seen[1], unseen, a1, a2}, f));
            }
          }
          optimal_everywhere &= achieved == best;
        }
      }
    }
    std::printf("Case 1 check: the both-sides attack is optimal for every completion -> %s\n\n",
                optimal_everywhere ? "PASS" : "FAIL");
  }

  // --------------------------------------------------------------- Case 2
  // The attacked interval is wide enough to contain both l_{n-f-fa} and
  // u_{n-f-fa}; small unseen intervals cannot move those pinned endpoints.
  {
    const int f = 1;  // n=4, fa=1, |CS| = 2
    const std::vector<TickInterval> seen = {{0, 6}, {2, 8}};
    const TickInterval delta{3, 5};
    const Tick attacked_width = 5;
    const TickInterval attack{1, 6};  // contains [l2, u2] = [2, 6]

    arsf::support::IntervalDiagram diagram{60};
    diagram.add("s1 (seen)", 0, 6);
    diagram.add("s2 (seen)", 2, 8);
    diagram.add("a1", static_cast<double>(attack.lo), static_cast<double>(attack.hi), true);
    std::printf("Case 2: attacked interval pins [l2, u2] = [2, 6]; unseen width <= 1\n%s\n",
                diagram.render().c_str());

    bool optimal_everywhere = true;
    bool always_pinned = true;
    for (Tick t = delta.lo; t <= delta.hi; ++t) {
      for (Tick lo = t - 1; lo <= t; ++lo) {
        const TickInterval unseen{lo, lo + 1};
        const Tick achieved = fused({seen[0], seen[1], unseen, attack}, f);
        Tick best = 0;
        for (Tick alo = -12; alo <= 12; ++alo) {
          best = std::max(best, fused({seen[0], seen[1], unseen,
                                       TickInterval{alo, alo + attacked_width}}, f));
        }
        optimal_everywhere &= achieved == best;
        always_pinned &= achieved == 4;
      }
    }
    std::printf("Case 2 check: pinned fusion interval width 4, optimal everywhere -> %s\n",
                optimal_everywhere && always_pinned ? "PASS" : "FAIL");
  }
  return 0;
}
