// Regenerates Figure 1 of the paper: Marzullo's fusion interval for one
// five-sensor configuration and increasing values of f.  The dashed line
// separates sensor intervals from fusion intervals, as in the paper.

#include <cstdio>

#include "core/fusion.h"
#include "support/ascii.h"

int main() {
  // Five intervals in the spirit of the paper's Fig. 1: nested precision,
  // all containing the true value 5.
  const std::vector<arsf::Interval> intervals = {
      {3.5, 6.0},   // s1
      {4.0, 7.5},   // s2
      {2.0, 5.5},   // s3
      {4.5, 10.0},  // s4
      {1.0, 6.5},   // s5
  };

  std::printf("Figure 1 — Marzullo's fusion interval for three values of f\n");
  std::printf("(n = %zu sensors; larger f = less trust = wider fusion interval)\n\n",
              intervals.size());

  arsf::support::IntervalDiagram diagram{64};
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    diagram.add("s" + std::to_string(i + 1), intervals[i].lo, intervals[i].hi);
  }
  diagram.add_separator();

  double previous_width = -1.0;
  bool monotone = true;
  for (int f = 0; f <= 2; ++f) {
    const auto result = arsf::fuse(intervals, f);
    if (result.interval) {
      diagram.add("S(N,f=" + std::to_string(f) + ")", result.interval->lo,
                  result.interval->hi);
      monotone &= result.width() >= previous_width;
      previous_width = result.width();
    } else {
      diagram.add_empty("S(N,f=" + std::to_string(f) + ")");
    }
  }
  diagram.set_marker(5.0, '*');
  std::printf("%s\n", diagram.render().c_str());

  std::printf("true value marked '*'; widths: ");
  for (int f = 0; f <= 2; ++f) {
    std::printf("f=%d -> %s  ", f,
                arsf::support::format_number(arsf::fuse(intervals, f).width(), 2).c_str());
  }
  std::printf("\nShape check (paper): uncertainty grows with f: %s\n",
              monotone ? "PASS" : "FAIL");

  // And the paper's limit case: f = n-1 gives the convex hull of the union.
  const auto hull = arsf::fuse(intervals, static_cast<int>(intervals.size()) - 1);
  std::printf("f = n-1 fusion interval = convex hull: %s\n",
              arsf::to_string(*hull.interval).c_str());
  return 0;
}
