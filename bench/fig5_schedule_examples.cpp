// Regenerates Figure 5 of the paper: two hand-constructed situations showing
// that NEITHER schedule is better in every single round — Ascending wins one,
// Descending wins the other.  (Table I then shows Ascending wins on
// average.)  For each example the harness runs the full protocol round under
// both schedules with the expectation-maximising attacker and draws the
// resulting intervals.
//
// The two systems come from the scenario registry ("fig5/asymmetric-flanks"
// and "fig5/pinned-fusion"); only the per-round readings — the illustration
// itself — live here.
//
// The mechanism, following the paper's Fig. 5 discussion:
//  (a) when the large intervals sit asymmetrically around the precise ones,
//      seeing them first (Descending) tells the attacker which side to
//      attack -> Ascending is better for the system;
//  (b) when the correct intervals pin the fusion interval regardless, the
//      attacker's best move under Descending is no better than her blind
//      move under Ascending can be.

#include <cstdio>

#include "scenario/registry.h"
#include "sim/protocol.h"
#include "support/ascii.h"

namespace {

using arsf::Tick;
using arsf::TickInterval;

struct Outcome {
  Tick width;
  std::vector<TickInterval> transmitted;
};

Outcome run(const arsf::SystemConfig& system, const std::vector<arsf::SensorId>& attacked,
            const arsf::sched::Order& order, const std::vector<TickInterval>& readings,
            std::uint64_t seed) {
  const arsf::attack::AttackSetup setup =
      arsf::attack::make_setup(system, arsf::Quantizer{1.0}, attacked, order);
  arsf::attack::ExpectationPolicy policy;
  arsf::support::Rng rng{seed};
  const auto result = arsf::sim::run_tick_round(setup, readings, &policy, rng);
  return {result.fused.is_empty() ? Tick{0} : result.fused.width(), result.transmitted};
}

void draw(const char* title, const std::vector<TickInterval>& transmitted, int f,
          arsf::SensorId attacked) {
  arsf::support::IntervalDiagram diagram{56};
  for (std::size_t i = 0; i < transmitted.size(); ++i) {
    diagram.add((i == attacked ? "a1 [attacked]" : "s" + std::to_string(i)),
                static_cast<double>(transmitted[i].lo),
                static_cast<double>(transmitted[i].hi), i == attacked);
  }
  const TickInterval fused = arsf::fused_interval_ticks(transmitted, f);
  diagram.add_separator();
  diagram.add("S(N,f)", static_cast<double>(fused.lo), static_cast<double>(fused.hi));
  std::printf("%s\n%s\n", title, diagram.render().c_str());
}

}  // namespace

int main() {
  std::printf("Figure 5 — neither schedule wins every single round\n\n");

  // (a) Ascending better: attacker owns the width-4 sensor; the two large
  // intervals hang far to one side, so seeing them (Descending) reveals
  // exactly where to attack.
  {
    const auto& scenario = arsf::scenario::registry().at("fig5/asymmetric-flanks");
    const arsf::SystemConfig system = scenario.system();
    // The two wide intervals hang on opposite sides; seeing them (Descending)
    // tells the attacker which flank of the precise estimate is exposed.
    const std::vector<TickInterval> readings = {{-2, 2}, {-10, 0}, {0, 10}};
    const Outcome ascending = run(system, scenario.attacked_override,
                                  arsf::sched::ascending_order(system), readings, 1);
    const Outcome descending = run(system, scenario.attacked_override,
                                   arsf::sched::descending_order(system), readings, 1);
    std::printf("(a) widths {4,10,10}, wide intervals on opposite flanks\n");
    draw("    Ascending round:", ascending.transmitted, system.f, scenario.attacked_override[0]);
    draw("    Descending round:", descending.transmitted, system.f,
         scenario.attacked_override[0]);
    std::printf("    |S| ascending = %lld, descending = %lld -> %s\n\n",
                static_cast<long long>(ascending.width),
                static_cast<long long>(descending.width),
                ascending.width < descending.width
                    ? "Ascending better for the system (paper's Fig. 5a)"
                    : "unexpected");
  }

  // (b) Descending better: n=4, the attacked sensor sits mid-schedule in
  // both orders.  Under Ascending she has already seen the two precise
  // intervals (which reveal the profitable side); under Descending she has
  // seen only the big symmetric interval, which — as the paper puts it —
  // "does not necessarily bring the attacker any useful information".
  {
    const auto& scenario = arsf::scenario::registry().at("fig5/pinned-fusion");
    const arsf::SystemConfig system = scenario.system();
    // Both precise intervals hang left of the truth; the width-12 interval
    // is symmetric and uninformative.
    const std::vector<TickInterval> readings = {{-3, 3}, {-4, 0}, {-5, 0}, {-6, 6}};
    const Outcome ascending = run(system, scenario.attacked_override,
                                  arsf::sched::ascending_order(system), readings, 1);
    const Outcome descending = run(system, scenario.attacked_override,
                                   arsf::sched::descending_order(system), readings, 1);
    std::printf("(b) widths {6,4,5,12}, attacked sensor (width 6) mid-schedule\n");
    draw("    Ascending round (seen: the two precise sensors):", ascending.transmitted,
         system.f, scenario.attacked_override[0]);
    draw("    Descending round (seen: only the width-12 sensor):", descending.transmitted,
         system.f, scenario.attacked_override[0]);
    std::printf("    |S| ascending = %lld, descending = %lld -> %s\n\n",
                static_cast<long long>(ascending.width),
                static_cast<long long>(descending.width),
                descending.width <= ascending.width
                    ? "Descending better for the system here (paper's Fig. 5b)"
                    : "unexpected");
  }

  std::printf("Table I (bench/table1_schedule_comparison) shows the average case, where\n");
  std::printf("Ascending is never worse — the paper's recommendation.\n");
  return 0;
}
