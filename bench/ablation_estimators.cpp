// Ablation C — point-estimator resilience under a stealthy attack.
//
// The paper fuses intervals before estimating; common practice instead
// averages sensor readings.  This bench measures the estimate bias
// |estimate - true value| for the Marzullo fused midpoint against the
// mean / median / precision-weighted baselines, over Monte Carlo rounds with
// the expectation-maximising stealthy attacker under the Descending schedule
// (her strongest position).  The fused midpoint and median should degrade
// gracefully; the mean and the precision-weighted mean absorb the full bias
// of the compromised (most precise!) sensor.

#include <cstdio>

#include "core/brooks_iyengar.h"
#include "core/estimate.h"
#include "sim/protocol.h"
#include "support/ascii.h"
#include "support/stats.h"

int main() {
  const arsf::SystemConfig system = arsf::make_config({5.0, 11.0, 17.0});
  const arsf::sched::Order order = arsf::sched::descending_order(system);
  const std::vector<arsf::SensorId> attacked = {0};  // most precise sensor
  const arsf::attack::AttackSetup setup =
      arsf::attack::make_setup(system, arsf::Quantizer{1.0}, attacked, order);

  arsf::attack::ExpectationPolicy policy;
  arsf::support::Rng rng{0xab1a7e5ULL};
  arsf::support::Rng world{0x5eedULL};

  const std::vector<arsf::Estimator> estimators = {
      arsf::Estimator::kFusedMidpoint, arsf::Estimator::kMeanMidpoint,
      arsf::Estimator::kMedianMidpoint, arsf::Estimator::kWeightedMidpoint};
  std::vector<arsf::support::RunningStats> bias_attacked(estimators.size() + 1);
  std::vector<arsf::support::RunningStats> bias_clean(estimators.size() + 1);
  const std::size_t bi_index = estimators.size();  // Brooks-Iyengar baseline

  constexpr int kRounds = 4000;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<arsf::TickInterval> readings(system.n());
    for (arsf::SensorId id = 0; id < system.n(); ++id) {
      const arsf::Tick width = setup.widths[id];
      const arsf::Tick lo = world.uniform_int(-width, 0);
      readings[id] = arsf::TickInterval{lo, lo + width};
    }
    const auto attacked_round = arsf::sim::run_tick_round(setup, readings, &policy, rng);

    auto to_doubles = [](const std::vector<arsf::TickInterval>& ticks) {
      std::vector<arsf::Interval> doubles;
      for (const auto& iv : ticks) {
        doubles.push_back({static_cast<double>(iv.lo), static_cast<double>(iv.hi)});
      }
      return doubles;
    };
    const auto spoofed = to_doubles(attacked_round.transmitted);
    const auto honest = to_doubles(readings);
    for (std::size_t e = 0; e < estimators.size(); ++e) {
      // True value is 0 by construction.
      if (const auto est = arsf::estimate(spoofed, system.f, estimators[e])) {
        bias_attacked[e].add(std::abs(*est));
      }
      if (const auto est = arsf::estimate(honest, system.f, estimators[e])) {
        bias_clean[e].add(std::abs(*est));
      }
    }
    // Brooks-Iyengar weighted estimate (the paper's reference [6] baseline).
    if (const auto est = arsf::brooks_iyengar(spoofed, system.f).estimate) {
      bias_attacked[bi_index].add(std::abs(*est));
    }
    if (const auto est = arsf::brooks_iyengar(honest, system.f).estimate) {
      bias_clean[bi_index].add(std::abs(*est));
    }
  }

  std::printf("Ablation C — estimator bias |estimate - truth| under a stealthy attack\n");
  std::printf("(n=3, L={5,11,17}, attacked = width-5 sensor, Descending schedule, %d rounds)\n\n",
              kRounds);
  arsf::support::TextTable table{
      {"estimator", "mean |bias| clean", "mean |bias| attacked", "degradation"}};
  for (std::size_t e = 0; e <= estimators.size(); ++e) {
    const std::string name =
        e < estimators.size() ? arsf::to_string(estimators[e]) : "brooks-iyengar [6]";
    table.add_row({name, arsf::support::format_number(bias_clean[e].mean(), 3),
                   arsf::support::format_number(bias_attacked[e].mean(), 3),
                   arsf::support::format_number(
                       bias_attacked[e].mean() - bias_clean[e].mean(), 3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Check: the weighted mean (which trusts the most precise = compromised sensor)\n");
  std::printf("degrades the most; the fused midpoint and median stay bounded.\n");
  return 0;
}
