// Performance microbenchmarks for the attacker machinery and the simulation
// engines (google-benchmark): policy decision cost with/without memoisation,
// full protocol rounds, exhaustive enumeration throughput.

#include <benchmark/benchmark.h>

#include "sim/enumerate.h"
#include "sim/protocol.h"

namespace {

struct Scenario {
  arsf::SystemConfig system = arsf::make_config({5.0, 11.0, 17.0});
  arsf::attack::AttackSetup setup;
  std::vector<arsf::TickInterval> readings;

  explicit Scenario(bool descending) {
    const auto order = descending ? arsf::sched::descending_order(system)
                                  : arsf::sched::ascending_order(system);
    setup = arsf::attack::make_setup(system, arsf::Quantizer{1.0}, {0}, order);
    readings = {{-4, 1}, {-5, 6}, {-10, 7}};
  }
};

void BM_PolicyDecideFullInfo(benchmark::State& state) {
  Scenario scenario{/*descending=*/true};
  arsf::support::Rng rng{1};
  for (auto _ : state) {
    arsf::attack::ExpectationPolicy policy;  // cold cache each iteration
    const auto result =
        arsf::sim::run_tick_round(scenario.setup, scenario.readings, &policy, rng);
    benchmark::DoNotOptimize(result.fused);
  }
}
BENCHMARK(BM_PolicyDecideFullInfo);

void BM_PolicyDecideBayesian(benchmark::State& state) {
  Scenario scenario{/*descending=*/false};
  arsf::support::Rng rng{1};
  for (auto _ : state) {
    arsf::attack::ExpectationPolicy policy;  // cold cache: full posterior sweep
    const auto result =
        arsf::sim::run_tick_round(scenario.setup, scenario.readings, &policy, rng);
    benchmark::DoNotOptimize(result.fused);
  }
}
BENCHMARK(BM_PolicyDecideBayesian);

void BM_PolicyDecideMemoized(benchmark::State& state) {
  Scenario scenario{/*descending=*/false};
  arsf::support::Rng rng{1};
  arsf::attack::ExpectationPolicy policy;  // warm cache across iterations
  for (auto _ : state) {
    const auto result =
        arsf::sim::run_tick_round(scenario.setup, scenario.readings, &policy, rng);
    benchmark::DoNotOptimize(result.fused);
  }
}
BENCHMARK(BM_PolicyDecideMemoized);

void BM_TickRoundNoAttack(benchmark::State& state) {
  Scenario scenario{/*descending=*/false};
  arsf::support::Rng rng{1};
  for (auto _ : state) {
    const auto result =
        arsf::sim::run_tick_round(scenario.setup, scenario.readings, nullptr, rng);
    benchmark::DoNotOptimize(result.fused);
  }
}
BENCHMARK(BM_TickRoundNoAttack);

void BM_EnumerateRowN3(benchmark::State& state) {
  // One full Table I cell: exhaustive enumeration with the Bayesian
  // attacker, n=3 (1296 worlds).
  for (auto _ : state) {
    arsf::sim::EnumerateConfig config;
    config.system = arsf::make_config({5.0, 11.0, 17.0});
    config.order = arsf::sched::descending_order(config.system);
    config.attacked = {0};
    arsf::attack::ExpectationPolicy policy;
    config.policy = &policy;
    benchmark::DoNotOptimize(arsf::sim::enumerate_expected_width(config));
  }
}
BENCHMARK(BM_EnumerateRowN3)->Unit(benchmark::kMillisecond);

void BM_BusBackedRound(benchmark::State& state) {
  const arsf::SystemConfig system = arsf::make_config({5.0, 11.0, 17.0});
  arsf::attack::ExpectationPolicy policy;
  arsf::sim::FusionRound round{system, arsf::Quantizer{1.0}, {0}, &policy};
  round.bus().clear_log();
  const std::vector<arsf::Interval> readings = {{-4, 1}, {-5, 6}, {-10, 7}};
  arsf::support::Rng rng{1};
  const auto order = arsf::sched::descending_order(system);
  std::uint64_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(round.run(order, readings, rng, index++));
    round.bus().clear_log();
  }
}
BENCHMARK(BM_BusBackedRound);

}  // namespace

BENCHMARK_MAIN();
