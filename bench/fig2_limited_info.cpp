// Regenerates Figure 2 of the paper: with partial knowledge there is, in
// general, NO attack policy that is optimal for every completion.
//
// The attacker (width-4 sensor, sinusoid in the paper) has seen s1 only and
// transmits before s2.  For every stealthy placement of her interval the
// harness finds a completion (a placement of the unseen s2) under which a
// different placement would have been strictly better — so no single move
// dominates, exactly the paper's argument around a1(1)/a1(2).

#include <cstdio>

#include "core/fusion.h"
#include "support/ascii.h"

int main() {
  using arsf::Tick;
  using arsf::TickInterval;

  // n=3, f=1.  Seen: s1 = [0, 10].  Her correct reading Delta = [3, 5]
  // (width 2; her sensor width is 4, so she has slack).  Unseen: s2 of
  // width 6 containing the true value t in Delta.
  const int f = 1;
  const TickInterval s1{0, 10};
  const TickInterval delta{3, 5};
  const Tick attacked_width = 4;
  const Tick unseen_width = 6;

  std::printf("Figure 2 — no optimal policy without full knowledge (n=3, f=1)\n\n");
  arsf::support::IntervalDiagram diagram{64};
  diagram.add("s1 (seen)", s1.lo, s1.hi);
  diagram.add("Delta", delta.lo, delta.hi, true);
  std::printf("%s\n", diagram.render().c_str());

  auto fused_width = [&](const TickInterval& attack, const TickInterval& s2) {
    const std::vector<TickInterval> all = {s1, attack, s2};
    const Tick width = arsf::fused_width_ticks(all, f);
    return width > 0 ? width : Tick{0};
  };

  // Stealthy placements: contain Delta (passive certificate) or share a
  // point with s1 (active certificate; her slot passes the paper's gate:
  // transmitted = 1 >= n - f - far = 1).
  std::vector<TickInterval> candidates;
  for (Tick lo = s1.lo - attacked_width; lo <= s1.hi; ++lo) {
    const TickInterval candidate{lo, lo + attacked_width};
    if (candidate.contains(delta) || candidate.intersects(s1)) candidates.push_back(candidate);
  }

  std::printf("%zu stealthy placements; regret = best-response width minus this placement's\n",
              candidates.size());
  std::printf("width under that placement's worst-case completion:\n\n");
  std::printf("  candidate a1     worst completion s2    width there   best there   regret\n");

  bool any_dominant = false;
  Tick max_regret = 0;
  for (const auto& candidate : candidates) {
    Tick worst_regret = 0;
    TickInterval worst_s2 = TickInterval::empty_interval();
    Tick at_worst = 0;
    Tick best_at_worst = 0;
    for (Tick t = delta.lo; t <= delta.hi; ++t) {
      for (Tick lo2 = t - unseen_width; lo2 <= t; ++lo2) {
        const TickInterval s2{lo2, lo2 + unseen_width};
        const Tick mine = fused_width(candidate, s2);
        Tick best = 0;
        for (const auto& other : candidates) best = std::max(best, fused_width(other, s2));
        if (best - mine > worst_regret) {
          worst_regret = best - mine;
          worst_s2 = s2;
          at_worst = mine;
          best_at_worst = best;
        }
      }
    }
    if (worst_regret == 0) any_dominant = true;
    max_regret = std::max(max_regret, worst_regret);
    // Print the extremes and a few middles to keep the output readable.
    if (candidate.lo % 3 == 0 || worst_regret == 0) {
      std::printf("  %-15s  %-21s  %-12lld  %-11lld  %lld\n",
                  arsf::to_string(candidate).c_str(),
                  worst_regret > 0 ? arsf::to_string(worst_s2).c_str() : "(dominant)",
                  static_cast<long long>(at_worst), static_cast<long long>(best_at_worst),
                  static_cast<long long>(worst_regret));
    }
  }

  std::printf("\nShape check (paper): every placement is suboptimal under SOME completion -> %s\n",
              any_dominant ? "FAIL (a dominant placement exists)" : "PASS");
  std::printf("largest regret over placements: %lld ticks\n", static_cast<long long>(max_regret));
  return 0;
}
