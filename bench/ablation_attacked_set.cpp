// Ablation B — which sensors the attacker compromises.
//
// The paper's Theorems 3/4 argue the attacker gains most by compromising the
// most precise sensors; the Table I reproduction additionally resolves width
// ties in the attacker's favour (latest slot).  This bench quantifies both
// choices: expected fusion width per attacked-set rule and per schedule, and
// the tie-break alternative (earliest slot among equal widths).

#include <cstdio>

#include "sim/enumerate.h"
#include "support/ascii.h"

namespace {

double run(const arsf::SystemConfig& system, const arsf::sched::Order& order,
           std::vector<arsf::SensorId> attacked) {
  arsf::sim::EnumerateConfig config;
  config.system = system;
  config.order = order;
  config.attacked = std::move(attacked);
  arsf::attack::ExpectationPolicy policy;
  config.policy = &policy;
  return arsf::sim::enumerate_expected_width(config).expected_width;
}

}  // namespace

int main() {
  std::printf("Ablation B — attacked-set choice (expectation policy, exact E|S|)\n\n");

  // Part 1: which width class to attack (n=3, distinct widths, fa=1).
  {
    const arsf::SystemConfig system = arsf::make_config({5.0, 11.0, 17.0});
    arsf::support::TextTable table{{"attacked sensor", "E|S| Asc", "E|S| Desc"}};
    for (arsf::SensorId id = 0; id < 3; ++id) {
      table.add_row({"width " + arsf::support::format_number(system.sensors[id].width, 0),
                     arsf::support::format_number(
                         run(system, arsf::sched::ascending_order(system), {id}), 3),
                     arsf::support::format_number(
                         run(system, arsf::sched::descending_order(system), {id}), 3)});
    }
    std::printf("L = {5, 11, 17}, fa = 1 — Theorems 3/4 predict the smallest width is the\n");
    std::printf("strongest choice under Descending (full information):\n%s\n",
                table.render().c_str());
  }

  // Part 2: tie-breaking among equal widths (n=5, three width-5 sensors).
  {
    const arsf::SystemConfig system = arsf::make_config({5.0, 5.0, 5.0, 14.0, 20.0});
    const auto ascending = arsf::sched::ascending_order(system);  // slots: 0,1,2,3,4
    arsf::support::TextTable table{{"tie-break (Ascending, fa=1)", "attacked slot", "E|S|"}};
    // Earliest width-5 slot vs latest width-5 slot.
    table.add_row({"earliest slot (defender-favourable)", "0",
                   arsf::support::format_number(run(system, ascending, {ascending[0]}), 3)});
    table.add_row({"latest slot (attacker-favourable, repo default)", "2",
                   arsf::support::format_number(run(system, ascending, {ascending[2]}), 3)});
    std::printf("L = {5, 5, 5, 14, 20} — with equal widths the slot still matters: the later\n");
    std::printf("the attacked equal-width sensor transmits, the more it has seen:\n%s\n",
                table.render().c_str());
    std::printf("(The paper's Table I numbers are consistent with the earliest-slot reading;\n");
    std::printf("the repo defaults to the adversarial latest-slot reading. See EXPERIMENTS.md.)\n");
  }
  return 0;
}
