// Ablation B — which sensors the attacker compromises.
//
// The paper's Theorems 3/4 argue the attacker gains most by compromising the
// most precise sensors; the Table I reproduction additionally resolves width
// ties in the attacker's favour (latest slot).  This bench quantifies both
// choices: expected fusion width per attacked-set rule and per schedule, and
// the tie-break alternative (earliest slot among equal widths).
//
// The base systems come from the scenario registry (Table I rows 0 and 5);
// each variant is a clone with a different attacked_override, run as one
// Runner batch.

#include <cstdio>

#include "scenario/registry.h"
#include "scenario/runner.h"
#include "support/ascii.h"

namespace {

bool all_ok(const std::vector<arsf::scenario::ScenarioResult>& results) {
  for (const auto& result : results) {
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", result.scenario.c_str(), result.error.c_str());
      return false;
    }
  }
  return true;
}

arsf::scenario::Scenario attack_variant(const arsf::scenario::Scenario& base,
                                        arsf::sched::ScheduleKind schedule,
                                        arsf::SensorId attacked) {
  arsf::scenario::Scenario variant = base;
  variant.name = "ablation/n" + std::to_string(base.n()) + "/attack-s" +
                 std::to_string(attacked) + "/" + arsf::sched::to_string(schedule);
  variant.schedule = schedule;
  variant.fa = 1;
  variant.attacked_override = {attacked};
  return variant;
}

}  // namespace

int main() {
  std::printf("Ablation B — attacked-set choice (expectation policy, exact E|S|)\n\n");
  const arsf::scenario::Runner runner;

  // Part 1: which width class to attack (n=3, distinct widths, fa=1).
  {
    const auto& base = arsf::scenario::registry().at("table1/r0/ascending");
    std::vector<arsf::scenario::Scenario> variants;
    for (arsf::SensorId id = 0; id < base.n(); ++id) {
      variants.push_back(attack_variant(base, arsf::sched::ScheduleKind::kAscending, id));
      variants.push_back(attack_variant(base, arsf::sched::ScheduleKind::kDescending, id));
    }
    const auto results = runner.run_batch(std::span<const arsf::scenario::Scenario>{variants});
    if (!all_ok(results)) return 1;

    arsf::support::TextTable table{{"attacked sensor", "E|S| Asc", "E|S| Desc"}};
    for (std::size_t id = 0; id < base.n(); ++id) {
      table.add_row(
          {"width " + arsf::support::format_number(base.widths[id], 0),
           arsf::support::format_number(results[id * 2].metric("expected_width"), 3),
           arsf::support::format_number(results[id * 2 + 1].metric("expected_width"), 3)});
    }
    std::printf("L = {5, 11, 17}, fa = 1 — Theorems 3/4 predict the smallest width is the\n");
    std::printf("strongest choice under Descending (full information):\n%s\n",
                table.render().c_str());
  }

  // Part 2: tie-breaking among equal widths (n=5, three width-5 sensors).
  {
    const auto& base = arsf::scenario::registry().at("table1/r5/ascending");
    const auto ascending = arsf::sched::ascending_order(base.system());  // slots: 0,1,2,3,4
    const std::vector<arsf::scenario::Scenario> variants = {
        attack_variant(base, arsf::sched::ScheduleKind::kAscending, ascending[0]),
        attack_variant(base, arsf::sched::ScheduleKind::kAscending, ascending[2]),
    };
    const auto results = runner.run_batch(std::span<const arsf::scenario::Scenario>{variants});
    if (!all_ok(results)) return 1;

    arsf::support::TextTable table{{"tie-break (Ascending, fa=1)", "attacked slot", "E|S|"}};
    table.add_row({"earliest slot (defender-favourable)", "0",
                   arsf::support::format_number(results[0].metric("expected_width"), 3)});
    table.add_row({"latest slot (attacker-favourable, repo default)", "2",
                   arsf::support::format_number(results[1].metric("expected_width"), 3)});
    std::printf("L = {5, 5, 5, 14, 20} — with equal widths the slot still matters: the later\n");
    std::printf("the attacked equal-width sensor transmits, the more it has seen:\n%s\n",
                table.render().c_str());
    std::printf("(The paper's Table I numbers are consistent with the earliest-slot reading;\n");
    std::printf("the repo defaults to the adversarial latest-slot reading. See EXPERIMENTS.md.)\n");
  }
  return 0;
}
