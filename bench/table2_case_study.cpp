// Reproduces Table II of the paper: the LandShark platoon case study.
//
// Three vehicles cruise at v = 10 mph; one encoder (the most precise
// sensor) of the middle vehicle is compromised.  For each communication
// schedule the harness reports the percentage of fusion rounds whose fusion
// interval exceeded v + 0.5 mph or dropped below v - 0.5 mph — the two rows
// of Table II — next to the paper's numbers.
//
//   ./table2_case_study [--rounds 10000] [--seed N] [--csv out.csv]

#include <cstdio>

#include "support/ascii.h"
#include "support/cli.h"
#include "support/csv.h"
#include "vehicle/casestudy.h"

int main(int argc, char** argv) {
  const arsf::support::ArgParser args{argc, argv};

  arsf::vehicle::CaseStudyConfig base;
  base.rounds = static_cast<std::size_t>(args.get_int("rounds", 10'000));
  base.seed = static_cast<std::uint64_t>(args.get_int("seed", 0x1a2db4d5LL));
  const std::string csv_path = args.get_string("csv", "");

  std::printf("Table II — LandShark platoon case study (%zu rounds per schedule)\n", base.rounds);
  std::printf("v = 10 mph, delta1 = delta2 = 0.5 mph; sensors {gps 1, camera 2, encoder 0.2 x2};\n");
  std::printf("attacked: one encoder of the middle vehicle, expectation-maximising stealthy policy\n\n");

  const auto rows = arsf::vehicle::reproduce_table2(base);
  const auto reference = arsf::vehicle::paper_table2_reference();

  arsf::support::TextTable table{{"metric", "Ascending", "Descending", "Random"}};
  auto fmt = [](double x) { return arsf::support::format_number(x, 2) + "%"; };
  table.add_row({"> 10.5 mph (measured)", fmt(rows[0].second.pct_upper),
                 fmt(rows[1].second.pct_upper), fmt(rows[2].second.pct_upper)});
  table.add_row({"> 10.5 mph (paper)", fmt(reference[0].upper), fmt(reference[1].upper),
                 fmt(reference[2].upper)});
  table.add_row({"< 9.5 mph (measured)", fmt(rows[0].second.pct_lower),
                 fmt(rows[1].second.pct_lower), fmt(rows[2].second.pct_lower)});
  table.add_row({"< 9.5 mph (paper)", fmt(reference[0].lower), fmt(reference[1].lower),
                 fmt(reference[2].lower)});
  table.add_row({"mean fused width (mph)",
                 arsf::support::format_number(rows[0].second.fused_width.mean(), 3),
                 arsf::support::format_number(rows[1].second.fused_width.mean(), 3),
                 arsf::support::format_number(rows[2].second.fused_width.mean(), 3)});
  table.add_row({"attacker detections", std::to_string(rows[0].second.detected_rounds),
                 std::to_string(rows[1].second.detected_rounds),
                 std::to_string(rows[2].second.detected_rounds)});
  std::printf("%s\n", table.render().c_str());

  if (!csv_path.empty()) {
    arsf::support::CsvWriter csv{csv_path};
    csv.write_row({"schedule", "pct_upper", "pct_lower", "paper_upper", "paper_lower",
                   "mean_width", "detected"});
    for (std::size_t i = 0; i < rows.size(); ++i) {
      csv.write_row({arsf::sched::to_string(rows[i].first),
                     arsf::support::format_number(rows[i].second.pct_upper, 4),
                     arsf::support::format_number(rows[i].second.pct_lower, 4),
                     arsf::support::format_number(reference[i].upper, 2),
                     arsf::support::format_number(reference[i].lower, 2),
                     arsf::support::format_number(rows[i].second.fused_width.mean(), 4),
                     std::to_string(rows[i].second.detected_rounds)});
    }
  }

  std::printf("Shape checks (paper's claims): Ascending pins the attacked encoder to the truth\n");
  std::printf("(0%% violations); Descending hands it full knowledge (largest violation rate);\n");
  std::printf("Random sits in between at roughly a third of Descending.\n");
  return 0;
}
