// Reproduces Table II of the paper: the LandShark platoon case study.
//
// Three vehicles cruise at v = 10 mph; one encoder (the most precise
// sensor) of the middle vehicle is compromised.  For each communication
// schedule the harness reports the percentage of fusion rounds whose fusion
// interval exceeded v + 0.5 mph or dropped below v - 0.5 mph — the two rows
// of Table II — next to the paper's numbers.
//
// The three schedule scenarios come from the registry ("table2/" family) and
// run as one Runner batch; --rounds/--seed override the registered values.
//
//   ./table2_case_study [--rounds 10000] [--seed N] [--csv out.csv]

#include <cstdio>

#include "scenario/registry.h"
#include "scenario/report.h"
#include "scenario/runner.h"
#include "support/ascii.h"
#include "support/cli.h"
#include "vehicle/casestudy.h"

int main(int argc, char** argv) {
  const arsf::support::ArgParser args{argc, argv};
  const auto rounds = static_cast<std::size_t>(args.get_int("rounds", 10'000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 0x1a2db4d5LL));
  const std::string csv_path = args.get_string("csv", "");

  std::vector<arsf::scenario::Scenario> scenarios;
  for (const auto* registered : arsf::scenario::registry().match("table2/")) {
    arsf::scenario::Scenario scenario = *registered;
    scenario.rounds = rounds;
    scenario.seed = seed;
    scenarios.push_back(std::move(scenario));
  }

  std::printf("Table II — LandShark platoon case study (%zu rounds per schedule)\n", rounds);
  std::printf("v = 10 mph, delta1 = delta2 = 0.5 mph; sensors {gps 1, camera 2, encoder 0.2 x2};\n");
  std::printf("attacked: one encoder of the middle vehicle, expectation-maximising stealthy policy\n\n");

  const arsf::scenario::Runner runner;
  const auto results = runner.run_batch(std::span<const arsf::scenario::Scenario>{scenarios});
  for (const auto& result : results) {
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", result.scenario.c_str(), result.error.c_str());
      return 1;
    }
  }
  const auto reference = arsf::vehicle::paper_table2_reference();

  arsf::support::TextTable table{{"metric", "Ascending", "Descending", "Random"}};
  auto fmt = [](double x) { return arsf::support::format_number(x, 2) + "%"; };
  table.add_row({"> 10.5 mph (measured)", fmt(results[0].metric("pct_upper")),
                 fmt(results[1].metric("pct_upper")), fmt(results[2].metric("pct_upper"))});
  table.add_row({"> 10.5 mph (paper)", fmt(reference[0].upper), fmt(reference[1].upper),
                 fmt(reference[2].upper)});
  table.add_row({"< 9.5 mph (measured)", fmt(results[0].metric("pct_lower")),
                 fmt(results[1].metric("pct_lower")), fmt(results[2].metric("pct_lower"))});
  table.add_row({"< 9.5 mph (paper)", fmt(reference[0].lower), fmt(reference[1].lower),
                 fmt(reference[2].lower)});
  table.add_row({"mean fused width (mph)",
                 arsf::support::format_number(results[0].metric("mean_width"), 3),
                 arsf::support::format_number(results[1].metric("mean_width"), 3),
                 arsf::support::format_number(results[2].metric("mean_width"), 3)});
  table.add_row({"attacker detections",
                 arsf::support::format_number(results[0].metric("detected_rounds"), 0),
                 arsf::support::format_number(results[1].metric("detected_rounds"), 0),
                 arsf::support::format_number(results[2].metric("detected_rounds"), 0)});
  std::printf("%s\n", table.render().c_str());

  if (!csv_path.empty()) {
    arsf::support::ReportWriter report{csv_path};
    arsf::scenario::write_report(report, results);
  }

  std::printf("Shape checks (paper's claims): Ascending pins the attacked encoder to the truth\n");
  std::printf("(0%% violations); Descending hands it full knowledge (largest violation rate);\n");
  std::printf("Random sits in between at roughly a third of Descending.\n");
  return 0;
}
