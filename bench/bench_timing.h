#pragma once
// Shared timing/formatting helpers for the speedup benches: best-of-N
// wall-clock measurement and the table's ms / ratio cells.  One home so the
// measurement discipline (best-of, steady_clock) cannot drift between
// benches.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

namespace arsf::bench {

using Clock = std::chrono::steady_clock;

template <typename Fn>
double time_best_of(int repeat, const Fn& fn) {
  double best = 1e300;
  for (int i = 0; i < repeat; ++i) {
    const auto start = Clock::now();
    fn();
    best = std::min(best, std::chrono::duration<double>(Clock::now() - start).count());
  }
  return best;
}

inline std::string ms_text(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.2f", seconds * 1e3);
  return buffer;
}

inline std::string ratio_text(double ratio) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.1fx", ratio);
  return buffer;
}

}  // namespace arsf::bench
