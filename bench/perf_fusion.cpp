// Performance microbenchmarks for the fusion core (google-benchmark):
// sweep-line fusion vs n and f, the tick hot path, detection, estimators.

#include <benchmark/benchmark.h>

#include "core/bounds.h"
#include "core/detection.h"
#include "core/estimate.h"
#include "support/rng.h"

namespace {

std::vector<arsf::TickInterval> random_ticks(std::size_t n, arsf::support::Rng& rng) {
  std::vector<arsf::TickInterval> intervals;
  intervals.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const arsf::Tick width = rng.uniform_int(1, 50);
    const arsf::Tick lo = rng.uniform_int(-width, 0);  // all contain 0
    intervals.push_back({lo, lo + width});
  }
  return intervals;
}

std::vector<arsf::Interval> random_doubles(std::size_t n, arsf::support::Rng& rng) {
  std::vector<arsf::Interval> intervals;
  intervals.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double width = rng.uniform_real(0.5, 50.0);
    const double lo = rng.uniform_real(-width, 0.0);
    intervals.push_back({lo, lo + width});
  }
  return intervals;
}

void BM_FusedWidthTicks(benchmark::State& state) {
  arsf::support::Rng rng{42};
  const auto n = static_cast<std::size_t>(state.range(0));
  const int f = arsf::max_bounded_f(static_cast<int>(n));
  const auto intervals = random_ticks(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(arsf::fused_width_ticks(intervals, f));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FusedWidthTicks)->Arg(3)->Arg(5)->Arg(8)->Arg(16)->Arg(64)->Arg(256);

void BM_MarzulloFuseWithSegments(benchmark::State& state) {
  arsf::support::Rng rng{42};
  const auto n = static_cast<std::size_t>(state.range(0));
  const int f = arsf::max_bounded_f(static_cast<int>(n));
  const auto intervals = random_doubles(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(arsf::fuse(intervals, f));
  }
}
BENCHMARK(BM_MarzulloFuseWithSegments)->Arg(3)->Arg(5)->Arg(16)->Arg(64)->Arg(256);

void BM_FuseSweepOverF(benchmark::State& state) {
  arsf::support::Rng rng{7};
  const auto intervals = random_doubles(16, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(arsf::fuse_all_f(intervals));
  }
}
BENCHMARK(BM_FuseSweepOverF);

void BM_FuseAndDetect(benchmark::State& state) {
  arsf::support::Rng rng{11};
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto intervals = random_doubles(n, rng);
  const int f = arsf::max_bounded_f(static_cast<int>(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(arsf::fuse_and_detect(intervals, f));
  }
}
BENCHMARK(BM_FuseAndDetect)->Arg(4)->Arg(16)->Arg(64);

void BM_Estimators(benchmark::State& state) {
  arsf::support::Rng rng{13};
  const auto intervals = random_doubles(8, rng);
  const auto estimator = static_cast<arsf::Estimator>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(arsf::estimate(intervals, 3, estimator));
  }
}
BENCHMARK(BM_Estimators)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

BENCHMARK_MAIN();
