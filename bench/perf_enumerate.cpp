// Enumeration-engine microbenchmarks (google-benchmark): the pre-engine
// full-re-sort reference vs the incremental sweep (serial) vs the
// thread-pool fan-out, across sensor counts n in {3,4,5} and grid steps in
// {1.0, 0.5, 0.25} on Table I configurations.  The clean/no-attack path is
// benchmarked so the numbers isolate raw enumeration cost (the attacker
// policy path is dominated by the policy itself).
//
// JSON output for trend tracking (BENCH_* trajectory):
//     perf_enumerate --benchmark_format=json > perf_enumerate.json
// The headline comparison is n=5/step=1.0 (the largest Table I config,
// {5,5,5,14,20}): Reference vs IncrementalSerial is the single-thread
// speedup of the incremental sweep; Parallel adds the multicore scaling.

#include <benchmark/benchmark.h>

#include "sim/enumerate.h"

namespace {

// Table I widths per sensor count (largest world count of each n).
const std::vector<double>& widths_for(int n) {
  static const std::vector<std::vector<double>> table = {
      {5, 11, 17},           // n=3:   6*12*18            = 1296 worlds at step 1
      {5, 8, 17, 20},        // n=4:   6*9*18*21          = 20412
      {5, 5, 5, 14, 20},     // n=5:   6^3*15*21          = 68040 (largest Table I config)
  };
  return table[static_cast<std::size_t>(n - 3)];
}

double step_for(int step_index) {
  static constexpr double kSteps[] = {1.0, 0.5, 0.25};
  return kSteps[step_index];
}

arsf::sim::EnumerateConfig clean_config(int n, int step_index, unsigned num_threads) {
  arsf::sim::EnumerateConfig config;
  config.system = arsf::make_config(widths_for(n));
  config.quant = arsf::Quantizer{step_for(step_index)};
  config.order = arsf::sched::ascending_order(config.system);
  config.num_threads = num_threads;
  config.max_worlds = 1'000'000'000;
  return config;
}

void set_counters(benchmark::State& state, const arsf::sim::EnumerateConfig& config) {
  const auto worlds = arsf::sim::world_count(config.system, config.quant);
  state.counters["worlds"] = static_cast<double>(worlds);
  state.counters["worlds_per_s"] = benchmark::Counter(
      static_cast<double>(worlds) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_EnumerateReference(benchmark::State& state) {
  const auto config = clean_config(static_cast<int>(state.range(0)),
                                   static_cast<int>(state.range(1)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(arsf::sim::enumerate_expected_width_reference(config));
  }
  set_counters(state, config);
}

void BM_EnumerateIncrementalSerial(benchmark::State& state) {
  const auto config = clean_config(static_cast<int>(state.range(0)),
                                   static_cast<int>(state.range(1)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(arsf::sim::enumerate_expected_width(config));
  }
  set_counters(state, config);
}

void BM_EnumerateParallel(benchmark::State& state) {
  const auto config = clean_config(static_cast<int>(state.range(0)),
                                   static_cast<int>(state.range(1)), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(arsf::sim::enumerate_expected_width(config));
  }
  set_counters(state, config);
}

void EnumerateGrid(benchmark::internal::Benchmark* bench) {
  for (int n = 3; n <= 5; ++n) {
    for (int step_index = 0; step_index < 3; ++step_index) {
      bench->Args({n, step_index});
    }
  }
  bench->Unit(benchmark::kMillisecond)->ArgNames({"n", "step_idx"});
}

BENCHMARK(BM_EnumerateReference)->Apply(EnumerateGrid);
BENCHMARK(BM_EnumerateIncrementalSerial)->Apply(EnumerateGrid);
BENCHMARK(BM_EnumerateParallel)->Apply(EnumerateGrid);

// Full Table I cell with the Bayesian attacker: the policy path keeps a
// serial engine but rides the incremental sweep for the world odometer.
void BM_EnumerateWithPolicy(benchmark::State& state) {
  for (auto _ : state) {
    arsf::sim::EnumerateConfig config;
    config.system = arsf::make_config({5.0, 11.0, 17.0});
    config.order = arsf::sched::descending_order(config.system);
    config.attacked = {0};
    arsf::attack::ExpectationPolicy policy;
    config.policy = &policy;
    benchmark::DoNotOptimize(arsf::sim::enumerate_expected_width(config));
  }
}
BENCHMARK(BM_EnumerateWithPolicy)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
