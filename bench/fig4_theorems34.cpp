// Regenerates Figure 4 of the paper: the worst-case analysis of Theorems 3
// and 4, computed by exhaustive configuration search on the tick grid.
//
//   (a) attacking the fa LARGEST intervals does not change the worst case
//       (|SF| = |Sna|);
//   (b) attacking the fa SMALLEST intervals achieves the global worst case
//       |Swc_fa| over every attacked set.
//
// The width families come from the scenario registry ("fig4/" — each entry
// is the Theorem-4 smallest-widths worst-case search); the Thm-3 variants
// are clones with the rule flipped, all run as one Runner batch on the
// run-batched worstcase-fast lane (bit-identical to the worstcase oracle —
// tests/test_worstcase_fast.cpp and the worstcase_parity_smoke ctest pin
// the equivalence, so the bench only trades wall-clock).

#include <cstdio>

#include "scenario/registry.h"
#include "scenario/runner.h"
#include "sim/worstcase.h"
#include "support/ascii.h"

int main() {
  std::printf("Figure 4 — Theorems 3 and 4 by exhaustive worst-case search\n\n");

  const auto families = arsf::scenario::registry().match("fig4/");
  const arsf::scenario::Runner runner;

  // Four scenarios per family: clean (fa=0), largest attacked, smallest
  // attacked (the registered Thm-4 search), and the global over-all-subsets
  // worst case |Swc|.
  std::vector<arsf::scenario::Scenario> variants;
  for (const auto* family : families) {
    arsf::scenario::Scenario clean = *family;
    clean.name += "/clean";
    clean.fa = 0;
    variants.push_back(clean);

    arsf::scenario::Scenario largest = *family;
    largest.name += "/largest";
    largest.attacked_rule = arsf::sched::AttackedSetRule::kLargestWidths;
    variants.push_back(largest);

    variants.push_back(*family);  // the registered Thm-4 smallest-widths search

    arsf::scenario::Scenario global = *family;
    global.name += "/over-sets";
    global.over_all_sets = true;
    variants.push_back(global);
  }
  for (auto& variant : variants) {
    variant.analysis = arsf::scenario::AnalysisKind::kWorstCaseFast;
  }
  const auto results = runner.run_batch(std::span<const arsf::scenario::Scenario>{variants});
  for (const auto& result : results) {
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", result.scenario.c_str(), result.error.c_str());
      return 1;
    }
  }

  arsf::support::TextTable table{
      {"widths", "f=fa", "|Sna|", "|SF| largest", "|SF| smallest", "|Swc|", "Thm3", "Thm4"}};
  bool all_pass = true;

  for (std::size_t i = 0; i < families.size(); ++i) {
    const auto& scenario = *families[i];
    const arsf::SystemConfig system = scenario.system();
    const std::vector<arsf::Tick> widths = arsf::tick_widths(system, arsf::Quantizer{1.0});

    const auto clean = static_cast<arsf::Tick>(results[i * 4].metric("max_width_ticks"));
    const auto largest = static_cast<arsf::Tick>(results[i * 4 + 1].metric("max_width_ticks"));
    const auto smallest = static_cast<arsf::Tick>(results[i * 4 + 2].metric("max_width_ticks"));
    const auto global = static_cast<arsf::Tick>(results[i * 4 + 3].metric("max_width_ticks"));

    const bool thm3 = largest == clean;
    const bool thm4 = smallest == global;
    all_pass &= thm3 && thm4;

    std::string widths_text = "{";
    for (std::size_t j = 0; j < widths.size(); ++j) {
      if (j) widths_text += ",";
      widths_text += std::to_string(widths[j]);
    }
    widths_text += "}";
    table.add_row({widths_text, std::to_string(system.f), std::to_string(clean),
                   std::to_string(largest), std::to_string(smallest), std::to_string(global),
                   thm3 ? "PASS" : "FAIL", thm4 ? "PASS" : "FAIL"});
  }
  std::printf("%s\n", table.render().c_str());

  // Illustrative configuration matching the figure: the argmax placement
  // when the smallest interval is attacked.
  arsf::sim::WorstCaseConfig illustration;
  illustration.widths = {2, 3, 5};
  illustration.f = 1;
  illustration.attacked = {0};
  // Same argmax as the oracle by the fast lane's lowest-world-index tie rule.
  const auto result = arsf::sim::worst_case_fusion_fast(illustration);
  arsf::support::IntervalDiagram diagram{56};
  for (std::size_t i = 0; i < result.argmax.size(); ++i) {
    diagram.add("s" + std::to_string(i) + (i == 0 ? " [attacked]" : ""),
                static_cast<double>(result.argmax[i].lo),
                static_cast<double>(result.argmax[i].hi), i == 0);
  }
  const arsf::TickInterval fused = arsf::fused_interval_ticks(result.argmax, illustration.f);
  diagram.add_separator();
  diagram.add("S(N,f=1)", static_cast<double>(fused.lo), static_cast<double>(fused.hi));
  std::printf("worst-case configuration, widths {2,3,5}, smallest attacked:\n%s\n",
              diagram.render().c_str());

  std::printf("Shape check (paper): Theorem 3 and Theorem 4 hold on every family -> %s\n",
              all_pass ? "PASS" : "FAIL");
  return 0;
}
