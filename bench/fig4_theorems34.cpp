// Regenerates Figure 4 of the paper: the worst-case analysis of Theorems 3
// and 4, computed by exhaustive configuration search on the tick grid.
//
//   (a) attacking the fa LARGEST intervals does not change the worst case
//       (|SF| = |Sna|);
//   (b) attacking the fa SMALLEST intervals achieves the global worst case
//       |Swc_fa| over every attacked set.

#include <cstdio>

#include <numeric>

#include "sim/worstcase.h"
#include "support/ascii.h"

namespace {

std::vector<arsf::SensorId> extreme_widths(const std::vector<arsf::Tick>& widths,
                                           std::size_t fa, bool largest) {
  std::vector<arsf::SensorId> ids(widths.size());
  std::iota(ids.begin(), ids.end(), arsf::SensorId{0});
  std::sort(ids.begin(), ids.end(), [&](arsf::SensorId a, arsf::SensorId b) {
    return largest ? widths[a] > widths[b] : widths[a] < widths[b];
  });
  ids.resize(fa);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace

int main() {
  std::printf("Figure 4 — Theorems 3 and 4 by exhaustive worst-case search\n\n");

  const std::vector<std::vector<arsf::Tick>> families = {
      {2, 3, 5}, {1, 4, 4}, {2, 2, 6}, {2, 3, 4, 5}, {1, 2, 3, 6}, {2, 2, 3, 4, 5},
  };

  arsf::support::TextTable table{
      {"widths", "f=fa", "|Sna|", "|SF| largest", "|SF| smallest", "|Swc|", "Thm3", "Thm4"}};
  bool all_pass = true;

  for (const auto& widths : families) {
    const int n = static_cast<int>(widths.size());
    const int f = arsf::max_bounded_f(n);
    const auto fa = static_cast<std::size_t>(f);

    const arsf::Tick clean = arsf::sim::worst_case_no_attack(widths, f);

    arsf::sim::WorstCaseConfig largest_config;
    largest_config.widths = widths;
    largest_config.f = f;
    largest_config.attacked = extreme_widths(widths, fa, /*largest=*/true);
    const arsf::Tick largest = arsf::sim::worst_case_fusion(largest_config).max_width;

    arsf::sim::WorstCaseConfig smallest_config = largest_config;
    smallest_config.attacked = extreme_widths(widths, fa, /*largest=*/false);
    const arsf::Tick smallest = arsf::sim::worst_case_fusion(smallest_config).max_width;

    const arsf::Tick global = arsf::sim::worst_case_over_sets(widths, f, fa);

    const bool thm3 = largest == clean;
    const bool thm4 = smallest == global;
    all_pass &= thm3 && thm4;

    std::string widths_text = "{";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      if (i) widths_text += ",";
      widths_text += std::to_string(widths[i]);
    }
    widths_text += "}";
    table.add_row({widths_text, std::to_string(f), std::to_string(clean),
                   std::to_string(largest), std::to_string(smallest), std::to_string(global),
                   thm3 ? "PASS" : "FAIL", thm4 ? "PASS" : "FAIL"});
  }
  std::printf("%s\n", table.render().c_str());

  // Illustrative configuration matching the figure: the argmax placement
  // when the smallest interval is attacked.
  arsf::sim::WorstCaseConfig illustration;
  illustration.widths = {2, 3, 5};
  illustration.f = 1;
  illustration.attacked = {0};
  const auto result = arsf::sim::worst_case_fusion(illustration);
  arsf::support::IntervalDiagram diagram{56};
  for (std::size_t i = 0; i < result.argmax.size(); ++i) {
    diagram.add("s" + std::to_string(i) + (i == 0 ? " [attacked]" : ""),
                static_cast<double>(result.argmax[i].lo),
                static_cast<double>(result.argmax[i].hi), i == 0);
  }
  const arsf::TickInterval fused = arsf::fused_interval_ticks(result.argmax, illustration.f);
  diagram.add_separator();
  diagram.add("S(N,f=1)", static_cast<double>(fused.lo), static_cast<double>(fused.hi));
  std::printf("worst-case configuration, widths {2,3,5}, smallest attacked:\n%s\n",
              diagram.render().c_str());

  std::printf("Shape check (paper): Theorem 3 and Theorem 4 hold on every family -> %s\n",
              all_pass ? "PASS" : "FAIL");
  return 0;
}
