// Over-all-subsets branch-and-bound speedup bench: the flat C(n, fa) loop
// (worst_case_over_sets_fast — every subset searched on the run-batched
// per-set lane) vs the BnB subset engine (worst_case_over_sets_bnb —
// symmetry dedup + admissible-bound pruning), single-threaded so the number
// is the lattice win, not fan-out.
//
// Workloads:
//   * an n = 12 heterogeneous-width workload (the acceptance target:
//     >= 5x over the exhaustive lane);
//   * every registered over-all-sets worstcase scenario vs its bnb/ twin;
//   * the bnb/large-n/ registry scenarios (n = 15-18): the BnB lane runs
//     them to completion; the exhaustive cost is PROJECTED from one timed
//     per-set search x C(n, fa) and declared DNF when it blows --budget —
//     these are the workloads the flat loop simply cannot finish.
//
// Both paths are cross-checked (max width AND best_set) wherever the
// exhaustive path runs; a mismatch fails the bench.  --json FILE emits the
// table plus the dedup/prune counters as BENCH_oversets.json-style data
// (bench/bench_json.h).
//
//   ./oversets_bnb_speedup [--repeat N] [--budget SECONDS] [--json FILE]

#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "bench_timing.h"
#include "scenario/registry.h"
#include "sim/worstcase.h"
#include "support/ascii.h"
#include "support/cli.h"

namespace {

using arsf::bench::ms_text;
using arsf::bench::ratio_text;
using arsf::bench::time_best_of;

struct Workload {
  std::string label;
  std::vector<arsf::Tick> widths;
  int f = 0;
  std::size_t fa = 0;
};

Workload workload_of(const arsf::scenario::Scenario& scenario) {
  const arsf::SystemConfig system = scenario.system();
  Workload w;
  w.label = scenario.name;
  w.widths = arsf::tick_widths(system, arsf::Quantizer{scenario.step});
  w.f = system.f;
  w.fa = scenario.fa;
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  const arsf::support::ArgParser args{argc, argv};
  const auto repeat = static_cast<int>(args.get_int("repeat", 3));
  const double budget = args.get_double("budget", 60.0);
  const std::string json_path = args.get_string("json", "");

  std::printf("Over-all-subsets BnB vs flat loop (single-threaded, best of %d, budget %.0f s)\n\n",
              repeat, budget);
  arsf::support::TextTable table{{"workload", "subsets", "classes", "evaluated", "exhaustive ms",
                                  "bnb ms", "speedup", "parity"}};
  arsf::bench::BenchReport report{"oversets_bnb_speedup"};

  bool all_match = true;
  bool hetero12_ok = false;
  bool opened_large_n = false;

  std::vector<Workload> workloads;
  {
    // The acceptance workload: n = 12, heterogeneous widths with repeats, so
    // both the dedup (C(12,2) = 66 subsets -> 6 classes) and the bound prune
    // carry weight, yet the flat loop still finishes for a measured ratio.
    Workload hetero;
    hetero.label = "hetero/n12-fa2";
    hetero.widths = {1, 1, 1, 1, 1, 1, 1, 1, 2, 2, 3, 3};
    hetero.f = 5;
    hetero.fa = 2;
    workloads.push_back(std::move(hetero));
  }
  const auto& registry = arsf::scenario::registry();
  for (const auto& scenario : registry.all()) {
    if (scenario.analysis != arsf::scenario::AnalysisKind::kWorstCase ||
        !scenario.over_all_sets) {
      continue;
    }
    workloads.push_back(workload_of(scenario));
  }

  for (const Workload& entry : workloads) {
    arsf::Tick exhaustive = 0;
    arsf::Tick bnb = 0;
    std::vector<arsf::SensorId> exhaustive_set;
    std::vector<arsf::SensorId> bnb_set;
    arsf::sim::engine::SubsetSearchStats stats;
    const double exhaustive_s = time_best_of(repeat, [&] {
      exhaustive = arsf::sim::worst_case_over_sets_fast(entry.widths, entry.f, entry.fa,
                                                        &exhaustive_set, 1);
    });
    const double bnb_s = time_best_of(repeat, [&] {
      bnb = arsf::sim::worst_case_over_sets_bnb(entry.widths, entry.f, entry.fa, &bnb_set, 1,
                                                true, &stats);
    });
    const bool match = exhaustive == bnb && exhaustive_set == bnb_set;
    all_match &= match;
    const double speedup = exhaustive_s / bnb_s;
    if (entry.label == "hetero/n12-fa2") hetero12_ok = speedup >= 5.0;
    table.add_row({entry.label, std::to_string(stats.subsets_total),
                   std::to_string(stats.classes_total), std::to_string(stats.classes_evaluated),
                   ms_text(exhaustive_s), ms_text(bnb_s), ratio_text(speedup),
                   match ? "OK" : "MISMATCH"});

    auto& row = report.add_row();
    row.text("workload", entry.label);
    row.number("n", static_cast<std::uint64_t>(entry.widths.size()));
    row.number("fa", static_cast<std::uint64_t>(entry.fa));
    row.number("subsets_total", stats.subsets_total);
    row.number("classes_total", stats.classes_total);
    row.number("classes_evaluated", stats.classes_evaluated);
    row.number("classes_pruned", stats.classes_pruned);
    row.number("subsets_pruned", stats.subsets_pruned);
    row.number("branches_pruned", stats.branches_pruned);
    row.number("exhaustive_ms", exhaustive_s * 1e3);
    row.number("bnb_ms", bnb_s * 1e3);
    row.number("speedup", speedup);
    row.boolean("exhaustive_projected", false);
    row.boolean("parity", match);
  }

  // ---- the frontier: n >= 15, exhaustive projected / DNF --------------------
  for (const auto* scenario : registry.match("bnb/large-n/")) {
    const Workload entry = workload_of(*scenario);
    arsf::Tick bnb = 0;
    std::vector<arsf::SensorId> bnb_set;
    arsf::sim::engine::SubsetSearchStats stats;
    const double bnb_s = time_best_of(repeat, [&] {
      bnb = arsf::sim::worst_case_over_sets_bnb(entry.widths, entry.f, entry.fa, &bnb_set, 1,
                                                true, &stats);
    });

    // Project the flat loop: one per-set search (the Theorem-4 seed set,
    // representative — every subset walks the same product space sizes up to
    // attacked-slot radices) x C(n, fa).
    arsf::sim::WorstCaseConfig per_set;
    per_set.widths = entry.widths;
    per_set.f = entry.f;
    per_set.num_threads = 1;
    per_set.attacked = bnb_set;
    const double one_set_s =
        time_best_of(1, [&] { (void)arsf::sim::worst_case_fusion_fast(per_set); });
    const double projected_s = one_set_s * static_cast<double>(stats.subsets_total);
    const bool dnf = projected_s > budget;
    opened_large_n |= dnf && bnb_s < budget;

    char projected[48];
    std::snprintf(projected, sizeof projected, "%s%.0f s%s", dnf ? "DNF ~" : "~", projected_s,
                  dnf ? "" : " (est)");
    table.add_row({entry.label, std::to_string(stats.subsets_total),
                   std::to_string(stats.classes_total), std::to_string(stats.classes_evaluated),
                   projected, ms_text(bnb_s),
                   ratio_text(projected_s / bnb_s), dnf ? "bnb-only" : "est"});

    auto& row = report.add_row();
    row.text("workload", entry.label);
    row.number("n", static_cast<std::uint64_t>(entry.widths.size()));
    row.number("fa", static_cast<std::uint64_t>(entry.fa));
    row.number("subsets_total", stats.subsets_total);
    row.number("classes_total", stats.classes_total);
    row.number("classes_evaluated", stats.classes_evaluated);
    row.number("classes_pruned", stats.classes_pruned);
    row.number("subsets_pruned", stats.subsets_pruned);
    row.number("branches_pruned", stats.branches_pruned);
    row.number("exhaustive_ms", projected_s * 1e3);
    row.number("bnb_ms", bnb_s * 1e3);
    row.number("speedup", projected_s / bnb_s);
    row.boolean("exhaustive_projected", true);
    row.boolean("exhaustive_dnf", dnf);
    row.number("max_width_ticks", static_cast<double>(bnb));
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("parity on every exhaustively-checked workload: %s\n",
              all_match ? "PASS" : "FAIL");
  std::printf("hetero n=12 speedup >= 5x: %s\n", hetero12_ok ? "PASS" : "FAIL");
  std::printf("n >= 15 workload opened (bnb finishes, exhaustive DNF in budget): %s\n",
              opened_large_n ? "PASS" : "FAIL");

  auto& summary = report.summary();
  summary.boolean("parity", all_match);
  summary.boolean("hetero12_speedup_ge_5x", hetero12_ok);
  summary.boolean("large_n_opened", opened_large_n);
  summary.number("budget_seconds", budget);
  report.write_if_requested(json_path);

  return all_match && hetero12_ok && opened_large_n ? 0 : 1;
}
