// fused_speedup — measures the tentpole claim of the fused multi-analysis
// engine: one world pass for k member analyses instead of k passes.
//
// For the largest Table 1 configuration (by world count) it times each
// member of the registered fused/<name> bundle standalone, then the fused
// bundle, and reports the speedup — on the attacker-policy lane (the paper's
// own Table 1 configuration, serial by contract) and on the run-batched
// clean lane, the latter additionally at the host's full thread count when
// more than one vCPU is available (graceful single-core fallback: the
// multi-thread row is simply skipped).
//
// Every row carries a `parity` boolean: the fused metrics were compared
// bit-identically against every standalone member AND across engine threads
// {1, 0} before the row was emitted.  `--json FILE` writes the committed
// BENCH_fused.json artefact via the shared bench/bench_json.h contract.
//
//   ./fused_speedup [--repeat N] [--json FILE]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "scenario/registry.h"
#include "scenario/runner.h"
#include "scenario/sweep.h"
#include "support/ascii.h"
#include "support/cli.h"

namespace {

using arsf::scenario::AnalysisKind;
using arsf::scenario::Runner;
using arsf::scenario::Scenario;
using arsf::scenario::ScenarioResult;

/// Minimum wall-clock over @p repeat runs (the usual bench estimator: the
/// least-disturbed run); the result of the last run is kept for parity.
double time_scenario(const Runner& runner, const Scenario& scenario, int repeat,
                     ScenarioResult& result) {
  using Clock = std::chrono::steady_clock;
  double best = 1e300;
  for (int i = 0; i < repeat; ++i) {
    const auto start = Clock::now();
    result = runner.run(scenario);
    best = std::min(best, std::chrono::duration<double>(Clock::now() - start).count());
    if (!result.ok()) break;
  }
  return best;
}

/// True when every metric of @p reference appears in @p fused with a
/// bit-identical value.
bool covers(const ScenarioResult& fused, const ScenarioResult& reference) {
  for (const auto& metric : reference.metrics) {
    if (fused.metric_or(metric.key, -1e308) != metric.value) return false;
  }
  return true;
}

struct LaneResult {
  bool ok = false;
  bool parity = false;
  double fused_seconds = 0.0;
  double standalone_total_seconds = 0.0;
  std::vector<double> member_seconds;
};

/// Times one fused bundle vs its standalone members at @p threads, checking
/// parity against every member and across engine threads {threads, 0}.
LaneResult run_lane(const Scenario& fused, unsigned threads, int repeat) {
  const Runner runner;
  LaneResult lane;

  Scenario bundle = fused;
  bundle.num_threads = threads;
  ScenarioResult fused_result;
  lane.fused_seconds = time_scenario(runner, bundle, repeat, fused_result);
  if (!fused_result.ok()) {
    std::fprintf(stderr, "%s: %s\n", bundle.name.c_str(), fused_result.error.c_str());
    return lane;
  }

  // Thread-count invariance half of the parity bit: the same bundle on the
  // default pool fan-out must be bit-identical.
  Scenario pooled = bundle;
  pooled.num_threads = 0;
  const ScenarioResult pooled_result = runner.run(pooled);
  lane.parity = pooled_result.ok() && covers(fused_result, pooled_result) &&
                covers(pooled_result, fused_result);

  for (const AnalysisKind member : fused.fused_members) {
    Scenario standalone = bundle;
    standalone.analysis = member;
    standalone.fused_members.clear();
    ScenarioResult member_result;
    const double seconds = time_scenario(runner, standalone, repeat, member_result);
    if (!member_result.ok()) {
      std::fprintf(stderr, "%s (%s): %s\n", standalone.name.c_str(),
                   arsf::scenario::to_string(member).c_str(), member_result.error.c_str());
      return lane;
    }
    lane.member_seconds.push_back(seconds);
    lane.standalone_total_seconds += seconds;
    lane.parity = lane.parity && covers(fused_result, member_result);
  }
  lane.ok = true;
  return lane;
}

}  // namespace

int main(int argc, char** argv) {
  const arsf::support::ArgParser args{argc, argv};
  const auto repeat = static_cast<int>(args.get_int("repeat", 5));
  const std::string json_path = args.get_string("json", "");

  // The largest Table 1 configuration by world count — the acceptance
  // workload — resolved from the registry, not hardcoded.
  const auto table1 = arsf::scenario::registry().match("table1/");
  const Scenario* largest = nullptr;
  for (const Scenario* scenario : table1) {
    if (largest == nullptr ||
        arsf::scenario::estimated_worlds(*scenario) > arsf::scenario::estimated_worlds(*largest)) {
      largest = scenario;
    }
  }
  if (largest == nullptr) {
    std::fprintf(stderr, "no table1/ scenarios registered\n");
    return 1;
  }
  const Scenario* bundle = arsf::scenario::registry().find("fused/" + largest->name);
  if (bundle == nullptr) {
    std::fprintf(stderr, "missing fused/ twin of %s\n", largest->name.c_str());
    return 1;
  }
  const std::uint64_t worlds = arsf::scenario::estimated_worlds(*bundle);
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());

  std::printf("fused_speedup — one world pass, %zu member analyses\n",
              bundle->fused_members.size());
  std::printf("workload: %s (%llu worlds), repeat=%d, host threads=%u\n\n",
              bundle->name.c_str(), static_cast<unsigned long long>(worlds), repeat, hardware);

  // The clean-lane twin exercises the run-batched closed forms (and actually
  // scales with threads; the policy lane is serial by the engine contract).
  Scenario clean = *bundle;
  clean.name = bundle->name + "/clean";
  clean.fa = 0;
  clean.policy = arsf::scenario::PolicyKind::kNone;

  struct RowSpec {
    const Scenario* scenario;
    const char* lane;
    unsigned threads;
  };
  std::vector<RowSpec> specs = {{bundle, "policy", 1}, {&clean, "clean", 1}};
  // First real >1-vCPU scaling numbers; skipped gracefully on a 1-core host.
  if (hardware > 1) specs.push_back({&clean, "clean", hardware});

  arsf::bench::BenchReport report{"fused_speedup"};
  arsf::support::TextTable table{
      {"lane", "threads", "standalone ms", "fused ms", "speedup", "parity"}};
  bool all_ok = true;
  bool all_parity = true;
  double policy_speedup = 0.0;

  for (const RowSpec& spec : specs) {
    const LaneResult lane = run_lane(*spec.scenario, spec.threads, repeat);
    if (!lane.ok) {
      all_ok = false;
      continue;
    }
    const double speedup = lane.standalone_total_seconds / lane.fused_seconds;
    if (spec.threads == 1 && std::string(spec.lane) == "policy") policy_speedup = speedup;
    all_parity = all_parity && lane.parity;

    table.add_row({spec.lane, std::to_string(spec.threads),
                   arsf::support::format_number(lane.standalone_total_seconds * 1e3, 2),
                   arsf::support::format_number(lane.fused_seconds * 1e3, 2),
                   arsf::support::format_number(speedup, 2), lane.parity ? "yes" : "NO"});

    auto& row = report.add_row();
    row.text("scenario", spec.scenario->name);
    row.text("lane", spec.lane);
    row.number("threads", std::uint64_t{spec.threads});
    row.number("worlds", worlds);
    row.number("members", std::uint64_t{spec.scenario->fused_members.size()});
    for (std::size_t m = 0; m < spec.scenario->fused_members.size(); ++m) {
      row.number("standalone_" + arsf::scenario::to_string(spec.scenario->fused_members[m]) +
                     "_ms",
                 lane.member_seconds[m] * 1e3);
    }
    row.number("standalone_total_ms", lane.standalone_total_seconds * 1e3);
    row.number("fused_ms", lane.fused_seconds * 1e3);
    row.number("speedup", speedup);
    row.boolean("parity", lane.parity);
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("policy-lane single-thread speedup: %sx (acceptance floor 2.5x)\n",
              arsf::support::format_number(policy_speedup, 2).c_str());

  report.summary().text("workload", bundle->name);
  report.summary().number("worlds", worlds);
  report.summary().number("repeat", std::uint64_t{static_cast<unsigned>(repeat)});
  report.summary().number("hardware_threads", std::uint64_t{hardware});
  report.summary().number("policy_single_thread_speedup", policy_speedup);
  report.summary().boolean("all_parity", all_parity);
  report.write_if_requested(json_path);

  return (all_ok && all_parity) ? 0 : 1;
}
