// Extension experiment — hard-to-spoof sensors transmit last (paper §IV-C).
//
// "In cases like these, where the system is confident that some sensors are
//  correct, our analysis shows that they should always be placed last in the
//  schedule, thus preventing the attacker from knowing their measurements."
//
// Setup: an IMU-like sensor is both the most precise and un-spoofable, so
// the attacker compromises the most precise *untrusted* sensor.  Under plain
// Ascending the trusted sensor transmits first and hands the attacker its
// (very informative) interval; TrustedLast keeps it hidden.  The bench
// computes the exact expected fusion width for both orders plus Descending.

#include <cstdio>

#include "sim/enumerate.h"
#include "support/ascii.h"

namespace {

double expected_width(const arsf::SystemConfig& system, const arsf::sched::Order& order,
                      const std::vector<arsf::SensorId>& attacked) {
  arsf::sim::EnumerateConfig config;
  config.system = system;
  config.order = order;
  config.attacked = attacked;
  arsf::attack::ExpectationPolicy policy;
  config.policy = &policy;
  return arsf::sim::enumerate_expected_width(config).expected_width;
}

}  // namespace

int main() {
  // Mirrors the paper's own example: "an IMU is in general much harder to
  // spoof than a GPS or a camera".  The IMU (width 2) and the wheel encoder
  // (width 5) are trusted; the attacker compromises the most precise
  // *spoofable* sensor, the GPS (width 11).  Under plain Ascending the GPS
  // transmits third — in active mode, having seen both trusted intervals;
  // under TrustedLast it transmits first, blind and pinned by the passive
  // rule.
  arsf::SystemConfig system = arsf::make_config({2.0, 5.0, 11.0, 17.0});
  system.sensors[0].name = "imu";
  system.sensors[0].trusted = true;
  system.sensors[1].name = "encoder";
  system.sensors[1].trusted = true;
  system.sensors[2].name = "gps";
  system.sensors[3].name = "camera";
  const std::vector<arsf::SensorId> attacked = {2};  // gps

  const auto ascending = arsf::sched::ascending_order(system);        // imu first
  const auto trusted_last = arsf::sched::trusted_last_order(system);  // trusted last
  const auto descending = arsf::sched::descending_order(system);

  std::printf("Extension — TrustedLast schedule (paper Section IV-C)\n");
  std::printf("n=4, f=1, widths {2 imu*, 5 encoder*, 11 gps, 17 camera} (* = trusted);\n");
  std::printf("attacked: the gps (most precise spoofable); exact E|S| by enumeration\n\n");

  auto order_text = [&](const arsf::sched::Order& order) {
    std::string text;
    for (const auto id : order) {
      if (!text.empty()) text += " -> ";
      text += system.sensors[id].name;
    }
    return text;
  };

  const double e_ascending = expected_width(system, ascending, attacked);
  const double e_trusted = expected_width(system, trusted_last, attacked);
  const double e_descending = expected_width(system, descending, attacked);

  arsf::support::TextTable table{{"schedule", "order", "E|S|"}};
  table.add_row({"ascending", order_text(ascending),
                 arsf::support::format_number(e_ascending, 3)});
  table.add_row({"trusted-last", order_text(trusted_last),
                 arsf::support::format_number(e_trusted, 3)});
  table.add_row({"descending", order_text(descending),
                 arsf::support::format_number(e_descending, 3)});
  std::printf("%s\n", table.render().c_str());

  std::printf("Check (paper's claim): the trusted sensors' measurements stay hidden from the\n");
  std::printf("attacker, and her slot moves before the active-mode gate: trusted-last <\n");
  std::printf("ascending -> %s (%.3f vs %.3f)\n",
              e_trusted < e_ascending - 1e-9 ? "PASS" : "FAIL", e_trusted, e_ascending);
  return 0;
}
