// Extension experiment — hard-to-spoof sensors transmit last (paper §IV-C).
//
// "In cases like these, where the system is confident that some sensors are
//  correct, our analysis shows that they should always be placed last in the
//  schedule, thus preventing the attacker from knowing their measurements."
//
// Setup: an IMU-like sensor is both the most precise and un-spoofable, so
// the attacker compromises the most precise *untrusted* sensor.  Under plain
// Ascending the trusted sensor transmits first and hands the attacker its
// (very informative) interval; TrustedLast keeps it hidden.  The bench
// computes the exact expected fusion width for both orders plus Descending.
//
// The system (widths, trusted flags, attacked gps) is the registry's
// "ext/trusted-last" scenario; the two comparison schedules are clones.

#include <cstdio>

#include "scenario/registry.h"
#include "scenario/runner.h"
#include "support/ascii.h"

int main() {
  const auto& base = arsf::scenario::registry().at("ext/trusted-last");
  arsf::SystemConfig system = base.system();
  system.sensors[0].name = "imu";
  system.sensors[1].name = "encoder";
  system.sensors[2].name = "gps";
  system.sensors[3].name = "camera";

  auto with_schedule = [&](arsf::sched::ScheduleKind kind) {
    arsf::scenario::Scenario scenario = base;
    scenario.name = "ext/trusted-last/" + arsf::sched::to_string(kind);
    scenario.schedule = kind;
    scenario.fixed_order.clear();
    return scenario;
  };
  const std::vector<arsf::scenario::Scenario> scenarios = {
      with_schedule(arsf::sched::ScheduleKind::kAscending),
      base,  // the registered trusted-last schedule
      with_schedule(arsf::sched::ScheduleKind::kDescending),
  };

  std::printf("Extension — TrustedLast schedule (paper Section IV-C)\n");
  std::printf("n=4, f=1, widths {2 imu*, 5 encoder*, 11 gps, 17 camera} (* = trusted);\n");
  std::printf("attacked: the gps (most precise spoofable); exact E|S| by enumeration\n\n");

  const arsf::scenario::Runner runner;
  const auto results = runner.run_batch(std::span<const arsf::scenario::Scenario>{scenarios});
  for (const auto& result : results) {
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", result.scenario.c_str(), result.error.c_str());
      return 1;
    }
  }

  auto order_text = [&](const arsf::scenario::Scenario& scenario) {
    std::string text;
    for (const auto id : arsf::scenario::resolve_order(scenario, system)) {
      if (!text.empty()) text += " -> ";
      text += system.sensors[id].name;
    }
    return text;
  };

  arsf::support::TextTable table{{"schedule", "order", "E|S|"}};
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    table.add_row({arsf::sched::to_string(scenarios[i].schedule), order_text(scenarios[i]),
                   arsf::support::format_number(results[i].metric("expected_width"), 3)});
  }
  std::printf("%s\n", table.render().c_str());

  const double e_ascending = results[0].metric("expected_width");
  const double e_trusted = results[1].metric("expected_width");
  std::printf("Check (paper's claim): the trusted sensors' measurements stay hidden from the\n");
  std::printf("attacker, and her slot moves before the active-mode gate: trusted-last <\n");
  std::printf("ascending -> %s (%.3f vs %.3f)\n",
              e_trusted < e_ascending - 1e-9 ? "PASS" : "FAIL", e_trusted, e_ascending);
  return 0;
}
