// Attack visualizer: runs one protocol round step by step and draws what the
// attacker saw, what she transmitted, the fusion interval, and the detector's
// verdict — the paper's Figs. 2-5 as an interactive tool.
//
//   ./attack_visualizer [--widths 5,11,17] [--schedule descending]
//                       [--policy expectation|shift|random|naive] [--seed N]
//   ./attack_visualizer --scenario fig5/pinned-fusion
//
// --scenario draws one round of a registered scenario instead (its system,
// schedule and attacked set; the policy/seed flags still apply).

#include <cstdio>

#include "scenario/analysis.h"
#include "scenario/registry.h"
#include "sim/protocol.h"
#include "support/ascii.h"
#include "support/cli.h"

namespace {

std::unique_ptr<arsf::attack::AttackPolicy> parse_policy(const std::string& name) {
  if (name == "shift") {
    return std::make_unique<arsf::attack::ShiftPolicy>(arsf::attack::ShiftPolicy::Side::kRight);
  }
  if (name == "random") return std::make_unique<arsf::attack::RandomFeasiblePolicy>();
  if (name == "naive") return std::make_unique<arsf::attack::NaiveOffsetPolicy>(25);
  return arsf::attack::make_expectation_policy();
}

}  // namespace

int main(int argc, char** argv) {
  const arsf::support::ArgParser args{argc, argv};
  const std::vector<double> widths = args.get_double_list("widths", {5, 11, 17});
  const std::string schedule_name = args.get_string("schedule", "descending");
  const std::string policy_name = args.get_string("policy", "expectation");
  const std::string scenario_name = args.get_string("scenario", "");
  arsf::support::Rng rng{static_cast<std::uint64_t>(args.get_int("seed", 3))};

  arsf::SystemConfig system;
  arsf::sched::Order order;
  std::vector<arsf::SensorId> attacked;
  double step = 1.0;
  if (!scenario_name.empty()) {
    try {
      const auto& scenario = arsf::scenario::registry().at(scenario_name);
      system = scenario.system();
      order = arsf::scenario::resolve_order(scenario, system);
      attacked = arsf::scenario::resolve_attacked(scenario, system, order);
      step = scenario.step;
    } catch (const std::exception& e) {  // unknown name, random schedule, ...
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    if (attacked.empty()) {
      std::fprintf(stderr, "scenario '%s' has no attacked sensor to visualize\n",
                   scenario_name.c_str());
      return 1;
    }
  } else {
    system = arsf::make_config(widths);
    order = schedule_name == "ascending" ? arsf::sched::ascending_order(system)
                                         : arsf::sched::descending_order(system);
    attacked = arsf::sched::choose_attacked_set(system, order, 1,
                                                arsf::sched::AttackedSetRule::kSmallestWidths);
  }
  auto policy = parse_policy(policy_name);

  // Draw a random world (true value 0).
  const auto setup = arsf::attack::make_setup(system, arsf::Quantizer{step}, attacked, order);
  std::vector<arsf::TickInterval> readings(system.n());
  for (arsf::SensorId id = 0; id < system.n(); ++id) {
    const arsf::Tick lo = rng.uniform_int(-setup.widths[id], 0);
    readings[id] = {lo, lo + setup.widths[id]};
  }

  std::printf("attack visualizer: %s=%s, policy=%s, attacked sensor s%zu (width %s)\n",
              scenario_name.empty() ? "schedule" : "scenario",
              scenario_name.empty() ? schedule_name.c_str() : scenario_name.c_str(),
              policy->name().c_str(), attacked[0],
              arsf::support::format_number(system.sensors[attacked[0]].width).c_str());
  std::printf("true value: 0 (marked '*'); attacker's slot: %zu of %zu\n\n",
              arsf::sched::slot_of(order, attacked[0]) + 1, system.n());

  const auto result = arsf::sim::run_tick_round(setup, readings, policy.get(), rng);

  arsf::support::IntervalDiagram diagram{64};
  for (std::size_t slot = 0; slot < order.size(); ++slot) {
    const arsf::SensorId id = order[slot];
    const bool is_attacked = id == attacked[0];
    std::string label = "slot " + std::to_string(slot + 1) + ": s" + std::to_string(id);
    if (is_attacked) label += " [ATTACKED]";
    diagram.add(label, static_cast<double>(result.transmitted[id].lo),
                static_cast<double>(result.transmitted[id].hi), is_attacked);
  }
  diagram.add_separator();
  if (!result.fused.is_empty()) {
    diagram.add("fusion S(N,f=" + std::to_string(system.f) + ")",
                static_cast<double>(result.fused.lo), static_cast<double>(result.fused.hi));
  } else {
    diagram.add_empty("fusion");
  }
  diagram.set_marker(0.0, '*');
  std::printf("%s\n", diagram.render().c_str());

  std::printf("attacker's correct reading was %s; she transmitted %s\n",
              arsf::to_string(readings[attacked[0]]).c_str(),
              arsf::to_string(result.transmitted[attacked[0]]).c_str());
  const auto clean_width = arsf::fused_width_ticks(readings, system.f);
  std::printf("fused width: %lld (honest round would have been %lld)\n",
              static_cast<long long>(result.fused.is_empty() ? 0 : result.fused.width()),
              static_cast<long long>(clean_width));
  std::printf("detector verdict: %s\n",
              result.attacked_detected
                  ? "ATTACK DETECTED (interval discarded) — try --policy expectation"
                  : "no sensor flagged (attack stealthy)");
  std::printf("\nTry: --policy naive (gets caught), --schedule ascending (attacker first),\n");
  std::printf("     --widths 2,9,10 (precision disparity) or a different --seed.\n");
  return 0;
}
