// Quickstart: build intervals from measurements, fuse them with Marzullo's
// algorithm for several fault bounds f, and run attack detection.
//
//   ./quickstart [--f 1]
//
// This is the five-minute tour of the core API: arsf::Interval, arsf::fuse,
// arsf::detect and the ASCII diagram renderer.

#include <cstdio>
#include <vector>

#include "core/detection.h"
#include "core/estimate.h"
#include "support/ascii.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  const arsf::support::ArgParser args{argc, argv};
  const int requested_f = static_cast<int>(args.get_int("f", -1));

  // Five sensors measuring the same physical value (true value: 10.0).
  // Sensor s4 is lying: its interval does not contain the true value.
  const std::vector<arsf::Interval> intervals = {
      arsf::Interval::centered(10.2, 1.0),   // s0, width 1
      arsf::Interval::centered(9.9, 2.0),    // s1, width 2
      arsf::Interval::centered(10.4, 3.0),   // s2, width 3
      arsf::Interval::centered(9.6, 4.0),    // s3, width 4
      arsf::Interval::centered(14.0, 2.0),   // s4, width 2 — faulty/attacked
  };

  std::printf("Marzullo fusion of %zu intervals (true value 10.0, s4 is lying)\n\n",
              intervals.size());

  arsf::support::IntervalDiagram diagram{60};
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    diagram.add("s" + std::to_string(i), intervals[i].lo, intervals[i].hi, i == 4);
  }
  diagram.add_separator();

  const auto fusions = arsf::fuse_all_f(intervals);
  for (int f = 0; f < static_cast<int>(intervals.size()); ++f) {
    if (requested_f >= 0 && f != requested_f) continue;
    const auto& result = fusions[static_cast<std::size_t>(f)];
    if (result.interval) {
      diagram.add("S(f=" + std::to_string(f) + ")", result.interval->lo, result.interval->hi);
    } else {
      diagram.add_empty("S(f=" + std::to_string(f) + ")");
    }
  }
  diagram.set_marker(10.0, '*');
  std::printf("%s\n", diagram.render().c_str());

  const int f = requested_f >= 0 ? requested_f : 1;
  const auto report = arsf::fuse_and_detect(intervals, f);
  std::printf("detection with f=%d: %d sensor(s) flagged\n", f, report.num_flagged);
  for (std::size_t i = 0; i < report.flagged.size(); ++i) {
    if (report.flagged[i]) {
      std::printf("  -> s%zu does not intersect the fusion interval (compromised)\n", i);
    }
  }

  const auto estimate = arsf::fused_midpoint(intervals, f);
  if (estimate) {
    std::printf("fused point estimate (midpoint): %.3f  (mean of midpoints: %.3f)\n",
                *estimate, arsf::mean_midpoint(intervals));
  }
  return 0;
}
