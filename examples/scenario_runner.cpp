// Scenario runner: the one entry point to the scenario registry.  List every
// registered scenario (and sweep), run any of them (or a whole family) as a
// concurrent batch, expand and stream a parameter sweep, merge user overlay
// files, dump the unified CSV report or JSONL records, or print a
// scenario's/sweep's JSON descriptor.
//
//   ./scenario_runner --list
//   ./scenario_runner --run table1/r0/ascending
//   ./scenario_runner --prefix fig4/ [--threads 4] [--csv report.csv]
//   ./scenario_runner --all --smoke
//   ./scenario_runner --sweep sweep/table1-grid [--chunk 256] [--progress]
//   ./scenario_runner --sweep sweep/table1-grid --csv report.csv --resume
//   ./scenario_runner --sweep-json my_sweep.json
//   ./scenario_runner --overlay workloads.jsonl --run my/scenario --jsonl
//   ./scenario_runner --run table1/r5/ascending --fused enumerate,detection-rate
//   ./scenario_runner --json stress/fine-grid
//
// --overlay FILE merges one Scenario or SweepSpec JSON per line (the file
// format of ScenarioRegistry::merge) before names are resolved, so new
// workloads run without a rebuild.  --sweep-json FILE executes one
// unregistered SweepSpec JSON object straight from a file (the text --json
// prints), skipping the overlay/registry round-trip entirely.  --jsonl streams one JSON object per
// result to stdout as scenarios finish; --csv streams the unified CSV report
// the same way; --progress adds a per-result progress line on stderr.
// --smoke substitutes each scenario's coarse smoke variant (capped rounds,
// cost-bounded attacker) — the same configuration the scenario_smoke ctest
// executes.  Exits non-zero when any result carries an error, so smoke runs
// can gate CI.
//
// --fused a,b,c rewrites every selected scenario into an ad-hoc fused bundle
// (analysis kinds a,b,c over one shared world pass, see
// sim/engine/accumulators.h) without writing any JSON: the batch runs
// `fused/adhoc/<name>` twins instead of the originals.  Member kinds must be
// fusable (enumerate, width-histogram, detection-rate, width-argmax) and
// unique; every offending member gets its own error line and the process
// exits 2 before anything runs.
//
// Sweeps streaming to --csv checkpoint their progress to `<csv>.progress`
// after every flushed chunk (removed on completion); --resume picks an
// interrupted sweep back up at that chunk boundary, truncating the CSV to
// the checkpointed byte first so the resumed file is byte-identical to an
// uninterrupted run.  A CSV that shrank below its checkpoint (external
// truncation) is repaired to its last complete result instead of refused.
//
// Robust execution knobs: --deadline-ms N arms a per-scenario wall-clock
// budget (scenarios with their own deadline_ms keep it); --retries N re-runs
// a failed scenario up to N more times; --degrade re-admits a timed-out
// scenario as its smoke variant, marked `degraded`.  Failures never abort
// the batch — every slot reports a structured status frame, and a
// human-readable error frame goes to STDERR per failure, so --jsonl stdout
// stays pure JSON lines.
//
// Result cache: --cache[=BYTES] wires the content-addressed result cache
// (scenario/result_cache.h) into the run — repeated and canonically
// equivalent scenarios are answered from memory, sweeps share work across
// grid points, and cached rows are flagged from_cache in every output.
// --cache-dir DIR additionally persists the cache to DIR/result_cache.jsonl
// (loaded on start, saved write-then-rename on exit), so a re-run of the
// same workload starts warm.  --cache-stats prints hit/miss/insert/evict
// counters to stderr at the end — stderr, so --jsonl stdout stays pure.

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <optional>

#include "scenario/result_cache.h"

#include "scenario/registry.h"
#include "scenario/report.h"
#include "scenario/runner.h"
#include "scenario/sink.h"
#include "scenario/sweep.h"
#include "support/ascii.h"
#include "support/cli.h"

namespace {

// Counts failures on the way through so the exit code can gate CI without
// re-materialising streamed results, and prints one human-readable error
// frame per failure to stderr — stdout stays reserved for --jsonl/--list
// output.
class FailureCountingSink final : public arsf::scenario::ResultSink {
 public:
  explicit FailureCountingSink(arsf::scenario::ResultSink& inner) : inner_(inner) {}

  void on_result(std::size_t index, const arsf::scenario::ScenarioResult& result) override {
    if (!result.ok()) {
      ++failures_;
      std::fprintf(stderr, "[%zu] %s: %s (%s after %u attempt(s)): %s\n", index,
                   result.scenario.c_str(), result.analysis.c_str(),
                   arsf::scenario::to_string(result.status).c_str(), result.attempts,
                   result.error.c_str());
    }
    inner_.on_result(index, result);
  }
  void on_finish(std::size_t total) override { inner_.on_finish(total); }

  [[nodiscard]] int failures() const noexcept { return failures_; }

 private:
  arsf::scenario::ResultSink& inner_;
  int failures_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const arsf::support::ArgParser args{argc, argv};
  const bool list = args.has("list");
  const bool all = args.has("all");
  const bool smoke = args.has("smoke");
  const bool jsonl = args.has("jsonl");
  const bool progress = args.has("progress");
  const bool resume = args.has("resume");
  const std::string run_name = args.get_string("run", "");
  const std::string prefix = args.get_string("prefix", "");
  const std::string sweep_name = args.get_string("sweep", "");
  const std::string sweep_json_path = args.get_string("sweep-json", "");
  const std::string overlay_path = args.get_string("overlay", "");
  const std::string json_name = args.get_string("json", "");
  const std::string csv_path = args.get_string("csv", "");
  const std::string fused_arg = args.get_string("fused", "");
  const auto threads = static_cast<unsigned>(args.get_int("threads", 0));
  const std::int64_t chunk_arg = args.get_int("chunk", 256);
  const std::int64_t deadline_arg = args.get_int("deadline-ms", 0);
  const std::int64_t retries_arg = args.get_int("retries", 0);
  const bool degrade = args.has("degrade");
  const bool cache_flag = args.has("cache");
  const std::string cache_arg = args.get_string("cache", "");
  const std::string cache_dir = args.get_string("cache-dir", "");
  const bool cache_stats = args.has("cache-stats");

  for (const auto& unknown : args.unknown()) {
    std::fprintf(stderr, "unknown option --%s\n", unknown.c_str());
    return 2;
  }
  // A negative value would cast to a huge size_t and silently disable the
  // bounded-memory chunking --chunk exists for.
  if (chunk_arg <= 0) {
    std::fprintf(stderr, "--chunk must be >= 1 (got %lld)\n",
                 static_cast<long long>(chunk_arg));
    return 2;
  }
  const auto chunk = static_cast<std::size_t>(chunk_arg);
  // Same trap for the robustness knobs: a negative value cast to unsigned
  // would mean "an absurdly long deadline" / "billions of retries".
  if (deadline_arg < 0) {
    std::fprintf(stderr, "--deadline-ms must be >= 0 (got %lld; 0 disables the deadline)\n",
                 static_cast<long long>(deadline_arg));
    return 2;
  }
  if (retries_arg < 0) {
    std::fprintf(stderr, "--retries must be >= 0 (got %lld; 0 disables retries)\n",
                 static_cast<long long>(retries_arg));
    return 2;
  }
  // --cache byte budget: strict digits-only parse, so a negative number, a
  // unit suffix or any other garbage is rejected instead of silently parsed
  // to "whatever strtoull stopped at".
  std::uint64_t cache_budget = arsf::scenario::ResultCache::kDefaultByteBudget;
  if (cache_flag && !cache_arg.empty()) {
    std::uint64_t parsed = 0;
    const auto [end, ec] =
        std::from_chars(cache_arg.data(), cache_arg.data() + cache_arg.size(), parsed);
    if (ec != std::errc{} || end != cache_arg.data() + cache_arg.size() || parsed == 0) {
      std::fprintf(stderr, "--cache: byte budget must be a positive integer (got '%s')\n",
                   cache_arg.c_str());
      return 2;
    }
    cache_budget = parsed;
  }
  const bool cache_enabled = cache_flag || !cache_dir.empty();
  if (cache_stats && !cache_enabled) {
    std::fprintf(stderr, "--cache-stats requires --cache or --cache-dir\n");
    return 2;
  }

  // --fused a,b,c: resolve the ad-hoc member list up front so EVERY bad
  // member gets its own error line (not just the first) before anything runs.
  std::vector<arsf::scenario::AnalysisKind> fused_members;
  if (args.has("fused")) {
    if (!sweep_name.empty() || !sweep_json_path.empty()) {
      std::fprintf(stderr, "--fused applies to scenario batches, not sweeps\n");
      return 2;
    }
    std::vector<std::string> member_names;
    std::string current;
    for (const char c : fused_arg) {
      if (c == ',') {
        member_names.push_back(current);
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    member_names.push_back(current);
    int bad_members = 0;
    for (const auto& member : member_names) {
      if (member.empty()) {
        std::fprintf(stderr, "--fused: empty member in '%s'\n", fused_arg.c_str());
        ++bad_members;
        continue;
      }
      arsf::scenario::AnalysisKind kind;
      try {
        kind = arsf::scenario::analysis_kind_from_string(member);
      } catch (const std::invalid_argument&) {
        std::fprintf(stderr, "--fused: unknown fused member '%s'\n", member.c_str());
        ++bad_members;
        continue;
      }
      if (!arsf::scenario::is_fusable(kind)) {
        std::fprintf(stderr, "--fused: member '%s' is not fusable\n", member.c_str());
        ++bad_members;
        continue;
      }
      if (std::find(fused_members.begin(), fused_members.end(), kind) != fused_members.end()) {
        std::fprintf(stderr, "--fused: duplicate fused member '%s'\n", member.c_str());
        ++bad_members;
        continue;
      }
      fused_members.push_back(kind);
    }
    if (bad_members != 0) return 2;
  }

  // The process-wide registry is immutable; overlays merge into a copy.
  arsf::scenario::ScenarioRegistry registry = arsf::scenario::registry();
  if (!overlay_path.empty()) {
    try {
      registry.load_overlay(overlay_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--overlay %s: %s\n", overlay_path.c_str(), e.what());
      return 2;
    }
  }

  if (!sweep_name.empty() && !sweep_json_path.empty()) {
    std::fprintf(stderr, "--sweep and --sweep-json are mutually exclusive\n");
    return 2;
  }

  const bool sweeping = !sweep_name.empty() || !sweep_json_path.empty();
  if (resume && (!sweeping || csv_path.empty())) {
    std::fprintf(stderr, "--resume requires --sweep/--sweep-json and --csv\n");
    return 2;
  }
  if (json_name.empty() && !list && !all && run_name.empty() && prefix.empty() &&
      sweep_name.empty() && sweep_json_path.empty()) {
    std::printf("usage: scenario_runner --list | --json NAME |\n");
    std::printf("       (--run NAME | --prefix FAMILY/ | --all | --sweep NAME |\n");
    std::printf("        --sweep-json FILE)\n");
    std::printf("       [--overlay FILE] [--smoke] [--fused a,b,c] [--threads N] [--chunk N]\n");
    std::printf("       [--csv report.csv] [--resume] [--jsonl] [--progress]\n");
    std::printf("       [--deadline-ms N] [--retries N] [--degrade]\n");
    std::printf("       [--cache[=BYTES]] [--cache-dir DIR] [--cache-stats]\n");
    std::printf("registry: %zu scenarios, %zu sweeps\n", registry.size(),
                registry.sweeps().size());
    return 0;
  }

  if (!json_name.empty()) {
    if (const auto* sweep = registry.find_sweep(json_name)) {
      std::printf("%s\n", sweep->to_json().c_str());
      return 0;
    }
    try {
      std::printf("%s\n", registry.at(json_name).to_json().c_str());
    } catch (const std::out_of_range& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    return 0;
  }

  if (list) {
    arsf::support::TextTable table{{"name", "analysis", "n", "schedule", "description"}};
    for (const auto& scenario : registry.all()) {
      table.add_row({scenario.name, arsf::scenario::to_string(scenario.analysis),
                     std::to_string(scenario.n()), arsf::sched::to_string(scenario.schedule),
                     scenario.description});
    }
    for (const auto& sweep : registry.sweeps()) {
      table.add_row({sweep.name, "sweep(" + std::to_string(sweep.size()) + ")",
                     std::to_string(sweep.base.n()), "-", sweep.description});
    }
    std::printf("%s%zu scenarios, %zu sweeps registered\n", table.render().c_str(),
                registry.size(), registry.sweeps().size());
    return 0;
  }

  // Resolve the sweep spec (if any) before the sinks open: --resume must
  // validate the checkpoint against the spec that will actually run, and
  // decide whether the CSV is truncated-and-appended or rewritten.
  std::optional<arsf::scenario::SweepSpec> sweep_spec;
  if (sweeping) {
    if (!sweep_json_path.empty()) {
      try {
        sweep_spec = arsf::scenario::load_sweep_spec(sweep_json_path);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "--sweep-json: %s\n", e.what());
        return 2;
      }
    } else {
      const arsf::scenario::SweepSpec* found = registry.find_sweep(sweep_name);
      if (found == nullptr) {
        std::fprintf(stderr, "no sweep '%s' (see --list)\n", sweep_name.c_str());
        return 1;
      }
      sweep_spec = *found;
    }
    // --smoke smokes the template: every grid point inherits the capped
    // rounds / cost-bounded attacker from the base.
    if (smoke) sweep_spec->base = arsf::scenario::smoke_variant(sweep_spec->base);
  }

  const std::string progress_path = csv_path.empty() ? "" : csv_path + ".progress";
  std::uint64_t resume_from = 0;
  bool csv_append = false;
  if (resume) {
    try {
      if (const auto checkpoint = arsf::scenario::load_sweep_checkpoint(progress_path)) {
        // A token from a different sweep (other name, edited spec file,
        // with/without --smoke) would splice two grids into one CSV.
        if (checkpoint->spec_fingerprint != arsf::scenario::sweep_fingerprint(*sweep_spec)) {
          std::fprintf(stderr,
                       "--resume: %s belongs to a different sweep than the one requested; "
                       "delete it (or rerun without --resume) to start over\n",
                       progress_path.c_str());
          return 2;
        }
        // The effective token may differ from the loaded one: a CSV that
        // shrank below its checkpoint is repaired to its last complete
        // result and the resume point recomputed from the file itself.
        const arsf::scenario::SweepCheckpoint effective =
            arsf::scenario::truncate_for_resume(csv_path, *checkpoint);
        resume_from = effective.next_index;
        csv_append = true;
        std::fprintf(stderr, "--resume: continuing %s at grid index %llu (%llu bytes kept)\n",
                     csv_path.c_str(), static_cast<unsigned long long>(resume_from),
                     static_cast<unsigned long long>(effective.output_bytes));
      } else {
        std::fprintf(stderr, "--resume: no checkpoint at %s, starting from the top\n",
                     progress_path.c_str());
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--resume: %s\n", e.what());
      return 2;
    }
  }

  // Result cache: in-memory always when enabled; --cache-dir adds the
  // persistent JSONL store (loaded warm here, saved on the way out).
  std::optional<arsf::scenario::ResultCache> cache;
  std::string cache_file;
  if (cache_enabled) {
    cache.emplace(cache_budget);
    if (!cache_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(cache_dir, ec);
      if (ec) {
        std::fprintf(stderr, "--cache-dir %s: %s\n", cache_dir.c_str(),
                     ec.message().c_str());
        return 2;
      }
      cache_file = (std::filesystem::path{cache_dir} / "result_cache.jsonl").string();
      const auto loaded = cache->load_file(cache_file);
      if (loaded.rejected != 0) {
        // A corrupt line is a miss, never a wrong answer — report and go on.
        std::fprintf(stderr, "cache: rejected %zu corrupt line(s) in %s\n", loaded.rejected,
                     cache_file.c_str());
      }
    }
  }
  // Persist + report on every exit path past this point.  Saving is
  // availability, not correctness: a failed save costs warm starts, nothing
  // else, so it warns instead of changing the exit code.
  const auto finish_cache = [&] {
    if (!cache.has_value()) return;
    if (!cache_file.empty()) {
      try {
        cache->save_file(cache_file);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "cache: %s\n", e.what());
      }
    }
    if (cache_stats) {
      const arsf::scenario::CacheStats stats = cache->stats();
      std::fprintf(stderr,
                   "cache: %llu hit(s), %llu miss(es), %llu insert(s), %llu eviction(s); "
                   "%llu entr(ies), %llu byte(s) resident\n",
                   static_cast<unsigned long long>(stats.hits),
                   static_cast<unsigned long long>(stats.misses),
                   static_cast<unsigned long long>(stats.inserts),
                   static_cast<unsigned long long>(stats.evictions),
                   static_cast<unsigned long long>(stats.entries),
                   static_cast<unsigned long long>(stats.bytes));
    }
  };

  arsf::scenario::RunnerOptions runner_options;
  runner_options.num_threads = threads;
  runner_options.default_deadline_ms = static_cast<std::uint64_t>(deadline_arg);
  // --retries N = N re-runs on top of the first attempt.
  runner_options.retry.max_attempts = static_cast<std::uint32_t>(retries_arg) + 1;
  runner_options.degrade = degrade;
  runner_options.cache = cache.has_value() ? &*cache : nullptr;
  const arsf::scenario::Runner runner{runner_options};

  // Output plumbing shared by batch and sweep runs: every enabled sink sees
  // each result as it finishes, in input order.
  arsf::scenario::TeeSink tee;
  arsf::scenario::CollectingSink collected;  // feeds the summary table
  std::optional<arsf::scenario::CsvStreamSink> csv;
  std::optional<arsf::scenario::JsonlSink> jsonl_sink;
  // JSONL is the machine output: no table.  A resumed sweep skips it too —
  // CollectingSink requires a dense 0-based stream, and the summary would
  // only cover the resumed tail anyway.
  const bool collect_table = !jsonl && resume_from == 0;
  if (collect_table) tee.attach(collected);
  if (!csv_path.empty() && !csv_append) {
    // The CSV is about to be rewritten from scratch, so any token left by an
    // earlier killed sweep no longer describes this file; a later --resume
    // must not splice the old sweep's tail onto whatever we write now.
    std::error_code ec;
    std::filesystem::remove(progress_path, ec);
  }
  if (!csv_path.empty()) tee.attach(csv.emplace(csv_path, csv_append));
  if (jsonl) tee.attach(jsonl_sink.emplace(std::cout));
  FailureCountingSink counting{tee};

  if (sweeping) {
    const std::string sweep_label = sweep_name.empty() ? sweep_json_path : sweep_name;
    const arsf::scenario::SweepSpec* spec = &*sweep_spec;
    arsf::scenario::SweepRunOptions options;
    options.chunk_scenarios = chunk;
    options.resume_from = resume_from;
    if (!csv_path.empty()) {
      // Checkpoint next to the CSV after every flushed chunk so a killed
      // sweep can come back with --resume; removed once the sweep completes.
      options.checkpoint_path = progress_path;
      options.checkpoint_output = csv_path;
    }
    std::size_t total = 0;
    try {
      if (progress) {
        // A resumed sweep only delivers the remaining tail; total must match
        // or a completed resume would stall the display short of its total.
        arsf::scenario::ProgressSink progressed{
            counting, std::cerr, static_cast<std::size_t>(spec->size() - resume_from)};
        total = arsf::scenario::run_sweep(*spec, runner, progressed, options);
      } else {
        total = arsf::scenario::run_sweep(*spec, runner, counting, options);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--sweep %s: %s\n", sweep_label.c_str(), e.what());
      return 2;
    }
    if (collect_table) {
      std::printf("%s\n", arsf::scenario::render_results(collected.results()).c_str());
    }
    // Status goes to stderr: with --jsonl, stdout carries only JSON lines.
    if (csv) {
      std::fprintf(stderr, "unified report: %s (%zu entries)\n", csv_path.c_str(),
                   csv->entries());
    }
    std::fprintf(stderr, "sweep %s: %zu grid points, %d failed\n", sweep_label.c_str(), total,
                 counting.failures());
    finish_cache();
    return counting.failures() == 0 ? 0 : 1;
  }

  std::vector<const arsf::scenario::Scenario*> selected;
  if (all) {
    for (const auto& scenario : registry.all()) selected.push_back(&scenario);
  } else if (!prefix.empty()) {
    selected = registry.match(prefix);
    if (selected.empty()) {
      std::fprintf(stderr, "no scenario matches prefix '%s'\n", prefix.c_str());
      return 1;
    }
  } else {
    try {
      selected.push_back(&registry.at(run_name));
    } catch (const std::out_of_range& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }

  std::vector<arsf::scenario::Scenario> batch;
  batch.reserve(selected.size());
  for (const auto* scenario : selected) {
    arsf::scenario::Scenario variant =
        smoke ? arsf::scenario::smoke_variant(*scenario) : *scenario;
    if (!fused_members.empty()) {
      // Ad-hoc fused twin: same system/schedule/attack, one shared world
      // pass for the requested members.  Renamed so reports cannot be
      // mistaken for the base scenario's own rows.
      variant.analysis = arsf::scenario::AnalysisKind::kFused;
      variant.fused_members = fused_members;
      variant.name = "fused/adhoc/" + scenario->name;
      variant.description = "Ad-hoc fused bundle of " + scenario->name;
    }
    batch.push_back(std::move(variant));
  }

  std::fprintf(stderr, "running %zu scenario(s)%s...\n", batch.size(),
               smoke ? " (smoke variants)" : "");
  if (progress) {
    arsf::scenario::ProgressSink progressed{counting, std::cerr, batch.size()};
    runner.run_batch(std::span<const arsf::scenario::Scenario>{batch}, progressed);
  } else {
    runner.run_batch(std::span<const arsf::scenario::Scenario>{batch}, counting);
  }

  if (collect_table) {
    std::printf("%s\n", arsf::scenario::render_results(collected.results()).c_str());
  }
  // Status goes to stderr: with --jsonl, stdout carries only JSON lines.
  if (csv) {
    std::fprintf(stderr, "unified report: %s (%zu entries)\n", csv_path.c_str(),
                 csv->entries());
  }
  if (counting.failures()) std::fprintf(stderr, "%d scenario(s) failed\n", counting.failures());
  finish_cache();
  return counting.failures() == 0 ? 0 : 1;
}
