// Scenario runner: the one entry point to the scenario registry.  List every
// registered scenario, run any of them (or a whole family) as a concurrent
// batch, dump the unified CSV report, or print a scenario's JSON descriptor.
//
//   ./scenario_runner --list
//   ./scenario_runner --run table1/r0/ascending
//   ./scenario_runner --prefix fig4/ [--threads 4] [--csv report.csv]
//   ./scenario_runner --all --smoke
//   ./scenario_runner --json stress/fine-grid
//
// --smoke substitutes each scenario's coarse smoke variant (capped rounds,
// cost-bounded attacker) — the same configuration the scenario_smoke ctest
// executes.

#include <cstdio>

#include "scenario/registry.h"
#include "scenario/report.h"
#include "scenario/runner.h"
#include "support/ascii.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  const arsf::support::ArgParser args{argc, argv};
  const bool list = args.has("list");
  const bool all = args.has("all");
  const bool smoke = args.has("smoke");
  const std::string run_name = args.get_string("run", "");
  const std::string prefix = args.get_string("prefix", "");
  const std::string json_name = args.get_string("json", "");
  const std::string csv_path = args.get_string("csv", "");
  const auto threads = static_cast<unsigned>(args.get_int("threads", 0));

  for (const auto& unknown : args.unknown()) {
    std::fprintf(stderr, "unknown option --%s\n", unknown.c_str());
    return 2;
  }

  const auto& registry = arsf::scenario::registry();

  if (json_name.empty() && !list && !all && run_name.empty() && prefix.empty()) {
    std::printf("usage: scenario_runner --list | --json NAME |\n");
    std::printf("       (--run NAME | --prefix FAMILY/ | --all) [--smoke] [--threads N]\n");
    std::printf("       [--csv report.csv]\n");
    std::printf("registry: %zu scenarios\n", registry.size());
    return 0;
  }

  if (!json_name.empty()) {
    try {
      std::printf("%s\n", registry.at(json_name).to_json().c_str());
    } catch (const std::out_of_range& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    return 0;
  }

  if (list) {
    arsf::support::TextTable table{{"name", "analysis", "n", "schedule", "description"}};
    for (const auto& scenario : registry.all()) {
      table.add_row({scenario.name, arsf::scenario::to_string(scenario.analysis),
                     std::to_string(scenario.n()), arsf::sched::to_string(scenario.schedule),
                     scenario.description});
    }
    std::printf("%s%zu scenarios registered\n", table.render().c_str(), registry.size());
    return 0;
  }

  std::vector<const arsf::scenario::Scenario*> selected;
  if (all) {
    for (const auto& scenario : registry.all()) selected.push_back(&scenario);
  } else if (!prefix.empty()) {
    selected = registry.match(prefix);
    if (selected.empty()) {
      std::fprintf(stderr, "no scenario matches prefix '%s'\n", prefix.c_str());
      return 1;
    }
  } else {
    try {
      selected.push_back(&registry.at(run_name));
    } catch (const std::out_of_range& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }

  std::vector<arsf::scenario::Scenario> batch;
  batch.reserve(selected.size());
  for (const auto* scenario : selected) {
    batch.push_back(smoke ? arsf::scenario::smoke_variant(*scenario) : *scenario);
  }

  std::printf("running %zu scenario(s)%s...\n\n", batch.size(), smoke ? " (smoke variants)" : "");
  const arsf::scenario::Runner runner{{.num_threads = threads}};
  const auto results = runner.run_batch(std::span<const arsf::scenario::Scenario>{batch});
  std::printf("%s\n", arsf::scenario::render_results(results).c_str());

  if (!csv_path.empty()) {
    arsf::support::ReportWriter report{csv_path};
    arsf::scenario::write_report(report, results);
    std::printf("unified report: %s (%zu entries)\n", csv_path.c_str(), report.entries());
  }

  int failures = 0;
  for (const auto& result : results) {
    if (!result.ok()) ++failures;
  }
  if (failures) std::fprintf(stderr, "%d scenario(s) failed\n", failures);
  return failures == 0 ? 0 : 1;
}
