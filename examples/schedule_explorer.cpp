// Schedule explorer: compute the exact expected fusion width of any sensor
// configuration under the Ascending and Descending schedules (Table I
// methodology) — the tool to answer "which schedule should MY system use?".
//
//   ./schedule_explorer --widths 5,11,17 [--fa 1] [--step 1]
//   ./schedule_explorer --widths 1,2,4,8 --fa 1 --all-sets

#include <cstdio>

#include "sim/experiment.h"
#include "support/ascii.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  const arsf::support::ArgParser args{argc, argv};
  const std::vector<double> widths = args.get_double_list("widths", {5, 11, 17});
  const auto fa = static_cast<std::size_t>(args.get_int("fa", 1));
  const double step = args.get_double("step", 1.0);
  const bool all_sets = args.has("all-sets");

  for (const auto& unknown : args.unknown()) {
    std::fprintf(stderr, "unknown option --%s\n", unknown.c_str());
    return 2;
  }

  const arsf::SystemConfig system = arsf::make_config(widths);
  std::printf("schedule explorer: n=%zu, f=%d, fa=%zu, step=%s\n", system.n(), system.f, fa,
              arsf::support::format_number(step).c_str());
  std::printf("worlds per schedule: %llu\n\n",
              static_cast<unsigned long long>(
                  arsf::sim::world_count(system, arsf::Quantizer{step})));

  const arsf::sim::Table1Row row = arsf::sim::compare_schedules(widths, fa, {}, step);
  arsf::support::TextTable table{{"schedule", "E|S|", "vs no attack"}};
  table.add_row({"no attack", arsf::support::format_number(row.e_no_attack, 3), "-"});
  table.add_row({"ascending", arsf::support::format_number(row.e_ascending, 3),
                 "+" + arsf::support::format_number(row.e_ascending - row.e_no_attack, 3)});
  table.add_row({"descending", arsf::support::format_number(row.e_descending, 3),
                 "+" + arsf::support::format_number(row.e_descending - row.e_no_attack, 3)});
  std::printf("%s\n", table.render().c_str());
  std::printf("recommendation: %s schedule (expected width %s <= %s)\n\n",
              row.e_ascending <= row.e_descending ? "ASCENDING" : "DESCENDING",
              arsf::support::format_number(std::min(row.e_ascending, row.e_descending), 3).c_str(),
              arsf::support::format_number(std::max(row.e_ascending, row.e_descending), 3).c_str());

  if (all_sets && fa == 1) {
    std::printf("per-attacked-sensor breakdown (Descending schedule):\n");
    arsf::support::TextTable breakdown{{"attacked sensor", "width", "E|S| Desc"}};
    for (arsf::SensorId id = 0; id < system.n(); ++id) {
      arsf::sim::EnumerateConfig config;
      config.system = system;
      config.quant = arsf::Quantizer{step};
      config.order = arsf::sched::descending_order(system);
      config.attacked = {id};
      arsf::attack::ExpectationPolicy policy;
      config.policy = &policy;
      const auto result = arsf::sim::enumerate_expected_width(config);
      breakdown.add_row({system.sensors[id].name,
                         arsf::support::format_number(system.sensors[id].width),
                         arsf::support::format_number(result.expected_width, 3)});
    }
    std::printf("%s", breakdown.render().c_str());
    std::printf("(Theorem 4: the most precise sensor is the attacker's best target.)\n");
  }
  return 0;
}
