// Schedule explorer: compute the exact expected fusion width of any sensor
// configuration under the Ascending and Descending schedules (Table I
// methodology) — the tool to answer "which schedule should MY system use?".
//
// Builds ad-hoc Scenario descriptors for the requested widths and runs them
// through the same Runner as the registry catalogue.
//
//   ./schedule_explorer --widths 5,11,17 [--fa 1] [--step 1]
//   ./schedule_explorer --widths 1,2,4,8 --fa 1 --all-sets

#include <cstdio>

#include "scenario/runner.h"
#include "sim/enumerate.h"
#include "support/ascii.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  const arsf::support::ArgParser args{argc, argv};
  const std::vector<double> widths = args.get_double_list("widths", {5, 11, 17});
  const auto fa = static_cast<std::size_t>(args.get_int("fa", 1));
  const double step = args.get_double("step", 1.0);
  const bool all_sets = args.has("all-sets");

  for (const auto& unknown : args.unknown()) {
    std::fprintf(stderr, "unknown option --%s\n", unknown.c_str());
    return 2;
  }

  arsf::scenario::Scenario base;
  base.name = "explore/base";
  base.widths = widths;
  base.fa = fa;
  base.step = step;

  const arsf::SystemConfig system = base.system();
  std::printf("schedule explorer: n=%zu, f=%d, fa=%zu, step=%s\n", system.n(), system.f, fa,
              arsf::support::format_number(step).c_str());
  std::printf("worlds per schedule: %llu\n\n",
              static_cast<unsigned long long>(
                  arsf::sim::world_count(system, arsf::Quantizer{step})));

  std::vector<arsf::scenario::Scenario> scenarios;
  for (const arsf::sched::ScheduleKind kind :
       {arsf::sched::ScheduleKind::kAscending, arsf::sched::ScheduleKind::kDescending}) {
    arsf::scenario::Scenario scenario = base;
    scenario.name = "explore/" + arsf::sched::to_string(kind);
    scenario.schedule = kind;
    scenarios.push_back(std::move(scenario));
  }
  if (all_sets && fa == 1) {
    // Per-attacked-sensor breakdown under Descending rides in the same batch.
    for (arsf::SensorId id = 0; id < system.n(); ++id) {
      arsf::scenario::Scenario scenario = base;
      scenario.name = "explore/attack-s" + std::to_string(id);
      scenario.schedule = arsf::sched::ScheduleKind::kDescending;
      scenario.attacked_override = {id};
      scenarios.push_back(std::move(scenario));
    }
  }

  const arsf::scenario::Runner runner;
  const auto results = runner.run_batch(std::span<const arsf::scenario::Scenario>{scenarios});
  for (const auto& result : results) {
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", result.scenario.c_str(), result.error.c_str());
      return 1;
    }
  }

  const double e_ascending = results[0].metric("expected_width");
  const double e_descending = results[1].metric("expected_width");
  const double e_no_attack = results[0].metric("expected_width_no_attack");

  arsf::support::TextTable table{{"schedule", "E|S|", "vs no attack"}};
  table.add_row({"no attack", arsf::support::format_number(e_no_attack, 3), "-"});
  table.add_row({"ascending", arsf::support::format_number(e_ascending, 3),
                 "+" + arsf::support::format_number(e_ascending - e_no_attack, 3)});
  table.add_row({"descending", arsf::support::format_number(e_descending, 3),
                 "+" + arsf::support::format_number(e_descending - e_no_attack, 3)});
  std::printf("%s\n", table.render().c_str());
  std::printf("recommendation: %s schedule (expected width %s <= %s)\n\n",
              e_ascending <= e_descending ? "ASCENDING" : "DESCENDING",
              arsf::support::format_number(std::min(e_ascending, e_descending), 3).c_str(),
              arsf::support::format_number(std::max(e_ascending, e_descending), 3).c_str());

  if (all_sets && fa == 1) {
    std::printf("per-attacked-sensor breakdown (Descending schedule):\n");
    arsf::support::TextTable breakdown{{"attacked sensor", "width", "E|S| Desc"}};
    for (arsf::SensorId id = 0; id < system.n(); ++id) {
      breakdown.add_row({system.sensors[id].name,
                         arsf::support::format_number(system.sensors[id].width),
                         arsf::support::format_number(
                             results[2 + id].metric("expected_width"), 3)});
    }
    std::printf("%s", breakdown.render().c_str());
    std::printf("(Theorem 4: the most precise sensor is the attacker's best target.)\n");
  }
  return 0;
}
