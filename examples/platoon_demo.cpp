// Platoon demo: the paper's case-study scenario as an interactive example.
//
// Three LandSharks cruise at v mph; one encoder of the middle vehicle is
// compromised.  The demo runs a short mission under a chosen schedule and
// prints a timeline of the middle vehicle's fused speed interval, the safety
// envelope, and every supervisor preemption.
//
//   ./platoon_demo [--schedule ascending|descending|random] [--rounds 150]
//                  [--speed 10] [--seed N] [--no-attack]

#include <cstdio>

#include "support/cli.h"
#include "vehicle/casestudy.h"

namespace {

arsf::sched::ScheduleKind parse_schedule(const std::string& name) {
  if (name == "descending") return arsf::sched::ScheduleKind::kDescending;
  if (name == "random") return arsf::sched::ScheduleKind::kRandom;
  return arsf::sched::ScheduleKind::kAscending;
}

}  // namespace

int main(int argc, char** argv) {
  const arsf::support::ArgParser args{argc, argv};
  const auto kind = parse_schedule(args.get_string("schedule", "descending"));
  const auto rounds = static_cast<std::size_t>(args.get_int("rounds", 150));
  const double target = args.get_double("speed", 10.0);
  const bool attack = !args.has("no-attack");

  arsf::vehicle::LandSharkSensing sensing = arsf::vehicle::make_landshark_sensing();
  arsf::support::Rng rng{static_cast<std::uint64_t>(args.get_int("seed", 7))};

  auto generator = arsf::sched::ScheduleGenerator::of_kind(kind, sensing.config, rng.next());
  const auto representative = kind == arsf::sched::ScheduleKind::kRandom
                                  ? arsf::sched::ascending_order(sensing.config)
                                  : generator.next();
  const auto attacked =
      attack ? arsf::sched::choose_attacked_set(sensing.config, representative, 1,
                                                arsf::sched::AttackedSetRule::kSmallestWidths)
             : std::vector<arsf::SensorId>{};

  arsf::attack::ExpectationPolicy policy{
      arsf::vehicle::CaseStudyConfig::default_policy_options()};
  arsf::vehicle::SpeedPipeline pipeline{sensing, attacked, attack ? &policy : nullptr};

  arsf::vehicle::PlatoonParams platoon_params;
  platoon_params.target_speed = target;
  arsf::vehicle::Platoon platoon{platoon_params};
  arsf::vehicle::SafetySupervisor supervisor{
      arsf::vehicle::SafetyEnvelope{target, 0.5, 0.5}};

  std::printf("Platoon demo: schedule=%s, attacked sensor=%s, target %.1f mph\n",
              arsf::sched::to_string(kind).c_str(),
              attacked.empty() ? "(none)"
                               : sensing.config.sensors[attacked[0]].name.c_str(),
              target);
  std::printf("safety envelope: [%.1f, %.1f] mph\n\n", target - 0.5, target + 0.5);
  std::printf("round  true-speed  fused-interval       estimate  gap-ahead  note\n");

  double estimate = target;
  std::vector<double> commands(platoon.size(), 0.0);
  for (std::size_t round = 0; round < rounds; ++round) {
    const auto& order = generator.next();
    for (std::size_t v = 0; v < platoon.size(); ++v) {
      const bool is_target_vehicle = v == 1;
      const auto measured = pipeline.measure(platoon.speed(v), order, rng, round);
      const double vehicle_estimate = measured.estimate.value_or(platoon.speed(v));
      double command = platoon.controller_command(v, vehicle_estimate, 0.1);
      if (is_target_vehicle) {
        const arsf::Interval fused =
            measured.fusion.interval.value_or(arsf::Interval::empty_interval());
        const auto upper_before = supervisor.upper_violations();
        const auto lower_before = supervisor.lower_violations();
        command = supervisor.supervise(command, fused);
        estimate = vehicle_estimate;
        if (round % 10 == 0 || supervisor.upper_violations() != upper_before ||
            supervisor.lower_violations() != lower_before) {
          const char* note = supervisor.upper_violations() != upper_before
                                 ? "PREEMPT: envelope upper bound violated"
                             : supervisor.lower_violations() != lower_before
                                 ? "PREEMPT: envelope lower bound violated"
                                 : "";
          std::printf("%5zu  %9.3f  [%7.3f, %7.3f]  %8.3f  %9.2f  %s\n", round,
                      platoon.speed(1), fused.lo, fused.hi, estimate, platoon.gap(1), note);
        }
      }
      commands[v] = command;
    }
    platoon.step_with_commands(commands, 0.1);
  }

  std::printf("\nsummary: %llu upper / %llu lower envelope violations in %llu rounds",
              static_cast<unsigned long long>(supervisor.upper_violations()),
              static_cast<unsigned long long>(supervisor.lower_violations()),
              static_cast<unsigned long long>(supervisor.rounds()));
  std::printf("%s\n", platoon.collided() ? " — COLLISION!" : "; no collision.");
  std::printf("Try --schedule ascending: the attacked encoder transmits first and is pinned\n");
  std::printf("to the truth, eliminating the violations.\n");
  return 0;
}
