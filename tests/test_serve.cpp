// Serve-layer tests: the wire protocol of the scenario service daemon
// (serve/protocol.h) plus the bugfix regressions that ride this PR —
// cancel-observing retry backoff, backoff-delay saturation/validation, and
// the chunk-local slot keying of run_sweep's shared-chunk fallback.  The
// daemon itself (sockets, scheduler, shutdown) is exercised end to end by
// tools/serve_smoke.cpp; these tests pin the pieces that have meaning
// without a live socket.

#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "scenario/faultplan.h"
#include "scenario/result_cache.h"
#include "scenario/runner.h"
#include "scenario/sink.h"
#include "scenario/sweep.h"
#include "serve/protocol.h"
#include "sim/engine/cancel.h"

namespace arsf::serve {
namespace {

using scenario::CollectingSink;
using scenario::FaultInjector;
using scenario::FaultPlan;
using scenario::FaultRule;
using scenario::PolicyKind;
using scenario::ResultCache;
using scenario::ResultStatus;
using scenario::RetryPolicy;
using scenario::Runner;
using scenario::RunnerOptions;
using scenario::Scenario;
using scenario::ScenarioResult;
using scenario::SweepSpec;
using sim::engine::CancelToken;

Scenario cheap_scenario(const std::string& name, double w0) {
  Scenario s;
  s.name = name;
  s.widths = {w0, 2, 3};
  s.fa = 0;
  s.policy = PolicyKind::kNone;
  return s;
}

/// The client-side splice: a wire request is the overlay JSON with
/// request_id prepended as the first field (ids here are escape-free).
std::string with_request_id(const std::string& json, const std::string& id) {
  return "{\"request_id\":\"" + id + "\"," + json.substr(1);
}

// ------------------------------------------------------- parse_request ----

TEST(ServeProtocol, ParsesScenarioRequest) {
  const Scenario s = cheap_scenario("serve/proto-one", 5);
  const Request request = parse_request(with_request_id(s.to_json(), "rid-1"));
  EXPECT_EQ(request.request_id, "rid-1");
  EXPECT_FALSE(request.is_sweep);
  EXPECT_EQ(request.scenario.name, "serve/proto-one");
  EXPECT_EQ(request.name(), "serve/proto-one");
}

TEST(ServeProtocol, ParsesSweepRequestByBaseKey) {
  SweepSpec spec;
  spec.name = "serve/proto-sweep";
  spec.base = cheap_scenario("serve/proto-base", 5);
  spec.steps = {1.0, 0.5};
  const Request request = parse_request(with_request_id(spec.to_json(), "rid-2"));
  EXPECT_EQ(request.request_id, "rid-2");
  EXPECT_TRUE(request.is_sweep);
  EXPECT_EQ(request.sweep.name, "serve/proto-sweep");
  EXPECT_EQ(request.sweep.size(), 2u);
  EXPECT_EQ(request.name(), "serve/proto-sweep");
}

TEST(ServeProtocol, MissingOrEmptyRequestIdIsRejected) {
  const std::string plain = cheap_scenario("serve/proto-noid", 5).to_json();
  EXPECT_THROW((void)parse_request(plain), RequestError);
  EXPECT_THROW((void)parse_request(with_request_id(plain, "")), RequestError);
}

TEST(ServeProtocol, NonStringRequestIdIsRejected) {
  const std::string plain = cheap_scenario("serve/proto-intid", 5).to_json();
  const std::string line = "{\"request_id\":7," + plain.substr(1);
  EXPECT_THROW((void)parse_request(line), RequestError);
}

TEST(ServeProtocol, MalformedLineIsRejected) {
  EXPECT_THROW((void)parse_request("not json"), RequestError);
  EXPECT_THROW((void)parse_request("[]"), RequestError);
  EXPECT_THROW((void)parse_request(""), RequestError);
}

TEST(ServeProtocol, RequestErrorCarriesRecoveredId) {
  // The id parses fine but the scenario is bogus — the error must still be
  // routable back to the client-side waiter for that id.
  try {
    (void)parse_request(R"({"request_id":"rid-x","name":"bad"})");
    FAIL() << "invalid scenario must throw";
  } catch (const RequestError& e) {
    EXPECT_EQ(e.request_id(), "rid-x");
  }
}

TEST(ServeProtocol, UnknownKeysStayRejected) {
  // The strict overlay-parser discipline must survive the request_id splice:
  // a typo cannot silently fall back to a default.
  const std::string plain = cheap_scenario("serve/proto-typo", 5).to_json();
  const std::string line = "{\"request_id\":\"rid-t\",\"bogus\":1," + plain.substr(1);
  try {
    (void)parse_request(line);
    FAIL() << "unknown key must throw";
  } catch (const RequestError& e) {
    EXPECT_EQ(e.request_id(), "rid-t");
  }
}

// -------------------------------------------------------- request_cost ----

TEST(ServeProtocol, RequestCostIsPositiveAndGrowsWithGrid) {
  Request single;
  single.scenario = cheap_scenario("serve/cost-one", 5);
  const std::uint64_t one = request_cost(single);
  EXPECT_GE(one, 1u);

  Request sweep;
  sweep.is_sweep = true;
  sweep.sweep.name = "serve/cost-sweep";
  sweep.sweep.base = cheap_scenario("serve/cost-base", 5);
  sweep.sweep.steps = {1.0, 0.5, 0.25};
  EXPECT_GT(request_cost(sweep), one);

  Request broken;  // unpriceable request: still a valid (minimal) weight
  EXPECT_GE(request_cost(broken), 1u);
}

// --------------------------------------------------------------- frames ----

TEST(ServeProtocol, ResultFrameStripsBackToOfflineBytes) {
  ScenarioResult result;
  result.scenario = "serve/frame-one";
  result.analysis = "enumerate";
  result.metrics = {{"worlds", 42.0}, {"err", 0.5}};
  const std::string frame = result_frame("rid-f", 7, result);
  EXPECT_EQ(frame_request_id(frame).value_or(""), "rid-f");
  ASSERT_TRUE(strip_request_id(frame).has_value());
  EXPECT_EQ(*strip_request_id(frame), scenario::to_json(7, result));
}

TEST(ServeProtocol, EscapedRequestIdRoundTrips) {
  ScenarioResult result;
  result.scenario = "serve/frame-esc";
  const std::string id = "a\"b\\c";  // forces escaping inside the splice
  const std::string frame = result_frame(id, 0, result);
  EXPECT_EQ(frame_request_id(frame).value_or(""), id);
  ASSERT_TRUE(strip_request_id(frame).has_value());
  EXPECT_EQ(*strip_request_id(frame), scenario::to_json(0, result));
}

TEST(ServeProtocol, ForeignTextHasNoRequestId) {
  EXPECT_FALSE(strip_request_id("{\"done\":true}").has_value());
  EXPECT_FALSE(strip_request_id("garbage").has_value());
  EXPECT_FALSE(frame_request_id("garbage").has_value());
  EXPECT_FALSE(frame_request_id("[1,2]").has_value());
}

TEST(ServeProtocol, DoneFrameCarriesCounts) {
  const std::string done = done_frame("rid-d", 3, 1);
  EXPECT_EQ(frame_request_id(done).value_or(""), "rid-d");
  ASSERT_TRUE(strip_request_id(done).has_value());
  const std::string rest = *strip_request_id(done);
  EXPECT_NE(rest.find("\"done\":true"), std::string::npos) << rest;
  EXPECT_NE(rest.find("\"results\":3"), std::string::npos) << rest;
  EXPECT_NE(rest.find("\"failed\":1"), std::string::npos) << rest;
}

TEST(ServeProtocol, ErrorFrameIsASelfContainedResultFrame) {
  const std::string frame =
      error_frame("rid-e", "serve/frame-err", ResultStatus::kRejected, "too big");
  ScenarioResult expected;
  expected.scenario = "serve/frame-err";
  expected.status = ResultStatus::kRejected;
  expected.error = "too big";
  EXPECT_EQ(frame_request_id(frame).value_or(""), "rid-e");
  ASSERT_TRUE(strip_request_id(frame).has_value());
  EXPECT_EQ(*strip_request_id(frame), scenario::to_json(0, expected));
}

TEST(ServeProtocol, RequestSinkCountsAndTerminates) {
  std::vector<std::string> lines;
  RequestSink sink{"rid-s", [&](const std::string& line) { lines.push_back(line); }};
  ScenarioResult ok;
  ok.scenario = "serve/sink-ok";
  ScenarioResult bad;
  bad.scenario = "serve/sink-bad";
  bad.status = ResultStatus::kFailed;
  bad.error = "boom";
  sink.on_result(0, ok);
  sink.on_result(1, bad);
  sink.on_finish(2);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], result_frame("rid-s", 0, ok));
  EXPECT_EQ(lines[1], result_frame("rid-s", 1, bad));
  EXPECT_EQ(lines[2], done_frame("rid-s", 2, 1));
  EXPECT_EQ(sink.results(), 2u);
  EXPECT_EQ(sink.failed(), 1u);
}

TEST(ServeProtocol, RequestSinkResumeCountsSeedTheDoneFrame) {
  // Sweep resume after a crash: frames 0..2 (one failed) were already
  // delivered from the recovered spool; only the tail re-runs through the
  // sink.  The done frame must count the WHOLE run.
  std::vector<std::string> lines;
  RequestSink sink{"rid-r", [&](const std::string& line) { lines.push_back(line); }};
  sink.resume_counts(3, 1);
  ScenarioResult tail;
  tail.scenario = "serve/sink-tail";
  sink.on_result(3, tail);
  sink.on_finish(5);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines.back(), done_frame("rid-r", 4, 1));
  EXPECT_EQ(sink.results(), 4u);
  EXPECT_EQ(sink.failed(), 1u);
}

// ------------------------------------------- backoff delay saturation ----
// Regression: the compounded delay used to be converted double -> uint64
// without a ceiling, which is undefined behaviour once base * backoff^k
// exceeds uint64 range.  The ladder now saturates at RetryPolicy::kMaxDelayMs
// and the Runner constructor rejects policies the clamp cannot save.

TEST(RetryBackoff, ExponentialLadder) {
  RetryPolicy retry;
  retry.base_delay_ms = 100;
  retry.backoff = 2.0;
  EXPECT_EQ(retry.backoff_delay_ms(1), 100u);
  EXPECT_EQ(retry.backoff_delay_ms(2), 200u);
  EXPECT_EQ(retry.backoff_delay_ms(3), 400u);
}

TEST(RetryBackoff, SaturatesAtCeilingInsteadOfOverflowing) {
  RetryPolicy retry;
  retry.base_delay_ms = 1000;
  retry.backoff = 1e12;  // one step past base already dwarfs uint64 range
  EXPECT_EQ(retry.backoff_delay_ms(2), RetryPolicy::kMaxDelayMs);
  EXPECT_EQ(retry.backoff_delay_ms(50), RetryPolicy::kMaxDelayMs);

  RetryPolicy huge_base;
  huge_base.base_delay_ms = std::numeric_limits<std::uint64_t>::max();
  huge_base.backoff = 2.0;
  EXPECT_EQ(huge_base.backoff_delay_ms(1), RetryPolicy::kMaxDelayMs);
}

TEST(RetryBackoff, ZeroBaseAndZeroBackoffSleepNothing) {
  RetryPolicy zero_base;
  zero_base.base_delay_ms = 0;
  EXPECT_EQ(zero_base.backoff_delay_ms(1), 0u);
  EXPECT_EQ(zero_base.backoff_delay_ms(5), 0u);

  RetryPolicy zero_backoff;
  zero_backoff.base_delay_ms = 100;
  zero_backoff.backoff = 0.0;
  EXPECT_EQ(zero_backoff.backoff_delay_ms(1), 100u);
  EXPECT_EQ(zero_backoff.backoff_delay_ms(2), 0u);
}

TEST(RetryBackoff, RunnerRejectsUnclampablePolicies) {
  for (const double bad : {std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN(), -1.0}) {
    RunnerOptions options;
    options.retry.backoff = bad;
    EXPECT_THROW((Runner{options}), std::invalid_argument) << "backoff " << bad;
  }
}

// ------------------------------------------- cancel-observing backoff ----
// Regression: the retry backoff used to sleep the full exponential delay
// unconditionally, so a batch cancel (or daemon shutdown) stalled behind
// the whole ladder.  The sleep now polls the cancel token and frames the
// slot kCancelled promptly.

TEST(RetryBackoff, CancelDuringBackoffFramesPromptly) {
  FaultPlan plan;
  plan.seed = 11;
  FaultRule rule;
  rule.site = "analysis";
  rule.probability = 1.0;  // every attempt of every slot throws
  rule.attempt_limit = 0;  // persistent: retries keep failing into backoff
  plan.rules = {rule};
  const FaultInjector injector{plan};

  const std::vector<Scenario> batch = {cheap_scenario("serve/backoff-a", 5),
                                       cheap_scenario("serve/backoff-b", 7)};
  for (const unsigned threads : {1u, 0u}) {
    CancelToken cancel;
    RunnerOptions options;
    options.num_threads = threads;
    options.retry.max_attempts = 3;
    options.retry.base_delay_ms = 60'000;  // the old bug: a full minute stall
    options.cancel = &cancel;
    options.fault_injector = &injector;
    const Runner runner{options};

    std::thread trip{[&cancel] {
      std::this_thread::sleep_for(std::chrono::milliseconds{100});
      cancel.cancel();
    }};
    const auto start = std::chrono::steady_clock::now();
    const std::vector<ScenarioResult> results = runner.run_batch(batch);
    const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                                std::chrono::steady_clock::now() - start)
                                .count();
    trip.join();

    ASSERT_EQ(results.size(), batch.size()) << "threads " << threads;
    for (const ScenarioResult& result : results) {
      EXPECT_EQ(result.status, ResultStatus::kCancelled)
          << "threads " << threads << " scenario " << result.scenario;
    }
    // Well under base_delay_ms: the frame must arrive when the cancel trips
    // (~100ms + one poll slice), not after the 60s backoff expires.  The
    // bound is generous for sanitized builders.
    EXPECT_LT(elapsed_ms, 10'000) << "threads " << threads;
  }
}

// --------------------------------------------- fallback slot keying ----
// Regression: run_sweep's shared-chunk fallback re-ran every member of a
// failed equivalence class as `runner.run(chunk[i])` — hardcoding fault-site
// slot 0 — so a FaultPlan keyed on a specific slot fired on the WRONG grid
// points once cross-point sharing kicked in.  The fallback now threads the
// chunk-local slot through run(scenario, slot).

TEST(SweepFallbackKeying, FallbackRerunsCarryChunkLocalSlotKeys) {
  SweepSpec spec;
  spec.name = "serve/fallback";
  spec.base = cheap_scenario("serve/fallback-base", 5);
  // Points 0 and 1 are canonically equal (one equivalence class evaluated
  // once, at unique slot 0 -> "analysis" key 1); point 2 is its own class
  // (unique slot 1 -> key 2).
  spec.widths_sets = {{5, 2, 3}, {5, 2, 3}, {7, 2, 3}};

  FaultPlan plan;
  plan.seed = 3;
  FaultRule rule;
  rule.site = "analysis";
  rule.nth = 1;            // fire exactly at key 1 ...
  rule.attempt_limit = 0;  // ... on every attempt (persistent failure)
  plan.rules = {rule};
  const FaultInjector injector{plan};

  std::vector<std::string> baseline;
  for (const unsigned threads : {1u, 0u}) {
    ResultCache cache{16ull << 20};  // fresh per run: no cross-run hits
    RunnerOptions options;
    options.num_threads = threads;
    options.fault_injector = &injector;
    options.cache = &cache;
    const Runner runner{options};

    CollectingSink sink;
    scenario::run_sweep(spec, runner, sink);
    const std::vector<ScenarioResult>& results = sink.results();
    ASSERT_EQ(results.size(), 3u) << "threads " << threads;

    // The shared evaluation of class {0, 1} fails at key 1, so both members
    // fall back to individual re-runs.  Point 0 re-runs at its own slot 0
    // (key 1: still fails); point 1 re-runs at slot 1 (key 2: SUCCEEDS).
    // The old hardcoded slot-0 keying failed point 1 too.
    EXPECT_EQ(results[0].status, ResultStatus::kFailed) << "threads " << threads;
    EXPECT_EQ(results[1].status, ResultStatus::kOk)
        << "threads " << threads
        << ": fallback re-run must carry its chunk-local slot key, not slot 0";
    EXPECT_EQ(results[2].status, ResultStatus::kOk) << "threads " << threads;
    EXPECT_FALSE(results[1].from_cache) << "fallback re-runs are fresh evaluations";

    std::vector<std::string> frames;
    frames.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      frames.push_back(scenario::to_json(i, results[i]));
    }
    if (baseline.empty()) {
      baseline = frames;
    } else {
      EXPECT_EQ(baseline, frames) << "frames must be bit-identical across thread counts";
    }
  }
}

}  // namespace
}  // namespace arsf::serve
