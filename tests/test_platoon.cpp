// Unit tests for the three-vehicle platoon model (vehicle/platoon.h).

#include <gtest/gtest.h>

#include "vehicle/platoon.h"

namespace arsf::vehicle {
namespace {

TEST(Platoon, InitialGeometry) {
  PlatoonParams params;
  params.size = 3;
  params.initial_gap = 20.0;
  Platoon platoon{params};
  EXPECT_EQ(platoon.size(), 3u);
  EXPECT_DOUBLE_EQ(platoon.position(0), 40.0);  // leader ahead
  EXPECT_DOUBLE_EQ(platoon.position(1), 20.0);
  EXPECT_DOUBLE_EQ(platoon.position(2), 0.0);
  EXPECT_DOUBLE_EQ(platoon.gap(1), 20.0);
  EXPECT_DOUBLE_EQ(platoon.gap(2), 20.0);
  EXPECT_DOUBLE_EQ(platoon.min_gap(), 20.0);
  EXPECT_FALSE(platoon.collided());
}

TEST(Platoon, HoldsSpeedWithTrueEstimates) {
  Platoon platoon{PlatoonParams{}};
  const std::vector<double> truths(3, 10.0);
  for (int i = 0; i < 500; ++i) {
    std::vector<double> estimates;
    for (std::size_t v = 0; v < 3; ++v) estimates.push_back(platoon.speed(v));
    platoon.step(estimates, 0.1);
  }
  for (std::size_t v = 0; v < 3; ++v) EXPECT_NEAR(platoon.speed(v), 10.0, 0.05);
  EXPECT_NEAR(platoon.min_gap(), 20.0, 0.5);
  EXPECT_FALSE(platoon.collided());
}

TEST(Platoon, BiasedEstimateShrinksGap) {
  // The middle vehicle believes it is slower than it is -> speeds up ->
  // closes on the leader.
  Platoon platoon{PlatoonParams{}};
  for (int i = 0; i < 300; ++i) {
    std::vector<double> estimates = {platoon.speed(0), platoon.speed(1) - 1.0,
                                     platoon.speed(2)};
    platoon.step(estimates, 0.1);
  }
  EXPECT_LT(platoon.gap(1), 20.0);
  EXPECT_GT(platoon.speed(1), platoon.speed(0));
}

TEST(Platoon, SustainedBiasCausesCollision) {
  PlatoonParams params;
  params.initial_gap = 3.0;  // tight platoon
  Platoon platoon{params};
  for (int i = 0; i < 2000 && !platoon.collided(); ++i) {
    std::vector<double> estimates = {platoon.speed(0), platoon.speed(1) - 2.0,
                                     platoon.speed(2)};
    platoon.step(estimates, 0.1);
  }
  EXPECT_TRUE(platoon.collided());
}

TEST(Platoon, StepWithCommandsMatchesManualDynamics) {
  Platoon platoon{PlatoonParams{}};
  const std::vector<double> commands = {1.0, 0.5, 0.0};
  const double v0 = platoon.speed(0);
  platoon.step_with_commands(commands, 0.1);
  // v' = u - drag*v.
  EXPECT_NEAR(platoon.speed(0), v0 + 0.1 * (1.0 - 0.08 * v0), 1e-9);
}

TEST(Platoon, ControllerCommandUsesSharedState) {
  Platoon platoon{PlatoonParams{}};
  // Feedforward holds cruise: at the target the command is ~drag * target.
  const double command = platoon.controller_command(1, 10.0, 0.1);
  EXPECT_NEAR(command, 0.08 * 10.0, 0.05);
}

TEST(Platoon, Validation) {
  EXPECT_THROW((Platoon{PlatoonParams{.size = 0}}), std::invalid_argument);
  Platoon platoon{PlatoonParams{}};
  EXPECT_THROW((void)platoon.gap(0), std::out_of_range);
  const std::vector<double> wrong(2, 10.0);
  EXPECT_THROW(platoon.step(wrong, 0.1), std::invalid_argument);
  EXPECT_THROW(platoon.step_with_commands(wrong, 0.1), std::invalid_argument);
}

}  // namespace
}  // namespace arsf::vehicle
