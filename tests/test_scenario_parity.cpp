// Golden parity tests for the scenario migration: the registry-driven Runner
// must be bit-identical to the pre-refactor direct calls, and batched
// execution must be order-stable and bit-identical for every thread count.

#include <gtest/gtest.h>

#include "scenario/registry.h"
#include "scenario/runner.h"
#include "sim/experiment.h"
#include "sim/worstcase.h"

namespace arsf::scenario {
namespace {

// Cheap policy options so the full Table 1 parity sweep stays fast; parity
// must hold for ANY options as both paths share make_enumerate_setup.
attack::ExpectationOptions fast_options() {
  attack::ExpectationOptions options;
  options.max_joint = 1;
  options.max_completions = 8;
  options.candidate_stride = 2;
  return options;
}

TEST(ScenarioParity, RegistryTable1MatchesDirectCompareSchedules) {
  const auto configs = sim::paper_table1_configs();
  const auto scenarios = registry().match("table1/");
  ASSERT_EQ(scenarios.size(), configs.size() * 2);

  const Runner runner;
  for (std::size_t row = 0; row < configs.size(); ++row) {
    const auto& [widths, fa] = configs[row];
    const sim::Table1Row direct = sim::compare_schedules(widths, fa, fast_options());

    Scenario ascending = *scenarios[row * 2];
    Scenario descending = *scenarios[row * 2 + 1];
    ASSERT_EQ(ascending.schedule, sched::ScheduleKind::kAscending) << ascending.name;
    ASSERT_EQ(descending.schedule, sched::ScheduleKind::kDescending) << descending.name;
    ASSERT_EQ(ascending.widths, widths) << ascending.name;
    ASSERT_EQ(ascending.fa, fa) << ascending.name;
    ascending.policy_options = fast_options();
    descending.policy_options = fast_options();

    const ScenarioResult asc = runner.run(ascending);
    const ScenarioResult desc = runner.run(descending);
    ASSERT_TRUE(asc.ok() && desc.ok()) << asc.error << desc.error;

    // Bit-identical, not approximately equal: both paths must build the very
    // same engine configuration.
    EXPECT_EQ(asc.metric("expected_width"), direct.e_ascending) << ascending.name;
    EXPECT_EQ(desc.metric("expected_width"), direct.e_descending) << descending.name;
    EXPECT_EQ(asc.metric("expected_width_no_attack"), direct.e_no_attack) << ascending.name;
    EXPECT_EQ(static_cast<std::uint64_t>(asc.metric("worlds")), direct.worlds);
    EXPECT_EQ(asc.metric("detected_worlds") + desc.metric("detected_worlds"),
              static_cast<double>(direct.detected));
  }
}

TEST(ScenarioParity, RegistryWorstCaseMatchesDirectCalls) {
  const Runner runner;
  for (const Scenario* scenario : registry().match("fig4/")) {
    const SystemConfig system = scenario->system();
    const std::vector<Tick> widths = tick_widths(system, Quantizer{scenario->step});

    sim::WorstCaseConfig direct;
    direct.widths = widths;
    direct.f = system.f;
    direct.attacked = resolve_attacked(*scenario, system, sched::ascending_order(system));
    direct.require_undetected = scenario->require_undetected;
    const sim::WorstCaseResult expected = sim::worst_case_fusion(direct);

    const ScenarioResult result = runner.run(*scenario);
    ASSERT_TRUE(result.ok()) << scenario->name << ": " << result.error;
    EXPECT_EQ(static_cast<Tick>(result.metric("max_width_ticks")), expected.max_width)
        << scenario->name;
    EXPECT_EQ(static_cast<std::uint64_t>(result.metric("configurations")),
              expected.configurations)
        << scenario->name;
  }
}

TEST(ScenarioParity, OverSetsScenarioMatchesDirectCall) {
  const Scenario& scenario = registry().at("stress/worstcase-over-sets");
  const SystemConfig system = scenario.system();
  const std::vector<Tick> widths = tick_widths(system, Quantizer{scenario.step});
  std::vector<SensorId> best_set;
  const Tick direct = sim::worst_case_over_sets(widths, system.f, scenario.fa, &best_set);

  const ScenarioResult result = Runner{}.run(scenario);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(static_cast<Tick>(result.metric("max_width_ticks")), direct);
  EXPECT_EQ(static_cast<std::size_t>(result.metric("best_set_size")), best_set.size());
}

// Cheap, heterogeneous batch covering every analysis kind: enumerate,
// worst-case (fixed set and over-all-sets, oracle and fast lane), Monte
// Carlo, resilience and the LandShark case study.
std::vector<Scenario> parity_batch() {
  const auto& reg = registry();
  std::vector<Scenario> batch = {
      reg.at("table1/r0/ascending"),  reg.at("table1/r0/descending"),
      reg.at("table1/r1/ascending"),  reg.at("fig2/no-optimal-policy"),
      reg.at("fig5/pinned-fusion"),   reg.at("fig4/wc-2-3-5"),
      reg.at("fig4/wc-1-4-4"),        reg.at("stress/worstcase-over-sets"),
      reg.at("mc/table1-r0-random"),  reg.at("ext/faults-and-attacks"),
      reg.at("fast/fig4/wc-2-3-5"),   reg.at("fast/stress/worstcase-over-sets"),
      reg.at("table2/landshark-ascending"),
  };
  for (Scenario& scenario : batch) {
    scenario.policy_options = fast_options();
    scenario.rounds = std::min<std::size_t>(scenario.rounds, 300);
  }
  return batch;
}

void expect_identical(const std::vector<ScenarioResult>& a,
                      const std::vector<ScenarioResult>& b, const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].scenario, b[i].scenario) << label << " slot " << i;
    EXPECT_EQ(a[i].error, b[i].error) << label << " slot " << i;
    ASSERT_EQ(a[i].metrics.size(), b[i].metrics.size()) << label << " " << a[i].scenario;
    for (std::size_t m = 0; m < a[i].metrics.size(); ++m) {
      EXPECT_EQ(a[i].metrics[m].key, b[i].metrics[m].key) << label << " " << a[i].scenario;
      // Bit-identical across thread counts, per the engine's merge contract.
      EXPECT_EQ(a[i].metrics[m].value, b[i].metrics[m].value)
          << label << " " << a[i].scenario << " " << a[i].metrics[m].key;
    }
  }
}

TEST(ScenarioParity, BatchIsOrderStableAndThreadCountInvariant) {
  const std::vector<Scenario> batch = parity_batch();
  ASSERT_GE(batch.size(), 8u);

  const Runner serial{{.num_threads = 1}};
  const std::vector<ScenarioResult> baseline =
      serial.run_batch(std::span<const Scenario>{batch});
  ASSERT_EQ(baseline.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(baseline[i].scenario, batch[i].name) << "result order must follow input order";
    EXPECT_TRUE(baseline[i].ok()) << baseline[i].scenario << ": " << baseline[i].error;
  }

  for (const unsigned threads : {0u, 2u, 3u, 8u}) {
    const Runner parallel{{.num_threads = threads}};
    const std::vector<ScenarioResult> results =
        parallel.run_batch(std::span<const Scenario>{batch});
    expect_identical(results, baseline, "threads=" + std::to_string(threads));
  }
}

// Single-run thread-count invariance per analysis: a scenario's own
// num_threads engine fan-out must never change its metrics.  The enumerate
// and worst-case batches have pinned this since the engine landed; the
// matrix now also covers the fast lane and the sampled resilience/casestudy
// analyses (serial engines today — the test is the contract that keeps any
// future parallelisation bit-identical too).
TEST(ScenarioParity, AnalysisThreadCountInvarianceMatrix) {
  const auto& reg = registry();
  std::vector<Scenario> matrix = {
      reg.at("fig4/wc-2-3-5"),
      reg.at("fast/fig4/wc-2-3-5"),
      reg.at("fast/stress/worstcase-over-sets"),
      reg.at("bnb/stress/worstcase-over-sets"),
      reg.at("ext/faults-and-attacks"),
      reg.at("table2/landshark-ascending"),
  };
  const Runner runner;
  for (Scenario& scenario : matrix) {
    scenario.policy_options = fast_options();
    scenario.rounds = std::min<std::size_t>(scenario.rounds, 200);

    scenario.num_threads = 1;
    const ScenarioResult baseline = runner.run(scenario);
    ASSERT_TRUE(baseline.ok()) << scenario.name << ": " << baseline.error;

    for (const unsigned threads : {0u, 2u, 4u}) {
      scenario.num_threads = threads;
      const ScenarioResult result = runner.run(scenario);
      ASSERT_TRUE(result.ok()) << scenario.name << ": " << result.error;
      ASSERT_EQ(result.metrics.size(), baseline.metrics.size()) << scenario.name;
      for (std::size_t m = 0; m < baseline.metrics.size(); ++m) {
        EXPECT_EQ(result.metrics[m].key, baseline.metrics[m].key) << scenario.name;
        EXPECT_EQ(result.metrics[m].value, baseline.metrics[m].value)
            << scenario.name << " threads " << threads << " metric "
            << baseline.metrics[m].key;
      }
    }
  }
}

TEST(ScenarioParity, SingleRunMatchesBatchSlot) {
  // A scenario run alone (with its own engine fan-out) must equal its
  // batched run (forced-serial engine) — the engine's thread-count
  // invariance seen end-to-end.
  const std::vector<Scenario> batch = parity_batch();
  const Runner runner{{.num_threads = 2}};
  const std::vector<ScenarioResult> batched =
      runner.run_batch(std::span<const Scenario>{batch});
  const ScenarioResult alone = runner.run(batch[5]);  // fig4/wc-2-3-5
  ASSERT_TRUE(alone.ok()) << alone.error;
  ASSERT_EQ(alone.scenario, batched[5].scenario);
  ASSERT_EQ(alone.metrics.size(), batched[5].metrics.size());
  for (std::size_t m = 0; m < alone.metrics.size(); ++m) {
    EXPECT_EQ(alone.metrics[m].value, batched[5].metrics[m].value);
  }
}

}  // namespace
}  // namespace arsf::scenario
