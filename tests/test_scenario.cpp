// Unit tests for the declarative scenario layer: descriptor validation,
// JSON serialization round-trips, and the pre-populated registry.

#include <gtest/gtest.h>

#include "scenario/registry.h"
#include "scenario/runner.h"

namespace arsf::scenario {
namespace {

Scenario valid_base() {
  Scenario s;
  s.name = "test/base";
  s.widths = {5, 11, 17};
  return s;
}

TEST(Scenario, ValidBaseValidates) { EXPECT_NO_THROW(valid_base().validate()); }

TEST(Scenario, ValidationRejectsBadDescriptors) {
  {
    Scenario s = valid_base();
    s.name.clear();
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    Scenario s = valid_base();
    s.widths.clear();
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    Scenario s = valid_base();
    s.widths = {5, -1, 17};
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    Scenario s = valid_base();
    s.f = 2;  // >= ceil(3/2) violates boundedness
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    Scenario s = valid_base();
    s.step = 2.0;  // widths 5/11/17 are not multiples of 2
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    Scenario s = valid_base();
    s.fa = 4;  // more attacked sensors than sensors
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    Scenario s = valid_base();
    s.attacked_override = {3};  // id out of range
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    Scenario s = valid_base();
    s.fa = 2;
    s.attacked_override = {1};  // size mismatch vs fa
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    Scenario s = valid_base();
    s.schedule = sched::ScheduleKind::kFixed;  // no fixed_order given
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    Scenario s = valid_base();
    s.fixed_order = {0, 1, 2};  // order without kFixed
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    Scenario s = valid_base();
    s.schedule = sched::ScheduleKind::kRandom;  // enumeration needs a fixed order
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    Scenario s = valid_base();
    s.schedule = sched::ScheduleKind::kTrustedLast;  // nobody trusted
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    Scenario s = valid_base();
    s.analysis = AnalysisKind::kMonteCarlo;
    s.rounds = 0;
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    Scenario s = valid_base();
    s.analysis = AnalysisKind::kMonteCarlo;
    s.attacked_override = {0};  // sampled analyses use rules, not overrides
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
}

TEST(Scenario, ResolvedFDefaultsToPaperChoice) {
  Scenario s = valid_base();
  EXPECT_EQ(s.resolved_f(), 1);  // ceil(3/2) - 1
  s.f = 0;
  EXPECT_EQ(s.resolved_f(), 0);
  EXPECT_EQ(s.system().f, 0);
}

TEST(Scenario, SystemAppliesTrustedFlags) {
  Scenario s = valid_base();
  s.trusted = {0, 2};
  const SystemConfig system = s.system();
  EXPECT_TRUE(system.sensors[0].trusted);
  EXPECT_FALSE(system.sensors[1].trusted);
  EXPECT_TRUE(system.sensors[2].trusted);
}

TEST(Scenario, JsonRoundTripPreservesEveryField) {
  Scenario s;
  s.name = "test/json \"quoted\"";
  s.description = "line1\nline2";
  s.analysis = AnalysisKind::kResilience;
  s.widths = {0.5, 3.25, 96};
  s.f = 1;
  s.trusted = {1};
  s.step = 0.25;
  s.schedule = sched::ScheduleKind::kDescending;
  s.fa = 2;
  s.attacked_rule = sched::AttackedSetRule::kLastSlots;
  s.policy = PolicyKind::kOracle;
  s.policy_options.max_joint = 3;
  s.policy_options.max_completions = 64;
  s.policy_options.candidate_stride = 4;
  s.policy_options.memoize = false;
  s.policy_options.sample_seed = 0xdeadbeefcafef00dULL;
  s.policy_options.random_tie_break = true;
  s.rounds = 123;
  s.seed = 0xffffffffffffffffULL;  // must survive without a double round-trip
  s.max_worlds = 42;
  s.require_undetected = false;
  s.over_all_sets = true;
  s.fault.kind = sensors::FaultKind::kDrift;
  s.fault.p_enter = 0.125;
  s.fault.p_recover = 0.5;
  s.fault.magnitude = 30.0;
  s.num_threads = 7;

  const Scenario restored = Scenario::from_json(s.to_json());
  EXPECT_EQ(restored, s);
}

TEST(Scenario, JsonRoundTripFixedOrderAndOverride) {
  Scenario s = valid_base();
  s.schedule = sched::ScheduleKind::kFixed;
  s.fixed_order = {2, 0, 1};
  s.attacked_override = {1};
  const Scenario restored = Scenario::from_json(s.to_json());
  EXPECT_EQ(restored, s);
  EXPECT_NO_THROW(restored.validate());
}

TEST(Scenario, JsonRejectsMalformedInput) {
  EXPECT_THROW(Scenario::from_json("not json"), std::invalid_argument);
  EXPECT_THROW(Scenario::from_json("{}"), std::invalid_argument);  // missing fields
  const std::string valid = valid_base().to_json();
  EXPECT_THROW(Scenario::from_json(valid + "trailing"), std::invalid_argument);
  // Unknown keys are rejected so typos cannot silently fall back to defaults.
  std::string with_unknown = valid;
  with_unknown.insert(1, "\"no_such_field\":1,");
  EXPECT_THROW(Scenario::from_json(with_unknown), std::invalid_argument);
}

TEST(Registry, EveryEntryIsValidAndUnique) {
  const auto& reg = registry();
  ASSERT_GE(reg.size(), 30u);
  for (const Scenario& scenario : reg.all()) {
    EXPECT_NO_THROW(scenario.validate()) << scenario.name;
    EXPECT_FALSE(scenario.description.empty()) << scenario.name;
    // Names are unique by construction (add() throws on duplicates).
    EXPECT_EQ(reg.find(scenario.name), &reg.all()[&scenario - reg.all().data()]);
  }
}

TEST(Registry, ContainsThePaperCatalogue) {
  const auto& reg = registry();
  EXPECT_EQ(reg.match("table1/").size(), 16u);  // 8 rows x 2 schedules
  EXPECT_EQ(reg.match("fig4/").size(), 6u);
  EXPECT_EQ(reg.match("table2/").size(), 3u);
  EXPECT_NE(reg.find("fig2/no-optimal-policy"), nullptr);
  EXPECT_NE(reg.find("fig3/theorem1-case1"), nullptr);
  EXPECT_NE(reg.find("fig5/asymmetric-flanks"), nullptr);
  EXPECT_NE(reg.find("ext/trusted-last"), nullptr);
  EXPECT_NE(reg.find("ext/faults-and-attacks"), nullptr);
  EXPECT_FALSE(reg.match("stress/").empty());
  EXPECT_THROW((void)reg.at("no/such/scenario"), std::out_of_range);
}

TEST(Registry, SmokeVariantBoundsCost) {
  const Scenario& full = registry().at("table2/landshark-descending");
  const Scenario smoke = smoke_variant(full);
  EXPECT_LE(smoke.rounds, 200u);
  EXPECT_EQ(smoke.policy_options.max_joint, 1u);
  EXPECT_LE(smoke.policy_options.max_completions, 16u);
  EXPECT_GE(smoke.policy_options.candidate_stride, 2);
  EXPECT_NO_THROW(smoke.validate());

  // Caps apply even with PolicyKind::kNone: a smoked SweepSpec base must
  // stay cost-bounded when a policy axis later turns the attacker on.
  Scenario no_policy = valid_base();
  no_policy.policy = PolicyKind::kNone;
  const Scenario smoked = smoke_variant(no_policy);
  EXPECT_EQ(smoked.policy_options.max_joint, 1u);
  EXPECT_LE(smoked.policy_options.max_completions, 16u);
  EXPECT_GE(smoked.policy_options.candidate_stride, 2);
}

TEST(Runner, CapturesErrorsInsteadOfThrowing) {
  Scenario bad = valid_base();
  bad.widths = {};  // invalid
  const Runner runner;
  const ScenarioResult result = runner.run(bad);
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.error.empty());

  const Runner strict{{.num_threads = 1, .capture_errors = false}};
  EXPECT_THROW((void)strict.run(bad), std::invalid_argument);
}

TEST(Runner, CaseStudyRejectsNonLandsharkSystems) {
  // The case-study analysis runs the built-in LandShark suite; a scenario
  // whose system fields diverge must fail loudly, not report numbers for a
  // different system under the scenario's name.
  Scenario edited = registry().at("table2/landshark-ascending");
  edited.widths = {1, 2, 0.5, 0.5};
  const ScenarioResult result = Runner{}.run(edited);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("LandShark"), std::string::npos);
}

TEST(Runner, MetricLookup) {
  Scenario s = valid_base();
  s.name = "test/metrics";
  s.policy = PolicyKind::kNone;
  s.fa = 0;
  const ScenarioResult result = Runner{}.run(s);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_GT(result.metric("worlds"), 0.0);
  EXPECT_DOUBLE_EQ(result.metric("expected_width"),
                   result.metric("expected_width_no_attack"));
  EXPECT_THROW((void)result.metric("no_such_metric"), std::out_of_range);
  EXPECT_EQ(result.metric_or("no_such_metric", -1.0), -1.0);
}

}  // namespace
}  // namespace arsf::scenario
