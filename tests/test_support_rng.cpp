// Unit tests for the deterministic RNG (support/rng.h).

#include <gtest/gtest.h>

#include <set>

#include "support/rng.h"

namespace arsf::support {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int differing = 0;
  for (int i = 0; i < 16; ++i) differing += a.next() != b.next() ? 1 : 0;
  EXPECT_GT(differing, 12);
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng{7};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto draw = rng.uniform_int(-3, 3);
    EXPECT_GE(draw, -3);
    EXPECT_LE(draw, 3);
    seen.insert(draw);
  }
  EXPECT_EQ(seen.size(), 7u);  // every value hit over 2000 draws
}

TEST(Rng, UniformIntDegenerate) {
  Rng rng{7};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UnitInHalfOpenRange) {
  Rng rng{11};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntIsRoughlyUniform) {
  Rng rng{101};
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100'000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_int(0, kBuckets - 1)];
  for (int bucket = 0; bucket < kBuckets; ++bucket) {
    EXPECT_NEAR(counts[bucket], kDraws / kBuckets, 500) << "bucket " << bucket;
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng{13};
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.02);
}

TEST(Rng, TruncatedGaussianRespectsBound) {
  Rng rng{17};
  for (int i = 0; i < 20'000; ++i) {
    const double draw = rng.truncated_gaussian(5.0, 1.0, 2.0);
    EXPECT_GE(draw, 3.0);
    EXPECT_LE(draw, 7.0);
  }
}

TEST(Rng, PermutationIsValid) {
  Rng rng{19};
  const auto perm = rng.permutation(10);
  std::set<std::size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 10u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 9u);
}

TEST(Rng, PermutationCoversAllOrders) {
  // Over many draws, a 3-permutation should produce all 6 orders.
  Rng rng{23};
  std::set<std::vector<std::size_t>> orders;
  for (int i = 0; i < 300; ++i) orders.insert(rng.permutation(3));
  EXPECT_EQ(orders.size(), 6u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent{31};
  Rng child = parent.split();
  // The child stream must differ from the parent's continuation.
  int differing = 0;
  for (int i = 0; i < 16; ++i) differing += parent.next() != child.next() ? 1 : 0;
  EXPECT_GT(differing, 12);
}

TEST(Rng, SplitMix64KnownValue) {
  // Reference value from the SplitMix64 specification (seed 0 first output).
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xE220A8397B1DCDAFULL);
}

}  // namespace
}  // namespace arsf::support
