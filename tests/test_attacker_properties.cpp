// Parameterised property sweeps over whole attack campaigns: for families of
// width sets the exhaustive-enumeration engine verifies, across EVERY world
// on the grid,
//
//   * the certificate-following attacker is never detected;
//   * the fusion interval always contains the true value (fa <= f);
//   * attacking never shrinks the expected fusion width;
//   * the paper's headline: E|S| under Descending >= under Ascending;
//   * more information never hurts the attacker (oracle >= Bayesian,
//     Descending-with-full-info >= blind play).

#include <gtest/gtest.h>

#include <tuple>

#include "sim/enumerate.h"

namespace arsf::sim {
namespace {

struct SweepCase {
  std::vector<double> widths;
  std::size_t fa;
};

class AttackerSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  [[nodiscard]] SystemConfig system() const { return make_config(GetParam().widths); }

  [[nodiscard]] EnumerateResult run(const sched::Order& order, bool oracle = false) const {
    EnumerateConfig config;
    config.system = system();
    config.order = order;
    config.attacked = sched::choose_attacked_set(config.system, order, GetParam().fa,
                                                 sched::AttackedSetRule::kSmallestWidths);
    attack::ExpectationPolicy bayes;
    attack::OraclePolicy oracle_policy;
    config.oracle = oracle;
    config.policy = oracle ? static_cast<attack::AttackPolicy*>(&oracle_policy)
                           : static_cast<attack::AttackPolicy*>(&bayes);
    return enumerate_expected_width(config);
  }
};

TEST_P(AttackerSweep, NeverDetectedInAnyWorld) {
  for (const auto& order :
       {sched::ascending_order(system()), sched::descending_order(system())}) {
    const EnumerateResult result = run(order);
    EXPECT_EQ(result.detected_worlds, 0u);
    EXPECT_EQ(result.empty_fusion_worlds, 0u);
  }
}

TEST_P(AttackerSweep, AttackNeverShrinksExpectation) {
  for (const auto& order :
       {sched::ascending_order(system()), sched::descending_order(system())}) {
    const EnumerateResult result = run(order);
    EXPECT_GE(result.expected_width, result.expected_width_no_attack - 1e-12);
  }
}

TEST_P(AttackerSweep, DescendingAtLeastAscending) {
  const double ascending = run(sched::ascending_order(system())).expected_width;
  const double descending = run(sched::descending_order(system())).expected_width;
  EXPECT_GE(descending, ascending - 1e-9);
}

TEST_P(AttackerSweep, OracleDominatesBayesian) {
  // Extra knowledge (the actual future placements) can only help.
  for (const auto& order :
       {sched::ascending_order(system()), sched::descending_order(system())}) {
    const double bayes = run(order).expected_width;
    const double oracle = run(order, /*oracle=*/true).expected_width;
    EXPECT_GE(oracle, bayes - 1e-9);
    const EnumerateResult oracle_result = run(order, true);
    EXPECT_EQ(oracle_result.detected_worlds, 0u);
  }
}

TEST_P(AttackerSweep, WorstCaseWorldRespectsTheorem2) {
  // The maximum width over all worlds stays within |sc1| + |sc2| of the
  // correct sensors (Theorem 2), under both schedules.
  const SystemConfig config = system();
  const auto attacked = sched::choose_attacked_set(
      config, sched::ascending_order(config), GetParam().fa,
      sched::AttackedSetRule::kSmallestWidths);
  std::vector<double> correct_widths;
  for (SensorId id = 0; id < config.n(); ++id) {
    if (std::find(attacked.begin(), attacked.end(), id) == attacked.end()) {
      correct_widths.push_back(config.sensors[id].width);
    }
  }
  std::sort(correct_widths.rbegin(), correct_widths.rend());
  const double bound = correct_widths.size() >= 2
                           ? correct_widths[0] + correct_widths[1]
                           : correct_widths[0];
  for (const auto& order :
       {sched::ascending_order(config), sched::descending_order(config)}) {
    EXPECT_LE(run(order).max_width, bound + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, AttackerSweep,
    ::testing::Values(SweepCase{{3, 5, 9}, 1}, SweepCase{{4, 4, 4}, 1},
                      SweepCase{{2, 7, 8}, 1}, SweepCase{{3, 4, 5, 6}, 1},
                      SweepCase{{2, 3, 3, 8}, 1}, SweepCase{{3, 3, 4, 5, 6}, 2},
                      SweepCase{{2, 2, 5, 5, 7}, 2}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      std::string name = "w";
      for (double w : info.param.widths) {
        name += std::to_string(static_cast<int>(w)) + "_";
      }
      return name + "fa" + std::to_string(info.param.fa);
    });

// Slot-position sweep: the attacker's expected gain is monotone in how late
// her slot is (more seen intervals = more information = more power).  This
// is the information-monotonicity argument behind the Ascending schedule.
TEST(AttackerInformation, LaterSlotNeverHurts) {
  const SystemConfig system = make_config({5.0, 9.0, 13.0});
  double previous = -1.0;
  for (std::size_t attacker_slot = 0; attacker_slot < 3; ++attacker_slot) {
    // Build an order placing the attacked sensor (id 0) at the given slot,
    // the others in ascending width order around it.
    sched::Order order;
    std::vector<SensorId> rest = {1, 2};
    for (std::size_t slot = 0, next = 0; slot < 3; ++slot) {
      order.push_back(slot == attacker_slot ? SensorId{0} : rest[next++]);
    }
    EnumerateConfig config;
    config.system = system;
    config.order = order;
    config.attacked = {0};
    attack::ExpectationPolicy policy;
    config.policy = &policy;
    const double width = enumerate_expected_width(config).expected_width;
    EXPECT_GE(width, previous - 1e-9) << "slot " << attacker_slot;
    previous = width;
  }
}

}  // namespace
}  // namespace arsf::sim
