// Unit tests for the point estimators (core/estimate.h), including the
// resilience property that motivates fusing before estimating.

#include <gtest/gtest.h>

#include "core/estimate.h"

namespace arsf {
namespace {

TEST(Estimate, FusedMidpoint) {
  const std::vector<Interval> intervals = {{0, 6}, {1, 8}, {2, 10}};
  const auto value = fused_midpoint(intervals, 1);
  ASSERT_TRUE(value);
  EXPECT_DOUBLE_EQ(*value, 4.5);  // fusion = [1, 8]
}

TEST(Estimate, FusedMidpointEmptyRegion) {
  const std::vector<Interval> intervals = {{0, 1}, {10, 11}, {20, 21}};
  EXPECT_FALSE(fused_midpoint(intervals, 1));
}

TEST(Estimate, MeanAndMedian) {
  const std::vector<Interval> intervals = {{0, 2}, {2, 4}, {7, 9}};  // midpoints 1, 3, 8
  EXPECT_DOUBLE_EQ(mean_midpoint(intervals), 4.0);
  EXPECT_DOUBLE_EQ(median_midpoint(intervals), 3.0);
}

TEST(Estimate, WeightedPrefersPreciseSensors) {
  // Widths 1 (midpoint 10) and 10 (midpoint 11): the precise sensor
  // dominates the weighted mean, pulling it towards 10.
  const std::vector<Interval> intervals = {{9.5, 10.5}, {6.0, 16.0}};
  const double weighted = weighted_midpoint(intervals);
  EXPECT_NEAR(weighted, 10.0 + 1.0 / 11.0, 1e-9);  // weights 1 vs 1/10
  EXPECT_LT(weighted, mean_midpoint(intervals));   // mean = 10.5
}

TEST(Estimate, WeightedZeroWidthDominates) {
  const std::vector<Interval> intervals = {{7, 7}, {0, 10}};
  EXPECT_DOUBLE_EQ(weighted_midpoint(intervals), 7.0);
}

TEST(Estimate, DispatchMatchesDirectCalls) {
  const std::vector<Interval> intervals = {{0, 2}, {1, 3}, {2, 6}};
  EXPECT_EQ(estimate(intervals, 1, Estimator::kFusedMidpoint), fused_midpoint(intervals, 1));
  EXPECT_DOUBLE_EQ(*estimate(intervals, 1, Estimator::kMeanMidpoint), mean_midpoint(intervals));
  EXPECT_DOUBLE_EQ(*estimate(intervals, 1, Estimator::kMedianMidpoint),
                   median_midpoint(intervals));
  EXPECT_DOUBLE_EQ(*estimate(intervals, 1, Estimator::kWeightedMidpoint),
                   weighted_midpoint(intervals));
}

TEST(Estimate, ResilienceOfFusedMidpointVsMean) {
  // True value 0; three honest sensors and one stealthy attacked interval
  // pushed as far right as it can while still touching the fusion interval.
  // The mean estimator absorbs the full bias; the fused midpoint barely
  // moves because the fusion interval is pinned by the honest majority.
  const std::vector<Interval> honest = {{-1, 1}, {-0.8, 1.2}, {-1.2, 0.8}};
  std::vector<Interval> attacked = honest;
  attacked.push_back(Interval{0.8, 2.8});  // touches the fusion region at 0.8
  const double fused_bias = *fused_midpoint(attacked, 1);
  const double mean_bias = mean_midpoint(attacked);
  EXPECT_LT(std::abs(fused_bias), std::abs(mean_bias));
}

TEST(Estimate, Names) {
  EXPECT_EQ(to_string(Estimator::kFusedMidpoint), "fused-midpoint");
  EXPECT_EQ(to_string(Estimator::kMeanMidpoint), "mean-midpoint");
  EXPECT_EQ(to_string(Estimator::kMedianMidpoint), "median-midpoint");
  EXPECT_EQ(to_string(Estimator::kWeightedMidpoint), "weighted-midpoint");
}

}  // namespace
}  // namespace arsf
