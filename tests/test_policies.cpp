// Unit tests for the simple attack policies (attack/policies.h).

#include <gtest/gtest.h>

#include "attack/policies.h"
#include "test_helpers.h"

namespace arsf::attack {
namespace {

using testing::make_context;
using testing::make_setup;

// n=3, widths {5, 11, 17}, attacker owns the width-5 sensor.
struct LastSlotCase {
  AttackSetup setup = make_setup({5, 11, 17}, {0}, {2, 1, 0});
  std::vector<TickInterval> readings = {{-2, 3}, {-5, 6}, {-10, 7}};
  AttackContext ctx = make_context(setup, readings, 2);
};

TEST(Policies, CorrectReturnsReading) {
  LastSlotCase c;
  support::Rng rng{1};
  CorrectPolicy policy;
  EXPECT_EQ(policy.decide(c.ctx, rng), c.readings[0]);
  EXPECT_EQ(policy.name(), "correct");
}

TEST(Policies, FeasibleCandidatesAreAllStealthy) {
  LastSlotCase c;
  const auto candidates = feasible_candidates(c.ctx);
  ASSERT_FALSE(candidates.empty());
  for (const auto& candidate : candidates) {
    EXPECT_EQ(candidate.width(), 5);
    const std::vector<TickInterval> plan = {candidate};
    EXPECT_TRUE(plan_feasible(c.ctx, plan)) << to_string(candidate);
  }
  // The correct reading is always among them.
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), c.readings[0]), candidates.end());
}

TEST(Policies, ShiftRightPicksMaximalLowerBound) {
  LastSlotCase c;
  support::Rng rng{1};
  ShiftPolicy right{ShiftPolicy::Side::kRight};
  const TickInterval decision = right.decide(c.ctx, rng);
  const auto candidates = feasible_candidates(c.ctx);
  EXPECT_EQ(decision, candidates.back());
  ShiftPolicy left{ShiftPolicy::Side::kLeft};
  EXPECT_EQ(left.decide(c.ctx, rng), candidates.front());
  EXPECT_LT(candidates.front().lo, candidates.back().lo);
}

TEST(Policies, ShiftInPassiveModeStaysAroundDelta) {
  // Attacker first: passive, so every candidate contains delta = reading.
  const auto setup = make_setup({5, 11, 17}, {0}, {0, 1, 2});
  const std::vector<TickInterval> readings = {{-2, 3}, {-5, 6}, {-10, 7}};
  const auto ctx = make_context(setup, readings, 0);
  support::Rng rng{1};
  ShiftPolicy right{ShiftPolicy::Side::kRight};
  // Width equals |delta|: the only stealthy move is the truth.
  EXPECT_EQ(right.decide(ctx, rng), readings[0]);
}

TEST(Policies, RandomFeasibleStaysFeasible) {
  LastSlotCase c;
  support::Rng rng{7};
  RandomFeasiblePolicy policy;
  for (int i = 0; i < 50; ++i) {
    const TickInterval decision = policy.decide(c.ctx, rng);
    const std::vector<TickInterval> plan = {decision};
    EXPECT_TRUE(plan_feasible(c.ctx, plan));
  }
}

TEST(Policies, RandomFeasibleActuallyVaries) {
  LastSlotCase c;
  support::Rng rng{7};
  RandomFeasiblePolicy policy;
  std::set<Tick> lows;
  for (int i = 0; i < 100; ++i) lows.insert(policy.decide(c.ctx, rng).lo);
  EXPECT_GT(lows.size(), 3u);
}

TEST(Policies, NaiveOffsetIgnoresStealth) {
  LastSlotCase c;
  support::Rng rng{1};
  NaiveOffsetPolicy policy{40};
  const TickInterval decision = policy.decide(c.ctx, rng);
  EXPECT_EQ(decision, c.readings[0].translated(40));
  const std::vector<TickInterval> plan = {decision};
  EXPECT_FALSE(plan_feasible(c.ctx, plan));  // certificate-free by design
}

TEST(Policies, Names) {
  EXPECT_EQ(ShiftPolicy{ShiftPolicy::Side::kLeft}.name(), "shift-left");
  EXPECT_EQ(ShiftPolicy{ShiftPolicy::Side::kAlternate}.name(), "shift-alternate");
  EXPECT_EQ(RandomFeasiblePolicy{}.name(), "random-feasible");
  EXPECT_EQ(NaiveOffsetPolicy{1}.name(), "naive-offset");
}

}  // namespace
}  // namespace arsf::attack
