// Unit tests for the fusion-round drivers (sim/protocol.h): tick round
// semantics, bus replay, detection bookkeeping, width validation.

#include <gtest/gtest.h>

#include "sim/protocol.h"
#include "test_helpers.h"

namespace arsf::sim {
namespace {

using testing::make_setup;

TEST(TickRound, AllCorrectWithoutPolicy) {
  const auto setup = make_setup({5, 11, 17}, {}, {0, 1, 2});
  const std::vector<TickInterval> readings = {{-2, 3}, {-5, 6}, {-10, 7}};
  support::Rng rng{1};
  const auto result = run_tick_round(setup, readings, nullptr, rng);
  EXPECT_EQ(result.transmitted, readings);
  EXPECT_FALSE(result.fused.is_empty());
  EXPECT_FALSE(result.attacked_detected);
  EXPECT_FALSE(result.correct_flagged);
  // Same as fusing directly.
  EXPECT_EQ(result.fused, fused_interval_ticks(readings, setup.f));
}

TEST(TickRound, AttackedSensorUsesPolicy) {
  const auto setup = make_setup({5, 11, 17}, {0}, {2, 1, 0});
  const std::vector<TickInterval> readings = {{-2, 3}, {-5, 6}, {-10, 7}};
  support::Rng rng{1};
  attack::ExpectationPolicy policy;
  const auto result = run_tick_round(setup, readings, &policy, rng);
  // Attacked sensor transmitted something of the right width, and the fused
  // width can only grow relative to the honest round.
  EXPECT_EQ(result.transmitted[0].width(), 5);
  EXPECT_GE(result.fused.width(), fused_interval_ticks(readings, setup.f).width());
  EXPECT_FALSE(result.attacked_detected);
}

TEST(TickRound, FusionContainsTruthDespiteAttack) {
  // The true value (0 by construction) lies in >= n - fa >= n - f correct
  // intervals, so it is always inside the fused interval.
  const auto setup = make_setup({5, 11, 17}, {0}, {2, 1, 0});
  support::Rng rng{5};
  support::Rng world{6};
  attack::ExpectationPolicy policy;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<TickInterval> readings(3);
    for (SensorId id = 0; id < 3; ++id) {
      const Tick lo = world.uniform_int(-setup.widths[id], 0);
      readings[id] = TickInterval{lo, lo + setup.widths[id]};
    }
    const auto result = run_tick_round(setup, readings, &policy, rng);
    EXPECT_TRUE(result.fused.contains(Tick{0}));
  }
}

TEST(TickRound, WrongWidthPolicyIsRejected) {
  class BadPolicy final : public attack::AttackPolicy {
   public:
    TickInterval decide(const attack::AttackContext&, support::Rng&) override {
      return TickInterval{0, 1};  // wrong width
    }
    std::string name() const override { return "bad"; }
  };
  const auto setup = make_setup({5, 11, 17}, {0}, {0, 1, 2});
  const std::vector<TickInterval> readings = {{-2, 3}, {-5, 6}, {-10, 7}};
  support::Rng rng{1};
  BadPolicy bad;
  EXPECT_THROW((void)run_tick_round(setup, readings, &bad, rng), std::logic_error);
}

TEST(TickRound, NaiveAttackerGetsDetected) {
  const auto setup = make_setup({5, 11, 17}, {0}, {2, 1, 0});
  const std::vector<TickInterval> readings = {{-2, 3}, {-5, 6}, {-10, 7}};
  support::Rng rng{1};
  attack::NaiveOffsetPolicy naive{50};
  const auto result = run_tick_round(setup, readings, &naive, rng);
  EXPECT_TRUE(result.attacked_detected);
}

TEST(FusionRound, ReplaysOverBusAndFuses) {
  const SystemConfig system = make_config({5.0, 11.0, 17.0});
  FusionRound round{system, Quantizer{1.0}, {}, nullptr};
  const std::vector<Interval> readings = {{-2, 3}, {-5, 6}, {-10, 7}};
  support::Rng rng{1};
  const RoundResult result = round.run(sched::ascending_order(system), readings, rng, 7);

  ASSERT_TRUE(result.fusion.interval);
  EXPECT_TRUE(result.fusion.interval->contains(0.0));
  ASSERT_TRUE(result.estimate);
  EXPECT_EQ(result.detection.num_flagged, 0);
  // Bus saw one frame per sensor with the right slots and round index.
  ASSERT_EQ(round.bus().log().size(), 3u);
  for (std::size_t slot = 0; slot < 3; ++slot) {
    EXPECT_EQ(round.bus().log()[slot].slot, slot);
    EXPECT_EQ(round.bus().log()[slot].round, 7u);
  }
}

TEST(FusionRound, AttackedRoundStealthyOnGridWorlds) {
  const SystemConfig system = make_config({5.0, 11.0, 17.0});
  attack::ExpectationPolicy policy;
  FusionRound round{system, Quantizer{1.0}, {0}, &policy};
  support::Rng rng{2};
  support::Rng world{3};
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Interval> readings(3);
    const std::vector<double> widths = system.widths();
    for (std::size_t id = 0; id < 3; ++id) {
      const double lo = static_cast<double>(world.uniform_int(
          -static_cast<Tick>(widths[id]), 0));
      readings[id] = Interval{lo, lo + widths[id]};
    }
    const RoundResult result = round.run(sched::descending_order(system), readings, rng);
    EXPECT_FALSE(result.attacked_detected);
    ASSERT_TRUE(result.fusion.interval);
    EXPECT_TRUE(result.fusion.interval->contains(0.0));
  }
}

TEST(FusionRound, ValidatesInputs) {
  const SystemConfig system = make_config({5.0, 11.0, 17.0});
  FusionRound round{system, Quantizer{1.0}, {}, nullptr};
  support::Rng rng{1};
  const std::vector<Interval> too_few = {{0, 1}};
  EXPECT_THROW((void)round.run(sched::ascending_order(system), too_few, rng),
               std::invalid_argument);
  // Off-grid widths are rejected at construction.
  EXPECT_THROW((FusionRound{make_config({0.25, 1.0, 1.0}), Quantizer{0.1}, {}, nullptr}),
               std::invalid_argument);
}

}  // namespace
}  // namespace arsf::sim
