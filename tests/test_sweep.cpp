// Unit tests for the sweep subsystem: SweepSpec expansion (mixed-radix
// order, axis naming), the estimated_worlds cost model, chunked run_sweep
// streaming (bounded memory, input-order, thread-count invariance at grid
// scale), and registry overlays.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "scenario/registry.h"
#include "scenario/runner.h"
#include "scenario/sink.h"
#include "scenario/sweep.h"
#include "sim/enumerate.h"

namespace arsf::scenario {
namespace {

Scenario cheap_base() {
  Scenario base;
  base.name = "base";
  base.widths = {1, 2, 3};
  base.fa = 0;
  base.policy = PolicyKind::kNone;
  return base;
}

/// Records indices/names and forwards nothing (order assertions).
class RecordingSink final : public ResultSink {
 public:
  void on_result(std::size_t index, const ScenarioResult& result) override {
    indices.push_back(index);
    names.push_back(result.scenario);
    if (!result.ok()) ++failures;
  }
  void on_finish(std::size_t total) override {
    ++finishes;
    finished_total = total;
  }

  std::vector<std::size_t> indices;
  std::vector<std::string> names;
  std::size_t failures = 0;
  int finishes = 0;
  std::size_t finished_total = 0;
};

TEST(SweepSpec, NoActiveAxesExpandsToExactlyTheBase) {
  SweepSpec spec;
  spec.name = "one";
  spec.base = cheap_base();
  EXPECT_EQ(spec.size(), 1u);
  const std::vector<Scenario> expanded = spec.expand();
  ASSERT_EQ(expanded.size(), 1u);
  EXPECT_EQ(expanded[0].name, "one");
  EXPECT_EQ(expanded[0].widths, spec.base.widths);
}

TEST(SweepSpec, ExpansionOrderNestsLeftmostAxisSlowest) {
  SweepSpec spec;
  spec.name = "grid";
  spec.base = cheap_base();
  spec.widths_sets = {{1, 2, 3}, {2, 4, 6}};
  spec.steps = {1.0, 0.5};
  spec.schedules = {sched::ScheduleKind::kAscending, sched::ScheduleKind::kDescending};
  ASSERT_EQ(spec.size(), 8u);

  const std::vector<Scenario> expanded = spec.expand();
  // Leftmost segment (widths) slowest, rightmost (schedule) fastest.
  EXPECT_EQ(expanded[0].name, "grid/w=1-2-3/step=1/sched=ascending");
  EXPECT_EQ(expanded[1].name, "grid/w=1-2-3/step=1/sched=descending");
  EXPECT_EQ(expanded[2].name, "grid/w=1-2-3/step=0.5/sched=ascending");
  EXPECT_EQ(expanded[4].name, "grid/w=2-4-6/step=1/sched=ascending");
  EXPECT_EQ(expanded[7].name, "grid/w=2-4-6/step=0.5/sched=descending");
  EXPECT_EQ(expanded[7].widths, (std::vector<double>{2, 4, 6}));
  EXPECT_EQ(expanded[7].step, 0.5);
  EXPECT_EQ(expanded[7].schedule, sched::ScheduleKind::kDescending);

  // Every grid point validated on materialisation.
  for (const Scenario& scenario : expanded) EXPECT_NO_THROW(scenario.validate());
}

TEST(SweepSpec, SeedAxisStridesFromTheBaseSeed) {
  SweepSpec spec;
  spec.name = "seeds";
  spec.base = cheap_base();
  spec.base.seed = 100;
  spec.seed_count = 3;
  spec.seed_stride = 7;
  const std::vector<Scenario> expanded = spec.expand();
  ASSERT_EQ(expanded.size(), 3u);
  EXPECT_EQ(expanded[0].name, "seeds/seed=0");
  EXPECT_EQ(expanded[0].seed, 100u);
  EXPECT_EQ(expanded[1].seed, 107u);
  EXPECT_EQ(expanded[2].seed, 114u);
}

TEST(SweepSpec, AtRejectsOutOfRangeAndInvalidPoints) {
  SweepSpec spec;
  spec.name = "bad";
  spec.base = cheap_base();
  EXPECT_THROW((void)spec.at(1), std::invalid_argument);

  // fa = 4 exceeds n on a 3-sensor base: the grid point itself is invalid.
  spec.fa_values = {4};
  try {
    (void)spec.at(0);
    FAIL() << "expected an invalid grid point to throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("grid point 0"), std::string::npos) << e.what();
  }
}

TEST(SweepSpec, ValidateRejectsStructuralErrors) {
  {
    SweepSpec spec;
    spec.base = cheap_base();
    EXPECT_THROW(spec.validate(), std::invalid_argument);  // empty name
  }
  {
    SweepSpec spec;
    spec.name = "s";
    spec.base = cheap_base();
    spec.widths_sets = {{}};
    EXPECT_THROW(spec.validate(), std::invalid_argument);
  }
  {
    SweepSpec spec;
    spec.name = "s";
    spec.base = cheap_base();
    spec.steps = {0.0};
    EXPECT_THROW(spec.validate(), std::invalid_argument);
  }
  {
    SweepSpec spec;
    spec.name = "s";
    spec.base = cheap_base();
    spec.seed_count = 2;
    spec.seed_stride = 0;
    EXPECT_THROW(spec.validate(), std::invalid_argument);
  }
}

TEST(SweepSpec, JsonRoundTripPreservesEveryField) {
  SweepSpec spec;
  spec.name = "rt/sweep";
  spec.description = "round trip";
  spec.base = cheap_base();
  spec.base.seed = 0xffffffffffffffffULL;  // must survive exactly
  spec.widths_sets = {{0.5, 3.25, 96}, {1, 2, 3}};
  spec.fa_values = {0, 1};
  spec.steps = {0.25, 1};
  spec.schedules = {sched::ScheduleKind::kTrustedLast, sched::ScheduleKind::kFixed};
  spec.policies = {PolicyKind::kNone, PolicyKind::kOracle};
  spec.seed_count = 9;
  spec.seed_stride = 0xdeadbeefcafef00dULL;

  const SweepSpec restored = SweepSpec::from_json(spec.to_json());
  EXPECT_EQ(restored, spec);
}

TEST(SweepSpec, JsonRejectsUnknownKeysAndMalformedInput) {
  SweepSpec spec;
  spec.name = "r";
  spec.base = cheap_base();
  const std::string valid = spec.to_json();
  EXPECT_NO_THROW((void)SweepSpec::from_json(valid));
  EXPECT_THROW((void)SweepSpec::from_json(valid + " x"), std::invalid_argument);

  std::string with_unknown = valid;
  with_unknown.insert(1, "\"no_such_axis\":[],");
  EXPECT_THROW((void)SweepSpec::from_json(with_unknown), std::invalid_argument);

  EXPECT_THROW((void)SweepSpec::from_json("{}"), std::invalid_argument);
}

TEST(SweepCost, EstimatedWorldsMatchesTheCodecCount) {
  Scenario s = cheap_base();
  s.widths = {5, 11, 17};
  EXPECT_EQ(estimated_worlds(s), sim::world_count(s.system(), Quantizer{s.step}));
  EXPECT_EQ(estimated_worlds(s), 6u * 12u * 18u);

  s.step = 0.5;
  EXPECT_EQ(estimated_worlds(s), 11u * 23u * 35u);

  Scenario mc = cheap_base();
  mc.analysis = AnalysisKind::kMonteCarlo;
  mc.schedule = sched::ScheduleKind::kRandom;
  mc.rounds = 1234;
  EXPECT_EQ(estimated_worlds(mc), 1234u);

  Scenario wc = cheap_base();
  wc.analysis = AnalysisKind::kWorstCase;
  wc.fa = 1;
  wc.over_all_sets = true;
  // Over all fa-subsets: the per-set search runs C(3, 1) times.
  EXPECT_EQ(estimated_worlds(wc), sim::world_count(wc.system(), Quantizer{1.0}) * 3u);
}

TEST(RunSweep, ChunksStreamInGridOrderWithOneFinish) {
  SweepSpec spec;
  spec.name = "chunked";
  spec.base = cheap_base();
  spec.seed_count = 20;  // 20 cheap identical-cost points

  RecordingSink sink;
  SweepRunOptions options;
  options.chunk_scenarios = 7;  // 7 + 7 + 6
  const Runner runner{{.num_threads = 1}};
  EXPECT_EQ(run_sweep(spec, runner, sink, options), 20u);

  ASSERT_EQ(sink.indices.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(sink.indices[i], i);
  EXPECT_EQ(sink.failures, 0u);
  EXPECT_EQ(sink.finishes, 1) << "run_sweep must finish once, not per chunk";
  EXPECT_EQ(sink.finished_total, 20u);
  EXPECT_EQ(sink.names.front(), "chunked/seed=0");
  EXPECT_EQ(sink.names.back(), "chunked/seed=19");
}

TEST(RunSweep, CostBoundClosesChunksEarly) {
  SweepSpec spec;
  spec.name = "costly";
  spec.base = cheap_base();
  spec.widths_sets = {{1, 2, 3}, {4, 8, 12}, {1, 2, 3}, {4, 8, 12}};

  // Chunk budget below one big point's cost: every chunk closes after at
  // most one big point, yet all points still run exactly once, in order.
  RecordingSink sink;
  SweepRunOptions options;
  options.chunk_scenarios = 4;
  options.chunk_cost = estimated_worlds(spec.at(1)) - 1;
  EXPECT_EQ(run_sweep(spec, Runner{{.num_threads = 1}}, sink, options), 4u);
  ASSERT_EQ(sink.indices.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(sink.indices[i], i);
}

// The acceptance-criteria workload: one SweepSpec expanding to >= 1000 grid
// points, streamed through a CsvStreamSink in bounded chunks, bit-identical
// across RunnerOptions::num_threads in {1, 0}.
TEST(RunSweep, ThousandPointSweepIsChunkedAndThreadCountInvariant) {
  SweepSpec spec;
  spec.name = "kilo";
  spec.base = cheap_base();
  spec.widths_sets = {{1, 2, 3}, {2, 3, 4}};
  spec.steps = {1.0, 0.5};
  spec.schedules = {sched::ScheduleKind::kAscending, sched::ScheduleKind::kDescending};
  spec.seed_count = 125;
  ASSERT_EQ(spec.size(), 1000u);

  SweepRunOptions options;
  options.chunk_scenarios = 128;  // memory stays bounded at chunk scale

  std::string baseline;
  for (const unsigned threads : {1u, 0u}) {
    std::ostringstream out;
    CsvStreamSink csv{out};
    const Runner runner{{.num_threads = threads}};
    EXPECT_EQ(run_sweep(spec, runner, csv, options), 1000u);
    EXPECT_EQ(csv.results(), 1000u);
    // 7 enumerate metrics + 1 status row per point, no error rows.
    EXPECT_EQ(csv.entries(), 8000u);
    if (baseline.empty()) {
      baseline = out.str();
    } else {
      EXPECT_EQ(out.str(), baseline)
          << "threads=" << threads << ": streamed CSV must be bit-identical";
    }
  }
}

// ---- resumable sweeps -------------------------------------------------------

namespace {

/// Forwards to an inner sink, then simulates a kill -9 by throwing once a
/// set number of results have streamed (the runner rethrows a sink failure
/// after the batch drains, so run_sweep aborts without checkpointing the
/// broken chunk — exactly what an interrupted process leaves behind).
class KillSwitchSink final : public ResultSink {
 public:
  KillSwitchSink(ResultSink& inner, std::size_t kill_after)
      : inner_(inner), kill_after_(kill_after) {}

  void on_result(std::size_t index, const ScenarioResult& result) override {
    inner_.on_result(index, result);
    if (++delivered_ == kill_after_) throw std::runtime_error("simulated kill");
  }
  void on_finish(std::size_t total) override { inner_.on_finish(total); }

 private:
  ResultSink& inner_;
  std::size_t kill_after_;
  std::size_t delivered_ = 0;
};

std::string read_file(const std::string& path) {
  std::ifstream file{path, std::ios::binary};
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

}  // namespace

TEST(RunSweep, KillAndResumeProducesAByteIdenticalCsv) {
  SweepSpec spec;
  spec.name = "resume";
  spec.base = cheap_base();
  spec.widths_sets = {{1, 2, 3}, {2, 4, 6}, {3, 6, 9}};
  spec.steps = {1.0, 0.5};
  spec.schedules = {sched::ScheduleKind::kAscending, sched::ScheduleKind::kDescending};
  ASSERT_EQ(spec.size(), 12u);

  const Runner runner{{.num_threads = 2}};
  const std::string golden_path = testing::TempDir() + "arsf_resume_golden.csv";
  const std::string csv_path = testing::TempDir() + "arsf_resume_run.csv";
  const std::string progress_path = csv_path + ".progress";
  std::filesystem::remove(golden_path);
  std::filesystem::remove(csv_path);
  std::filesystem::remove(progress_path);

  SweepRunOptions options;
  options.chunk_scenarios = 5;  // chunk boundaries at grid indices 5, 10, 12

  {
    // Uninterrupted reference run (no checkpointing).
    CsvStreamSink golden{golden_path};
    EXPECT_EQ(run_sweep(spec, runner, golden, options), 12u);
  }

  // Interrupted run: checkpoints land next to the CSV; the kill fires after
  // 7 results, so the chunk-5 boundary is checkpointed and results 5-6 sit
  // on disk as rows PAST it (per-result flush) — the mess a real kill leaves.
  options.checkpoint_path = progress_path;
  options.checkpoint_output = csv_path;
  {
    CsvStreamSink csv{csv_path};
    KillSwitchSink killer{csv, 7};
    EXPECT_THROW(run_sweep(spec, runner, killer, options), std::runtime_error);
  }
  const std::optional<SweepCheckpoint> checkpoint = load_sweep_checkpoint(progress_path);
  ASSERT_TRUE(checkpoint.has_value());
  EXPECT_EQ(checkpoint->next_index, 5u);
  EXPECT_GT(std::filesystem::file_size(csv_path), checkpoint->output_bytes)
      << "the kill must strand partial rows past the checkpoint for this test to bite";
  // The token is bound to the sweep that wrote it: resuming a DIFFERENT
  // sweep (or the same one smoked/edited) must be detectable.
  EXPECT_EQ(checkpoint->spec_fingerprint, sweep_fingerprint(spec));
  SweepSpec other = spec;
  other.name = "resume-edited";
  EXPECT_NE(sweep_fingerprint(other), sweep_fingerprint(spec));

  // Resume exactly the way scenario_runner --resume does: truncate the CSV
  // back to the checkpointed byte, append from the checkpointed index.
  const SweepCheckpoint effective = truncate_for_resume(csv_path, *checkpoint);
  EXPECT_EQ(effective.next_index, checkpoint->next_index)
      << "an intact output must resume from the token unchanged";
  options.resume_from = effective.next_index;
  {
    CsvStreamSink csv{csv_path, /*append=*/true};
    EXPECT_EQ(run_sweep(spec, runner, csv, options), 7u);
  }
  EXPECT_FALSE(std::filesystem::exists(progress_path))
      << "a completed sweep must drop its resume token";
  EXPECT_EQ(read_file(csv_path), read_file(golden_path));

  std::filesystem::remove(golden_path);
  std::filesystem::remove(csv_path);
}

TEST(RunSweep, ShrunkCsvBelowCheckpointIsRepairedAndResumeStaysByteIdentical) {
  // Regression: a checkpoint pointing BEYOND a now-shrunk output file
  // (external truncation after the token was written) used to be a hard
  // refusal.  truncate_for_resume must instead cut the CSV back to its last
  // complete result (the trailing "status" row) and rebuild the resume
  // index from the file, so the resumed run is still byte-identical.
  SweepSpec spec;
  spec.name = "repair";
  spec.base = cheap_base();
  spec.widths_sets = {{1, 2, 3}, {2, 4, 6}, {3, 6, 9}};
  spec.schedules = {sched::ScheduleKind::kAscending, sched::ScheduleKind::kDescending};
  ASSERT_EQ(spec.size(), 6u);

  const Runner runner{{.num_threads = 1}};
  const std::string golden_path = testing::TempDir() + "arsf_repair_golden.csv";
  const std::string csv_path = testing::TempDir() + "arsf_repair_run.csv";
  const std::string progress_path = csv_path + ".progress";
  std::filesystem::remove(golden_path);
  std::filesystem::remove(csv_path);
  std::filesystem::remove(progress_path);

  SweepRunOptions options;
  options.chunk_scenarios = 2;
  {
    CsvStreamSink golden{golden_path};
    EXPECT_EQ(run_sweep(spec, runner, golden, options), 6u);
  }

  options.checkpoint_path = progress_path;
  options.checkpoint_output = csv_path;
  {
    CsvStreamSink csv{csv_path};
    KillSwitchSink killer{csv, 5};
    EXPECT_THROW(run_sweep(spec, runner, killer, options), std::runtime_error);
  }
  const std::optional<SweepCheckpoint> checkpoint = load_sweep_checkpoint(progress_path);
  ASSERT_TRUE(checkpoint.has_value());
  ASSERT_EQ(checkpoint->next_index, 4u);

  // Shrink the CSV below the checkpointed byte, tearing the last row.
  ASSERT_GE(checkpoint->output_bytes, 10u);
  std::filesystem::resize_file(csv_path, checkpoint->output_bytes - 10);

  const SweepCheckpoint repaired = truncate_for_resume(csv_path, *checkpoint);
  EXPECT_LT(repaired.next_index, checkpoint->next_index)
      << "the torn tail must be cut back to the last complete result";
  EXPECT_EQ(repaired.spec_fingerprint, checkpoint->spec_fingerprint);
  EXPECT_EQ(std::filesystem::file_size(csv_path), repaired.output_bytes);

  options.resume_from = repaired.next_index;
  {
    CsvStreamSink csv{csv_path, /*append=*/true};
    EXPECT_EQ(run_sweep(spec, runner, csv, options),
              spec.size() - repaired.next_index);
  }
  EXPECT_EQ(read_file(csv_path), read_file(golden_path));

  std::filesystem::remove(golden_path);
  std::filesystem::remove(csv_path);
  std::filesystem::remove(progress_path);
}

TEST(RunSweep, UnstatableOutputSkipsTheCheckpointInsteadOfRecordingZeroBytes) {
  // If the output file cannot be seen at checkpoint time, saving a token
  // with output_bytes = 0 would make a later resume truncate the CSV to
  // nothing; run_sweep must keep the previous token (here: none) instead.
  SweepSpec spec;
  spec.name = "unstatable";
  spec.base = cheap_base();
  spec.seed_count = 6;

  const std::string progress_path = testing::TempDir() + "arsf_unstatable.progress";
  std::filesystem::remove(progress_path);
  SweepRunOptions options;
  options.chunk_scenarios = 2;
  options.checkpoint_path = progress_path;
  options.checkpoint_output = testing::TempDir() + "no_such_dir/never_written.csv";

  RecordingSink inner;
  KillSwitchSink killer{inner, 3};  // abort mid-run so completion cannot hide the token
  EXPECT_THROW(run_sweep(spec, Runner{{.num_threads = 1}}, killer, options),
               std::runtime_error);
  EXPECT_FALSE(std::filesystem::exists(progress_path));
}

TEST(RunSweep, ResumeTokensRejectCorruptionAndMismatchedOutputs) {
  const std::string path = testing::TempDir() + "arsf_resume_token";
  std::filesystem::remove(path);
  EXPECT_FALSE(load_sweep_checkpoint(path).has_value());

  save_sweep_checkpoint(path, SweepCheckpoint{42, 1234, 0xfeedULL});
  const std::optional<SweepCheckpoint> token = load_sweep_checkpoint(path);
  ASSERT_TRUE(token.has_value());
  EXPECT_EQ(token->next_index, 42u);
  EXPECT_EQ(token->output_bytes, 1234u);
  EXPECT_EQ(token->spec_fingerprint, 0xfeedULL);

  {
    std::ofstream corrupt{path, std::ios::trunc};
    corrupt << "not a checkpoint";
  }
  EXPECT_THROW((void)load_sweep_checkpoint(path), std::runtime_error);
  {
    // A pre-fingerprint (two-field) token is also rejected rather than
    // resumed with a fingerprint of garbage.
    std::ofstream old_format{path, std::ios::trunc};
    old_format << "42 1234\n";
  }
  EXPECT_THROW((void)load_sweep_checkpoint(path), std::runtime_error);
  {
    // So is trailing content beyond the three fields (mangled/concatenated
    // file whose prefix happens to parse).
    std::ofstream mangled{path, std::ios::trunc};
    mangled << "42 1234 7 999 extra\n";
  }
  EXPECT_THROW((void)load_sweep_checkpoint(path), std::runtime_error);

  // A CSV shorter than its token with nothing salvageable (not even a
  // complete header line) cannot be repaired either.
  const std::string csv = testing::TempDir() + "arsf_resume_short.csv";
  {
    std::ofstream file{csv, std::ios::trunc};
    file << "tiny";
  }
  EXPECT_THROW((void)truncate_for_resume(csv, SweepCheckpoint{1, 1000}), std::runtime_error);
  // resume_from beyond the grid is rejected before any work starts.
  SweepSpec spec;
  spec.name = "beyond";
  spec.base = cheap_base();
  RecordingSink sink;
  SweepRunOptions options;
  options.resume_from = 2;  // grid size is 1
  EXPECT_THROW((void)run_sweep(spec, Runner{{.num_threads = 1}}, sink, options),
               std::invalid_argument);
  std::filesystem::remove(path);
  std::filesystem::remove(csv);
}

TEST(RegistrySweeps, BuiltInSweepsAreRegisteredAndValid) {
  const auto& reg = registry();
  ASSERT_GE(reg.sweeps().size(), 2u);
  const SweepSpec& grid = reg.sweep_at("sweep/table1-grid");
  EXPECT_GE(grid.size(), 90u);
  EXPECT_NO_THROW(grid.validate());
  // Spot-check a grid point materialises and validates.
  EXPECT_NO_THROW((void)grid.at(grid.size() - 1));
  EXPECT_THROW((void)reg.sweep_at("sweep/no-such"), std::out_of_range);
  EXPECT_EQ(reg.find_sweep("sweep/no-such"), nullptr);
}

TEST(RegistryOverlay, MergesScenarioAndSweepLines) {
  ScenarioRegistry reg = registry();  // overlays merge into a copy
  const std::size_t scenarios_before = reg.size();
  const std::size_t sweeps_before = reg.sweeps().size();

  Scenario scenario = cheap_base();
  scenario.name = "overlay/point";
  SweepSpec spec;
  spec.name = "overlay/sweep";
  spec.base = cheap_base();
  spec.seed_count = 4;

  const std::string jsonl = "# comment line\n\n" + scenario.to_json() + "\n" + spec.to_json() +
                            "\n";
  reg.merge(jsonl);
  EXPECT_EQ(reg.size(), scenarios_before + 1);
  EXPECT_EQ(reg.sweeps().size(), sweeps_before + 1);
  EXPECT_NE(reg.find("overlay/point"), nullptr);
  EXPECT_NE(reg.find_sweep("overlay/sweep"), nullptr);

  // Re-merging the same names is a duplicate, reported with its line number.
  try {
    reg.merge(scenario.to_json() + "\n");
    FAIL() << "duplicate overlay name must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("overlay line 1"), std::string::npos) << e.what();
  }
}

TEST(RegistryOverlay, RejectsTrailingGarbageWithLineNumber) {
  ScenarioRegistry reg = registry();
  Scenario scenario = cheap_base();
  scenario.name = "overlay/garbled";
  try {
    reg.merge("\n" + scenario.to_json() + " trailing-garbage\n");
    FAIL() << "trailing garbage must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("overlay line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("trailing"), std::string::npos) << what;
  }
  EXPECT_EQ(reg.find("overlay/garbled"), nullptr) << "a failed line must not register";
}

TEST(RegistryOverlay, LoadOverlayReadsAFile) {
  const std::string path = testing::TempDir() + "arsf_overlay_test.jsonl";
  Scenario scenario = cheap_base();
  scenario.name = "overlay/from-file";
  {
    std::ofstream file{path};
    ASSERT_TRUE(file.is_open());
    file << "# overlay written by test_sweep\n" << scenario.to_json() << "\n";
  }
  ScenarioRegistry reg = registry();
  reg.load_overlay(path);
  ASSERT_NE(reg.find("overlay/from-file"), nullptr);
  EXPECT_EQ(*reg.find("overlay/from-file"), scenario);

  EXPECT_THROW(reg.load_overlay(path + ".does-not-exist"), std::runtime_error);
}

TEST(LoadSweepSpec, ReadsOneSpecFromAFile) {
  const std::string path = testing::TempDir() + "arsf_sweep_spec_test.json";
  SweepSpec spec;
  spec.name = "file/sweep";
  spec.description = "sweep loaded from a file";
  spec.base = cheap_base();
  spec.fa_values = {0, 1};
  spec.steps = {1.0, 0.5};
  {
    std::ofstream file{path};
    ASSERT_TRUE(file.is_open());
    file << spec.to_json() << "\n";  // trailing newline must be tolerated
  }
  const SweepSpec loaded = load_sweep_spec(path);
  EXPECT_EQ(loaded, spec);
  EXPECT_EQ(loaded.size(), 4u);
}

TEST(LoadSweepSpec, RejectsMalformedFiles) {
  const std::string path = testing::TempDir() + "arsf_sweep_spec_bad.json";
  const auto write = [&](const std::string& content) {
    std::ofstream file{path};
    ASSERT_TRUE(file.is_open());
    file << content;
  };
  const auto expect_rejected = [&](const std::string& content, const char* needle) {
    write(content);
    try {
      (void)load_sweep_spec(path);
      FAIL() << "must reject: " << content;
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(path), std::string::npos) << what;  // names the file
      EXPECT_NE(what.find(needle), std::string::npos) << what;
    }
  };

  // Unreadable file: a different error type, so callers can distinguish
  // "no such file" from "bad content".
  EXPECT_THROW((void)load_sweep_spec(path + ".does-not-exist"), std::runtime_error);

  SweepSpec spec;
  spec.name = "file/bad";
  spec.base = cheap_base();
  const std::string good = spec.to_json();

  expect_rejected("", "JSON");                                    // empty file
  expect_rejected("not json at all", "JSON");                     // garbage
  expect_rejected(good + " extra", "trailing");                   // trailing garbage
  expect_rejected(good + "\n" + good, "trailing");                // two objects
  expect_rejected(cheap_base().to_json(), "field");               // Scenario, not SweepSpec
  {
    // Structurally valid JSON that fails SweepSpec::validate().
    SweepSpec invalid = spec;
    invalid.steps = {0.0};
    expect_rejected(invalid.to_json(), "step");
  }
}

}  // namespace
}  // namespace arsf::scenario
