// Content-addressed result cache tests: canonical-key equivalence (which
// scenarios provably share metrics, and which must NOT), the LRU store and
// its byte-budget eviction, persistence round-trips with hostile input,
// Runner wiring (cache modes, the non-fatal "cache" fault site), cross-point
// sharing inside run_sweep, and the randomized cache-vs-fresh differential
// that pins the whole soundness argument: a cached frame is bit-identical to
// the fresh run it replaces, at every thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/faultplan.h"
#include "scenario/registry.h"
#include "scenario/result_cache.h"
#include "scenario/runner.h"
#include "scenario/sink.h"
#include "scenario/sweep.h"
#include "support/rng.h"

namespace arsf::scenario {
namespace {

attack::ExpectationOptions fast_options() {
  attack::ExpectationOptions options;
  options.max_joint = 1;
  options.max_completions = 4;
  options.candidate_stride = 2;
  return options;
}

Scenario clean_enumerate(const std::string& name, std::vector<double> widths) {
  Scenario s;
  s.name = name;
  s.widths = std::move(widths);
  s.fa = 0;
  s.policy = PolicyKind::kNone;
  return s;
}

void expect_same_key(const Scenario& a, const Scenario& b, const std::string& label) {
  const CacheKey ka = cache_key(a);
  const CacheKey kb = cache_key(b);
  EXPECT_TRUE(ka.canonical == kb.canonical) << label;
  // The JSON comparison restates the struct one readably on failure.
  EXPECT_EQ(ka.canonical.to_json(), kb.canonical.to_json()) << label;
  EXPECT_EQ(ka.fingerprint, kb.fingerprint) << label;
}

void expect_different_key(const Scenario& a, const Scenario& b, const std::string& label) {
  const CacheKey ka = cache_key(a);
  const CacheKey kb = cache_key(b);
  EXPECT_FALSE(ka.canonical == kb.canonical) << label;
  EXPECT_NE(ka.canonical.to_json(), kb.canonical.to_json()) << label;
}

void expect_identical_metrics(const ScenarioResult& a, const ScenarioResult& b,
                              const std::string& label) {
  ASSERT_EQ(a.metrics.size(), b.metrics.size()) << label;
  for (std::size_t m = 0; m < a.metrics.size(); ++m) {
    EXPECT_EQ(a.metrics[m].key, b.metrics[m].key) << label;
    // Bit-identical, not approximately equal: the cache serves the SAME
    // numbers the fresh run would produce.
    EXPECT_EQ(a.metrics[m].value, b.metrics[m].value) << label << " " << a.metrics[m].key;
  }
}

// A temporary path removed on scope exit, for the persistence tests.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path((std::filesystem::temp_directory_path() / name).string()) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

// ---------------------------------------------------------- canonical key --

TEST(CanonicalKey, IgnoresIdentityAndExecutionKnobs) {
  Scenario a = clean_enumerate("a", {2, 3, 4});
  Scenario b = a;
  b.name = "completely-different";
  b.description = "same computation, new label";
  b.num_threads = 7;
  b.deadline_ms = 5000;
  expect_same_key(a, b, "name/description/num_threads/deadline are not inputs");

  // f = -1 resolves to the paper default ceil(n/2)-1 = 1 for n = 3.
  Scenario c = a;
  c.f = 1;
  expect_same_key(a, c, "f=-1 and its resolved value are one class");
  Scenario d = a;
  d.f = 0;
  expect_different_key(a, d, "a different resolved f is a different class");
}

TEST(CanonicalKey, CleanEnumerateCollapsesAttackAndScheduleKnobs) {
  Scenario a = clean_enumerate("a", {2, 3, 4});

  // policy none with fa > 0 means every sensor still transmits correctly:
  // same class as fa = 0, whatever the attacked-set choice.
  Scenario b = a;
  b.fa = 2;
  b.attacked_rule = sched::AttackedSetRule::kLargestWidths;
  b.seed = 123;
  b.schedule = sched::ScheduleKind::kDescending;
  expect_same_key(a, b, "clean lane drops attack and schedule knobs");

  // fa = 0 with a live policy selects no attacker either.
  Scenario c = a;
  c.policy = PolicyKind::kExpectation;
  c.policy_options = fast_options();
  expect_same_key(a, c, "fa=0 neutralises the policy");

  // Sampled-analysis knobs are dead on the exhaustive walk.
  Scenario d = a;
  d.rounds = 5;
  d.require_undetected = false;
  expect_same_key(a, d, "enumerate ignores rounds/require_undetected");

  // ... but the knobs the walk does read stay live.
  Scenario e = a;
  e.step = 0.5;
  expect_different_key(a, e, "step is live");
  Scenario g = a;
  g.max_worlds = 10;
  expect_different_key(a, g, "max_worlds gates the walk");
}

TEST(CanonicalKey, CleanEnumerateSortsSensorsByWidthUnlessArgmax) {
  Scenario a = clean_enumerate("a", {5, 1, 3});
  Scenario b = clean_enumerate("b", {1, 3, 5});
  expect_same_key(a, b, "clean enumerate is id-relabeling invariant");

  // width-argmax exposes a world index; worlds enumerate by sensor id.
  Scenario am_a = a;
  am_a.analysis = AnalysisKind::kWidthArgmax;
  Scenario am_b = b;
  am_b.analysis = AnalysisKind::kWidthArgmax;
  expect_different_key(am_a, am_b, "argmax keeps sensor order");

  // ... including as a member of a fused bundle.
  Scenario fu_a = a;
  fu_a.analysis = AnalysisKind::kFused;
  fu_a.fused_members = {AnalysisKind::kEnumerate, AnalysisKind::kWidthArgmax};
  Scenario fu_b = b;
  fu_b.analysis = fu_a.analysis;
  fu_b.fused_members = fu_a.fused_members;
  expect_different_key(fu_a, fu_b, "fused bundle with argmax keeps sensor order");

  Scenario hist_a = a;
  hist_a.analysis = AnalysisKind::kWidthHistogram;
  Scenario hist_b = b;
  hist_b.analysis = AnalysisKind::kWidthHistogram;
  expect_same_key(hist_a, hist_b, "histogram is a width multiset: remap is sound");
}

TEST(CanonicalKey, PolicyLaneKeepsSensorOrderAndLiveKnobs) {
  Scenario a;
  a.name = "a";
  a.widths = {5, 1, 3};
  a.fa = 1;
  a.policy = PolicyKind::kExpectation;
  a.policy_options = fast_options();

  // The serial policy walk threads a world-order RNG: no id-remap here.
  Scenario b = a;
  b.widths = {1, 3, 5};
  expect_different_key(a, b, "policy lane keeps sensor order");

  // The seed is dead under a deterministic attacked-set rule...
  Scenario c = a;
  c.seed = 999;
  expect_same_key(a, c, "seed is dead under kSmallestWidths");

  // ... and live when the attacked set itself is drawn from it.
  Scenario r = a;
  r.attacked_rule = sched::AttackedSetRule::kRandom;
  Scenario r2 = r;
  r2.seed = 999;
  expect_different_key(r, r2, "seed is live under kRandom");

  // An explicit attacked set makes the rule irrelevant.
  Scenario o = a;
  o.attacked_override = {1};
  Scenario o2 = o;
  o2.attacked_rule = sched::AttackedSetRule::kLargestWidths;
  expect_same_key(o, o2, "override wins over the rule");

  Scenario s = a;
  s.schedule = sched::ScheduleKind::kDescending;
  expect_different_key(a, s, "schedule is live under a policy");
  Scenario p = a;
  p.policy_options.max_joint = 2;
  expect_different_key(a, p, "policy options are live");
}

TEST(CanonicalKey, WorstCaseNormalisesDeadKnobsAndRemapsFixedSet) {
  Scenario a;
  a.name = "a";
  a.widths = {5, 1, 3};
  a.fa = 1;
  a.attacked_override = {1};  // the width-1 sensor
  a.analysis = AnalysisKind::kWorstCase;

  // Policy, rounds, schedule: all dead on the clean-world worst-case walk.
  Scenario b = a;
  b.policy = PolicyKind::kOracle;
  b.rounds = 3;
  b.schedule = sched::ScheduleKind::kDescending;
  b.max_worlds = 10;
  expect_same_key(a, b, "worst case ignores policy/rounds/schedule/max_worlds");

  // Fixed-set lane is width-multiset arithmetic: permuted ids with the
  // override remapped alongside land in the same class.
  Scenario c = a;
  c.widths = {1, 3, 5};
  c.attacked_override = {0};  // still the width-1 sensor
  expect_same_key(a, c, "fixed-set worst case is id-relabeling invariant");

  // Attacking the width-5 sensor instead is a different computation.
  Scenario d = a;
  d.attacked_override = {0};
  expect_different_key(a, d, "attacked width matters");

  Scenario e = a;
  e.require_undetected = false;
  expect_different_key(a, e, "the stealth constraint is live");

  // Over-all-sets tie-breaks best_set_size in id order: no remap, and the
  // attacked-set choice itself falls away.
  Scenario o = a;
  o.over_all_sets = true;
  o.attacked_override.clear();
  Scenario o2 = o;
  o2.widths = {1, 3, 5};
  expect_different_key(o, o2, "over-sets keeps sensor order");
  Scenario o3 = o;
  o3.attacked_rule = sched::AttackedSetRule::kLargestWidths;
  o3.seed = 77;
  expect_same_key(o, o3, "over-sets reads no attacked-set choice");
}

TEST(CanonicalKey, SampledLaneKeepsRoundsSeedAndOrder) {
  Scenario a;
  a.name = "a";
  a.widths = {5, 1, 3};
  a.fa = 1;
  a.analysis = AnalysisKind::kMonteCarlo;
  a.rounds = 100;

  Scenario b = a;
  b.rounds = 101;
  expect_different_key(a, b, "rounds are live when sampling");
  Scenario c = a;
  c.seed = 31337;
  expect_different_key(a, c, "the sampling seed is live");
  Scenario d = a;
  d.widths = {1, 3, 5};
  expect_different_key(a, d, "sampled engines draw in id order: no remap");

  Scenario e = a;
  e.max_worlds = 42;
  e.require_undetected = false;
  expect_same_key(a, e, "enumeration-only knobs are dead when sampling");

  // The fault process feeds resilience only.
  Scenario f = a;
  f.fault.p_enter = 0.25;
  expect_same_key(a, f, "monte carlo ignores the fault process");
  Scenario ra = a;
  ra.analysis = AnalysisKind::kResilience;
  Scenario rb = ra;
  rb.fault.p_enter = 0.25;
  expect_different_key(ra, rb, "resilience reads the fault process");
}

// ----------------------------------------------------------------- store ---

ScenarioResult ok_result(const std::string& name, double value) {
  ScenarioResult r;
  r.scenario = name;
  r.analysis = "t";
  r.metrics = {Metric{"m", value}};
  return r;
}

// Manual keys isolate store mechanics from canonicalisation: a distinct
// @p width makes a distinct canonical struct, while the fingerprint is
// forced so collision behaviour can be pinned directly.  Every key built
// this way has the same shape (two widths, analysis "t", one metric "m"),
// so every entry in the store tests has the same byte estimate.
CacheKey manual_key(std::uint64_t fingerprint, double width) {
  CacheKey key;
  key.canonical = clean_enumerate("", {width, width + 1});
  key.fingerprint = fingerprint;
  return key;
}

TEST(ResultCache, FingerprintCollisionIsAMissNeverReuse) {
  ResultCache cache;
  const CacheKey k1 = manual_key(42, 1.0);
  const CacheKey k2 = manual_key(42, 2.0);  // same fingerprint!
  ASSERT_TRUE(cache.insert(k1, ok_result("a", 1.0)));
  EXPECT_FALSE(cache.lookup(k2).has_value()) << "struct compare must reject the collision";
  const auto hit = cache.lookup(k1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->metric("m"), 1.0);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ResultCache, SubsetFingerprintCollisionKeepsRealClassesDistinct) {
  // require_undetected is deliberately NOT part of canonical_signature: these
  // two worst-case scenarios share a fingerprint yet are different classes,
  // so the struct compare is what keeps them apart end to end.
  Scenario a;
  a.name = "a";
  a.widths = {5, 1, 3};
  a.fa = 1;
  a.attacked_override = {1};
  a.analysis = AnalysisKind::kWorstCase;
  Scenario b = a;
  b.require_undetected = false;

  const CacheKey ka = cache_key(a);
  const CacheKey kb = cache_key(b);
  ASSERT_EQ(ka.fingerprint, kb.fingerprint) << "test premise: a genuine subset-hash collision";
  ASSERT_FALSE(ka.canonical == kb.canonical);

  ResultCache cache;
  ASSERT_TRUE(cache.insert(ka, ok_result("a", 1.0)));
  EXPECT_FALSE(cache.lookup(kb).has_value());
  ASSERT_TRUE(cache.insert(kb, ok_result("b", 2.0)));
  EXPECT_EQ(cache.lookup(ka)->metric("m"), 1.0);
  EXPECT_EQ(cache.lookup(kb)->metric("m"), 2.0);
}

TEST(ResultCache, LookupNormalisesTheStoredFrame) {
  ResultCache cache;
  ScenarioResult r = ok_result("origin", 2.5);
  r.status = ResultStatus::kRetriedOk;
  r.attempts = 3;
  ASSERT_TRUE(cache.insert(manual_key(1, 5.0), r));
  const auto hit = cache.lookup(manual_key(1, 5.0));
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->scenario.empty()) << "the requester's name is not part of the class";
  EXPECT_EQ(hit->status, ResultStatus::kOk);
  EXPECT_EQ(hit->attempts, 1u) << "retry history belongs to the run, not the class";
  EXPECT_FALSE(hit->from_cache);

  const ScenarioResult frame = cache_hit_frame(*hit, "requester");
  EXPECT_EQ(frame.scenario, "requester");
  EXPECT_TRUE(frame.from_cache);
  EXPECT_EQ(frame.status, ResultStatus::kOk);
  EXPECT_EQ(frame.metric("m"), 2.5);
}

TEST(ResultCache, InsertRefusesUncacheableFrames) {
  ResultCache cache;
  ScenarioResult failed = ok_result("f", 1.0);
  failed.error = "boom";
  failed.status = ResultStatus::kFailed;
  EXPECT_FALSE(cache.insert(manual_key(1, 1.0), failed));

  ScenarioResult degraded = ok_result("d", 1.0);
  degraded.degraded = true;
  EXPECT_FALSE(cache.insert(manual_key(2, 2.0), degraded));

  // An entry over the whole budget could never fit, even alone.
  ResultCache tiny{10};
  EXPECT_FALSE(tiny.insert(manual_key(3, 3.0), ok_result("c", 1.0)));
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().inserts, 0u);
}

TEST(ResultCache, LruEvictionByByteBudgetOldestUseFirst) {
  // Every manual-key entry has the same shape, hence the same byte estimate;
  // measure it once and size the budget so exactly two entries fit.
  const std::uint64_t entry = [] {
    ResultCache probe;
    EXPECT_TRUE(probe.insert(manual_key(9, 9.0), ok_result("probe", 1.0)));
    return probe.stats().bytes;
  }();
  ASSERT_GT(entry, 0u);

  ResultCache cache{2 * entry + entry / 2};
  ASSERT_TRUE(cache.insert(manual_key(1, 1.0), ok_result("a", 1.0)));
  ASSERT_TRUE(cache.insert(manual_key(2, 2.0), ok_result("b", 2.0)));
  EXPECT_EQ(cache.stats().bytes, 2 * entry);

  // Touch "a" so "b" becomes the least recently used.
  ASSERT_TRUE(cache.lookup(manual_key(1, 1.0)).has_value());
  ASSERT_TRUE(cache.insert(manual_key(3, 3.0), ok_result("c", 3.0)));

  EXPECT_FALSE(cache.lookup(manual_key(2, 2.0)).has_value()) << "LRU entry evicted";
  EXPECT_TRUE(cache.lookup(manual_key(1, 1.0)).has_value()) << "recency was refreshed";
  EXPECT_TRUE(cache.lookup(manual_key(3, 3.0)).has_value());

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.bytes, 2 * entry);
  EXPECT_EQ(stats.inserts, 3u);
}

// ----------------------------------------------------------- persistence ---

TEST(ResultCachePersistence, SaveLoadRoundTripServesTheSameMetrics) {
  const Scenario s1 = clean_enumerate("p1", {2, 3, 4});
  Scenario s2 = s1;
  s2.name = "p2";
  s2.step = 0.5;

  ResultCache cache;
  ASSERT_TRUE(cache.insert(cache_key(s1), ok_result("p1", 1.25)));
  ASSERT_TRUE(cache.insert(cache_key(s2), ok_result("p2", 2.5)));

  const TempFile file{"arsf_cache_roundtrip.jsonl"};
  cache.save_file(file.path);

  ResultCache reloaded;
  const ResultCache::LoadReport report = reloaded.load_file(file.path);
  EXPECT_EQ(report.loaded, 2u);
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_EQ(reloaded.stats().entries, 2u);
  EXPECT_EQ(reloaded.stats().inserts, 0u) << "loads are not inserts";

  const auto hit1 = reloaded.lookup(cache_key(s1));
  ASSERT_TRUE(hit1.has_value());
  EXPECT_EQ(hit1->metric("m"), 1.25);
  const auto hit2 = reloaded.lookup(cache_key(s2));
  ASSERT_TRUE(hit2.has_value());
  EXPECT_EQ(hit2->metric("m"), 2.5);

  // A permuted-id equivalent of s1 hits the reloaded store too: the load
  // path re-canonicalises rather than trusting the file.
  Scenario permuted = s1;
  permuted.widths = {4, 2, 3};
  EXPECT_TRUE(reloaded.lookup(cache_key(permuted)).has_value());
}

TEST(ResultCachePersistence, LoadRejectsCorruptLinesAndMissingFileIsCold) {
  const Scenario good = clean_enumerate("g", {2, 3});
  ResultCache source;
  ASSERT_TRUE(source.insert(cache_key(good), ok_result("g", 7.0)));
  const TempFile file{"arsf_cache_corrupt.jsonl"};
  source.save_file(file.path);

  // Append hostile lines: garbage, wrong shape, a failed frame and a
  // scenario that no longer validates.  (Line 1 of a saved store is the
  // generation header; the first ENTRY is line 2.)
  std::string good_line;
  {
    std::ifstream in{file.path};
    std::string header;
    ASSERT_TRUE(static_cast<bool>(std::getline(in, header)));
    ASSERT_NE(header.find("cache_generation"), std::string::npos);
    ASSERT_TRUE(static_cast<bool>(std::getline(in, good_line)));
  }
  {
    std::ofstream out{file.path, std::ios::app};
    out << "this is not json\n";
    out << "{\"unexpected\":1}\n";
    std::string failed = good_line;
    const auto pos = failed.find("\"status\":\"ok\"");
    ASSERT_NE(pos, std::string::npos);
    failed.replace(pos, 13, "\"status\":\"failed\"");
    out << failed << "\n";
    std::string invalid = good_line;
    const auto wpos = invalid.find("\"widths\":[2,3]");
    ASSERT_NE(wpos, std::string::npos);
    invalid.replace(wpos, 14, "\"widths\":[]");
    out << invalid << "\n";
  }

  ResultCache reloaded;
  const ResultCache::LoadReport report = reloaded.load_file(file.path);
  EXPECT_EQ(report.loaded, 1u);
  EXPECT_EQ(report.rejected, 4u);
  EXPECT_TRUE(reloaded.lookup(cache_key(good)).has_value());

  ResultCache cold;
  const ResultCache::LoadReport missing = cold.load_file("/nonexistent/arsf-cache.jsonl");
  EXPECT_EQ(missing.loaded, 0u);
  EXPECT_EQ(missing.rejected, 0u);
}

TEST(ResultCachePersistence, GenerationHeaderIsWrittenSkippedAndAdopted) {
  const Scenario s = clean_enumerate("gen", {2, 3});
  ResultCache cache;
  ASSERT_TRUE(cache.insert(cache_key(s), ok_result("gen", 1.0)));
  EXPECT_EQ(cache.generation(), 0u);

  const TempFile file{"arsf_cache_generation.jsonl"};
  cache.save_file(file.path);
  EXPECT_EQ(cache.generation(), 1u);
  cache.save_file(file.path);
  EXPECT_EQ(cache.generation(), 2u) << "every save bumps the generation";
  {
    std::ifstream in{file.path};
    std::string header;
    ASSERT_TRUE(static_cast<bool>(std::getline(in, header)));
    EXPECT_EQ(header, "{\"cache_generation\":2}");
  }

  // The header is metadata: neither loaded nor rejected, and the reader
  // adopts the newer generation so its own next save supersedes the file.
  ResultCache reloaded;
  const ResultCache::LoadReport report = reloaded.load_file(file.path);
  EXPECT_EQ(report.loaded, 1u);
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_EQ(reloaded.generation(), 2u);
}

TEST(ResultCachePersistence, HeaderlessLegacyStoreStillLoads) {
  const Scenario s = clean_enumerate("legacy", {2, 3});
  ResultCache source;
  ASSERT_TRUE(source.insert(cache_key(s), ok_result("legacy", 3.0)));
  const TempFile file{"arsf_cache_legacy.jsonl"};
  source.save_file(file.path);

  // Strip the header: the file now looks like a pre-generation store.
  std::vector<std::string> lines;
  {
    std::ifstream in{file.path};
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_GE(lines.size(), 2u);
  {
    std::ofstream out{file.path, std::ios::trunc};
    for (std::size_t i = 1; i < lines.size(); ++i) out << lines[i] << '\n';
  }

  ResultCache reloaded;
  const ResultCache::LoadReport report = reloaded.load_file(file.path);
  EXPECT_EQ(report.loaded, 1u);
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_EQ(reloaded.generation(), 0u);
  EXPECT_TRUE(reloaded.lookup(cache_key(s)).has_value());
}

TEST(ResultCachePersistence, MaybeReloadPicksUpExternallyWrittenEntries) {
  const Scenario first = clean_enumerate("reload-a", {2, 3});
  const Scenario second = clean_enumerate("reload-b", {2, 3, 4});
  const TempFile file{"arsf_cache_reload.jsonl"};
  {
    ResultCache writer;
    ASSERT_TRUE(writer.insert(cache_key(first), ok_result("reload-a", 1.0)));
    writer.save_file(file.path);
  }

  ResultCache reader;
  (void)reader.load_file(file.path);
  EXPECT_FALSE(reader.maybe_reload(file.path).reloaded) << "mtime unchanged: no-op";

  // An external process (another daemon, a sweep job) rewrites the store.
  {
    ResultCache writer;
    (void)writer.load_file(file.path);
    ASSERT_TRUE(writer.insert(cache_key(second), ok_result("reload-b", 2.0)));
    writer.save_file(file.path);
  }
  // Force a visible mtime step: a same-nanosecond rewrite is legal but
  // undetectable, and this test pins detection, not clock granularity.
  std::filesystem::last_write_time(
      file.path, std::filesystem::file_time_type::clock::now() + std::chrono::seconds(2));

  const ResultCache::ReloadReport report = reader.maybe_reload(file.path);
  EXPECT_TRUE(report.reloaded);
  // reload-a is already resident (a duplicate only refreshes recency); only
  // the externally-added entry counts as loaded.
  EXPECT_EQ(report.load.loaded, 1u);
  EXPECT_TRUE(reader.lookup(cache_key(first)).has_value());
  EXPECT_TRUE(reader.lookup(cache_key(second)).has_value());
  EXPECT_FALSE(reader.maybe_reload(file.path).reloaded) << "reload records the new mtime";

  ResultCache never_loaded;
  EXPECT_FALSE(never_loaded.maybe_reload("/nonexistent/arsf-cache.jsonl").reloaded);
}

// -------------------------------------------------------------- Runner -----

TEST(RunnerCache, WarmRunServesBitIdenticalFrameWithoutRecomputing) {
  Scenario scenario = registry().at("table1/r0/ascending");
  scenario.policy_options = fast_options();

  const ScenarioResult fresh = Runner{}.run(scenario);
  ASSERT_TRUE(fresh.ok()) << fresh.error;

  ResultCache cache;
  RunnerOptions options;
  options.cache = &cache;
  const Runner cached{options};

  const ScenarioResult cold = cached.run(scenario);
  ASSERT_TRUE(cold.ok()) << cold.error;
  EXPECT_FALSE(cold.from_cache);
  expect_identical_metrics(cold, fresh, "cold == fresh");

  const ScenarioResult warm = cached.run(scenario);
  ASSERT_TRUE(warm.ok()) << warm.error;
  EXPECT_TRUE(warm.from_cache);
  EXPECT_EQ(warm.scenario, scenario.name);
  EXPECT_EQ(warm.status, ResultStatus::kOk);
  EXPECT_EQ(warm.attempts, 1u);
  expect_identical_metrics(warm, fresh, "warm == fresh");

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(RunnerCache, ReadOnlyNeverStoresWriteOnlyNeverServes) {
  Scenario scenario = clean_enumerate("modes", {2, 3, 4});

  ResultCache cache;
  RunnerOptions read_only;
  read_only.cache = &cache;
  read_only.cache_mode = CacheMode::kReadOnly;
  ASSERT_TRUE(Runner{read_only}.run(scenario).ok());
  EXPECT_EQ(cache.stats().inserts, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);

  RunnerOptions write_only;
  write_only.cache = &cache;
  write_only.cache_mode = CacheMode::kWriteOnly;
  const Runner warmer{write_only};
  ASSERT_TRUE(warmer.run(scenario).ok());
  EXPECT_EQ(cache.stats().inserts, 1u);
  const ScenarioResult recomputed = warmer.run(scenario);
  ASSERT_TRUE(recomputed.ok());
  EXPECT_FALSE(recomputed.from_cache) << "write-only recomputes even on a warm store";
  EXPECT_EQ(cache.stats().hits, 0u);

  RunnerOptions read_write;
  read_write.cache = &cache;
  const ScenarioResult served = Runner{read_write}.run(scenario);
  ASSERT_TRUE(served.ok());
  EXPECT_TRUE(served.from_cache) << "the write-only pass warmed the store";
}

TEST(RunnerCache, CacheFaultSiteIsNonFatal) {
  const std::vector<std::string>& sites = fault_sites();
  EXPECT_NE(std::find(sites.begin(), sites.end(), "cache"), sites.end());

  FaultPlan plan;
  plan.rules.push_back(FaultRule{"cache", 1, 0.0, 0});
  ASSERT_NO_THROW(plan.validate());
  const FaultInjector injector{plan};

  Scenario scenario = clean_enumerate("faulted", {2, 3, 4});
  ResultCache cache;
  RunnerOptions options;
  options.cache = &cache;
  options.fault_injector = &injector;

  // The injected fault disarms the cache for this run — the scenario still
  // completes, fresh, and nothing was looked up or stored.
  const ScenarioResult result = Runner{options}.run(scenario);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_FALSE(result.from_cache);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.inserts, 0u);
}

// -------------------------------------------------------------- sweep ------

TEST(SweepCache, EquivalentGridPointsAreEvaluatedOnce) {
  // 2 width sets x 4 seeds = 8 grid points; the clean lane drops the seed,
  // so there are exactly 2 canonical classes.
  SweepSpec spec;
  spec.name = "cachegrid";
  spec.base = clean_enumerate("base", {2, 3});
  spec.widths_sets = {{2, 3}, {3, 4}};
  spec.seed_count = 4;

  CollectingSink plain;
  run_sweep(spec, Runner{}, plain);
  ASSERT_EQ(plain.results().size(), 8u);

  ResultCache cache;
  RunnerOptions options;
  options.cache = &cache;
  const Runner cached{options};
  CollectingSink shared;
  SweepRunOptions sweep_options;
  sweep_options.chunk_scenarios = 3;  // force sharing across chunk boundaries too
  run_sweep(spec, cached, shared, sweep_options);
  ASSERT_EQ(shared.results().size(), 8u);

  std::size_t fresh_frames = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const ScenarioResult& a = plain.results()[i];
    const ScenarioResult& b = shared.results()[i];
    ASSERT_TRUE(a.ok() && b.ok()) << a.error << b.error;
    EXPECT_EQ(a.scenario, b.scenario) << "emission order must be the grid order";
    expect_identical_metrics(b, a, "shared == plain at " + a.scenario);
    fresh_frames += b.from_cache ? 0 : 1;
  }
  EXPECT_EQ(fresh_frames, 2u) << "one fresh evaluation per canonical class";
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.inserts, 2u);
  EXPECT_EQ(stats.misses, 2u);
}

// -------------------------------------------------------------- sinks ------

TEST(SinkCache, FromCacheTravelsThroughJsonlAndCsv) {
  ScenarioResult frame = ok_result("cached-row", 1.5);
  frame.from_cache = true;

  EXPECT_NE(to_json(0, frame).find("\"from_cache\":true"), std::string::npos);
  ScenarioResult fresh = ok_result("fresh-row", 1.5);
  EXPECT_NE(to_json(0, fresh).find("\"from_cache\":false"), std::string::npos);

  std::ostringstream csv;
  {
    CsvStreamSink sink{csv};
    sink.on_result(0, frame);
    sink.on_result(1, fresh);
  }
  EXPECT_NE(csv.str().find("cached-row,t,from_cache,true"), std::string::npos);
  EXPECT_EQ(csv.str().find("fresh-row,t,from_cache"), std::string::npos)
      << "fresh rows carry no from_cache marker";
}

// -------------------------------------------------- randomized differential

// A cheap random but valid scenario drawn across analysis kinds, policies,
// schedules and attacked-set rules.  Widths are integers on the step-1 grid;
// duplicate widths are frequent, which exercises the argmax tie-break and
// the stable remap.
Scenario random_scenario(support::Rng& rng, std::uint64_t index) {
  Scenario s;
  s.name = "diff/" + std::to_string(index);
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 4));
  for (std::size_t i = 0; i < n; ++i) {
    s.widths.push_back(static_cast<double>(rng.uniform_int(1, 6)));
  }
  switch (rng.uniform_int(0, 5)) {
    case 0: s.analysis = AnalysisKind::kEnumerate; break;
    case 1: s.analysis = AnalysisKind::kWidthHistogram; break;
    case 2: s.analysis = AnalysisKind::kDetectionRate; break;
    case 3: s.analysis = AnalysisKind::kWidthArgmax; break;
    case 4: s.analysis = AnalysisKind::kWorstCase; break;
    default:
      s.analysis = AnalysisKind::kMonteCarlo;
      s.rounds = 60;
      break;
  }
  // The engines enforce the paper assumption fa <= f (= ceil(n/2)-1 here).
  s.fa = static_cast<std::size_t>(rng.uniform_int(0, s.resolved_f()));
  switch (rng.uniform_int(0, 2)) {
    case 0: s.attacked_rule = sched::AttackedSetRule::kSmallestWidths; break;
    case 1: s.attacked_rule = sched::AttackedSetRule::kLargestWidths; break;
    default: s.attacked_rule = sched::AttackedSetRule::kLastSlots; break;
  }
  if (rng.chance(0.4)) {
    s.policy = PolicyKind::kExpectation;
    s.policy_options = fast_options();
  } else {
    s.policy = PolicyKind::kNone;
  }
  s.schedule = rng.chance(0.5) ? sched::ScheduleKind::kAscending
                               : sched::ScheduleKind::kDescending;
  s.require_undetected = rng.chance(0.8);
  s.seed = rng.next();
  s.num_threads = (index % 2 == 0) ? 1u : 0u;
  return s;
}

TEST(CacheDifferential, WarmFramesAreBitIdenticalToFreshAcrossThreadCounts) {
  support::Rng rng{0xcac4edULL};
  ResultCache cache;
  RunnerOptions options;
  options.cache = &cache;
  const Runner cached{options};
  const Runner plain;

  constexpr std::uint64_t kScenarios = 220;
  for (std::uint64_t i = 0; i < kScenarios; ++i) {
    const Scenario scenario = random_scenario(rng, i);
    ASSERT_NO_THROW(scenario.validate()) << scenario.name;

    const ScenarioResult fresh = plain.run(scenario);
    ASSERT_TRUE(fresh.ok()) << scenario.name << ": " << fresh.error;

    const ScenarioResult cold = cached.run(scenario);
    ASSERT_TRUE(cold.ok()) << scenario.name << ": " << cold.error;
    expect_identical_metrics(cold, fresh, scenario.name + " cold");

    const ScenarioResult warm = cached.run(scenario);
    ASSERT_TRUE(warm.ok()) << scenario.name << ": " << warm.error;
    EXPECT_TRUE(warm.from_cache) << scenario.name;
    EXPECT_EQ(warm.scenario, scenario.name);
    expect_identical_metrics(warm, fresh, scenario.name + " warm");
  }
  // Distinct random seeds land most draws in distinct classes, but clean
  // policy-none draws collapse across seeds/schedules: hits > kScenarios
  // would mean double-serving, hits == kScenarios means every warm run hit.
  EXPECT_GE(cache.stats().hits, kScenarios);
}

// The soundness differential for the id-remap: a permuted twin must be
// SERVED FROM the original's entry, and that served frame must equal the
// twin's own fresh run — the exchange argument checked end to end.
TEST(CacheDifferential, PermutedTwinServedFromCacheMatchesItsOwnFreshRun) {
  support::Rng rng{0x9e37ULL};
  const Runner plain;

  for (std::uint64_t i = 0; i < 40; ++i) {
    // n >= 3 keeps f = ceil(n/2)-1 >= 1, so the worst-case lane's fa = 1
    // stays inside the paper assumption fa <= f.
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(3, 5));
    std::vector<double> widths;
    for (std::size_t s = 0; s < n; ++s) {
      widths.push_back(static_cast<double>(rng.uniform_int(1, 6)));
    }
    const std::vector<std::size_t> perm = rng.permutation(n);
    std::vector<double> permuted(n);
    std::vector<std::size_t> new_id(n);
    for (std::size_t slot = 0; slot < n; ++slot) {
      permuted[slot] = widths[perm[slot]];
      new_id[perm[slot]] = slot;
    }

    Scenario original;
    original.name = "twin/original/" + std::to_string(i);
    original.widths = widths;
    Scenario twin;
    twin.name = "twin/permuted/" + std::to_string(i);
    twin.widths = permuted;

    if (i % 2 == 0) {
      // Clean enumerate lane.
      original.fa = 0;
      original.policy = PolicyKind::kNone;
      twin.fa = 0;
      twin.policy = PolicyKind::kNone;
    } else {
      // Fixed-set worst case with an explicit attacked sensor, remapped.
      const std::size_t attacked = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      original.analysis = AnalysisKind::kWorstCase;
      original.fa = 1;
      original.attacked_override = {attacked};
      twin.analysis = AnalysisKind::kWorstCase;
      twin.fa = 1;
      twin.attacked_override = {new_id[attacked]};
    }

    ResultCache cache;
    RunnerOptions options;
    options.cache = &cache;
    const Runner cached{options};

    ASSERT_TRUE(cached.run(original).ok()) << original.name;
    const ScenarioResult served = cached.run(twin);
    ASSERT_TRUE(served.ok()) << twin.name << ": " << served.error;
    EXPECT_TRUE(served.from_cache) << twin.name << " must share the original's class";

    const ScenarioResult fresh_twin = plain.run(twin);
    ASSERT_TRUE(fresh_twin.ok()) << fresh_twin.error;
    expect_identical_metrics(served, fresh_twin, twin.name);
  }
}

}  // namespace
}  // namespace arsf::scenario
