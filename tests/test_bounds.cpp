// Unit tests for the fusion width guarantees and the Theorem 2 bound
// (core/bounds.h).

#include <gtest/gtest.h>

#include "core/bounds.h"
#include "core/fusion.h"

namespace arsf {
namespace {

TEST(Bounds, CeilDiv) {
  EXPECT_EQ(ceil_div(3, 2), 2);
  EXPECT_EQ(ceil_div(4, 2), 2);
  EXPECT_EQ(ceil_div(5, 3), 2);
  EXPECT_EQ(ceil_div(6, 3), 2);
  EXPECT_EQ(ceil_div(7, 3), 3);
}

TEST(Bounds, MaxBoundedF) {
  // The paper's evaluation choice f = ceil(n/2) - 1.
  EXPECT_EQ(max_bounded_f(3), 1);
  EXPECT_EQ(max_bounded_f(4), 1);
  EXPECT_EQ(max_bounded_f(5), 2);
  EXPECT_EQ(max_bounded_f(6), 2);
  EXPECT_EQ(max_bounded_f(7), 3);
}

TEST(Bounds, GuaranteeRegions) {
  // n=7: f<ceil(7/3)=3 -> bounded by correct; f<ceil(7/2)=4 -> bounded by any.
  EXPECT_TRUE(width_bounded_by_correct(7, 2));
  EXPECT_FALSE(width_bounded_by_correct(7, 3));
  EXPECT_TRUE(width_bounded_by_any(7, 3));
  EXPECT_FALSE(width_bounded_by_any(7, 4));
}

TEST(Bounds, Theorem2Value) {
  const std::vector<Interval> correct = {{0, 5}, {0, 11}, {0, 17}};
  EXPECT_DOUBLE_EQ(theorem2_bound(correct), 17 + 11);
  const std::vector<TickInterval> ticks = {{0, 5}, {0, 11}, {0, 17}};
  EXPECT_EQ(theorem2_bound_ticks(ticks), 28);
}

TEST(Bounds, Theorem2SingleCorrect) {
  const std::vector<Interval> correct = {{0, 7}};
  EXPECT_DOUBLE_EQ(theorem2_bound(correct), 7.0);
}

TEST(Bounds, Theorem2Throws) {
  EXPECT_THROW((void)theorem2_bound({}), std::invalid_argument);
}

TEST(Bounds, Theorem2TightCase) {
  // The bound is achieved when two correct intervals intersect at exactly
  // one point (the true value) and an attacked interval bridges them.
  // Correct: [-5, 0], [0, 4]; attacked width 9 placed to cover both; f=1.
  const std::vector<Interval> intervals = {{-5, 0}, {0, 4}, {-5, 4}};
  const auto result = fuse(intervals, 1);
  ASSERT_TRUE(result.interval);
  const std::vector<Interval> correct = {{-5, 0}, {0, 4}};
  EXPECT_DOUBLE_EQ(result.width(), theorem2_bound(correct));  // 5 + 4 = 9
}

TEST(Bounds, FusionRespectsTheorem2OnRandomConfigs) {
  // For f < ceil(n/2) and any placement of attacked intervals that pass
  // detection, |S| <= |sc1| + |sc2|.  Exercise a grid of attacked positions.
  const std::vector<TickInterval> correct = {{-4, 0}, {-1, 5}, {0, 7}};
  for (Tick lo = -20; lo <= 20; ++lo) {
    std::vector<TickInterval> intervals = correct;
    intervals.push_back(TickInterval{lo, lo + 6});  // attacked, n=4, f=1
    const TickInterval fused = fused_interval_ticks(intervals, 1);
    if (fused.is_empty()) continue;
    EXPECT_LE(fused.width(), theorem2_bound_ticks(correct)) << "lo=" << lo;
  }
}

}  // namespace
}  // namespace arsf
