// Tests for the durable request journal and frame spool (src/serve/journal.h)
// plus the crash-recovery behaviour of the Server built on top of them:
// replay across reopen, hand-corrupted files (torn tails never abort, only
// count), escaped request ids, the "journal" fault site, and in-process
// kill-free restarts of the spool transport (dedup across restart, corrupt
// sweep checkpoint -> clean full re-run).  The with-SIGKILL variants of the
// same guarantees live in tools/recovery_smoke.cpp.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "scenario/faultplan.h"
#include "scenario/scenario.h"
#include "scenario/sweep.h"
#include "serve/journal.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace arsf::serve {
namespace {

namespace fs = std::filesystem;

// A temporary state directory removed on scope exit.
struct TempDir {
  std::string path;
  explicit TempDir(const std::string& name)
      : path((fs::temp_directory_path() / (name + "." + std::to_string(::getpid())))
                 .string()) {
    std::error_code ec;
    fs::remove_all(path, ec);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void append_raw(const std::string& path, const std::string& text) {
  std::ofstream out{path, std::ios::app | std::ios::binary};
  out << text;
}

std::size_t line_count(const std::string& path) {
  std::ifstream in{path};
  std::size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  return lines;
}

// ----------------------------------------------------------- state machine --

TEST(Journal, RoundTripsRecordsAcrossReopen) {
  const TempDir dir{"arsf_journal_roundtrip"};
  {
    Journal journal{dir.path};
    const JournalLoadReport empty = journal.open();
    EXPECT_EQ(empty.records, 0u);
    EXPECT_EQ(empty.rejected, 0u);
    journal.record_accepted("r-1", "socket", "{\"request_id\":\"r-1\",\"name\":\"a\"}");
    journal.record_accepted("r-2", "spool", "{\"request_id\":\"r-2\",\"name\":\"b\"}");
    journal.record_state("r-1", JournalState::kRunning);
    journal.record_state("r-1", JournalState::kDone, 7, 2);
  }
  Journal reopened{dir.path};
  const JournalLoadReport report = reopened.open();
  EXPECT_EQ(report.records, 2u);
  EXPECT_EQ(report.rejected, 0u);

  const std::optional<JournalRecord> done = reopened.find("r-1");
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->state, JournalState::kDone);
  EXPECT_EQ(done->origin, "socket");
  EXPECT_EQ(done->line, "{\"request_id\":\"r-1\",\"name\":\"a\"}");
  EXPECT_EQ(done->results, 7u);
  EXPECT_EQ(done->failed, 2u);
  EXPECT_TRUE(is_terminal(done->state));

  const std::vector<JournalRecord> incomplete = reopened.incomplete();
  ASSERT_EQ(incomplete.size(), 1u);
  EXPECT_EQ(incomplete[0].request_id, "r-2");
  EXPECT_EQ(incomplete[0].state, JournalState::kAccepted);
  EXPECT_FALSE(is_terminal(incomplete[0].state));
}

TEST(Journal, IncompleteKeepsJournalOrderAndSkipsTerminals) {
  const TempDir dir{"arsf_journal_order"};
  Journal journal{dir.path};
  (void)journal.open();
  journal.record_accepted("c", "socket", "{}");
  journal.record_accepted("a", "socket", "{}");
  journal.record_accepted("b", "socket", "{}");
  journal.record_state("a", JournalState::kFailed, 1, 1);
  const std::vector<JournalRecord> incomplete = journal.incomplete();
  ASSERT_EQ(incomplete.size(), 2u);
  EXPECT_EQ(incomplete[0].request_id, "c");  // first-seen order, not sorted
  EXPECT_EQ(incomplete[1].request_id, "b");
  EXPECT_EQ(journal.size(), 3u);
}

TEST(Journal, ReAcceptRefreshesLineAndOrigin) {
  const TempDir dir{"arsf_journal_reaccept"};
  Journal journal{dir.path};
  (void)journal.open();
  journal.record_accepted("r", "socket", "old-line");
  journal.record_accepted("r", "spool", "new-line");
  const std::optional<JournalRecord> record = journal.find("r");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->origin, "spool");
  EXPECT_EQ(record->line, "new-line");
  EXPECT_EQ(journal.size(), 1u);  // last writer wins, no duplicate record
}

TEST(Journal, UnknownIdStateEventGetsSyntheticRecord) {
  const TempDir dir{"arsf_journal_synthetic"};
  Journal journal{dir.path};
  (void)journal.open();
  journal.record_state("ghost", JournalState::kCancelled);
  const std::optional<JournalRecord> record = journal.find("ghost");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->state, JournalState::kCancelled);
}

TEST(Journal, EscapedRequestIdsRoundTripThroughReplay) {
  const TempDir dir{"arsf_journal_escaped"};
  const std::string id = "dup \"two\"\\slash\nnewline\ttab";
  const std::string line = "{\"request_id\":\"quoted \\\"stuff\\\"\"}";
  {
    Journal journal{dir.path};
    (void)journal.open();
    journal.record_accepted(id, "socket", line);
    journal.record_state(id, JournalState::kDone, 1, 0);
  }
  Journal reopened{dir.path};
  const JournalLoadReport report = reopened.open();
  EXPECT_EQ(report.rejected, 0u);
  const std::optional<JournalRecord> record = reopened.find(id);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->request_id, id);
  EXPECT_EQ(record->line, line);
  // The frame stem is filesystem-safe regardless of what the id contains.
  const std::string stem = Journal::frame_file_stem(id);
  EXPECT_EQ(stem.size(), 16u);
  EXPECT_EQ(stem.find_first_not_of("0123456789abcdef"), std::string::npos);
}

// ------------------------------------------------- corruption and the tail --

TEST(Journal, TornFinalLineIsDroppedCountedAndCompactedAway) {
  const TempDir dir{"arsf_journal_torn"};
  const std::string journal_path = dir.path + "/journal.jsonl";
  {
    Journal journal{dir.path};
    (void)journal.open();
    journal.record_accepted("r-1", "socket", "{}");
    journal.record_state("r-1", JournalState::kRunning);
  }
  // A SIGKILL mid-append leaves an unterminated tail.
  append_raw(journal_path, "{\"event\":\"done\",\"request_id\":\"r-1\",\"resu");

  Journal reopened{dir.path};
  const JournalLoadReport report = reopened.open();
  EXPECT_EQ(report.records, 1u);
  EXPECT_EQ(report.rejected, 1u);  // counted, never fatal
  const std::optional<JournalRecord> record = reopened.find("r-1");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->state, JournalState::kRunning);  // the torn done never applied

  // open() compacts write-then-rename: the torn done event is gone from disk
  // and a third open sees a clean file.
  const std::string text = read_file(journal_path);
  EXPECT_EQ(text.find("\"event\":\"done\""), std::string::npos);
  EXPECT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  Journal third{dir.path};
  const JournalLoadReport clean = third.open();
  EXPECT_EQ(clean.records, 1u);
  EXPECT_EQ(clean.rejected, 0u);
}

TEST(Journal, CorruptMiddleLineIsSkippedNotFatal) {
  const TempDir dir{"arsf_journal_corrupt_middle"};
  const std::string journal_path = dir.path + "/journal.jsonl";
  std::ofstream out{journal_path};
  out << R"({"event":"accepted","request_id":"r-1","origin":"socket","line":"{}"})" << '\n';
  out << "this is not json\n";
  out << R"({"event":"accepted","request_id":"r-2","origin":"socket","line":"{}"})" << '\n';
  out << R"({"event":"done","request_id":"r-2","results":3,"failed":0})" << '\n';
  out << R"({"event":"accepted","bogus_key":true})" << '\n';  // strict keys reject
  out.close();

  Journal journal{dir.path};
  const JournalLoadReport report = journal.open();
  EXPECT_EQ(report.records, 2u);
  EXPECT_EQ(report.rejected, 2u);
  ASSERT_TRUE(journal.find("r-2").has_value());
  EXPECT_EQ(journal.find("r-2")->state, JournalState::kDone);
  EXPECT_EQ(journal.find("r-2")->results, 3u);
  ASSERT_TRUE(journal.find("r-1").has_value());
  EXPECT_EQ(journal.find("r-1")->state, JournalState::kAccepted);
}

TEST(Journal, CompactionShrinksEventHistoryToOneOrTwoLinesPerRecord) {
  const TempDir dir{"arsf_journal_compact"};
  const std::string journal_path = dir.path + "/journal.jsonl";
  {
    Journal journal{dir.path};
    (void)journal.open();
    journal.record_accepted("r", "socket", "{}");
    for (int i = 0; i < 10; ++i) journal.record_state("r", JournalState::kRunning);
    journal.record_state("r", JournalState::kDone, 1, 0);
  }
  EXPECT_GE(line_count(journal_path), 12u);  // the raw event history
  Journal reopened{dir.path};
  (void)reopened.open();
  EXPECT_EQ(line_count(journal_path), 2u);  // accepted + terminal state
}

// ------------------------------------------------------------- frame spool --

TEST(Journal, FrameSpoolAppendsReadsAndTruncates) {
  const TempDir dir{"arsf_journal_frames"};
  Journal journal{dir.path};
  (void)journal.open();
  journal.record_accepted("r", "socket", "{}");
  journal.append_frame("r", "{\"frame\":0}");
  journal.append_frame("r", "{\"frame\":1}");
  journal.append_frame("r", "{\"frame\":2}");
  journal.sync_frames("r");

  const std::vector<std::string> frames = journal.read_frames("r");
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0], "{\"frame\":0}");
  EXPECT_EQ(frames[2], "{\"frame\":2}");

  journal.truncate_frames("r", 1);  // sweep resume: cut back to the checkpoint
  const std::vector<std::string> kept = journal.read_frames("r");
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0], "{\"frame\":0}");
  journal.append_frame("r", "{\"frame\":11}");  // the tail re-runs after a truncate
  EXPECT_EQ(journal.read_frames("r").size(), 2u);

  journal.reset_frames("r");
  EXPECT_TRUE(journal.read_frames("r").empty());
  EXPECT_FALSE(fs::exists(journal.frame_path("r")));
}

TEST(Journal, TornFrameTailStopsTheReadButKeepsThePrefix) {
  const TempDir dir{"arsf_journal_frame_torn"};
  Journal journal{dir.path};
  (void)journal.open();
  journal.record_accepted("r", "socket", "{}");
  journal.append_frame("r", "{\"a\":1}");
  journal.append_frame("r", "{\"b\":2}");
  journal.close_frames("r");
  append_raw(journal.frame_path("r"), "{\"torn\":");  // no newline: mid-write kill
  const std::vector<std::string> frames = journal.read_frames("r");
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[1], "{\"b\":2}");
}

TEST(Journal, FrameIsDoneRecognisesOnlyDoneFrames) {
  EXPECT_TRUE(frame_is_done(done_frame("id", 3, 1)));
  EXPECT_TRUE(frame_is_done(done_frame("weird \"id\"\\", 0, 0)));
  scenario::ScenarioResult result;
  result.scenario = "x";
  EXPECT_FALSE(frame_is_done(result_frame("id", 0, result)));
  EXPECT_FALSE(frame_is_done("not a frame"));
  EXPECT_FALSE(frame_is_done(""));
}

TEST(Journal, OpenRemovesFrameFilesOfDeadRecords) {
  const TempDir dir{"arsf_journal_gc"};
  std::string live_frames;
  std::string live_checkpoint;
  {
    Journal journal{dir.path};
    (void)journal.open();
    journal.record_accepted("live", "socket", "{}");
    journal.append_frame("live", "frame");
    journal.close_frames("live");
    live_frames = journal.frame_path("live");
    live_checkpoint = journal.checkpoint_path("live");
    append_raw(live_checkpoint, "token\n");
    // Orphans: a frame file and a checkpoint that no record owns.
    append_raw(dir.path + "/frames/deadbeefdeadbeef.jsonl", "orphan\n");
    append_raw(dir.path + "/frames/deadbeefdeadbeef.progress", "orphan\n");
  }
  Journal reopened{dir.path};
  (void)reopened.open();
  EXPECT_TRUE(fs::exists(live_frames));
  EXPECT_TRUE(fs::exists(live_checkpoint));
  EXPECT_FALSE(fs::exists(dir.path + "/frames/deadbeefdeadbeef.jsonl"));
  EXPECT_FALSE(fs::exists(dir.path + "/frames/deadbeefdeadbeef.progress"));
}

// ---------------------------------------------------------- "journal" site --

TEST(Journal, JournalFaultSiteSkipsTheAppendButKeepsInMemoryState) {
  const TempDir dir{"arsf_journal_fault"};
  scenario::FaultPlan plan;
  plan.seed = 7;
  scenario::FaultRule rule;
  rule.site = "journal";
  rule.nth = 2;  // the second durable journal append is dropped
  plan.rules.push_back(rule);
  const scenario::FaultInjector injector{plan};
  {
    Journal journal{dir.path};
    journal.set_fault_injector(&injector);
    (void)journal.open();
    journal.record_accepted("r-1", "socket", "{}");     // append 1: lands
    journal.record_state("r-1", JournalState::kDone, 1, 0);  // append 2: dropped
    EXPECT_EQ(journal.appends_failed(), 1u);
    // In-memory state carried on: degraded durability, not degraded truth.
    EXPECT_EQ(journal.find("r-1")->state, JournalState::kDone);
  }
  // After a restart the dropped event is simply absent — the request is
  // incomplete again and will re-run (at-least-once, never lost).
  Journal reopened{dir.path};
  (void)reopened.open();
  ASSERT_TRUE(reopened.find("r-1").has_value());
  EXPECT_EQ(reopened.find("r-1")->state, JournalState::kAccepted);
  EXPECT_EQ(reopened.incomplete().size(), 1u);
}

TEST(Journal, CrashSiteIsRegistered) {
  const std::vector<std::string> sites = scenario::fault_sites();
  EXPECT_NE(std::find(sites.begin(), sites.end(), "journal"), sites.end());
  EXPECT_NE(std::find(sites.begin(), sites.end(), "crash"), sites.end());
}

// ----------------------------------------------- Server restarts (no kill) --

scenario::Scenario cheap_scenario(const std::string& name) {
  scenario::Scenario s;
  s.name = name;
  s.widths = {5.0, 2.0, 3.0};
  s.fa = 0;
  s.policy = scenario::PolicyKind::kNone;
  s.analysis = scenario::AnalysisKind::kEnumerate;
  return s;
}

ServeOptions spool_options(const std::string& spool, const std::string& state) {
  ServeOptions options;
  options.spool_dir = spool;
  options.state_dir = state;
  options.workers = 2;
  options.spool_poll_ms = 10;
  options.chunk_scenarios = 4;
  return options;
}

void drop_request(const std::string& spool, const std::string& name,
                  const std::string& line) {
  const std::string tmp = spool + "/" + name + ".tmp";
  std::ofstream out{tmp};
  out << line << '\n';
  out.close();
  fs::rename(tmp, spool + "/" + name + ".req");
}

std::vector<std::string> wait_for_out(const std::string& path) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (!fs::exists(path) && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::vector<std::string> lines;
  std::ifstream in{path};
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(ServerRecovery, RequestIdDedupAcrossRestart) {
  const TempDir spool{"arsf_recovery_dedup_spool"};
  const TempDir state{"arsf_recovery_dedup_state"};
  const std::string line =
      "{\"request_id\":\"dup-1\"," + cheap_scenario("dedup/one").to_json().substr(1);

  std::vector<std::string> first;
  {
    Server server{spool_options(spool.path, state.path)};
    server.start();
    drop_request(spool.path, "job1", line);
    first = wait_for_out(spool.path + "/job1.out");
    server.request_stop();
    server.wait();
    EXPECT_EQ(server.stats().requests_completed, 1u);
    EXPECT_EQ(server.stats().requests_deduped, 0u);
  }
  ASSERT_EQ(first.size(), 2u);  // one result frame + done

  // Second life, same state dir: the same id is answered from the journal,
  // byte for byte, without re-executing.
  {
    Server server{spool_options(spool.path, state.path)};
    server.start();
    drop_request(spool.path, "job2", line);
    const std::vector<std::string> second = wait_for_out(spool.path + "/job2.out");
    server.request_stop();
    server.wait();
    EXPECT_EQ(second, first);
    EXPECT_EQ(server.stats().requests_deduped, 1u);
    EXPECT_EQ(server.stats().requests_completed, 0u);
  }
}

TEST(ServerRecovery, CorruptSweepCheckpointFallsBackToCleanFullRerun) {
  const TempDir spool{"arsf_recovery_ckpt_spool"};
  const TempDir state{"arsf_recovery_ckpt_state"};
  scenario::SweepSpec sweep;
  sweep.name = "recovery/ckpt";
  sweep.base = cheap_scenario("recovery/ckpt-base");
  sweep.seed_count = 6;
  const std::string line =
      "{\"request_id\":\"sweep-1\"," + sweep.to_json().substr(1);

  // Craft a crashed-looking state dir BY HAND: a socket-origin record that
  // never finished, two already-spooled frames, and a GARBAGE checkpoint.
  {
    Journal journal{state.path};
    (void)journal.open();
    journal.record_accepted("sweep-1", "socket", line);
    journal.record_state("sweep-1", JournalState::kRunning);
    journal.append_frame("sweep-1", "{\"stale\":0}");
    journal.append_frame("sweep-1", "{\"stale\":1}");
    journal.close_frames("sweep-1");
    append_raw(journal.checkpoint_path("sweep-1"), "not a checkpoint\n");
  }
  EXPECT_THROW((void)scenario::load_sweep_checkpoint(
                   Journal{state.path}.checkpoint_path("sweep-1")),
               std::runtime_error);

  // The restarted server re-queues the socket-origin record, must NOT trust
  // the corrupt checkpoint (or the stale frames), and re-runs from scratch.
  {
    Server server{spool_options(spool.path, state.path)};
    server.start();
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (server.stats().requests_completed == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    server.request_stop();
    server.wait();
    EXPECT_EQ(server.stats().journal_recovered, 1u);
    EXPECT_EQ(server.stats().sweeps_resumed, 0u);  // corrupt token = no resume
    EXPECT_EQ(server.stats().requests_completed, 1u);
  }

  // The journal now holds a terminal done record counting the WHOLE grid and
  // a complete frame spool with no trace of the stale frames.
  Journal journal{state.path};
  (void)journal.open();
  const std::optional<JournalRecord> record = journal.find("sweep-1");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->state, JournalState::kDone);
  EXPECT_EQ(record->results, sweep.size());
  EXPECT_EQ(record->failed, 0u);
  const std::vector<std::string> frames = journal.read_frames("sweep-1");
  ASSERT_EQ(frames.size(), sweep.size() + 1);  // grid + done frame
  EXPECT_TRUE(frame_is_done(frames.back()));
  for (const std::string& frame : frames) {
    EXPECT_EQ(frame.find("stale"), std::string::npos);
  }
  EXPECT_FALSE(fs::exists(journal.checkpoint_path("sweep-1")));
}

}  // namespace
}  // namespace arsf::serve
