// Tests for the parallel incremental world-enumeration engine
// (sim/engine/): world-index codec round trips, incremental-sweep vs
// full-re-sort fusion equivalence, thread-pool behaviour, and — the key
// guarantee — bit-identical serial-vs-parallel enumeration on every paper
// configuration.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "sim/engine/engine.h"
#include "sim/engine/thread_pool.h"
#include "sim/engine/world_codec.h"
#include "sim/enumerate.h"
#include "sim/experiment.h"
#include "sim/worstcase.h"
#include "support/rng.h"

namespace arsf::sim::engine {
namespace {

// ---------------------------------------------------------------- codec ---

TEST(WorldCodecTest, RoundTripAllIndices) {
  const std::vector<std::vector<std::uint64_t>> cases = {
      {1}, {4}, {2, 3}, {3, 1, 4}, {6, 12, 18}, {1, 1, 1}, {5, 2, 1, 3}};
  for (const auto& radices : cases) {
    const WorldCodec codec{radices};
    const std::uint64_t count =
        std::accumulate(radices.begin(), radices.end(), std::uint64_t{1},
                        [](std::uint64_t a, std::uint64_t b) { return a * b; });
    ASSERT_EQ(codec.world_count(), count);
    std::vector<std::uint64_t> digits(radices.size());
    for (std::uint64_t index = 0; index < count; ++index) {
      codec.decode(index, digits);
      for (std::size_t i = 0; i < radices.size(); ++i) EXPECT_LT(digits[i], radices[i]);
      EXPECT_EQ(codec.encode(digits), index);
    }
  }
}

TEST(WorldCodecTest, AdvanceMatchesDecodeOfSuccessor) {
  const WorldCodec codec{{3, 4, 2}};
  std::vector<std::uint64_t> digits(3, 0);
  std::vector<std::uint64_t> expected(3);
  for (std::uint64_t index = 0; index + 1 < codec.world_count(); ++index) {
    const std::size_t changed = codec.advance(digits);
    ASSERT_GE(changed, 1u);
    codec.decode(index + 1, expected);
    EXPECT_EQ(digits, expected) << "index " << index;
    // Digits above the reported change count must be untouched suffix-wise:
    // decode(index) and decode(index+1) agree beyond `changed`.
    std::vector<std::uint64_t> before(3);
    codec.decode(index, before);
    for (std::size_t i = changed; i < 3; ++i) EXPECT_EQ(before[i], expected[i]);
  }
  EXPECT_EQ(codec.advance(digits), 0u);  // wraps past the last world
  EXPECT_EQ(digits, std::vector<std::uint64_t>(3, 0));
}

TEST(WorldCodecTest, RandomizedRoundTrip) {
  support::Rng rng{0xc0dec5eedULL};
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 6));
    std::vector<std::uint64_t> radices(n);
    for (auto& radix : radices) radix = static_cast<std::uint64_t>(rng.uniform_int(1, 9));
    const WorldCodec codec{radices};
    std::vector<std::uint64_t> digits(n);
    for (int probe = 0; probe < 32; ++probe) {
      const std::uint64_t index = static_cast<std::uint64_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(codec.world_count() - 1)));
      codec.decode(index, digits);
      EXPECT_EQ(codec.encode(digits), index);
    }
  }
}

TEST(WorldCodecTest, RejectsZeroRadix) {
  EXPECT_THROW(WorldCodec({2, 0, 3}), std::invalid_argument);
}

TEST(WorldCodecTest, SaturatesOnOverflow) {
  const WorldCodec codec{std::vector<std::uint64_t>(11, 1ULL << 6)};  // 2^66
  EXPECT_TRUE(codec.overflowed());
  EXPECT_EQ(codec.world_count(), std::numeric_limits<std::uint64_t>::max());
}

TEST(WorldCodecTest, SaturatingProductHandlesZeroAndOverflow) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(WorldCodec::saturating_product({}), 1u);  // empty product
  const std::vector<std::uint64_t> plain = {6, 12, 18};
  EXPECT_EQ(WorldCodec::saturating_product(plain), 6u * 12u * 18u);
  const std::vector<std::uint64_t> huge = {1ULL << 40, 1ULL << 40};
  EXPECT_EQ(WorldCodec::saturating_product(huge), kMax);
  // A zero annihilates the product even after an overflowing prefix.
  const std::vector<std::uint64_t> huge_then_zero = {1ULL << 40, 1ULL << 40, 0};
  EXPECT_EQ(WorldCodec::saturating_product(huge_then_zero), 0u);
}

// ---------------------------------------------------------------- sweep ---

std::vector<TickInterval> random_intervals(std::size_t n, support::Rng& rng, Tick span = 15) {
  std::vector<TickInterval> intervals(n);
  for (auto& iv : intervals) {
    const Tick lo = rng.uniform_int(-span, span);
    const Tick width = rng.uniform_int(0, span);
    iv = TickInterval{lo, lo + width};
  }
  return intervals;
}

TEST(IncrementalSweepTest, MatchesFullResortUnderRandomReplacements) {
  support::Rng rng{0x5afe5eedULL};
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 9));
    auto intervals = random_intervals(n, rng);
    IncrementalSweep sweep;
    sweep.reset(intervals);
    for (int step = 0; step < 200; ++step) {
      const std::size_t slot = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      // Mix small odometer-like moves with arbitrary jumps.
      TickInterval next;
      if (rng.chance(0.7)) {
        next = intervals[slot].translated(1);
      } else {
        next = random_intervals(1, rng)[0];
      }
      intervals[slot] = next;
      sweep.replace(slot, next);
      for (int f = 0; f < static_cast<int>(n); ++f) {
        const int threshold = static_cast<int>(n) - f;
        EXPECT_EQ(sweep.fused(threshold), fused_interval_ticks(intervals, f))
            << "n=" << n << " f=" << f << " step=" << step;
      }
    }
  }
}

TEST(IncrementalSweepTest, CommonPointFusionMatchesGeneralSweep) {
  support::Rng rng{0xc0ffeeULL};
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 8));
    // All intervals contain 0: lo in [-w, 0].
    std::vector<TickInterval> intervals(n);
    for (auto& iv : intervals) {
      const Tick width = rng.uniform_int(0, 12);
      const Tick lo = rng.uniform_int(-width, 0);
      iv = TickInterval{lo, lo + width};
    }
    IncrementalSweep sweep;
    sweep.reset(intervals);
    for (int threshold = 1; threshold <= static_cast<int>(n); ++threshold) {
      EXPECT_EQ(sweep.fused_with_common_point(threshold), sweep.fused(threshold))
          << "n=" << n << " threshold=" << threshold;
    }
  }
}

// ----------------------------------------------------------- thread pool ---

TEST(ThreadPoolTest, PartitionCoversRangeContiguously) {
  for (const std::uint64_t total : {0ULL, 1ULL, 7ULL, 64ULL, 1000ULL}) {
    for (const unsigned blocks : {1u, 2u, 3u, 8u, 64u}) {
      const auto partition = partition_blocks(total, blocks);
      std::uint64_t covered = 0;
      std::uint64_t expected_begin = 0;
      for (const auto& block : partition) {
        EXPECT_EQ(block.begin, expected_begin);
        EXPECT_LT(block.begin, block.end);
        covered += block.end - block.begin;
        expected_begin = block.end;
      }
      EXPECT_EQ(covered, total);
      EXPECT_LE(partition.size(), static_cast<std::size_t>(blocks));
      if (total >= blocks && total > 0) EXPECT_EQ(partition.size(), blocks);
    }
  }
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Reusable across jobs.
  pool.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 2);
}

TEST(ThreadPoolTest, PropagatesTaskException) {
  ThreadPool pool{3};
  EXPECT_THROW(pool.run(16,
                        [](std::size_t i) {
                          if (i == 7) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  // Pool still usable afterwards.
  std::atomic<int> counter{0};
  pool.run(8, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 8);
}

// -------------------------------------------------- enumeration parity ---

TEST(CleanStatsTest, RunBatchedMatchesPerWorldSweep) {
  // The closed-form clean path must agree exactly with a per-world
  // incremental sweep over the same domain, for whole spaces and for
  // arbitrary sub-blocks.
  support::Rng rng{0xb10cbeefULL};
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 6));
    std::vector<Tick> widths(n);
    for (auto& w : widths) w = rng.uniform_int(0, 9);
    const int f = static_cast<int>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const WorldDomain domain = WorldDomain::all_contain_zero(widths, f);

    const std::uint64_t worlds = domain.world_count();
    std::uint64_t begin = 0;
    std::uint64_t end = worlds;
    if (trial % 2 == 1 && worlds > 2) {  // random sub-block
      begin = static_cast<std::uint64_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(worlds) - 2));
      end = begin + 1 +
            static_cast<std::uint64_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(worlds - begin) - 1));
    }

    CleanStats per_world;
    enumerate_block(domain, begin, end,
                    [&](std::uint64_t, TickInterval fused, const IncrementalSweep&) {
                      const Tick width = fused.width();
                      per_world.width_sum += static_cast<std::uint64_t>(width);
                      per_world.min_width = std::min(per_world.min_width, width);
                      per_world.max_width = std::max(per_world.max_width, width);
                    });

    const CleanStats batched = enumerate_clean_block(domain, begin, end);
    EXPECT_EQ(batched.width_sum, per_world.width_sum)
        << "n=" << n << " f=" << f << " block=[" << begin << "," << end << ")";
    EXPECT_EQ(batched.min_width, per_world.min_width);
    EXPECT_EQ(batched.max_width, per_world.max_width);
  }
}

TEST(CleanStatsTest, RejectsDomainsWithoutCommonPoint) {
  const std::vector<Tick> widths = {2, 3};
  const std::vector<TickInterval> loose = {{-2, 0}, {-5, 2}};
  const WorldDomain domain = WorldDomain::from_ranges(widths, loose, 0);
  EXPECT_THROW((void)enumerate_clean_block(domain, 0, domain.world_count()),
               std::invalid_argument);
}

void expect_identical(const EnumerateResult& a, const EnumerateResult& b) {
  EXPECT_EQ(a.expected_width, b.expected_width);            // bit-identical
  EXPECT_EQ(a.expected_width_no_attack, b.expected_width_no_attack);
  EXPECT_EQ(a.worlds, b.worlds);
  EXPECT_EQ(a.detected_worlds, b.detected_worlds);
  EXPECT_EQ(a.empty_fusion_worlds, b.empty_fusion_worlds);
  EXPECT_EQ(a.min_width, b.min_width);
  EXPECT_EQ(a.max_width, b.max_width);
}

TEST(EngineParity, SerialVsParallelOnAllTable1Configs) {
  for (const auto& [widths, fa] : paper_table1_configs()) {
    (void)fa;
    EnumerateConfig config;
    config.system = make_config(widths);
    config.order = sched::ascending_order(config.system);

    config.num_threads = 1;
    const EnumerateResult serial = enumerate_expected_width(config);
    for (const unsigned threads : {2u, 3u, 4u, 7u}) {
      config.num_threads = threads;
      const EnumerateResult parallel = enumerate_expected_width(config);
      SCOPED_TRACE("threads=" + std::to_string(threads));
      expect_identical(serial, parallel);
    }
  }
}

TEST(EngineParity, EngineMatchesReferenceOnAllTable1Configs) {
  // The incremental engine must agree bit-for-bit with the pre-engine
  // full-re-sort odometer — clean path on every paper configuration.
  for (const auto& [widths, fa] : paper_table1_configs()) {
    (void)fa;
    EnumerateConfig config;
    config.system = make_config(widths);
    config.order = sched::descending_order(config.system);
    const EnumerateResult reference = enumerate_expected_width_reference(config);
    config.num_threads = 0;  // hardware fan-out
    const EnumerateResult engine = enumerate_expected_width(config);
    expect_identical(reference, engine);
  }
}

TEST(EngineParity, EngineMatchesReferenceWithAttackPolicy) {
  // Stateful-policy path: serial engine with incremental sweep vs reference.
  for (const auto& order_kind : {sched::ScheduleKind::kAscending,
                                 sched::ScheduleKind::kDescending}) {
    EnumerateConfig config;
    config.system = make_config({5.0, 11.0, 17.0});
    config.order = order_kind == sched::ScheduleKind::kAscending
                       ? sched::ascending_order(config.system)
                       : sched::descending_order(config.system);
    config.attacked = {0};

    attack::ExpectationPolicy reference_policy;
    config.policy = &reference_policy;
    const EnumerateResult reference = enumerate_expected_width_reference(config);

    attack::ExpectationPolicy engine_policy;
    config.policy = &engine_policy;
    const EnumerateResult engine = enumerate_expected_width(config);
    expect_identical(reference, engine);
  }
}

TEST(EngineParity, WorstCaseSerialVsParallel) {
  WorstCaseConfig config;
  config.widths = {2, 3, 5, 4};
  config.f = 1;
  config.attacked = {0, 2};

  config.num_threads = 1;
  const WorstCaseResult serial = worst_case_fusion(config);
  for (const unsigned threads : {2u, 3u, 5u}) {
    config.num_threads = threads;
    const WorstCaseResult parallel = worst_case_fusion(config);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(parallel.max_width, serial.max_width);
    EXPECT_EQ(parallel.configurations, serial.configurations);
    ASSERT_EQ(parallel.argmax.size(), serial.argmax.size());
    for (std::size_t i = 0; i < serial.argmax.size(); ++i) {
      EXPECT_EQ(parallel.argmax[i], serial.argmax[i]) << "interval " << i;
    }
  }
}

TEST(EngineParity, WorstCaseMatchesBruteForce) {
  // Independent brute force over all placements for a small attacked config.
  WorstCaseConfig config;
  config.widths = {2, 2, 4};
  config.f = 1;
  config.attacked = {2};
  const WorstCaseResult result = worst_case_fusion(config);

  Tick brute_best = -1;
  const Tick max_w = 4;
  for (Tick a = -2; a <= 0; ++a) {
    for (Tick b = -2; b <= 0; ++b) {
      for (Tick c = -max_w - 4; c <= max_w; ++c) {
        const std::vector<TickInterval> world = {{a, a + 2}, {b, b + 2}, {c, c + 4}};
        const TickInterval fused = fused_interval_ticks(world, 1);
        if (fused.is_empty() || !world[2].intersects(fused)) continue;
        brute_best = std::max(brute_best, fused.width());
      }
    }
  }
  EXPECT_EQ(result.max_width, brute_best);
}

TEST(EngineParity, Table1RowIndependentOfThreadCount) {
  const std::vector<double> widths = {5, 11, 17};
  const Table1Row serial = compare_schedules(widths, 1, {}, 1.0, 1);
  const Table1Row parallel = compare_schedules(widths, 1, {}, 1.0, 4);
  EXPECT_EQ(serial.e_ascending, parallel.e_ascending);
  EXPECT_EQ(serial.e_descending, parallel.e_descending);
  EXPECT_EQ(serial.e_no_attack, parallel.e_no_attack);
  EXPECT_EQ(serial.worlds, parallel.worlds);
  EXPECT_EQ(serial.detected, parallel.detected);
}

// ----------------------------------------------------------- domain ---

TEST(WorldDomainTest, CommonPointDetection) {
  const std::vector<Tick> widths = {2, 3};
  // Clean ranges: every placement contains 0.
  const std::vector<TickInterval> clean = {{-2, 0}, {-3, 0}};
  EXPECT_TRUE(WorldDomain::from_ranges(widths, clean, 0).common_point);
  // An attacked-style range escapes the origin.
  const std::vector<TickInterval> loose = {{-2, 0}, {-5, 2}};
  EXPECT_FALSE(WorldDomain::from_ranges(widths, loose, 0).common_point);
  EXPECT_TRUE(WorldDomain::all_contain_zero(widths, 0).common_point);
}

TEST(WorldDomainTest, WorldCountMatchesLegacyEnumerate) {
  const SystemConfig system = make_config({5.0, 11.0, 17.0});
  const auto widths = tick_widths(system, Quantizer{1.0});
  const WorldDomain domain = WorldDomain::all_contain_zero(widths, system.f);
  EXPECT_EQ(domain.world_count(), world_count(system, Quantizer{1.0}));
}

}  // namespace
}  // namespace arsf::sim::engine
