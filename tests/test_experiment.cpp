// Tests for the Table I experiment harness (sim/experiment.h) and the
// schedule-comparison plumbing it relies on.

#include <gtest/gtest.h>

#include "sim/experiment.h"

namespace arsf::sim {
namespace {

TEST(Experiment, PaperConfigsMatchTable1Layout) {
  const auto configs = paper_table1_configs();
  const auto reference = paper_table1_reference();
  ASSERT_EQ(configs.size(), 8u);
  ASSERT_EQ(reference.size(), 8u);
  // n ranges over 3..5, fa over 1..2, widths within the paper's {5..20}
  // step-3 grid, and fa <= f = ceil(n/2)-1.
  for (const auto& [widths, fa] : configs) {
    EXPECT_GE(widths.size(), 3u);
    EXPECT_LE(widths.size(), 5u);
    EXPECT_GE(fa, 1u);
    EXPECT_LE(static_cast<int>(fa), max_bounded_f(static_cast<int>(widths.size())));
    for (double w : widths) {
      EXPECT_GE(w, 5.0);
      EXPECT_LE(w, 20.0);
      EXPECT_DOUBLE_EQ(std::fmod(w - 5.0, 3.0), 0.0);  // 5, 8, 11, 14, 17, 20
    }
  }
  // The paper's own rows satisfy its headline claim.
  for (const auto& row : reference) EXPECT_GE(row.descending, row.ascending);
}

TEST(Experiment, RowIsDeterministic) {
  const std::vector<double> widths = {5, 11, 17};
  const Table1Row a = compare_schedules(widths, 1);
  const Table1Row b = compare_schedules(widths, 1);
  EXPECT_DOUBLE_EQ(a.e_ascending, b.e_ascending);
  EXPECT_DOUBLE_EQ(a.e_descending, b.e_descending);
  EXPECT_EQ(a.worlds, b.worlds);
}

TEST(Experiment, FinerStepRefinesNotBreaks) {
  // Halving the grid step doubles the tick widths; the expectation in value
  // units must stay close (the discretisation converges).
  const std::vector<double> widths = {3, 4, 5};
  const Table1Row coarse = compare_schedules(widths, 1, {}, 1.0);
  const Table1Row fine = compare_schedules(widths, 1, {}, 0.5);
  EXPECT_NEAR(fine.e_ascending, coarse.e_ascending, 0.5);
  EXPECT_NEAR(fine.e_descending, coarse.e_descending, 0.8);
  EXPECT_GE(fine.e_descending, fine.e_ascending - 1e-9);
}

TEST(Experiment, PolicyOptionsThreadThrough) {
  // Sampled completions with a tight budget still produce a valid row (the
  // values may differ slightly from exact, but ordering and stealth hold).
  attack::ExpectationOptions options;
  options.max_completions = 64;
  const std::vector<double> widths = {5, 8, 11};
  const Table1Row row = compare_schedules(widths, 1, options);
  EXPECT_EQ(row.detected, 0u);
  EXPECT_GE(row.e_descending, row.e_ascending - 0.3);
  EXPECT_GT(row.e_ascending, 0.0);
}

TEST(Experiment, Fa2UsesJointPlanning) {
  // A fa=2 row runs end-to-end with zero detections and a defensible
  // ordering (descending at least ascending).
  const std::vector<double> widths = {4, 4, 5, 6, 7};
  const Table1Row row = compare_schedules(widths, 2);
  EXPECT_EQ(row.detected, 0u);
  EXPECT_GE(row.e_descending, row.e_ascending - 1e-9);
  EXPECT_GE(row.e_ascending, row.e_no_attack - 1e-12);
}

}  // namespace
}  // namespace arsf::sim
