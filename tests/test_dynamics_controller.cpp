// Unit tests for the vehicle substrate: longitudinal dynamics, PI cruise
// controller and the safety supervisor (vehicle/dynamics.h, controller.h).

#include <gtest/gtest.h>

#include "vehicle/controller.h"
#include "vehicle/dynamics.h"

namespace arsf::vehicle {
namespace {

TEST(Dynamics, DragDeceleratesWithoutInput) {
  Longitudinal model{VehicleParams{.drag = 0.1, .initial_speed = 10.0}};
  for (int i = 0; i < 10; ++i) model.step(0.0, 0.1);
  EXPECT_LT(model.speed(), 10.0);
  EXPECT_GT(model.speed(), 8.5);
}

TEST(Dynamics, CommandSaturation) {
  Longitudinal model{VehicleParams{.max_accel = 2.0, .max_brake = 4.0}};
  model.step(100.0, 1.0);  // clamped to +2
  EXPECT_NEAR(model.speed(), 2.0, 1e-9);
  model.step(-100.0, 0.25);  // clamped to -4
  EXPECT_NEAR(model.speed(), 2.0 - 0.25 * (4.0 + 0.08 * 2.0), 0.05);
}

TEST(Dynamics, NoReverse) {
  Longitudinal model{VehicleParams{.initial_speed = 0.5}};
  for (int i = 0; i < 20; ++i) model.step(-5.0, 0.5);
  EXPECT_DOUBLE_EQ(model.speed(), 0.0);
}

TEST(Dynamics, EquilibriumUnderFeedforward) {
  VehicleParams params{.drag = 0.08, .initial_speed = 10.0};
  Longitudinal model{params};
  for (int i = 0; i < 100; ++i) model.step(params.drag * 10.0, 0.1);
  EXPECT_NEAR(model.speed(), 10.0, 1e-9);
}

TEST(PIController, ConvergesToTarget) {
  Longitudinal model{VehicleParams{.drag = 0.08, .initial_speed = 0.0}};
  PIController controller{1.0, 0.5, 3.0};
  for (int i = 0; i < 600; ++i) {
    const double command = controller.update(10.0 - model.speed(), 0.1);
    model.step(command, 0.1);
  }
  EXPECT_NEAR(model.speed(), 10.0, 0.05);
}

TEST(PIController, AntiWindupBoundsIntegral) {
  PIController controller{1.0, 1.0, 2.0};
  // Saturate with a huge error for many steps; the integral must not grow.
  for (int i = 0; i < 100; ++i) (void)controller.update(1000.0, 0.1);
  EXPECT_LE(controller.integral(), 2.0 / 1.0 + 1e-9);
  // After saturation, recovery is immediate rather than delayed by windup.
  const double command = controller.update(-1.0, 0.1);
  EXPECT_LT(command, 2.0);
}

TEST(PIController, ResetClearsIntegral) {
  PIController controller{0.0, 1.0, 10.0};
  (void)controller.update(2.0, 1.0);
  EXPECT_GT(controller.integral(), 0.0);
  controller.reset();
  EXPECT_DOUBLE_EQ(controller.integral(), 0.0);
}

TEST(SafetyEnvelope, ViolationPredicates) {
  const SafetyEnvelope envelope{10.0, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(envelope.upper_bound(), 10.5);
  EXPECT_DOUBLE_EQ(envelope.lower_bound(), 9.5);
  EXPECT_TRUE(envelope.violates_upper(Interval{9.0, 10.6}));
  EXPECT_FALSE(envelope.violates_upper(Interval{9.0, 10.5}));  // boundary ok
  EXPECT_TRUE(envelope.violates_lower(Interval{9.4, 10.0}));
  EXPECT_FALSE(envelope.violates_lower(Interval{9.5, 10.0}));
  EXPECT_FALSE(envelope.violates_upper(Interval::empty_interval()));
}

TEST(SafetySupervisor, CountsAndPreempts) {
  SafetySupervisor supervisor{SafetyEnvelope{10.0, 0.5, 0.5}};
  // In-envelope: command passes through.
  EXPECT_DOUBLE_EQ(supervisor.supervise(1.5, Interval{9.6, 10.4}), 1.5);
  // Upper violation: braking preemption (command forced <= -1).
  EXPECT_LE(supervisor.supervise(2.0, Interval{9.6, 11.0}), -1.0);
  // Lower violation: acceleration preemption (command forced >= +1).
  EXPECT_GE(supervisor.supervise(-2.0, Interval{9.0, 10.4}), 1.0);
  EXPECT_EQ(supervisor.upper_violations(), 1u);
  EXPECT_EQ(supervisor.lower_violations(), 1u);
  EXPECT_EQ(supervisor.rounds(), 3u);
  supervisor.reset_counts();
  EXPECT_EQ(supervisor.rounds(), 0u);
}

TEST(SafetySupervisor, BothSidesViolatedPassesCommand) {
  // A fusion interval violating both bounds gives no directional
  // information; the supervisor counts both and leaves the command alone.
  SafetySupervisor supervisor{SafetyEnvelope{10.0, 0.5, 0.5}};
  EXPECT_DOUBLE_EQ(supervisor.supervise(0.7, Interval{9.0, 11.0}), 0.7);
  EXPECT_EQ(supervisor.upper_violations(), 1u);
  EXPECT_EQ(supervisor.lower_violations(), 1u);
}

}  // namespace
}  // namespace arsf::vehicle
