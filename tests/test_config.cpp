// Unit tests for SystemConfig validation and tick-width derivation
// (core/config.h).

#include <gtest/gtest.h>

#include "core/config.h"

namespace arsf {
namespace {

TEST(Config, MakeConfigDefaults) {
  const SystemConfig config = make_config({5.0, 11.0, 17.0});
  EXPECT_EQ(config.n(), 3u);
  EXPECT_EQ(config.f, 1);  // ceil(3/2) - 1
  EXPECT_EQ(config.sensors[0].name, "s0");
  EXPECT_EQ(config.widths(), (std::vector<double>{5, 11, 17}));
}

TEST(Config, MakeConfigExplicitF) {
  const SystemConfig config = make_config({1.0, 1.0, 1.0, 1.0, 1.0}, 2);
  EXPECT_EQ(config.f, 2);
}

TEST(Config, ValidateRejectsBadF) {
  // f must stay below ceil(n/2) for the boundedness guarantee.
  EXPECT_THROW((void)make_config({1.0, 2.0, 3.0}, 2), std::invalid_argument);
  SystemConfig config = make_config({1.0, 2.0, 3.0});
  config.f = -1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(Config, ValidateRejectsBadWidths) {
  SystemConfig config;
  config.sensors = {{"a", 1.0, false}, {"b", 0.0, false}};
  config.f = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.sensors.clear();
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(Config, TickWidthsExact) {
  const SystemConfig config = make_config({1.0, 2.0, 0.2, 0.2}, 1);
  const auto ticks = tick_widths(config, Quantizer{0.01});
  EXPECT_EQ(ticks, (std::vector<Tick>{100, 200, 20, 20}));
}

TEST(Config, TickWidthsRejectOffGrid) {
  const SystemConfig config = make_config({1.0, 0.25, 0.2}, 1);
  EXPECT_THROW((void)tick_widths(config, Quantizer{0.1}), std::invalid_argument);
}

TEST(Config, SensorSpecValidity) {
  EXPECT_TRUE((SensorSpec{"x", 0.5, false}).valid());
  EXPECT_FALSE((SensorSpec{"x", 0.0, false}).valid());
  EXPECT_FALSE((SensorSpec{"x", -1.0, true}).valid());
}

}  // namespace
}  // namespace arsf
