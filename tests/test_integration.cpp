// End-to-end integration tests: full Table I rows on small configurations,
// cross-checks between independent computation paths, and the paper's
// headline claim (Ascending never worse than Descending) on the enumerated
// grid.

#include <gtest/gtest.h>

#include "sim/experiment.h"

namespace arsf {
namespace {

// Closed-form cross-check: with everyone correct, n=3 and f=1, the fusion
// interval is [median lower bound, median upper bound]; by symmetry the
// expected width is 2 * E[median(U{0..w1}, U{0..w2}, U{0..w3})].
double expected_median_of_discrete_uniforms(Tick w1, Tick w2, Tick w3) {
  double total = 0.0;
  for (Tick a = 0; a <= w1; ++a) {
    for (Tick b = 0; b <= w2; ++b) {
      for (Tick c = 0; c <= w3; ++c) {
        Tick lo = std::min({a, b, c});
        Tick hi = std::max({a, b, c});
        total += static_cast<double>(a + b + c - lo - hi);
      }
    }
  }
  return total / static_cast<double>((w1 + 1) * (w2 + 1) * (w3 + 1));
}

TEST(Integration, NoAttackExpectationMatchesClosedForm) {
  const std::vector<double> widths = {5, 11, 17};
  const sim::Table1Row row = sim::compare_schedules(widths, 1);
  const double closed_form = 2.0 * expected_median_of_discrete_uniforms(5, 11, 17);
  EXPECT_NEAR(row.e_no_attack, closed_form, 1e-9);
}

TEST(Integration, Table1RowN3) {
  const std::vector<double> widths = {5, 11, 17};
  const sim::Table1Row row = sim::compare_schedules(widths, 1);

  // Under Ascending the attacked most-precise sensor transmits first; with
  // fa=1 the passive rule pins her to the correct reading, so the attacked
  // expectation equals the no-attack expectation.
  EXPECT_NEAR(row.e_ascending, row.e_no_attack, 1e-9);
  // Descending hands her full knowledge: strictly more uncertainty.
  EXPECT_GT(row.e_descending, row.e_ascending + 0.1);
  // No world may flag the stealthy attacker.
  EXPECT_EQ(row.detected, 0u);
  // World count: prod(w+1) = 6*12*18.
  EXPECT_EQ(row.worlds, 6u * 12u * 18u);
}

TEST(Integration, Table1RowN4) {
  const std::vector<double> widths = {5, 8, 8, 11};
  const sim::Table1Row row = sim::compare_schedules(widths, 1);
  EXPECT_GE(row.e_descending, row.e_ascending - 1e-9);
  EXPECT_GE(row.e_ascending, row.e_no_attack - 1e-9);
  EXPECT_EQ(row.detected, 0u);
}

TEST(Integration, AscendingNeverWorseAcrossWidthSets) {
  // The paper's Table I shape on a family of small configurations
  // (exhaustive enumeration, exact expectations).
  const std::vector<std::vector<double>> families = {
      {3, 5, 9}, {4, 4, 10}, {2, 7, 8}, {3, 3, 3},
  };
  for (const auto& widths : families) {
    const sim::Table1Row row = sim::compare_schedules(widths, 1);
    EXPECT_GE(row.e_descending, row.e_ascending - 1e-9)
        << "widths {" << widths[0] << "," << widths[1] << "," << widths[2] << "}";
    EXPECT_EQ(row.detected, 0u);
  }
}

}  // namespace
}  // namespace arsf
