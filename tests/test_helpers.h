#pragma once
// Shared fixtures for the attack/sim test suites: compact builders for
// AttackSetup / AttackContext so individual tests read like the paper's
// examples.

#include <algorithm>
#include <limits>
#include <vector>

#include "attack/context.h"
#include "schedule/schedule.h"

namespace arsf::testing {

/// Builds a setup from integer widths with f = ceil(n/2) - 1 (or explicit f),
/// a given slot order and attacked set.
inline attack::AttackSetup make_setup(std::vector<Tick> widths, std::vector<SensorId> attacked,
                                      sched::Order order, int f = -1) {
  attack::AttackSetup setup;
  setup.n = static_cast<int>(widths.size());
  setup.f = f >= 0 ? f : max_bounded_f(setup.n);
  setup.widths = std::move(widths);
  setup.attacked = std::move(attacked);
  setup.order = std::move(order);
  return setup;
}

/// Assembles the context the protocol driver would hand to a policy at
/// @p slot, given every sensor's correct reading (indexed by id).
inline attack::AttackContext make_context(const attack::AttackSetup& setup,
                                          const std::vector<TickInterval>& readings_by_id,
                                          std::size_t slot,
                                          std::vector<TickInterval> my_sent = {}) {
  attack::AttackContext ctx;
  ctx.setup = &setup;
  ctx.delta = TickInterval{std::numeric_limits<Tick>::min(), std::numeric_limits<Tick>::max()};
  for (SensorId id : setup.attacked) ctx.delta = ctx.delta.intersect(readings_by_id[id]);
  ctx.current_slot = slot;
  ctx.my_sent = std::move(my_sent);
  auto is_attacked = [&](SensorId id) {
    return std::find(setup.attacked.begin(), setup.attacked.end(), id) != setup.attacked.end();
  };
  for (std::size_t s = 0; s < setup.order.size(); ++s) {
    const SensorId id = setup.order[s];
    if (s < slot) {
      if (!is_attacked(id)) ctx.seen.push_back(readings_by_id[id]);
      continue;
    }
    if (is_attacked(id)) {
      ctx.remaining_slots.push_back(s);
      ctx.remaining_widths.push_back(setup.widths[id]);
      ctx.remaining_readings.push_back(readings_by_id[id]);
    } else if (s > slot) {
      ctx.unseen_widths.push_back(setup.widths[id]);
      ctx.unseen_actual.push_back(readings_by_id[id]);
    }
  }
  return ctx;
}

}  // namespace arsf::testing
