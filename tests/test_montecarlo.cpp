// Unit tests for the Monte Carlo engine (sim/montecarlo.h).

#include <gtest/gtest.h>

#include "sim/enumerate.h"
#include "sim/montecarlo.h"

namespace arsf::sim {
namespace {

TEST(MonteCarlo, ReproducibleGivenSeed) {
  MonteCarloConfig config;
  config.system = make_config({5.0, 11.0, 17.0});
  config.rounds = 500;
  config.seed = 1234;
  attack::ExpectationPolicy policy_a;
  config.policy = &policy_a;
  const auto a = run_monte_carlo(config);
  attack::ExpectationPolicy policy_b;
  config.policy = &policy_b;
  const auto b = run_monte_carlo(config);
  EXPECT_DOUBLE_EQ(a.width.mean(), b.width.mean());
  EXPECT_EQ(a.detected_rounds, b.detected_rounds);
}

TEST(MonteCarlo, ConvergesToEnumeration) {
  // MC estimate of the no-attack expectation must approach the exact value.
  const SystemConfig system = make_config({5.0, 11.0, 17.0});
  EnumerateConfig exact_config;
  exact_config.system = system;
  exact_config.order = sched::ascending_order(system);
  const double exact = enumerate_expected_width(exact_config).expected_width;

  MonteCarloConfig config;
  config.system = system;
  config.rounds = 40'000;
  config.fa = 0;
  const auto result = run_monte_carlo(config);
  EXPECT_NEAR(result.width.mean(), exact, 4.0 * result.width.sem() + 0.02);
}

TEST(MonteCarlo, AttackedConvergesToEnumeration) {
  const SystemConfig system = make_config({5.0, 11.0, 17.0});
  EnumerateConfig exact_config;
  exact_config.system = system;
  exact_config.order = sched::descending_order(system);
  exact_config.attacked = {0};
  attack::ExpectationPolicy exact_policy;
  exact_config.policy = &exact_policy;
  const double exact = enumerate_expected_width(exact_config).expected_width;

  MonteCarloConfig config;
  config.system = system;
  config.schedule = sched::ScheduleKind::kDescending;
  config.rounds = 20'000;
  config.fa = 1;
  attack::ExpectationPolicy policy;
  config.policy = &policy;
  const auto result = run_monte_carlo(config);
  EXPECT_EQ(result.attacked, (std::vector<SensorId>{0}));
  EXPECT_NEAR(result.width.mean(), exact, 4.0 * result.width.sem() + 0.05);
  EXPECT_EQ(result.detected_rounds, 0u);
}

TEST(MonteCarlo, RandomScheduleBetweenAscendingAndDescending) {
  // The paper's observation behind Table II: a per-round random order sits
  // between the two fixed schedules in expectation.
  MonteCarloConfig base;
  base.system = make_config({5.0, 11.0, 17.0});
  base.rounds = 15'000;
  base.fa = 1;

  auto run_with = [&](sched::ScheduleKind kind) {
    MonteCarloConfig config = base;
    config.schedule = kind;
    attack::ExpectationPolicy policy;
    config.policy = &policy;
    return run_monte_carlo(config).width.mean();
  };
  const double ascending = run_with(sched::ScheduleKind::kAscending);
  const double descending = run_with(sched::ScheduleKind::kDescending);
  const double random = run_with(sched::ScheduleKind::kRandom);
  EXPECT_LT(ascending, descending);
  EXPECT_GT(random, ascending - 0.1);
  EXPECT_LT(random, descending + 0.1);
}

TEST(MonteCarlo, FixedOrderOverridesKind) {
  MonteCarloConfig config;
  config.system = make_config({5.0, 11.0, 17.0});
  config.rounds = 2'000;
  config.fa = 1;
  config.fixed_order = sched::descending_order(config.system);
  config.schedule = sched::ScheduleKind::kAscending;  // ignored
  attack::ExpectationPolicy policy;
  config.policy = &policy;
  const auto fixed = run_monte_carlo(config);

  MonteCarloConfig by_kind = config;
  by_kind.fixed_order.clear();
  by_kind.schedule = sched::ScheduleKind::kDescending;
  attack::ExpectationPolicy policy2;
  by_kind.policy = &policy2;
  const auto kind = run_monte_carlo(by_kind);
  EXPECT_NEAR(fixed.width.mean(), kind.width.mean(), 1e-12);
}

TEST(MonteCarlo, NoPolicyMeansClean) {
  MonteCarloConfig config;
  config.system = make_config({5.0, 11.0, 17.0});
  config.rounds = 1'000;
  config.fa = 1;  // attacked set chosen, but nobody lies without a policy
  const auto result = run_monte_carlo(config);
  EXPECT_DOUBLE_EQ(result.width.mean(), result.width_no_attack.mean());
}

}  // namespace
}  // namespace arsf::sim
