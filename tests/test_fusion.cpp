// Unit tests for Marzullo fusion (core/fusion.h): the examples of the
// paper's Section II-A, sweep corner cases, and the tick hot path.

#include <gtest/gtest.h>

#include "core/fusion.h"

namespace arsf {
namespace {

TEST(Fusion, F0IsIntersection) {
  const std::vector<Interval> intervals = {{0, 10}, {2, 8}, {4, 12}};
  const auto result = fuse(intervals, 0);
  ASSERT_TRUE(result.interval);
  EXPECT_EQ(result.interval->lo, 4);
  EXPECT_EQ(result.interval->hi, 8);
  EXPECT_EQ(result.threshold, 3);
  EXPECT_EQ(result.max_overlap, 3);
}

TEST(Fusion, FNMinus1IsConvexHull) {
  const std::vector<Interval> intervals = {{0, 1}, {5, 6}, {10, 11}};
  const auto result = fuse(intervals, 2);
  ASSERT_TRUE(result.interval);
  EXPECT_EQ(result.interval->lo, 0);
  EXPECT_EQ(result.interval->hi, 11);
}

TEST(Fusion, UncertaintyGrowsWithF) {
  // Fig. 1 structure: five intervals, fusion widens as f increases.
  const std::vector<Interval> intervals = {{0, 4}, {1, 5}, {2, 7}, {3, 8}, {3.5, 9}};
  const auto all = fuse_all_f(intervals);
  ASSERT_EQ(all.size(), intervals.size());
  double previous = -1.0;
  for (const auto& result : all) {
    ASSERT_TRUE(result.interval);
    EXPECT_GE(result.width(), previous);
    previous = result.width();
  }
}

TEST(Fusion, EmptyRegionWhenTooFewOverlap) {
  // Three pairwise-disjoint intervals, f=1: no point lies in two of them.
  const std::vector<Interval> intervals = {{0, 1}, {10, 11}, {20, 21}};
  const auto result = fuse(intervals, 1);
  EXPECT_FALSE(result.interval);
  EXPECT_TRUE(result.segments.empty());
  EXPECT_EQ(result.max_overlap, 1);
}

TEST(Fusion, DisconnectedRegionHullIsReported) {
  // Two clusters of two intervals each; f=2 of n=4 -> threshold 2; the
  // region has two segments and the fusion interval is their hull.
  const std::vector<Interval> intervals = {{0, 2}, {1, 3}, {10, 12}, {11, 13}};
  const auto result = fuse(intervals, 2);
  ASSERT_TRUE(result.interval);
  EXPECT_EQ(result.segments.size(), 2u);
  EXPECT_EQ(result.segments[0], (Interval{1, 2}));
  EXPECT_EQ(result.segments[1], (Interval{11, 12}));
  EXPECT_EQ(*result.interval, (Interval{1, 12}));
}

TEST(Fusion, TouchingEndpointsCount) {
  // Closed intervals: [0,5] and [5,10] share the point 5.
  const std::vector<Interval> intervals = {{0, 5}, {5, 10}};
  const auto result = fuse(intervals, 0);
  ASSERT_TRUE(result.interval);
  EXPECT_EQ(*result.interval, (Interval{5, 5}));
}

TEST(Fusion, ZeroWidthIntervalsSupported) {
  const std::vector<Interval> intervals = {{5, 5}, {4, 6}, {5, 7}};
  const auto result = fuse(intervals, 0);
  ASSERT_TRUE(result.interval);
  EXPECT_EQ(*result.interval, (Interval{5, 5}));
}

TEST(Fusion, SingleSensor) {
  const std::vector<Interval> intervals = {{3, 9}};
  const auto result = fuse(intervals, 0);
  ASSERT_TRUE(result.interval);
  EXPECT_EQ(*result.interval, (Interval{3, 9}));
}

TEST(Fusion, PaperExampleMedianStructure) {
  // n=3, f=1 with pairwise-overlapping intervals: the fusion interval is
  // [2nd smallest lower bound, 2nd largest upper bound].
  const std::vector<Interval> intervals = {{0, 6}, {1, 8}, {2, 10}};
  const auto result = fuse(intervals, 1);
  ASSERT_TRUE(result.interval);
  EXPECT_EQ(*result.interval, (Interval{1, 8}));
}

TEST(Fusion, RejectsInvalidArguments) {
  const std::vector<Interval> intervals = {{0, 1}, {1, 2}};
  EXPECT_THROW((void)fuse(intervals, -1), std::invalid_argument);
  EXPECT_THROW((void)fuse(intervals, 2), std::invalid_argument);
  EXPECT_THROW((void)fuse(std::vector<Interval>{}, 0), std::invalid_argument);
  const std::vector<Interval> with_empty = {{0, 1}, Interval::empty_interval()};
  EXPECT_THROW((void)fuse(with_empty, 0), std::invalid_argument);
}

TEST(FusionTicks, MatchesTemplatePath) {
  const std::vector<TickInterval> intervals = {{-5, 0}, {-3, 8}, {-9, 2}, {1, 6}, {-2, 2}};
  for (int f = 0; f < 5; ++f) {
    const auto reference = fuse_ticks(intervals, f);
    const TickInterval fast = fused_interval_ticks(intervals, f);
    if (reference.interval) {
      EXPECT_EQ(*reference.interval, fast) << "f=" << f;
      EXPECT_EQ(reference.interval->width(), fused_width_ticks(intervals, f));
    } else {
      EXPECT_TRUE(fast.is_empty()) << "f=" << f;
      EXPECT_EQ(fused_width_ticks(intervals, f), -1);
    }
  }
}

TEST(FusionTicks, HeapPathBeyondStackLimit) {
  // More than 16 intervals exercises the vector fallback.
  std::vector<TickInterval> intervals;
  for (Tick i = 0; i < 24; ++i) intervals.push_back(TickInterval{i, i + 24});
  const TickInterval fused = fused_interval_ticks(intervals, 0);
  EXPECT_EQ(fused, (TickInterval{23, 24}));
  const TickInterval hull = fused_interval_ticks(intervals, 23);
  EXPECT_EQ(hull, (TickInterval{0, 47}));
}

TEST(FusionTicks, EmptyRegionReportsMinusOne) {
  const std::vector<TickInterval> intervals = {{0, 1}, {5, 6}, {10, 11}};
  EXPECT_EQ(fused_width_ticks(intervals, 1), -1);
}

}  // namespace
}  // namespace arsf
