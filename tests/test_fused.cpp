// Tests for the fused multi-analysis enumeration (sim/engine/accumulators.h
// and the scenario-layer kFused bundle): closed-form reducer fast lanes
// differentially pinned to the per-world default loop, merge laws (any block
// partition merged in block order == serial walk, bit for bit), the argmax
// lowest-index tie-break, and fused-vs-standalone metric parity over random
// configurations, every registered fused/<name> bundle, and every thread
// count.  Plus the execution-layer contracts: a cancelled/timed-out fused
// run reports status and NEVER partial metrics, and admission control prices
// a fused bundle as ONE world pass.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "scenario/registry.h"
#include "scenario/runner.h"
#include "scenario/sweep.h"
#include "sim/engine/accumulators.h"
#include "sim/engine/engine.h"
#include "support/rng.h"

namespace arsf::sim::engine {
namespace {

// ------------------------------------------------------- engine-level ------

constexpr std::size_t kBins = 7;
constexpr Tick kHistHi = 23;

struct ReducerSet {
  ExpectedWidthReducer expected;
  WidthHistogramReducer histogram{kBins, kHistHi};
  DetectionRateReducer detection;
  WorstCaseReducer worst;

  [[nodiscard]] std::vector<WorldReducer*> pointers() {
    return {&expected, &histogram, &detection, &worst};
  }
};

void expect_same_state(const ReducerSet& a, const ReducerSet& b, const std::string& label) {
  EXPECT_EQ(a.expected.width_sum, b.expected.width_sum) << label;
  EXPECT_EQ(a.expected.min_width, b.expected.min_width) << label;
  EXPECT_EQ(a.expected.max_width, b.expected.max_width) << label;
  EXPECT_EQ(a.expected.empty_worlds, b.expected.empty_worlds) << label;
  EXPECT_EQ(a.expected.detected_worlds, b.expected.detected_worlds) << label;
  EXPECT_EQ(a.histogram.counts, b.histogram.counts) << label;
  EXPECT_EQ(a.histogram.empty_worlds, b.histogram.empty_worlds) << label;
  EXPECT_EQ(a.histogram.total_worlds, b.histogram.total_worlds) << label;
  EXPECT_EQ(a.detection.detected_worlds, b.detection.detected_worlds) << label;
  EXPECT_EQ(a.detection.empty_worlds, b.detection.empty_worlds) << label;
  EXPECT_EQ(a.detection.total_worlds, b.detection.total_worlds) << label;
  EXPECT_EQ(a.worst.max_width, b.worst.max_width) << label;
  EXPECT_EQ(a.worst.argmax_index, b.worst.argmax_index) << label;
}

WorldDomain random_clean_domain(support::Rng& rng) {
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 5));
  std::vector<Tick> widths(n);
  for (auto& w : widths) w = rng.uniform_int(0, 9);
  const int f = static_cast<int>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  return WorldDomain::all_contain_zero(widths, f);
}

// A random CleanRun honoring the engine's contract: the fusion interval is
// never inverted (every world has width >= 0) — true of every run a
// common-point domain emits.
CleanRun random_clean_run(support::Rng& rng) {
  for (;;) {
    CleanRun run;
    run.first_index = static_cast<std::uint64_t>(rng.uniform_int(0, 1000));
    run.length = static_cast<std::uint64_t>(rng.uniform_int(1, 60));
    run.x_first = rng.uniform_int(-20, 20);
    run.w0 = rng.uniform_int(0, 15);
    run.lo_min = rng.uniform_int(-25, 25);
    run.lo_max = run.lo_min + rng.uniform_int(0, 30);
    run.hi_min = rng.uniform_int(-25, 25);
    run.hi_max = run.hi_min + rng.uniform_int(0, 30);
    bool valid = true;
    for (Tick x = run.x_first; x <= run.x_last(); ++x) {
      if (run.width_at(x) < 0) {
        valid = false;
        break;
      }
    }
    if (valid) return run;
  }
}

// The reducer contract's differential law: the closed-form accept_clean_run
// overrides must equal the base-class per-world default loop on ANY
// in-contract run — "correct before it is fast".
TEST(FusedReducers, ClosedFormsMatchDefaultLoopOnRandomRuns) {
  support::Rng rng{0xfced0001ULL};
  for (int trial = 0; trial < 400; ++trial) {
    const CleanRun run = random_clean_run(rng);
    ReducerSet fast;
    ReducerSet reference;
    for (WorldReducer* reducer : fast.pointers()) reducer->accept_clean_run(run);
    // Qualified call: the un-overridden default loop, dispatching to each
    // concrete accept().
    reference.expected.WorldReducer::accept_clean_run(run);
    reference.histogram.WorldReducer::accept_clean_run(run);
    reference.detection.WorldReducer::accept_clean_run(run);
    reference.worst.WorldReducer::accept_clean_run(run);
    expect_same_state(fast, reference, "trial " + std::to_string(trial));
  }
}

// fused_clean_block (run-batched closed forms) vs enumerate_block (per-world
// oracle) over random common-point domains: the two lanes must agree bit for
// bit on every reducer's exact state.
TEST(FusedReducers, FusedCleanBlockMatchesPerWorldEnumeration) {
  support::Rng rng{0xfced0002ULL};
  for (int trial = 0; trial < 60; ++trial) {
    const WorldDomain domain = random_clean_domain(rng);
    const std::uint64_t worlds = domain.world_count();

    ReducerSet fast;
    const std::vector<WorldReducer*> fast_ptr = fast.pointers();
    fused_clean_block(domain, 0, worlds, std::span<WorldReducer* const>{fast_ptr});

    ReducerSet reference;
    const std::vector<WorldReducer*> ref_ptr = reference.pointers();
    enumerate_block(domain, 0, worlds,
                    [&](std::uint64_t index, TickInterval fused, const IncrementalSweep&) {
                      for (WorldReducer* reducer : ref_ptr) {
                        reducer->accept(index, fused, false);
                      }
                    });
    expect_same_state(fast, reference, "trial " + std::to_string(trial));

    // Mass conservation: the histogram never drops a world.
    std::uint64_t mass = fast.histogram.empty_worlds;
    for (const std::uint64_t count : fast.histogram.counts) mass += count;
    EXPECT_EQ(mass, worlds) << "trial " << trial;
    EXPECT_EQ(fast.histogram.total_worlds, worlds) << "trial " << trial;
  }
}

// Merge law: any contiguous block partition, each block folded into a
// clone_empty() reducer and merged in block order, equals the serial walk.
TEST(FusedReducers, BlockPartitionMergeMatchesSerialWalk) {
  support::Rng rng{0xfced0003ULL};
  for (int trial = 0; trial < 40; ++trial) {
    const WorldDomain domain = random_clean_domain(rng);
    const std::uint64_t worlds = domain.world_count();

    ReducerSet serial;
    const std::vector<WorldReducer*> serial_ptr = serial.pointers();
    fused_clean_block(domain, 0, worlds, std::span<WorldReducer* const>{serial_ptr});

    // Random cut points — deliberately NOT the partition_blocks() shape, so
    // the law is pinned for every partition, not one schedule.
    std::vector<std::uint64_t> cuts = {0, worlds};
    const int extra = static_cast<int>(rng.uniform_int(0, 6));
    for (int i = 0; i < extra; ++i) {
      cuts.push_back(static_cast<std::uint64_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(worlds))));
    }
    std::sort(cuts.begin(), cuts.end());

    ReducerSet merged;
    std::vector<WorldReducer*> owned = merged.pointers();
    for (std::size_t b = 0; b + 1 < cuts.size(); ++b) {
      std::vector<std::unique_ptr<WorldReducer>> block;
      std::vector<WorldReducer*> block_ptr;
      for (const WorldReducer* reducer : owned) {
        block.push_back(reducer->clone_empty());
        block_ptr.push_back(block.back().get());
      }
      fused_clean_block(domain, cuts[b], cuts[b + 1],
                        std::span<WorldReducer* const>{block_ptr});
      for (std::size_t i = 0; i < owned.size(); ++i) owned[i]->merge(*block[i]);
    }
    expect_same_state(merged, serial, "trial " + std::to_string(trial));
  }
}

// Equal widths make EVERY world attain the same shape extremes — a dense tie
// field.  The argmax must be the lowest world index both on the serial walk
// and under any block merge.
TEST(FusedReducers, WorstCaseArgmaxKeepsLowestIndexUnderTies) {
  const std::vector<Tick> widths(4, 5);
  const WorldDomain domain = WorldDomain::all_contain_zero(widths, 1);
  const std::uint64_t worlds = domain.world_count();

  // Brute-force reference: first world attaining the maximal width.
  Tick best = std::numeric_limits<Tick>::min();
  std::uint64_t best_index = 0;
  enumerate_block(domain, 0, worlds,
                  [&](std::uint64_t index, TickInterval fused, const IncrementalSweep&) {
                    if (fused.width() > best) {
                      best = fused.width();
                      best_index = index;
                    }
                  });

  WorstCaseReducer serial;
  std::vector<WorldReducer*> serial_ptr = {&serial};
  fused_clean_block(domain, 0, worlds, std::span<WorldReducer* const>{serial_ptr});
  EXPECT_EQ(serial.max_width, best);
  EXPECT_EQ(serial.argmax_index, best_index);

  // Two blocks merged in order: the tie-break must survive the merge.
  WorstCaseReducer left;
  WorstCaseReducer right;
  std::vector<WorldReducer*> left_ptr = {&left};
  std::vector<WorldReducer*> right_ptr = {&right};
  fused_clean_block(domain, 0, worlds / 2, std::span<WorldReducer* const>{left_ptr});
  fused_clean_block(domain, worlds / 2, worlds, std::span<WorldReducer* const>{right_ptr});
  left.merge(right);
  EXPECT_EQ(left.max_width, best);
  EXPECT_EQ(left.argmax_index, best_index);
}

// FusedPass end to end: every thread count reproduces the serial reducers
// bit for bit (the engine's merge-discipline contract).
TEST(FusedReducers, FusedPassIsThreadCountInvariant) {
  const std::vector<Tick> widths = {3, 7, 2, 9, 5};
  const WorldDomain domain = WorldDomain::all_contain_zero(widths, 2);

  ReducerSet serial;
  const std::vector<WorldReducer*> serial_ptr = serial.pointers();
  fused_clean_block(domain, 0, domain.world_count(),
                    std::span<WorldReducer* const>{serial_ptr});

  for (const unsigned threads : {1u, 0u, 2u, 3u, 7u}) {
    FusedPass pass;
    const std::size_t expected = pass.add(std::make_unique<ExpectedWidthReducer>());
    const std::size_t histogram =
        pass.add(std::make_unique<WidthHistogramReducer>(kBins, kHistHi));
    const std::size_t detection = pass.add(std::make_unique<DetectionRateReducer>());
    const std::size_t worst = pass.add(std::make_unique<WorstCaseReducer>());
    pass.run(domain, threads);

    ReducerSet got;
    got.expected = pass.at<ExpectedWidthReducer>(expected);
    got.histogram = pass.at<WidthHistogramReducer>(histogram);
    got.detection = pass.at<DetectionRateReducer>(detection);
    got.worst = pass.at<WorstCaseReducer>(worst);
    expect_same_state(got, serial, "threads " + std::to_string(threads));
  }
}

TEST(FusedReducers, GuardsRejectMisuse) {
  const WorldDomain domain = WorldDomain::all_contain_zero(std::vector<Tick>{2, 3}, 0);
  FusedPass empty;
  EXPECT_THROW(empty.run(domain, 1), std::invalid_argument);
  EXPECT_THROW(FusedPass{}.add(nullptr), std::invalid_argument);

  ExpectedWidthReducer expected;
  const DetectionRateReducer detection;
  EXPECT_THROW(expected.merge(detection), std::invalid_argument);

  EXPECT_THROW(WidthHistogramReducer(0, 10), std::invalid_argument);
  EXPECT_THROW(WidthHistogramReducer(4, 0), std::invalid_argument);
}

}  // namespace
}  // namespace arsf::sim::engine

namespace arsf::scenario {
namespace {

// ----------------------------------------------------- scenario-level ------

attack::ExpectationOptions fast_options() {
  attack::ExpectationOptions options;
  options.max_joint = 1;
  options.max_completions = 8;
  options.candidate_stride = 2;
  return options;
}

constexpr AnalysisKind kAllMembers[] = {
    AnalysisKind::kEnumerate,
    AnalysisKind::kWidthHistogram,
    AnalysisKind::kDetectionRate,
    AnalysisKind::kWidthArgmax,
};

// Every metric the standalone run emits must appear in the fused result with
// a bit-identical value — "emitting each member's metrics under its
// standalone names" is the whole parity contract.
void expect_fused_covers(const ScenarioResult& standalone, const ScenarioResult& fused,
                         const std::string& label) {
  ASSERT_TRUE(standalone.ok()) << label << ": " << standalone.error;
  ASSERT_TRUE(fused.ok()) << label << ": " << fused.error;
  for (const Metric& metric : standalone.metrics) {
    EXPECT_EQ(fused.metric(metric.key), metric.value) << label << " metric " << metric.key;
  }
}

Scenario random_scenario(support::Rng& rng, bool with_policy) {
  Scenario scenario;
  scenario.name = "fuzz/fused";
  scenario.description = "randomized fused differential";
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, with_policy ? 3 : 5));
  scenario.widths.resize(n);
  for (auto& w : scenario.widths) w = static_cast<double>(rng.uniform_int(1, 6));
  scenario.schedule = rng.uniform_int(0, 1) == 0 ? sched::ScheduleKind::kAscending
                                                 : sched::ScheduleKind::kDescending;
  // fa <= f is a paper assumption make_setup enforces; f defaults to
  // ceil(n/2) - 1, which is 0 at n = 2.
  const std::int64_t max_fa = std::min<std::int64_t>(1, (static_cast<std::int64_t>(n) + 1) / 2 - 1);
  scenario.fa = static_cast<std::size_t>(rng.uniform_int(0, max_fa));
  scenario.policy = with_policy ? PolicyKind::kExpectation : PolicyKind::kNone;
  scenario.policy_options = fast_options();
  scenario.analysis = AnalysisKind::kFused;
  scenario.fused_members.assign(std::begin(kAllMembers), std::end(kAllMembers));
  return scenario;
}

// The randomized differential harness: >= 200 random valid configurations,
// each fused bundle compared metric-for-metric against all four standalone
// analyses (including the ORIGINAL EnumerateAnalysis — the oracle the fused
// enumerate member must reproduce bit for bit), at engine threads 1 and 0.
TEST(FusedScenarioParity, RandomizedDifferentialStandaloneVsFused) {
  support::Rng rng{0xfced0100ULL};
  const Runner runner;
  int executed = 0;
  for (int trial = 0; trial < 210; ++trial) {
    // 1 in 3 draws exercises the serial attacker-policy path; the rest the
    // run-batched clean lane (where the closed forms actually fire).
    Scenario fused = random_scenario(rng, trial % 3 == 0);

    fused.num_threads = 1;
    const ScenarioResult serial = runner.run(fused);
    ASSERT_TRUE(serial.ok()) << "trial " << trial << ": " << serial.error;

    fused.num_threads = 0;
    const ScenarioResult pooled = runner.run(fused);
    ASSERT_TRUE(pooled.ok()) << "trial " << trial << ": " << pooled.error;
    ASSERT_EQ(serial.metrics.size(), pooled.metrics.size()) << "trial " << trial;
    for (std::size_t m = 0; m < serial.metrics.size(); ++m) {
      EXPECT_EQ(serial.metrics[m].key, pooled.metrics[m].key) << "trial " << trial;
      EXPECT_EQ(serial.metrics[m].value, pooled.metrics[m].value)
          << "trial " << trial << " metric " << serial.metrics[m].key;
    }

    for (const AnalysisKind member : kAllMembers) {
      Scenario standalone = fused;
      standalone.analysis = member;
      standalone.fused_members.clear();
      standalone.num_threads = 1;
      expect_fused_covers(runner.run(standalone), serial,
                          "trial " + std::to_string(trial) + " member " + to_string(member));
    }
    ++executed;
  }
  EXPECT_GE(executed, 200);
}

// Thread-count invariance matrix for the fused analysis itself, mirroring
// ScenarioParity.AnalysisThreadCountInvarianceMatrix: {0,2,3,7} against the
// serial baseline, bit for bit.
TEST(FusedScenarioParity, ThreadCountInvarianceMatrix) {
  const auto& reg = registry();
  std::vector<Scenario> matrix = {
      smoke_variant(reg.at("fused/table1/r0/ascending")),
      smoke_variant(reg.at("fused/table1/r5/descending")),
      smoke_variant(reg.at("fused/fig4/wc-2-3-4-5")),
  };
  // A policy-free bundle keeps the run-batched clean lane in the matrix.
  Scenario clean;
  clean.name = "matrix/clean";
  clean.description = "clean-lane invariance";
  clean.widths = {3, 7, 2, 9, 5};
  clean.fa = 0;
  clean.policy = PolicyKind::kNone;
  clean.analysis = AnalysisKind::kFused;
  clean.fused_members.assign(std::begin(kAllMembers), std::end(kAllMembers));
  matrix.push_back(clean);

  const Runner runner;
  for (Scenario& scenario : matrix) {
    scenario.policy_options = fast_options();
    scenario.num_threads = 1;
    const ScenarioResult baseline = runner.run(scenario);
    ASSERT_TRUE(baseline.ok()) << scenario.name << ": " << baseline.error;

    for (const unsigned threads : {0u, 2u, 3u, 7u}) {
      scenario.num_threads = threads;
      const ScenarioResult result = runner.run(scenario);
      ASSERT_TRUE(result.ok()) << scenario.name << ": " << result.error;
      ASSERT_EQ(result.metrics.size(), baseline.metrics.size()) << scenario.name;
      for (std::size_t m = 0; m < baseline.metrics.size(); ++m) {
        EXPECT_EQ(result.metrics[m].key, baseline.metrics[m].key) << scenario.name;
        EXPECT_EQ(result.metrics[m].value, baseline.metrics[m].value)
            << scenario.name << " threads " << threads << " metric "
            << baseline.metrics[m].key;
      }
    }
  }
}

// Golden parity: EVERY registered fused/<name> bundle (at smoke settings, so
// the full catalogue stays CI-cheap) must cover each member's standalone
// metrics bit for bit.
TEST(FusedScenarioParity, EveryRegisteredBundleMatchesItsMembers) {
  const Runner runner;
  std::size_t bundles = 0;
  for (const Scenario& registered : registry().all()) {
    if (registered.analysis != AnalysisKind::kFused) continue;
    ++bundles;
    Scenario fused = smoke_variant(registered);
    fused.num_threads = 1;
    const ScenarioResult fused_result = runner.run(fused);
    ASSERT_TRUE(fused_result.ok()) << fused.name << ": " << fused_result.error;

    for (const AnalysisKind member : fused.fused_members) {
      Scenario standalone = fused;
      standalone.analysis = member;
      standalone.fused_members.clear();
      expect_fused_covers(runner.run(standalone), fused_result,
                          fused.name + " member " + to_string(member));
    }
  }
  // The registry carries the Table 1 twins plus the Fig 4 families.
  EXPECT_GE(bundles, 20u);
}

// A fused run that aborts mid-pass reports its status and NEVER partial
// metrics — the PR-6 cancellation invariant carried through FusedPass.
TEST(FusedScenarioParity, CancelledRunReportsStatusNeverPartialMetrics) {
  // (a) Pre-tripped batch cancel: deterministic kCancelled frame.
  sim::engine::CancelToken cancel;
  cancel.cancel();
  const Runner cancelled_runner{{.num_threads = 1, .cancel = &cancel}};
  const std::vector<Scenario> batch = {smoke_variant(registry().at("fused/table1/r0/ascending"))};
  const std::vector<ScenarioResult> frames =
      cancelled_runner.run_batch(std::span<const Scenario>{batch});
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].status, ResultStatus::kCancelled);
  EXPECT_FALSE(frames[0].ok());
  EXPECT_TRUE(frames[0].metrics.empty()) << "a cancelled fused run must not leak metrics";

  // (b) Deadline expiry mid-enumeration: ~85M clean worlds cannot complete
  // in 1 ms, and the clean lane polls per digit-0 run, so the deadline trips
  // long before the pass ends.
  Scenario big;
  big.name = "cancel/fused-big";
  big.description = "deadline-aborted fused pass";
  big.widths = std::vector<double>(6, 20.0);
  big.fa = 0;
  big.policy = PolicyKind::kNone;
  big.analysis = AnalysisKind::kFused;
  big.fused_members.assign(std::begin(kAllMembers), std::end(kAllMembers));
  big.deadline_ms = 1;
  const ScenarioResult timed = Runner{}.run(big);
  EXPECT_EQ(timed.status, ResultStatus::kTimedOut) << timed.error;
  EXPECT_FALSE(timed.ok());
  EXPECT_TRUE(timed.metrics.empty()) << "a timed-out fused run must not leak metrics";
}

// Admission-control cost model: a fused bundle is priced as ONE world pass,
// so it fits a budget that k standalone passes of the same worlds would
// blow through — and a budget below one pass still rejects it.
TEST(FusedScenarioParity, AdmissionPricesFusedBundleAsOnePass) {
  Scenario fused = smoke_variant(registry().at("fused/table1/r0/ascending"));
  fused.policy_options = fast_options();
  fused.num_threads = 1;

  Scenario standalone = fused;
  standalone.analysis = AnalysisKind::kEnumerate;
  standalone.fused_members.clear();

  const std::uint64_t one_pass = estimated_worlds(standalone);
  ASSERT_GT(one_pass, 0u);
  // The cost model: k members, still one enumeration.
  EXPECT_EQ(estimated_worlds(fused), one_pass);

  // Budget = one pass: the 3-member bundle is admitted, although running its
  // members standalone would cost 3x the budget.
  ASSERT_GT(fused.fused_members.size() * one_pass, one_pass);
  const Runner admitting{{.admission_budget = one_pass}};
  const ScenarioResult admitted = admitting.run(fused);
  EXPECT_TRUE(admitted.ok()) << admitted.error;
  EXPECT_EQ(admitted.status, ResultStatus::kOk);

  // Budget below one pass: rejected without running, no metrics.
  const Runner rejecting{{.admission_budget = one_pass - 1}};
  const ScenarioResult rejected = rejecting.run(fused);
  EXPECT_EQ(rejected.status, ResultStatus::kRejected);
  EXPECT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.metrics.empty());
}

// JSON round trip + validation diagnostics for the fused scenario shape.
TEST(FusedScenarioParity, JsonRoundTripAndValidation) {
  Scenario fused = registry().at("fused/table1/r0/ascending");
  const Scenario parsed = Scenario::from_json(fused.to_json());
  EXPECT_EQ(parsed, fused);

  Scenario bad = fused;
  bad.fused_members = {AnalysisKind::kEnumerate, AnalysisKind::kEnumerate};
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad.fused_members = {AnalysisKind::kWorstCase};
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad.fused_members.clear();
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  Scenario stray = fused;
  stray.analysis = AnalysisKind::kEnumerate;  // members only belong to kFused
  EXPECT_THROW(stray.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace arsf::scenario
