// Tests for the combined faults + attacks extension (sim/resilience.h).

#include <gtest/gtest.h>

#include "sim/resilience.h"

namespace arsf::sim {
namespace {

ResilienceConfig base_config() {
  ResilienceConfig config;
  config.system = make_config({5.0, 8.0, 11.0, 14.0, 17.0});  // n=5, f=2
  config.rounds = 1500;
  config.fault.kind = sensors::FaultKind::kOffset;
  config.fault.magnitude = 30.0;
  config.fault.p_recover = 0.2;
  return config;
}

TEST(Resilience, NoFaultsNoAttackIsPerfect) {
  ResilienceConfig config = base_config();
  config.fa = 0;
  config.fault.kind = sensors::FaultKind::kNone;
  const auto result = run_resilience(config);
  EXPECT_EQ(result.truth_contained, result.rounds);
  EXPECT_EQ(result.faulty_present, 0u);
  EXPECT_EQ(result.attacked_flagged, 0u);
  EXPECT_EQ(result.healthy_flagged, 0u);
  EXPECT_EQ(result.over_budget, 0u);
}

TEST(Resilience, AttackAloneKeepsContainment) {
  // fa=1 <= f=2 and no faults: the fusion interval must always contain the
  // truth and the stealthy attacker is never flagged.
  ResilienceConfig config = base_config();
  config.fa = 1;
  config.fault.kind = sensors::FaultKind::kNone;
  attack::ExpectationPolicy policy;
  config.policy = &policy;
  const auto result = run_resilience(config);
  EXPECT_EQ(result.truth_contained, result.rounds);
  EXPECT_EQ(result.attacked_flagged, 0u);
  EXPECT_EQ(result.healthy_flagged, 0u);
}

TEST(Resilience, FaultsWithinBudgetAreContainedAndDiscarded) {
  // One attacked + occasionally one faulty sensor stays within f=2; the
  // guarantee must hold on every round that is not over budget.
  ResilienceConfig config = base_config();
  config.fa = 1;
  config.fault.p_enter = 0.02;
  attack::ExpectationPolicy policy;
  config.policy = &policy;
  const auto result = run_resilience(config);
  EXPECT_GE(result.truth_contained + result.over_budget, result.rounds);
  // The stealth certificates and the healthy sensors survive any round that
  // stays within the fault budget; only over-budget rounds can flag them.
  EXPECT_LE(result.attacked_flagged, result.over_budget);
  EXPECT_LE(result.healthy_flagged, result.over_budget);
  EXPECT_GT(result.faulty_present, 0u);
  // Hard 30-tick offsets land far outside; most faulty rounds discard one.
  EXPECT_GT(result.faulty_flagged, result.faulty_present / 2);
}

TEST(Resilience, HeavyFaultsDegradeContainment) {
  ResilienceConfig mild = base_config();
  mild.fa = 1;
  mild.fault.p_enter = 0.01;
  attack::ExpectationPolicy mild_policy;
  mild.policy = &mild_policy;
  ResilienceConfig heavy = base_config();
  heavy.fa = 1;
  heavy.fault.p_enter = 0.3;
  attack::ExpectationPolicy heavy_policy;
  heavy.policy = &heavy_policy;

  const auto mild_result = run_resilience(mild);
  const auto heavy_result = run_resilience(heavy);
  EXPECT_GT(heavy_result.over_budget, mild_result.over_budget);
  EXPECT_LT(heavy_result.containment_rate(), 1.0);
  EXPECT_GE(mild_result.containment_rate(), heavy_result.containment_rate());
}

TEST(Resilience, StuckAtFaultsAreHarderToDetect) {
  // A stuck-at value is a *plausible* stale measurement, so it is discarded
  // far less often than a hard offset — the motivation for the paper's
  // footnote-1 fault model over time.
  ResilienceConfig offset = base_config();
  offset.fa = 0;
  offset.fault.p_enter = 0.05;
  const auto offset_result = run_resilience(offset);

  ResilienceConfig stuck = base_config();
  stuck.fa = 0;
  stuck.fault.p_enter = 0.05;
  stuck.fault.kind = sensors::FaultKind::kStuckAt;
  const auto stuck_result = run_resilience(stuck);

  ASSERT_GT(offset_result.faulty_present, 0u);
  ASSERT_GT(stuck_result.faulty_present, 0u);
  const double offset_rate = static_cast<double>(offset_result.faulty_flagged) /
                             static_cast<double>(offset_result.faulty_present);
  const double stuck_rate = static_cast<double>(stuck_result.faulty_flagged) /
                            static_cast<double>(stuck_result.faulty_present);
  EXPECT_LT(stuck_rate, offset_rate);
}

TEST(Resilience, DeterministicGivenSeed) {
  ResilienceConfig config = base_config();
  config.fa = 1;
  config.fault.p_enter = 0.05;
  attack::ExpectationPolicy policy_a;
  config.policy = &policy_a;
  const auto a = run_resilience(config);
  attack::ExpectationPolicy policy_b;
  config.policy = &policy_b;
  const auto b = run_resilience(config);
  EXPECT_EQ(a.truth_contained, b.truth_contained);
  EXPECT_DOUBLE_EQ(a.width.mean(), b.width.mean());
}

}  // namespace
}  // namespace arsf::sim
