// Unit tests for the optimising policies (attack/expectation.h): problem (1)
// exactness with full knowledge, problem (2) behaviour under uncertainty,
// memoisation, and the oracle upper bound.

#include <gtest/gtest.h>

#include <set>

#include "attack/expectation.h"
#include "core/fusion.h"
#include "test_helpers.h"

namespace arsf::attack {
namespace {

using testing::make_context;
using testing::make_setup;

// Brute-force optimum of problem (1): attacker sees everything, single
// attacked interval; maximise the final fused width over every stealthy
// placement on a wide grid.
Tick brute_force_full_info(const AttackSetup& setup,
                           const std::vector<TickInterval>& readings, SensorId attacked_id) {
  const std::size_t slot = sched::slot_of(setup.order, attacked_id);
  const auto ctx = make_context(setup, readings, slot);
  Tick best = -1;
  for (Tick lo = -60; lo <= 60; ++lo) {
    const TickInterval candidate{lo, lo + setup.widths[attacked_id]};
    const std::vector<TickInterval> plan = {candidate};
    if (!plan_feasible(ctx, plan)) continue;
    std::vector<TickInterval> all = readings;
    all[attacked_id] = candidate;
    best = std::max(best, fused_width_ticks(all, setup.f));
  }
  return best;
}

TEST(Expectation, SolvesProblem1WhenLast) {
  // Attacker (width 5) transmits last and sees both correct intervals: the
  // policy must achieve the brute-force optimum of problem (1).
  const auto setup = make_setup({5, 11, 17}, {0}, {2, 1, 0});
  support::Rng rng{1};
  support::Rng world_rng{99};
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<TickInterval> readings(3);
    for (SensorId id = 0; id < 3; ++id) {
      const Tick lo = world_rng.uniform_int(-setup.widths[id], 0);
      readings[id] = TickInterval{lo, lo + setup.widths[id]};
    }
    ExpectationPolicy policy;
    const auto ctx = make_context(setup, readings, 2);
    const TickInterval decision = policy.decide(ctx, rng);
    std::vector<TickInterval> all = readings;
    all[0] = decision;
    const Tick achieved = fused_width_ticks(all, setup.f);
    const Tick optimum = brute_force_full_info(setup, readings, 0);
    EXPECT_EQ(achieved, optimum) << "trial " << trial;
  }
}

TEST(Expectation, PassiveFirstSlotWithNoSlackSendsTruth) {
  // fa=1, attacker first: delta is her own reading and has her full width,
  // so the only stealthy interval is the truth (Table I's Ascending pin).
  const auto setup = make_setup({5, 11, 17}, {0}, {0, 1, 2});
  const std::vector<TickInterval> readings = {{-4, 1}, {-5, 6}, {-10, 7}};
  ExpectationPolicy policy;
  support::Rng rng{1};
  const auto ctx = make_context(setup, readings, 0);
  EXPECT_EQ(policy.decide(ctx, rng), readings[0]);
}

TEST(Expectation, TwoCompromisedGainSlackFromDelta) {
  // fa=2: delta is the intersection of two width-5 readings, so unless the
  // readings coincide there is room to shift while containing delta.
  const auto setup = make_setup({5, 5, 5, 14, 17}, {0, 1}, {0, 1, 2, 3, 4}, 2);
  const std::vector<TickInterval> readings = {{-5, 0}, {-2, 3}, {-4, 1}, {-10, 4}, {-12, 5}};
  // delta = [-2, 0].
  ExpectationPolicy policy;
  support::Rng rng{1};
  const auto ctx = make_context(setup, readings, 0);
  const TickInterval decision = policy.decide(ctx, rng);
  EXPECT_TRUE(decision.contains(TickInterval{-2, 0}));  // passive certificate
  EXPECT_EQ(decision.width(), 5);
}

TEST(Expectation, MemoizationReusesCanonicalStates) {
  const auto setup = make_setup({5, 11, 17}, {0}, {0, 1, 2});
  ExpectationPolicy policy;
  support::Rng rng{1};
  const std::vector<TickInterval> readings_a = {{-4, 1}, {-5, 6}, {-10, 7}};
  const auto ctx_a = make_context(setup, readings_a, 0);
  (void)policy.decide(ctx_a, rng);
  const std::size_t after_first = policy.memo_size();
  EXPECT_EQ(after_first, 1u);
  // A translated world must hit the same canonical entry.
  std::vector<TickInterval> readings_b;
  for (const auto& iv : readings_a) readings_b.push_back(iv.translated(7));
  const auto ctx_b = make_context(setup, readings_b, 0);
  const TickInterval decision_b = policy.decide(ctx_b, rng);
  EXPECT_EQ(policy.memo_size(), after_first);
  // And the decision must be the translated decision.
  const TickInterval decision_a = policy.decide(ctx_a, rng);
  EXPECT_EQ(decision_b, decision_a.translated(7));
}

TEST(Expectation, ResetClearsMemo) {
  const auto setup = make_setup({5, 11, 17}, {0}, {0, 1, 2});
  ExpectationPolicy policy;
  support::Rng rng{1};
  const std::vector<TickInterval> readings = {{-4, 1}, {-5, 6}, {-10, 7}};
  (void)policy.decide(make_context(setup, readings, 0), rng);
  EXPECT_GT(policy.memo_size(), 0u);
  policy.reset();
  EXPECT_EQ(policy.memo_size(), 0u);
}

TEST(Expectation, ExpectedWidthOfPlanMatchesManualAverage) {
  // One unseen width-2 sensor; verify the posterior average by hand.
  const auto setup = make_setup({2, 3, 2}, {0}, {0, 1, 2});
  const std::vector<TickInterval> readings = {{-1, 1}, {-2, 1}, {-1, 1}};
  const auto ctx = make_context(setup, readings, 0);
  ExpectationPolicy policy;
  const std::vector<TickInterval> plan = {readings[0]};

  // Manual: t uniform over delta=[-1,1]; unseen: s1 (width 3) lower in
  // [t-3, t]; s2 (width 2) lower in [t-2, t]; fixed: plan = [-1,1]; f=1.
  double manual_total = 0.0;
  std::size_t manual_count = 0;
  for (Tick t = -1; t <= 1; ++t) {
    for (Tick lo1 = t - 3; lo1 <= t; ++lo1) {
      for (Tick lo2 = t - 2; lo2 <= t; ++lo2) {
        const std::vector<TickInterval> all = {{-1, 1}, {lo1, lo1 + 3}, {lo2, lo2 + 2}};
        const Tick width = fused_width_ticks(all, 1);
        manual_total += width > 0 ? static_cast<double>(width) : 0.0;
        ++manual_count;
      }
    }
  }
  const double manual = manual_total / static_cast<double>(manual_count);
  EXPECT_NEAR(policy.expected_width_of_plan(ctx, plan), manual, 1e-12);
}

TEST(Expectation, SampledCompletionsApproximateExact) {
  const auto setup = make_setup({5, 11, 17}, {0}, {1, 0, 2});
  const std::vector<TickInterval> readings = {{-4, 1}, {-5, 6}, {-10, 7}};
  const auto ctx = make_context(setup, readings, 1);

  ExpectationPolicy exact;
  ExpectationOptions sampled_options;
  sampled_options.max_completions = 400;
  ExpectationPolicy sampled{sampled_options};

  const std::vector<TickInterval> plan = {readings[0]};
  const double exact_value = exact.expected_width_of_plan(ctx, plan);
  const double sampled_value = sampled.expected_width_of_plan(ctx, plan);
  EXPECT_NEAR(sampled_value, exact_value, 0.15 * exact_value + 0.5);
}

TEST(Expectation, OracleAtLeastAsStrongAsBayesian) {
  // With the actual future placements revealed, the oracle's achieved width
  // must never fall below the honest Bayesian attacker's on the same world.
  const auto setup = make_setup({5, 11, 17}, {0}, {1, 0, 2});
  support::Rng rng{3};
  support::Rng world_rng{17};
  double oracle_total = 0.0;
  double bayes_total = 0.0;
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<TickInterval> readings(3);
    for (SensorId id = 0; id < 3; ++id) {
      const Tick lo = world_rng.uniform_int(-setup.widths[id], 0);
      readings[id] = TickInterval{lo, lo + setup.widths[id]};
    }
    const auto ctx = make_context(setup, readings, 1);
    ExpectationPolicy bayes;
    OraclePolicy oracle;
    auto achieved = [&](AttackPolicy& policy) {
      std::vector<TickInterval> all = readings;
      all[0] = policy.decide(ctx, rng);
      const Tick width = fused_width_ticks(all, setup.f);
      return width > 0 ? static_cast<double>(width) : 0.0;
    };
    bayes_total += achieved(bayes);
    oracle_total += achieved(oracle);
  }
  EXPECT_GE(oracle_total, bayes_total - 1e-9);
}

TEST(Expectation, RandomTieBreakExploresBothSides) {
  // A symmetric full-information state has left- and right-extending optima;
  // with random_tie_break the policy must pick both across repetitions.
  const auto setup = make_setup({4, 8, 8}, {0}, {2, 1, 0});
  const std::vector<TickInterval> readings = {{-2, 2}, {-4, 4}, {-4, 4}};
  ExpectationOptions options;
  options.random_tie_break = true;
  options.memoize = false;
  ExpectationPolicy policy{options};
  support::Rng rng{11};
  std::set<Tick> lows;
  for (int i = 0; i < 60; ++i) {
    const auto ctx = make_context(setup, readings, 2);
    lows.insert(policy.decide(ctx, rng).lo);
  }
  EXPECT_GT(lows.size(), 1u);
}

TEST(Expectation, FactoryNames) {
  EXPECT_EQ(make_expectation_policy()->name(), "expectation");
  EXPECT_EQ(make_oracle_policy()->name(), "oracle");
}

}  // namespace
}  // namespace arsf::attack
