// Unit tests for communication schedules and attacked-set selection
// (schedule/schedule.h).

#include <gtest/gtest.h>

#include "schedule/schedule.h"

namespace arsf::sched {
namespace {

SystemConfig five_sensor_config() { return make_config({5.0, 5.0, 5.0, 14.0, 20.0}); }

TEST(Schedule, AscendingOrdersByWidthThenId) {
  const auto config = five_sensor_config();
  EXPECT_EQ(ascending_order(config), (Order{0, 1, 2, 3, 4}));
}

TEST(Schedule, DescendingOrdersByWidthThenId) {
  const auto config = five_sensor_config();
  EXPECT_EQ(descending_order(config), (Order{4, 3, 0, 1, 2}));
}

TEST(Schedule, TrustedLast) {
  SystemConfig config = make_config({2.0, 1.0, 3.0});
  config.sensors[1].trusted = true;  // most precise sensor is the trusted one
  EXPECT_EQ(trusted_last_order(config), (Order{0, 2, 1}));
}

TEST(Schedule, RandomOrderIsPermutation) {
  support::Rng rng{5};
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(is_valid_order(random_order(6, rng), 6));
  }
}

TEST(Schedule, IsValidOrderRejects) {
  EXPECT_FALSE(is_valid_order({0, 1, 1}, 3));  // duplicate
  EXPECT_FALSE(is_valid_order({0, 1, 5}, 3));  // out of range
  EXPECT_FALSE(is_valid_order({0, 1}, 3));     // wrong size
  EXPECT_TRUE(is_valid_order({2, 0, 1}, 3));
}

TEST(Schedule, SlotOf) {
  const Order order{2, 0, 1};
  EXPECT_EQ(slot_of(order, 2), 0u);
  EXPECT_EQ(slot_of(order, 0), 1u);
  EXPECT_EQ(slot_of(order, 1), 2u);
  EXPECT_THROW((void)slot_of(order, 9), std::out_of_range);
}

TEST(ScheduleGenerator, FixedRepeats) {
  auto generator = ScheduleGenerator::fixed({1, 0, 2});
  EXPECT_EQ(generator.next(), (Order{1, 0, 2}));
  EXPECT_EQ(generator.next(), (Order{1, 0, 2}));
  EXPECT_EQ(generator.kind(), ScheduleKind::kFixed);
}

TEST(ScheduleGenerator, RandomReshufflesDeterministically) {
  const auto config = five_sensor_config();
  auto a = ScheduleGenerator::of_kind(ScheduleKind::kRandom, config, 99);
  auto b = ScheduleGenerator::of_kind(ScheduleKind::kRandom, config, 99);
  bool any_different = false;
  Order previous;
  for (int i = 0; i < 10; ++i) {
    const Order& order_a = a.next();
    EXPECT_EQ(order_a, b.next());  // same seed -> same stream
    EXPECT_TRUE(is_valid_order(order_a, config.n()));
    if (i > 0 && order_a != previous) any_different = true;
    previous = order_a;
  }
  EXPECT_TRUE(any_different);  // actually reshuffles across rounds
}

TEST(ScheduleGenerator, KindsProduceExpectedFirstOrder) {
  const auto config = five_sensor_config();
  EXPECT_EQ(ScheduleGenerator::of_kind(ScheduleKind::kAscending, config).next(),
            ascending_order(config));
  EXPECT_EQ(ScheduleGenerator::of_kind(ScheduleKind::kDescending, config).next(),
            descending_order(config));
}

TEST(AttackedSet, SmallestWidthsBreaksTiesTowardLateSlots) {
  const auto config = five_sensor_config();
  // Ascending order 0,1,2,3,4: among the three width-5 sensors the latest
  // slots are ids 2 then 1.
  const auto attacked =
      choose_attacked_set(config, ascending_order(config), 2, AttackedSetRule::kSmallestWidths);
  EXPECT_EQ(attacked, (std::vector<SensorId>{1, 2}));
  // Descending order 4,3,0,1,2: the latest width-5 slots are ids 2 then 1.
  const auto attacked_desc =
      choose_attacked_set(config, descending_order(config), 2, AttackedSetRule::kSmallestWidths);
  EXPECT_EQ(attacked_desc, (std::vector<SensorId>{1, 2}));
}

TEST(AttackedSet, LargestWidths) {
  const auto config = five_sensor_config();
  const auto attacked =
      choose_attacked_set(config, ascending_order(config), 2, AttackedSetRule::kLargestWidths);
  EXPECT_EQ(attacked, (std::vector<SensorId>{3, 4}));
}

TEST(AttackedSet, SlotRules) {
  const auto config = five_sensor_config();
  const Order order = descending_order(config);  // 4,3,0,1,2
  EXPECT_EQ(choose_attacked_set(config, order, 2, AttackedSetRule::kFirstSlots),
            (std::vector<SensorId>{3, 4}));
  EXPECT_EQ(choose_attacked_set(config, order, 2, AttackedSetRule::kLastSlots),
            (std::vector<SensorId>{1, 2}));
}

TEST(AttackedSet, RandomNeedsRngAndIsValid) {
  const auto config = five_sensor_config();
  EXPECT_THROW(
      (void)choose_attacked_set(config, ascending_order(config), 2, AttackedSetRule::kRandom),
      std::invalid_argument);
  support::Rng rng{3};
  const auto attacked =
      choose_attacked_set(config, ascending_order(config), 2, AttackedSetRule::kRandom, &rng);
  EXPECT_EQ(attacked.size(), 2u);
  EXPECT_LT(attacked[0], attacked[1]);  // sorted, unique
}

TEST(AttackedSet, EmptyOrderFallsBackToIds) {
  const auto config = five_sensor_config();
  const auto attacked = choose_attacked_set(config, {}, 1, AttackedSetRule::kSmallestWidths);
  // Ties broken by id descending (stands in for "latest slot").
  EXPECT_EQ(attacked, (std::vector<SensorId>{2}));
}

TEST(Names, ToString) {
  EXPECT_EQ(to_string(ScheduleKind::kAscending), "ascending");
  EXPECT_EQ(to_string(ScheduleKind::kDescending), "descending");
  EXPECT_EQ(to_string(ScheduleKind::kRandom), "random");
  EXPECT_EQ(to_string(AttackedSetRule::kSmallestWidths), "smallest-widths");
}

}  // namespace
}  // namespace arsf::sched
