// Unit tests for the exact enumeration engine (sim/enumerate.h).

#include <gtest/gtest.h>

#include "sim/enumerate.h"

namespace arsf::sim {
namespace {

TEST(Enumerate, WorldCount) {
  EXPECT_EQ(world_count(make_config({5.0, 11.0, 17.0}), Quantizer{1.0}), 6u * 12u * 18u);
  EXPECT_EQ(world_count(make_config({1.0, 1.0, 1.0}), Quantizer{0.5}), 27u);
}

TEST(Enumerate, NoAttackMatchesDirectAverage) {
  // Independent direct computation of E|S| for n=3 f=1 all-correct.
  const SystemConfig system = make_config({3.0, 4.0, 5.0});
  double total = 0.0;
  std::uint64_t count = 0;
  for (Tick a = -3; a <= 0; ++a) {
    for (Tick b = -4; b <= 0; ++b) {
      for (Tick c = -5; c <= 0; ++c) {
        const std::vector<TickInterval> world = {{a, a + 3}, {b, b + 4}, {c, c + 5}};
        total += static_cast<double>(fused_width_ticks(world, 1));
        ++count;
      }
    }
  }
  EnumerateConfig config;
  config.system = system;
  config.order = sched::ascending_order(system);
  const EnumerateResult result = enumerate_expected_width(config);
  EXPECT_EQ(result.worlds, count);
  EXPECT_NEAR(result.expected_width, total / static_cast<double>(count), 1e-12);
  EXPECT_NEAR(result.expected_width_no_attack, result.expected_width, 1e-12);
  EXPECT_EQ(result.detected_worlds, 0u);
}

TEST(Enumerate, AttackNeverShrinksExpectation) {
  const SystemConfig system = make_config({4.0, 6.0, 9.0});
  for (const auto& order : {sched::ascending_order(system), sched::descending_order(system)}) {
    EnumerateConfig config;
    config.system = system;
    config.order = order;
    config.attacked = {0};
    attack::ExpectationPolicy policy;
    config.policy = &policy;
    const EnumerateResult result = enumerate_expected_width(config);
    EXPECT_GE(result.expected_width, result.expected_width_no_attack - 1e-12);
    EXPECT_EQ(result.detected_worlds, 0u);
    EXPECT_EQ(result.empty_fusion_worlds, 0u);
  }
}

TEST(Enumerate, OracleDominatesBayesian) {
  const SystemConfig system = make_config({4.0, 6.0, 9.0});
  EnumerateConfig config;
  config.system = system;
  config.order = sched::ascending_order(system);
  config.attacked = {0};

  attack::ExpectationPolicy bayes;
  config.policy = &bayes;
  const double bayes_width = enumerate_expected_width(config).expected_width;

  attack::OraclePolicy oracle;
  config.policy = &oracle;
  config.oracle = true;
  const double oracle_width = enumerate_expected_width(config).expected_width;

  EXPECT_GE(oracle_width, bayes_width - 1e-9);
}

TEST(Enumerate, StepScalesResults) {
  // Same configuration expressed on a finer grid: expectation in value units
  // converges to the same scale (not equal — finer grid, more placements —
  // but must stay within a tick of the coarse result).
  const SystemConfig system = make_config({2.0, 3.0, 4.0});
  EnumerateConfig coarse;
  coarse.system = system;
  coarse.order = sched::ascending_order(system);
  const double coarse_width = enumerate_expected_width(coarse).expected_width;

  EnumerateConfig fine = coarse;
  fine.quant = Quantizer{0.5};
  const double fine_width = enumerate_expected_width(fine).expected_width;
  EXPECT_NEAR(fine_width, coarse_width, 0.5);
}

TEST(Enumerate, GuardsAgainstHugeWorlds) {
  EnumerateConfig config;
  config.system = make_config({100.0, 100.0, 100.0, 100.0, 100.0});
  config.order = sched::ascending_order(config.system);
  config.max_worlds = 1000;
  EXPECT_THROW((void)enumerate_expected_width(config), std::invalid_argument);
}

TEST(Enumerate, RejectsBadOrder) {
  EnumerateConfig config;
  config.system = make_config({2.0, 3.0, 4.0});
  config.order = {0, 0, 1};
  EXPECT_THROW((void)enumerate_expected_width(config), std::invalid_argument);
}

TEST(Enumerate, MinMaxBracketMean) {
  const SystemConfig system = make_config({3.0, 5.0, 7.0});
  EnumerateConfig config;
  config.system = system;
  config.order = sched::descending_order(system);
  config.attacked = {0};
  attack::ExpectationPolicy policy;
  config.policy = &policy;
  const EnumerateResult result = enumerate_expected_width(config);
  EXPECT_LE(result.min_width, result.expected_width);
  EXPECT_GE(result.max_width, result.expected_width);
}

}  // namespace
}  // namespace arsf::sim
