// Unit tests for random fault injection (sensors/fault.h) — the paper's
// announced extension — and its interaction with fusion and detection.

#include <gtest/gtest.h>

#include "core/detection.h"
#include "sensors/fault.h"
#include "sensors/models.h"

namespace arsf::sensors {
namespace {

AbstractSensor unit_sensor() {
  return AbstractSensor{SensorSpec{"s", 1.0, false}, NoiseModel::kUniform};
}

TEST(Fault, NoneIsIdentity) {
  FaultInjector injector{{FaultProcess{}}, 1};
  support::Rng rng{1};
  const auto sensor = unit_sensor();
  const Reading healthy = sensor.sample(10.0, rng);
  const Reading result = injector.apply(0, sensor, healthy, 0);
  EXPECT_DOUBLE_EQ(result.measurement, healthy.measurement);
  EXPECT_FALSE(injector.faulty(0));
}

TEST(Fault, OffsetBreaksGuaranteeWhileActive) {
  FaultProcess process;
  process.kind = FaultKind::kOffset;
  process.p_enter = 1.0;   // fault immediately
  process.p_recover = 0.0; // never recover
  process.magnitude = 5.0;
  FaultInjector injector{{process}, 2};
  support::Rng rng{2};
  const auto sensor = unit_sensor();
  const Reading healthy = sensor.sample(10.0, rng);
  const Reading faulty = injector.apply(0, sensor, healthy, 0);
  EXPECT_TRUE(injector.faulty(0));
  EXPECT_DOUBLE_EQ(faulty.measurement, healthy.measurement + 5.0);
  EXPECT_FALSE(faulty.interval.contains(10.0));
  EXPECT_NEAR(faulty.interval.width(), 1.0, 1e-12);  // advertised width kept
}

TEST(Fault, StuckAtFreezesValue) {
  FaultProcess process;
  process.kind = FaultKind::kStuckAt;
  process.p_enter = 1.0;
  FaultInjector injector{{process}, 3};
  support::Rng rng{3};
  const auto sensor = unit_sensor();
  const Reading first = injector.apply(0, sensor, sensor.sample(10.0, rng), 0);
  const Reading later = injector.apply(0, sensor, sensor.sample(42.0, rng), 1);
  EXPECT_DOUBLE_EQ(later.measurement, first.measurement);
}

TEST(Fault, DriftGrowsWithRounds) {
  FaultProcess process;
  process.kind = FaultKind::kDrift;
  process.p_enter = 1.0;
  process.magnitude = 0.5;
  FaultInjector injector{{process}, 4};
  support::Rng rng{4};
  const auto sensor = unit_sensor();
  Reading base = sensor.sample(10.0, rng);
  base.measurement = 10.0;
  base.interval = sensor.interval_for(10.0);
  const Reading at0 = injector.apply(0, sensor, base, 0);
  const Reading at4 = injector.apply(0, sensor, base, 4);
  EXPECT_DOUBLE_EQ(at0.measurement, 10.0);
  EXPECT_DOUBLE_EQ(at4.measurement, 12.0);  // 0.5/round * 4 rounds
}

TEST(Fault, RecoveryReturnsHealthy) {
  FaultProcess process;
  process.kind = FaultKind::kOffset;
  process.p_enter = 1.0;
  process.p_recover = 1.0;  // recovers after one round in fault
  process.magnitude = 3.0;
  FaultInjector injector{{process}, 5};
  support::Rng rng{5};
  const auto sensor = unit_sensor();
  const Reading r0 = injector.apply(0, sensor, sensor.sample(10.0, rng), 0);
  EXPECT_TRUE(injector.faulty(0));
  (void)r0;
  const Reading healthy = sensor.sample(10.0, rng);
  const Reading r1 = injector.apply(0, sensor, healthy, 1);
  EXPECT_FALSE(injector.faulty(0));
  EXPECT_DOUBLE_EQ(r1.measurement, healthy.measurement);
}

TEST(Fault, NumFaultyAndReset) {
  FaultProcess on;
  on.kind = FaultKind::kOffset;
  on.p_enter = 1.0;
  on.magnitude = 1.0;
  FaultInjector injector{{on, on, FaultProcess{}}, 6};
  support::Rng rng{6};
  const auto sensor = unit_sensor();
  for (std::size_t id = 0; id < 3; ++id) {
    (void)injector.apply(id, sensor, sensor.sample(0.0, rng), 0);
  }
  EXPECT_EQ(injector.num_faulty(), 2);
  injector.reset();
  EXPECT_EQ(injector.num_faulty(), 0);
}

TEST(Fault, DetectionCatchesLargeFaults) {
  // Five sensors, one faulted far away: fusion with f=1 flags it.
  support::Rng rng{7};
  const auto sensor = unit_sensor();
  FaultProcess process;
  process.kind = FaultKind::kOffset;
  process.p_enter = 1.0;
  process.magnitude = 10.0;
  FaultInjector injector{{process, {}, {}, {}, {}}, 8};

  std::vector<Interval> intervals;
  for (std::size_t id = 0; id < 5; ++id) {
    Reading reading = sensor.sample(0.0, rng);
    reading = injector.apply(id, sensor, reading, 0);
    intervals.push_back(reading.interval);
  }
  const auto report = fuse_and_detect(intervals, 1);
  EXPECT_EQ(report.num_flagged, 1);
  EXPECT_TRUE(report.flagged[0]);
}

TEST(Fault, Names) {
  EXPECT_EQ(to_string(FaultKind::kStuckAt), "stuck-at");
  EXPECT_EQ(to_string(FaultKind::kDropout), "dropout");
}

}  // namespace
}  // namespace arsf::sensors
