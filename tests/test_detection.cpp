// Unit tests for the non-overlap detection mechanism (core/detection.h):
// "if an interval does not intersect the fusion interval, then it must be
//  compromised" (paper, Section III-A-1).

#include <gtest/gtest.h>

#include "core/detection.h"

namespace arsf {
namespace {

TEST(Detection, FlagsOutlier) {
  // Four agreeing sensors plus one far-off interval, f=1.
  const std::vector<Interval> intervals = {{0, 2}, {1, 3}, {0.5, 2.5}, {1, 2}, {10, 12}};
  const auto report = fuse_and_detect(intervals, 1);
  EXPECT_FALSE(report.fusion_empty);
  EXPECT_EQ(report.num_flagged, 1);
  EXPECT_TRUE(report.flagged[4]);
  EXPECT_TRUE(report.any());
}

TEST(Detection, NoFalsePositivesWhenAllCorrect) {
  // All intervals share the true value 1.5; nothing may be flagged for any f.
  const std::vector<Interval> intervals = {{1, 2}, {0, 3}, {1.4, 1.6}, {-1, 4}};
  for (int f = 0; f < 4; ++f) {
    const auto report = fuse_and_detect(intervals, f);
    EXPECT_EQ(report.num_flagged, 0) << "f=" << f;
    EXPECT_FALSE(report.any());
  }
}

TEST(Detection, TangentIntervalIsNotFlagged) {
  // Touching the fusion interval at a single point counts as intersecting —
  // the attacker's maximal stealthy placement must survive detection.
  const std::vector<Interval> intervals = {{0, 4}, {1, 5}, {5, 9}};
  const auto fusion = fuse(intervals, 1);
  ASSERT_TRUE(fusion.interval);
  EXPECT_DOUBLE_EQ(fusion.interval->hi, 5.0);
  const auto report = detect(intervals, fusion);
  EXPECT_EQ(report.num_flagged, 0);
}

TEST(Detection, EmptyFusionIsInconclusive) {
  const std::vector<Interval> intervals = {{0, 1}, {10, 11}, {20, 21}};
  const auto report = fuse_and_detect(intervals, 1);
  EXPECT_TRUE(report.fusion_empty);
  EXPECT_EQ(report.num_flagged, 0);
}

TEST(Detection, TickPathMatchesDoublePath) {
  const std::vector<Interval> doubles = {{0, 4}, {1, 5}, {9, 13}};
  const std::vector<TickInterval> ticks = {{0, 4}, {1, 5}, {9, 13}};
  const auto double_report = fuse_and_detect(doubles, 1);
  const TickInterval fused = fused_interval_ticks(ticks, 1);
  const auto tick_report = detect_ticks(ticks, fused);
  ASSERT_EQ(double_report.flagged.size(), tick_report.flagged.size());
  for (std::size_t i = 0; i < ticks.size(); ++i) {
    EXPECT_EQ(double_report.flagged[i], tick_report.flagged[i]) << "sensor " << i;
  }
}

TEST(Detection, MultipleOutliers) {
  const std::vector<Interval> intervals = {{0, 2}, {0.5, 2.5}, {1, 3}, {-20, -18}, {20, 22}};
  const auto report = fuse_and_detect(intervals, 2);
  EXPECT_EQ(report.num_flagged, 2);
  EXPECT_TRUE(report.flagged[3]);
  EXPECT_TRUE(report.flagged[4]);
}

}  // namespace
}  // namespace arsf
