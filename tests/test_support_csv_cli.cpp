// Unit tests for the CSV writer and the CLI argument parser.

#include <gtest/gtest.h>

#include <sstream>

#include "support/cli.h"
#include "support/csv.h"

namespace arsf::support {
namespace {

TEST(Csv, PlainRows) {
  std::ostringstream out;
  CsvWriter csv{out};
  csv.write_row({"a", "b", "c"});
  csv.write_numeric_row({1.5, -2.0, 0.25});
  EXPECT_EQ(out.str(), "a,b,c\n1.5,-2,0.25\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(Csv, EscapesSpecials) {
  std::ostringstream out;
  CsvWriter csv{out};
  csv.write_row({"plain", "with,comma", "with\"quote", "with\nnewline"});
  EXPECT_EQ(out.str(), "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST(Csv, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter{"/nonexistent-dir-xyz/file.csv"}, std::runtime_error);
}

TEST(Report, LongFormatWithHeader) {
  std::ostringstream out;
  ReportWriter report{out};
  report.add("table1/r0/ascending", "enumerate", "expected_width", 9.5);
  report.add_text("bad/scenario", "worstcase", "error", "boom, with comma");
  EXPECT_EQ(out.str(),
            "scenario,analysis,metric,value\n"
            "table1/r0/ascending,enumerate,expected_width,9.5\n"
            "bad/scenario,worstcase,error,\"boom, with comma\"\n");
  EXPECT_EQ(report.entries(), 2u);
}

TEST(Report, ValuesRoundTrip) {
  // %.17g must reproduce doubles exactly when parsed back.
  std::ostringstream out;
  ReportWriter report{out};
  const double value = 9.648148148148147;
  report.add("s", "a", "m", value);
  const std::string text = out.str();
  const auto last_comma = text.rfind(',');
  EXPECT_EQ(std::stod(text.substr(last_comma + 1)), value);
}

namespace {
ArgParser parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return ArgParser{static_cast<int>(argv.size()), argv.data()};
}
}  // namespace

TEST(Cli, KeyValueForms) {
  const auto args = parse({"--alpha", "3", "--beta=hello", "--gamma"});
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get_string("beta", ""), "hello");
  EXPECT_TRUE(args.has("gamma"));
  EXPECT_FALSE(args.has("delta"));
}

TEST(Cli, Defaults) {
  const auto args = parse({});
  EXPECT_EQ(args.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(args.get_string("missing", "dft"), "dft");
  EXPECT_TRUE(args.get_bool("missing", true));
}

TEST(Cli, Bools) {
  const auto args = parse({"--yes", "--no=false", "--one=1"});
  EXPECT_TRUE(args.get_bool("yes", false));   // bare flag = true
  EXPECT_FALSE(args.get_bool("no", true));
  EXPECT_TRUE(args.get_bool("one", false));
}

TEST(Cli, DoubleList) {
  const auto args = parse({"--widths", "5,11,17"});
  EXPECT_EQ(args.get_double_list("widths", {}), (std::vector<double>{5, 11, 17}));
  EXPECT_EQ(args.get_double_list("absent", {1.0}), (std::vector<double>{1.0}));
}

TEST(Cli, Positional) {
  const auto args = parse({"file1", "--k", "v", "file2"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "file1");
  EXPECT_EQ(args.positional()[1], "file2");
}

TEST(Cli, UnknownDetection) {
  const auto args = parse({"--known", "1", "--typo", "2"});
  (void)args.get_int("known", 0);
  const auto unknown = args.unknown();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

}  // namespace
}  // namespace arsf::support
