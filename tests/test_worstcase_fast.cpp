// Differential parity harness for the run-batched worst-case fast lane.
//
// worst_case_fusion_fast must be bit-identical to the worst_case_fusion
// oracle: max_width, the full argmax configuration (lowest world index on
// ties) and the configuration count, for every input and thread count.  The
// harness checks three layers:
//   * direct: randomized WorstCaseConfigs (widths, f, attacked sets, stealth
//     flag) against the oracle, serial and parallel;
//   * scenario: >= 200 seeded random valid worst-case Scenarios through the
//     Runner, fast vs oracle analysis at thread counts {1, 0};
//   * golden: every registered worstcase scenario vs its fast twin.

#include <gtest/gtest.h>

#include "scenario/registry.h"
#include "scenario/runner.h"
#include "sim/worstcase.h"
#include "support/rng.h"

namespace arsf {
namespace {

using support::Rng;

template <typename T>
T pick(Rng& rng, std::initializer_list<T> values) {
  const auto index =
      static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(values.size()) - 1));
  return *(values.begin() + index);
}

sim::WorstCaseConfig random_config(Rng& rng) {
  sim::WorstCaseConfig config;
  const auto n = static_cast<std::size_t>(rng.uniform_int(1, 5));
  for (std::size_t i = 0; i < n; ++i) {
    config.widths.push_back(rng.uniform_int(1, 8));
  }
  config.f = static_cast<int>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  for (SensorId id = 0; id < n; ++id) {
    if (rng.chance(0.35)) config.attacked.push_back(id);
  }
  config.require_undetected = rng.chance(0.7);
  config.num_threads = 1;
  return config;
}

void expect_identical(const sim::WorstCaseResult& fast, const sim::WorstCaseResult& oracle,
                      const std::string& label) {
  ASSERT_EQ(fast.max_width, oracle.max_width) << label;
  ASSERT_EQ(fast.configurations, oracle.configurations) << label;
  ASSERT_EQ(fast.argmax.size(), oracle.argmax.size()) << label;
  for (std::size_t i = 0; i < fast.argmax.size(); ++i) {
    EXPECT_EQ(fast.argmax[i], oracle.argmax[i]) << label << " slot " << i;
  }
}

TEST(WorstCaseFastDirect, RandomConfigsMatchOracleBitIdentically) {
  Rng rng{0xfa57a2026ULL};  // fixed seed: reproducible, no wall-clock
  for (int i = 0; i < 300; ++i) {
    const sim::WorstCaseConfig config = random_config(rng);
    const sim::WorstCaseResult oracle = sim::worst_case_fusion(config);
    const sim::WorstCaseResult fast = sim::worst_case_fusion_fast(config);
    std::string label = "case " + std::to_string(i) + ": widths {";
    for (const Tick w : config.widths) label += std::to_string(w) + ",";
    label += "} f=" + std::to_string(config.f) + " attacked {";
    for (const SensorId id : config.attacked) label += std::to_string(id) + ",";
    label += "} undetected=" + std::to_string(config.require_undetected);
    expect_identical(fast, oracle, label);
  }
}

TEST(WorstCaseFastDirect, ThreadCountInvariant) {
  Rng rng{0x7ead5afeULL};
  for (int i = 0; i < 40; ++i) {
    sim::WorstCaseConfig config = random_config(rng);
    const sim::WorstCaseResult serial = sim::worst_case_fusion_fast(config);
    for (const unsigned threads : {0u, 2u, 3u, 7u}) {
      config.num_threads = threads;
      expect_identical(sim::worst_case_fusion_fast(config), serial,
                       "case " + std::to_string(i) + " threads " + std::to_string(threads));
    }
  }
}

TEST(WorstCaseFastDirect, OverSetsMatchesOracleIncludingBestSet) {
  Rng rng{0x5e75fa57ULL};
  for (int i = 0; i < 60; ++i) {
    std::vector<Tick> widths;
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 5));
    for (std::size_t k = 0; k < n; ++k) widths.push_back(rng.uniform_int(1, 6));
    const int f = static_cast<int>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto fa = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n)));
    const bool undetected = rng.chance(0.7);

    for (const unsigned threads : {1u, 0u}) {
      std::vector<SensorId> oracle_set;
      std::vector<SensorId> fast_set;
      const Tick oracle =
          sim::worst_case_over_sets(widths, f, fa, &oracle_set, threads, undetected);
      const Tick fast =
          sim::worst_case_over_sets_fast(widths, f, fa, &fast_set, threads, undetected);
      EXPECT_EQ(fast, oracle) << "case " << i << " threads " << threads;
      EXPECT_EQ(fast_set, oracle_set) << "case " << i << " threads " << threads;
    }
  }
}

// ---- scenario-level differential harness -----------------------------------

/// Seeded generator of valid worst-case scenarios across widths, n, f, fa,
/// step, schedule and the attacked-set choice (rule or explicit override).
scenario::Scenario random_worstcase_scenario(Rng& rng, int serial) {
  scenario::Scenario s;
  s.name = "diff/wc" + std::to_string(serial);
  s.description = "randomized worst-case differential scenario";
  s.analysis = scenario::AnalysisKind::kWorstCase;

  const auto n = static_cast<std::size_t>(rng.uniform_int(1, 5));
  s.step = pick(rng, {0.25, 0.5, 1.0});
  for (std::size_t i = 0; i < n; ++i) {
    s.widths.push_back(s.step * static_cast<double>(rng.uniform_int(1, 8)));
  }
  const int max_f = max_bounded_f(static_cast<int>(n));
  s.f = rng.chance(0.5) ? -1 : static_cast<int>(rng.uniform_int(0, max_f));

  s.schedule = pick(rng, {sched::ScheduleKind::kAscending, sched::ScheduleKind::kDescending,
                          sched::ScheduleKind::kFixed});
  if (s.schedule == sched::ScheduleKind::kFixed) s.fixed_order = rng.permutation(n);

  s.fa = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n)));
  s.attacked_rule =
      pick(rng, {sched::AttackedSetRule::kSmallestWidths, sched::AttackedSetRule::kLargestWidths,
                 sched::AttackedSetRule::kLastSlots, sched::AttackedSetRule::kFirstSlots});
  if (s.fa > 0 && rng.chance(0.4)) {
    // Explicit attacked set: fa distinct ids, sorted.
    std::vector<std::size_t> ids = rng.permutation(n);
    ids.resize(s.fa);
    std::sort(ids.begin(), ids.end());
    s.attacked_override.assign(ids.begin(), ids.end());
  }
  s.require_undetected = rng.chance(0.7);
  // Keep over-all-sets draws cheap: the subset loop multiplies world counts.
  s.over_all_sets = rng.chance(0.25) && n <= 4;
  s.seed = rng.next();
  s.num_threads = 1;
  return s;
}

TEST(WorstCaseFastScenario, RandomScenariosMatchOracleAtThreadCounts1And0) {
  const scenario::Runner runner;
  Rng rng{0xd1ffe2026ULL};
  for (int i = 0; i < 200; ++i) {
    const scenario::Scenario oracle_scenario = random_worstcase_scenario(rng, i);
    ASSERT_NO_THROW(oracle_scenario.validate()) << oracle_scenario.to_json();

    scenario::Scenario fast_scenario = oracle_scenario;
    fast_scenario.analysis = scenario::AnalysisKind::kWorstCaseFast;

    for (const unsigned threads : {1u, 0u}) {
      scenario::Scenario oracle_run = oracle_scenario;
      scenario::Scenario fast_run = fast_scenario;
      oracle_run.num_threads = threads;
      fast_run.num_threads = threads;
      const scenario::ScenarioResult oracle = runner.run(oracle_run);
      const scenario::ScenarioResult fast = runner.run(fast_run);
      ASSERT_TRUE(oracle.ok()) << oracle_run.to_json() << ": " << oracle.error;
      ASSERT_TRUE(fast.ok()) << fast_run.to_json() << ": " << fast.error;
      ASSERT_EQ(fast.metrics.size(), oracle.metrics.size());
      for (std::size_t m = 0; m < oracle.metrics.size(); ++m) {
        EXPECT_EQ(fast.metrics[m].key, oracle.metrics[m].key) << oracle_run.to_json();
        // Bit-identical, not approximately equal.
        EXPECT_EQ(fast.metrics[m].value, oracle.metrics[m].value)
            << oracle_run.to_json() << " threads " << threads << " metric "
            << oracle.metrics[m].key;
      }
    }
  }
}

TEST(WorstCaseFastScenario, GoldenParityOverEveryRegisteredWorstCaseScenario) {
  const scenario::Runner runner;
  std::size_t checked = 0;
  for (const scenario::Scenario& scenario : scenario::registry().all()) {
    if (scenario.analysis != scenario::AnalysisKind::kWorstCase) continue;
    ++checked;

    const scenario::Scenario* fast = scenario::registry().find("fast/" + scenario.name);
    ASSERT_NE(fast, nullptr) << "missing fast mirror of " << scenario.name;
    EXPECT_EQ(fast->analysis, scenario::AnalysisKind::kWorstCaseFast) << fast->name;
    EXPECT_EQ(fast->widths, scenario.widths) << fast->name;
    EXPECT_EQ(fast->fa, scenario.fa) << fast->name;
    EXPECT_EQ(fast->over_all_sets, scenario.over_all_sets) << fast->name;

    const scenario::ScenarioResult oracle = runner.run(scenario);
    const scenario::ScenarioResult mirrored = runner.run(*fast);
    ASSERT_TRUE(oracle.ok()) << scenario.name << ": " << oracle.error;
    ASSERT_TRUE(mirrored.ok()) << fast->name << ": " << mirrored.error;
    ASSERT_EQ(mirrored.metrics.size(), oracle.metrics.size()) << scenario.name;
    for (std::size_t m = 0; m < oracle.metrics.size(); ++m) {
      EXPECT_EQ(mirrored.metrics[m].key, oracle.metrics[m].key) << scenario.name;
      EXPECT_EQ(mirrored.metrics[m].value, oracle.metrics[m].value)
          << scenario.name << " metric " << oracle.metrics[m].key;
    }
  }
  EXPECT_GE(checked, 7u);  // fig4 families + the over-all-sets stress workload
}

}  // namespace
}  // namespace arsf
