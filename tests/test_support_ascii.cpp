// Unit tests for the ASCII interval-diagram renderer and table printer
// (support/ascii.h).

#include <gtest/gtest.h>

#include "support/ascii.h"

namespace arsf::support {
namespace {

TEST(FormatNumber, TrimsTrailingZeros) {
  EXPECT_EQ(format_number(1.5), "1.5");
  EXPECT_EQ(format_number(2.0), "2");
  EXPECT_EQ(format_number(-0.0), "0");
  EXPECT_EQ(format_number(3.14159, 2), "3.14");
}

TEST(DescribeInterval, Format) {
  EXPECT_EQ(describe_interval("s0", 1.0, 3.5), "s0: [1, 3.5] (width 2.5)");
}

TEST(IntervalDiagram, RendersRowsAndAxis) {
  IntervalDiagram diagram{40};
  diagram.add("s0", 0.0, 10.0);
  diagram.add("s1", 2.0, 6.0, /*attacked=*/true);
  diagram.add_separator();
  diagram.add("S", 2.0, 8.0);
  diagram.set_marker(5.0, '*');
  const std::string text = diagram.render();

  EXPECT_NE(text.find("s0"), std::string::npos);
  EXPECT_NE(text.find("s1"), std::string::npos);
  EXPECT_NE(text.find('~'), std::string::npos);   // attacked glyph
  EXPECT_NE(text.find('='), std::string::npos);   // honest glyph
  EXPECT_NE(text.find("----"), std::string::npos);  // separator
  EXPECT_NE(text.find('*'), std::string::npos);   // marker on axis
  EXPECT_NE(text.find("[0, 10]"), std::string::npos);
}

TEST(IntervalDiagram, EmptyRow) {
  IntervalDiagram diagram{30};
  diagram.add("s0", 0.0, 4.0);
  diagram.add_empty("S(f=0)");
  const std::string text = diagram.render();
  EXPECT_NE(text.find("(empty)"), std::string::npos);
}

TEST(IntervalDiagram, NoRows) {
  IntervalDiagram diagram{30};
  EXPECT_EQ(diagram.render(), "(empty diagram)\n");
}

TEST(IntervalDiagram, DegeneratePointInterval) {
  IntervalDiagram diagram{30};
  diagram.add("p", 5.0, 5.0);
  const std::string text = diagram.render();
  EXPECT_NE(text.find("[5, 5]"), std::string::npos);
}

TEST(TextTable, AlignsColumns) {
  TextTable table{{"name", "value"}};
  table.add_row({"short", "1"});
  table.add_row({"a-much-longer-name", "23456"});
  const std::string text = table.render();
  EXPECT_NE(text.find("| name"), std::string::npos);
  EXPECT_NE(text.find("a-much-longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(text.find("|---"), std::string::npos);
}

TEST(TextTable, PadsMissingCells) {
  TextTable table{{"a", "b", "c"}};
  table.add_row({"only-one"});
  const std::string text = table.render();
  EXPECT_NE(text.find("only-one"), std::string::npos);
}

}  // namespace
}  // namespace arsf::support
