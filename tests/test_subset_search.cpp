// Differential parity harness for the branch-and-bound subset search
// (sim/engine/subset_search.h, sim::worst_case_over_sets_bnb).
//
// The BnB lane must be bit-identical to the flat worst_case_over_sets loop:
// the max width AND the reported best_set (lowest subset bitmask among
// maximisers), for every input and thread count.  Four layers:
//   * direct: randomized (widths, f, fa, stealth) draws against the oracle
//     at thread counts {1, 0}, plus a thread-count invariance matrix;
//   * bound: the optimistic bound is admissible — never below the per-set
//     oracle — over randomized width sets and both stealth settings, so
//     future bound tightening cannot silently break pruning soundness;
//   * edges: fa = 0, fa = n, all-equal widths (one equivalence class),
//     fa > n (rejected loudly), n = 0;
//   * scenario: every registered over-sets worstcase scenario vs its
//     "bnb/" twin through the Runner, and the large-n BnB-only scenarios
//     pinned thread-count invariant.

#include <gtest/gtest.h>

#include "scenario/registry.h"
#include "scenario/runner.h"
#include "sim/engine/subset_search.h"
#include "sim/worstcase.h"
#include "support/rng.h"

namespace arsf {
namespace {

using support::Rng;

struct OverSetsDraw {
  std::vector<Tick> widths;
  int f = 0;
  std::size_t fa = 0;
  bool undetected = true;
};

/// Small widths from a 4-value pool: repeats are likely, so the dedup path
/// (not just the degenerate one-class-per-subset case) is exercised.
OverSetsDraw random_draw(Rng& rng) {
  OverSetsDraw draw;
  const auto n = static_cast<std::size_t>(rng.uniform_int(1, 5));
  for (std::size_t i = 0; i < n; ++i) draw.widths.push_back(rng.uniform_int(1, 4));
  draw.f = static_cast<int>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  draw.fa = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n)));
  draw.undetected = rng.chance(0.7);
  return draw;
}

std::string draw_label(const OverSetsDraw& draw, int serial) {
  std::string label = "draw " + std::to_string(serial) + ": widths {";
  for (const Tick w : draw.widths) label += std::to_string(w) + ",";
  return label + "} f=" + std::to_string(draw.f) + " fa=" + std::to_string(draw.fa) +
         " undetected=" + std::to_string(draw.undetected);
}

TEST(SubsetSearchDirect, RandomDrawsMatchOracleIncludingBestSet) {
  Rng rng{0xb7b5ea2c4ULL};  // fixed seed: reproducible, no wall-clock
  for (int i = 0; i < 220; ++i) {
    const OverSetsDraw draw = random_draw(rng);
    for (const unsigned threads : {1u, 0u}) {
      std::vector<SensorId> oracle_set;
      std::vector<SensorId> bnb_set;
      const Tick oracle = sim::worst_case_over_sets(draw.widths, draw.f, draw.fa, &oracle_set,
                                                    threads, draw.undetected);
      const Tick bnb = sim::worst_case_over_sets_bnb(draw.widths, draw.f, draw.fa, &bnb_set,
                                                     threads, draw.undetected);
      ASSERT_EQ(bnb, oracle) << draw_label(draw, i) << " threads " << threads;
      ASSERT_EQ(bnb_set, oracle_set) << draw_label(draw, i) << " threads " << threads;
    }
  }
}

TEST(SubsetSearchDirect, LargerDrawsEngageDedupAndPruningAgainstTheOracle) {
  // The small draws above barely build a prefix tree; n = 6-8 over widths
  // {1, 2} yields multi-group trees, real branch/claim-time pruning and a
  // many-class fan-out while the flat oracle stays affordable (fa <= 3).
  Rng rng{0xb1663d2a5ULL};
  for (int i = 0; i < 30; ++i) {
    OverSetsDraw draw;
    const auto n = static_cast<std::size_t>(rng.uniform_int(6, 8));
    for (std::size_t k = 0; k < n; ++k) draw.widths.push_back(rng.uniform_int(1, 2));
    draw.f = static_cast<int>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    draw.fa = static_cast<std::size_t>(rng.uniform_int(0, 3));
    draw.undetected = rng.chance(0.7);
    for (const unsigned threads : {1u, 0u}) {
      std::vector<SensorId> oracle_set;
      std::vector<SensorId> bnb_set;
      const Tick oracle = sim::worst_case_over_sets(draw.widths, draw.f, draw.fa, &oracle_set,
                                                    threads, draw.undetected);
      const Tick bnb = sim::worst_case_over_sets_bnb(draw.widths, draw.f, draw.fa, &bnb_set,
                                                     threads, draw.undetected);
      ASSERT_EQ(bnb, oracle) << draw_label(draw, i) << " threads " << threads;
      ASSERT_EQ(bnb_set, oracle_set) << draw_label(draw, i) << " threads " << threads;
    }
  }
}

TEST(SubsetSearchDirect, ThreadCountInvariant) {
  Rng rng{0xb7b7ead5ULL};
  for (int i = 0; i < 40; ++i) {
    const OverSetsDraw draw = random_draw(rng);
    std::vector<SensorId> serial_set;
    const Tick serial = sim::worst_case_over_sets_bnb(draw.widths, draw.f, draw.fa,
                                                      &serial_set, 1, draw.undetected);
    for (const unsigned threads : {0u, 2u, 3u, 7u}) {
      std::vector<SensorId> parallel_set;
      const Tick parallel = sim::worst_case_over_sets_bnb(draw.widths, draw.f, draw.fa,
                                                          &parallel_set, threads,
                                                          draw.undetected);
      EXPECT_EQ(parallel, serial) << draw_label(draw, i) << " threads " << threads;
      EXPECT_EQ(parallel_set, serial_set) << draw_label(draw, i) << " threads " << threads;
    }
  }
}

// ---- bound admissibility ----------------------------------------------------

TEST(SubsetSearchBound, NeverBelowThePerSetOracle) {
  // The pruning logic is only sound if the bound never undershoots what a
  // per-set search can actually achieve; hold that as a property over random
  // width sets, attacked subsets and both stealth settings.  (The stealth
  // constraint only restricts the attacker, so one bound must cover both.)
  Rng rng{0xb0a2dadULL};
  for (int i = 0; i < 300; ++i) {
    sim::WorstCaseConfig config;
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 5));
    for (std::size_t k = 0; k < n; ++k) config.widths.push_back(rng.uniform_int(1, 6));
    config.f = static_cast<int>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    for (SensorId id = 0; id < n; ++id) {
      if (rng.chance(0.35)) config.attacked.push_back(id);
    }
    config.require_undetected = rng.chance(0.5);
    config.num_threads = 1;

    const Tick bound = sim::engine::over_sets_optimistic_bound(
        config.widths, config.attacked, config.f);
    const Tick oracle = sim::worst_case_fusion(config).max_width;
    std::string label = "case " + std::to_string(i) + ": widths {";
    for (const Tick w : config.widths) label += std::to_string(w) + ",";
    label += "} f=" + std::to_string(config.f) + " attacked {";
    for (const SensorId id : config.attacked) label += std::to_string(id) + ",";
    label += "} undetected=" + std::to_string(config.require_undetected);
    EXPECT_GE(bound, oracle) << label;
  }
}

// ---- edge cardinalities and degenerate inputs -------------------------------

TEST(SubsetSearchEdges, FaZeroIsTheNoAttackWorstCaseInOneClass) {
  const std::vector<Tick> widths = {2, 3, 4};
  std::vector<SensorId> set{99};  // poison: must come back empty-handed
  sim::engine::SubsetSearchStats stats;
  const Tick bnb = sim::worst_case_over_sets_bnb(widths, 1, 0, &set, 1, true, &stats);
  EXPECT_EQ(bnb, sim::worst_case_no_attack(widths, 1));
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(stats.subsets_total, 1u);
  EXPECT_EQ(stats.classes_total, 1u);
  EXPECT_EQ(stats.classes_evaluated, 1u);
  EXPECT_EQ(stats.classes_pruned, 0u);
}

TEST(SubsetSearchEdges, FaEqualsNIsOneClassOfEveryone) {
  const std::vector<Tick> widths = {2, 3, 4};
  std::vector<SensorId> oracle_set;
  std::vector<SensorId> bnb_set;
  const Tick oracle = sim::worst_case_over_sets(widths, 1, 3, &oracle_set, 1);
  sim::engine::SubsetSearchStats stats;
  const Tick bnb = sim::worst_case_over_sets_bnb(widths, 1, 3, &bnb_set, 1, true, &stats);
  EXPECT_EQ(bnb, oracle);
  EXPECT_EQ(bnb_set, oracle_set);
  EXPECT_EQ(bnb_set, (std::vector<SensorId>{0, 1, 2}));
  EXPECT_EQ(stats.classes_total, 1u);
  EXPECT_EQ(stats.subsets_total, 1u);
}

TEST(SubsetSearchEdges, AllEqualWidthsCollapseToASingleClass) {
  // Five interchangeable sensors: C(5, 2) = 10 subsets, one multiset.
  const std::vector<Tick> widths(5, 3);
  std::vector<SensorId> oracle_set;
  std::vector<SensorId> bnb_set;
  const Tick oracle = sim::worst_case_over_sets(widths, 2, 2, &oracle_set, 1);
  sim::engine::SubsetSearchStats stats;
  const Tick bnb = sim::worst_case_over_sets_bnb(widths, 2, 2, &bnb_set, 1, true, &stats);
  EXPECT_EQ(bnb, oracle);
  EXPECT_EQ(bnb_set, oracle_set);
  EXPECT_EQ(bnb_set, (std::vector<SensorId>{0, 1}));  // lowest mask: ids 0,1
  EXPECT_EQ(stats.subsets_total, 10u);
  EXPECT_EQ(stats.classes_total, 1u);
  EXPECT_EQ(stats.classes_evaluated, 1u);
}

TEST(SubsetSearchEdges, RepeatedWidthsDedupAndAccountForEveryClass) {
  // Widths {3,3,3,3,2,2}: C(6,2) = 15 subsets, 3 multisets ({2,2}, {2,3},
  // {3,3}).  Serial run: the counters are deterministic and must partition.
  const std::vector<Tick> widths = {3, 3, 3, 3, 2, 2};
  std::vector<SensorId> oracle_set;
  std::vector<SensorId> bnb_set;
  const Tick oracle = sim::worst_case_over_sets(widths, 2, 2, &oracle_set, 1);
  sim::engine::SubsetSearchStats stats;
  const Tick bnb = sim::worst_case_over_sets_bnb(widths, 2, 2, &bnb_set, 1, true, &stats);
  EXPECT_EQ(bnb, oracle);
  EXPECT_EQ(bnb_set, oracle_set);
  EXPECT_EQ(stats.subsets_total, 15u);
  EXPECT_EQ(stats.classes_total, 3u);
  EXPECT_EQ(stats.classes_evaluated + stats.classes_pruned, stats.classes_total);
  EXPECT_GE(stats.classes_evaluated, 1u);  // the Theorem-4 seed at least
  EXPECT_LE(stats.subsets_pruned, stats.subsets_total);
}

TEST(SubsetSearchEdges, FaBeyondNIsRejectedLoudly) {
  const std::vector<Tick> widths = {2, 3};
  EXPECT_THROW((void)sim::worst_case_over_sets_bnb(widths, 1, 3), std::invalid_argument);
  // n > 63 would overflow the subset bitmasks; every lane rejects it rather
  // than shifting 1 << 64 (UB in the flat loop) or wrapping.
  const std::vector<Tick> too_many(64, 1);
  EXPECT_THROW((void)sim::worst_case_over_sets(too_many, 1, 2), std::invalid_argument);
  EXPECT_THROW((void)sim::worst_case_over_sets_fast(too_many, 1, 2), std::invalid_argument);
  EXPECT_THROW((void)sim::worst_case_over_sets_bnb(too_many, 1, 2), std::invalid_argument);
  // The degenerate empty system still mirrors the flat loop: its one empty
  // subset fuses nothing.
  std::vector<SensorId> set{99};
  EXPECT_EQ(sim::worst_case_over_sets_bnb(std::vector<Tick>{}, 0, 0, &set), -1);
  EXPECT_EQ(set, (std::vector<SensorId>{99}));  // untouched, like the oracle
}

// ---- scenario-level differential harness ------------------------------------

TEST(SubsetSearchScenario, GoldenParityOverEveryRegisteredOverSetsScenario) {
  const scenario::Runner runner;
  std::size_t checked = 0;
  for (const scenario::Scenario& scenario : scenario::registry().all()) {
    if (scenario.analysis != scenario::AnalysisKind::kWorstCase || !scenario.over_all_sets) {
      continue;
    }
    ++checked;

    const scenario::Scenario* bnb = scenario::registry().find("bnb/" + scenario.name);
    ASSERT_NE(bnb, nullptr) << "missing bnb mirror of " << scenario.name;
    EXPECT_EQ(bnb->analysis, scenario::AnalysisKind::kWorstCaseOverSetsBnb) << bnb->name;
    EXPECT_EQ(bnb->widths, scenario.widths) << bnb->name;
    EXPECT_EQ(bnb->fa, scenario.fa) << bnb->name;

    for (const unsigned threads : {1u, 0u}) {
      scenario::Scenario oracle_run = scenario;
      scenario::Scenario bnb_run = *bnb;
      oracle_run.num_threads = threads;
      bnb_run.num_threads = threads;
      const scenario::ScenarioResult oracle = runner.run(oracle_run);
      const scenario::ScenarioResult mirrored = runner.run(bnb_run);
      ASSERT_TRUE(oracle.ok()) << scenario.name << ": " << oracle.error;
      ASSERT_TRUE(mirrored.ok()) << bnb->name << ": " << mirrored.error;
      ASSERT_EQ(mirrored.metrics.size(), oracle.metrics.size()) << scenario.name;
      for (std::size_t m = 0; m < oracle.metrics.size(); ++m) {
        EXPECT_EQ(mirrored.metrics[m].key, oracle.metrics[m].key) << scenario.name;
        EXPECT_EQ(mirrored.metrics[m].value, oracle.metrics[m].value)
            << scenario.name << " threads " << threads << " metric "
            << oracle.metrics[m].key;
      }
    }
  }
  EXPECT_GE(checked, 1u);  // at least the over-all-sets stress workload
}

TEST(SubsetSearchScenario, LargeNScenariosAreThreadCountInvariant) {
  // No oracle twin exists at n >= 15 (that is the point of the lane); pin
  // the next-best contract instead: the registered large-n scenarios run,
  // and their metrics are bit-identical at thread counts {1, 0}.
  const scenario::Runner runner;
  const auto large = scenario::registry().match("bnb/large-n/");
  ASSERT_GE(large.size(), 3u);
  for (const scenario::Scenario* entry : large) {
    EXPECT_GE(entry->n(), 15u) << entry->name;
    scenario::Scenario serial = *entry;
    serial.num_threads = 1;
    scenario::Scenario parallel = *entry;
    parallel.num_threads = 0;
    const scenario::ScenarioResult a = runner.run(serial);
    const scenario::ScenarioResult b = runner.run(parallel);
    ASSERT_TRUE(a.ok()) << entry->name << ": " << a.error;
    ASSERT_TRUE(b.ok()) << entry->name << ": " << b.error;
    ASSERT_EQ(a.metrics.size(), b.metrics.size()) << entry->name;
    for (std::size_t m = 0; m < a.metrics.size(); ++m) {
      EXPECT_EQ(a.metrics[m].key, b.metrics[m].key) << entry->name;
      EXPECT_EQ(a.metrics[m].value, b.metrics[m].value)
          << entry->name << " metric " << a.metrics[m].key;
    }
  }
}

}  // namespace
}  // namespace arsf
