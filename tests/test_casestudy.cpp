// Tests for the Table II case-study runner (vehicle/casestudy.h): the
// paper's qualitative result — Ascending eliminates safety-bound violations,
// Descending maximises them, Random sits in between — plus pipeline wiring.

#include <gtest/gtest.h>

#include "vehicle/casestudy.h"

namespace arsf::vehicle {
namespace {

CaseStudyConfig quick_config(sched::ScheduleKind kind) {
  CaseStudyConfig config;
  config.schedule = kind;
  config.rounds = 1200;
  config.seed = 2024;
  return config;
}

TEST(CaseStudy, AscendingEliminatesViolations) {
  const CaseStudyResult result = run_case_study(quick_config(sched::ScheduleKind::kAscending));
  EXPECT_EQ(result.rounds, 1200u);
  EXPECT_DOUBLE_EQ(result.pct_upper, 0.0);
  EXPECT_DOUBLE_EQ(result.pct_lower, 0.0);
  EXPECT_EQ(result.detected_rounds, 0u);
  EXPECT_FALSE(result.collided);
}

TEST(CaseStudy, TableIIOrdering) {
  const CaseStudyResult ascending =
      run_case_study(quick_config(sched::ScheduleKind::kAscending));
  const CaseStudyResult descending =
      run_case_study(quick_config(sched::ScheduleKind::kDescending));
  const CaseStudyResult random = run_case_study(quick_config(sched::ScheduleKind::kRandom));

  // Descending hands the attacker full knowledge: by far the most violations.
  EXPECT_GT(descending.pct_upper, 5.0);
  EXPECT_GT(descending.pct_lower, 5.0);
  // Random sits strictly between the two fixed schedules (paper, Table II).
  EXPECT_GT(random.pct_upper + random.pct_lower,
            ascending.pct_upper + ascending.pct_lower);
  EXPECT_LT(random.pct_upper + random.pct_lower,
            descending.pct_upper + descending.pct_lower);
  // The attack stays stealthy everywhere.
  EXPECT_EQ(descending.detected_rounds, 0u);
  EXPECT_EQ(random.detected_rounds, 0u);
}

TEST(CaseStudy, AttackedSensorIsAnEncoder) {
  const CaseStudyResult result = run_case_study(quick_config(sched::ScheduleKind::kAscending));
  ASSERT_EQ(result.attacked.size(), 1u);
  // LandShark ids: 0 gps, 1 camera, 2/3 encoders (the most precise sensors).
  EXPECT_GE(result.attacked[0], 2u);
}

TEST(CaseStudy, AttackInflatesFusedWidth) {
  const CaseStudyResult attacked =
      run_case_study(quick_config(sched::ScheduleKind::kDescending));
  CaseStudyConfig clean_config = quick_config(sched::ScheduleKind::kDescending);
  clean_config.attack_enabled = false;
  const CaseStudyResult clean = run_case_study(clean_config);
  EXPECT_GT(attacked.fused_width.mean(), clean.fused_width.mean() + 0.1);
  EXPECT_DOUBLE_EQ(clean.pct_upper, 0.0);
  EXPECT_DOUBLE_EQ(clean.pct_lower, 0.0);
}

TEST(CaseStudy, SpeedStaysNearTargetDespiteAttack) {
  // The supervisor + controller keep the platoon near 10 mph even under the
  // strongest schedule for the attacker.
  const CaseStudyResult result =
      run_case_study(quick_config(sched::ScheduleKind::kDescending));
  EXPECT_NEAR(result.true_speed.mean(), 10.0, 0.2);
  EXPECT_FALSE(result.collided);
}

TEST(CaseStudy, DeterministicGivenSeed) {
  const CaseStudyResult a = run_case_study(quick_config(sched::ScheduleKind::kRandom));
  const CaseStudyResult b = run_case_study(quick_config(sched::ScheduleKind::kRandom));
  EXPECT_DOUBLE_EQ(a.pct_upper, b.pct_upper);
  EXPECT_DOUBLE_EQ(a.pct_lower, b.pct_lower);
  EXPECT_DOUBLE_EQ(a.fused_width.mean(), b.fused_width.mean());
}

TEST(CaseStudy, ReproduceTable2ReturnsAllSchedules) {
  CaseStudyConfig base;
  base.rounds = 300;
  const auto rows = reproduce_table2(base);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].first, sched::ScheduleKind::kAscending);
  EXPECT_EQ(rows[1].first, sched::ScheduleKind::kDescending);
  EXPECT_EQ(rows[2].first, sched::ScheduleKind::kRandom);
  EXPECT_EQ(paper_table2_reference().size(), 3u);
}

TEST(Pipeline, MeasureProducesValidRound) {
  LandSharkSensing sensing = make_landshark_sensing();
  SpeedPipeline pipeline{sensing, {}, nullptr};
  support::Rng rng{5};
  const auto result = pipeline.measure(10.0, sched::ascending_order(sensing.config), rng, 0);
  ASSERT_TRUE(result.fusion.interval);
  EXPECT_TRUE(result.fusion.interval->contains(10.0));
  ASSERT_TRUE(result.estimate);
  EXPECT_NEAR(*result.estimate, 10.0, 0.6);
}

}  // namespace
}  // namespace arsf::vehicle
