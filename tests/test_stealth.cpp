// Unit tests for the stealth machinery (attack/stealth.h): the paper's
// passive/active mode gate and the two non-detection certificates.

#include <gtest/gtest.h>

#include "attack/stealth.h"
#include "test_helpers.h"

namespace arsf::attack {
namespace {

using testing::make_context;
using testing::make_setup;

TEST(Stealth, ModeGateMatchesPaperRule) {
  // n=3, f=1, fa=1 attacked in each possible slot: active iff
  // transmitted >= n - f - far, i.e. slot >= 3 - 1 - 1 = 1.
  for (std::size_t attacked_slot = 0; attacked_slot < 3; ++attacked_slot) {
    sched::Order order{0, 1, 2};
    const auto setup = make_setup({5, 11, 17}, {order[attacked_slot]}, order);
    const StealthMode mode = mode_for_slot(setup, attacked_slot);
    if (attacked_slot >= 1) {
      EXPECT_EQ(mode, StealthMode::kActive) << attacked_slot;
    } else {
      EXPECT_EQ(mode, StealthMode::kPassive) << attacked_slot;
    }
  }
}

TEST(Stealth, ModeGateCountsUnsentCompromised) {
  // n=5, f=2, two attacked at slots 0 and 1: at slot 0 far=2 so the gate is
  // 0 >= 5-2-2 = 1 -> passive; at slot 1 far=1, gate 1 >= 2 -> passive too.
  const auto setup = make_setup({5, 5, 5, 14, 17}, {0, 1}, {0, 1, 2, 3, 4});
  EXPECT_EQ(mode_for_slot(setup, 0), StealthMode::kPassive);
  EXPECT_EQ(mode_for_slot(setup, 1), StealthMode::kPassive);
  // Attacked at slots 3 and 4 instead: slot 3 gate 3 >= 5-2-2 = 1 -> active.
  const auto late = make_setup({5, 5, 5, 14, 17}, {3, 4}, {2, 1, 0, 3, 4});
  EXPECT_EQ(mode_for_slot(late, 3), StealthMode::kActive);
  EXPECT_EQ(mode_for_slot(late, 4), StealthMode::kActive);
}

TEST(Stealth, PassiveCertificate) {
  const TickInterval delta{2, 4};
  EXPECT_TRUE(passive_feasible({0, 5}, delta));
  EXPECT_TRUE(passive_feasible({2, 4}, delta));
  EXPECT_FALSE(passive_feasible({3, 8}, delta));  // cuts delta
}

TEST(Stealth, PassiveLoRange) {
  const TickInterval delta{2, 4};
  EXPECT_EQ(passive_lo_range(delta, 5), (TickInterval{-1, 2}));
  // Width equal to |delta|: single placement (the reading itself).
  EXPECT_EQ(passive_lo_range(delta, 2), (TickInterval{2, 2}));
}

TEST(Stealth, MaxPointOverlap) {
  const std::vector<TickInterval> others = {{0, 4}, {2, 6}, {3, 10}, {20, 25}};
  // Point 3..4 lies in the first three intervals.
  EXPECT_EQ(max_point_overlap_within({0, 10}, others), 3);
  // Restricting to [5,10]: {2,6} and {3,10} still share the band [5,6].
  EXPECT_EQ(max_point_overlap_within({5, 10}, others), 2);
  // Restricting past every overlap: only {3,10} remains.
  EXPECT_EQ(max_point_overlap_within({7, 10}, others), 1);
  // Touching at a single endpoint counts (closed intervals): point 4 lies in
  // {0,4}, {2,6} and {3,10}.
  EXPECT_EQ(max_point_overlap_within({4, 4}, others), 3);
  EXPECT_EQ(max_point_overlap_within({40, 50}, others), 0);
  EXPECT_EQ(max_point_overlap_within(TickInterval::empty_interval(), others), 0);
}

TEST(Stealth, ActiveCertificate) {
  const std::vector<TickInterval> others = {{0, 4}, {2, 6}};
  EXPECT_TRUE(active_feasible({3, 9}, others, 2));   // point 3..4 in both
  EXPECT_FALSE(active_feasible({5, 9}, others, 2));  // only the second one
  EXPECT_TRUE(active_feasible({5, 9}, others, 1));
  EXPECT_TRUE(active_feasible({100, 101}, others, 0));  // need 0 is trivial
}

TEST(Stealth, PlanFeasibleAcceptsReadings) {
  const auto setup = make_setup({5, 11, 17}, {0}, {0, 1, 2});
  const std::vector<TickInterval> readings = {{-2, 3}, {-5, 6}, {-10, 7}};
  const auto ctx = make_context(setup, readings, 0);
  const std::vector<TickInterval> plan = {readings[0]};
  EXPECT_TRUE(plan_feasible(ctx, plan));
}

TEST(Stealth, PlanFeasibleRejectsPassiveViolation) {
  // Attacker first (passive): a plan not containing delta is rejected.
  const auto setup = make_setup({5, 11, 17}, {0}, {0, 1, 2});
  const std::vector<TickInterval> readings = {{-2, 3}, {-5, 6}, {-10, 7}};
  const auto ctx = make_context(setup, readings, 0);
  const std::vector<TickInterval> plan = {{10, 15}};
  EXPECT_FALSE(plan_feasible(ctx, plan));
}

TEST(Stealth, PlanFeasibleActiveNeedsCommonPoint) {
  // Attacker last (active): n=3, f=1 -> need a common point with 1 other.
  const auto setup = make_setup({5, 11, 17}, {0}, {2, 1, 0});
  const std::vector<TickInterval> readings = {{-2, 3}, {-5, 6}, {-10, 7}};
  auto ctx = make_context(setup, readings, 2);
  EXPECT_TRUE(plan_feasible(ctx, std::vector<TickInterval>{{5, 10}}));   // touches [-5,6] & [-10,7]
  EXPECT_FALSE(plan_feasible(ctx, std::vector<TickInterval>{{20, 25}}));  // touches nothing
}

TEST(Stealth, PlanProtectsEarlierSentIntervals) {
  // Two attacked sensors; the first interval was sent far right leaning on
  // a planned sibling.  A second-slot plan that abandons it must be
  // rejected; one that still covers its certificate point is accepted.
  const auto setup = make_setup({5, 5, 5, 14, 17}, {1, 2}, {0, 1, 2, 3, 4}, 2);
  const std::vector<TickInterval> readings = {{-1, 4}, {-5, 0}, {-5, 0}, {-14, 0}, {-17, 0}};
  // First attacked interval already sent at [4, 9]: overlaps seen [-1,4] at 4.
  auto ctx = make_context(setup, readings, 2, /*my_sent=*/{{4, 9}});
  // Active certificate for the sent interval needs a point in
  // >= n-f-1 = 2 others; only [-1,4] + the new plan can provide it.
  EXPECT_FALSE(plan_feasible(ctx, std::vector<TickInterval>{readings[2]}));
  EXPECT_TRUE(plan_feasible(ctx, std::vector<TickInterval>{{4, 9}}));
}

TEST(Stealth, CandidateRangeCoversHullAndSibling) {
  const auto setup = make_setup({5, 5, 5, 14, 17}, {1, 2}, {0, 1, 2, 3, 4}, 2);
  const std::vector<TickInterval> readings = {{-1, 4}, {-5, 0}, {-4, 1}, {-14, 0}, {-17, 0}};
  const auto ctx = make_context(setup, readings, 1);
  const TickInterval range = candidate_lo_range(ctx, 5);
  // Hull of delta [-4,0] and seen [-1,4] is [-4,4]; width 5 + sibling 5.
  EXPECT_LE(range.lo, -4 - 5 - 5);
  EXPECT_GE(range.hi, 4 + 5);
}

}  // namespace
}  // namespace arsf::attack
