// Property-based tests for Marzullo fusion: parameterised sweeps over
// (n, f, seed) checking the algebraic invariants on randomly generated
// configurations.

#include <gtest/gtest.h>

#include <tuple>

#include "core/fusion.h"
#include "support/rng.h"

namespace arsf {
namespace {

std::vector<TickInterval> random_intervals(int n, support::Rng& rng, Tick span = 12) {
  std::vector<TickInterval> intervals;
  intervals.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Tick lo = rng.uniform_int(-span, span);
    const Tick width = rng.uniform_int(0, span);
    intervals.push_back(TickInterval{lo, lo + width});
  }
  return intervals;
}

class FusionProperty : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
 protected:
  [[nodiscard]] int n() const { return std::get<0>(GetParam()); }
  [[nodiscard]] std::uint64_t seed() const { return std::get<1>(GetParam()); }
};

TEST_P(FusionProperty, F0IsExactIntersectionWhenNonEmpty) {
  support::Rng rng{seed()};
  for (int trial = 0; trial < 200; ++trial) {
    const auto intervals = random_intervals(n(), rng);
    TickInterval intersection = intervals[0];
    for (const auto& iv : intervals) intersection = intersection.intersect(iv);
    const auto result = fuse_ticks(intervals, 0);
    if (intersection.is_empty()) {
      EXPECT_FALSE(result.interval);
    } else {
      ASSERT_TRUE(result.interval);
      EXPECT_EQ(*result.interval, intersection);
    }
  }
}

TEST_P(FusionProperty, FNMinus1IsConvexHull) {
  support::Rng rng{seed() ^ 0x1};
  for (int trial = 0; trial < 200; ++trial) {
    const auto intervals = random_intervals(n(), rng);
    TickInterval hull = TickInterval::empty_interval();
    for (const auto& iv : intervals) hull = hull.hull(iv);
    const auto result = fuse_ticks(intervals, n() - 1);
    ASSERT_TRUE(result.interval);
    EXPECT_EQ(*result.interval, hull);
  }
}

TEST_P(FusionProperty, MonotoneInF) {
  support::Rng rng{seed() ^ 0x2};
  for (int trial = 0; trial < 200; ++trial) {
    const auto intervals = random_intervals(n(), rng);
    TickInterval previous = TickInterval::empty_interval();
    for (int f = 0; f < n(); ++f) {
      const TickInterval fused = fused_interval_ticks(intervals, f);
      if (!previous.is_empty()) {
        ASSERT_FALSE(fused.is_empty());
        EXPECT_TRUE(fused.contains(previous)) << "f=" << f;
      }
      previous = fused;
    }
  }
}

TEST_P(FusionProperty, TranslationInvariance) {
  support::Rng rng{seed() ^ 0x3};
  for (int trial = 0; trial < 100; ++trial) {
    const auto intervals = random_intervals(n(), rng);
    const Tick shift = rng.uniform_int(-50, 50);
    std::vector<TickInterval> shifted;
    for (const auto& iv : intervals) shifted.push_back(iv.translated(shift));
    for (int f = 0; f < n(); ++f) {
      const TickInterval base = fused_interval_ticks(intervals, f);
      const TickInterval moved = fused_interval_ticks(shifted, f);
      if (base.is_empty()) {
        EXPECT_TRUE(moved.is_empty());
      } else {
        EXPECT_EQ(moved, base.translated(shift));
      }
    }
  }
}

TEST_P(FusionProperty, PermutationInvariance) {
  support::Rng rng{seed() ^ 0x4};
  for (int trial = 0; trial < 100; ++trial) {
    auto intervals = random_intervals(n(), rng);
    const TickInterval base = fused_interval_ticks(intervals, n() / 2);
    auto perm = rng.permutation(intervals.size());
    std::vector<TickInterval> shuffled;
    for (std::size_t idx : perm) shuffled.push_back(intervals[idx]);
    EXPECT_EQ(fused_interval_ticks(shuffled, n() / 2), base);
  }
}

TEST_P(FusionProperty, FusionIntervalIsHullOfSegments) {
  support::Rng rng{seed() ^ 0x5};
  for (int trial = 0; trial < 100; ++trial) {
    const auto intervals = random_intervals(n(), rng);
    for (int f = 0; f < n(); ++f) {
      const auto result = fuse_ticks(intervals, f);
      if (!result.interval) {
        EXPECT_TRUE(result.segments.empty());
        continue;
      }
      ASSERT_FALSE(result.segments.empty());
      EXPECT_EQ(result.interval->lo, result.segments.front().lo);
      EXPECT_EQ(result.interval->hi, result.segments.back().hi);
      // Segments are disjoint and ordered.
      for (std::size_t s = 1; s < result.segments.size(); ++s) {
        EXPECT_GT(result.segments[s].lo, result.segments[s - 1].hi);
      }
      // Segment endpoints coincide with input endpoints.
      for (const auto& segment : result.segments) {
        bool lo_is_endpoint = false;
        bool hi_is_endpoint = false;
        for (const auto& iv : intervals) {
          lo_is_endpoint |= segment.lo == iv.lo;
          hi_is_endpoint |= segment.hi == iv.hi;
        }
        EXPECT_TRUE(lo_is_endpoint);
        EXPECT_TRUE(hi_is_endpoint);
      }
    }
  }
}

TEST_P(FusionProperty, EverySegmentPointLiesInEnoughIntervals) {
  support::Rng rng{seed() ^ 0x6};
  for (int trial = 0; trial < 50; ++trial) {
    const auto intervals = random_intervals(n(), rng, 8);
    for (int f = 0; f < n(); ++f) {
      const auto result = fuse_ticks(intervals, f);
      for (const auto& segment : result.segments) {
        for (Tick p = segment.lo; p <= segment.hi; ++p) {
          int count = 0;
          for (const auto& iv : intervals) count += iv.contains(p) ? 1 : 0;
          ASSERT_GE(count, result.threshold) << "point " << p << " f=" << f;
        }
      }
      // Points just outside the hull never reach the threshold.
      if (result.interval) {
        for (const Tick p : {result.interval->lo - 1, result.interval->hi + 1}) {
          int count = 0;
          for (const auto& iv : intervals) count += iv.contains(p) ? 1 : 0;
          EXPECT_LT(count, result.threshold);
        }
      }
    }
  }
}

TEST_P(FusionProperty, DoubleAndTickPathsAgreeOnIntegerData) {
  support::Rng rng{seed() ^ 0x7};
  for (int trial = 0; trial < 100; ++trial) {
    const auto ticks = random_intervals(n(), rng);
    std::vector<Interval> doubles;
    for (const auto& iv : ticks) {
      doubles.push_back(Interval{static_cast<double>(iv.lo), static_cast<double>(iv.hi)});
    }
    for (int f = 0; f < n(); ++f) {
      const auto tick_result = fused_interval_ticks(ticks, f);
      const auto double_result = fuse(doubles, f);
      if (tick_result.is_empty()) {
        EXPECT_FALSE(double_result.interval);
      } else {
        ASSERT_TRUE(double_result.interval);
        EXPECT_DOUBLE_EQ(double_result.interval->lo, static_cast<double>(tick_result.lo));
        EXPECT_DOUBLE_EQ(double_result.interval->hi, static_cast<double>(tick_result.hi));
      }
    }
  }
}

TEST_P(FusionProperty, FuseAllFMatchesPerThresholdFusion) {
  // The single-pass fuse_all_f must agree field-for-field with n independent
  // marzullo_fuse calls on every threshold.
  support::Rng rng{seed() ^ 0x8};
  for (int trial = 0; trial < 50; ++trial) {
    const auto ticks = random_intervals(n(), rng);
    std::vector<Interval> doubles;
    for (const auto& iv : ticks) {
      doubles.push_back(Interval{static_cast<double>(iv.lo), static_cast<double>(iv.hi)});
    }
    const auto all = fuse_all_f(doubles);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(n()));
    for (int f = 0; f < n(); ++f) {
      const auto direct = fuse(doubles, f);
      const auto& swept = all[static_cast<std::size_t>(f)];
      EXPECT_EQ(swept.threshold, direct.threshold) << "f=" << f;
      EXPECT_EQ(swept.max_overlap, direct.max_overlap) << "f=" << f;
      ASSERT_EQ(swept.segments.size(), direct.segments.size()) << "f=" << f;
      for (std::size_t s = 0; s < direct.segments.size(); ++s) {
        EXPECT_EQ(swept.segments[s].lo, direct.segments[s].lo);
        EXPECT_EQ(swept.segments[s].hi, direct.segments[s].hi);
      }
      ASSERT_EQ(swept.interval.has_value(), direct.interval.has_value()) << "f=" << f;
      if (direct.interval) {
        EXPECT_EQ(swept.interval->lo, direct.interval->lo);
        EXPECT_EQ(swept.interval->hi, direct.interval->hi);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FusionProperty,
    ::testing::Combine(::testing::Values(2, 3, 4, 5, 7, 10),
                       ::testing::Values(0xAAu, 0xBBu, 0xCCu)),
    [](const ::testing::TestParamInfo<FusionProperty::ParamType>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace arsf
