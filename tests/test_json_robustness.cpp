// Property-style robustness tests for the scenario-layer JSON discipline:
// randomized valid Scenario/SweepSpec round-trips (seeded, no wall-clock),
// and rejection of truncated input, duplicate keys and overlay lines with
// trailing garbage.

#include <gtest/gtest.h>

#include <limits>

#include "scenario/registry.h"
#include "scenario/sweep.h"
#include "support/rng.h"

namespace arsf::scenario {
namespace {

using support::Rng;

template <typename T>
T pick(Rng& rng, std::initializer_list<T> values) {
  const auto index =
      static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(values.size()) - 1));
  return *(values.begin() + index);
}

/// Draws a scenario that passes validate(): widths on the step grid, a fault
/// bound within the paper's range, schedule/analysis combinations allowed by
/// the validation rules, and 64-bit seeds from the full range.
Scenario random_valid_scenario(Rng& rng, int serial) {
  Scenario s;
  s.name = "prop/s" + std::to_string(serial);
  s.description = "randomized scenario #" + std::to_string(serial);

  const auto n = static_cast<std::size_t>(rng.uniform_int(1, 6));
  s.step = pick(rng, {0.25, 0.5, 1.0});
  for (std::size_t i = 0; i < n; ++i) {
    s.widths.push_back(s.step * static_cast<double>(rng.uniform_int(1, 40)));
  }
  const int max_f = max_bounded_f(static_cast<int>(n));
  s.f = rng.chance(0.5) ? -1 : static_cast<int>(rng.uniform_int(0, max_f));

  if (rng.chance(0.3)) {
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.chance(0.4)) s.trusted.push_back(i);
    }
  }

  s.analysis = pick(rng, {AnalysisKind::kEnumerate, AnalysisKind::kMonteCarlo,
                          AnalysisKind::kWorstCase, AnalysisKind::kResilience});
  const bool sampled =
      s.analysis == AnalysisKind::kMonteCarlo || s.analysis == AnalysisKind::kResilience;

  s.schedule = sampled ? pick(rng, {sched::ScheduleKind::kAscending,
                                    sched::ScheduleKind::kDescending,
                                    sched::ScheduleKind::kRandom})
                       : pick(rng, {sched::ScheduleKind::kAscending,
                                    sched::ScheduleKind::kDescending,
                                    sched::ScheduleKind::kFixed});
  if (s.schedule == sched::ScheduleKind::kFixed) {
    s.fixed_order = rng.permutation(n);
  }
  if (!s.trusted.empty() && !sampled && rng.chance(0.3)) {
    s.schedule = sched::ScheduleKind::kTrustedLast;
    s.fixed_order.clear();
  }

  s.fa = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n)));
  s.attacked_rule =
      pick(rng, {sched::AttackedSetRule::kSmallestWidths, sched::AttackedSetRule::kLargestWidths,
                 sched::AttackedSetRule::kLastSlots, sched::AttackedSetRule::kFirstSlots});
  if (!sampled && s.fa > 0 && rng.chance(0.4)) {
    // Explicit attacked set: the fa smallest ids, sorted and unique.
    for (std::size_t i = 0; i < s.fa; ++i) s.attacked_override.push_back(i);
  }

  s.policy = pick(rng, {PolicyKind::kNone, PolicyKind::kExpectation, PolicyKind::kOracle});
  s.policy_options.max_joint = static_cast<std::size_t>(rng.uniform_int(1, 4));
  s.policy_options.max_completions = static_cast<std::size_t>(rng.uniform_int(0, 64));
  s.policy_options.candidate_stride = static_cast<Tick>(rng.uniform_int(1, 4));
  s.policy_options.memoize = rng.chance(0.5);
  s.policy_options.sample_seed = rng.next();
  s.policy_options.random_tie_break = rng.chance(0.5);

  s.rounds = static_cast<std::size_t>(rng.uniform_int(1, 100000));
  s.seed = rng.next();
  s.max_worlds = rng.next() | 1;  // > 0
  s.require_undetected = rng.chance(0.5);
  s.over_all_sets = s.analysis == AnalysisKind::kWorstCase && rng.chance(0.5);
  if (s.analysis == AnalysisKind::kResilience) {
    s.fault.kind = pick(rng, {sensors::FaultKind::kNone, sensors::FaultKind::kStuckAt,
                              sensors::FaultKind::kOffset, sensors::FaultKind::kDrift,
                              sensors::FaultKind::kDropout});
    s.fault.p_enter = rng.unit();
    s.fault.p_recover = rng.unit();
    s.fault.magnitude = rng.uniform_real(-50.0, 50.0);
  }
  s.num_threads = static_cast<unsigned>(rng.uniform_int(0, 8));
  return s;
}

TEST(JsonRobustness, RandomValidScenariosRoundTripExactly) {
  Rng rng{0x5eedc0de2026ULL};  // fixed seed: reproducible, no wall-clock
  for (int i = 0; i < 250; ++i) {
    const Scenario scenario = random_valid_scenario(rng, i);
    ASSERT_NO_THROW(scenario.validate()) << scenario.to_json();
    const Scenario restored = Scenario::from_json(scenario.to_json());
    ASSERT_EQ(restored, scenario) << scenario.to_json();
    // Serialization is stable, not just invertible.
    EXPECT_EQ(restored.to_json(), scenario.to_json());
  }
}

TEST(JsonRobustness, RandomSweepSpecsRoundTripExactly) {
  Rng rng{0x5feedab1e5ULL};
  for (int i = 0; i < 60; ++i) {
    SweepSpec spec;
    spec.name = "prop/sweep" + std::to_string(i);
    spec.description = "randomized sweep";
    spec.base = random_valid_scenario(rng, 1000 + i);
    const auto sets = rng.uniform_int(0, 3);
    for (std::int64_t k = 0; k < sets; ++k) {
      std::vector<double> widths;
      const auto len = rng.uniform_int(1, 5);
      for (std::int64_t w = 0; w < len; ++w) {
        widths.push_back(0.25 * static_cast<double>(rng.uniform_int(1, 80)));
      }
      spec.widths_sets.push_back(std::move(widths));
    }
    const auto fas = rng.uniform_int(0, 3);
    for (std::int64_t k = 0; k < fas; ++k) {
      spec.fa_values.push_back(static_cast<std::size_t>(rng.uniform_int(0, 5)));
    }
    const auto steps = rng.uniform_int(0, 2);
    for (std::int64_t k = 0; k < steps; ++k) {
      spec.steps.push_back(pick(rng, {0.25, 0.5, 1.0}));
    }
    if (rng.chance(0.5)) {
      spec.schedules = {sched::ScheduleKind::kAscending, sched::ScheduleKind::kRandom};
    }
    if (rng.chance(0.5)) spec.policies = {PolicyKind::kNone, PolicyKind::kExpectation};
    spec.seed_count = static_cast<std::uint64_t>(rng.uniform_int(0, 16));
    spec.seed_stride = rng.next() | 1;

    const SweepSpec restored = SweepSpec::from_json(spec.to_json());
    ASSERT_EQ(restored, spec) << spec.to_json();
    EXPECT_EQ(restored.to_json(), spec.to_json());
  }
}

TEST(JsonRobustness, EveryStrictPrefixOfAScenarioIsRejected) {
  Rng rng{0x7c0aca7edULL};
  const Scenario scenario = random_valid_scenario(rng, 0);
  const std::string text = scenario.to_json();
  ASSERT_GT(text.size(), 2u);
  for (std::size_t length = 0; length < text.size(); ++length) {
    EXPECT_THROW((void)Scenario::from_json(text.substr(0, length)), std::invalid_argument)
        << "prefix of length " << length << " must not parse";
  }
}

TEST(JsonRobustness, DuplicateKeysAreRejected) {
  Scenario scenario;
  scenario.name = "dup/test";
  scenario.widths = {5, 11, 17};
  const std::string valid = scenario.to_json();

  // Duplicate a top-level key.
  std::string top = valid;
  top.insert(1, "\"name\":\"shadow\",");
  EXPECT_THROW((void)Scenario::from_json(top), std::invalid_argument);

  // Duplicate a nested key inside policy_options.
  const std::string marker = "\"policy_options\":{";
  std::string nested = valid;
  const std::size_t at = nested.find(marker);
  ASSERT_NE(at, std::string::npos);
  nested.insert(at + marker.size(), "\"max_joint\":7,");
  EXPECT_THROW((void)Scenario::from_json(nested), std::invalid_argument);
}

TEST(JsonRobustness, OutOfRangeIntegersAreRejectedNotWrapped) {
  Scenario scenario;
  scenario.name = "range/test";
  scenario.widths = {5, 11, 17};
  const std::string valid = scenario.to_json();

  // 2^32 must not wrap to f = 0; INT_MIN - 1 must not wrap either.
  for (const std::string& f : {"4294967296", "2147483648", "-2147483649"}) {
    std::string text = valid;
    const std::size_t at = text.find("\"f\":-1");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, 6, "\"f\":" + f);
    EXPECT_THROW((void)Scenario::from_json(text), std::invalid_argument) << f;
  }
  // INT_MIN itself is representable and must parse.
  std::string text = valid;
  text.replace(text.find("\"f\":-1"), 6, "\"f\":-2147483648");
  EXPECT_EQ(Scenario::from_json(text).f, std::numeric_limits<int>::min());
}

TEST(JsonRobustness, OverlayLinesWithTrailingGarbageAreRejected) {
  Scenario scenario;
  scenario.name = "overlay/robust";
  scenario.widths = {5, 11, 17};
  SweepSpec spec;
  spec.name = "overlay/robust-sweep";
  spec.base = scenario;

  for (const std::string& line :
       {scenario.to_json() + "{", scenario.to_json() + " 1", spec.to_json() + " }",
        std::string{"[1,2,3]"}, std::string{"{\"not\":\"a scenario\"}"}}) {
    ScenarioRegistry reg;
    EXPECT_THROW(reg.merge(line + "\n"), std::invalid_argument) << line;
    EXPECT_EQ(reg.size(), 0u) << "a rejected line must not partially register";
  }
}

}  // namespace
}  // namespace arsf::scenario
