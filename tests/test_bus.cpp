// Unit tests for the shared broadcast bus substrate (bus/bus.h): slotted
// delivery, CAN priority arbitration, promiscuous snooping, frame logging.

#include <gtest/gtest.h>

#include "bus/bus.h"

namespace arsf::bus {
namespace {

Frame make_frame(CanId id, std::size_t sender, std::size_t slot) {
  Frame frame;
  frame.can_id = id;
  frame.sender = sender;
  frame.slot = slot;
  frame.interval = Interval{0.0, 1.0};
  return frame;
}

TEST(Bus, BroadcastReachesAllListeners) {
  SharedBus bus;
  int count_a = 0;
  int count_b = 0;
  CallbackListener a{[&](const Frame&) { ++count_a; }};
  CallbackListener b{[&](const Frame&) { ++count_b; }};
  bus.attach(a);
  bus.attach(b);
  bus.broadcast(make_frame(0x10, 0, 0));
  EXPECT_EQ(count_a, 1);
  EXPECT_EQ(count_b, 1);
  EXPECT_EQ(bus.stats().frames_delivered, 1u);
}

TEST(Bus, DetachStopsDelivery) {
  SharedBus bus;
  int count = 0;
  CallbackListener listener{[&](const Frame&) { ++count; }};
  bus.attach(listener);
  bus.broadcast(make_frame(0x10, 0, 0));
  bus.detach(listener);
  bus.broadcast(make_frame(0x11, 1, 0));
  EXPECT_EQ(count, 1);
}

TEST(Bus, SlotDeliversOwnedFrame) {
  SharedBus bus;
  bus.queue(make_frame(0x20, 2, 1));
  Frame delivered;
  EXPECT_FALSE(bus.run_slot(0));           // nothing queued for slot 0
  EXPECT_TRUE(bus.run_slot(1, &delivered));
  EXPECT_EQ(delivered.sender, 2u);
  EXPECT_EQ(bus.pending(), 0u);
}

TEST(Bus, ArbitrationLowestIdWins) {
  SharedBus bus;
  bus.queue(make_frame(0x300, 0, 0));
  bus.queue(make_frame(0x100, 1, 0));  // higher priority (lower id)
  bus.queue(make_frame(0x200, 2, 0));
  Frame delivered;
  ASSERT_TRUE(bus.run_slot(0, &delivered));
  EXPECT_EQ(delivered.sender, 1u);
  EXPECT_EQ(bus.stats().arbitration_conflicts, 2u);
  // Losers retry in the next slot, again by priority.
  ASSERT_TRUE(bus.run_slot(1, &delivered));
  EXPECT_EQ(delivered.sender, 2u);
  ASSERT_TRUE(bus.run_slot(2, &delivered));
  EXPECT_EQ(delivered.sender, 0u);
  EXPECT_EQ(bus.pending(), 0u);
}

TEST(Bus, ArbitrationTieBreaksBySender) {
  const Frame a = make_frame(0x100, 3, 0);
  const Frame b = make_frame(0x100, 1, 0);
  EXPECT_TRUE(wins_arbitration(b, a));
  EXPECT_FALSE(wins_arbitration(a, b));
}

TEST(Bus, SnooperSeesEverythingBeforeItsSlot) {
  // The attacker's eavesdropping pattern: a listener accumulates every frame
  // even though it never transmits.
  SharedBus bus;
  std::vector<std::size_t> seen;
  CallbackListener snooper{[&](const Frame& frame) { seen.push_back(frame.sender); }};
  bus.attach(snooper);
  for (std::size_t slot = 0; slot < 4; ++slot) {
    bus.queue(make_frame(static_cast<CanId>(0x100 + slot), slot, slot));
    bus.run_slot(slot);
  }
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(Bus, LogRecordsFramesInOrder) {
  SharedBus bus{/*keep_log=*/true};
  bus.broadcast(make_frame(0x1, 0, 0));
  bus.broadcast(make_frame(0x2, 1, 1));
  ASSERT_EQ(bus.log().size(), 2u);
  EXPECT_EQ(bus.log()[0].sender, 0u);
  EXPECT_EQ(bus.log()[1].sender, 1u);
  bus.clear_log();
  EXPECT_TRUE(bus.log().empty());
}

TEST(Bus, LogDisabled) {
  SharedBus bus{/*keep_log=*/false};
  bus.broadcast(make_frame(0x1, 0, 0));
  EXPECT_TRUE(bus.log().empty());
  EXPECT_EQ(bus.stats().frames_delivered, 1u);
}

TEST(Bus, RoundCounter) {
  SharedBus bus;
  bus.end_round();
  bus.end_round();
  EXPECT_EQ(bus.stats().rounds_completed, 2u);
}

TEST(Frame, ToStringContainsFields) {
  Frame frame = make_frame(0xAB, 3, 2);
  frame.measurement = 9.5;
  const std::string text = to_string(frame);
  EXPECT_NE(text.find("sender=3"), std::string::npos);
  EXPECT_NE(text.find("slot=2"), std::string::npos);
  EXPECT_NE(text.find("0xab"), std::string::npos);
}

}  // namespace
}  // namespace arsf::bus
