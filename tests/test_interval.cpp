// Unit tests for the closed-interval algebra (core/interval.h).

#include <gtest/gtest.h>

#include "core/interval.h"

namespace arsf {
namespace {

TEST(Interval, BasicAccessors) {
  const Interval iv{2.0, 7.0};
  EXPECT_FALSE(iv.is_empty());
  EXPECT_DOUBLE_EQ(iv.width(), 5.0);
  EXPECT_DOUBLE_EQ(iv.midpoint(), 4.5);
}

TEST(Interval, EmptyCanonical) {
  const auto empty = Interval::empty_interval();
  EXPECT_TRUE(empty.is_empty());
  EXPECT_DOUBLE_EQ(empty.width(), 0.0);
  EXPECT_FALSE(empty.contains(0.0));
}

TEST(Interval, Centered) {
  const auto iv = Interval::centered(10.0, 4.0);
  EXPECT_DOUBLE_EQ(iv.lo, 8.0);
  EXPECT_DOUBLE_EQ(iv.hi, 12.0);
}

TEST(Interval, ContainsPoint) {
  const Interval iv{-1.0, 1.0};
  EXPECT_TRUE(iv.contains(-1.0));  // closed at both ends
  EXPECT_TRUE(iv.contains(1.0));
  EXPECT_TRUE(iv.contains(0.0));
  EXPECT_FALSE(iv.contains(1.0001));
}

TEST(Interval, ContainsInterval) {
  const Interval outer{0.0, 10.0};
  EXPECT_TRUE(outer.contains(Interval{2.0, 8.0}));
  EXPECT_TRUE(outer.contains(outer));                  // reflexive
  EXPECT_TRUE(outer.contains(Interval::empty_interval()));  // vacuous
  EXPECT_FALSE(outer.contains(Interval{-1.0, 5.0}));
  EXPECT_FALSE(Interval::empty_interval().contains(Interval{0.0, 0.0}));
}

TEST(Interval, IntersectsIsSymmetricAndClosed) {
  const Interval a{0.0, 5.0};
  const Interval b{5.0, 9.0};
  const Interval c{5.1, 9.0};
  EXPECT_TRUE(a.intersects(b));  // touching endpoints intersect
  EXPECT_TRUE(b.intersects(a));
  EXPECT_FALSE(a.intersects(c));
  EXPECT_FALSE(a.intersects(Interval::empty_interval()));
}

TEST(Interval, Intersect) {
  const Interval a{0.0, 5.0};
  const Interval b{3.0, 9.0};
  EXPECT_EQ(a.intersect(b), (Interval{3.0, 5.0}));
  EXPECT_EQ(a.intersect(Interval{5.0, 6.0}), (Interval{5.0, 5.0}));
  EXPECT_TRUE(a.intersect(Interval{6.0, 7.0}).is_empty());
  EXPECT_TRUE(a.intersect(Interval::empty_interval()).is_empty());
}

TEST(Interval, Hull) {
  const Interval a{0.0, 2.0};
  const Interval b{8.0, 9.0};
  EXPECT_EQ(a.hull(b), (Interval{0.0, 9.0}));
  EXPECT_EQ(a.hull(Interval::empty_interval()), a);
  EXPECT_EQ(Interval::empty_interval().hull(b), b);
}

TEST(Interval, Translation) {
  const Interval a{1.0, 3.0};
  EXPECT_EQ(a.translated(2.5), (Interval{3.5, 5.5}));
  EXPECT_TRUE(Interval::empty_interval().translated(5.0).is_empty());
}

TEST(Interval, EqualityTreatsAllEmptiesEqual) {
  EXPECT_EQ(Interval::empty_interval(), (Interval{9.0, 3.0}));
  EXPECT_NE((Interval{0.0, 1.0}), (Interval{0.0, 2.0}));
}

TEST(TickInterval, IntegerSemantics) {
  const TickInterval iv{-5, 5};
  EXPECT_EQ(iv.width(), 10);
  EXPECT_EQ(iv.midpoint(), 0);
  EXPECT_TRUE(iv.contains(Tick{-5}));
  EXPECT_EQ(iv.intersect(TickInterval{5, 7}), (TickInterval{5, 5}));
}

TEST(Quantizer, RoundTrip) {
  const Quantizer quant{0.01};
  EXPECT_EQ(quant.to_tick(10.0), 1000);
  EXPECT_DOUBLE_EQ(quant.to_value(1000), 10.0);
  const Interval iv{9.99, 10.51};
  const TickInterval ticks = quant.to_ticks(iv);
  EXPECT_EQ(ticks, (TickInterval{999, 1051}));
  EXPECT_TRUE(approx_equal(quant.to_interval(ticks), iv, 1e-12));
}

TEST(Quantizer, EmptyPassesThrough) {
  const Quantizer quant{0.5};
  EXPECT_TRUE(quant.to_ticks(Interval::empty_interval()).is_empty());
  EXPECT_TRUE(quant.to_interval(TickInterval::empty_interval()).is_empty());
}

TEST(Interval, ToString) {
  EXPECT_EQ(to_string(Interval{1.5, 2.0}), "[1.5, 2]");
  EXPECT_EQ(to_string(Interval::empty_interval()), "(empty)");
  EXPECT_EQ(to_string(TickInterval{-3, 4}), "[-3, 4]");
}

}  // namespace
}  // namespace arsf
