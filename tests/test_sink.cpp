// Unit tests for the streaming result path: the ResultSink implementations
// and Runner::run_batch's ordered emission, empty-batch short-circuit and
// first-in-input-order exception propagation.

#include <gtest/gtest.h>

#include <sstream>

#include "scenario/json.h"
#include "scenario/registry.h"
#include "scenario/runner.h"
#include "scenario/sink.h"

namespace arsf::scenario {
namespace {

Scenario cheap_scenario(const std::string& name, double w0) {
  Scenario s;
  s.name = name;
  s.widths = {w0, 2, 3};
  s.fa = 0;
  s.policy = PolicyKind::kNone;
  return s;
}

ScenarioResult make_result(const std::string& name, double value) {
  ScenarioResult result;
  result.scenario = name;
  result.analysis = "enumerate";
  result.metrics = {{"expected_width", value}};
  return result;
}

/// Records the (index, scenario) stream for order assertions.
class RecordingSink final : public ResultSink {
 public:
  void on_result(std::size_t index, const ScenarioResult& result) override {
    indices.push_back(index);
    names.push_back(result.scenario);
  }
  void on_finish(std::size_t total) override {
    ++finishes;
    finished_total = total;
  }

  std::vector<std::size_t> indices;
  std::vector<std::string> names;
  int finishes = 0;
  std::size_t finished_total = 0;
};

TEST(Sink, CollectingSinkEnforcesInputOrder) {
  CollectingSink sink;
  sink.on_result(0, make_result("a", 1.0));
  sink.on_result(1, make_result("b", 2.0));
  EXPECT_THROW(sink.on_result(3, make_result("d", 4.0)), std::logic_error);
  EXPECT_THROW(sink.on_finish(5), std::logic_error);
  sink.on_finish(2);
  ASSERT_EQ(sink.results().size(), 2u);
  EXPECT_EQ(sink.results()[1].scenario, "b");
}

TEST(Sink, CsvStreamSinkWritesRowsAsResultsArrive) {
  std::ostringstream out;
  CsvStreamSink sink{out};
  EXPECT_NE(out.str().find("scenario,analysis,metric,value"), std::string::npos);

  sink.on_result(0, make_result("sweep/a", 1.5));
  const std::string after_first = out.str();
  EXPECT_NE(after_first.find("sweep/a,enumerate,expected_width,1.5"), std::string::npos)
      << "row must stream out before the batch finishes";

  ScenarioResult failed;
  failed.scenario = "sweep/b";
  failed.analysis = "enumerate";
  failed.status = ResultStatus::kFailed;
  failed.error = "boom";
  sink.on_result(1, failed);
  EXPECT_NE(out.str().find("sweep/b,enumerate,error,boom"), std::string::npos);
  // Every result's rows end with exactly one "status" row (the sweep-resume
  // repair invariant): metric+status for the ok result, error+status here.
  EXPECT_NE(out.str().find("sweep/a,enumerate,status,ok"), std::string::npos);
  EXPECT_NE(out.str().find("sweep/b,enumerate,status,failed"), std::string::npos);
  EXPECT_EQ(sink.results(), 2u);
  EXPECT_EQ(sink.entries(), 4u);
}

TEST(Sink, JsonlSinkEmitsOneParsableObjectPerLine) {
  std::ostringstream out;
  JsonlSink sink{out};
  sink.on_result(0, make_result("a", 1.25));
  ScenarioResult failed;
  failed.scenario = "b";
  failed.analysis = "worstcase";
  failed.error = "bad \"quote\"";
  sink.on_result(1, failed);

  std::istringstream lines{out.str()};
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  {
    const json::JsonValue record = json::parse(line);
    EXPECT_EQ(json::get_uint(record, "index"), 0u);
    EXPECT_EQ(json::get_string(record, "scenario"), "a");
    EXPECT_EQ(json::get_double(json::object_field(record, "metrics"), "expected_width"), 1.25);
    EXPECT_EQ(json::get_string(record, "error"), "");
  }
  ASSERT_TRUE(std::getline(lines, line));
  {
    const json::JsonValue record = json::parse(line);
    EXPECT_EQ(json::get_uint(record, "index"), 1u);
    EXPECT_EQ(json::get_string(record, "error"), "bad \"quote\"");
  }
  EXPECT_FALSE(std::getline(lines, line));
  EXPECT_EQ(sink.results(), 2u);
}

TEST(Sink, ProgressSinkForwardsAndCounts) {
  RecordingSink inner;
  std::ostringstream log;
  ProgressSink progress{inner, log, 2};
  progress.on_result(0, make_result("x", 1.0));
  progress.on_result(1, make_result("y", 2.0));
  progress.on_finish(2);
  EXPECT_EQ(progress.done(), 2u);
  EXPECT_EQ(inner.names, (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(inner.finishes, 1);
  EXPECT_NE(log.str().find("[1/2] x"), std::string::npos);
  EXPECT_NE(log.str().find("[2/2] y"), std::string::npos);
}

TEST(RunnerStreaming, EmitsInInputOrderForEveryThreadCount) {
  std::vector<Scenario> batch;
  for (int i = 0; i < 12; ++i) {
    batch.push_back(cheap_scenario("stream/s" + std::to_string(i), 1 + i % 3));
  }

  const Runner serial{{.num_threads = 1}};
  const std::vector<ScenarioResult> baseline =
      serial.run_batch(std::span<const Scenario>{batch});

  for (const unsigned threads : {1u, 0u, 3u}) {
    RecordingSink sink;
    const Runner runner{{.num_threads = threads}};
    runner.run_batch(std::span<const Scenario>{batch}, sink);

    ASSERT_EQ(sink.indices.size(), batch.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < sink.indices.size(); ++i) {
      EXPECT_EQ(sink.indices[i], i) << "threads=" << threads;
      EXPECT_EQ(sink.names[i], batch[i].name) << "threads=" << threads;
      EXPECT_EQ(sink.names[i], baseline[i].scenario);
    }
    EXPECT_EQ(sink.finishes, 1);
    EXPECT_EQ(sink.finished_total, batch.size());
  }
}

TEST(RunnerStreaming, ExecutionScheduleDoesNotChangeEmissionOrder) {
  std::vector<Scenario> batch;
  for (int i = 0; i < 6; ++i) {
    batch.push_back(cheap_scenario("sched/s" + std::to_string(i), 1 + i % 2));
  }
  const std::vector<std::size_t> reversed = {5, 4, 3, 2, 1, 0};

  for (const unsigned threads : {1u, 0u}) {
    RecordingSink sink;
    const Runner runner{{.num_threads = threads}};
    runner.run_batch(std::span<const Scenario>{batch}, sink,
                     std::span<const std::size_t>{reversed});
    ASSERT_EQ(sink.indices.size(), batch.size());
    for (std::size_t i = 0; i < sink.indices.size(); ++i) {
      EXPECT_EQ(sink.indices[i], i);
      EXPECT_EQ(sink.names[i], batch[i].name);
    }
  }

  RecordingSink sink;
  const std::vector<std::size_t> bogus = {0, 0, 1, 2, 3, 4};
  EXPECT_THROW(Runner{}.run_batch(std::span<const Scenario>{batch}, sink,
                                  std::span<const std::size_t>{bogus}),
               std::invalid_argument);
}

TEST(RunnerStreaming, EmptyBatchShortCircuits) {
  RecordingSink sink;
  const Runner runner;
  runner.run_batch(std::span<const Scenario>{}, sink);
  EXPECT_TRUE(sink.indices.empty());
  EXPECT_EQ(sink.finishes, 1);
  EXPECT_EQ(sink.finished_total, 0u);

  const std::vector<ScenarioResult> results =
      runner.run_batch(std::span<const Scenario>{});
  EXPECT_TRUE(results.empty());
}

TEST(RunnerStreaming, FirstInputOrderExceptionWinsWithoutCapture) {
  // Slot 1 and slot 3 both fail; whatever order the tasks run in, the
  // propagated exception must be slot 1's, and the sink must have received
  // exactly the slots before it.
  std::vector<Scenario> batch;
  batch.push_back(cheap_scenario("err/ok0", 1));
  Scenario first_bad = cheap_scenario("err/first-bad", 1);
  first_bad.widths.clear();
  batch.push_back(first_bad);
  batch.push_back(cheap_scenario("err/ok2", 2));
  Scenario second_bad = cheap_scenario("err/second-bad", 1);
  second_bad.step = 0.0;
  batch.push_back(second_bad);

  for (const unsigned threads : {1u, 0u, 4u}) {
    RecordingSink sink;
    const Runner runner{{.num_threads = threads, .capture_errors = false}};
    try {
      runner.run_batch(std::span<const Scenario>{batch}, sink);
      FAIL() << "expected the batch to throw (threads=" << threads << ")";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string{e.what()}.find("err/first-bad"), std::string::npos)
          << "threads=" << threads << ": wrong exception: " << e.what();
    }
    EXPECT_EQ(sink.indices, (std::vector<std::size_t>{0})) << "threads=" << threads;
    EXPECT_EQ(sink.finishes, 0) << "a failed batch must not finish the stream";
  }
}

TEST(RunnerStreaming, ThrowingSinkAbortsBatchWithoutDuplicateDelivery) {
  std::vector<Scenario> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back(cheap_scenario("throw/s" + std::to_string(i), 1 + i % 2));
  }

  // Throws once at index 1; every index it saw must have arrived exactly once.
  class ThrowingSink final : public ResultSink {
   public:
    void on_result(std::size_t index, const ScenarioResult&) override {
      seen.push_back(index);
      if (index == 1) throw std::runtime_error("sink exploded");
    }
    std::vector<std::size_t> seen;
  };

  for (const unsigned threads : {1u, 3u}) {
    ThrowingSink sink;
    const Runner runner{{.num_threads = threads}};
    EXPECT_THROW(runner.run_batch(std::span<const Scenario>{batch}, sink), std::runtime_error)
        << "threads=" << threads << ": a sink failure is an output failure, not a "
        << "captured scenario error";
    // Exactly-once AND thread-count invariant: the broken sink saw indices
    // 0 and 1, once each, and nothing after its throw.
    EXPECT_EQ(sink.seen, (std::vector<std::size_t>{0, 1})) << "threads=" << threads;
  }
}

TEST(RunnerStreaming, VectorApiStillCapturesErrorsPerSlot) {
  std::vector<Scenario> batch;
  batch.push_back(cheap_scenario("cap/ok", 1));
  Scenario bad = cheap_scenario("cap/bad", 1);
  bad.widths.clear();
  batch.push_back(bad);

  const std::vector<ScenarioResult> results =
      Runner{}.run_batch(std::span<const Scenario>{batch});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].scenario, "cap/bad");
}

}  // namespace
}  // namespace arsf::scenario
