// Robust-execution-layer tests: CancelToken semantics, ThreadPool
// cancellation/teardown under load, deadlines (including the acceptance
// scenario bnb/large-n/n18-fa3), graceful degradation, retry/backoff,
// admission control, batch cancellation frames and the FaultPlan contract.
//
// The cardinal invariant under test everywhere: cancellation/faults only
// ever abort or annotate work — a run that completes is bit-identical to an
// undisturbed run, and a run that does not complete reports a structured
// status, never partial data.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "scenario/faultplan.h"
#include "scenario/registry.h"
#include "scenario/runner.h"
#include "scenario/sink.h"
#include "sim/engine/thread_pool.h"

namespace arsf::scenario {
namespace {

using sim::engine::CancelledError;
using sim::engine::CancelToken;
using sim::engine::ThreadPool;

Scenario cheap_scenario(const std::string& name, double w0) {
  Scenario s;
  s.name = name;
  s.widths = {w0, 2, 3};
  s.fa = 0;
  s.policy = PolicyKind::kNone;
  return s;
}

// ---------------------------------------------------------- CancelToken ----

TEST(CancelToken, ExplicitCancelIsNotATimeout) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_FALSE(token.timed_out());
  try {
    token.check();
    FAIL() << "check() must throw once cancelled";
  } catch (const CancelledError& e) {
    EXPECT_FALSE(e.timed_out());
    EXPECT_STREQ(e.what(), "cancelled");
  }
}

TEST(CancelToken, DeadlineExpiryLatchesTimedOut) {
  CancelToken token;
  token.set_deadline_after(std::chrono::milliseconds{1});
  std::this_thread::sleep_for(std::chrono::milliseconds{5});
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.timed_out());
  try {
    token.check();
    FAIL() << "check() must throw after deadline expiry";
  } catch (const CancelledError& e) {
    EXPECT_TRUE(e.timed_out());
    EXPECT_STREQ(e.what(), "deadline exceeded");
  }
}

TEST(CancelToken, ChildTripsWhenParentDoes) {
  CancelToken parent;
  CancelToken child{&parent};
  EXPECT_FALSE(child.cancelled());
  parent.cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_FALSE(child.timed_out()) << "a parent cancel is not a child timeout";
}

TEST(CancelToken, ChildInheritsParentTimeout) {
  CancelToken parent;
  parent.set_deadline_after(std::chrono::milliseconds{0});
  CancelToken child{&parent};
  std::this_thread::sleep_for(std::chrono::milliseconds{2});
  EXPECT_TRUE(child.cancelled());
  EXPECT_TRUE(child.timed_out()) << "a parent deadline expiry is a timeout in the child";
}

TEST(CancelToken, ChildDeadlineDoesNotLeakIntoParent) {
  CancelToken parent;
  CancelToken child{&parent};
  child.set_deadline_after(std::chrono::milliseconds{0});
  std::this_thread::sleep_for(std::chrono::milliseconds{2});
  EXPECT_TRUE(child.cancelled());
  EXPECT_FALSE(parent.cancelled()) << "per-attempt deadlines must stay per-attempt";
}

// ----------------------------------------------- ThreadPool under cancel ----

TEST(ThreadPoolCancel, CancelMidRunSkipsRemainingTasksAndThrows) {
  ThreadPool pool{4};
  CancelToken token;
  std::atomic<int> executed{0};
  EXPECT_THROW(
      pool.run(
          64,
          [&](std::size_t i) {
            if (i == 0) token.cancel();
            ++executed;
          },
          &token),
      CancelledError);
  // The cancelling task itself ran; the drain guarantees nothing is left
  // in flight once run() returns, but some tasks may legitimately have
  // started before the token tripped.
  EXPECT_GE(executed.load(), 1);
  EXPECT_LT(executed.load(), 64);
}

TEST(ThreadPoolCancel, FullyExecutedRunIgnoresLateCancel) {
  // If every task already executed when the token trips, run() must return
  // normally — a completed fan-out is indistinguishable from an uncancelled
  // one.
  ThreadPool pool{2};
  CancelToken token;
  std::atomic<int> executed{0};
  pool.run(
      8,
      [&](std::size_t i) {
        ++executed;
        if (i == 7) token.cancel();  // after the last task's work
      },
      &token);
  EXPECT_EQ(executed.load(), 8);
}

TEST(ThreadPoolCancel, TaskThrowingAfterCancellationDoesNotHang) {
  // A task that throws its own exception while the token is also tripped:
  // run() must terminate (drain completes) and surface SOME failure —
  // whichever of the task exception / CancelledError wins, never a hang.
  ThreadPool pool{4};
  CancelToken token;
  EXPECT_ANY_THROW(pool.run(
      32,
      [&](std::size_t i) {
        if (i == 3) {
          token.cancel();
          throw std::runtime_error("task failure after cancel");
        }
      },
      &token));
}

TEST(ThreadPoolTeardown, DestructionWhileCancelledRunDrains) {
  // Teardown while tasks are in flight: worker threads are parked on slow
  // tasks when the token trips; run() throws, and the pool must then destruct
  // cleanly with no worker left touching freed state (ASan-clean).
  for (int round = 0; round < 8; ++round) {
    CancelToken token;
    auto pool = std::make_unique<ThreadPool>(4);
    std::atomic<int> started{0};
    try {
      pool->run(
          16,
          [&](std::size_t) {
            ++started;
            std::this_thread::sleep_for(std::chrono::milliseconds{1});
            token.cancel();
          },
          &token);
    } catch (const CancelledError&) {
    }
    pool.reset();  // teardown immediately after the cancelled drain
    EXPECT_GE(started.load(), 1);
  }
}

TEST(ThreadPoolTeardown, ConstructRunDestroyStress) {
  // Rapid pool lifecycle churn with mixed clean/cancelled/throwing runs —
  // the no-leak no-deadlock soak (kept small; scaled by repetition in the
  // sanitizer CI configuration).
  for (int round = 0; round < 25; ++round) {
    ThreadPool pool{3};
    std::atomic<int> ran{0};
    pool.run(6, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 6);
    if (round % 3 == 1) {
      CancelToken token;
      token.cancel();  // pre-tripped: every task is claimed-and-skipped
      EXPECT_THROW(pool.run(6, [&](std::size_t) { ++ran; }, &token), CancelledError);
      EXPECT_EQ(ran.load(), 6) << "a pre-cancelled run must execute nothing";
    }
    if (round % 3 == 2) {
      EXPECT_THROW(pool.run(6,
                            [&](std::size_t i) {
                              if (i == 2) throw std::runtime_error("boom");
                            }),
                   std::runtime_error);
    }
  }
}

// ------------------------------------------------- deadlines + degrade ----

TEST(RobustRunner, AcceptanceDeadlineOnLargeBnbReportsTimedOutWithinBudget) {
  // The acceptance scenario: bnb/large-n/n18-fa3 takes ~0.5 s serial; a
  // 100 ms budget must produce `timed_out` within 2x the budget (engines
  // poll at block granularity, far finer than the budget).
  const Scenario* scenario = registry().find("bnb/large-n/n18-fa3");
  ASSERT_NE(scenario, nullptr);

  constexpr std::uint64_t kBudgetMs = 100;
  RunnerOptions options;
  options.num_threads = 1;
  options.default_deadline_ms = kBudgetMs;
  const auto t0 = std::chrono::steady_clock::now();
  const ScenarioResult result = Runner{options}.run(*scenario);
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count();

  EXPECT_EQ(result.status, ResultStatus::kTimedOut);
  EXPECT_FALSE(result.error.empty());
  EXPECT_TRUE(result.metrics.empty()) << "a timed-out run must never carry partial data";
  EXPECT_LE(elapsed_ms, static_cast<long long>(2 * kBudgetMs))
      << "cancellation latency must stay within 2x the budget";
}

TEST(RobustRunner, AcceptanceDegradeCompletesOverBudgetScenarioAsSmokeVariant) {
  // Same scenario, same hopeless budget, --degrade semantics: the run comes
  // back COMPLETED as the smoke variant, marked degraded, original name kept.
  const Scenario* scenario = registry().find("bnb/large-n/n18-fa3");
  ASSERT_NE(scenario, nullptr);

  RunnerOptions options;
  options.num_threads = 1;
  options.default_deadline_ms = 50;
  options.degrade = true;
  const ScenarioResult result = Runner{options}.run(*scenario);

  EXPECT_EQ(result.status, ResultStatus::kOk);
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.scenario, scenario->name) << "the frame keeps the original name";
  EXPECT_FALSE(result.metrics.empty()) << "the degraded run still yields real metrics";
}

TEST(RobustRunner, ScenarioDeadlineOverridesRunnerDefault) {
  const Scenario* scenario = registry().find("bnb/large-n/n18-fa3");
  ASSERT_NE(scenario, nullptr);
  Scenario with_own_deadline = *scenario;
  with_own_deadline.deadline_ms = 50;

  RunnerOptions options;
  options.num_threads = 1;
  options.default_deadline_ms = 0;  // runner imposes none; the scenario does
  const ScenarioResult result = Runner{options}.run(with_own_deadline);
  EXPECT_EQ(result.status, ResultStatus::kTimedOut);
}

TEST(RobustRunner, CompletedRunUnderDeadlineIsBitIdenticalToUndeadlined) {
  const Scenario scenario = cheap_scenario("robust/identical", 1);
  RunnerOptions plain;
  plain.num_threads = 1;
  RunnerOptions deadlined = plain;
  deadlined.default_deadline_ms = 60'000;  // far beyond the runtime

  const ScenarioResult a = Runner{plain}.run(scenario);
  const ScenarioResult b = Runner{deadlined}.run(scenario);
  EXPECT_EQ(to_json(0, a), to_json(0, b));
}

// ------------------------------------------------------ admission control ---

TEST(RobustRunner, OverBudgetScenarioIsRejectedWithoutRunning) {
  RunnerOptions options;
  options.num_threads = 1;
  options.admission_budget = 1;  // every real scenario estimates above this
  const ScenarioResult result = Runner{options}.run(cheap_scenario("robust/rejected", 1));
  EXPECT_EQ(result.status, ResultStatus::kRejected);
  EXPECT_NE(result.error.find("admission control"), std::string::npos);
  EXPECT_TRUE(result.metrics.empty());
}

TEST(RobustRunner, DegradeReadmitsOverBudgetScenario) {
  RunnerOptions options;
  options.num_threads = 1;
  options.admission_budget = 1;
  options.degrade = true;
  const ScenarioResult result = Runner{options}.run(cheap_scenario("robust/readmit", 1));
  EXPECT_EQ(result.status, ResultStatus::kOk);
  EXPECT_TRUE(result.degraded);
}

// ------------------------------------------------------------- retry -------

TEST(RobustRunner, TransientFaultRetriesIntoRetriedOkWithIdenticalMetrics) {
  FaultPlan plan;
  plan.seed = 5;
  plan.rules = {FaultRule{"analysis", /*nth=*/1, 0.0, /*attempt_limit=*/1}};
  const FaultInjector injector{plan};

  const Scenario scenario = cheap_scenario("robust/retry", 1);
  RunnerOptions options;
  options.num_threads = 1;
  options.fault_injector = &injector;
  options.retry.max_attempts = 3;
  const ScenarioResult retried = Runner{options}.run(scenario);
  EXPECT_EQ(retried.status, ResultStatus::kRetriedOk);
  EXPECT_EQ(retried.attempts, 2u);
  EXPECT_TRUE(retried.error.empty());

  RunnerOptions clean_options;
  clean_options.num_threads = 1;
  const ScenarioResult clean = Runner{clean_options}.run(scenario);
  ASSERT_EQ(retried.metrics.size(), clean.metrics.size())
      << "a retried run must produce exactly the unfaulted metrics";
  for (std::size_t i = 0; i < clean.metrics.size(); ++i) {
    EXPECT_EQ(retried.metrics[i].key, clean.metrics[i].key);
    EXPECT_EQ(retried.metrics[i].value, clean.metrics[i].value);
  }
}

TEST(RobustRunner, PersistentFaultExhaustsRetryBudget) {
  FaultPlan plan;
  plan.seed = 5;
  plan.rules = {FaultRule{"analysis", 1, 0.0, /*attempt_limit=*/0}};
  const FaultInjector injector{plan};

  RunnerOptions options;
  options.num_threads = 1;
  options.fault_injector = &injector;
  options.retry.max_attempts = 3;
  const ScenarioResult result = Runner{options}.run(cheap_scenario("robust/exhaust", 1));
  EXPECT_EQ(result.status, ResultStatus::kFailed);
  EXPECT_EQ(result.attempts, 3u);
  EXPECT_NE(result.error.find("injected fault"), std::string::npos);
}

TEST(RobustRunner, RetryDisabledFailsOnFirstAttempt) {
  FaultPlan plan;
  plan.seed = 5;
  plan.rules = {FaultRule{"analysis", 1, 0.0, 0}};
  const FaultInjector injector{plan};

  RunnerOptions options;
  options.num_threads = 1;
  options.fault_injector = &injector;
  options.retry.max_attempts = 3;
  options.retry.retry_failed = false;
  const ScenarioResult result = Runner{options}.run(cheap_scenario("robust/noretry", 1));
  EXPECT_EQ(result.status, ResultStatus::kFailed);
  EXPECT_EQ(result.attempts, 1u);
}

// -------------------------------------------------- batch cancellation -----

TEST(RobustRunner, PreCancelledBatchDeliversCancelledFramePerSlotInOrder) {
  std::vector<Scenario> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back(cheap_scenario("cancel/s" + std::to_string(i), 1 + i % 2));
  }
  CancelToken token;
  token.cancel();

  for (const unsigned threads : {1u, 0u}) {
    RunnerOptions options;
    options.num_threads = threads;
    options.cancel = &token;
    CollectingSink sink;
    Runner{options}.run_batch(std::span<const Scenario>{batch}, sink);
    ASSERT_EQ(sink.results().size(), batch.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(sink.results()[i].scenario, batch[i].name);
      EXPECT_EQ(sink.results()[i].status, ResultStatus::kCancelled);
      EXPECT_TRUE(sink.results()[i].metrics.empty());
    }
  }
}

TEST(RobustRunner, UntrippedTokenChangesNothing) {
  std::vector<Scenario> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back(cheap_scenario("cancel/clean" + std::to_string(i), 1 + i % 2));
  }
  CancelToken token;  // never tripped
  RunnerOptions with_token;
  with_token.num_threads = 1;
  with_token.cancel = &token;
  RunnerOptions without;
  without.num_threads = 1;

  CollectingSink a;
  Runner{with_token}.run_batch(std::span<const Scenario>{batch}, a);
  CollectingSink b;
  Runner{without}.run_batch(std::span<const Scenario>{batch}, b);
  ASSERT_EQ(a.results().size(), b.results().size());
  for (std::size_t i = 0; i < a.results().size(); ++i) {
    EXPECT_EQ(to_json(i, a.results()[i]), to_json(i, b.results()[i]));
  }
}

// ------------------------------------------------------- ProgressSink ------

TEST(RobustSinks, ProgressSinkCountsFailuresAndTimeoutsSeparately) {
  CollectingSink inner;
  std::ostringstream log;
  ProgressSink progress{inner, log, 4};

  ScenarioResult ok;
  ok.scenario = "p/ok";
  ok.analysis = "enumerate";
  progress.on_result(0, ok);

  ScenarioResult failed;
  failed.scenario = "p/failed";
  failed.analysis = "enumerate";
  failed.status = ResultStatus::kFailed;
  failed.error = "boom";
  progress.on_result(1, failed);

  ScenarioResult timed_out;
  timed_out.scenario = "p/slow";
  timed_out.analysis = "worstcase";
  timed_out.status = ResultStatus::kTimedOut;
  timed_out.error = "deadline exceeded";
  progress.on_result(2, timed_out);

  ScenarioResult degraded;
  degraded.scenario = "p/degraded";
  degraded.analysis = "worstcase";
  degraded.status = ResultStatus::kRetriedOk;
  degraded.attempts = 2;
  degraded.degraded = true;
  progress.on_result(3, degraded);
  progress.on_finish(4);

  EXPECT_EQ(progress.done(), 4u);
  EXPECT_EQ(progress.completed(), 2u);
  EXPECT_EQ(progress.failed(), 1u);
  EXPECT_EQ(progress.timed_out(), 1u);
  EXPECT_NE(log.str().find("failed: boom"), std::string::npos);
  EXPECT_NE(log.str().find("timed_out: deadline exceeded"), std::string::npos);
  EXPECT_NE(log.str().find("(degraded)"), std::string::npos);
}

// --------------------------------------------------------- FaultPlan -------

TEST(FaultPlanContract, ValidateRejectsBadPlans) {
  FaultPlan unknown_site;
  unknown_site.rules = {FaultRule{"warp-core", 1, 0.0, 1}};
  EXPECT_THROW(unknown_site.validate(), std::invalid_argument);

  FaultPlan bad_probability;
  bad_probability.rules = {FaultRule{"analysis", 0, 1.5, 1}};
  EXPECT_THROW(bad_probability.validate(), std::invalid_argument);

  FaultPlan no_trigger;
  no_trigger.rules = {FaultRule{"analysis", 0, 0.0, 1}};
  EXPECT_THROW(no_trigger.validate(), std::invalid_argument);

  FaultPlan fine;
  fine.rules = {FaultRule{"analysis", 1, 0.0, 1}};
  EXPECT_NO_THROW(fine.validate());
}

TEST(FaultPlanContract, DecisionsArePureAndSeedSensitive) {
  FaultPlan plan;
  plan.seed = 42;
  plan.rules = {FaultRule{"analysis", 0, 0.5, 0}};
  const FaultInjector a{plan};
  const FaultInjector b{plan};
  bool any_differs_by_seed = false;
  plan.seed = 43;
  const FaultInjector c{plan};
  for (std::uint64_t key = 1; key <= 64; ++key) {
    EXPECT_EQ(a.should_fail("analysis", key, 1), b.should_fail("analysis", key, 1))
        << "equal plans must decide identically (key " << key << ")";
    if (a.should_fail("analysis", key, 1) != c.should_fail("analysis", key, 1)) {
      any_differs_by_seed = true;
    }
  }
  EXPECT_TRUE(any_differs_by_seed) << "the seed must actually enter the decision";
}

TEST(FaultPlanContract, JsonRoundTripRejectsUnknownKeys) {
  FaultPlan plan;
  plan.seed = 9;
  plan.rules = {FaultRule{"sink", 2, 0.0, 1}};
  EXPECT_EQ(FaultPlan::from_json(plan.to_json()), plan);
  EXPECT_THROW(FaultPlan::from_json(R"({"seed":1,"rules":[],"surprise":true})"),
               std::invalid_argument);
}

}  // namespace
}  // namespace arsf::scenario
