// Unit tests for streaming statistics (support/stats.h).

#include <gtest/gtest.h>

#include "support/stats.h"

namespace arsf::support {
namespace {

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);  // population
  EXPECT_NEAR(stats.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, EmptyIsSafe) {
  const RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.sem(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats left;
  RunningStats right;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.1 * i * i - 3.0 * i;
    (i % 2 ? left : right).add(x);
    all.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats stats;
  stats.add(1.0);
  stats.add(3.0);
  RunningStats empty;
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 2u);
  empty.merge(stats);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(WeightedMean, Weighted) {
  WeightedMean mean;
  mean.add(10.0, 1.0);
  mean.add(20.0, 3.0);
  EXPECT_DOUBLE_EQ(mean.mean(), 17.5);
  EXPECT_DOUBLE_EQ(mean.total_weight(), 4.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram hist{0.0, 10.0, 5};
  hist.add(0.5);    // bin 0
  hist.add(9.99);   // bin 4
  hist.add(-3.0);   // clamps to bin 0
  hist.add(42.0);   // clamps to bin 4
  EXPECT_DOUBLE_EQ(hist.count(0), 2.0);
  EXPECT_DOUBLE_EQ(hist.count(4), 2.0);
  EXPECT_DOUBLE_EQ(hist.total(), 4.0);
}

TEST(Histogram, Quantiles) {
  Histogram hist{0.0, 100.0, 100};
  for (int i = 0; i < 100; ++i) hist.add(i + 0.5);
  EXPECT_NEAR(hist.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(hist.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(hist.quantile(0.0), 0.0, 1.0);
  EXPECT_NEAR(hist.quantile(1.0), 100.0, 1.0);
}

TEST(Histogram, RenderContainsBars) {
  Histogram hist{0.0, 2.0, 2};
  hist.add(0.5);
  hist.add(0.6);
  hist.add(1.5);
  const std::string text = hist.render(10);
  EXPECT_NE(text.find("##########"), std::string::npos);  // peak bin full width
  EXPECT_NE(text.find("#####"), std::string::npos);
}

TEST(Helpers, MeanOfAndMedianOf) {
  const std::vector<double> odd = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(mean_of(odd), 3.0);
  EXPECT_DOUBLE_EQ(median_of(odd), 3.0);
  const std::vector<double> even = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median_of(even), 2.5);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(median_of({}), 0.0);
}

TEST(Helpers, KahanCompensation) {
  // Sum many tiny values next to a large one; naive summation loses them.
  std::vector<double> values{1e16};
  for (int i = 0; i < 1000; ++i) values.push_back(1.0);
  const double mean = mean_of(values);
  EXPECT_NEAR(mean * static_cast<double>(values.size()), 1e16 + 1000.0, 1.0);
}

}  // namespace
}  // namespace arsf::support
