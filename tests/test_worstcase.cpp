// Unit tests for the exhaustive worst-case search (sim/worstcase.h).

#include <gtest/gtest.h>

#include "sim/worstcase.h"

namespace arsf::sim {
namespace {

TEST(WorstCase, NoAttackSmallConfig) {
  // Two width-2 intervals containing 0, f=0: fusion = intersection; the
  // worst case (widest intersection) is both fully aligned -> width 2.
  EXPECT_EQ(worst_case_no_attack(std::vector<Tick>{2, 2}, 0), 2);
  // n=3 f=1: fusion = [median lo, median up]; the worst case aligns the two
  // width-4 intervals exactly (fusion = their common extent, width 4 — the
  // f < ceil(n/2) guarantee caps it at the width of some interval).
  EXPECT_EQ(worst_case_no_attack(std::vector<Tick>{2, 4, 4}, 1), 4);
}

TEST(WorstCase, ConfigurationsCounted) {
  WorstCaseConfig config;
  config.widths = {2, 3};
  config.f = 0;
  const auto result = worst_case_fusion(config);
  EXPECT_EQ(result.configurations, 3u * 4u);
  EXPECT_EQ(result.argmax.size(), 2u);
}

TEST(WorstCase, AttackedSearchRespectsDetection) {
  // One attacked width-4 interval among two correct width-2; f=1.  With the
  // undetected constraint the attacked interval must touch the fusion
  // interval; dropping the constraint can only allow more (never less).
  WorstCaseConfig with_detection;
  with_detection.widths = {2, 2, 4};
  with_detection.f = 1;
  with_detection.attacked = {2};
  const Tick constrained = worst_case_fusion(with_detection).max_width;

  WorstCaseConfig without = with_detection;
  without.require_undetected = false;
  const Tick unconstrained = worst_case_fusion(without).max_width;
  EXPECT_GE(unconstrained, constrained);
  EXPECT_GT(constrained, 0);
}

TEST(WorstCase, AttackedCanOnlyHelp) {
  // For any fixed attacked set, the worst case is at least the no-attack
  // worst case (the attacker can always transmit a correct placement).
  const std::vector<Tick> widths = {2, 3, 4};
  const Tick baseline = worst_case_no_attack(widths, 1);
  for (SensorId id = 0; id < 3; ++id) {
    WorstCaseConfig config;
    config.widths = widths;
    config.f = 1;
    config.attacked = {id};
    EXPECT_GE(worst_case_fusion(config).max_width, baseline) << "attacked " << id;
  }
}

TEST(WorstCase, OverSetsReturnsMaximisingSet) {
  const std::vector<Tick> widths = {2, 3, 5};
  std::vector<SensorId> best_set;
  const Tick best = worst_case_over_sets(widths, 1, 1, &best_set);
  ASSERT_EQ(best_set.size(), 1u);
  // Verify it really is the max over the three singleton sets.
  Tick manual_best = -1;
  for (SensorId id = 0; id < 3; ++id) {
    WorstCaseConfig config;
    config.widths = widths;
    config.f = 1;
    config.attacked = {id};
    manual_best = std::max(manual_best, worst_case_fusion(config).max_width);
  }
  EXPECT_EQ(best, manual_best);
}

TEST(WorstCase, OverSetsParallelMatchesSerial) {
  // The subset fan-out must be bit-identical for every thread count,
  // including the reported maximising set (lowest subset bitmask).
  const std::vector<Tick> widths = {2, 2, 3, 4, 5};
  std::vector<SensorId> serial_set;
  const Tick serial = worst_case_over_sets(widths, 2, 2, &serial_set, 1);
  for (const unsigned threads : {0u, 2u, 3u, 7u}) {
    std::vector<SensorId> parallel_set;
    const Tick parallel = worst_case_over_sets(widths, 2, 2, &parallel_set, threads);
    EXPECT_EQ(parallel, serial) << "threads " << threads;
    EXPECT_EQ(parallel_set, serial_set) << "threads " << threads;
  }
}

TEST(WorstCase, OverSetsHonoursRequireUndetected) {
  // Dropping the stealth constraint can only allow more, and must match the
  // per-set searches with the same flag.
  const std::vector<Tick> widths = {2, 2, 4};
  const Tick constrained = worst_case_over_sets(widths, 1, 1, nullptr, 1, true);
  const Tick unconstrained = worst_case_over_sets(widths, 1, 1, nullptr, 1, false);
  EXPECT_GE(unconstrained, constrained);
  Tick manual = -1;
  for (SensorId id = 0; id < 3; ++id) {
    WorstCaseConfig config;
    config.widths = widths;
    config.f = 1;
    config.attacked = {id};
    config.require_undetected = false;
    manual = std::max(manual, worst_case_fusion(config).max_width);
  }
  EXPECT_EQ(unconstrained, manual);
}

TEST(WorstCase, OverSetsEdgeCardinalities) {
  const std::vector<Tick> widths = {2, 3, 4};
  // fa = 0: the single empty set equals the no-attack worst case.
  std::vector<SensorId> set;
  EXPECT_EQ(worst_case_over_sets(widths, 1, 0, &set), worst_case_no_attack(widths, 1));
  EXPECT_TRUE(set.empty());
  // fa = n: one subset again (everyone attacked).
  const Tick all = worst_case_over_sets(widths, 1, 3, &set, 2);
  EXPECT_EQ(set.size(), 3u);
  EXPECT_GE(all, worst_case_no_attack(widths, 1));
  // fa > n: no subsets exist — every over-sets entry point rejects the
  // cardinality loudly instead of returning a -1 that would read as "every
  // configuration fused empty".
  EXPECT_THROW((void)worst_case_over_sets(widths, 1, 4), std::invalid_argument);
  EXPECT_THROW((void)worst_case_over_sets_fast(widths, 1, 4), std::invalid_argument);
  EXPECT_THROW((void)worst_case_over_sets_bnb(widths, 1, 4), std::invalid_argument);
}

TEST(WorstCase, ArgmaxAchievesReportedWidth) {
  WorstCaseConfig config;
  config.widths = {2, 3, 4};
  config.f = 1;
  config.attacked = {0};
  const auto result = worst_case_fusion(config);
  const TickInterval fused = fused_interval_ticks(result.argmax, config.f);
  ASSERT_FALSE(fused.is_empty());
  EXPECT_EQ(fused.width(), result.max_width);
  // And the attacked interval indeed intersects the fusion interval.
  EXPECT_TRUE(result.argmax[0].intersects(fused));
}

TEST(WorstCase, EmptyInput) {
  WorstCaseConfig config;
  const auto result = worst_case_fusion(config);
  EXPECT_EQ(result.max_width, -1);
}

}  // namespace
}  // namespace arsf::sim
