// Unit tests for the abstract sensor models (sensors/sensor.h, models.h):
// the correctness guarantee (interval contains the true value), noise
// models, fixed-point bus encoding and the LandShark suite derivation.

#include <gtest/gtest.h>

#include <cmath>

#include "core/fusion.h"
#include "sensors/models.h"

namespace arsf::sensors {
namespace {

TEST(Sensor, IntervalAlwaysContainsTruth) {
  support::Rng rng{1};
  for (const NoiseModel model :
       {NoiseModel::kUniform, NoiseModel::kTruncGaussian, NoiseModel::kQuantized}) {
    const AbstractSensor sensor{SensorSpec{"s", 1.0, false}, model, 1.0 / 3.0,
                                model == NoiseModel::kQuantized ? 0.07 : 0.0};
    for (int i = 0; i < 5000; ++i) {
      const double truth = rng.uniform_real(-20.0, 20.0);
      const Reading reading = sensor.sample(truth, rng);
      EXPECT_TRUE(reading.interval.contains(truth))
          << to_string(model) << " interval " << to_string(reading.interval) << " truth "
          << truth;
      EXPECT_NEAR(reading.interval.width(), 1.0, 1e-12);
    }
  }
}

TEST(Sensor, BusEncodingKeepsGuaranteeAndGrid) {
  support::Rng rng{2};
  const double grid = 0.01;
  const AbstractSensor sensor{SensorSpec{"s", 0.2, false}, NoiseModel::kUniform, 1.0 / 3.0,
                              0.0, grid};
  for (int i = 0; i < 5000; ++i) {
    const double truth = rng.uniform_real(5.0, 15.0);
    const Reading reading = sensor.sample(truth, rng);
    EXPECT_TRUE(reading.interval.contains(truth));
    // Measurement is exactly on the grid.
    const double ratio = reading.measurement / grid;
    EXPECT_NEAR(ratio, std::round(ratio), 1e-6);
  }
}

TEST(Sensor, UniformNoiseCoversFullBand) {
  support::Rng rng{3};
  const AbstractSensor sensor{SensorSpec{"s", 2.0, false}, NoiseModel::kUniform};
  double min_err = 1e9;
  double max_err = -1e9;
  for (int i = 0; i < 20000; ++i) {
    const Reading reading = sensor.sample(0.0, rng);
    min_err = std::min(min_err, reading.measurement);
    max_err = std::max(max_err, reading.measurement);
  }
  EXPECT_LT(min_err, -0.95);
  EXPECT_GT(max_err, 0.95);
}

TEST(Sensor, TruncGaussianConcentrates) {
  support::Rng rng{4};
  const AbstractSensor sensor{SensorSpec{"s", 2.0, false}, NoiseModel::kTruncGaussian};
  int inside_third = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const Reading reading = sensor.sample(0.0, rng);
    if (std::abs(reading.measurement) < 1.0 / 3.0) ++inside_third;
  }
  // ~68% within one sigma (= third of the half-width); uniform would be 33%.
  EXPECT_GT(inside_third, kDraws / 2);
}

TEST(Sensor, QuantizedSnapsToResolution) {
  support::Rng rng{5};
  const AbstractSensor sensor{SensorSpec{"s", 1.0, false}, NoiseModel::kQuantized, 1.0 / 3.0,
                              0.25};
  for (int i = 0; i < 1000; ++i) {
    const Reading reading = sensor.sample(0.0, rng);
    const double ratio = reading.measurement / 0.25;
    const bool on_resolution = std::abs(ratio - std::round(ratio)) < 1e-9;
    const bool clamped = std::abs(std::abs(reading.measurement) - 0.5) < 1e-9;
    EXPECT_TRUE(on_resolution || clamped) << reading.measurement;
  }
}

TEST(Sensor, InvalidConstruction) {
  EXPECT_THROW((AbstractSensor{SensorSpec{"s", 0.0, false}}), std::invalid_argument);
  EXPECT_THROW((AbstractSensor{SensorSpec{"s", 1.0, false}, NoiseModel::kQuantized}),
               std::invalid_argument);
}

TEST(Models, EncoderWidthMatchesPaper) {
  // 192 cycles/rev, 0.5% measuring error, 0.05% jitter -> 0.2 mph.
  EXPECT_NEAR(encoder_interval_width(EncoderSpec{}), 0.2, 1e-9);
}

TEST(Models, LandsharkSuiteWidths) {
  const auto suite = landshark_suite();
  ASSERT_EQ(suite.size(), 4u);
  EXPECT_DOUBLE_EQ(suite[0].width(), 1.0);  // gps
  EXPECT_DOUBLE_EQ(suite[1].width(), 2.0);  // camera
  EXPECT_DOUBLE_EQ(suite[2].width(), 0.2);  // encoder-left
  EXPECT_DOUBLE_EQ(suite[3].width(), 0.2);  // encoder-right
}

TEST(Models, LandsharkConfig) {
  const SystemConfig config = landshark_config();
  EXPECT_EQ(config.n(), 4u);
  EXPECT_EQ(config.f, 1);  // ceil(4/2) - 1
  EXPECT_NO_THROW(config.validate());
}

TEST(Models, LandsharkFusionContainsTrueSpeed) {
  support::Rng rng{7};
  const auto suite = landshark_suite();
  const SystemConfig config = landshark_config();
  for (int i = 0; i < 2000; ++i) {
    const double truth = rng.uniform_real(5.0, 15.0);
    std::vector<Interval> intervals;
    for (const auto& sensor : suite) intervals.push_back(sensor.sample(truth, rng).interval);
    const auto result = fuse(intervals, config.f);
    ASSERT_TRUE(result.interval);
    EXPECT_TRUE(result.interval->contains(truth));
  }
}

}  // namespace
}  // namespace arsf::sensors
