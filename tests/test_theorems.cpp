// Empirical verification of the paper's theorems on exhaustive small grids.
//
//   * Marzullo guarantees (Section II-A): f < ceil(n/3) / f < ceil(n/2)
//     width bounds, fusion contains the truth when <= f sensors lie.
//   * Theorem 2: |S| <= |sc1| + |sc2| (two largest correct widths).
//   * Theorem 3: attacking the fa largest intervals leaves the worst case
//     unchanged: |SF| = |Sna|.
//   * Theorem 4: the global worst case |Swc_fa| is achieved by attacking the
//     fa smallest intervals.
//   * Theorem 1: in the two sufficient-condition cases, the constructed
//     attack is optimal for every completion of the unseen intervals.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/bounds.h"
#include "sim/worstcase.h"
#include "support/rng.h"

namespace arsf {
namespace {

TEST(MarzulloGuarantees, FusionContainsTruthWithAtMostFLiars) {
  // Random configurations: n in 3..6, up to f liars anywhere; the fusion
  // interval must contain the true value (0).
  support::Rng rng{21};
  for (int trial = 0; trial < 3000; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(3, 6));
    const int f = max_bounded_f(n);
    const int liars = static_cast<int>(rng.uniform_int(0, f));
    std::vector<TickInterval> intervals;
    for (int i = 0; i < n; ++i) {
      const Tick width = rng.uniform_int(1, 8);
      if (i < liars) {
        // Liar: arbitrary placement, may exclude 0.
        const Tick lo = rng.uniform_int(-20, 20);
        intervals.push_back(TickInterval{lo, lo + width});
      } else {
        const Tick lo = rng.uniform_int(-width, 0);
        intervals.push_back(TickInterval{lo, lo + width});
      }
    }
    const TickInterval fused = fused_interval_ticks(intervals, f);
    ASSERT_FALSE(fused.is_empty());
    EXPECT_TRUE(fused.contains(Tick{0}))
        << "n=" << n << " f=" << f << " liars=" << liars << " trial=" << trial;
  }
}

TEST(MarzulloGuarantees, WidthBoundedBySomeCorrectWhenFBelowThird) {
  support::Rng rng{22};
  for (int trial = 0; trial < 2000; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(4, 7));
    const int f = ceil_div(n, 3) - 1;  // strictly below ceil(n/3)
    if (f < 0) continue;
    const int liars = f;
    std::vector<TickInterval> intervals;
    Tick max_correct_width = 0;
    for (int i = 0; i < n; ++i) {
      const Tick width = rng.uniform_int(1, 8);
      if (i < liars) {
        const Tick lo = rng.uniform_int(-20, 20);
        intervals.push_back(TickInterval{lo, lo + width});
      } else {
        const Tick lo = rng.uniform_int(-width, 0);
        intervals.push_back(TickInterval{lo, lo + width});
        max_correct_width = std::max(max_correct_width, width);
      }
    }
    const TickInterval fused = fused_interval_ticks(intervals, f);
    ASSERT_FALSE(fused.is_empty());
    EXPECT_LE(fused.width(), max_correct_width) << "trial " << trial;
  }
}

TEST(MarzulloGuarantees, WidthBoundedBySomeIntervalWhenFBelowHalf) {
  support::Rng rng{23};
  for (int trial = 0; trial < 2000; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(3, 6));
    const int f = max_bounded_f(n);
    const int liars = f;
    std::vector<TickInterval> intervals;
    Tick max_width = 0;
    for (int i = 0; i < n; ++i) {
      const Tick width = rng.uniform_int(1, 8);
      max_width = std::max(max_width, width);
      if (i < liars) {
        const Tick lo = rng.uniform_int(-20, 20);
        intervals.push_back(TickInterval{lo, lo + width});
      } else {
        const Tick lo = rng.uniform_int(-width, 0);
        intervals.push_back(TickInterval{lo, lo + width});
      }
    }
    const TickInterval fused = fused_interval_ticks(intervals, f);
    ASSERT_FALSE(fused.is_empty());
    EXPECT_LE(fused.width(), max_width) << "trial " << trial;
  }
}

TEST(Theorem2, HoldsOnRandomUndetectedConfigurations) {
  support::Rng rng{24};
  for (int trial = 0; trial < 2000; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(3, 6));
    const int f = max_bounded_f(n);
    const int fa = f;
    std::vector<TickInterval> intervals;
    std::vector<TickInterval> correct;
    for (int i = 0; i < n; ++i) {
      const Tick width = rng.uniform_int(1, 8);
      if (i < fa) {
        const Tick lo = rng.uniform_int(-15, 15);
        intervals.push_back(TickInterval{lo, lo + width});
      } else {
        const Tick lo = rng.uniform_int(-width, 0);
        intervals.push_back(TickInterval{lo, lo + width});
        correct.push_back(intervals.back());
      }
    }
    const TickInterval fused = fused_interval_ticks(intervals, f);
    ASSERT_FALSE(fused.is_empty());
    // The bound applies to undetected attacks; skip configurations where an
    // attacked interval would be discarded.
    bool undetected = true;
    for (int i = 0; i < fa; ++i) undetected &= intervals[i].intersects(fused);
    if (!undetected) continue;
    EXPECT_LE(fused.width(), theorem2_bound_ticks(correct)) << "trial " << trial;
  }
}

TEST(Theorem3, AttackingLargestLeavesWorstCaseUnchanged) {
  // |SF| = |Sna| when the fa largest intervals are attacked, exhaustively on
  // several small width sets.
  const std::vector<std::vector<Tick>> families = {
      {2, 3, 5}, {1, 4, 4}, {2, 2, 6}, {2, 3, 4, 5}, {1, 2, 3, 6},
  };
  for (const auto& widths : families) {
    const int n = static_cast<int>(widths.size());
    const int f = max_bounded_f(n);
    const std::size_t fa = static_cast<std::size_t>(f);
    // Attacked = indices of the fa largest widths.
    std::vector<SensorId> ids(widths.size());
    std::iota(ids.begin(), ids.end(), SensorId{0});
    std::sort(ids.begin(), ids.end(),
              [&](SensorId a, SensorId b) { return widths[a] > widths[b]; });
    sim::WorstCaseConfig config;
    config.widths = widths;
    config.f = f;
    config.attacked.assign(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(fa));
    std::sort(config.attacked.begin(), config.attacked.end());

    const Tick attacked_worst = sim::worst_case_fusion(config).max_width;
    const Tick clean_worst = sim::worst_case_no_attack(widths, f);
    EXPECT_EQ(attacked_worst, clean_worst)
        << "widths {" << widths[0] << ",...}, fa=" << fa;
  }
}

TEST(Theorem4, SmallestIntervalsAchieveGlobalWorstCase) {
  const std::vector<std::vector<Tick>> families = {
      {2, 3, 5}, {1, 4, 4}, {2, 2, 6}, {2, 3, 4, 5}, {1, 2, 3, 6},
  };
  for (const auto& widths : families) {
    const int n = static_cast<int>(widths.size());
    const int f = max_bounded_f(n);
    const std::size_t fa = static_cast<std::size_t>(f);

    const Tick global = sim::worst_case_over_sets(widths, f, fa);

    std::vector<SensorId> ids(widths.size());
    std::iota(ids.begin(), ids.end(), SensorId{0});
    std::sort(ids.begin(), ids.end(),
              [&](SensorId a, SensorId b) { return widths[a] < widths[b]; });
    sim::WorstCaseConfig config;
    config.widths = widths;
    config.f = f;
    config.attacked.assign(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(fa));
    std::sort(config.attacked.begin(), config.attacked.end());
    const Tick smallest_attacked = sim::worst_case_fusion(config).max_width;

    EXPECT_EQ(smallest_attacked, global) << "widths {" << widths[0] << ",...}";
  }
}

TEST(Theorems34, AttackingPreciseBeatsAttackingImprecise) {
  // The operational reading of Thms 3/4 used throughout Section IV: the
  // worst case with the smallest interval attacked is at least the worst
  // case with the largest attacked.
  const std::vector<Tick> widths = {2, 4, 6};
  sim::WorstCaseConfig smallest;
  smallest.widths = widths;
  smallest.f = 1;
  smallest.attacked = {0};
  sim::WorstCaseConfig largest = smallest;
  largest.attacked = {2};
  EXPECT_GE(sim::worst_case_fusion(smallest).max_width,
            sim::worst_case_fusion(largest).max_width);
}

// ---------------------------------------------------------------------------
// Theorem 1: sufficient conditions for an optimal partial-knowledge attack.

// Brute force: best achievable fused width for a given completion when the
// attacker knows everything (upper bound on any policy).
Tick best_width_for_completion(const std::vector<TickInterval>& correct_seen,
                               const std::vector<TickInterval>& unseen,
                               const TickInterval& attack, int f) {
  std::vector<TickInterval> all = correct_seen;
  all.insert(all.end(), unseen.begin(), unseen.end());
  all.push_back(attack);
  return fused_width_ticks(all, f);
}

TEST(Theorem1, Case1CoincidingSeenIntervalsGuaranteedOptimalAttack) {
  // Case 1: all seen correct intervals coincide (block S = [0, 4]) and every
  // unseen correct interval has width at most (|mmin| - |S|)/2 = 3, so every
  // placement of an unseen correct interval stays inside
  // U = [S.lo - 3, S.hi + 3] = [-3, 7].  Theorem 1's policy makes every
  // attacked interval contain all correct intervals; with |U| equal to the
  // attacked width the placement is exactly U, and it must match the
  // full-information optimum (problem (1)) for EVERY completion.
  // n=5, f=2, fa=2: seen = {s1, s2}, one unseen correct.
  const int f = 2;
  const std::vector<TickInterval> seen = {{0, 4}, {0, 4}};
  const TickInterval delta{0, 4};
  const Tick attacked_width = 10;
  const Tick slack = (attacked_width - delta.width()) / 2;  // 3
  const TickInterval guaranteed{delta.lo - slack, delta.hi + slack};  // [-3, 7]
  ASSERT_EQ(guaranteed.width(), attacked_width);

  for (Tick unseen_width = 1; unseen_width <= slack; ++unseen_width) {
    for (Tick t = delta.lo; t <= delta.hi; ++t) {       // true value anywhere in Delta
      for (Tick lo = t - unseen_width; lo <= t; ++lo) {  // unseen contains t
        const std::vector<TickInterval> unseen = {{lo, lo + unseen_width}};
        std::vector<TickInterval> all = seen;
        all.insert(all.end(), unseen.begin(), unseen.end());
        all.push_back(guaranteed);
        all.push_back(guaranteed);
        const Tick achieved = fused_width_ticks(all, f);

        // Exhaustive alternative stealthy attacks for this completion.
        Tick best = -1;
        for (Tick lo1 = -16; lo1 <= 10; ++lo1) {
          for (Tick lo2 = -16; lo2 <= 10; ++lo2) {
            const TickInterval a1{lo1, lo1 + attacked_width};
            const TickInterval a2{lo2, lo2 + attacked_width};
            if (!a1.contains(delta) || !a2.contains(delta)) continue;
            std::vector<TickInterval> candidate = seen;
            candidate.insert(candidate.end(), unseen.begin(), unseen.end());
            candidate.push_back(a1);
            candidate.push_back(a2);
            best = std::max(best, fused_width_ticks(candidate, f));
          }
        }
        EXPECT_EQ(achieved, best) << "w=" << unseen_width << " t=" << t << " lo=" << lo;
      }
    }
  }
}

TEST(Theorem1, Case2WideAttackedIntervalPinsTheEndpoints) {
  // Case 2 structure (Fig. 3(b)): the attacked interval is wide enough to
  // contain both l_{n-f-fa} and u_{n-f-fa}, and the unseen intervals are too
  // small to move those points.  n=4, f=1, fa=1: |CS| = 2 = n-f-fa, so the
  // pinned points are l_2 = 2 (2nd smallest seen lower bound) and u_2 = 6
  // (2nd largest seen upper bound); the fusion interval is pinned to [2, 6].
  const int f = 1;  // fused threshold over 4 intervals: 3
  const std::vector<TickInterval> seen = {{0, 6}, {2, 8}};  // l2 = 2, u2 = 6
  const TickInterval delta{3, 5};  // truth support within the seen block
  const Tick attacked_width = 5;   // >= u2 - l2 = 4
  // Her interval must contain [l2, u2] = [2, 6]; placements [1,6] and [2,7].
  // Case-2 unseen threshold: |s| <= min(l_S - l2, u2 - u_S) with
  // S = S_{CS u Delta, 0} = [3, 5]: min(3-2, 6-5) = 1.
  for (const TickInterval attack : {TickInterval{1, 6}, TickInterval{2, 7}}) {
    for (Tick t = delta.lo; t <= delta.hi; ++t) {
      const Tick unseen_width = 1;
      for (Tick lo = t - unseen_width; lo <= t; ++lo) {
        const std::vector<TickInterval> unseen = {{lo, lo + unseen_width}};
        const Tick achieved = best_width_for_completion(seen, unseen, attack, f);
        // Exhaustive alternative placements cannot beat the pinned [2, 6].
        Tick best = -1;
        for (Tick alo = -12; alo <= 12; ++alo) {
          best = std::max(best, best_width_for_completion(
                                    seen, unseen, TickInterval{alo, alo + attacked_width}, f));
        }
        EXPECT_EQ(achieved, best) << "t=" << t << " attack=" << to_string(attack);
        EXPECT_EQ(achieved, 4);  // |[2, 6]|
      }
    }
  }
}

}  // namespace
}  // namespace arsf
