// Unit tests for the Brooks-Iyengar baseline fuser (core/brooks_iyengar.h).

#include <gtest/gtest.h>

#include "core/bounds.h"
#include "core/brooks_iyengar.h"
#include "core/fusion.h"
#include "support/rng.h"

namespace arsf {
namespace {

TEST(BrooksIyengar, IntervalMatchesMarzullo) {
  // The conservative output interval is by construction the Marzullo fusion
  // interval (hull of the >= n-f regions).
  const std::vector<Interval> intervals = {{0, 6}, {1, 8}, {2, 10}, {5, 12}};
  for (int f = 0; f < 4; ++f) {
    const auto bi = brooks_iyengar(intervals, f);
    const auto marzullo = fuse(intervals, f);
    ASSERT_EQ(bi.interval.has_value(), marzullo.interval.has_value()) << "f=" << f;
    if (bi.interval) {
      EXPECT_EQ(*bi.interval, *marzullo.interval) << "f=" << f;
    }
    EXPECT_EQ(bi.threshold, marzullo.threshold);
  }
}

TEST(BrooksIyengar, EstimateInsideInterval) {
  const std::vector<Interval> intervals = {{0, 6}, {1, 8}, {2, 10}};
  const auto result = brooks_iyengar(intervals, 1);
  ASSERT_TRUE(result.estimate);
  ASSERT_TRUE(result.interval);
  EXPECT_GE(*result.estimate, result.interval->lo);
  EXPECT_LE(*result.estimate, result.interval->hi);
}

TEST(BrooksIyengar, RegionsCarryCounts) {
  // Intervals [0,4], [2,6], [3,10], f=1 (threshold 2): regions where >= 2
  // overlap: [2,4] (counts 2..3) and [3,6] overlap... elementary segments:
  // [2,3] count 2, [3,4] count 3, [4,6] count 2.
  const std::vector<Interval> intervals = {{0, 4}, {2, 6}, {3, 10}};
  const auto result = brooks_iyengar(intervals, 1);
  ASSERT_EQ(result.regions.size(), 3u);
  EXPECT_EQ(result.regions[0].count, 2);
  EXPECT_EQ(result.regions[0].range, (Interval{2, 3}));
  EXPECT_EQ(result.regions[1].count, 3);
  EXPECT_EQ(result.regions[1].range, (Interval{3, 4}));
  EXPECT_EQ(result.regions[2].count, 2);
  EXPECT_EQ(result.regions[2].range, (Interval{4, 6}));
  // The estimate leans towards the triple-overlap region.
  ASSERT_TRUE(result.estimate);
  EXPECT_NEAR(*result.estimate, (2.5 * 2 + 3.5 * 3 + 5.0 * 2 * 2) / (2 + 3 + 4), 1e-12);
}

TEST(BrooksIyengar, WeightsPreferHeavyAgreement) {
  // Four sensors agree tightly around 0, one hangs right; with f=1 the
  // estimate stays near the heavy cluster, closer than the plain midpoint of
  // the fusion interval.
  const std::vector<Interval> intervals = {{-1, 1}, {-1.2, 0.8}, {-0.8, 1.2},
                                           {-1, 1}, {0.9, 2.9}};
  const auto result = brooks_iyengar(intervals, 1);
  const auto marzullo = fuse(intervals, 1);
  ASSERT_TRUE(result.estimate);
  ASSERT_TRUE(marzullo.interval);
  EXPECT_LT(std::abs(*result.estimate), std::abs(marzullo.interval->midpoint()));
}

TEST(BrooksIyengar, EmptyRegionSet) {
  const std::vector<Interval> intervals = {{0, 1}, {10, 11}, {20, 21}};
  const auto result = brooks_iyengar(intervals, 1);
  EXPECT_FALSE(result.interval);
  EXPECT_FALSE(result.estimate);
  EXPECT_TRUE(result.regions.empty());
}

TEST(BrooksIyengar, PointAgreementRegions) {
  // Two intervals touching at one point, f=0: a degenerate region.
  const std::vector<Interval> intervals = {{0, 5}, {5, 9}};
  const auto result = brooks_iyengar(intervals, 0);
  ASSERT_TRUE(result.interval);
  EXPECT_EQ(*result.interval, (Interval{5, 5}));
  ASSERT_TRUE(result.estimate);
  EXPECT_NEAR(*result.estimate, 5.0, 1e-9);
}

TEST(BrooksIyengar, RejectsInvalidInput) {
  const std::vector<Interval> intervals = {{0, 1}, {1, 2}};
  EXPECT_THROW((void)brooks_iyengar(intervals, -1), std::invalid_argument);
  EXPECT_THROW((void)brooks_iyengar(intervals, 2), std::invalid_argument);
  EXPECT_THROW((void)brooks_iyengar(std::vector<Interval>{}, 0), std::invalid_argument);
}

TEST(BrooksIyengar, ContainsTruthWithBoundedLiars) {
  arsf::support::Rng rng{77};
  for (int trial = 0; trial < 1000; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(3, 6));
    const int f = max_bounded_f(n);
    const int liars = static_cast<int>(rng.uniform_int(0, f));
    std::vector<Interval> intervals;
    for (int i = 0; i < n; ++i) {
      const double width = rng.uniform_real(1.0, 8.0);
      const double lo = i < liars ? rng.uniform_real(-20.0, 20.0)
                                  : rng.uniform_real(-width, 0.0);
      intervals.push_back({lo, lo + width});
    }
    const auto result = brooks_iyengar(intervals, f);
    ASSERT_TRUE(result.interval);
    EXPECT_TRUE(result.interval->contains(0.0)) << "trial " << trial;
    ASSERT_TRUE(result.estimate);
    EXPECT_TRUE(result.interval->contains(*result.estimate));
  }
}

}  // namespace
}  // namespace arsf
