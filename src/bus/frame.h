#pragma once
// CAN-flavoured bus frames.
//
// The paper's threat model hinges on one property of in-vehicle networks:
// every message on the shared bus is visible to every connected component
// (Section I: "In the presence of a shared bus where messages are broadcast
// to all components...").  The frames here model the metadata that matters
// for the fusion protocol — sender, slot, round, measurement payload — plus
// a CAN-style 11-bit identifier used for priority arbitration when two nodes
// contend for the same slot.

#include <cstdint>
#include <string>

#include "core/interval.h"

namespace arsf::bus {

using CanId = std::uint32_t;
inline constexpr CanId kMaxCanId = 0x7FF;  // 11-bit standard identifier

struct Frame {
  CanId can_id = 0;            ///< lower value = higher arbitration priority
  std::size_t sender = 0;      ///< SensorId of the transmitting node
  double measurement = 0.0;    ///< raw numeric measurement
  Interval interval;           ///< controller-side interval for the payload
  std::uint64_t round = 0;     ///< fusion round counter
  std::size_t slot = 0;        ///< slot index within the round
};

[[nodiscard]] std::string to_string(const Frame& frame);

/// CAN arbitration: the frame with the numerically lower identifier wins;
/// ties (same id) resolve by sender id to keep the model deterministic.
[[nodiscard]] bool wins_arbitration(const Frame& a, const Frame& b);

}  // namespace arsf::bus
