#pragma once
// Shared broadcast bus with slotted rounds (the protocol substrate).
//
// One fusion round = n slots, one per sensor, ordered by the communication
// schedule (arsf::sched::Order).  Within a slot the owning node transmits one
// frame; the bus delivers it synchronously to *every* attached listener —
// including promiscuous snoopers, which is exactly how the paper's attacker
// learns the already-transmitted intervals before her own slot.
//
// Contention (two nodes queuing frames in the same slot, e.g. a babbling
// node) is resolved by CAN priority arbitration; losers stay queued for the
// next slot, and the event is recorded so tests and monitors can observe it.

#include <deque>
#include <functional>
#include <vector>

#include "bus/frame.h"
#include "schedule/schedule.h"

namespace arsf::bus {

/// Receives every frame on the bus (sensors, controller, attacker taps).
class BusListener {
 public:
  virtual ~BusListener() = default;
  virtual void on_frame(const Frame& frame) = 0;
};

/// Statistics over the lifetime of a bus instance.
struct BusStats {
  std::uint64_t frames_delivered = 0;
  std::uint64_t arbitration_conflicts = 0;
  std::uint64_t rounds_completed = 0;
};

class SharedBus {
 public:
  /// @param keep_log  retain every delivered frame (tests/visualisation).
  explicit SharedBus(bool keep_log = true) : keep_log_(keep_log) {}

  SharedBus(const SharedBus&) = delete;
  SharedBus& operator=(const SharedBus&) = delete;

  /// Attaches a listener; the caller keeps ownership and must outlive the
  /// bus or detach first.
  void attach(BusListener& listener);
  void detach(BusListener& listener);

  /// Queues @p frame for transmission in its slot.  Frames queued for the
  /// same slot contend via CAN arbitration.
  void queue(Frame frame);

  /// Runs one slot: arbitrates queued frames for @p slot, delivers the
  /// winner to all listeners, returns it.  Frames losing arbitration are
  /// re-queued for the following slot.  Returns false if nothing transmitted.
  bool run_slot(std::size_t slot, Frame* delivered = nullptr);

  /// Convenience: delivers @p frame immediately (no queueing/arbitration).
  void broadcast(const Frame& frame);

  /// Marks the end of a fusion round (statistics only).
  void end_round() { ++stats_.rounds_completed; }

  [[nodiscard]] const std::vector<Frame>& log() const noexcept { return log_; }
  void clear_log() { log_.clear(); }
  [[nodiscard]] const BusStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

 private:
  void deliver(const Frame& frame);

  bool keep_log_;
  std::vector<BusListener*> listeners_;
  std::deque<Frame> queue_;
  std::vector<Frame> log_;
  BusStats stats_;
};

/// Adapter: wraps a callable as a listener (handy for snoopers in tests and
/// for the attacker's bus tap).
class CallbackListener final : public BusListener {
 public:
  explicit CallbackListener(std::function<void(const Frame&)> fn) : fn_(std::move(fn)) {}
  void on_frame(const Frame& frame) override { fn_(frame); }

 private:
  std::function<void(const Frame&)> fn_;
};

}  // namespace arsf::bus
