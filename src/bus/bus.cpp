#include "bus/bus.h"

#include <algorithm>

namespace arsf::bus {

void SharedBus::attach(BusListener& listener) { listeners_.push_back(&listener); }

void SharedBus::detach(BusListener& listener) {
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), &listener),
                   listeners_.end());
}

void SharedBus::queue(Frame frame) { queue_.push_back(std::move(frame)); }

bool SharedBus::run_slot(std::size_t slot, Frame* delivered) {
  // Collect the contenders for this slot.
  std::vector<std::size_t> contenders;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].slot == slot) contenders.push_back(i);
  }
  if (contenders.empty()) return false;

  std::size_t winner = contenders.front();
  for (std::size_t i = 1; i < contenders.size(); ++i) {
    if (wins_arbitration(queue_[contenders[i]], queue_[winner])) winner = contenders[i];
  }
  if (contenders.size() > 1) {
    stats_.arbitration_conflicts += contenders.size() - 1;
    // Losers retry in the next slot, as a CAN node would after losing
    // arbitration.
    for (std::size_t idx : contenders) {
      if (idx != winner) ++queue_[idx].slot;
    }
  }

  Frame frame = queue_[winner];
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(winner));
  deliver(frame);
  if (delivered != nullptr) *delivered = frame;
  return true;
}

void SharedBus::broadcast(const Frame& frame) { deliver(frame); }

void SharedBus::deliver(const Frame& frame) {
  ++stats_.frames_delivered;
  if (keep_log_) log_.push_back(frame);
  for (BusListener* listener : listeners_) listener->on_frame(frame);
}

}  // namespace arsf::bus
