#include "bus/frame.h"

#include <sstream>

namespace arsf::bus {

std::string to_string(const Frame& frame) {
  std::ostringstream out;
  out << "frame{id=0x" << std::hex << frame.can_id << std::dec << " sender=" << frame.sender
      << " slot=" << frame.slot << " round=" << frame.round << " measurement="
      << frame.measurement << " interval=" << arsf::to_string(frame.interval) << "}";
  return out.str();
}

bool wins_arbitration(const Frame& a, const Frame& b) {
  if (a.can_id != b.can_id) return a.can_id < b.can_id;
  return a.sender < b.sender;
}

}  // namespace arsf::bus
