#include "scenario/runner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "scenario/faultplan.h"
#include "scenario/registry.h"
#include "scenario/sweep.h"
#include "sim/engine/thread_pool.h"

namespace arsf::scenario {

using sim::engine::CancelledError;
using sim::engine::CancelToken;
using sim::engine::ThreadPool;

namespace {

// Completion buffer keyed by slot index: workers deposit finished results in
// any order, the contiguous prefix streams to the sink immediately (and is
// freed), so only the out-of-order tail is ever buffered.  All sink calls
// happen under the mutex, giving the sink the strictly-ordered,
// one-call-at-a-time contract of scenario/sink.h.
class OrderedEmitter {
 public:
  OrderedEmitter(ResultSink& sink, std::size_t total) : sink_(sink), slots_(total) {}

  void deposit(std::size_t slot, ScenarioResult result) {
    const std::lock_guard<std::mutex> lock{mutex_};
    slots_[slot].result = std::move(result);
    slots_[slot].ready = true;
    flush();
  }

  void deposit_error(std::size_t slot, std::exception_ptr error) {
    const std::lock_guard<std::mutex> lock{mutex_};
    slots_[slot].error = std::move(error);
    slots_[slot].ready = true;
    flush();
  }

  /// After every task has deposited: rethrows the sink's exception (an
  /// output failure) or the first input-order task exception, otherwise
  /// completes the stream with on_finish().  At most one of the two is ever
  /// set: emission stops permanently at whichever failed first in slot order.
  void complete() {
    if (sink_error_) std::rethrow_exception(sink_error_);
    if (first_error_) std::rethrow_exception(first_error_);
    sink_.on_finish(slots_.size());
  }

 private:
  void flush() {
    while (next_ < slots_.size() && slots_[next_].ready && !first_error_ && !sink_error_) {
      if (slots_[next_].error) {
        // Results past the first failing slot are never emitted; complete()
        // rethrows this exception once the batch has drained.
        first_error_ = slots_[next_].error;
        break;
      }
      // Consume the slot BEFORE the sink call: a sink that throws must not
      // see the same result twice (exactly-once), and the flushed slot's
      // memory is released either way.
      const std::size_t index = next_++;
      const ScenarioResult result = std::move(slots_[index].result);
      slots_[index].result = ScenarioResult{};
      try {
        sink_.on_result(index, result);
      } catch (...) {
        // A broken sink stops receiving immediately — for every thread
        // count, it sees the identical call sequence ending here — and its
        // exception aborts the batch from complete() once tasks drain.
        sink_error_ = std::current_exception();
      }
    }
  }

  struct Slot {
    ScenarioResult result;
    std::exception_ptr error;
    bool ready = false;
  };

  ResultSink& sink_;
  std::mutex mutex_;
  std::vector<Slot> slots_;
  std::size_t next_ = 0;
  std::exception_ptr first_error_;  ///< first input-order scenario failure
  std::exception_ptr sink_error_;   ///< sink threw while consuming the stream
};

/// Skeleton failure frame for a scenario that produced no analysis result.
ScenarioResult failure_frame(const Scenario& scenario, ResultStatus status,
                             const std::string& error, std::uint32_t attempts) {
  ScenarioResult result;
  result.scenario = scenario.name;
  result.analysis = to_string(scenario.analysis);
  result.status = status;
  result.error = error;
  result.attempts = attempts;
  return result;
}

/// Sleeps for @p delay_ms in short slices, polling @p cancel between slices.
/// Returns false as soon as the token trips — a daemon shutdown must not
/// stall behind the backoff ladder of a retrying slot.
bool sleep_observing_cancel(std::uint64_t delay_ms, const CancelToken* cancel) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point wake = Clock::now() + std::chrono::milliseconds(delay_ms);
  for (;;) {
    if (cancel != nullptr && cancel->cancelled()) return false;
    const Clock::time_point now = Clock::now();
    if (now >= wake) return true;
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(wake - now);
    std::this_thread::sleep_for(std::min(remaining, std::chrono::milliseconds{1}));
  }
}

}  // namespace

std::uint64_t RetryPolicy::backoff_delay_ms(std::uint32_t attempt) const {
  const auto cap = static_cast<double>(kMaxDelayMs);
  double delay = static_cast<double>(base_delay_ms);
  for (std::uint32_t k = 1; k < attempt; ++k) {
    delay *= backoff;
    if (delay >= cap) return kMaxDelayMs;
  }
  if (delay >= cap) return kMaxDelayMs;
  if (!(delay > 0.0)) return 0;  // backoff 0 shrinks the ladder to nothing
  return static_cast<std::uint64_t>(delay);
}

Runner::Runner(RunnerOptions options) : options_(options) {
  // A non-finite backoff factor would poison the compounded delay (NaN
  // comparisons are all false, so neither the cap nor the zero check could
  // catch it); a negative one has no sensible sleep semantics at all.
  if (!std::isfinite(options_.retry.backoff) || options_.retry.backoff < 0.0) {
    throw std::invalid_argument("RetryPolicy: backoff must be finite and >= 0");
  }
}

ScenarioResult Runner::run_degraded(const Scenario& scenario, bool force_serial,
                                    std::uint32_t attempts) const {
  Scenario smoke = smoke_variant(scenario);
  if (force_serial) smoke.num_threads = 1;
  // No deadline re-armed: smoke caps are the registry's trusted cheap
  // configuration.  The external batch cancel still applies.
  smoke.deadline_ms = 0;
  try {
    smoke.validate();
    ScenarioResult out = analysis_for(smoke.analysis).run(smoke, options_.cancel);
    out.status = attempts > 1 ? ResultStatus::kRetriedOk : ResultStatus::kOk;
    out.attempts = attempts;
    out.degraded = true;
    return out;
  } catch (const CancelledError& e) {
    if (!options_.capture_errors) throw;
    return failure_frame(scenario,
                         e.timed_out() ? ResultStatus::kTimedOut : ResultStatus::kCancelled,
                         e.what(), attempts);
  } catch (const std::exception& e) {
    if (!options_.capture_errors) throw;
    return failure_frame(scenario, ResultStatus::kFailed, e.what(), attempts);
  }
}

ScenarioResult Runner::run_one(const Scenario& scenario, bool force_serial,
                               std::size_t slot) const {
  const Scenario* effective = &scenario;
  Scenario serial;
  if (force_serial && scenario.num_threads != 1) {
    serial = scenario;
    serial.num_threads = 1;
    effective = &serial;
  }

  try {
    effective->validate();
  } catch (const std::exception& e) {
    if (!options_.capture_errors) throw;
    return failure_frame(scenario, ResultStatus::kFailed, e.what(), 1);
  }

  // Result cache: key the VALIDATED scenario (canonicalisation assumes a
  // well-formed input) and serve a hit before admission control ever runs —
  // a cached answer costs nothing, so there is nothing to admit.  Cache
  // failures are non-fatal by contract: the "cache" fault site (and any
  // broken store) downgrades this slot to a fresh, uncached evaluation.
  CacheKey key;
  bool cache_armed = false;
  if (options_.cache != nullptr) {
    try {
      if (options_.fault_injector != nullptr) {
        options_.fault_injector->maybe_fail("cache", static_cast<std::uint64_t>(slot) + 1, 1);
      }
      key = cache_key(*effective);
      cache_armed = true;
      if (options_.cache_mode != CacheMode::kWriteOnly) {
        if (const auto hit = options_.cache->lookup(key)) {
          return cache_hit_frame(*hit, scenario.name);
        }
      }
    } catch (const std::exception&) {
      cache_armed = false;
    }
  }

  // Admission control: the estimated_worlds() cost model gates the run
  // before any cycles are spent.  Over budget -> rejected, or re-admitted as
  // the smoke variant when degrading is allowed.
  if (options_.admission_budget > 0) {
    const std::uint64_t cost = estimated_worlds(*effective);
    if (cost > options_.admission_budget) {
      if (options_.degrade) return run_degraded(scenario, force_serial, 1);
      const std::string error = "admission control: estimated cost " + std::to_string(cost) +
                                " worlds exceeds budget " +
                                std::to_string(options_.admission_budget);
      if (!options_.capture_errors) throw std::runtime_error(error);
      return failure_frame(scenario, ResultStatus::kRejected, error, 1);
    }
  }

  const std::uint64_t deadline_ms =
      effective->deadline_ms != 0 ? effective->deadline_ms : options_.default_deadline_ms;
  const std::uint32_t max_attempts = std::max<std::uint32_t>(1, options_.retry.max_attempts);

  for (std::uint32_t attempt = 1;; ++attempt) {
    // Fresh token per attempt: the deadline budget is per attempt, and a
    // tripped token must not leak into the retry.  The external batch cancel
    // is the parent, so it aborts attempts and blocks retries alike.
    CancelToken token{options_.cancel};
    if (deadline_ms != 0) {
      token.set_deadline_after(std::chrono::milliseconds(deadline_ms));
    }
    const bool cancellable = options_.cancel != nullptr || deadline_ms != 0;

    try {
      if (options_.fault_injector != nullptr) {
        options_.fault_injector->maybe_fail("analysis", static_cast<std::uint64_t>(slot) + 1,
                                            attempt);
      }
      ScenarioResult out =
          analysis_for(effective->analysis).run(*effective, cancellable ? &token : nullptr);
      out.status = attempt > 1 ? ResultStatus::kRetriedOk : ResultStatus::kOk;
      out.attempts = attempt;
      if (cache_armed && options_.cache_mode != CacheMode::kReadOnly) {
        try {
          // insert() itself refuses anything but a completed full-fidelity
          // frame; a store failure only costs the entry.
          options_.cache->insert(key, out);
        } catch (const std::exception&) {
        }
      }
      return out;
    } catch (const CancelledError& e) {
      // An external cancel is never retried (the whole batch is going down);
      // a deadline expiry is retried only when the policy opts in.
      const bool external = options_.cancel != nullptr && options_.cancel->cancelled();
      if (e.timed_out() && !external) {
        if (options_.retry.retry_timed_out && attempt < max_attempts) {
          // no backoff sleep: the attempt itself consumed a full budget
          continue;
        }
        if (options_.degrade) return run_degraded(scenario, force_serial, attempt);
      }
      if (!options_.capture_errors) throw;
      const ResultStatus status = e.timed_out() && !external ? ResultStatus::kTimedOut
                                                             : ResultStatus::kCancelled;
      return failure_frame(scenario, status, e.what(), attempt);
    } catch (const std::exception& e) {
      if (options_.retry.retry_failed && attempt < max_attempts) {
        const std::uint64_t delay_ms = options_.retry.backoff_delay_ms(attempt);
        if (delay_ms > 0 && !sleep_observing_cancel(delay_ms, options_.cancel)) {
          // The batch cancel tripped mid-backoff: the retry is pointless (a
          // shutdown is draining the whole batch), so frame the slot like
          // any externally cancelled scenario — promptly, not after the
          // remaining ladder.
          if (!options_.capture_errors) throw CancelledError(false);
          return failure_frame(scenario, ResultStatus::kCancelled,
                               CancelledError(false).what(), attempt);
        }
        continue;
      }
      if (!options_.capture_errors) throw;
      return failure_frame(scenario, ResultStatus::kFailed, e.what(), attempt);
    }
  }
}

ScenarioResult Runner::run(const Scenario& scenario) const {
  return run_one(scenario, /*force_serial=*/false, /*slot=*/0);
}

ScenarioResult Runner::run(const Scenario& scenario, std::size_t slot) const {
  return run_one(scenario, /*force_serial=*/false, slot);
}

std::vector<ScenarioResult> Runner::run_batch(std::span<const Scenario> scenarios) const {
  CollectingSink sink;
  run_batch(scenarios, sink);
  return std::move(sink).take();
}

std::vector<ScenarioResult> Runner::run_batch(
    std::span<const Scenario* const> scenarios) const {
  CollectingSink sink;
  run_batch(scenarios, sink);
  return std::move(sink).take();
}

void Runner::run_batch(std::span<const Scenario> scenarios, ResultSink& sink,
                       std::span<const std::size_t> schedule) const {
  std::vector<const Scenario*> pointers;
  pointers.reserve(scenarios.size());
  for (const Scenario& scenario : scenarios) pointers.push_back(&scenario);
  run_batch(std::span<const Scenario* const>{pointers}, sink, schedule);
}

void Runner::run_batch(std::span<const Scenario* const> scenarios, ResultSink& sink,
                       std::span<const std::size_t> schedule) const {
  // Empty batches complete without touching the thread pool (whose lazy
  // construction would otherwise spawn workers for nothing).
  if (scenarios.empty()) {
    sink.on_finish(0);
    return;
  }
  if (!schedule.empty()) {
    if (schedule.size() != scenarios.size()) {
      throw std::invalid_argument("Runner: schedule size must match the batch");
    }
    std::vector<bool> seen(scenarios.size());
    for (std::size_t slot : schedule) {
      if (slot >= scenarios.size() || seen[slot]) {
        throw std::invalid_argument("Runner: schedule must be a permutation of the batch");
      }
      seen[slot] = true;
    }
  }

  OrderedEmitter emitter{sink, scenarios.size()};
  const unsigned requested =
      options_.num_threads == 0 ? ThreadPool::default_threads() : options_.num_threads;
  // Scenarios running side by side must not also fan out inside the engine;
  // a sequential batch keeps each scenario's own engine knob instead.
  const bool concurrent = requested > 1 && scenarios.size() > 1;
  const auto task = [&](std::size_t k) {
    const std::size_t slot = schedule.empty() ? k : schedule[k];
    ScenarioResult result;
    // The pool-level gates run through run_one's capture semantics by
    // throwing from this pre-step: an external cancel observed at task
    // startup frames the slot `cancelled` WITHOUT running it, and the "pool"
    // fault site models a task that dies before its scenario starts.  The
    // cancel check is deliberately NOT ThreadPool's claim-and-skip (that
    // would deposit nothing and break the one-frame-per-slot sink contract).
    const auto pre = [&] {
      if (options_.cancel != nullptr && options_.cancel->cancelled()) {
        throw CancelledError(options_.cancel->timed_out());
      }
      if (options_.fault_injector != nullptr) {
        options_.fault_injector->maybe_fail("pool", static_cast<std::uint64_t>(slot) + 1, 1);
      }
    };
    if (options_.capture_errors) {
      try {
        pre();
        result = run_one(*scenarios[slot], /*force_serial=*/concurrent, slot);
      } catch (const CancelledError& e) {
        result = failure_frame(*scenarios[slot],
                               e.timed_out() ? ResultStatus::kTimedOut : ResultStatus::kCancelled,
                               e.what(), 1);
      } catch (const std::exception& e) {
        result = failure_frame(*scenarios[slot], ResultStatus::kFailed, e.what(), 1);
      }
    } else {
      // Every task still runs after a failure: the first *input-order* error
      // must win, and whether an earlier slot fails is unknown until it ran.
      try {
        pre();
        result = run_one(*scenarios[slot], /*force_serial=*/concurrent, slot);
      } catch (...) {
        emitter.deposit_error(slot, std::current_exception());
        return;
      }
    }
    // Outside the scenario try/catch: the emitter captures SINK exceptions
    // itself (output failure, rethrown by complete()), so they can never be
    // mislabelled as this scenario's error.
    emitter.deposit(slot, std::move(result));
  };

  if (!concurrent) {
    for (std::size_t k = 0; k < scenarios.size(); ++k) task(k);
  } else if (options_.num_threads == 0) {
    ThreadPool::shared().run(scenarios.size(), task);
  } else {
    // An explicit width below (or above) the shared pool's: private pool.
    ThreadPool pool{requested};
    pool.run(scenarios.size(), task);
  }
  emitter.complete();
}

}  // namespace arsf::scenario
