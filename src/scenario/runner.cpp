#include "scenario/runner.h"

#include <exception>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "sim/engine/thread_pool.h"

namespace arsf::scenario {

using sim::engine::ThreadPool;

namespace {

// Completion buffer keyed by slot index: workers deposit finished results in
// any order, the contiguous prefix streams to the sink immediately (and is
// freed), so only the out-of-order tail is ever buffered.  All sink calls
// happen under the mutex, giving the sink the strictly-ordered,
// one-call-at-a-time contract of scenario/sink.h.
class OrderedEmitter {
 public:
  OrderedEmitter(ResultSink& sink, std::size_t total) : sink_(sink), slots_(total) {}

  void deposit(std::size_t slot, ScenarioResult result) {
    const std::lock_guard<std::mutex> lock{mutex_};
    slots_[slot].result = std::move(result);
    slots_[slot].ready = true;
    flush();
  }

  void deposit_error(std::size_t slot, std::exception_ptr error) {
    const std::lock_guard<std::mutex> lock{mutex_};
    slots_[slot].error = std::move(error);
    slots_[slot].ready = true;
    flush();
  }

  /// After every task has deposited: rethrows the sink's exception (an
  /// output failure) or the first input-order task exception, otherwise
  /// completes the stream with on_finish().  At most one of the two is ever
  /// set: emission stops permanently at whichever failed first in slot order.
  void complete() {
    if (sink_error_) std::rethrow_exception(sink_error_);
    if (first_error_) std::rethrow_exception(first_error_);
    sink_.on_finish(slots_.size());
  }

 private:
  void flush() {
    while (next_ < slots_.size() && slots_[next_].ready && !first_error_ && !sink_error_) {
      if (slots_[next_].error) {
        // Results past the first failing slot are never emitted; complete()
        // rethrows this exception once the batch has drained.
        first_error_ = slots_[next_].error;
        break;
      }
      // Consume the slot BEFORE the sink call: a sink that throws must not
      // see the same result twice (exactly-once), and the flushed slot's
      // memory is released either way.
      const std::size_t index = next_++;
      const ScenarioResult result = std::move(slots_[index].result);
      slots_[index].result = ScenarioResult{};
      try {
        sink_.on_result(index, result);
      } catch (...) {
        // A broken sink stops receiving immediately — for every thread
        // count, it sees the identical call sequence ending here — and its
        // exception aborts the batch from complete() once tasks drain.
        sink_error_ = std::current_exception();
      }
    }
  }

  struct Slot {
    ScenarioResult result;
    std::exception_ptr error;
    bool ready = false;
  };

  ResultSink& sink_;
  std::mutex mutex_;
  std::vector<Slot> slots_;
  std::size_t next_ = 0;
  std::exception_ptr first_error_;  ///< first input-order scenario failure
  std::exception_ptr sink_error_;   ///< sink threw while consuming the stream
};

}  // namespace

ScenarioResult Runner::run_one(const Scenario& scenario, bool force_serial) const {
  const Scenario* effective = &scenario;
  Scenario serial;
  if (force_serial && scenario.num_threads != 1) {
    serial = scenario;
    serial.num_threads = 1;
    effective = &serial;
  }
  try {
    effective->validate();
    return analysis_for(effective->analysis).run(*effective);
  } catch (const std::exception& e) {
    if (!options_.capture_errors) throw;
    ScenarioResult result;
    result.scenario = scenario.name;
    result.analysis = to_string(scenario.analysis);
    result.error = e.what();
    return result;
  }
}

ScenarioResult Runner::run(const Scenario& scenario) const {
  return run_one(scenario, /*force_serial=*/false);
}

std::vector<ScenarioResult> Runner::run_batch(std::span<const Scenario> scenarios) const {
  CollectingSink sink;
  run_batch(scenarios, sink);
  return std::move(sink).take();
}

std::vector<ScenarioResult> Runner::run_batch(
    std::span<const Scenario* const> scenarios) const {
  CollectingSink sink;
  run_batch(scenarios, sink);
  return std::move(sink).take();
}

void Runner::run_batch(std::span<const Scenario> scenarios, ResultSink& sink,
                       std::span<const std::size_t> schedule) const {
  std::vector<const Scenario*> pointers;
  pointers.reserve(scenarios.size());
  for (const Scenario& scenario : scenarios) pointers.push_back(&scenario);
  run_batch(std::span<const Scenario* const>{pointers}, sink, schedule);
}

void Runner::run_batch(std::span<const Scenario* const> scenarios, ResultSink& sink,
                       std::span<const std::size_t> schedule) const {
  // Empty batches complete without touching the thread pool (whose lazy
  // construction would otherwise spawn workers for nothing).
  if (scenarios.empty()) {
    sink.on_finish(0);
    return;
  }
  if (!schedule.empty()) {
    if (schedule.size() != scenarios.size()) {
      throw std::invalid_argument("Runner: schedule size must match the batch");
    }
    std::vector<bool> seen(scenarios.size());
    for (std::size_t slot : schedule) {
      if (slot >= scenarios.size() || seen[slot]) {
        throw std::invalid_argument("Runner: schedule must be a permutation of the batch");
      }
      seen[slot] = true;
    }
  }

  OrderedEmitter emitter{sink, scenarios.size()};
  const unsigned requested =
      options_.num_threads == 0 ? ThreadPool::default_threads() : options_.num_threads;
  // Scenarios running side by side must not also fan out inside the engine;
  // a sequential batch keeps each scenario's own engine knob instead.
  const bool concurrent = requested > 1 && scenarios.size() > 1;
  const auto task = [&](std::size_t k) {
    const std::size_t slot = schedule.empty() ? k : schedule[k];
    ScenarioResult result;
    if (options_.capture_errors) {
      result = run_one(*scenarios[slot], /*force_serial=*/concurrent);
    } else {
      // Every task still runs after a failure: the first *input-order* error
      // must win, and whether an earlier slot fails is unknown until it ran.
      try {
        result = run_one(*scenarios[slot], /*force_serial=*/concurrent);
      } catch (...) {
        emitter.deposit_error(slot, std::current_exception());
        return;
      }
    }
    // Outside the scenario try/catch: the emitter captures SINK exceptions
    // itself (output failure, rethrown by complete()), so they can never be
    // mislabelled as this scenario's error.
    emitter.deposit(slot, std::move(result));
  };

  if (!concurrent) {
    for (std::size_t k = 0; k < scenarios.size(); ++k) task(k);
  } else if (options_.num_threads == 0) {
    ThreadPool::shared().run(scenarios.size(), task);
  } else {
    // An explicit width below (or above) the shared pool's: private pool.
    ThreadPool pool{requested};
    pool.run(scenarios.size(), task);
  }
  emitter.complete();
}

}  // namespace arsf::scenario
