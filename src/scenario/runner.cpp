#include "scenario/runner.h"

#include <exception>

#include "sim/engine/thread_pool.h"

namespace arsf::scenario {

using sim::engine::ThreadPool;

ScenarioResult Runner::run_one(const Scenario& scenario, bool force_serial) const {
  const Scenario* effective = &scenario;
  Scenario serial;
  if (force_serial && scenario.num_threads != 1) {
    serial = scenario;
    serial.num_threads = 1;
    effective = &serial;
  }
  try {
    effective->validate();
    return analysis_for(effective->analysis).run(*effective);
  } catch (const std::exception& e) {
    if (!options_.capture_errors) throw;
    ScenarioResult result;
    result.scenario = scenario.name;
    result.analysis = to_string(scenario.analysis);
    result.error = e.what();
    return result;
  }
}

ScenarioResult Runner::run(const Scenario& scenario) const {
  return run_one(scenario, /*force_serial=*/false);
}

std::vector<ScenarioResult> Runner::run_batch(std::span<const Scenario> scenarios) const {
  std::vector<const Scenario*> pointers;
  pointers.reserve(scenarios.size());
  for (const Scenario& scenario : scenarios) pointers.push_back(&scenario);
  return run_batch(pointers);
}

std::vector<ScenarioResult> Runner::run_batch(
    std::span<const Scenario* const> scenarios) const {
  std::vector<ScenarioResult> results(scenarios.size());
  const unsigned requested =
      options_.num_threads == 0 ? ThreadPool::default_threads() : options_.num_threads;
  // Scenarios running side by side must not also fan out inside the engine;
  // a sequential batch keeps each scenario's own engine knob instead.
  const bool concurrent = requested > 1 && scenarios.size() > 1;
  const auto task = [&](std::size_t i) {
    results[i] = run_one(*scenarios[i], /*force_serial=*/concurrent);
  };

  if (!concurrent) {
    for (std::size_t i = 0; i < scenarios.size(); ++i) task(i);
  } else if (options_.num_threads == 0) {
    ThreadPool::shared().run(scenarios.size(), task);
  } else {
    // An explicit width below (or above) the shared pool's: private pool.
    ThreadPool pool{requested};
    pool.run(scenarios.size(), task);
  }
  return results;
}

}  // namespace arsf::scenario
