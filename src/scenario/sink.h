#pragma once
// Streaming result sinks: the consumer side of the scenario result path.
//
// Runner::run_batch(scenarios, sink) and run_sweep() push every completed
// ScenarioResult through a ResultSink as soon as it is finished — in INPUT
// order, one call at a time — instead of materialising the whole batch in a
// vector first.  That is what lets a grid-scale sweep (scenario/sweep.h)
// stream a CSV report of thousands of rows while holding only one chunk of
// scenarios and the bounded reorder buffer in memory.
//
// Ordering contract: on_result(index, result) is invoked with strictly
// increasing indices (0, 1, 2, ... relative to the batch/sweep input),
// exactly once per scenario, from one thread at a time; on_finish(total) is
// invoked once after the last result.  Sinks therefore need no internal
// synchronisation of their own — ProgressSink still carries a mutex so it
// also stays safe when shared across *independent* concurrent batches.

#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "scenario/analysis.h"
#include "support/csv.h"

namespace arsf::scenario {

class ResultSink {
 public:
  virtual ~ResultSink() = default;
  /// One completed scenario; @p index is its input slot (see file comment).
  virtual void on_result(std::size_t index, const ScenarioResult& result) = 0;
  /// Called once after every result has been delivered.
  virtual void on_finish(std::size_t /*total*/) {}
};

/// Materialises the stream back into the input-order vector — the adapter
/// that keeps the PR 2 vector API (`run_batch(scenarios)`) a thin wrapper
/// over the streaming path.
class CollectingSink final : public ResultSink {
 public:
  void on_result(std::size_t index, const ScenarioResult& result) override;
  void on_finish(std::size_t total) override;

  [[nodiscard]] const std::vector<ScenarioResult>& results() const noexcept { return results_; }
  [[nodiscard]] std::vector<ScenarioResult> take() && { return std::move(results_); }

 private:
  std::vector<ScenarioResult> results_;
};

/// Streams the unified long-format CSV report (scenario,analysis,metric,value
/// — support::ReportWriter) row by row as scenarios finish; a failure emits
/// one "error" row.  scenario::write_report() is the batch wrapper over the
/// same row emission.
class CsvStreamSink final : public ResultSink {
 public:
  /// Opens @p path and writes the header row immediately.  With @p append
  /// the existing file (header included) is continued in place — the
  /// resume path of run_sweep(): the caller truncates the file to the last
  /// checkpointed byte first, then appends from the checkpointed grid index.
  explicit CsvStreamSink(const std::string& path, bool append = false)
      : writer_(path, append) {}
  /// Streams onto a caller-owned stream.
  explicit CsvStreamSink(std::ostream& out) : writer_(out) {}

  void on_result(std::size_t index, const ScenarioResult& result) override;

  /// Rows written so far (excluding the header).
  [[nodiscard]] std::size_t entries() const noexcept { return writer_.entries(); }
  [[nodiscard]] std::size_t results() const noexcept { return results_; }

 private:
  support::ReportWriter writer_;
  std::size_t results_ = 0;
};

/// Streams one self-contained JSON object per result per line (JSONL) —
/// the machine-readable twin of the CSV report, used by scenario_runner
/// --jsonl and ready for the ROADMAP's scenario-service transport.
class JsonlSink final : public ResultSink {
 public:
  explicit JsonlSink(std::ostream& out) : out_(out) {}

  void on_result(std::size_t index, const ScenarioResult& result) override;

  [[nodiscard]] std::size_t results() const noexcept { return results_; }

 private:
  std::ostream& out_;
  std::size_t results_ = 0;
};

/// Single-line JSON object for one result: {"index":..,"scenario":..,
/// "analysis":..,"status":..,"attempts":..,"degraded":..,"from_cache":..,
/// "metrics":{..},"error":..} (metrics values round-trip).  For a failed slot this is a
/// self-contained error frame: scenario name, structured status, the
/// exception's what() and the attempt count all travel in the one line.
[[nodiscard]] std::string to_json(std::size_t index, const ScenarioResult& result);

/// Fans one ordered stream out to several sinks in attach() order (e.g. a
/// CSV file + JSONL + an in-memory collection from the same run).  Attached
/// sinks must outlive the tee.
class TeeSink final : public ResultSink {
 public:
  void attach(ResultSink& sink) { sinks_.push_back(&sink); }

  void on_result(std::size_t index, const ScenarioResult& result) override {
    for (ResultSink* sink : sinks_) sink->on_result(index, result);
  }
  void on_finish(std::size_t total) override {
    for (ResultSink* sink : sinks_) sink->on_finish(total);
  }

 private:
  std::vector<ResultSink*> sinks_;
};

/// Decorator: forwards everything to the wrapped sink and prints a one-line
/// progress record per result ("[done/total] name  status") to @p log.
/// Failed / timed-out / cancelled / rejected slots are counted separately
/// from completed ones and the display says so — a batch with failures no
/// longer reads as "N completed".  Thread-safe (mutex around the forward +
/// print) so it can also front independent concurrent batches.
class ProgressSink final : public ResultSink {
 public:
  /// @param total expected result count (0 = unknown, prints "[done]").
  ProgressSink(ResultSink& inner, std::ostream& log, std::size_t total = 0)
      : inner_(inner), log_(log), total_(total) {}

  void on_result(std::size_t index, const ScenarioResult& result) override;
  void on_finish(std::size_t total) override;

  /// Results delivered (completed + failed + timed out + ...).
  [[nodiscard]] std::size_t done() const noexcept { return done_; }
  /// Results that completed (status ok / retried_ok, degraded included).
  [[nodiscard]] std::size_t completed() const noexcept { return completed_; }
  /// Results with status failed / cancelled / rejected.
  [[nodiscard]] std::size_t failed() const noexcept { return failed_; }
  /// Results with status timed_out.
  [[nodiscard]] std::size_t timed_out() const noexcept { return timed_out_; }

 private:
  ResultSink& inner_;
  std::ostream& log_;
  std::size_t total_;
  std::size_t done_ = 0;
  std::size_t completed_ = 0;
  std::size_t failed_ = 0;
  std::size_t timed_out_ = 0;
  std::mutex mutex_;
};

}  // namespace arsf::scenario
