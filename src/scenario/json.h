#pragma once
// Internal JSON toolkit shared by the scenario-layer serializers.
//
// Scenario::to_json/from_json established the parser discipline for every
// piece of persisted configuration in this repository: a minimal
// dependency-free recursive-descent parser over the subset the writers emit
// (objects, arrays, strings, numbers, booleans), integers parsed without a
// double round-trip so 64-bit seeds survive exactly, duplicate and unknown
// keys rejected so typos cannot silently fall back to defaults.  SweepSpec
// (scenario/sweep.h) and the registry overlay loader (scenario/registry.h)
// need the same machinery, so it lives here instead of being re-implemented
// per type.  This header is internal to src/scenario — the public API stays
// string-in/string-out (Scenario::from_json, SweepSpec::from_json).

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace arsf::scenario {

struct Scenario;  // scenario.h
struct SweepSpec;  // sweep.h

namespace json {

struct JsonValue {
  enum class Type { kString, kNumber, kBool, kArray, kObject } type = Type::kNumber;
  std::string string;
  double number = 0.0;
  std::uint64_t integer = 0;   ///< valid when is_integer
  bool is_integer = false;
  bool negative = false;       ///< integer sign (stored separately: uint64 magnitude)
  bool boolean = false;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool has(const std::string& key) const noexcept;
};

/// Parses exactly one JSON value; trailing characters, unterminated tokens
/// and duplicate object keys throw std::invalid_argument prefixed with
/// "<context> JSON:".
[[nodiscard]] JsonValue parse(const std::string& text, const std::string& context = "Scenario");

/// Backslash-escapes quotes, backslashes, newlines and tabs (the inverse of
/// the parser's escape handling).
[[nodiscard]] std::string escape(const std::string& text);

/// Round-trip text for a double (support::format_round_trip).
[[nodiscard]] std::string number_text(double x);

/// Incremental single-line JSON object writer.
class JsonBuilder {
 public:
  void field(const std::string& key, const std::string& value);
  void field(const std::string& key, const char* value) { field(key, std::string{value}); }
  void field(const std::string& key, double value);
  void field(const std::string& key, std::uint64_t value);
  void field(const std::string& key, int value);
  void field(const std::string& key, bool value);
  /// Array of numbers; floating-point elements use round-trip formatting.
  template <typename T>
  void list(const std::string& key, const std::vector<T>& values) {
    std::string text = "[";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i) text += ",";
      if constexpr (std::is_floating_point_v<T>) {
        text += number_text(values[i]);
      } else {
        text += std::to_string(values[i]);
      }
    }
    text += "]";
    raw(key, text);
  }
  /// Pre-rendered JSON (nested objects/arrays) under @p key.
  void raw(const std::string& key, const std::string& value);
  /// Nested object under @p key, spliced without an intermediate render()
  /// string (byte-identical to raw(key, nested.render())).
  void object(const std::string& key, const JsonBuilder& nested);
  [[nodiscard]] std::string render() const { return "{" + body_ + "}"; }

 private:
  /// Appends the separator plus `"key":` in place (no temporaries).
  void begin_field(const std::string& key);

  std::string body_;
};

// Typed field extraction; every getter throws std::invalid_argument on a
// missing field or a type mismatch.
[[nodiscard]] const JsonValue& object_field(const JsonValue& object, const std::string& key);
[[nodiscard]] std::string get_string(const JsonValue& object, const std::string& key);
[[nodiscard]] double get_double(const JsonValue& object, const std::string& key);
[[nodiscard]] std::uint64_t get_uint(const JsonValue& object, const std::string& key);
[[nodiscard]] int get_int(const JsonValue& object, const std::string& key);
[[nodiscard]] bool get_bool(const JsonValue& object, const std::string& key);
[[nodiscard]] std::vector<double> get_double_list(const JsonValue& object,
                                                  const std::string& key);
[[nodiscard]] std::vector<std::size_t> get_index_list(const JsonValue& object,
                                                      const std::string& key);
[[nodiscard]] std::vector<std::string> get_string_list(const JsonValue& object,
                                                       const std::string& key);

/// Throws std::invalid_argument naming the first key of @p object outside
/// @p known ("<context> JSON: unknown field '...'").
void reject_unknown_keys(const JsonValue& object, const std::vector<std::string>& known,
                         const std::string& context);

}  // namespace json

// Value-level constructors for the overlay loader, which must inspect a
// parsed line (does it carry a "base" key?) before deciding which type to
// build.  Implemented next to the corresponding from_json in scenario.cpp /
// sweep.cpp so the string and value paths cannot drift.
[[nodiscard]] Scenario scenario_from_value(const json::JsonValue& root);
[[nodiscard]] SweepSpec sweep_from_value(const json::JsonValue& root);

}  // namespace arsf::scenario
