#include "scenario/registry.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "scenario/json.h"
#include "sim/experiment.h"
#include "vehicle/casestudy.h"
#include "vehicle/landshark.h"

namespace arsf::scenario {

void ScenarioRegistry::add(Scenario scenario) {
  scenario.validate();
  if (find(scenario.name) != nullptr || find_sweep(scenario.name) != nullptr) {
    throw std::invalid_argument("ScenarioRegistry: duplicate name '" + scenario.name + "'");
  }
  scenarios_.push_back(std::move(scenario));
}

void ScenarioRegistry::add_sweep(SweepSpec spec) {
  spec.validate();
  if (find(spec.name) != nullptr || find_sweep(spec.name) != nullptr) {
    throw std::invalid_argument("ScenarioRegistry: duplicate name '" + spec.name + "'");
  }
  sweeps_.push_back(std::move(spec));
}

const Scenario* ScenarioRegistry::find(const std::string& name) const noexcept {
  for (const Scenario& scenario : scenarios_) {
    if (scenario.name == name) return &scenario;
  }
  return nullptr;
}

const Scenario& ScenarioRegistry::at(const std::string& name) const {
  if (const Scenario* scenario = find(name)) return *scenario;
  std::string hint;
  for (const Scenario& scenario : scenarios_) {
    if (scenario.name.rfind(name, 0) == 0) {
      hint += (hint.empty() ? "" : ", ") + scenario.name;
    }
  }
  throw std::out_of_range("ScenarioRegistry: no scenario '" + name + "'" +
                          (hint.empty() ? "" : " (did you mean: " + hint + "?)"));
}

std::vector<const Scenario*> ScenarioRegistry::match(const std::string& prefix) const {
  std::vector<const Scenario*> out;
  for (const Scenario& scenario : scenarios_) {
    if (scenario.name.rfind(prefix, 0) == 0) out.push_back(&scenario);
  }
  return out;
}

const SweepSpec* ScenarioRegistry::find_sweep(const std::string& name) const noexcept {
  for (const SweepSpec& spec : sweeps_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

const SweepSpec& ScenarioRegistry::sweep_at(const std::string& name) const {
  if (const SweepSpec* spec = find_sweep(name)) return *spec;
  std::string hint;
  for (const SweepSpec& spec : sweeps_) {
    if (spec.name.rfind(name, 0) == 0) hint += (hint.empty() ? "" : ", ") + spec.name;
  }
  throw std::out_of_range("ScenarioRegistry: no sweep '" + name + "'" +
                          (hint.empty() ? "" : " (did you mean: " + hint + "?)"));
}

void ScenarioRegistry::merge(const std::string& jsonl) {
  std::istringstream stream{jsonl};
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const std::size_t content = line.find_first_not_of(" \t\r");
    if (content == std::string::npos || line[content] == '#') continue;
    try {
      // json::parse rejects trailing garbage after the object, so a line can
      // only ever contain exactly one workload.
      const json::JsonValue root = json::parse(line, "Overlay");
      if (root.has("base")) {
        add_sweep(sweep_from_value(root));
      } else {
        add(scenario_from_value(root));
      }
    } catch (const std::exception& e) {
      throw std::invalid_argument("overlay line " + std::to_string(line_number) + ": " +
                                  e.what());
    }
  }
}

void ScenarioRegistry::load_overlay(const std::string& path) {
  std::ifstream file{path};
  if (!file) throw std::runtime_error("ScenarioRegistry: cannot open overlay " + path);
  std::ostringstream text;
  text << file.rdbuf();
  merge(text.str());
}

namespace {

std::string widths_text(const std::vector<double>& widths) {
  std::string text = "{";
  for (std::size_t i = 0; i < widths.size(); ++i) {
    if (i) text += ",";
    const auto rounded = static_cast<long long>(widths[i]);
    text += static_cast<double>(rounded) == widths[i] ? std::to_string(rounded)
                                                      : std::to_string(widths[i]);
  }
  return text + "}";
}

void add_table1(ScenarioRegistry& reg) {
  const auto configs = sim::paper_table1_configs();
  for (std::size_t row = 0; row < configs.size(); ++row) {
    const auto& [widths, fa] = configs[row];
    for (const sched::ScheduleKind kind :
         {sched::ScheduleKind::kAscending, sched::ScheduleKind::kDescending}) {
      Scenario s;
      s.name = "table1/r" + std::to_string(row) + "/" + sched::to_string(kind);
      s.description = "Table I row " + std::to_string(row) + ": L=" + widths_text(widths) +
                      ", fa=" + std::to_string(fa) + ", exact E|S| under the " +
                      sched::to_string(kind) + " schedule";
      s.widths = widths;
      s.fa = fa;
      s.schedule = kind;
      reg.add(std::move(s));
    }
  }
}

void add_figures(ScenarioRegistry& reg) {
  {
    // Fig. 2: the attacker (width 4) transmits between s1 (width 10, seen)
    // and s2 (width 6, unseen) — the setting with no dominant policy.
    Scenario s;
    s.name = "fig2/no-optimal-policy";
    s.description = "Fig. 2 setting: attacker mid-schedule between a seen and an unseen sensor";
    s.widths = {10, 4, 6};
    s.schedule = sched::ScheduleKind::kFixed;
    s.fixed_order = {0, 1, 2};
    s.attacked_override = {1};
    reg.add(std::move(s));
  }
  {
    // Fig. 3 case 1: coinciding seen intervals, small unseen, fa=2 jointly
    // planned before the unseen sensor's slot.
    Scenario s;
    s.name = "fig3/theorem1-case1";
    s.description = "Fig. 3 case 1: seen intervals coincide, unseen small, joint fa=2 attack";
    s.widths = {4, 4, 3, 10, 10};
    s.schedule = sched::ScheduleKind::kFixed;
    s.fixed_order = {0, 1, 3, 4, 2};
    s.fa = 2;
    s.attacked_override = {3, 4};
    reg.add(std::move(s));
  }
  {
    // Fig. 3 case 2: the attacked interval pins [l_{n-f-fa}, u_{n-f-fa}].
    Scenario s;
    s.name = "fig3/theorem1-case2";
    s.description = "Fig. 3 case 2: attacked interval pins the fusion endpoints";
    s.widths = {6, 6, 1, 5};
    s.schedule = sched::ScheduleKind::kFixed;
    s.fixed_order = {0, 1, 3, 2};
    s.attacked_override = {3};
    reg.add(std::move(s));
  }
  // Fig. 4: worst-case searches behind Theorems 3/4, one per width family;
  // the attacked set follows Theorem 4's strongest choice (smallest widths).
  const std::vector<std::vector<double>> families = {
      {2, 3, 5}, {1, 4, 4}, {2, 2, 6}, {2, 3, 4, 5}, {1, 2, 3, 6}, {2, 2, 3, 4, 5},
  };
  for (const auto& widths : families) {
    Scenario s;
    std::string suffix;
    for (double w : widths) suffix += (suffix.empty() ? "" : "-") + std::to_string(
        static_cast<long long>(w));
    s.name = "fig4/wc-" + suffix;
    s.description = "Fig. 4 worst-case search, widths " + widths_text(widths) +
                    ", fa=f smallest widths attacked";
    s.analysis = AnalysisKind::kWorstCase;
    s.widths = widths;
    s.fa = static_cast<std::size_t>(max_bounded_f(static_cast<int>(widths.size())));
    reg.add(std::move(s));
  }
  {
    // Fig. 5a: the wide intervals hang on opposite flanks; Ascending denies
    // the attacker the flank information.
    Scenario s;
    s.name = "fig5/asymmetric-flanks";
    s.description = "Fig. 5a system: widths {4,10,10}, most precise sensor attacked";
    s.widths = {4, 10, 10};
    s.attacked_override = {0};
    reg.add(std::move(s));
  }
  {
    // Fig. 5b: mid-schedule attacker; the width-12 interval is uninformative.
    Scenario s;
    s.name = "fig5/pinned-fusion";
    s.description = "Fig. 5b system: widths {6,4,5,12}, width-6 sensor attacked mid-schedule";
    s.widths = {6, 4, 5, 12};
    s.attacked_override = {0};
    reg.add(std::move(s));
  }
}

void add_case_study(ScenarioRegistry& reg) {
  const std::vector<double> landshark_widths = vehicle::make_landshark_sensing().config.widths();
  for (const sched::ScheduleKind kind :
       {sched::ScheduleKind::kAscending, sched::ScheduleKind::kDescending,
        sched::ScheduleKind::kRandom}) {
    Scenario s;
    s.name = "table2/landshark-" + sched::to_string(kind);
    s.description = "Table II LandShark platoon case study under the " + sched::to_string(kind) +
                    " schedule (one encoder compromised)";
    s.analysis = AnalysisKind::kCaseStudy;
    s.widths = landshark_widths;
    s.step = 0.01;
    s.schedule = kind;
    s.rounds = 10'000;
    s.seed = 0x1a2db4d5ULL;
    s.policy_options = vehicle::CaseStudyConfig::default_policy_options();
    reg.add(std::move(s));
  }
}

void add_extensions(ScenarioRegistry& reg) {
  {
    // Paper §IV-C: hard-to-spoof sensors last.  The attacker owns the most
    // precise spoofable sensor (the gps, id 2).
    Scenario s;
    s.name = "ext/trusted-last";
    s.description = "TrustedLast schedule: imu+encoder trusted, gps attacked (paper IV-C)";
    s.widths = {2, 5, 11, 17};
    s.trusted = {0, 1};
    s.schedule = sched::ScheduleKind::kTrustedLast;
    s.attacked_override = {2};
    reg.add(std::move(s));
  }
  {
    // The conclusion's announced extension: random faults on uncompromised
    // sensors while the stealthy attacker plays.
    Scenario s;
    s.name = "ext/faults-and-attacks";
    s.description = "Resilience: offset faults on correct sensors + stealthy fa=1 attacker";
    s.analysis = AnalysisKind::kResilience;
    s.widths = {5, 8, 11, 14, 17};
    s.rounds = 8'000;
    s.seed = 0xfa017ULL;
    s.fault.kind = sensors::FaultKind::kOffset;
    s.fault.magnitude = 30.0;
    s.fault.p_enter = 0.05;
    s.fault.p_recover = 0.2;
    reg.add(std::move(s));
  }
  {
    // Full-knowledge upper bound: separates information denied by the
    // schedule from power denied by stealth.
    Scenario s;
    s.name = "ext/oracle-upper-bound";
    s.description = "Oracle attacker (problem (1) on actual placements), ascending schedule";
    s.widths = {5, 11, 17};
    s.policy = PolicyKind::kOracle;
    reg.add(std::move(s));
  }
}

void add_monte_carlo(ScenarioRegistry& reg) {
  {
    Scenario s;
    s.name = "mc/table1-r0-random";
    s.description = "Monte Carlo E|S| for Table I row 0 under the per-round Random schedule";
    s.analysis = AnalysisKind::kMonteCarlo;
    s.widths = {5, 11, 17};
    s.schedule = sched::ScheduleKind::kRandom;
    reg.add(std::move(s));
  }
  {
    Scenario s;
    s.name = "mc/landshark-random";
    s.description = "Monte Carlo on the LandShark widths, Random schedule, fine grid";
    s.analysis = AnalysisKind::kMonteCarlo;
    s.widths = vehicle::make_landshark_sensing().config.widths();
    s.step = 0.01;
    s.schedule = sched::ScheduleKind::kRandom;
    s.rounds = 5'000;
    reg.add(std::move(s));
  }
}

void add_stress(ScenarioRegistry& reg) {
  {
    // Exercises the clean fast lane at scale: 3.6M worlds, no attacker.
    Scenario s;
    s.name = "stress/large-n-clean";
    s.description = "n=9 clean enumeration (3.6M worlds) through the run-batched fast lane";
    s.widths = {1, 2, 3, 4, 5, 6, 7, 8, 9};
    s.fa = 0;
    s.policy = PolicyKind::kNone;
    reg.add(std::move(s));
  }
  {
    // The PR-1 perf workload: Table I row 0 on a quarter grid.
    Scenario s;
    s.name = "stress/fine-grid";
    s.description = "Table I row 0 at step 0.25 (65k worlds, exact Bayesian attacker)";
    s.widths = {5, 11, 17};
    s.step = 0.25;
    reg.add(std::move(s));
  }
  {
    Scenario s;
    s.name = "stress/heterogeneous-widths";
    s.description = "Widths spanning two orders of magnitude, fa=2, Random schedule";
    s.analysis = AnalysisKind::kMonteCarlo;
    s.widths = {0.5, 3, 3, 24, 96};
    s.step = 0.5;
    s.fa = 2;
    s.schedule = sched::ScheduleKind::kRandom;
    s.rounds = 5'000;
    reg.add(std::move(s));
  }
  {
    Scenario s;
    s.name = "stress/random-schedule-fa2";
    s.description = "Table I row 5 widths under the Random schedule with fa=2";
    s.analysis = AnalysisKind::kMonteCarlo;
    s.widths = {5, 5, 5, 14, 20};
    s.fa = 2;
    s.schedule = sched::ScheduleKind::kRandom;
    reg.add(std::move(s));
  }
  {
    // Exercises the parallel over-all-subsets worst-case search.
    Scenario s;
    s.name = "stress/worstcase-over-sets";
    s.description = "Global worst case over every fa=2 subset of widths {2,2,3,4,5}";
    s.analysis = AnalysisKind::kWorstCase;
    s.widths = {2, 2, 3, 4, 5};
    s.fa = 2;
    s.over_all_sets = true;
    reg.add(std::move(s));
  }
}

void add_worstcase_fast_mirrors(ScenarioRegistry& reg) {
  // Every worstcase scenario gets a "fast/<name>" twin on the run-batched
  // lane: the golden parity suite (tests/test_worstcase_fast.cpp) and the
  // worstcase_parity_smoke ctest iterate these pairs, and scenario_smoke
  // executes the fast lane on every registered workload by construction.
  std::vector<Scenario> mirrors;
  for (const Scenario& scenario : reg.all()) {
    if (scenario.analysis != AnalysisKind::kWorstCase) continue;
    Scenario fast = scenario;
    fast.name = "fast/" + scenario.name;
    fast.analysis = AnalysisKind::kWorstCaseFast;
    fast.description = "Run-batched fast-lane twin of " + scenario.name;
    mirrors.push_back(std::move(fast));
  }
  for (Scenario& mirror : mirrors) reg.add(std::move(mirror));
}

void add_worstcase_bnb_mirrors(ScenarioRegistry& reg) {
  // Every over-all-sets worstcase scenario gets a "bnb/<name>" twin on the
  // branch-and-bound subset engine: the differential suite
  // (tests/test_subset_search.cpp) and the bnb_parity_smoke ctest iterate
  // these pairs, and scenario_smoke executes the BnB lane on every
  // registered over-sets workload by construction.
  std::vector<Scenario> mirrors;
  for (const Scenario& scenario : reg.all()) {
    if (scenario.analysis != AnalysisKind::kWorstCase || !scenario.over_all_sets) continue;
    Scenario bnb = scenario;
    bnb.name = "bnb/" + scenario.name;
    bnb.analysis = AnalysisKind::kWorstCaseOverSetsBnb;
    bnb.description = "Branch-and-bound subset-search twin of " + scenario.name;
    mirrors.push_back(std::move(bnb));
  }
  for (Scenario& mirror : mirrors) reg.add(std::move(mirror));
}

void add_large_n_bnb(ScenarioRegistry& reg) {
  // Theorem-4 studies beyond the exhaustive frontier (ROADMAP: "open
  // n ≳ 15"): many equal-width sensors collapse C(n, fa) subsets to a
  // handful of attacked-width multisets, so the BnB lane finishes in
  // seconds where the flat loop needs minutes to hours
  // (bench/oversets_bnb_speedup.cpp measures one and projects the other).
  // Deliberately registered on the BnB path only — no oracle twin exists
  // at this size; thread-count invariance stands in for oracle parity in
  // the differential suite.
  struct LargeN {
    std::string name;
    std::size_t ones;  ///< sensors of width 1
    std::size_t twos;  ///< sensors of width 2
    std::size_t fa;
  };
  const std::vector<LargeN> entries = {
      {"bnb/large-n/n15-fa2", 12, 3, 2},
      {"bnb/large-n/n16-fa2", 13, 3, 2},
      {"bnb/large-n/n18-fa3", 16, 2, 3},
  };
  for (const LargeN& entry : entries) {
    Scenario s;
    s.name = entry.name;
    const std::size_t n = entry.ones + entry.twos;
    s.description = "Global worst case over all C(" + std::to_string(n) + "," +
                    std::to_string(entry.fa) + ") subsets via branch-and-bound (" +
                    std::to_string(entry.ones) + "x width 1, " + std::to_string(entry.twos) +
                    "x width 2)";
    s.analysis = AnalysisKind::kWorstCaseOverSetsBnb;
    s.widths.assign(entry.ones, 1.0);
    s.widths.insert(s.widths.end(), entry.twos, 2.0);
    s.fa = entry.fa;
    s.over_all_sets = true;
    reg.add(std::move(s));
  }
}

void add_fused_bundles(ScenarioRegistry& reg) {
  // Every Table I scenario gets a "fused/<name>" bundle running the
  // enumerate + width-histogram + detection-rate members through ONE world
  // pass; the golden parity suite (tests/test_fused.cpp) and the
  // fused_parity_smoke ctest compare each member against its standalone
  // analysis, and scenario_smoke executes every bundle by construction.
  std::vector<Scenario> bundles;
  for (const Scenario& scenario : reg.all()) {
    if (scenario.analysis != AnalysisKind::kEnumerate) continue;
    if (scenario.name.rfind("table1/", 0) != 0) continue;
    Scenario fused = scenario;
    fused.name = "fused/" + scenario.name;
    fused.analysis = AnalysisKind::kFused;
    fused.fused_members = {AnalysisKind::kEnumerate, AnalysisKind::kWidthHistogram,
                           AnalysisKind::kDetectionRate};
    fused.description = "Fused 3-member bundle of " + scenario.name;
    bundles.push_back(std::move(fused));
  }
  for (Scenario& bundle : bundles) reg.add(std::move(bundle));

  // Fig. 4 width families as 4-member bundles: the width-argmax member reads
  // the attacked-world argmax off the same pass the expectation metrics use.
  const std::vector<std::vector<double>> families = {
      {2, 3, 5}, {1, 4, 4}, {2, 2, 6}, {2, 3, 4, 5}, {1, 2, 3, 6}, {2, 2, 3, 4, 5},
  };
  for (const auto& widths : families) {
    Scenario s;
    std::string suffix;
    for (double w : widths) {
      suffix += (suffix.empty() ? "" : "-") + std::to_string(static_cast<long long>(w));
    }
    s.name = "fused/fig4/wc-" + suffix;
    s.description = "Fused 4-member bundle over the Fig. 4 family " + widths_text(widths) +
                    ": E|S|, width histogram, detection rate and width argmax in one pass";
    s.analysis = AnalysisKind::kFused;
    s.fused_members = {AnalysisKind::kEnumerate, AnalysisKind::kWidthHistogram,
                       AnalysisKind::kDetectionRate, AnalysisKind::kWidthArgmax};
    s.widths = widths;
    s.fa = static_cast<std::size_t>(max_bounded_f(static_cast<int>(widths.size())));
    reg.add(std::move(s));
  }
}

void add_sweeps(ScenarioRegistry& reg) {
  {
    // The grid behind Table I read as a sweep: three width families x fa x
    // quantiser resolution x both deterministic schedules x four seeds
    // (96 grid points).  Clean/no-policy enumeration keeps every point on
    // the engine's fast lane, so this is also the sweep_smoke ctest
    // workload.
    SweepSpec spec;
    spec.name = "sweep/table1-grid";
    spec.description = "Table I-style E|S| grid: widths x fa x step x schedule x seed";
    spec.base.name = "sweep/table1-grid/base";
    spec.base.widths = {5, 11, 17};
    spec.base.policy = PolicyKind::kNone;
    // fa stops at f = ceil(3/2)-1 = 1: the paper's fa <= f assumption.
    spec.widths_sets = {{5, 11, 17}, {2, 4, 6}, {3, 6, 9}};
    spec.fa_values = {0, 1};
    spec.steps = {1.0, 0.5};
    spec.schedules = {sched::ScheduleKind::kAscending, sched::ScheduleKind::kDescending};
    spec.seed_count = 4;
    reg.add_sweep(std::move(spec));
  }
  {
    // Sampled twin: the Random schedule's E|S| spread over seeds.
    SweepSpec spec;
    spec.name = "sweep/mc-seeds";
    spec.description = "Monte Carlo E|S| across schedules and three seed replicas";
    spec.base.name = "sweep/mc-seeds/base";
    spec.base.analysis = AnalysisKind::kMonteCarlo;
    spec.base.widths = {5, 11, 17};
    spec.base.rounds = 500;
    spec.schedules = {sched::ScheduleKind::kAscending, sched::ScheduleKind::kDescending,
                      sched::ScheduleKind::kRandom};
    spec.seed_count = 3;
    spec.seed_stride = 0x9e3779b9ULL;
    reg.add_sweep(std::move(spec));
  }
}

}  // namespace

const ScenarioRegistry& registry() {
  static const ScenarioRegistry instance = [] {
    ScenarioRegistry reg;
    add_table1(reg);
    add_figures(reg);
    add_case_study(reg);
    add_extensions(reg);
    add_monte_carlo(reg);
    add_stress(reg);
    add_worstcase_fast_mirrors(reg);
    add_worstcase_bnb_mirrors(reg);
    add_large_n_bnb(reg);
    add_fused_bundles(reg);
    add_sweeps(reg);
    return reg;
  }();
  return instance;
}

Scenario smoke_variant(Scenario scenario) {
  scenario.rounds = std::min<std::size_t>(scenario.rounds, 200);
  // Cost-bound the attacker: no joint planning, strided candidate grids,
  // subsampled posterior.  The schedule/attacked-set/analysis paths are the
  // ones the full scenario would take.  Applied even with PolicyKind::kNone
  // (where the options are never read) so a sweep whose policy AXIS turns
  // the attacker on still inherits the caps from its smoked base.
  scenario.policy_options.max_joint = 1;
  scenario.policy_options.candidate_stride =
      std::max<Tick>(scenario.policy_options.candidate_stride, 2);
  scenario.policy_options.max_completions =
      scenario.policy_options.max_completions == 0
          ? 16
          : std::min<std::size_t>(scenario.policy_options.max_completions, 16);
  return scenario;
}

}  // namespace arsf::scenario
