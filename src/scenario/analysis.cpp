#include "scenario/analysis.h"

#include <algorithm>
#include <stdexcept>

#include "sim/engine/accumulators.h"
#include "sim/montecarlo.h"
#include "sim/resilience.h"
#include "sim/worstcase.h"
#include "vehicle/casestudy.h"

namespace arsf::scenario {

std::string to_string(ResultStatus status) {
  switch (status) {
    case ResultStatus::kOk: return "ok";
    case ResultStatus::kFailed: return "failed";
    case ResultStatus::kTimedOut: return "timed_out";
    case ResultStatus::kCancelled: return "cancelled";
    case ResultStatus::kRejected: return "rejected";
    case ResultStatus::kRetriedOk: return "retried_ok";
  }
  throw std::invalid_argument("to_string: unknown ResultStatus");
}

double ScenarioResult::metric(const std::string& key) const {
  for (const Metric& m : metrics) {
    if (m.key == key) return m.value;
  }
  throw std::out_of_range("ScenarioResult '" + scenario + "': no metric '" + key + "'");
}

double ScenarioResult::metric_or(const std::string& key, double fallback) const noexcept {
  for (const Metric& m : metrics) {
    if (m.key == key) return m.value;
  }
  return fallback;
}

sched::Order resolve_order(const Scenario& scenario, const SystemConfig& system) {
  switch (scenario.schedule) {
    case sched::ScheduleKind::kAscending: return sched::ascending_order(system);
    case sched::ScheduleKind::kDescending: return sched::descending_order(system);
    case sched::ScheduleKind::kFixed: return scenario.fixed_order;
    case sched::ScheduleKind::kTrustedLast: return sched::trusted_last_order(system);
    case sched::ScheduleKind::kRandom: break;
  }
  throw std::invalid_argument("Scenario '" + scenario.name +
                              "': random schedule has no fixed order");
}

std::vector<SensorId> resolve_attacked(const Scenario& scenario, const SystemConfig& system,
                                       const sched::Order& order) {
  if (!scenario.attacked_override.empty()) return scenario.attacked_override;
  if (scenario.fa == 0) return {};
  support::Rng rng{scenario.seed};
  return sched::choose_attacked_set(system, order, scenario.fa, scenario.attacked_rule, &rng);
}

std::unique_ptr<attack::AttackPolicy> make_policy(const Scenario& scenario) {
  switch (scenario.policy) {
    case PolicyKind::kNone: return nullptr;
    case PolicyKind::kExpectation: return attack::make_expectation_policy(scenario.policy_options);
    case PolicyKind::kOracle: return attack::make_oracle_policy(scenario.policy_options);
  }
  return nullptr;
}

EnumerateSetup make_enumerate_setup(const Scenario& scenario) {
  EnumerateSetup setup;
  setup.config.system = scenario.system();
  setup.config.quant = Quantizer{scenario.step};
  setup.config.num_threads = scenario.num_threads;
  setup.config.max_worlds = scenario.max_worlds;
  setup.config.order = resolve_order(scenario, setup.config.system);
  setup.config.attacked = resolve_attacked(scenario, setup.config.system, setup.config.order);
  setup.policy = make_policy(scenario);
  setup.config.policy = setup.policy.get();
  setup.oracle = scenario.policy == PolicyKind::kOracle;
  setup.config.oracle = setup.oracle;
  return setup;
}

namespace {

class EnumerateAnalysis final : public Analysis {
 public:
  [[nodiscard]] std::string name() const override { return "enumerate"; }

  [[nodiscard]] ScenarioResult run(const Scenario& scenario,
                                   const sim::engine::CancelToken* cancel) const override {
    EnumerateSetup setup = make_enumerate_setup(scenario);
    setup.config.cancel = cancel;
    const sim::EnumerateResult result = sim::enumerate_expected_width(setup.config);
    ScenarioResult out{scenario.name, name(), {}, {}};
    out.metrics = {
        {"expected_width", result.expected_width},
        {"expected_width_no_attack", result.expected_width_no_attack},
        {"worlds", static_cast<double>(result.worlds)},
        {"detected_worlds", static_cast<double>(result.detected_worlds)},
        {"empty_fusion_worlds", static_cast<double>(result.empty_fusion_worlds)},
        {"min_width", result.min_width},
        {"max_width", result.max_width},
    };
    return out;
  }
};

// ---- fused reducer analyses -------------------------------------------------

/// Width-histogram display parameters: bin count fixed, upper edge fixed
/// deterministically from the scenario's widths (2 * max width bounds every
/// clean fused width; wider policy-path fusions land in the top bin — the
/// histogram clamps, it never drops mass).
constexpr std::size_t kHistogramBins = 16;

Tick histogram_hi_ticks(std::span<const Tick> widths) {
  Tick max_w = 0;
  for (const Tick w : widths) max_w = std::max(max_w, w);
  return 2 * max_w + 1;
}

std::unique_ptr<sim::engine::WorldReducer> make_reducer(AnalysisKind kind, Tick hist_hi) {
  using namespace sim::engine;
  switch (kind) {
    case AnalysisKind::kEnumerate: return std::make_unique<ExpectedWidthReducer>();
    case AnalysisKind::kWidthHistogram:
      return std::make_unique<WidthHistogramReducer>(kHistogramBins, hist_hi);
    case AnalysisKind::kDetectionRate: return std::make_unique<DetectionRateReducer>();
    case AnalysisKind::kWidthArgmax: return std::make_unique<WorstCaseReducer>();
    default:
      throw std::invalid_argument("fused analysis: member '" + to_string(kind) +
                                  "' is not fusable");
  }
}

/// Shared body of the fused bundle and the standalone reducer analyses: one
/// scenario translation, one metric layout per member, one engine — so
/// fused-vs-standalone parity compares world passes and nothing else (the
/// WorstCaseAnalysisBase pattern).  Members run through a single FusedPass
/// (run-batched clean lane + block fan-out) when no attacker policy is in
/// play; with a policy, one serial protocol-round walk feeds every member's
/// reducer — k analyses for one enumeration either way.
///
/// Emitted metrics per member use the member's standalone names; keys shared
/// across members (worlds, detected_worlds, empty_fusion_worlds, max_width)
/// always carry the same value since they come from the same pass — emitted
/// once, with the equality checked.
std::vector<Metric> run_members(const Scenario& scenario,
                                std::span<const AnalysisKind> members,
                                const sim::engine::CancelToken* cancel) {
  namespace eng = sim::engine;
  const EnumerateSetup setup = make_enumerate_setup(scenario);
  const sim::EnumerateConfig& config = setup.config;

  // The same validation gate enumerate_expected_width applies.
  config.system.validate();
  if (!sched::is_valid_order(config.order, config.system.n())) {
    throw std::invalid_argument("fused enumeration: invalid order");
  }
  const std::uint64_t worlds = sim::world_count(config.system, config.quant);
  if (worlds > config.max_worlds) {
    throw std::invalid_argument("fused enumeration: world count " + std::to_string(worlds) +
                                " exceeds max_worlds");
  }
  const attack::AttackSetup round_setup =
      attack::make_setup(config.system, config.quant, config.attacked, config.order);
  const eng::WorldDomain domain =
      eng::WorldDomain::all_contain_zero(round_setup.widths, round_setup.f);
  const Tick hist_hi = histogram_hi_ticks(round_setup.widths);

  // Matches enumerate_expected_width's side effects on the policy object.
  if (config.policy != nullptr) config.policy->reset();

  eng::FusedPass pass;
  for (const AnalysisKind member : members) pass.add(make_reducer(member, hist_hi));

  const bool member_enumerate =
      std::find(members.begin(), members.end(), AnalysisKind::kEnumerate) != members.end();
  const bool with_policy = !config.attacked.empty() && config.policy != nullptr;

  std::uint64_t clean_width_sum = 0;
  if (!with_policy) {
    // Clean path: every member reduces the run-batched fused pass.
    pass.run(domain, config.num_threads, cancel);
  } else {
    // The enumerate member's no-attack baseline (the other members have no
    // clean-side metric, so the extra pass is skipped without them).
    if (member_enumerate) {
      clean_width_sum = eng::clean_statistics(domain, config.num_threads, cancel).width_sum;
    }
    // Stateful-policy path: serial (the memoised policy is shared mutable
    // state); ONE protocol round per world feeds every member's reducer.
    support::Rng rng{0xdecafbadULL};  // policies on the exact path ignore it
    eng::enumerate_block(
        domain, 0, worlds,
        [&](std::uint64_t index, TickInterval /*clean_fused*/,
            const eng::IncrementalSweep& sweep) {
          const sim::TickRoundResult round = sim::run_tick_round(
              round_setup, sweep.intervals(), config.policy, rng, config.oracle);
          for (std::size_t r = 0; r < pass.size(); ++r) {
            pass.at(r).accept(index, round.fused, round.attacked_detected);
          }
        },
        cancel);
  }

  const double scale = config.quant.step / static_cast<double>(worlds);
  std::vector<Metric> metrics;
  const auto add = [&](const std::string& key, double value) {
    for (const Metric& metric : metrics) {
      if (metric.key == key) {
        if (metric.value != value) {
          throw std::logic_error("fused analysis: members disagree on metric '" + key + "'");
        }
        return;
      }
    }
    metrics.push_back({key, value});
  };

  for (std::size_t i = 0; i < members.size(); ++i) {
    switch (members[i]) {
      case AnalysisKind::kEnumerate: {
        const auto& r = pass.at<eng::ExpectedWidthReducer>(i);
        const std::uint64_t no_attack_sum = with_policy ? clean_width_sum : r.width_sum;
        add("expected_width", static_cast<double>(r.width_sum) * scale);
        add("expected_width_no_attack", static_cast<double>(no_attack_sum) * scale);
        add("worlds", static_cast<double>(worlds));
        add("detected_worlds", static_cast<double>(r.detected_worlds));
        add("empty_fusion_worlds", static_cast<double>(r.empty_worlds));
        add("min_width", static_cast<double>(r.min_width) * config.quant.step);
        add("max_width", static_cast<double>(r.max_width) * config.quant.step);
        break;
      }
      case AnalysisKind::kWidthHistogram: {
        const auto& r = pass.at<eng::WidthHistogramReducer>(i);
        add("worlds", static_cast<double>(worlds));
        add("hist_bins", static_cast<double>(r.bins()));
        add("hist_hi_ticks", static_cast<double>(r.hi_ticks()));
        for (std::size_t bin = 0; bin < r.bins(); ++bin) {
          add("hist_bin_" + std::to_string(bin), static_cast<double>(r.counts[bin]));
        }
        add("empty_fusion_worlds", static_cast<double>(r.empty_worlds));
        break;
      }
      case AnalysisKind::kDetectionRate: {
        const auto& r = pass.at<eng::DetectionRateReducer>(i);
        add("worlds", static_cast<double>(worlds));
        add("detected_worlds", static_cast<double>(r.detected_worlds));
        add("detection_rate",
            static_cast<double>(r.detected_worlds) / static_cast<double>(worlds));
        add("empty_fusion_worlds", static_cast<double>(r.empty_worlds));
        break;
      }
      case AnalysisKind::kWidthArgmax: {
        const auto& r = pass.at<eng::WorstCaseReducer>(i);
        add("worlds", static_cast<double>(worlds));
        add("max_width_ticks", static_cast<double>(r.max_width));
        add("max_width", static_cast<double>(r.max_width) * config.quant.step);
        add("argmax_world", static_cast<double>(r.argmax_index));
        break;
      }
      default:
        throw std::invalid_argument("fused analysis: member '" + to_string(members[i]) +
                                    "' is not fusable");
    }
  }
  return metrics;
}

/// One-member fused pass: the standalone face of a reducer, sharing
/// run_members with FusedAnalysis so parity compares engines only.
template <AnalysisKind Kind>
class ReducerAnalysis final : public Analysis {
 public:
  [[nodiscard]] std::string name() const override { return to_string(Kind); }

  [[nodiscard]] ScenarioResult run(const Scenario& scenario,
                                   const sim::engine::CancelToken* cancel) const override {
    static constexpr AnalysisKind kMembers[] = {Kind};
    ScenarioResult out{scenario.name, name(), {}, {}};
    out.metrics = run_members(scenario, kMembers, cancel);
    return out;
  }
};

class FusedAnalysis final : public Analysis {
 public:
  [[nodiscard]] std::string name() const override { return "fused"; }

  [[nodiscard]] ScenarioResult run(const Scenario& scenario,
                                   const sim::engine::CancelToken* cancel) const override {
    if (scenario.fused_members.empty()) {
      throw std::invalid_argument("Scenario '" + scenario.name +
                                  "': fused analysis needs at least one member");
    }
    ScenarioResult out{scenario.name, name(), {}, {}};
    out.metrics = run_members(scenario, scenario.fused_members, cancel);
    return out;
  }
};

class MonteCarloAnalysis final : public Analysis {
 public:
  [[nodiscard]] std::string name() const override { return "montecarlo"; }

  [[nodiscard]] ScenarioResult run(const Scenario& scenario,
                                   const sim::engine::CancelToken* cancel) const override {
    sim::MonteCarloConfig config;
    config.cancel = cancel;
    config.system = scenario.system();
    config.quant = Quantizer{scenario.step};
    config.schedule = scenario.schedule;
    config.fixed_order = scenario.fixed_order;
    config.attacked_rule = scenario.attacked_rule;
    config.fa = scenario.fa;
    const std::unique_ptr<attack::AttackPolicy> policy = make_policy(scenario);
    config.policy = policy.get();
    config.oracle = scenario.policy == PolicyKind::kOracle;
    config.rounds = scenario.rounds;
    config.seed = scenario.seed;
    const sim::MonteCarloResult result = sim::run_monte_carlo(config);

    ScenarioResult out{scenario.name, name(), {}, {}};
    out.metrics = {
        {"mean_width", result.width.mean()},
        {"rounds", static_cast<double>(scenario.rounds)},
        {"stddev_width", result.width.stddev()},
        {"mean_width_no_attack", result.width_no_attack.mean()},
        {"detected_rounds", static_cast<double>(result.detected_rounds)},
        {"empty_fusion_rounds", static_cast<double>(result.empty_fusion_rounds)},
        {"attacked_count", static_cast<double>(result.attacked.size())},
    };
    return out;
  }
};

/// Shared body of the oracle and fast-lane worst-case adapters: same
/// scenario translation, same metric layout, so the differential parity
/// suite compares the two engines and nothing else.
class WorstCaseAnalysisBase : public Analysis {
 public:
  [[nodiscard]] ScenarioResult run(const Scenario& scenario,
                                   const sim::engine::CancelToken* cancel) const override {
    const SystemConfig system = scenario.system();
    const std::vector<Tick> widths = tick_widths(system, Quantizer{scenario.step});
    ScenarioResult out{scenario.name, name(), {}, {}};

    if (scenario.over_all_sets) {
      std::vector<SensorId> best_set;
      const Tick best = over_sets(widths, system.f, scenario.fa, &best_set,
                                  scenario.num_threads, scenario.require_undetected, cancel);
      out.metrics = {
          {"max_width_ticks", static_cast<double>(best)},
          {"max_width", static_cast<double>(best) * scenario.step},
          {"best_set_size", static_cast<double>(best_set.size())},
      };
      return out;
    }

    sim::WorstCaseConfig config;
    config.widths = widths;
    config.f = system.f;
    // Ties in the attacked-set rule resolve against the ascending order, the
    // representative the sampled engines use as well.
    config.attacked = resolve_attacked(scenario, system, sched::ascending_order(system));
    config.require_undetected = scenario.require_undetected;
    config.num_threads = scenario.num_threads;
    config.cancel = cancel;
    const sim::WorstCaseResult result = fusion(config);
    out.metrics = {
        {"max_width_ticks", static_cast<double>(result.max_width)},
        {"max_width", static_cast<double>(result.max_width) * scenario.step},
        {"configurations", static_cast<double>(result.configurations)},
    };
    return out;
  }

 protected:
  // fusion() receives cancel inside the config; over_sets() takes it as a
  // trailing parameter because the sim::worst_case_over_sets* entry points do.
  [[nodiscard]] virtual sim::WorstCaseResult fusion(const sim::WorstCaseConfig& config) const = 0;
  [[nodiscard]] virtual Tick over_sets(std::span<const Tick> widths, int f, std::size_t fa,
                                       std::vector<SensorId>* best_set, unsigned num_threads,
                                       bool require_undetected,
                                       const sim::engine::CancelToken* cancel) const = 0;
};

class WorstCaseAnalysis final : public WorstCaseAnalysisBase {
 public:
  [[nodiscard]] std::string name() const override { return "worstcase"; }

 protected:
  [[nodiscard]] sim::WorstCaseResult fusion(const sim::WorstCaseConfig& config) const override {
    return sim::worst_case_fusion(config);
  }
  [[nodiscard]] Tick over_sets(std::span<const Tick> widths, int f, std::size_t fa,
                               std::vector<SensorId>* best_set, unsigned num_threads,
                               bool require_undetected,
                               const sim::engine::CancelToken* cancel) const override {
    return sim::worst_case_over_sets(widths, f, fa, best_set, num_threads, require_undetected,
                                     cancel);
  }
};

class WorstCaseFastAnalysis final : public WorstCaseAnalysisBase {
 public:
  [[nodiscard]] std::string name() const override { return "worstcase-fast"; }

 protected:
  [[nodiscard]] sim::WorstCaseResult fusion(const sim::WorstCaseConfig& config) const override {
    return sim::worst_case_fusion_fast(config);
  }
  [[nodiscard]] Tick over_sets(std::span<const Tick> widths, int f, std::size_t fa,
                               std::vector<SensorId>* best_set, unsigned num_threads,
                               bool require_undetected,
                               const sim::engine::CancelToken* cancel) const override {
    return sim::worst_case_over_sets_fast(widths, f, fa, best_set, num_threads,
                                          require_undetected, cancel);
  }
};

class WorstCaseOverSetsBnbAnalysis final : public WorstCaseAnalysisBase {
 public:
  [[nodiscard]] std::string name() const override { return "worstcase-oversets-bnb"; }

 protected:
  // Scenario::validate() requires over_all_sets for this kind, so fusion()
  // is unreachable through the Runner; the fast lane keeps direct callers of
  // the base adapter on a bit-identical path anyway.
  [[nodiscard]] sim::WorstCaseResult fusion(const sim::WorstCaseConfig& config) const override {
    return sim::worst_case_fusion_fast(config);
  }
  [[nodiscard]] Tick over_sets(std::span<const Tick> widths, int f, std::size_t fa,
                               std::vector<SensorId>* best_set, unsigned num_threads,
                               bool require_undetected,
                               const sim::engine::CancelToken* cancel) const override {
    return sim::worst_case_over_sets_bnb(widths, f, fa, best_set, num_threads,
                                         require_undetected, /*stats=*/nullptr, cancel);
  }
};

class ResilienceAnalysis final : public Analysis {
 public:
  [[nodiscard]] std::string name() const override { return "resilience"; }

  [[nodiscard]] ScenarioResult run(const Scenario& scenario,
                                   const sim::engine::CancelToken* cancel) const override {
    sim::ResilienceConfig config;
    config.cancel = cancel;
    config.system = scenario.system();
    config.quant = Quantizer{scenario.step};
    config.schedule = scenario.schedule;
    config.fa = scenario.fa;
    const std::unique_ptr<attack::AttackPolicy> policy = make_policy(scenario);
    config.policy = policy.get();
    config.fault = scenario.fault;
    config.rounds = scenario.rounds;
    config.seed = scenario.seed;
    const sim::ResilienceResult result = sim::run_resilience(config);

    ScenarioResult out{scenario.name, name(), {}, {}};
    out.metrics = {
        {"containment_rate", result.containment_rate()},
        {"rounds", static_cast<double>(result.rounds)},
        {"mean_width", result.width.mean()},
        {"empty_fusion", static_cast<double>(result.empty_fusion)},
        {"attacked_flagged", static_cast<double>(result.attacked_flagged)},
        {"faulty_present", static_cast<double>(result.faulty_present)},
        {"faulty_flagged", static_cast<double>(result.faulty_flagged)},
        {"healthy_flagged", static_cast<double>(result.healthy_flagged)},
        {"over_budget", static_cast<double>(result.over_budget)},
    };
    return out;
  }
};

class CaseStudyAnalysis final : public Analysis {
 public:
  [[nodiscard]] std::string name() const override { return "casestudy"; }

  [[nodiscard]] ScenarioResult run(const Scenario& scenario,
                                   const sim::engine::CancelToken* cancel) const override {
    // The case study runs the built-in LandShark sensing suite; a scenario
    // whose system fields diverge from it would silently report numbers for
    // a different system, so reject the mismatch loudly instead.
    const SystemConfig landshark = vehicle::make_landshark_sensing(scenario.step).config;
    if (scenario.widths != landshark.widths() || scenario.resolved_f() != landshark.f ||
        !scenario.trusted.empty() || scenario.fa > 1) {
      throw std::invalid_argument(
          "Scenario '" + scenario.name +
          "': casestudy analysis runs the built-in LandShark sensing (widths " +
          "{1,2,0.2,0.2}, f=1, fa<=1, no trusted flags); edit vehicle/landshark.h to " +
          "change the suite");
    }

    vehicle::CaseStudyConfig config;
    config.cancel = cancel;
    config.schedule = scenario.schedule;
    config.rounds = scenario.rounds;
    config.seed = scenario.seed;
    config.quant_step = scenario.step;
    config.attack_enabled = scenario.fa > 0 && scenario.policy != PolicyKind::kNone;
    config.attacked_rule = scenario.attacked_rule;
    config.policy_options = scenario.policy_options;
    const vehicle::CaseStudyResult result = vehicle::run_case_study(config);

    ScenarioResult out{scenario.name, name(), {}, {}};
    out.metrics = {
        {"pct_upper", result.pct_upper},
        {"pct_lower", result.pct_lower},
        {"rounds", static_cast<double>(result.rounds)},
        {"mean_width", result.fused_width.mean()},
        {"detected_rounds", static_cast<double>(result.detected_rounds)},
        {"estimate_bias", result.estimate_bias.mean()},
        {"collided", result.collided ? 1.0 : 0.0},
    };
    return out;
  }
};

}  // namespace

const Analysis& analysis_for(AnalysisKind kind) {
  static const EnumerateAnalysis enumerate;
  static const MonteCarloAnalysis montecarlo;
  static const WorstCaseAnalysis worstcase;
  static const WorstCaseFastAnalysis worstcase_fast;
  static const WorstCaseOverSetsBnbAnalysis worstcase_oversets_bnb;
  static const ResilienceAnalysis resilience;
  static const CaseStudyAnalysis casestudy;
  static const ReducerAnalysis<AnalysisKind::kWidthHistogram> width_histogram;
  static const ReducerAnalysis<AnalysisKind::kDetectionRate> detection_rate;
  static const ReducerAnalysis<AnalysisKind::kWidthArgmax> width_argmax;
  static const FusedAnalysis fused;
  switch (kind) {
    case AnalysisKind::kEnumerate: return enumerate;
    case AnalysisKind::kMonteCarlo: return montecarlo;
    case AnalysisKind::kWorstCase: return worstcase;
    case AnalysisKind::kWorstCaseFast: return worstcase_fast;
    case AnalysisKind::kWorstCaseOverSetsBnb: return worstcase_oversets_bnb;
    case AnalysisKind::kResilience: return resilience;
    case AnalysisKind::kCaseStudy: return casestudy;
    case AnalysisKind::kWidthHistogram: return width_histogram;
    case AnalysisKind::kDetectionRate: return detection_rate;
    case AnalysisKind::kWidthArgmax: return width_argmax;
    case AnalysisKind::kFused: return fused;
  }
  throw std::invalid_argument("analysis_for: unknown AnalysisKind");
}

}  // namespace arsf::scenario
