#pragma once
// Scenario dispatch and batched execution — the fault-tolerant execution
// layer.
//
// Runner::run() validates one scenario and hands it to the Analysis
// registered for its kind.  Runner::run_batch() executes many scenarios
// concurrently on the sim/engine thread pool with one task per scenario
// (dynamic load balancing).  The streaming overload pushes every completed
// result through a ResultSink in INPUT order: workers deposit finished
// results into a completion buffer keyed by slot index, and the contiguous
// prefix is flushed to the sink as soon as it exists — so a sink sees result
// i before result i+1 for every thread count, and the buffer only holds the
// out-of-order tail (freed as soon as it is flushed).  The vector overloads
// are thin CollectingSink wrappers over the same path, so slot i of the
// returned vector always belongs to scenarios[i].
//
// Inside a concurrent batch each scenario's own engine fan-out is forced
// serial (num_threads = 1): the batch owns the parallelism, and a serial
// engine run is bit-identical to a parallel one by the engine's merge
// discipline — so batching changes wall-clock, never results.  A
// ThreadPool::run() of count 1 executes inline without touching the pool,
// which is what makes the nested serial engine calls safe.
//
// Robust execution (this layer's contract, see also README.md):
//   * Deadlines — Scenario::deadline_ms (or RunnerOptions::default_deadline_ms)
//     arms a steady-clock deadline per attempt; the engines abort
//     cooperatively at block granularity.  A run that completes under a
//     deadline is bit-identical to an undeadlined run; a run that does not
//     reports status `timed_out` and NEVER partial data.
//   * Cancellation — RunnerOptions::cancel aborts a whole batch: scenarios
//     not yet started report `cancelled`, in-flight ones abort at their next
//     block boundary.  Every slot still deposits a frame, so the sink's
//     exactly-once, input-order contract holds even mid-cancel.
//   * Admission control — RunnerOptions::admission_budget caps
//     estimated_worlds(); an over-budget scenario is `rejected` without
//     running, or re-admitted as its smoke_variant() when degrade is on
//     (frame marked `degraded`).
//   * Retry — RetryPolicy re-runs failed (optionally timed-out) attempts
//     with exponential backoff; success after a retry reports `retried_ok`
//     with the attempt count.
//   * Fault injection — RunnerOptions::fault_injector arms the named
//     "analysis"/"pool"/"cache" sites (scenario/faultplan.h) for the chaos
//     harness.
//   * Result cache — RunnerOptions::cache consults the content-addressed
//     result cache (scenario/result_cache.h) after validation and before
//     admission control: a hit returns the stored metrics as a frame marked
//     from_cache (bit-identical to the fresh run by the canonical-key
//     soundness argument) without spending any cycles.  Only completed,
//     non-degraded results are inserted.  Cache failures (an injected
//     "cache" fault, a broken store) are NON-FATAL: the scenario simply
//     runs fresh.
//
// An empty batch short-circuits without touching the thread pool (the sink
// still receives on_finish(0)).  With capture_errors = false, the exception
// propagated out of a batch is the FIRST failing scenario's in input order —
// not whichever task happened to throw last — and the sink receives exactly
// the results of the slots before it.

#include <cstdint>
#include <span>
#include <vector>

#include "scenario/analysis.h"
#include "scenario/result_cache.h"
#include "scenario/sink.h"
#include "sim/engine/cancel.h"

namespace arsf::scenario {

class FaultInjector;  // scenario/faultplan.h

/// Retry with exponential backoff for per-scenario attempts.
struct RetryPolicy {
  /// Ceiling on one backoff sleep.  The compounded delay saturates here
  /// instead of growing without bound — base_delay_ms * backoff^k overflows
  /// double -> uint64 conversion (UB) long before it stops being absurd as a
  /// wait, and no retry ladder should ever out-sleep a deadline by minutes.
  static constexpr std::uint64_t kMaxDelayMs = 300'000;  // 5 minutes

  /// Total attempts per scenario (1 = no retry).
  std::uint32_t max_attempts = 1;
  /// Sleep before attempt k+1: base_delay_ms * backoff^(k-1) milliseconds,
  /// saturating at kMaxDelayMs.  The sleep observes RunnerOptions::cancel:
  /// a batch cancel mid-backoff frames the slot `cancelled` promptly instead
  /// of stalling a shutdown behind the whole ladder.
  std::uint64_t base_delay_ms = 0;
  double backoff = 2.0;
  /// Retry attempts that threw (status would be `failed`).
  bool retry_failed = true;
  /// Retry attempts that exceeded their deadline.  Off by default — a
  /// deterministic engine that ran out of budget once will again; this is
  /// for deadlines tracking a contended machine, not the workload.
  bool retry_timed_out = false;

  /// The backoff sleep before attempt @p attempt + 1 in milliseconds:
  /// base_delay_ms * backoff^(attempt-1), saturating at kMaxDelayMs — the
  /// double -> uint64 conversion stays in range for ANY (base, backoff,
  /// attempt) combination a validated policy admits (Runner's constructor
  /// rejects non-finite and negative backoff factors, which this compound
  /// could not clamp).
  [[nodiscard]] std::uint64_t backoff_delay_ms(std::uint32_t attempt) const;
};

struct RunnerOptions {
  /// Worker fan-out across the scenarios of a batch (0 = hardware threads,
  /// 1 = serial).  Single-scenario run() ignores this and leaves the
  /// scenario's own engine fan-out untouched.
  unsigned num_threads = 0;
  /// Convert per-scenario exceptions into status-carrying ScenarioResult
  /// frames instead of propagating (a batch then always yields one result
  /// per scenario).
  bool capture_errors = true;
  /// Deadline for scenarios whose own deadline_ms is 0 (0 = none).
  std::uint64_t default_deadline_ms = 0;
  /// Admission control: reject (or degrade) scenarios whose
  /// estimated_worlds() exceeds this (0 = no admission control).
  std::uint64_t admission_budget = 0;
  /// Re-admit an over-budget or timed-out scenario as its smoke_variant()
  /// instead of rejecting it; the result is marked degraded.  The smoke
  /// variant runs WITHOUT a deadline — smoke caps are the registry's own
  /// trusted cheap configuration (every entry's smoke variant is CI-run).
  bool degrade = false;
  RetryPolicy retry;
  /// External batch cancellation (nullptr = not cancellable).  Trip it from
  /// any thread; see the file comment for the resulting frame semantics.
  const sim::engine::CancelToken* cancel = nullptr;
  /// Deterministic fault injection for the chaos harness (nullptr = none).
  /// Must outlive the Runner calls it is passed to.
  const FaultInjector* fault_injector = nullptr;
  /// Content-addressed result cache (nullptr = no caching).  Shared across
  /// Runners and threads; must outlive the Runner calls it is passed to.
  ResultCache* cache = nullptr;
  /// How the cache is used when `cache` is set (see scenario/result_cache.h).
  CacheMode cache_mode = CacheMode::kReadWrite;
};

class Runner {
 public:
  /// Validates the options (a RetryPolicy with a non-finite or negative
  /// backoff factor would compound into an undefined double -> uint64
  /// conversion) and throws std::invalid_argument on the first problem.
  explicit Runner(RunnerOptions options = {});

  /// The options this Runner executes with — run_sweep() reads the cache
  /// wiring off the runner it is handed to share work across grid points.
  [[nodiscard]] const RunnerOptions& options() const noexcept { return options_; }

  /// Runs one scenario with its own num_threads engine fan-out.
  [[nodiscard]] ScenarioResult run(const Scenario& scenario) const;
  /// run() with an explicit fault-site keying slot: the "analysis"/"cache"
  /// fault sites fire on key slot + 1 exactly as if the scenario sat at
  /// @p slot of a batch.  run_sweep()'s shared-chunk fallback re-runs grid
  /// point i of a chunk under the same slot key the point would have carried
  /// in the unshared chunk batch, so identical FaultPlans fire at identical
  /// logical points whether or not cross-point sharing kicked in.
  [[nodiscard]] ScenarioResult run(const Scenario& scenario, std::size_t slot) const;

  /// Runs every scenario; results in input order (see file comment).
  [[nodiscard]] std::vector<ScenarioResult> run_batch(
      std::span<const Scenario> scenarios) const;
  /// Registry-pointer convenience (e.g. the result of registry().match()).
  [[nodiscard]] std::vector<ScenarioResult> run_batch(
      std::span<const Scenario* const> scenarios) const;

  /// Streaming: pushes completed results through @p sink in input order.
  /// @p schedule, when non-empty, is a permutation of [0, size) giving the
  /// order tasks are *started* in (e.g. costliest first for load balancing);
  /// emission order and results are unaffected — run_sweep() uses this with
  /// its estimated_worlds() cost model.
  void run_batch(std::span<const Scenario> scenarios, ResultSink& sink,
                 std::span<const std::size_t> schedule = {}) const;
  void run_batch(std::span<const Scenario* const> scenarios, ResultSink& sink,
                 std::span<const std::size_t> schedule = {}) const;

 private:
  /// One scenario through validate -> admission -> deadline-armed attempt
  /// loop -> status frame.  @p slot keys the "analysis" fault site and is 0
  /// for single-scenario run().  Throws only when capture_errors is false.
  [[nodiscard]] ScenarioResult run_one(const Scenario& scenario, bool force_serial,
                                       std::size_t slot) const;
  /// The degrade path: smoke_variant(), no deadline, marked degraded.
  [[nodiscard]] ScenarioResult run_degraded(const Scenario& scenario, bool force_serial,
                                            std::uint32_t attempts) const;

  RunnerOptions options_;
};

}  // namespace arsf::scenario
