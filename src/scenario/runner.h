#pragma once
// Scenario dispatch and batched execution.
//
// Runner::run() validates one scenario and hands it to the Analysis
// registered for its kind.  Runner::run_batch() executes many scenarios
// concurrently on the sim/engine thread pool with one task per scenario
// (dynamic load balancing) and returns results in INPUT order — slot i of
// the result vector always belongs to scenarios[i], so batch output is
// order-stable for every thread count.
//
// Inside a batch each scenario's own engine fan-out is forced serial
// (num_threads = 1): the batch owns the parallelism, and a serial engine run
// is bit-identical to a parallel one by the engine's merge discipline — so
// batching changes wall-clock, never results.  A ThreadPool::run() of count
// 1 executes inline without touching the pool, which is what makes the
// nested serial engine calls safe.

#include <span>
#include <vector>

#include "scenario/analysis.h"

namespace arsf::scenario {

struct RunnerOptions {
  /// Worker fan-out across the scenarios of a batch (0 = hardware threads,
  /// 1 = serial).  Single-scenario run() ignores this and leaves the
  /// scenario's own engine fan-out untouched.
  unsigned num_threads = 0;
  /// Convert per-scenario exceptions into ScenarioResult::error instead of
  /// propagating (a batch then always yields one result per scenario).
  bool capture_errors = true;
};

class Runner {
 public:
  explicit Runner(RunnerOptions options = {}) : options_(options) {}

  /// Runs one scenario with its own num_threads engine fan-out.
  [[nodiscard]] ScenarioResult run(const Scenario& scenario) const;

  /// Runs every scenario; results in input order (see file comment).
  [[nodiscard]] std::vector<ScenarioResult> run_batch(
      std::span<const Scenario> scenarios) const;
  /// Registry-pointer convenience (e.g. the result of registry().match()).
  [[nodiscard]] std::vector<ScenarioResult> run_batch(
      std::span<const Scenario* const> scenarios) const;

 private:
  [[nodiscard]] ScenarioResult run_one(const Scenario& scenario, bool force_serial) const;

  RunnerOptions options_;
};

}  // namespace arsf::scenario
