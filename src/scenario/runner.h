#pragma once
// Scenario dispatch and batched execution.
//
// Runner::run() validates one scenario and hands it to the Analysis
// registered for its kind.  Runner::run_batch() executes many scenarios
// concurrently on the sim/engine thread pool with one task per scenario
// (dynamic load balancing).  The streaming overload pushes every completed
// result through a ResultSink in INPUT order: workers deposit finished
// results into a completion buffer keyed by slot index, and the contiguous
// prefix is flushed to the sink as soon as it exists — so a sink sees result
// i before result i+1 for every thread count, and the buffer only holds the
// out-of-order tail (freed as soon as it is flushed).  The vector overloads
// are thin CollectingSink wrappers over the same path, so slot i of the
// returned vector always belongs to scenarios[i].
//
// Inside a concurrent batch each scenario's own engine fan-out is forced
// serial (num_threads = 1): the batch owns the parallelism, and a serial
// engine run is bit-identical to a parallel one by the engine's merge
// discipline — so batching changes wall-clock, never results.  A
// ThreadPool::run() of count 1 executes inline without touching the pool,
// which is what makes the nested serial engine calls safe.
//
// An empty batch short-circuits without touching the thread pool (the sink
// still receives on_finish(0)).  With capture_errors = false, the exception
// propagated out of a batch is the FIRST failing scenario's in input order —
// not whichever task happened to throw last — and the sink receives exactly
// the results of the slots before it.

#include <span>
#include <vector>

#include "scenario/analysis.h"
#include "scenario/sink.h"

namespace arsf::scenario {

struct RunnerOptions {
  /// Worker fan-out across the scenarios of a batch (0 = hardware threads,
  /// 1 = serial).  Single-scenario run() ignores this and leaves the
  /// scenario's own engine fan-out untouched.
  unsigned num_threads = 0;
  /// Convert per-scenario exceptions into ScenarioResult::error instead of
  /// propagating (a batch then always yields one result per scenario).
  bool capture_errors = true;
};

class Runner {
 public:
  explicit Runner(RunnerOptions options = {}) : options_(options) {}

  /// Runs one scenario with its own num_threads engine fan-out.
  [[nodiscard]] ScenarioResult run(const Scenario& scenario) const;

  /// Runs every scenario; results in input order (see file comment).
  [[nodiscard]] std::vector<ScenarioResult> run_batch(
      std::span<const Scenario> scenarios) const;
  /// Registry-pointer convenience (e.g. the result of registry().match()).
  [[nodiscard]] std::vector<ScenarioResult> run_batch(
      std::span<const Scenario* const> scenarios) const;

  /// Streaming: pushes completed results through @p sink in input order.
  /// @p schedule, when non-empty, is a permutation of [0, size) giving the
  /// order tasks are *started* in (e.g. costliest first for load balancing);
  /// emission order and results are unaffected — run_sweep() uses this with
  /// its estimated_worlds() cost model.
  void run_batch(std::span<const Scenario> scenarios, ResultSink& sink,
                 std::span<const std::size_t> schedule = {}) const;
  void run_batch(std::span<const Scenario* const> scenarios, ResultSink& sink,
                 std::span<const std::size_t> schedule = {}) const;

 private:
  [[nodiscard]] ScenarioResult run_one(const Scenario& scenario, bool force_serial) const;

  RunnerOptions options_;
};

}  // namespace arsf::scenario
