#pragma once
// Uniform output for scenario results: the long-format CSV report
// (support/csv.h ReportWriter) and an ASCII summary table for terminals.

#include <span>
#include <string>

#include "scenario/analysis.h"
#include "support/csv.h"

namespace arsf::scenario {

/// Appends every metric of @p result (or one "error" row for a failure) —
/// the single row-emission path shared by the batch write_report() and the
/// streaming CsvStreamSink (scenario/sink.h).
void write_result_rows(support::ReportWriter& out, const ScenarioResult& result);

/// Appends every metric of every result (and an "error" row for failures).
void write_report(support::ReportWriter& out, std::span<const ScenarioResult> results);

/// Fixed-width summary: one row per result with its headline metrics.
[[nodiscard]] std::string render_results(std::span<const ScenarioResult> results);

}  // namespace arsf::scenario
