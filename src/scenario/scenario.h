#pragma once
// Declarative scenario descriptor — the single source of truth for one
// analysis run.
//
// Every reproduction driver in this repository (Table I, the worst-case
// search behind Theorems 3/4, the Monte Carlo and resilience experiments,
// the LandShark case study) is a combination of the same ingredients: sensor
// widths, a grid, a schedule, an attacked-set choice, an attacker policy and
// a handful of analysis knobs.  A Scenario captures that combination as
// plain data, so it can be validated once, serialized to JSON, stored in the
// registry (scenario/registry.h) and dispatched to any analysis through the
// Runner (scenario/runner.h) instead of being re-assembled by hand in each
// bench or example.

#include <cstdint>
#include <string>
#include <vector>

#include "attack/expectation.h"
#include "core/config.h"
#include "schedule/schedule.h"
#include "sensors/fault.h"

namespace arsf::scenario {

/// Which analysis a Runner dispatches the scenario to.
enum class AnalysisKind {
  kEnumerate,      ///< exact E|S| by exhaustive world enumeration (sim/enumerate.h)
  kMonteCarlo,     ///< sampled E|S| (sim/montecarlo.h)
  kWorstCase,      ///< exhaustive worst-case search (sim/worstcase.h) — the golden oracle
  kWorstCaseFast,  ///< run-batched worst-case fast lane; bit-identical to kWorstCase
  /// Branch-and-bound over-all-subsets worst case (symmetry dedup + pruned
  /// class lattice, sim/engine/subset_search.h); bit-identical to kWorstCase
  /// with over_all_sets, which this kind requires.
  kWorstCaseOverSetsBnb,
  kResilience,     ///< faults + attacks Monte Carlo (sim/resilience.h)
  kCaseStudy,      ///< LandShark platoon Table II runner (vehicle/casestudy.h)
  // Reducer-backed single-metric analyses over the enumerate world walk
  // (sim/engine/accumulators.h); each is a one-member fused pass, so its
  // metrics are bit-identical to the same member inside a kFused bundle.
  kWidthHistogram,  ///< exact fused-width histogram over all worlds
  kDetectionRate,   ///< detection / empty-fusion world counters
  kWidthArgmax,     ///< max fused width + lowest world index attaining it
  /// One world pass, N member analyses (fused_members): every member's
  /// metrics, bit-identical to its standalone run, for the cost of a single
  /// enumeration.
  kFused,
};

[[nodiscard]] std::string to_string(AnalysisKind kind);
/// Inverse of to_string(); throws std::invalid_argument on an unknown name.
[[nodiscard]] AnalysisKind analysis_kind_from_string(const std::string& text);

/// True for the kinds a kFused bundle may carry as members: the reducer
/// analyses plus kEnumerate (all share the enumerate world walk).
[[nodiscard]] bool is_fusable(AnalysisKind kind) noexcept;

/// Attacker policy selection (the policy object itself is built by the
/// analysis from policy_options; scenarios stay plain data).
enum class PolicyKind {
  kNone,         ///< every sensor transmits its correct reading
  kExpectation,  ///< Bayesian expectation-maximising policy (problem (2))
  kOracle,       ///< full-knowledge upper bound (problem (1) on actual placements)
};

[[nodiscard]] std::string to_string(PolicyKind kind);
/// Inverse of to_string(); throws std::invalid_argument on an unknown name.
[[nodiscard]] PolicyKind policy_kind_from_string(const std::string& text);

struct Scenario {
  // ---- identity -----------------------------------------------------------
  std::string name;         ///< registry key, e.g. "table1/r0/ascending"
  std::string description;  ///< one-line human summary

  // ---- system -------------------------------------------------------------
  std::vector<double> widths;        ///< per-sensor interval widths
  int f = -1;                        ///< fault bound; -1 = ceil(n/2)-1 (paper)
  std::vector<SensorId> trusted;     ///< hard-to-spoof sensor ids (TrustedLast)
  double step = 1.0;                 ///< quantiser grid resolution

  // ---- schedule -----------------------------------------------------------
  sched::ScheduleKind schedule = sched::ScheduleKind::kAscending;
  sched::Order fixed_order;          ///< slot order when schedule == kFixed

  // ---- attack -------------------------------------------------------------
  std::size_t fa = 1;                ///< compromised sensors (0 = no attack)
  sched::AttackedSetRule attacked_rule = sched::AttackedSetRule::kSmallestWidths;
  std::vector<SensorId> attacked_override;  ///< explicit set; wins over the rule
  PolicyKind policy = PolicyKind::kExpectation;
  attack::ExpectationOptions policy_options;

  // ---- analysis knobs -----------------------------------------------------
  AnalysisKind analysis = AnalysisKind::kEnumerate;
  /// Member analyses of a kFused bundle (>= 1 fusable kinds, no duplicates);
  /// must be empty for every other analysis kind.
  std::vector<AnalysisKind> fused_members;
  std::size_t rounds = 10'000;               ///< montecarlo / resilience / case study
  std::uint64_t seed = 0x5eedf00dULL;        ///< sampling seed
  std::uint64_t max_worlds = 200'000'000;    ///< enumeration safety valve
  bool require_undetected = true;            ///< worst case: stealth constraint
  bool over_all_sets = false;                ///< worst case: max over all fa-subsets
  sensors::FaultProcess fault;               ///< resilience fault process
  /// Thread fan-out handed to the dispatched analysis (0 = hardware threads,
  /// 1 = serial).  Results are bit-identical for every value; Runner batches
  /// force this to 1 and parallelise across scenarios instead.
  unsigned num_threads = 0;
  /// Wall-clock budget in milliseconds (0 = none).  The Runner arms a
  /// steady-clock deadline before dispatch; an over-budget run is aborted
  /// cooperatively and reported `timed_out` — never partial data (see
  /// scenario/runner.h).  RunnerOptions::default_deadline_ms applies when
  /// this is 0.
  std::uint64_t deadline_ms = 0;

  [[nodiscard]] std::size_t n() const noexcept { return widths.size(); }

  /// Resolved fault bound (f, or the paper's default ceil(n/2)-1 when -1).
  [[nodiscard]] int resolved_f() const;

  /// SystemConfig with widths, resolved f and trusted flags applied.
  [[nodiscard]] SystemConfig system() const;

  /// Throws std::invalid_argument with a named reason on the first
  /// inconsistency (empty widths, f out of range, widths off the step grid,
  /// bad attacked ids, invalid fixed order, analysis/schedule mismatch, ...).
  void validate() const;

  /// Single-line JSON object; defaulted fields are emitted too, so the text
  /// is a complete, self-contained description.
  [[nodiscard]] std::string to_json() const;

  /// Inverse of to_json(); unknown keys are rejected so typos cannot
  /// silently fall back to defaults.  Throws std::invalid_argument on
  /// malformed input.
  [[nodiscard]] static Scenario from_json(const std::string& text);
};

[[nodiscard]] bool operator==(const Scenario& a, const Scenario& b);

}  // namespace arsf::scenario
