#pragma once
// Declarative parameter sweeps: one template scenario expanded into a whole
// grid of named scenarios.
//
// The paper's headline artefacts are all points on parameter grids — Table I
// is widths x {ascending, descending}, Figs 4/5 walk width families, the
// theorems quantify over f_a — and the stress workloads the ROADMAP asks for
// ("as many scenarios as you can imagine") are grids too.  A SweepSpec
// captures such a grid as data: a base Scenario plus one optional value list
// per swept knob (width sets, f_a, step, schedule kind, policy kind, seed
// stride).  The grid is the cartesian product of the active axes, laid out
// by the engine's mixed-radix WorldCodec, so grid points have dense indices
// and can be materialised lazily one chunk at a time — expand() never has to
// hold more than the chunk run_sweep() is currently streaming through the
// Runner.
//
// Grid-point naming: "<spec.name>/<axis>=<value>/..." with one segment per
// ACTIVE axis in declaration order (widths, fa, step, sched, policy, seed),
// e.g. "grid/w=5-11-17/fa=2/step=0.5/sched=descending".  Inactive axes
// (empty lists, seed_count == 0) contribute no segment and leave the base
// value untouched, so a SweepSpec with no axes expands to exactly its base.

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "scenario/sink.h"

namespace arsf::scenario {

struct SweepSpec {
  std::string name;         ///< grid-point name prefix (also the registry key)
  std::string description;  ///< one-line human summary

  /// Template every grid point starts from; its name is replaced by the
  /// generated grid-point name, everything else only where an axis is active.
  Scenario base;

  // ---- axes (empty = inactive, keep the base value) -----------------------
  std::vector<std::vector<double>> widths_sets;     ///< per-point widths vectors
  std::vector<std::size_t> fa_values;               ///< compromised-sensor counts
  std::vector<double> steps;                        ///< quantiser resolutions
  std::vector<sched::ScheduleKind> schedules;       ///< schedule kinds
  std::vector<PolicyKind> policies;                 ///< attacker policy kinds
  /// Seed axis: seed_count points at base.seed + i * seed_stride
  /// (i = 0 .. seed_count-1); 0 = inactive.
  std::uint64_t seed_count = 0;
  std::uint64_t seed_stride = 1;

  /// Number of grid points (product of active axis sizes; >= 1).
  [[nodiscard]] std::uint64_t size() const;

  /// Grid point @p index (0 <= index < size()) with its generated name.
  /// Throws std::invalid_argument when the point fails Scenario::validate()
  /// (the message names the offending grid point).
  [[nodiscard]] Scenario at(std::uint64_t index) const;

  /// Every grid point in index order.  Fine for small grids; run_sweep()
  /// materialises lazily instead and should be preferred at scale.
  [[nodiscard]] std::vector<Scenario> expand() const;

  /// Structural checks on the spec itself (name, axis values); cheap.  Does
  /// NOT validate every grid point — at()/expand() do that per point.
  void validate() const;

  /// Single-line JSON object (the base scenario nested under "base").
  [[nodiscard]] std::string to_json() const;
  /// Inverse of to_json(); unknown and duplicate keys are rejected, like
  /// Scenario::from_json.
  [[nodiscard]] static SweepSpec from_json(const std::string& text);
};

[[nodiscard]] bool operator==(const SweepSpec& a, const SweepSpec& b);

/// Reads @p path — one SweepSpec JSON object, the same text `--json NAME`
/// prints and overlay sweep lines carry — parses it with the strict
/// unknown/duplicate-key discipline and validates the spec.  This is the
/// scenario_runner `--sweep-json FILE` path: execute an unregistered sweep
/// straight from a file, no overlay/registry round-trip.  Throws
/// std::runtime_error when the file cannot be read and std::invalid_argument
/// (prefixed with the path) on malformed JSON or an invalid spec.
[[nodiscard]] SweepSpec load_sweep_spec(const std::string& path);

/// Cost model: how many worlds (enumerate/worst-case) or rounds (sampled
/// analyses) the scenario will walk — the mixed-radix world count of its
/// system on its grid, saturating at uint64 max.  run_sweep() uses it to
/// start the costliest grid points of a chunk first (long poles don't
/// straggle) without affecting emission order or results.
[[nodiscard]] std::uint64_t estimated_worlds(const Scenario& scenario);

struct SweepRunOptions {
  /// Upper bound on grid points materialised and batched at once; memory for
  /// scenarios, results and the reorder buffer is O(chunk), not O(grid).
  std::size_t chunk_scenarios = 256;
  /// When > 0, a chunk also closes once its estimated_worlds() sum exceeds
  /// this (a chunk always takes at least one point), so a grid mixing cheap
  /// and huge points cannot pile the huge ones into one batch.
  std::uint64_t chunk_cost = 0;
  /// Start each chunk's costliest points first (see estimated_worlds()).
  bool order_by_cost = true;
};

/// Expands @p spec chunk by chunk and streams every chunk through
/// @p runner into @p sink: on_result(i, ...) carries the GRID index i (input
/// order, exactly once, strictly increasing), on_finish(size()) fires after
/// the last chunk.  Returns the number of grid points run.
std::size_t run_sweep(const SweepSpec& spec, const Runner& runner, ResultSink& sink,
                      const SweepRunOptions& options = {});

}  // namespace arsf::scenario
