#pragma once
// Declarative parameter sweeps: one template scenario expanded into a whole
// grid of named scenarios.
//
// The paper's headline artefacts are all points on parameter grids — Table I
// is widths x {ascending, descending}, Figs 4/5 walk width families, the
// theorems quantify over f_a — and the stress workloads the ROADMAP asks for
// ("as many scenarios as you can imagine") are grids too.  A SweepSpec
// captures such a grid as data: a base Scenario plus one optional value list
// per swept knob (width sets, f_a, step, schedule kind, policy kind, seed
// stride).  The grid is the cartesian product of the active axes, laid out
// by the engine's mixed-radix WorldCodec, so grid points have dense indices
// and can be materialised lazily one chunk at a time — expand() never has to
// hold more than the chunk run_sweep() is currently streaming through the
// Runner.
//
// Grid-point naming: "<spec.name>/<axis>=<value>/..." with one segment per
// ACTIVE axis in declaration order (widths, fa, step, sched, policy, seed),
// e.g. "grid/w=5-11-17/fa=2/step=0.5/sched=descending".  Inactive axes
// (empty lists, seed_count == 0) contribute no segment and leave the base
// value untouched, so a SweepSpec with no axes expands to exactly its base.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "scenario/sink.h"

namespace arsf::scenario {

struct SweepSpec {
  std::string name;         ///< grid-point name prefix (also the registry key)
  std::string description;  ///< one-line human summary

  /// Template every grid point starts from; its name is replaced by the
  /// generated grid-point name, everything else only where an axis is active.
  Scenario base;

  // ---- axes (empty = inactive, keep the base value) -----------------------
  std::vector<std::vector<double>> widths_sets;     ///< per-point widths vectors
  std::vector<std::size_t> fa_values;               ///< compromised-sensor counts
  std::vector<double> steps;                        ///< quantiser resolutions
  std::vector<sched::ScheduleKind> schedules;       ///< schedule kinds
  std::vector<PolicyKind> policies;                 ///< attacker policy kinds
  /// Seed axis: seed_count points at base.seed + i * seed_stride
  /// (i = 0 .. seed_count-1); 0 = inactive.
  std::uint64_t seed_count = 0;
  std::uint64_t seed_stride = 1;

  /// Number of grid points (product of active axis sizes; >= 1).
  [[nodiscard]] std::uint64_t size() const;

  /// Grid point @p index (0 <= index < size()) with its generated name.
  /// Throws std::invalid_argument when the point fails Scenario::validate()
  /// (the message names the offending grid point).
  [[nodiscard]] Scenario at(std::uint64_t index) const;

  /// Every grid point in index order.  Fine for small grids; run_sweep()
  /// materialises lazily instead and should be preferred at scale.
  [[nodiscard]] std::vector<Scenario> expand() const;

  /// Structural checks on the spec itself (name, axis values); cheap.  Does
  /// NOT validate every grid point — at()/expand() do that per point.
  void validate() const;

  /// Single-line JSON object (the base scenario nested under "base").
  [[nodiscard]] std::string to_json() const;
  /// Inverse of to_json(); unknown and duplicate keys are rejected, like
  /// Scenario::from_json.
  [[nodiscard]] static SweepSpec from_json(const std::string& text);
};

[[nodiscard]] bool operator==(const SweepSpec& a, const SweepSpec& b);

/// Reads @p path — one SweepSpec JSON object, the same text `--json NAME`
/// prints and overlay sweep lines carry — parses it with the strict
/// unknown/duplicate-key discipline and validates the spec.  This is the
/// scenario_runner `--sweep-json FILE` path: execute an unregistered sweep
/// straight from a file, no overlay/registry round-trip.  Throws
/// std::runtime_error when the file cannot be read and std::invalid_argument
/// (prefixed with the path) on malformed JSON or an invalid spec.
[[nodiscard]] SweepSpec load_sweep_spec(const std::string& path);

/// Cost model: how many worlds (enumerate/worst-case) or rounds (sampled
/// analyses) the scenario will walk — the mixed-radix world count of its
/// system on its grid, saturating at uint64 max.  run_sweep() uses it to
/// start the costliest grid points of a chunk first (long poles don't
/// straggle) without affecting emission order or results.
[[nodiscard]] std::uint64_t estimated_worlds(const Scenario& scenario);

// ---- resumable sweeps -------------------------------------------------------
// A grid-scale sweep interrupted by a crash or kill should not restart from
// point 0.  run_sweep() can persist, after every flushed chunk, the next
// grid index together with the output file's byte size at that moment (the
// CsvStreamSink flushes per result, so everything before the checkpoint is
// durably on disk).  A restart truncates the output back to the checkpointed
// byte (discarding any partial rows the killed run got past the boundary),
// reopens it in append mode and resumes at the recorded chunk boundary —
// chunk composition depends only on (spec, options), so the resumed stream
// is byte-identical to an uninterrupted run (tests/test_sweep.cpp pins
// this).  scenario_runner wires the flow as `--sweep ... --csv out.csv
// --resume` with the checkpoint living next to the CSV as `out.csv.progress`.

/// Resume token: everything a restart needs to continue a sweep.
struct SweepCheckpoint {
  std::uint64_t next_index = 0;       ///< first grid index not yet flushed
  std::uint64_t output_bytes = 0;     ///< output file size at the checkpoint
  /// sweep_fingerprint() of the spec that wrote the token.  A resume against
  /// a DIFFERENT sweep (other registry name, edited --sweep-json file, or
  /// the same sweep with/without --smoke) would silently append rows of one
  /// grid onto another; callers must reject a fingerprint mismatch.
  std::uint64_t spec_fingerprint = 0;
};

/// Identity of a sweep for resume purposes: a 64-bit FNV-1a hash of the
/// spec's canonical JSON, so ANY semantic difference — name, base scenario
/// (including smoke caps), axes — changes the fingerprint.
[[nodiscard]] std::uint64_t sweep_fingerprint(const SweepSpec& spec);

/// Atomically (write-then-rename) persists @p checkpoint to @p path as one
/// "next_index output_bytes spec_fingerprint" text line.  Throws
/// std::runtime_error on I/O failure.
void save_sweep_checkpoint(const std::string& path, const SweepCheckpoint& checkpoint);

/// Reads a checkpoint written by save_sweep_checkpoint(); std::nullopt when
/// the file does not exist (nothing to resume), std::runtime_error when it
/// exists but cannot be parsed (a corrupt token should fail loudly, not
/// silently restart from zero and duplicate rows).
[[nodiscard]] std::optional<SweepCheckpoint> load_sweep_checkpoint(const std::string& path);

/// Prepares an interrupted sweep's output file for resumption and returns
/// the EFFECTIVE token to resume from.  Normal case: truncates
/// @p output_path to checkpoint.output_bytes (partial rows past the last
/// checkpoint are discarded) and returns @p checkpoint unchanged.  When the
/// file is SHORTER than the token claims (it shrank after the checkpoint was
/// written — external truncation, partial restore), the output is repaired
/// via repair_short_output() and the rebuilt token is returned; resuming
/// from it re-runs the lost tail instead of corrupting the report or
/// refusing outright.  Throws std::runtime_error when the file is missing.
[[nodiscard]] SweepCheckpoint truncate_for_resume(const std::string& output_path,
                                                  const SweepCheckpoint& checkpoint);

/// Rebuilds a resume token from the CSV itself.  Every result's rows end
/// with exactly one "status" row (scenario/report.h), so the file is cut
/// back to the end of the last complete status row (an incomplete trailing
/// line or a half-written result is dropped) and next_index is the status-row
/// count.  The fingerprint is carried over from @p checkpoint.  Throws
/// std::runtime_error when the file cannot be read or holds no complete
/// header line (nothing to salvage — delete it and restart without --resume).
[[nodiscard]] SweepCheckpoint repair_short_output(const std::string& output_path,
                                                  const SweepCheckpoint& checkpoint);

struct SweepRunOptions {
  /// Upper bound on grid points materialised and batched at once; memory for
  /// scenarios, results and the reorder buffer is O(chunk), not O(grid).
  std::size_t chunk_scenarios = 256;
  /// When > 0, a chunk also closes once its estimated_worlds() sum exceeds
  /// this (a chunk always takes at least one point), so a grid mixing cheap
  /// and huge points cannot pile the huge ones into one batch.
  std::uint64_t chunk_cost = 0;
  /// Start each chunk's costliest points first (see estimated_worlds()).
  bool order_by_cost = true;
  /// When non-empty, save_sweep_checkpoint() runs after every flushed chunk
  /// (recording the byte size of checkpoint_output, when given) and the file
  /// is removed once the sweep completes.
  std::string checkpoint_path;
  /// Output file whose byte size goes into each checkpoint (the CSV the
  /// sink streams to); empty records 0.
  std::string checkpoint_output;
  /// First grid index to run (a chunk boundary from a loaded checkpoint);
  /// indices below it are neither materialised nor emitted.  Must be
  /// <= spec.size().
  std::uint64_t resume_from = 0;
  /// Deterministic fault injection for the "checkpoint" site (the save
  /// ordinal, 1-based, is the key); nullptr = none.  See scenario/faultplan.h.
  const FaultInjector* fault_injector = nullptr;
  /// When non-null, counts checkpoint saves that failed.  Checkpoint
  /// persistence is an availability feature, not a correctness one: a failed
  /// save keeps the previous (older but consistent) token and the sweep runs
  /// on — a later resume merely re-runs a few chunks, byte-identically.
  std::size_t* checkpoint_failures = nullptr;
};

/// Expands @p spec chunk by chunk and streams every chunk through
/// @p runner into @p sink: on_result(i, ...) carries the GRID index i (input
/// order, exactly once, strictly increasing), on_finish(size()) fires after
/// the last chunk.  With options.resume_from > 0 only indices
/// [resume_from, size()) are materialised and emitted; on_finish still
/// reports size().  Returns the number of grid points run by THIS
/// invocation (size() - resume_from).
///
/// Cross-point computation sharing: when the runner carries a result cache
/// (RunnerOptions::cache, mode != kWriteOnly), each chunk is grouped by
/// canonical key (scenario/result_cache.h) and every equivalence class is
/// evaluated ONCE, the frame fanned out to all member points in grid order
/// as cache-hit frames (metrics bit-identical, from_cache set); repeats in
/// LATER chunks hit the cache inside the Runner.  Results and emission
/// order are unchanged; chunks that contain duplicates emit once their
/// batch completes instead of streaming mid-chunk.
std::size_t run_sweep(const SweepSpec& spec, const Runner& runner, ResultSink& sink,
                      const SweepRunOptions& options = {});

}  // namespace arsf::scenario
