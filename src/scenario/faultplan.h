#pragma once
// Deterministic fault injection for the execution layer.
//
// A FaultPlan is a seeded, JSON-round-trippable list of rules that make
// named sites inside the Runner/sweep machinery throw on demand.  The chaos
// harness (tools/chaos_smoke.cpp) drives run_batch/run_sweep under seeded
// plans and asserts the invariants the robust execution layer promises:
// every batch terminates, surviving results arrive in input order, every
// slot carries a structured status frame, and the frames are bit-identical
// across thread counts.
//
// Determinism is the whole point, so an injection decision is a PURE
// function of (plan seed, site name, stable per-site key, attempt number) —
// never of a global occurrence counter, wall-clock or thread id.  The stable
// keys are 1-based so rule `nth` values read naturally:
//   "analysis"   — input slot + 1 (per attempt: before the analysis runs).
//                  run_sweep's shared-chunk fallback re-runs a grid point
//                  under its own chunk-local slot, the key it would have
//                  carried in an unshared chunk batch.
//   "pool"       — input slot + 1 (task startup inside run_batch's fan-out)
//   "sink"       — delivered result index + 1 (before sink.on_result)
//   "checkpoint" — checkpoint save ordinal (1 for the first save, ...)
//   "cache"      — input slot + 1 (result-cache access inside run_one; same
//                  fallback keying as "analysis").  A cache fault is
//                  NON-FATAL by contract: the run proceeds as a fresh
//                  (uncached) evaluation, losing only the lookup and the
//                  insert for that slot.
// The serve layer (src/serve) adds three sites keyed by its own ordinals:
//   "accept"     — accepted connection ordinal (1-based).  A fault closes
//                  the connection immediately after accept; the daemon and
//                  every other connection carry on.
//   "session"    — per-connection request ordinal (1-based, in arrival
//                  order).  A fault rejects that request with a kRejected
//                  error frame instead of scheduling it.
//   "respond"    — per-connection delivered frame ordinal (1-based).  A
//                  fault models a broken client pipe: the connection is torn
//                  down, in-flight requests of that connection cancel.
// The durability layer (serve/journal.h) adds two more:
//   "journal"    — journal append ordinal (1-based).  A fault SKIPS the
//                  durable append (counted via Journal::appends_failed());
//                  the daemon's in-memory state and the request carry on —
//                  durability degrades, correctness does not.
//   "crash"      — durable-event ordinal (1-based, shared across journal
//                  appends AND frame-spool appends).  After the keyed event
//                  hits disk the process SIGKILLs ITSELF — the seeded kill
//                  point of tools/recovery_smoke.cpp.  NEVER arm "crash" in
//                  an in-process test; it is for forked daemons only.
// Identical plans therefore fire at identical logical points whether the
// batch runs on 1 thread or 16, which is what lets the harness diff frames
// across thread counts byte for byte.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/sink.h"

namespace arsf::scenario {

/// Thrown by FaultInjector::maybe_fail at an armed site.  Deliberately a
/// plain runtime_error subtype: the execution layer must treat it exactly
/// like any other scenario failure (capture, retry, frame) — nothing in the
/// non-test code path is allowed to special-case it.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what) : std::runtime_error(what) {}
};

/// One injection rule.  A rule fires at its site when EITHER trigger says so:
/// `nth` fires exactly at key == nth (0 = trigger disabled), `probability`
/// fires when the seeded hash of (site, key, attempt) lands below it.
struct FaultRule {
  std::string site;            ///< one of fault_sites(): "analysis", "pool", "sink",
                               ///< "checkpoint", "cache", "accept", "session",
                               ///< "respond", "journal", "crash"
  std::uint64_t nth = 0;       ///< fire when key == nth (1-based; 0 = off)
  double probability = 0.0;    ///< fire with this chance per (key, attempt)
  /// Highest attempt number the rule still fires on.  The default 1 models a
  /// TRANSIENT fault: attempt 1 throws, the retry succeeds (status
  /// retried_ok).  0 means every attempt (a persistent fault that exhausts
  /// the retry budget into status failed).
  std::uint32_t attempt_limit = 1;
};

/// A seeded set of rules.  Plain data; validate() + strict JSON round-trip
/// follow the Scenario discipline (unknown/duplicate keys rejected, all
/// fields emitted).
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultRule> rules;

  /// Throws std::invalid_argument on an unknown site name, a probability
  /// outside [0, 1], or a rule with no trigger at all.
  void validate() const;

  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] static FaultPlan from_json(const std::string& text);
};

[[nodiscard]] bool operator==(const FaultRule& a, const FaultRule& b);
[[nodiscard]] bool operator==(const FaultPlan& a, const FaultPlan& b);

/// Evaluates a FaultPlan.  Stateless apart from the plan itself — safe to
/// share across threads, and two injectors built from equal plans make
/// identical decisions forever.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Pure decision: does any rule fire at (site, key, attempt)?
  [[nodiscard]] bool should_fail(const std::string& site, std::uint64_t key,
                                 std::uint32_t attempt) const;

  /// Throws InjectedFault when should_fail() says so; the what() names the
  /// site, key and attempt so error frames stay diagnosable.
  void maybe_fail(const std::string& site, std::uint64_t key, std::uint32_t attempt) const;

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  FaultPlan plan_;
};

/// Sink decorator arming the "sink" site: consults the injector with the
/// delivered result index (+1) before forwarding.  The throw happens inside
/// the Runner's ordered flush, which is exactly the delivery-failure path
/// the harness needs to exercise: the ordered prefix already delivered
/// stays delivered, the batch aborts cleanly.
class FaultInjectingSink final : public ResultSink {
 public:
  FaultInjectingSink(ResultSink& inner, const FaultInjector& injector)
      : inner_(inner), injector_(injector) {}

  void on_result(std::size_t index, const ScenarioResult& result) override {
    injector_.maybe_fail("sink", static_cast<std::uint64_t>(index) + 1, 1);
    inner_.on_result(index, result);
  }
  void on_finish(std::size_t total) override { inner_.on_finish(total); }

 private:
  ResultSink& inner_;
  const FaultInjector& injector_;
};

/// The valid FaultRule::site names, for validation and docs.
[[nodiscard]] const std::vector<std::string>& fault_sites();

}  // namespace arsf::scenario
