#include "scenario/report.h"

#include "support/ascii.h"

namespace arsf::scenario {

void write_result_rows(support::ReportWriter& out, const ScenarioResult& result) {
  if (!result.ok()) {
    out.add_text(result.scenario, result.analysis, "error", result.error);
    return;
  }
  for (const Metric& metric : result.metrics) {
    out.add(result.scenario, result.analysis, metric.key, metric.value);
  }
}

void write_report(support::ReportWriter& out, std::span<const ScenarioResult> results) {
  for (const ScenarioResult& result : results) write_result_rows(out, result);
}

std::string render_results(std::span<const ScenarioResult> results) {
  support::TextTable table{{"scenario", "analysis", "headline", "value", "status"}};
  for (const ScenarioResult& result : results) {
    if (!result.ok()) {
      table.add_row({result.scenario, result.analysis, "-", "-", "ERROR: " + result.error});
      continue;
    }
    // The first metric of every analysis is its headline number (E|S|,
    // mean width, worst-case width, containment, ...).
    const std::string key = result.metrics.empty() ? "-" : result.metrics.front().key;
    const std::string value =
        result.metrics.empty() ? "-" : support::format_number(result.metrics.front().value, 4);
    table.add_row({result.scenario, result.analysis, key, value, "ok"});
  }
  return table.render();
}

}  // namespace arsf::scenario
