#include "scenario/report.h"

#include "support/ascii.h"

namespace arsf::scenario {

void write_result_rows(support::ReportWriter& out, const ScenarioResult& result) {
  if (!result.ok()) {
    out.add_text(result.scenario, result.analysis, "error", result.error);
  } else {
    for (const Metric& metric : result.metrics) {
      out.add(result.scenario, result.analysis, metric.key, metric.value);
    }
    if (result.degraded) out.add_text(result.scenario, result.analysis, "degraded", "true");
    if (result.from_cache) {
      out.add_text(result.scenario, result.analysis, "from_cache", "true");
    }
    if (result.attempts > 1) {
      out.add(result.scenario, result.analysis, "attempts", static_cast<double>(result.attempts));
    }
  }
  // Every result's rows end with exactly ONE "status" row.  run_sweep's
  // resume repair leans on this: a truncated CSV is cut back to the last
  // complete status row and the result count is the status-row count.
  out.add_text(result.scenario, result.analysis, "status", to_string(result.status));
}

void write_report(support::ReportWriter& out, std::span<const ScenarioResult> results) {
  for (const ScenarioResult& result : results) write_result_rows(out, result);
}

std::string render_results(std::span<const ScenarioResult> results) {
  support::TextTable table{{"scenario", "analysis", "headline", "value", "status"}};
  for (const ScenarioResult& result : results) {
    if (!result.ok()) {
      table.add_row({result.scenario, result.analysis, "-", "-",
                     to_string(result.status) + ": " + result.error});
      continue;
    }
    // The first metric of every analysis is its headline number (E|S|,
    // mean width, worst-case width, containment, ...).
    const std::string key = result.metrics.empty() ? "-" : result.metrics.front().key;
    const std::string value =
        result.metrics.empty() ? "-" : support::format_number(result.metrics.front().value, 4);
    std::string status = to_string(result.status);
    if (result.degraded) status += " (degraded)";
    if (result.from_cache) status += " (cached)";
    table.add_row({result.scenario, result.analysis, key, value, status});
  }
  return table.render();
}

}  // namespace arsf::scenario
