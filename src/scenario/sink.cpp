#include "scenario/sink.h"

#include <ostream>
#include <stdexcept>

#include "scenario/json.h"
#include "scenario/report.h"

namespace arsf::scenario {

void CollectingSink::on_result(std::size_t index, const ScenarioResult& result) {
  if (index != results_.size()) {
    throw std::logic_error("CollectingSink: results must arrive in input order");
  }
  results_.push_back(result);
}

void CollectingSink::on_finish(std::size_t total) {
  if (total != results_.size()) {
    throw std::logic_error("CollectingSink: on_finish total does not match delivered results");
  }
}

void CsvStreamSink::on_result(std::size_t /*index*/, const ScenarioResult& result) {
  ++results_;
  write_result_rows(writer_, result);
  // Completed rows reach the stream now, not at batch end: a tailing reader
  // (or a crash mid-sweep) keeps everything already finished.
  writer_.flush();
}

std::string to_json(std::size_t index, const ScenarioResult& result) {
  json::JsonBuilder metrics;
  for (const Metric& metric : result.metrics) metrics.field(metric.key, metric.value);

  json::JsonBuilder builder;
  builder.field("index", static_cast<std::uint64_t>(index));
  builder.field("scenario", result.scenario);
  builder.field("analysis", result.analysis);
  builder.field("status", to_string(result.status));
  builder.field("attempts", static_cast<std::uint64_t>(result.attempts));
  builder.field("degraded", result.degraded);
  builder.field("from_cache", result.from_cache);
  builder.raw("metrics", metrics.render());
  builder.field("error", result.error);
  return builder.render();
}

void JsonlSink::on_result(std::size_t index, const ScenarioResult& result) {
  ++results_;
  // Flush per line: JSONL is the wire format — a consumer tailing the pipe
  // must see each result as it finishes, not when the buffer happens to fill.
  out_ << to_json(index, result) << '\n' << std::flush;
}

void ProgressSink::on_result(std::size_t index, const ScenarioResult& result) {
  const std::lock_guard<std::mutex> lock{mutex_};
  inner_.on_result(index, result);
  ++done_;
  if (result.ok()) {
    ++completed_;
  } else if (result.status == ResultStatus::kTimedOut) {
    ++timed_out_;
  } else {
    ++failed_;
  }
  log_ << '[' << done_;
  if (total_ != 0) log_ << '/' << total_;
  log_ << "] " << result.scenario << "  ";
  if (result.ok()) {
    log_ << to_string(result.status);
    if (result.degraded) log_ << " (degraded)";
  } else {
    log_ << to_string(result.status) << ": " << result.error;
  }
  if (failed_ != 0 || timed_out_ != 0) {
    log_ << "  (" << completed_ << " completed, " << failed_ << " failed, " << timed_out_
         << " timed out)";
  }
  log_ << std::endl;
}

void ProgressSink::on_finish(std::size_t total) {
  const std::lock_guard<std::mutex> lock{mutex_};
  inner_.on_finish(total);
}

}  // namespace arsf::scenario
