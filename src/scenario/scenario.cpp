#include "scenario/scenario.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <stdexcept>

#include "support/ascii.h"

namespace arsf::scenario {

namespace {

[[noreturn]] void fail(const std::string& scenario, const std::string& reason) {
  throw std::invalid_argument("Scenario" + (scenario.empty() ? "" : " '" + scenario + "'") +
                              ": " + reason);
}

template <typename Enum>
Enum parse_enum(const std::string& text, std::initializer_list<Enum> values,
                const char* what) {
  for (Enum value : values) {
    if (to_string(value) == text) return value;
  }
  throw std::invalid_argument(std::string{"Scenario: unknown "} + what + " '" + text + "'");
}

sched::ScheduleKind parse_schedule(const std::string& text) {
  using sched::ScheduleKind;
  using sched::to_string;
  for (ScheduleKind kind : {ScheduleKind::kAscending, ScheduleKind::kDescending,
                            ScheduleKind::kRandom, ScheduleKind::kFixed,
                            ScheduleKind::kTrustedLast}) {
    if (to_string(kind) == text) return kind;
  }
  throw std::invalid_argument("Scenario: unknown schedule '" + text + "'");
}

sched::AttackedSetRule parse_attacked_rule(const std::string& text) {
  using sched::AttackedSetRule;
  using sched::to_string;
  for (AttackedSetRule rule :
       {AttackedSetRule::kSmallestWidths, AttackedSetRule::kLargestWidths,
        AttackedSetRule::kRandom, AttackedSetRule::kLastSlots, AttackedSetRule::kFirstSlots}) {
    if (to_string(rule) == text) return rule;
  }
  throw std::invalid_argument("Scenario: unknown attacked_rule '" + text + "'");
}

sensors::FaultKind parse_fault_kind(const std::string& text) {
  using sensors::FaultKind;
  using sensors::to_string;
  for (FaultKind kind : {FaultKind::kNone, FaultKind::kStuckAt, FaultKind::kOffset,
                         FaultKind::kDrift, FaultKind::kDropout}) {
    if (to_string(kind) == text) return kind;
  }
  throw std::invalid_argument("Scenario: unknown fault kind '" + text + "'");
}

// ------------------------------------------------------------- JSON writer --

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string json_number(double x) { return support::format_round_trip(x); }

class JsonBuilder {
 public:
  void field(const std::string& key, const std::string& value) {
    raw(key, "\"" + json_escape(value) + "\"");
  }
  void field(const std::string& key, double value) { raw(key, json_number(value)); }
  void field(const std::string& key, std::uint64_t value) { raw(key, std::to_string(value)); }
  void field(const std::string& key, int value) { raw(key, std::to_string(value)); }
  void field(const std::string& key, bool value) { raw(key, value ? "true" : "false"); }
  template <typename T>
  void list(const std::string& key, const std::vector<T>& values) {
    std::string text = "[";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i) text += ",";
      if constexpr (std::is_floating_point_v<T>) {
        text += json_number(values[i]);
      } else {
        text += std::to_string(values[i]);
      }
    }
    raw(key, text + "]");
  }
  void raw(const std::string& key, const std::string& value) {
    if (!body_.empty()) body_ += ",";
    body_ += "\"" + json_escape(key) + "\":" + value;
  }
  [[nodiscard]] std::string render() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

// ------------------------------------------------------------- JSON parser --
//
// Minimal recursive-descent parser for the subset to_json() emits: objects,
// arrays of numbers, strings, numbers and booleans.  Integers are parsed
// without a double round-trip so 64-bit seeds survive exactly.

struct JsonValue {
  enum class Type { kString, kNumber, kBool, kArray, kObject } type = Type::kNumber;
  std::string string;
  double number = 0.0;
  std::uint64_t integer = 0;   ///< valid when is_integer
  bool is_integer = false;
  bool negative = false;       ///< integer sign (stored separately: uint64 magnitude)
  bool boolean = false;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_space();
    if (pos_ != text_.size()) error("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void error(const std::string& reason) const {
    throw std::invalid_argument("Scenario JSON: " + reason + " at offset " +
                                std::to_string(pos_));
  }

  void skip_space() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  char peek() {
    skip_space();
    if (pos_ >= text_.size()) error("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) error(std::string{"expected '"} + c + "'");
    ++pos_;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't':
      case 'f': return parse_bool();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      JsonValue key = parse_string();
      expect(':');
      value.object.emplace_back(key.string, parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array.push_back(parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  JsonValue parse_string() {
    expect('"');
    JsonValue value;
    value.type = JsonValue::Type::kString;
    while (true) {
      if (pos_ >= text_.size()) error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return value;
      if (c == '\\') {
        if (pos_ >= text_.size()) error("unterminated escape");
        const char escaped = text_[pos_++];
        switch (escaped) {
          case '"': value.string += '"'; break;
          case '\\': value.string += '\\'; break;
          case 'n': value.string += '\n'; break;
          case 't': value.string += '\t'; break;
          default: error("unsupported escape sequence");
        }
      } else {
        value.string += c;
      }
    }
  }

  JsonValue parse_bool() {
    JsonValue value;
    value.type = JsonValue::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      value.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      value.boolean = false;
      pos_ += 5;
    } else {
      error("expected boolean");
    }
    return value;
  }

  JsonValue parse_number() {
    skip_space();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool fractional = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        fractional = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) error("expected number");
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    if (!fractional) {
      value.negative = *first == '-';
      const char* digits = value.negative || *first == '+' ? first + 1 : first;
      const auto result = std::from_chars(digits, last, value.integer);
      value.is_integer = result.ec == std::errc{} && result.ptr == last;
    }
    const auto result = std::from_chars(first, last, value.number);
    if (result.ec != std::errc{} || result.ptr != last) error("malformed number");
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// Typed field extraction; every getter rejects type mismatches.
const JsonValue& object_field(const JsonValue& object, const std::string& key) {
  for (const auto& [name, value] : object.object) {
    if (name == key) return value;
  }
  throw std::invalid_argument("Scenario JSON: missing field '" + key + "'");
}

std::string get_string(const JsonValue& object, const std::string& key) {
  const JsonValue& value = object_field(object, key);
  if (value.type != JsonValue::Type::kString) {
    throw std::invalid_argument("Scenario JSON: field '" + key + "' must be a string");
  }
  return value.string;
}

double get_double(const JsonValue& object, const std::string& key) {
  const JsonValue& value = object_field(object, key);
  if (value.type != JsonValue::Type::kNumber) {
    throw std::invalid_argument("Scenario JSON: field '" + key + "' must be a number");
  }
  return value.number;
}

std::uint64_t get_uint(const JsonValue& object, const std::string& key) {
  const JsonValue& value = object_field(object, key);
  if (value.type != JsonValue::Type::kNumber || !value.is_integer || value.negative) {
    throw std::invalid_argument("Scenario JSON: field '" + key +
                                "' must be a non-negative integer");
  }
  return value.integer;
}

int get_int(const JsonValue& object, const std::string& key) {
  const JsonValue& value = object_field(object, key);
  if (value.type != JsonValue::Type::kNumber || !value.is_integer) {
    throw std::invalid_argument("Scenario JSON: field '" + key + "' must be an integer");
  }
  const auto magnitude = static_cast<int>(value.integer);
  return value.negative ? -magnitude : magnitude;
}

bool get_bool(const JsonValue& object, const std::string& key) {
  const JsonValue& value = object_field(object, key);
  if (value.type != JsonValue::Type::kBool) {
    throw std::invalid_argument("Scenario JSON: field '" + key + "' must be a boolean");
  }
  return value.boolean;
}

std::vector<double> get_double_list(const JsonValue& object, const std::string& key) {
  const JsonValue& value = object_field(object, key);
  if (value.type != JsonValue::Type::kArray) {
    throw std::invalid_argument("Scenario JSON: field '" + key + "' must be an array");
  }
  std::vector<double> out;
  out.reserve(value.array.size());
  for (const JsonValue& element : value.array) {
    if (element.type != JsonValue::Type::kNumber) {
      throw std::invalid_argument("Scenario JSON: field '" + key + "' must hold numbers");
    }
    out.push_back(element.number);
  }
  return out;
}

std::vector<std::size_t> get_index_list(const JsonValue& object, const std::string& key) {
  const JsonValue& value = object_field(object, key);
  if (value.type != JsonValue::Type::kArray) {
    throw std::invalid_argument("Scenario JSON: field '" + key + "' must be an array");
  }
  std::vector<std::size_t> out;
  out.reserve(value.array.size());
  for (const JsonValue& element : value.array) {
    if (element.type != JsonValue::Type::kNumber || !element.is_integer || element.negative) {
      throw std::invalid_argument("Scenario JSON: field '" + key +
                                  "' must hold non-negative integers");
    }
    out.push_back(static_cast<std::size_t>(element.integer));
  }
  return out;
}

}  // namespace

std::string to_string(AnalysisKind kind) {
  switch (kind) {
    case AnalysisKind::kEnumerate: return "enumerate";
    case AnalysisKind::kMonteCarlo: return "montecarlo";
    case AnalysisKind::kWorstCase: return "worstcase";
    case AnalysisKind::kResilience: return "resilience";
    case AnalysisKind::kCaseStudy: return "casestudy";
  }
  return "unknown";
}

std::string to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kNone: return "none";
    case PolicyKind::kExpectation: return "expectation";
    case PolicyKind::kOracle: return "oracle";
  }
  return "unknown";
}

int Scenario::resolved_f() const {
  if (f >= 0) return f;
  return max_bounded_f(static_cast<int>(widths.size()));
}

SystemConfig Scenario::system() const {
  SystemConfig config = make_config(widths, f);
  for (SensorId id : trusted) {
    if (id < config.sensors.size()) config.sensors[id].trusted = true;
  }
  return config;
}

void Scenario::validate() const {
  if (name.empty()) fail(name, "name must be non-empty");
  if (widths.empty()) fail(name, "widths must be non-empty");
  for (double w : widths) {
    if (!(w > 0.0)) fail(name, "every width must be > 0");
  }
  if (!(step > 0.0)) fail(name, "step must be > 0");

  // Delegate system-level checks (f range, positive widths) and the exact
  // grid requirement to the shared helpers so the rules cannot drift.
  SystemConfig config;
  try {
    config = system();
    config.validate();
    (void)tick_widths(config, Quantizer{step});
  } catch (const std::invalid_argument& e) {
    fail(name, e.what());
  }

  const std::size_t count = widths.size();
  for (SensorId id : trusted) {
    if (id >= count) fail(name, "trusted id out of range");
  }
  if (fa > count) fail(name, "fa exceeds the number of sensors");
  for (SensorId id : attacked_override) {
    if (id >= count) fail(name, "attacked_override id out of range");
  }
  if (!attacked_override.empty()) {
    if (!std::is_sorted(attacked_override.begin(), attacked_override.end())) {
      fail(name, "attacked_override must be sorted by id");
    }
    if (std::adjacent_find(attacked_override.begin(), attacked_override.end()) !=
        attacked_override.end()) {
      fail(name, "attacked_override must not repeat ids");
    }
    if (attacked_override.size() != fa) fail(name, "attacked_override size must equal fa");
  }

  if (schedule == sched::ScheduleKind::kFixed) {
    if (!sched::is_valid_order(fixed_order, count)) {
      fail(name, "fixed schedule requires a permutation fixed_order");
    }
  } else if (!fixed_order.empty()) {
    fail(name, "fixed_order is only meaningful with the fixed schedule");
  }
  if (schedule == sched::ScheduleKind::kTrustedLast && trusted.empty()) {
    fail(name, "trusted-last schedule without trusted sensors");
  }

  switch (analysis) {
    case AnalysisKind::kEnumerate:
      if (schedule == sched::ScheduleKind::kRandom) {
        fail(name, "exhaustive enumeration needs a deterministic schedule");
      }
      if (max_worlds == 0) fail(name, "max_worlds must be > 0");
      break;
    case AnalysisKind::kMonteCarlo:
    case AnalysisKind::kResilience:
    case AnalysisKind::kCaseStudy:
      if (rounds == 0) fail(name, "sampled analyses need rounds > 0");
      if (!attacked_override.empty()) {
        fail(name, "sampled analyses choose the attacked set by rule, not override");
      }
      break;
    case AnalysisKind::kWorstCase:
      if (over_all_sets && count > 63) fail(name, "over_all_sets supports at most 63 sensors");
      break;
  }
  if (analysis == AnalysisKind::kResilience && fault.kind != sensors::FaultKind::kNone) {
    if (fault.p_enter < 0.0 || fault.p_enter > 1.0 || fault.p_recover < 0.0 ||
        fault.p_recover > 1.0) {
      fail(name, "fault probabilities must lie in [0, 1]");
    }
  }
  if (policy_options.max_joint == 0) fail(name, "policy_options.max_joint must be >= 1");
  if (policy_options.candidate_stride < 1) {
    fail(name, "policy_options.candidate_stride must be >= 1");
  }
}

std::string Scenario::to_json() const {
  JsonBuilder options;
  options.field("max_joint", static_cast<std::uint64_t>(policy_options.max_joint));
  options.field("max_completions", static_cast<std::uint64_t>(policy_options.max_completions));
  options.field("candidate_stride", static_cast<std::uint64_t>(policy_options.candidate_stride));
  options.field("memoize", policy_options.memoize);
  options.field("sample_seed", policy_options.sample_seed);
  options.field("random_tie_break", policy_options.random_tie_break);

  JsonBuilder fault_json;
  fault_json.field("kind", sensors::to_string(fault.kind));
  fault_json.field("p_enter", fault.p_enter);
  fault_json.field("p_recover", fault.p_recover);
  fault_json.field("magnitude", fault.magnitude);

  JsonBuilder builder;
  builder.field("name", name);
  builder.field("description", description);
  builder.field("analysis", to_string(analysis));
  builder.list("widths", widths);
  builder.field("f", f);
  builder.list("trusted", trusted);
  builder.field("step", step);
  builder.field("schedule", sched::to_string(schedule));
  builder.list("fixed_order", fixed_order);
  builder.field("fa", static_cast<std::uint64_t>(fa));
  builder.field("attacked_rule", sched::to_string(attacked_rule));
  builder.list("attacked_override", attacked_override);
  builder.field("policy", to_string(policy));
  builder.raw("policy_options", options.render());
  builder.field("rounds", static_cast<std::uint64_t>(rounds));
  builder.field("seed", seed);
  builder.field("max_worlds", max_worlds);
  builder.field("require_undetected", require_undetected);
  builder.field("over_all_sets", over_all_sets);
  builder.raw("fault", fault_json.render());
  builder.field("num_threads", static_cast<std::uint64_t>(num_threads));
  return builder.render();
}

Scenario Scenario::from_json(const std::string& text) {
  const JsonValue root = JsonParser{text}.parse();
  if (root.type != JsonValue::Type::kObject) {
    throw std::invalid_argument("Scenario JSON: top level must be an object");
  }
  static const std::vector<std::string> known = {
      "name",       "description",       "analysis",          "widths",
      "f",          "trusted",           "step",              "schedule",
      "fixed_order", "fa",               "attacked_rule",     "attacked_override",
      "policy",     "policy_options",    "rounds",            "seed",
      "max_worlds", "require_undetected", "over_all_sets",    "fault",
      "num_threads"};
  for (const auto& [key, value] : root.object) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      throw std::invalid_argument("Scenario JSON: unknown field '" + key + "'");
    }
  }

  Scenario scenario;
  scenario.name = get_string(root, "name");
  scenario.description = get_string(root, "description");
  scenario.analysis = parse_enum(get_string(root, "analysis"),
                                 {AnalysisKind::kEnumerate, AnalysisKind::kMonteCarlo,
                                  AnalysisKind::kWorstCase, AnalysisKind::kResilience,
                                  AnalysisKind::kCaseStudy},
                                 "analysis");
  scenario.widths = get_double_list(root, "widths");
  scenario.f = get_int(root, "f");
  scenario.trusted = get_index_list(root, "trusted");
  scenario.step = get_double(root, "step");
  scenario.schedule = parse_schedule(get_string(root, "schedule"));
  scenario.fixed_order = get_index_list(root, "fixed_order");
  scenario.fa = static_cast<std::size_t>(get_uint(root, "fa"));
  scenario.attacked_rule = parse_attacked_rule(get_string(root, "attacked_rule"));
  scenario.attacked_override = get_index_list(root, "attacked_override");
  scenario.policy = parse_enum(get_string(root, "policy"),
                               {PolicyKind::kNone, PolicyKind::kExpectation, PolicyKind::kOracle},
                               "policy");

  const JsonValue& options = object_field(root, "policy_options");
  scenario.policy_options.max_joint = static_cast<std::size_t>(get_uint(options, "max_joint"));
  scenario.policy_options.max_completions =
      static_cast<std::size_t>(get_uint(options, "max_completions"));
  scenario.policy_options.candidate_stride =
      static_cast<Tick>(get_uint(options, "candidate_stride"));
  scenario.policy_options.memoize = get_bool(options, "memoize");
  scenario.policy_options.sample_seed = get_uint(options, "sample_seed");
  scenario.policy_options.random_tie_break = get_bool(options, "random_tie_break");

  scenario.rounds = static_cast<std::size_t>(get_uint(root, "rounds"));
  scenario.seed = get_uint(root, "seed");
  scenario.max_worlds = get_uint(root, "max_worlds");
  scenario.require_undetected = get_bool(root, "require_undetected");
  scenario.over_all_sets = get_bool(root, "over_all_sets");

  const JsonValue& fault = object_field(root, "fault");
  scenario.fault.kind = parse_fault_kind(get_string(fault, "kind"));
  scenario.fault.p_enter = get_double(fault, "p_enter");
  scenario.fault.p_recover = get_double(fault, "p_recover");
  scenario.fault.magnitude = get_double(fault, "magnitude");

  scenario.num_threads = static_cast<unsigned>(get_uint(root, "num_threads"));
  return scenario;
}

bool operator==(const Scenario& a, const Scenario& b) {
  const auto options_equal = [](const attack::ExpectationOptions& x,
                                const attack::ExpectationOptions& y) {
    return x.max_joint == y.max_joint && x.max_completions == y.max_completions &&
           x.candidate_stride == y.candidate_stride && x.memoize == y.memoize &&
           x.sample_seed == y.sample_seed && x.random_tie_break == y.random_tie_break;
  };
  const auto fault_equal = [](const sensors::FaultProcess& x, const sensors::FaultProcess& y) {
    return x.kind == y.kind && x.p_enter == y.p_enter && x.p_recover == y.p_recover &&
           x.magnitude == y.magnitude;
  };
  return a.name == b.name && a.description == b.description && a.analysis == b.analysis &&
         a.widths == b.widths && a.f == b.f && a.trusted == b.trusted && a.step == b.step &&
         a.schedule == b.schedule && a.fixed_order == b.fixed_order && a.fa == b.fa &&
         a.attacked_rule == b.attacked_rule && a.attacked_override == b.attacked_override &&
         a.policy == b.policy && options_equal(a.policy_options, b.policy_options) &&
         a.rounds == b.rounds && a.seed == b.seed && a.max_worlds == b.max_worlds &&
         a.require_undetected == b.require_undetected && a.over_all_sets == b.over_all_sets &&
         fault_equal(a.fault, b.fault) && a.num_threads == b.num_threads;
}

}  // namespace arsf::scenario
