#include "scenario/scenario.h"

#include <algorithm>
#include <stdexcept>

#include "scenario/json.h"

namespace arsf::scenario {

namespace {

using json::JsonBuilder;
using json::JsonValue;

[[noreturn]] void fail(const std::string& scenario, const std::string& reason) {
  throw std::invalid_argument("Scenario" + (scenario.empty() ? "" : " '" + scenario + "'") +
                              ": " + reason);
}

template <typename Enum>
Enum parse_enum(const std::string& text, std::initializer_list<Enum> values,
                const char* what) {
  for (Enum value : values) {
    if (to_string(value) == text) return value;
  }
  throw std::invalid_argument(std::string{"Scenario: unknown "} + what + " '" + text + "'");
}

sched::AttackedSetRule parse_attacked_rule(const std::string& text) {
  using sched::AttackedSetRule;
  using sched::to_string;
  for (AttackedSetRule rule :
       {AttackedSetRule::kSmallestWidths, AttackedSetRule::kLargestWidths,
        AttackedSetRule::kRandom, AttackedSetRule::kLastSlots, AttackedSetRule::kFirstSlots}) {
    if (to_string(rule) == text) return rule;
  }
  throw std::invalid_argument("Scenario: unknown attacked_rule '" + text + "'");
}

sensors::FaultKind parse_fault_kind(const std::string& text) {
  using sensors::FaultKind;
  using sensors::to_string;
  for (FaultKind kind : {FaultKind::kNone, FaultKind::kStuckAt, FaultKind::kOffset,
                         FaultKind::kDrift, FaultKind::kDropout}) {
    if (to_string(kind) == text) return kind;
  }
  throw std::invalid_argument("Scenario: unknown fault kind '" + text + "'");
}

}  // namespace

std::string to_string(AnalysisKind kind) {
  switch (kind) {
    case AnalysisKind::kEnumerate: return "enumerate";
    case AnalysisKind::kMonteCarlo: return "montecarlo";
    case AnalysisKind::kWorstCase: return "worstcase";
    case AnalysisKind::kWorstCaseFast: return "worstcase-fast";
    case AnalysisKind::kWorstCaseOverSetsBnb: return "worstcase-oversets-bnb";
    case AnalysisKind::kResilience: return "resilience";
    case AnalysisKind::kCaseStudy: return "casestudy";
    case AnalysisKind::kWidthHistogram: return "width-histogram";
    case AnalysisKind::kDetectionRate: return "detection-rate";
    case AnalysisKind::kWidthArgmax: return "width-argmax";
    case AnalysisKind::kFused: return "fused";
  }
  return "unknown";
}

namespace {

constexpr std::initializer_list<AnalysisKind> kAllAnalysisKinds = {
    AnalysisKind::kEnumerate,      AnalysisKind::kMonteCarlo,
    AnalysisKind::kWorstCase,      AnalysisKind::kWorstCaseFast,
    AnalysisKind::kWorstCaseOverSetsBnb, AnalysisKind::kResilience,
    AnalysisKind::kCaseStudy,      AnalysisKind::kWidthHistogram,
    AnalysisKind::kDetectionRate,  AnalysisKind::kWidthArgmax,
    AnalysisKind::kFused};

}  // namespace

AnalysisKind analysis_kind_from_string(const std::string& text) {
  return parse_enum(text, kAllAnalysisKinds, "analysis");
}

bool is_fusable(AnalysisKind kind) noexcept {
  switch (kind) {
    case AnalysisKind::kEnumerate:
    case AnalysisKind::kWidthHistogram:
    case AnalysisKind::kDetectionRate:
    case AnalysisKind::kWidthArgmax:
      return true;
    default:
      return false;
  }
}

std::string to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kNone: return "none";
    case PolicyKind::kExpectation: return "expectation";
    case PolicyKind::kOracle: return "oracle";
  }
  return "unknown";
}

PolicyKind policy_kind_from_string(const std::string& text) {
  return parse_enum(text, {PolicyKind::kNone, PolicyKind::kExpectation, PolicyKind::kOracle},
                    "policy");
}

int Scenario::resolved_f() const {
  if (f >= 0) return f;
  return max_bounded_f(static_cast<int>(widths.size()));
}

SystemConfig Scenario::system() const {
  SystemConfig config = make_config(widths, f);
  for (SensorId id : trusted) {
    if (id < config.sensors.size()) config.sensors[id].trusted = true;
  }
  return config;
}

void Scenario::validate() const {
  if (name.empty()) fail(name, "name must be non-empty");
  if (widths.empty()) fail(name, "widths must be non-empty");
  for (double w : widths) {
    if (!(w > 0.0)) fail(name, "every width must be > 0");
  }
  if (!(step > 0.0)) fail(name, "step must be > 0");

  // Delegate system-level checks (f range, positive widths) and the exact
  // grid requirement to the shared helpers so the rules cannot drift.
  SystemConfig config;
  try {
    config = system();
    config.validate();
    (void)tick_widths(config, Quantizer{step});
  } catch (const std::invalid_argument& e) {
    fail(name, e.what());
  }

  const std::size_t count = widths.size();
  for (SensorId id : trusted) {
    if (id >= count) fail(name, "trusted id out of range");
  }
  if (fa > count) fail(name, "fa exceeds the number of sensors");
  for (SensorId id : attacked_override) {
    if (id >= count) fail(name, "attacked_override id out of range");
  }
  if (!attacked_override.empty()) {
    if (!std::is_sorted(attacked_override.begin(), attacked_override.end())) {
      fail(name, "attacked_override must be sorted by id");
    }
    if (std::adjacent_find(attacked_override.begin(), attacked_override.end()) !=
        attacked_override.end()) {
      fail(name, "attacked_override must not repeat ids");
    }
    if (attacked_override.size() != fa) fail(name, "attacked_override size must equal fa");
  }

  if (schedule == sched::ScheduleKind::kFixed) {
    if (!sched::is_valid_order(fixed_order, count)) {
      fail(name, "fixed schedule requires a permutation fixed_order");
    }
  } else if (!fixed_order.empty()) {
    fail(name, "fixed_order is only meaningful with the fixed schedule");
  }
  if (schedule == sched::ScheduleKind::kTrustedLast && trusted.empty()) {
    fail(name, "trusted-last schedule without trusted sensors");
  }

  switch (analysis) {
    case AnalysisKind::kEnumerate:
    case AnalysisKind::kWidthHistogram:
    case AnalysisKind::kDetectionRate:
    case AnalysisKind::kWidthArgmax:
    case AnalysisKind::kFused:
      if (schedule == sched::ScheduleKind::kRandom) {
        fail(name, "exhaustive enumeration needs a deterministic schedule");
      }
      if (max_worlds == 0) fail(name, "max_worlds must be > 0");
      break;
    case AnalysisKind::kMonteCarlo:
    case AnalysisKind::kResilience:
    case AnalysisKind::kCaseStudy:
      if (rounds == 0) fail(name, "sampled analyses need rounds > 0");
      if (!attacked_override.empty()) {
        fail(name, "sampled analyses choose the attacked set by rule, not override");
      }
      break;
    case AnalysisKind::kWorstCase:
    case AnalysisKind::kWorstCaseFast:
      if (over_all_sets && count > 63) fail(name, "over_all_sets supports at most 63 sensors");
      break;
    case AnalysisKind::kWorstCaseOverSetsBnb:
      // The BnB engine IS the over-all-subsets outer loop; a fixed-set
      // scenario has nothing for it to prune and almost certainly meant
      // worstcase-fast.
      if (!over_all_sets) {
        fail(name, "worstcase-oversets-bnb requires over_all_sets (use worstcase-fast for a "
                   "fixed attacked set)");
      }
      if (count > 63) fail(name, "over_all_sets supports at most 63 sensors");
      break;
  }
  if (analysis == AnalysisKind::kFused) {
    if (fused_members.empty()) fail(name, "fused analysis needs at least one member");
    for (std::size_t i = 0; i < fused_members.size(); ++i) {
      if (!is_fusable(fused_members[i])) {
        fail(name, "fused member '" + to_string(fused_members[i]) + "' is not fusable");
      }
      for (std::size_t j = 0; j < i; ++j) {
        if (fused_members[j] == fused_members[i]) {
          fail(name, "duplicate fused member '" + to_string(fused_members[i]) + "'");
        }
      }
    }
  } else if (!fused_members.empty()) {
    fail(name, "fused_members is only meaningful with the fused analysis");
  }
  if (analysis == AnalysisKind::kResilience && fault.kind != sensors::FaultKind::kNone) {
    if (fault.p_enter < 0.0 || fault.p_enter > 1.0 || fault.p_recover < 0.0 ||
        fault.p_recover > 1.0) {
      fail(name, "fault probabilities must lie in [0, 1]");
    }
  }
  if (policy_options.max_joint == 0) fail(name, "policy_options.max_joint must be >= 1");
  if (policy_options.candidate_stride < 1) {
    fail(name, "policy_options.candidate_stride must be >= 1");
  }
}

std::string Scenario::to_json() const {
  JsonBuilder options;
  options.field("max_joint", static_cast<std::uint64_t>(policy_options.max_joint));
  options.field("max_completions", static_cast<std::uint64_t>(policy_options.max_completions));
  options.field("candidate_stride", static_cast<std::uint64_t>(policy_options.candidate_stride));
  options.field("memoize", policy_options.memoize);
  options.field("sample_seed", policy_options.sample_seed);
  options.field("random_tie_break", policy_options.random_tie_break);

  JsonBuilder fault_json;
  fault_json.field("kind", sensors::to_string(fault.kind));
  fault_json.field("p_enter", fault.p_enter);
  fault_json.field("p_recover", fault.p_recover);
  fault_json.field("magnitude", fault.magnitude);

  JsonBuilder builder;
  builder.field("name", name);
  builder.field("description", description);
  builder.field("analysis", to_string(analysis));
  std::string members_text = "[";
  for (std::size_t i = 0; i < fused_members.size(); ++i) {
    if (i) members_text += ",";
    members_text += "\"" + json::escape(to_string(fused_members[i])) + "\"";
  }
  builder.raw("fused_members", members_text + "]");
  builder.list("widths", widths);
  builder.field("f", f);
  builder.list("trusted", trusted);
  builder.field("step", step);
  builder.field("schedule", sched::to_string(schedule));
  builder.list("fixed_order", fixed_order);
  builder.field("fa", static_cast<std::uint64_t>(fa));
  builder.field("attacked_rule", sched::to_string(attacked_rule));
  builder.list("attacked_override", attacked_override);
  builder.field("policy", to_string(policy));
  builder.object("policy_options", options);
  builder.field("rounds", static_cast<std::uint64_t>(rounds));
  builder.field("seed", seed);
  builder.field("max_worlds", max_worlds);
  builder.field("require_undetected", require_undetected);
  builder.field("over_all_sets", over_all_sets);
  builder.object("fault", fault_json);
  builder.field("num_threads", static_cast<std::uint64_t>(num_threads));
  builder.field("deadline_ms", deadline_ms);
  return builder.render();
}

Scenario scenario_from_value(const JsonValue& root) {
  using json::get_bool;
  using json::get_double;
  using json::get_double_list;
  using json::get_index_list;
  using json::get_int;
  using json::get_string;
  using json::get_uint;
  using json::object_field;

  if (root.type != JsonValue::Type::kObject) {
    throw std::invalid_argument("Scenario JSON: top level must be an object");
  }
  static const std::vector<std::string> known = {
      "name",       "description",       "analysis",          "fused_members",
      "widths",     "f",                 "trusted",           "step",
      "schedule",   "fixed_order",       "fa",                "attacked_rule",
      "attacked_override", "policy",     "policy_options",    "rounds",
      "seed",       "max_worlds",        "require_undetected", "over_all_sets",
      "fault",      "num_threads",       "deadline_ms"};
  json::reject_unknown_keys(root, known, "Scenario");

  Scenario scenario;
  scenario.name = get_string(root, "name");
  scenario.description = get_string(root, "description");
  scenario.analysis = analysis_kind_from_string(get_string(root, "analysis"));
  for (const std::string& member : json::get_string_list(root, "fused_members")) {
    scenario.fused_members.push_back(analysis_kind_from_string(member));
  }
  scenario.widths = get_double_list(root, "widths");
  scenario.f = get_int(root, "f");
  scenario.trusted = get_index_list(root, "trusted");
  scenario.step = get_double(root, "step");
  scenario.schedule = sched::schedule_kind_from_string(get_string(root, "schedule"));
  scenario.fixed_order = get_index_list(root, "fixed_order");
  scenario.fa = static_cast<std::size_t>(get_uint(root, "fa"));
  scenario.attacked_rule = parse_attacked_rule(get_string(root, "attacked_rule"));
  scenario.attacked_override = get_index_list(root, "attacked_override");
  scenario.policy = policy_kind_from_string(get_string(root, "policy"));

  const JsonValue& options = object_field(root, "policy_options");
  scenario.policy_options.max_joint = static_cast<std::size_t>(get_uint(options, "max_joint"));
  scenario.policy_options.max_completions =
      static_cast<std::size_t>(get_uint(options, "max_completions"));
  scenario.policy_options.candidate_stride =
      static_cast<Tick>(get_uint(options, "candidate_stride"));
  scenario.policy_options.memoize = get_bool(options, "memoize");
  scenario.policy_options.sample_seed = get_uint(options, "sample_seed");
  scenario.policy_options.random_tie_break = get_bool(options, "random_tie_break");

  scenario.rounds = static_cast<std::size_t>(get_uint(root, "rounds"));
  scenario.seed = get_uint(root, "seed");
  scenario.max_worlds = get_uint(root, "max_worlds");
  scenario.require_undetected = get_bool(root, "require_undetected");
  scenario.over_all_sets = get_bool(root, "over_all_sets");

  const JsonValue& fault = object_field(root, "fault");
  scenario.fault.kind = parse_fault_kind(get_string(fault, "kind"));
  scenario.fault.p_enter = get_double(fault, "p_enter");
  scenario.fault.p_recover = get_double(fault, "p_recover");
  scenario.fault.magnitude = get_double(fault, "magnitude");

  scenario.num_threads = static_cast<unsigned>(get_uint(root, "num_threads"));
  scenario.deadline_ms = get_uint(root, "deadline_ms");
  return scenario;
}

Scenario Scenario::from_json(const std::string& text) {
  return scenario_from_value(json::parse(text, "Scenario"));
}

bool operator==(const Scenario& a, const Scenario& b) {
  const auto options_equal = [](const attack::ExpectationOptions& x,
                                const attack::ExpectationOptions& y) {
    return x.max_joint == y.max_joint && x.max_completions == y.max_completions &&
           x.candidate_stride == y.candidate_stride && x.memoize == y.memoize &&
           x.sample_seed == y.sample_seed && x.random_tie_break == y.random_tie_break;
  };
  const auto fault_equal = [](const sensors::FaultProcess& x, const sensors::FaultProcess& y) {
    return x.kind == y.kind && x.p_enter == y.p_enter && x.p_recover == y.p_recover &&
           x.magnitude == y.magnitude;
  };
  return a.name == b.name && a.description == b.description && a.analysis == b.analysis &&
         a.fused_members == b.fused_members && a.widths == b.widths && a.f == b.f && a.trusted == b.trusted && a.step == b.step &&
         a.schedule == b.schedule && a.fixed_order == b.fixed_order && a.fa == b.fa &&
         a.attacked_rule == b.attacked_rule && a.attacked_override == b.attacked_override &&
         a.policy == b.policy && options_equal(a.policy_options, b.policy_options) &&
         a.rounds == b.rounds && a.seed == b.seed && a.max_worlds == b.max_worlds &&
         a.require_undetected == b.require_undetected && a.over_all_sets == b.over_all_sets &&
         fault_equal(a.fault, b.fault) && a.num_threads == b.num_threads &&
         a.deadline_ms == b.deadline_ms;
}

}  // namespace arsf::scenario
