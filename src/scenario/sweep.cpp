#include "scenario/sweep.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <limits>
#include <numeric>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "scenario/faultplan.h"
#include "scenario/json.h"
#include "scenario/result_cache.h"
#include "support/fnv.h"
#include "sim/engine/saturating.h"
#include "sim/engine/world_codec.h"
#include "sim/enumerate.h"
#include "support/ascii.h"

namespace arsf::scenario {

namespace {

using sim::engine::WorldCodec;
using sim::engine::saturating_add;
using sim::engine::saturating_binomial;
using sim::engine::saturating_mul;

[[noreturn]] void fail(const std::string& name, const std::string& reason) {
  throw std::invalid_argument("SweepSpec" + (name.empty() ? "" : " '" + name + "'") + ": " +
                              reason);
}

// The six axes in declaration (= name-segment) order; the leftmost active
// axis moves slowest through the grid, so grid indices read like nested
// loops over the segments of the generated names.
enum Axis : std::size_t { kWidths, kFa, kStep, kSched, kPolicy, kSeed, kAxisCount };

struct ActiveAxis {
  Axis axis;
  std::uint64_t radix;
};

std::vector<ActiveAxis> active_axes(const SweepSpec& spec) {
  std::vector<ActiveAxis> active;
  if (!spec.widths_sets.empty()) active.push_back({kWidths, spec.widths_sets.size()});
  if (!spec.fa_values.empty()) active.push_back({kFa, spec.fa_values.size()});
  if (!spec.steps.empty()) active.push_back({kStep, spec.steps.size()});
  if (!spec.schedules.empty()) active.push_back({kSched, spec.schedules.size()});
  if (!spec.policies.empty()) active.push_back({kPolicy, spec.policies.size()});
  if (spec.seed_count != 0) active.push_back({kSeed, spec.seed_count});
  return active;
}

// Digit 0 of the codec is the fastest-moving, so the codec holds the active
// radices in REVERSE declaration order (the first segment moves slowest).
WorldCodec axis_codec(const std::vector<ActiveAxis>& active) {
  std::vector<std::uint64_t> radices;
  radices.reserve(active.size());
  for (auto it = active.rbegin(); it != active.rend(); ++it) radices.push_back(it->radix);
  return WorldCodec{std::move(radices)};
}

std::string widths_segment(const std::vector<double>& widths) {
  std::string text = "w=";
  for (std::size_t i = 0; i < widths.size(); ++i) {
    if (i) text += "-";
    text += support::format_number(widths[i], 6);
  }
  return text;
}

// Per-sweep materialisation cache.  The axis layout, the codec and every
// per-digit name segment are invariants of the spec, so a grid walk
// (expand(), run_sweep()'s chunk loop) pays for them once instead of once
// per point — materialising a point then costs one base copy, a few field
// assignments and a single pre-sized name concatenation.  at() is
// byte-identical (names, fields, error text) to the historical per-call
// construction, which SweepSpec::at still exposes unchanged.
class GridMaterializer {
 public:
  explicit GridMaterializer(const SweepSpec& spec)
      : spec_(spec), active_(active_axes(spec)), codec_(axis_codec(active_)) {
    segments_.resize(active_.size());
    for (std::size_t j = 0; j < active_.size(); ++j) {
      auto& table = segments_[j];
      table.reserve(active_[j].radix);
      for (std::uint64_t d = 0; d < active_[j].radix; ++d) {
        switch (active_[j].axis) {
          case kWidths: table.push_back("/" + widths_segment(spec.widths_sets[d])); break;
          case kFa: table.push_back("/fa=" + std::to_string(spec.fa_values[d])); break;
          case kStep:
            table.push_back("/step=" + support::format_number(spec.steps[d], 6));
            break;
          case kSched: table.push_back("/sched=" + sched::to_string(spec.schedules[d])); break;
          case kPolicy: table.push_back("/policy=" + to_string(spec.policies[d])); break;
          case kSeed: table.push_back("/seed=" + std::to_string(d)); break;
          case kAxisCount: break;
        }
      }
    }
    digits_.resize(codec_.digits());
  }

  [[nodiscard]] std::uint64_t size() const { return codec_.world_count(); }

  [[nodiscard]] Scenario at(std::uint64_t index) {
    if (index >= codec_.world_count()) fail(spec_.name, "grid index out of range");
    codec_.decode(index, digits_);

    Scenario scenario = spec_.base;
    std::size_t name_bytes = spec_.name.size();
    // Walk the axes in declaration order; axis j's digit is the mirrored slot.
    for (std::size_t j = 0; j < active_.size(); ++j) {
      const std::uint64_t digit = digits_[active_.size() - 1 - j];
      name_bytes += segments_[j][digit].size();
      switch (active_[j].axis) {
        case kWidths: scenario.widths = spec_.widths_sets[digit]; break;
        case kFa: scenario.fa = spec_.fa_values[digit]; break;
        case kStep: scenario.step = spec_.steps[digit]; break;
        case kSched: scenario.schedule = spec_.schedules[digit]; break;
        case kPolicy: scenario.policy = spec_.policies[digit]; break;
        case kSeed: scenario.seed = spec_.base.seed + digit * spec_.seed_stride; break;
        case kAxisCount: break;
      }
    }
    std::string point_name;
    point_name.reserve(name_bytes);
    point_name += spec_.name;
    for (std::size_t j = 0; j < active_.size(); ++j) {
      point_name += segments_[j][digits_[active_.size() - 1 - j]];
    }
    scenario.name = std::move(point_name);
    if (!spec_.description.empty()) scenario.description = spec_.description;

    try {
      scenario.validate();
    } catch (const std::invalid_argument& e) {
      fail(spec_.name,
           std::string{"grid point "} + std::to_string(index) + " is invalid: " + e.what());
    }
    return scenario;
  }

 private:
  const SweepSpec& spec_;
  std::vector<ActiveAxis> active_;
  WorldCodec codec_;
  std::vector<std::vector<std::string>> segments_;  ///< [axis slot][digit] → "/k=v"
  std::vector<std::uint64_t> digits_;               ///< decode scratch
};

}  // namespace

std::uint64_t SweepSpec::size() const {
  return axis_codec(active_axes(*this)).world_count();
}

Scenario SweepSpec::at(std::uint64_t index) const {
  GridMaterializer grid{*this};
  return grid.at(index);
}

std::vector<Scenario> SweepSpec::expand() const {
  GridMaterializer grid{*this};
  const std::uint64_t total = grid.size();
  std::vector<Scenario> scenarios;
  scenarios.reserve(total);
  for (std::uint64_t i = 0; i < total; ++i) scenarios.push_back(grid.at(i));
  return scenarios;
}

void SweepSpec::validate() const {
  if (name.empty()) fail(name, "name must be non-empty");
  for (const auto& widths : widths_sets) {
    if (widths.empty()) fail(name, "every widths set must be non-empty");
    for (double w : widths) {
      if (!(w > 0.0)) fail(name, "every width must be > 0");
    }
  }
  for (double step : steps) {
    if (!(step > 0.0)) fail(name, "every step must be > 0");
  }
  if (seed_count > 1 && seed_stride == 0) {
    fail(name, "seed_stride 0 would repeat the same seed across the seed axis");
  }
  const WorldCodec codec = axis_codec(active_axes(*this));
  if (codec.overflowed()) fail(name, "grid size overflows uint64");
}

std::string SweepSpec::to_json() const {
  json::JsonBuilder builder;
  builder.field("name", name);
  builder.field("description", description);
  builder.raw("base", base.to_json());

  std::string sets = "[";
  for (std::size_t i = 0; i < widths_sets.size(); ++i) {
    if (i) sets += ",";
    sets += "[";
    for (std::size_t k = 0; k < widths_sets[i].size(); ++k) {
      if (k) sets += ",";
      sets += json::number_text(widths_sets[i][k]);
    }
    sets += "]";
  }
  builder.raw("widths_sets", sets + "]");

  builder.list("fa", fa_values);
  builder.list("steps", steps);

  std::string schedule_names = "[";
  for (std::size_t i = 0; i < schedules.size(); ++i) {
    if (i) schedule_names += ",";
    schedule_names += "\"" + json::escape(sched::to_string(schedules[i])) + "\"";
  }
  builder.raw("schedules", schedule_names + "]");

  std::string policy_names = "[";
  for (std::size_t i = 0; i < policies.size(); ++i) {
    if (i) policy_names += ",";
    policy_names += "\"" + json::escape(to_string(policies[i])) + "\"";
  }
  builder.raw("policies", policy_names + "]");

  builder.field("seed_count", seed_count);
  builder.field("seed_stride", seed_stride);
  return builder.render();
}

SweepSpec sweep_from_value(const json::JsonValue& root) {
  using json::JsonValue;

  if (root.type != JsonValue::Type::kObject) {
    throw std::invalid_argument("SweepSpec JSON: top level must be an object");
  }
  static const std::vector<std::string> known = {
      "name",      "description", "base",       "widths_sets", "fa",
      "steps",     "schedules",   "policies",   "seed_count",  "seed_stride"};
  json::reject_unknown_keys(root, known, "SweepSpec");

  SweepSpec spec;
  spec.name = json::get_string(root, "name");
  spec.description = json::get_string(root, "description");
  spec.base = scenario_from_value(json::object_field(root, "base"));

  const JsonValue& sets = json::object_field(root, "widths_sets");
  if (sets.type != JsonValue::Type::kArray) {
    throw std::invalid_argument("SweepSpec JSON: field 'widths_sets' must be an array");
  }
  for (const JsonValue& set : sets.array) {
    if (set.type != JsonValue::Type::kArray) {
      throw std::invalid_argument("SweepSpec JSON: 'widths_sets' must hold arrays of numbers");
    }
    std::vector<double> widths;
    widths.reserve(set.array.size());
    for (const JsonValue& element : set.array) {
      if (element.type != JsonValue::Type::kNumber) {
        throw std::invalid_argument("SweepSpec JSON: 'widths_sets' must hold arrays of numbers");
      }
      widths.push_back(element.number);
    }
    spec.widths_sets.push_back(std::move(widths));
  }

  spec.fa_values = json::get_index_list(root, "fa");
  spec.steps = json::get_double_list(root, "steps");

  const JsonValue& schedules = json::object_field(root, "schedules");
  if (schedules.type != JsonValue::Type::kArray) {
    throw std::invalid_argument("SweepSpec JSON: field 'schedules' must be an array");
  }
  for (const JsonValue& element : schedules.array) {
    if (element.type != JsonValue::Type::kString) {
      throw std::invalid_argument("SweepSpec JSON: 'schedules' must hold strings");
    }
    spec.schedules.push_back(sched::schedule_kind_from_string(element.string));
  }

  const JsonValue& policies = json::object_field(root, "policies");
  if (policies.type != JsonValue::Type::kArray) {
    throw std::invalid_argument("SweepSpec JSON: field 'policies' must be an array");
  }
  for (const JsonValue& element : policies.array) {
    if (element.type != JsonValue::Type::kString) {
      throw std::invalid_argument("SweepSpec JSON: 'policies' must hold strings");
    }
    spec.policies.push_back(policy_kind_from_string(element.string));
  }

  spec.seed_count = json::get_uint(root, "seed_count");
  spec.seed_stride = json::get_uint(root, "seed_stride");
  return spec;
}

SweepSpec SweepSpec::from_json(const std::string& text) {
  return sweep_from_value(json::parse(text, "SweepSpec"));
}

SweepSpec load_sweep_spec(const std::string& path) {
  std::ifstream file{path};
  if (!file) throw std::runtime_error("load_sweep_spec: cannot open " + path);
  std::ostringstream text;
  text << file.rdbuf();
  try {
    SweepSpec spec = SweepSpec::from_json(text.str());
    spec.validate();
    return spec;
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

bool operator==(const SweepSpec& a, const SweepSpec& b) {
  return a.name == b.name && a.description == b.description && a.base == b.base &&
         a.widths_sets == b.widths_sets && a.fa_values == b.fa_values && a.steps == b.steps &&
         a.schedules == b.schedules && a.policies == b.policies &&
         a.seed_count == b.seed_count && a.seed_stride == b.seed_stride;
}

std::uint64_t estimated_worlds(const Scenario& scenario) {
  switch (scenario.analysis) {
    // A fused bundle walks the world space ONCE for all of its members, so
    // its cost is the same single pass as any one enumerate-family analysis
    // — this is what lets a k-member bundle through an admission budget that
    // k standalone runs would blow k times over.
    case AnalysisKind::kEnumerate:
    case AnalysisKind::kWidthHistogram:
    case AnalysisKind::kDetectionRate:
    case AnalysisKind::kWidthArgmax:
    case AnalysisKind::kFused:
    case AnalysisKind::kWorstCase:
    case AnalysisKind::kWorstCaseFast:
    case AnalysisKind::kWorstCaseOverSetsBnb: {
      std::uint64_t worlds = 0;
      try {
        worlds = sim::world_count(scenario.system(), Quantizer{scenario.step});
      } catch (const std::invalid_argument&) {
        return 1;  // off-grid widths: the run will fail fast, cost is nil
      }
      const bool worst_case = scenario.analysis == AnalysisKind::kWorstCase ||
                              scenario.analysis == AnalysisKind::kWorstCaseFast ||
                              scenario.analysis == AnalysisKind::kWorstCaseOverSetsBnb;
      if (worst_case && scenario.over_all_sets) {
        // Upper estimate for the BnB lane too: dedup/pruning only shrink the
        // lattice, and the chunk scheduler just needs a monotone cost.
        return saturating_mul(worlds, saturating_binomial(scenario.n(), scenario.fa));
      }
      return worlds;
    }
    case AnalysisKind::kMonteCarlo:
    case AnalysisKind::kResilience:
    case AnalysisKind::kCaseStudy:
      return scenario.rounds;
  }
  return 1;
}

namespace {

/// Re-keys a chunk-local stream onto grid indices and defers the final
/// on_finish to run_sweep (the Runner finishes every chunk, the sweep
/// finishes once).
class ShiftSink final : public ResultSink {
 public:
  ShiftSink(ResultSink& inner, std::size_t offset) : inner_(inner), offset_(offset) {}

  void on_result(std::size_t index, const ScenarioResult& result) override {
    inner_.on_result(offset_ + index, result);
  }
  void on_finish(std::size_t /*total*/) override {}

 private:
  ResultSink& inner_;
  std::size_t offset_;
};

}  // namespace

std::uint64_t sweep_fingerprint(const SweepSpec& spec) {
  // Shared FNV-1a (support/fnv.h) over the canonical JSON: any semantic
  // change to the sweep — name, base (smoke caps included), axes — lands in
  // the hash.
  return support::fnv1a(spec.to_json());
}

void save_sweep_checkpoint(const std::string& path, const SweepCheckpoint& checkpoint) {
  // Write-then-rename: a kill mid-save leaves the previous token intact
  // instead of a truncated file a resume would then reject.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out{tmp, std::ios::trunc};
    out << checkpoint.next_index << ' ' << checkpoint.output_bytes << ' '
        << checkpoint.spec_fingerprint << '\n';
    out.flush();
    if (!out) throw std::runtime_error("save_sweep_checkpoint: cannot write " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("save_sweep_checkpoint: cannot rename " + tmp + " to " + path +
                             ": " + ec.message());
  }
}

std::optional<SweepCheckpoint> load_sweep_checkpoint(const std::string& path) {
  if (!std::filesystem::exists(path)) return std::nullopt;
  std::ifstream in{path};
  SweepCheckpoint checkpoint;
  if (!in ||
      !(in >> checkpoint.next_index >> checkpoint.output_bytes >> checkpoint.spec_fingerprint)) {
    throw std::runtime_error("load_sweep_checkpoint: malformed checkpoint " + path);
  }
  // Anything beyond the three fields means this is not a token this code
  // wrote (mangled or concatenated file) — fail loudly rather than resume
  // with whatever the first three fields happened to parse as.
  char trailing = 0;
  if (in >> trailing) {
    throw std::runtime_error("load_sweep_checkpoint: trailing content in checkpoint " + path);
  }
  return checkpoint;
}

namespace {

/// Field @p n (0-based) of one RFC-4180 CSV line without embedded newlines
/// (the report writer never emits any); empty string when the line has fewer
/// fields.
std::string csv_field(std::string_view line, std::size_t n) {
  std::size_t pos = 0;
  for (std::size_t field = 0;; ++field) {
    std::string value;
    if (pos < line.size() && line[pos] == '"') {
      ++pos;
      while (pos < line.size()) {
        if (line[pos] == '"') {
          if (pos + 1 < line.size() && line[pos + 1] == '"') {
            value += '"';
            pos += 2;
          } else {
            ++pos;
            break;
          }
        } else {
          value += line[pos++];
        }
      }
    } else {
      const std::size_t comma = line.find(',', pos);
      const std::size_t end = comma == std::string_view::npos ? line.size() : comma;
      value.assign(line.substr(pos, end - pos));
      pos = end;
    }
    if (field == n) return value;
    if (pos >= line.size() || line[pos] != ',') return {};
    ++pos;
  }
}

}  // namespace

SweepCheckpoint repair_short_output(const std::string& output_path,
                                    const SweepCheckpoint& checkpoint) {
  std::ifstream in{output_path, std::ios::binary};
  if (!in) {
    throw std::runtime_error("repair_short_output: cannot read " + output_path);
  }
  const std::string content{std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};

  // Scan COMPLETE lines only (a missing trailing newline marks a torn row).
  // Every result's rows end with exactly one "status" row (metric column),
  // so the last complete status row is the last point whose output is whole.
  std::uint64_t status_rows = 0;
  std::size_t keep = std::string::npos;        // bytes to keep: end of last status row
  std::size_t header_end = std::string::npos;  // end of the header line
  std::size_t pos = 0;
  while (true) {
    const std::size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) break;
    const std::string_view line{content.data() + pos, nl - pos};
    if (header_end == std::string::npos) {
      header_end = nl + 1;
    } else if (csv_field(line, 2) == "status") {
      ++status_rows;
      keep = nl + 1;
    }
    pos = nl + 1;
  }
  if (header_end == std::string::npos) {
    throw std::runtime_error("repair_short_output: " + output_path +
                             " has no complete header line; delete it and restart the sweep "
                             "without --resume");
  }

  const std::uint64_t keep_bytes = keep == std::string::npos
                                       ? static_cast<std::uint64_t>(header_end)
                                       : static_cast<std::uint64_t>(keep);
  if (keep_bytes < content.size()) {
    std::error_code ec;
    std::filesystem::resize_file(output_path, keep_bytes, ec);
    if (ec) {
      throw std::runtime_error("repair_short_output: cannot truncate " + output_path + ": " +
                               ec.message());
    }
  }
  return SweepCheckpoint{status_rows, keep_bytes, checkpoint.spec_fingerprint};
}

SweepCheckpoint truncate_for_resume(const std::string& output_path,
                                    const SweepCheckpoint& checkpoint) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(output_path, ec);
  if (ec) {
    throw std::runtime_error("truncate_for_resume: cannot stat " + output_path + ": " +
                             ec.message());
  }
  if (size < checkpoint.output_bytes) {
    // The output shrank AFTER the token was written (external truncation, a
    // partial restore): the token's byte offset points into the void.
    // Rebuild the token from what actually survived instead of refusing.
    return repair_short_output(output_path, checkpoint);
  }
  if (size > checkpoint.output_bytes) {
    // Drop whatever the killed run wrote past its last completed chunk.
    std::filesystem::resize_file(output_path, checkpoint.output_bytes, ec);
    if (ec) {
      throw std::runtime_error("truncate_for_resume: cannot truncate " + output_path + ": " +
                               ec.message());
    }
  }
  return checkpoint;
}

std::size_t run_sweep(const SweepSpec& spec, const Runner& runner, ResultSink& sink,
                      const SweepRunOptions& options) {
  if (options.chunk_scenarios == 0) {
    throw std::invalid_argument("run_sweep: chunk_scenarios must be >= 1");
  }
  spec.validate();
  GridMaterializer grid{spec};
  const std::uint64_t total = grid.size();
  if (options.resume_from > total) {
    throw std::invalid_argument("run_sweep: resume_from (" +
                                std::to_string(options.resume_from) +
                                ") lies beyond the grid (" + std::to_string(total) + ")");
  }

  const std::uint64_t fingerprint =
      options.checkpoint_path.empty() ? 0 : sweep_fingerprint(spec);
  std::uint64_t chunk_base = options.resume_from;  // grid index of the chunk's first point
  std::uint64_t next_index = options.resume_from;  // next grid index to materialise
  // A point that overflows its chunk's cost budget carries over to open the
  // next chunk — materialised and validated once, never recomputed.
  std::optional<Scenario> carried;
  std::uint64_t carried_cost = 0;
  std::uint64_t checkpoint_ordinal = 0;  // key for the "checkpoint" fault site
  while (chunk_base < total) {
    std::vector<Scenario> chunk;
    std::vector<std::uint64_t> costs;
    std::uint64_t chunk_cost = 0;
    while (chunk.size() < options.chunk_scenarios &&
           (carried.has_value() || next_index < total)) {
      Scenario scenario;
      std::uint64_t cost = 0;
      if (carried.has_value()) {
        scenario = std::move(*carried);
        cost = carried_cost;
        carried.reset();
      } else {
        scenario = grid.at(next_index++);
        cost = estimated_worlds(scenario);
      }
      if (!chunk.empty() && options.chunk_cost > 0 &&
          saturating_add(chunk_cost, cost) > options.chunk_cost) {
        carried = std::move(scenario);
        carried_cost = cost;
        break;
      }
      chunk_cost = saturating_add(chunk_cost, cost);
      costs.push_back(cost);
      chunk.push_back(std::move(scenario));
    }

    // Cross-point computation sharing: with a cache wired into the runner,
    // group the chunk by canonical scenario (scenario/result_cache.h), run
    // ONE representative per equivalence class, and fan its frame out to
    // every duplicate grid point — cross-chunk repeats then hit the cache
    // inside run_one.  Grouping compares canonical STRUCTS (bucketed by a
    // cheap field hash), not serialised cache keys: struct equality and
    // canonical-JSON equality define the same classes, and skipping the
    // per-point serialisation is what keeps sharing profitable on grids of
    // closed-form clean points that run in microseconds.  Disabled for
    // kWriteOnly, whose contract is "recompute everything"; a chunk with no
    // duplicates degenerates to the plain streaming path below (sharing
    // only changes emission granularity: shared chunks emit after the
    // chunk's batch completes).
    const bool share = runner.options().cache != nullptr &&
                       runner.options().cache_mode != CacheMode::kWriteOnly;
    std::vector<std::size_t> rep;  // rep[i]: chunk-local representative of point i
    bool has_duplicates = false;
    if (share) {
      std::vector<Scenario> canon;
      canon.reserve(chunk.size());
      rep.resize(chunk.size());
      // Class list, not a hash map: chunks have few classes when sharing
      // pays off, and a linear signature scan (u64 compares) beats map
      // allocation even in the all-distinct worst case.
      std::vector<std::pair<std::uint64_t, std::size_t>> classes;  // (signature, chunk index)
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        canon.push_back(canonical_scenario(chunk[i]));
        const std::uint64_t signature = canonical_signature(canon[i]);
        rep[i] = i;
        for (const auto& [class_signature, j] : classes) {
          // Full struct compare, like the cache's full-text compare: a
          // signature collision must never merge two different points.
          if (class_signature == signature && canon[j] == canon[i]) {
            rep[i] = j;
            has_duplicates = true;
            break;
          }
        }
        if (rep[i] == i) classes.emplace_back(signature, i);
      }
    }

    if (!has_duplicates) {
      // Start the long poles first; emission stays in grid order regardless.
      std::vector<std::size_t> schedule;
      if (options.order_by_cost && chunk.size() > 1) {
        schedule.resize(chunk.size());
        std::iota(schedule.begin(), schedule.end(), std::size_t{0});
        std::stable_sort(schedule.begin(), schedule.end(),
                         [&](std::size_t a, std::size_t b) { return costs[a] > costs[b]; });
      }

      ShiftSink shifted{sink, static_cast<std::size_t>(chunk_base)};
      runner.run_batch(std::span<const Scenario>{chunk}, shifted,
                       std::span<const std::size_t>{schedule});
    } else {
      std::vector<const Scenario*> uniques;
      std::vector<std::uint64_t> unique_costs;
      std::vector<std::size_t> ordinal(chunk.size(), 0);  // chunk index -> unique slot
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        if (rep[i] != i) continue;
        ordinal[i] = uniques.size();
        uniques.push_back(&chunk[i]);
        unique_costs.push_back(costs[i]);
      }
      std::vector<std::size_t> schedule;
      if (options.order_by_cost && uniques.size() > 1) {
        schedule.resize(uniques.size());
        std::iota(schedule.begin(), schedule.end(), std::size_t{0});
        std::stable_sort(schedule.begin(), schedule.end(), [&](std::size_t a, std::size_t b) {
          return unique_costs[a] > unique_costs[b];
        });
      }
      CollectingSink collected;
      runner.run_batch(std::span<const Scenario* const>{uniques}, collected,
                       std::span<const std::size_t>{schedule});
      const std::vector<ScenarioResult>& frames = collected.results();

      // Fan out in grid order.  A duplicate of a COMPLETED representative
      // gets the shared metrics as a cache-hit frame under its own name; a
      // duplicate of a failed/degraded one runs individually (its own
      // deadline or degrade path must speak for itself).
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        const std::size_t slot = static_cast<std::size_t>(chunk_base) + i;
        if (rep[i] == i) {
          sink.on_result(slot, frames[ordinal[i]]);
          continue;
        }
        const ScenarioResult& shared = frames[ordinal[rep[i]]];
        // The fallback re-run keys the "analysis"/"cache" fault sites by the
        // point's own chunk-local slot — the key it would have carried in an
        // unshared chunk batch — never the hardcoded slot 0 of plain run().
        sink.on_result(slot, shared.ok() && !shared.degraded
                                 ? cache_hit_frame(shared, chunk[i].name)
                                 : runner.run(chunk[i], i));
      }
    }
    chunk_base += chunk.size();

    if (!options.checkpoint_path.empty()) {
      // Every result of [resume_from, chunk_base) is flushed (the streaming
      // sinks flush per result), so a restart from this boundary loses
      // nothing and repeats nothing.
      SweepCheckpoint checkpoint{chunk_base, 0, fingerprint};
      bool output_known = true;
      if (!options.checkpoint_output.empty()) {
        std::error_code ec;
        const std::uintmax_t size = std::filesystem::file_size(options.checkpoint_output, ec);
        if (ec) {
          // Cannot see the output right now (bad path, external unlink): a
          // token recording 0 bytes would make a later resume truncate the
          // file to nothing.  Keep the previous token instead — older but
          // still consistent, so a resume from it merely re-runs a few
          // chunks and stays byte-identical.
          output_known = false;
        } else {
          checkpoint.output_bytes = static_cast<std::uint64_t>(size);
        }
      }
      if (output_known) {
        // Non-fatal by design: losing a checkpoint SAVE must not kill a
        // sweep that is otherwise producing results.  The previous token
        // stays on disk — older but consistent, so a later resume re-runs a
        // few chunks and stays byte-identical.
        ++checkpoint_ordinal;
        try {
          if (options.fault_injector != nullptr) {
            options.fault_injector->maybe_fail("checkpoint", checkpoint_ordinal, 1);
          }
          save_sweep_checkpoint(options.checkpoint_path, checkpoint);
        } catch (const std::exception&) {
          if (options.checkpoint_failures != nullptr) ++*options.checkpoint_failures;
        }
      }
    }
  }

  sink.on_finish(static_cast<std::size_t>(total));
  if (!options.checkpoint_path.empty()) {
    // A completed sweep needs no resume token; leaving one behind would make
    // a later --resume skip the whole grid instead of re-running it.
    std::error_code ec;
    std::filesystem::remove(options.checkpoint_path, ec);
  }
  return static_cast<std::size_t>(total - options.resume_from);
}

}  // namespace arsf::scenario
