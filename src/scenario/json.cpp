#include "scenario/json.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <limits>
#include <stdexcept>

#include "support/ascii.h"

namespace arsf::scenario::json {

namespace {

// Minimal recursive-descent parser for the subset the JsonBuilder emits:
// objects, arrays, strings, numbers and booleans.  Integers are parsed
// without a double round-trip so 64-bit seeds survive exactly.
class JsonParser {
 public:
  JsonParser(const std::string& text, const std::string& context)
      : text_(text), context_(context) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_space();
    if (pos_ != text_.size()) error("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void error(const std::string& reason) const {
    throw std::invalid_argument(context_ + " JSON: " + reason + " at offset " +
                                std::to_string(pos_));
  }

  void skip_space() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  char peek() {
    skip_space();
    if (pos_ >= text_.size()) error("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) error(std::string{"expected '"} + c + "'");
    ++pos_;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't':
      case 'f': return parse_bool();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      JsonValue key = parse_string();
      // A duplicate key would make one of the two bindings win silently;
      // reject it like an unknown key.
      if (value.has(key.string)) error("duplicate field '" + key.string + "'");
      expect(':');
      value.object.emplace_back(key.string, parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array.push_back(parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  JsonValue parse_string() {
    expect('"');
    JsonValue value;
    value.type = JsonValue::Type::kString;
    while (true) {
      if (pos_ >= text_.size()) error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return value;
      if (c == '\\') {
        if (pos_ >= text_.size()) error("unterminated escape");
        const char escaped = text_[pos_++];
        switch (escaped) {
          case '"': value.string += '"'; break;
          case '\\': value.string += '\\'; break;
          case 'n': value.string += '\n'; break;
          case 't': value.string += '\t'; break;
          default: error("unsupported escape sequence");
        }
      } else {
        value.string += c;
      }
    }
  }

  JsonValue parse_bool() {
    JsonValue value;
    value.type = JsonValue::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      value.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      value.boolean = false;
      pos_ += 5;
    } else {
      error("expected boolean");
    }
    return value;
  }

  JsonValue parse_number() {
    skip_space();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool fractional = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        fractional = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) error("expected number");
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    if (!fractional) {
      value.negative = *first == '-';
      const char* digits = value.negative || *first == '+' ? first + 1 : first;
      const auto result = std::from_chars(digits, last, value.integer);
      value.is_integer = result.ec == std::errc{} && result.ptr == last;
    }
    const auto result = std::from_chars(first, last, value.number);
    if (result.ec != std::errc{} || result.ptr != last) error("malformed number");
    return value;
  }

  const std::string& text_;
  const std::string& context_;
  std::size_t pos_ = 0;
};

[[noreturn]] void field_error(const std::string& key, const std::string& requirement) {
  throw std::invalid_argument("JSON: field '" + key + "' " + requirement);
}

}  // namespace

bool JsonValue::has(const std::string& key) const noexcept {
  for (const auto& [name, value] : object) {
    if (name == key) return true;
  }
  return false;
}

JsonValue parse(const std::string& text, const std::string& context) {
  return JsonParser{text, context}.parse();
}

namespace {

/// In-place variant of escape(): appends to @p out with no temporaries.
/// Serializer hot paths (streaming sinks render one JSON frame per result;
/// cache persistence renders one scenario per entry) would otherwise pay one
/// allocation per field.
void append_escaped(std::string& out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
}

}  // namespace

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  append_escaped(out, text);
  return out;
}

std::string number_text(double x) { return support::format_round_trip(x); }

void JsonBuilder::field(const std::string& key, const std::string& value) {
  begin_field(key);
  body_ += '"';
  append_escaped(body_, value);
  body_ += '"';
}
void JsonBuilder::field(const std::string& key, double value) { raw(key, number_text(value)); }
void JsonBuilder::field(const std::string& key, std::uint64_t value) {
  raw(key, std::to_string(value));
}
void JsonBuilder::field(const std::string& key, int value) { raw(key, std::to_string(value)); }
void JsonBuilder::field(const std::string& key, bool value) {
  raw(key, value ? "true" : "false");
}

void JsonBuilder::raw(const std::string& key, const std::string& value) {
  begin_field(key);
  body_ += value;
}

void JsonBuilder::object(const std::string& key, const JsonBuilder& nested) {
  begin_field(key);
  body_ += '{';
  body_ += nested.body_;
  body_ += '}';
}

void JsonBuilder::begin_field(const std::string& key) {
  if (body_.empty()) {
    body_.reserve(256);
  } else {
    body_ += ',';
  }
  body_ += '"';
  append_escaped(body_, key);
  body_ += "\":";
}

const JsonValue& object_field(const JsonValue& object, const std::string& key) {
  for (const auto& [name, value] : object.object) {
    if (name == key) return value;
  }
  throw std::invalid_argument("JSON: missing field '" + key + "'");
}

std::string get_string(const JsonValue& object, const std::string& key) {
  const JsonValue& value = object_field(object, key);
  if (value.type != JsonValue::Type::kString) field_error(key, "must be a string");
  return value.string;
}

double get_double(const JsonValue& object, const std::string& key) {
  const JsonValue& value = object_field(object, key);
  if (value.type != JsonValue::Type::kNumber) field_error(key, "must be a number");
  return value.number;
}

std::uint64_t get_uint(const JsonValue& object, const std::string& key) {
  const JsonValue& value = object_field(object, key);
  if (value.type != JsonValue::Type::kNumber || !value.is_integer || value.negative) {
    field_error(key, "must be a non-negative integer");
  }
  return value.integer;
}

int get_int(const JsonValue& object, const std::string& key) {
  const JsonValue& value = object_field(object, key);
  if (value.type != JsonValue::Type::kNumber || !value.is_integer) {
    field_error(key, "must be an integer");
  }
  // Reject out-of-range magnitudes instead of wrapping; note INT_MIN's
  // magnitude is INT_MAX + 1, so negate in 64 bits.
  constexpr auto kMax = static_cast<std::uint64_t>(std::numeric_limits<int>::max());
  if (value.integer > (value.negative ? kMax + 1 : kMax)) {
    field_error(key, "is out of range for a 32-bit integer");
  }
  return value.negative ? static_cast<int>(-static_cast<std::int64_t>(value.integer))
                        : static_cast<int>(value.integer);
}

bool get_bool(const JsonValue& object, const std::string& key) {
  const JsonValue& value = object_field(object, key);
  if (value.type != JsonValue::Type::kBool) field_error(key, "must be a boolean");
  return value.boolean;
}

std::vector<double> get_double_list(const JsonValue& object, const std::string& key) {
  const JsonValue& value = object_field(object, key);
  if (value.type != JsonValue::Type::kArray) field_error(key, "must be an array");
  std::vector<double> out;
  out.reserve(value.array.size());
  for (const JsonValue& element : value.array) {
    if (element.type != JsonValue::Type::kNumber) field_error(key, "must hold numbers");
    out.push_back(element.number);
  }
  return out;
}

std::vector<std::size_t> get_index_list(const JsonValue& object, const std::string& key) {
  const JsonValue& value = object_field(object, key);
  if (value.type != JsonValue::Type::kArray) field_error(key, "must be an array");
  std::vector<std::size_t> out;
  out.reserve(value.array.size());
  for (const JsonValue& element : value.array) {
    if (element.type != JsonValue::Type::kNumber || !element.is_integer || element.negative) {
      field_error(key, "must hold non-negative integers");
    }
    out.push_back(static_cast<std::size_t>(element.integer));
  }
  return out;
}

std::vector<std::string> get_string_list(const JsonValue& object, const std::string& key) {
  const JsonValue& value = object_field(object, key);
  if (value.type != JsonValue::Type::kArray) field_error(key, "must be an array");
  std::vector<std::string> out;
  out.reserve(value.array.size());
  for (const JsonValue& element : value.array) {
    if (element.type != JsonValue::Type::kString) field_error(key, "must hold strings");
    out.push_back(element.string);
  }
  return out;
}

void reject_unknown_keys(const JsonValue& object, const std::vector<std::string>& known,
                         const std::string& context) {
  for (const auto& [key, value] : object.object) {
    (void)value;
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      throw std::invalid_argument(context + " JSON: unknown field '" + key + "'");
    }
  }
}

}  // namespace arsf::scenario::json
