#include "scenario/result_cache.h"

#include <algorithm>
#include <bit>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "scenario/json.h"
#include "scenario/sink.h"
#include "support/fnv.h"

namespace arsf::scenario {

namespace {

enum class Family { kEnumerate, kWorstCase, kSampled };

Family family_of(AnalysisKind kind) {
  switch (kind) {
    case AnalysisKind::kEnumerate:
    case AnalysisKind::kWidthHistogram:
    case AnalysisKind::kDetectionRate:
    case AnalysisKind::kWidthArgmax:
    case AnalysisKind::kFused:
      return Family::kEnumerate;
    case AnalysisKind::kWorstCase:
    case AnalysisKind::kWorstCaseFast:
    case AnalysisKind::kWorstCaseOverSetsBnb:
      return Family::kWorstCase;
    case AnalysisKind::kMonteCarlo:
    case AnalysisKind::kResilience:
    case AnalysisKind::kCaseStudy:
      return Family::kSampled;
  }
  return Family::kSampled;
}

/// Width-argmax exposes a world INDEX and worlds are enumerated by sensor
/// id, so its metrics are NOT invariant under an id relabeling.
bool has_argmax_member(const Scenario& scenario) {
  if (scenario.analysis == AnalysisKind::kWidthArgmax) return true;
  if (scenario.analysis != AnalysisKind::kFused) return false;
  return std::find(scenario.fused_members.begin(), scenario.fused_members.end(),
                   AnalysisKind::kWidthArgmax) != scenario.fused_members.end();
}

/// Stable width-sort id-remap (the PR 5 exchange argument): sensor ids are
/// relabeled so widths come out ascending, with id ties keeping their
/// relative order; every id-carrying field is remapped alongside.  Among
/// equal widths, attacked sensors sort last: equal-width sensors are fully
/// interchangeable whatever their attacked status (the exchange argument
/// again), and without the tie-break "widths {3,3}, attack sensor 0" and
/// "widths {3,3}, attack sensor 1" would canonicalise to different texts
/// and miss a provably shared class.  Only called on lanes whose metrics
/// are relabeling-invariant (see header).
void remap_sorted_by_width(Scenario& c) {
  const std::size_t n = c.n();
  if (n < 2) return;
  std::vector<bool> attacked(n, false);
  for (const SensorId id : c.attacked_override) attacked[id] = true;
  std::vector<std::size_t> perm(n);  // perm[slot] = old id at new slot
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::stable_sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
    if (c.widths[a] != c.widths[b]) return c.widths[a] < c.widths[b];
    return attacked[a] < attacked[b];
  });
  std::vector<std::size_t> new_id(n);
  for (std::size_t slot = 0; slot < n; ++slot) new_id[perm[slot]] = slot;

  std::vector<double> widths(n);
  for (std::size_t slot = 0; slot < n; ++slot) widths[slot] = c.widths[perm[slot]];
  c.widths = std::move(widths);
  for (SensorId& id : c.trusted) id = new_id[id];
  std::sort(c.trusted.begin(), c.trusted.end());
  for (SensorId& id : c.fixed_order) id = new_id[id];
  for (SensorId& id : c.attacked_override) id = new_id[id];
  std::sort(c.attacked_override.begin(), c.attacked_override.end());
}

/// Conservative byte estimate of one resident entry (canonical key + frame).
std::uint64_t entry_bytes(const CacheKey& key, const ScenarioResult& stored) {
  const Scenario& c = key.canonical;
  std::uint64_t bytes = 64 + sizeof(Scenario) + stored.analysis.size();
  bytes += 8 * (c.widths.size() + c.trusted.size() + c.fixed_order.size() +
                c.attacked_override.size() + c.fused_members.size());
  for (const Metric& metric : stored.metrics) bytes += metric.key.size() + 24;
  return bytes;
}

double metric_value(const json::JsonValue& value) {
  if (value.type != json::JsonValue::Type::kNumber) {
    throw std::invalid_argument("ResultCache: metric values must be numbers");
  }
  if (value.is_integer) {
    const double magnitude = static_cast<double>(value.integer);
    return value.negative ? -magnitude : magnitude;
  }
  return value.number;
}

}  // namespace

Scenario canonical_scenario(const Scenario& scenario) {
  const Scenario defaults{};
  Scenario c = scenario;

  // Identity and execution knobs never reach a metric.  Resolving f keeps
  // "f = -1" and "f = ceil(n/2)-1" in one class.
  c.name.clear();
  c.description.clear();
  c.num_threads = 0;
  c.deadline_ms = 0;
  c.f = scenario.resolved_f();

  // Computed BEFORE any normalisation below touches the attack knobs: the
  // kRandom attacked rule draws the attacked set over raw sensor ids from
  // the scenario seed, so neither the seed nor an id-remap can be
  // normalised on that lane.
  const bool random_attacked = c.fa > 0 && c.attacked_override.empty() &&
                               c.attacked_rule == sched::AttackedSetRule::kRandom;
  bool remap = false;

  switch (family_of(c.analysis)) {
    case Family::kEnumerate: {
      // The exhaustive world walk reads none of the sampled-analysis knobs;
      // max_worlds stays (it gates whether the walk runs at all).
      c.rounds = defaults.rounds;
      c.fault = defaults.fault;
      c.require_undetected = defaults.require_undetected;
      c.over_all_sets = false;
      const bool clean = c.policy == PolicyKind::kNone || c.fa == 0;
      if (clean) {
        // The closed-form clean pass depends only on (widths-by-id, f,
        // step): no attacker, no schedule, no seed.
        c.policy = PolicyKind::kNone;
        c.policy_options = defaults.policy_options;
        c.fa = 0;
        c.attacked_rule = defaults.attacked_rule;
        c.attacked_override.clear();
        c.seed = defaults.seed;
        c.schedule = sched::ScheduleKind::kAscending;
        c.fixed_order.clear();
        c.trusted.clear();
        remap = !has_argmax_member(c);
      } else {
        // Attacker-policy lane: schedule/policy knobs are live.  The serial
        // policy walk threads a world-order RNG (sampled completions, random
        // tie-breaks), so no id-remap here — only dead knobs fall away.
        if (!c.attacked_override.empty()) c.attacked_rule = defaults.attacked_rule;
        if (!random_attacked) c.seed = defaults.seed;
        if (c.schedule != sched::ScheduleKind::kTrustedLast) c.trusted.clear();
      }
      break;
    }
    case Family::kWorstCase: {
      // Both worst-case lanes enumerate clean worlds (no attacker policy,
      // no sampling) and the fixed-set lane hardcodes the ascending
      // schedule, so schedule/policy/sampling knobs are all dead.
      c.rounds = defaults.rounds;
      c.fault = defaults.fault;
      c.policy = defaults.policy;
      c.policy_options = defaults.policy_options;
      c.max_worlds = defaults.max_worlds;
      c.schedule = sched::ScheduleKind::kAscending;
      c.fixed_order.clear();
      c.trusted.clear();
      if (c.over_all_sets || c.fa == 0) {
        // Maximising over ALL fa-subsets (or attacking nothing) reads no
        // attacked-set choice at all.
        c.attacked_rule = defaults.attacked_rule;
        c.attacked_override.clear();
        c.seed = defaults.seed;
      } else {
        if (!c.attacked_override.empty()) c.attacked_rule = defaults.attacked_rule;
        if (!random_attacked) c.seed = defaults.seed;
      }
      // The over-sets lane tie-breaks best_set_size in id order; kRandom
      // draws over raw ids.  Everything else is width-multiset arithmetic.
      remap = !c.over_all_sets && !random_attacked;
      break;
    }
    case Family::kSampled: {
      // Sampled engines draw in id order from the scenario seed: keep the
      // scenario verbatim apart from knobs none of them read.
      c.max_worlds = defaults.max_worlds;
      c.require_undetected = defaults.require_undetected;
      c.over_all_sets = false;
      if (c.analysis != AnalysisKind::kResilience) c.fault = defaults.fault;
      break;
    }
  }

  if (remap) remap_sorted_by_width(c);
  return c;
}

CacheKey cache_key(const Scenario& scenario) {
  CacheKey key;
  key.canonical = canonical_scenario(scenario);
  key.fingerprint = canonical_signature(key.canonical);
  return key;
}

std::uint64_t canonical_signature(const Scenario& canonical) {
  support::Fnv1a h;
  h.u64(static_cast<std::uint64_t>(canonical.analysis));
  h.u64(canonical.widths.size());
  for (const double w : canonical.widths) h.u64(std::bit_cast<std::uint64_t>(w));
  h.u64(std::bit_cast<std::uint64_t>(canonical.step));
  h.u64(static_cast<std::uint64_t>(canonical.f));
  h.u64(canonical.fa);
  h.u64(static_cast<std::uint64_t>(canonical.schedule));
  h.u64(static_cast<std::uint64_t>(canonical.attacked_rule));
  h.u64(static_cast<std::uint64_t>(canonical.policy));
  h.u64(canonical.seed);
  h.u64(canonical.rounds);
  h.u64(canonical.over_all_sets ? 1 : 0);
  for (const SensorId id : canonical.attacked_override) h.u64(id);
  h.separator();
  for (const SensorId id : canonical.trusted) h.u64(id);
  return h.value();
}

ScenarioResult cache_hit_frame(const ScenarioResult& stored, const std::string& scenario_name) {
  ScenarioResult out = stored;
  out.scenario = scenario_name;
  out.status = ResultStatus::kOk;
  out.attempts = 1;
  out.degraded = false;
  out.error.clear();
  out.from_cache = true;
  return out;
}

ResultCache::EntryList::iterator ResultCache::find_entry(const CacheKey& key) {
  const auto chain = index_.find(key.fingerprint);
  if (chain == index_.end()) return lru_.end();
  for (const EntryList::iterator it : chain->second) {
    // Full struct compare: a fingerprint collision is a miss, never a silent
    // cross-scenario reuse.
    if (it->key.canonical == key.canonical) return it;
  }
  return lru_.end();
}

std::optional<ScenarioResult> ResultCache::lookup(const CacheKey& key) {
  const std::lock_guard<std::mutex> lock{mutex_};
  const auto it = find_entry(key);
  if (it == lru_.end()) {
    ++counters_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it);  // refresh recency; iterators stay valid
  ++counters_.hits;
  return it->result;
}

bool ResultCache::store(const CacheKey& key, ScenarioResult stored) {
  // Normalised stored frame: metrics + analysis only.  The requesting name,
  // attempt count and retry history belong to the run that produced it, not
  // to the equivalence class.
  stored.scenario.clear();
  stored.error.clear();
  stored.status = ResultStatus::kOk;
  stored.attempts = 1;
  stored.degraded = false;
  stored.from_cache = false;

  const auto existing = find_entry(key);
  if (existing != lru_.end()) {
    lru_.splice(lru_.begin(), lru_, existing);
    return false;
  }
  const std::uint64_t bytes = entry_bytes(key, stored);
  if (bytes > byte_budget_) return false;  // could never fit, even alone

  lru_.push_front(Entry{key, std::move(stored), bytes});
  index_[key.fingerprint].push_back(lru_.begin());
  bytes_ += bytes;
  evict_to_budget();
  return true;
}

bool ResultCache::insert(const CacheKey& key, const ScenarioResult& result) {
  // Only completed full-fidelity runs are cacheable: a failed, timed-out,
  // cancelled, rejected or degraded frame describes the RUN, not the
  // scenario's metrics.
  if (!result.ok() || result.degraded) return false;
  const std::lock_guard<std::mutex> lock{mutex_};
  if (!store(key, result)) return false;
  ++counters_.inserts;
  return true;
}

void ResultCache::evict_to_budget() {
  while (bytes_ > byte_budget_ && !lru_.empty()) {
    const auto victim = std::prev(lru_.end());
    auto& chain = index_[victim->key.fingerprint];
    chain.erase(std::remove(chain.begin(), chain.end(), victim), chain.end());
    if (chain.empty()) index_.erase(victim->key.fingerprint);
    bytes_ -= victim->bytes;
    lru_.erase(victim);
    ++counters_.evictions;
  }
}

CacheStats ResultCache::stats() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  CacheStats stats = counters_;
  stats.entries = lru_.size();
  stats.bytes = bytes_;
  return stats;
}

void ResultCache::clear() {
  const std::lock_guard<std::mutex> lock{mutex_};
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

ResultCache::LoadReport ResultCache::load_file(const std::string& path) {
  LoadReport report;
  {
    // Record the store's mtime up front so maybe_reload() treats the
    // just-loaded contents as current.
    std::error_code ec;
    const auto mtime = std::filesystem::last_write_time(path, ec);
    const std::lock_guard<std::mutex> lock{mutex_};
    if (!ec) {
      last_store_mtime_ = mtime;
    } else {
      last_store_mtime_.reset();
    }
  }
  std::ifstream in{path};
  if (!in) return report;  // absent or unreadable: a cold cache, not an error

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      const json::JsonValue root = json::parse(line, "ResultCache");
      if (root.type == json::JsonValue::Type::kObject && root.has("cache_generation")) {
        // The reload-protocol header: adopt a newer generation, count the
        // line as neither loaded nor rejected.
        json::reject_unknown_keys(root, {"cache_generation"}, "ResultCache");
        const std::uint64_t generation = json::get_uint(root, "cache_generation");
        const std::lock_guard<std::mutex> lock{mutex_};
        if (generation > generation_) generation_ = generation;
        continue;
      }
      json::reject_unknown_keys(root, {"scenario", "result"}, "ResultCache");

      const Scenario parsed = scenario_from_value(json::object_field(root, "scenario"));
      {
        // The canonical form clears the name; validate() requires one, so
        // check a named copy.  A line whose scenario no longer validates
        // (hand-edited store, older format) is rejected, not trusted.
        Scenario check = parsed;
        check.name = "cache-entry";
        check.validate();
      }
      // Re-canonicalise and re-fingerprint instead of trusting the file:
      // idempotent for lines save_file() wrote, and it keeps a tampered or
      // stale line from ever answering a real key.
      CacheKey key = cache_key(parsed);

      const json::JsonValue& frame = json::object_field(root, "result");
      json::reject_unknown_keys(frame,
                                {"index", "scenario", "analysis", "status", "attempts",
                                 "degraded", "from_cache", "metrics", "error"},
                                "ResultCache");
      if (json::get_string(frame, "status") != to_string(ResultStatus::kOk) ||
          !json::get_string(frame, "error").empty() || json::get_bool(frame, "degraded")) {
        throw std::invalid_argument("ResultCache: stored frames must be completed runs");
      }
      ScenarioResult stored;
      stored.analysis = json::get_string(frame, "analysis");
      const json::JsonValue& metrics = json::object_field(frame, "metrics");
      if (metrics.type != json::JsonValue::Type::kObject) {
        throw std::invalid_argument("ResultCache: 'metrics' must be an object");
      }
      for (const auto& [name, value] : metrics.object) {
        stored.metrics.push_back(Metric{name, metric_value(value)});
      }

      const std::lock_guard<std::mutex> lock{mutex_};
      if (store(key, std::move(stored))) ++report.loaded;
    } catch (const std::exception&) {
      ++report.rejected;
    }
  }
  return report;
}

void ResultCache::save_file(const std::string& path) const {
  std::ostringstream text;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    ++generation_;
    json::JsonBuilder header;
    header.field("cache_generation", generation_);
    text << header.render() << '\n';
    // Least-recently-used first: load_file() inserts in line order, so the
    // reloaded cache ends in the same recency order it was saved with.
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      json::JsonBuilder builder;
      builder.raw("scenario", it->key.canonical.to_json());
      builder.raw("result", to_json(0, it->result));
      text << builder.render() << '\n';
    }
  }
  // Write-then-rename (the sweep-checkpoint discipline): a kill mid-save
  // leaves the previous store intact instead of a truncated file.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out{tmp, std::ios::trunc};
    out << text.str();
    out.flush();
    if (!out) throw std::runtime_error("ResultCache::save_file: cannot write " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("ResultCache::save_file: cannot rename " + tmp + " to " + path +
                             ": " + ec.message());
  }
  std::error_code mtime_ec;
  const auto mtime = std::filesystem::last_write_time(path, mtime_ec);
  const std::lock_guard<std::mutex> lock{mutex_};
  if (!mtime_ec) last_store_mtime_ = mtime;
}

ResultCache::ReloadReport ResultCache::maybe_reload(const std::string& path) {
  ReloadReport report;
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) return report;  // no store (yet): nothing to pick up
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    if (last_store_mtime_.has_value() && *last_store_mtime_ == mtime) return report;
  }
  report.reloaded = true;
  report.load = load_file(path);
  return report;
}

std::uint64_t ResultCache::generation() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return generation_;
}

}  // namespace arsf::scenario
