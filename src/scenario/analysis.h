#pragma once
// The common Analysis interface the Runner dispatches scenarios through.
//
// Each adapter translates a declarative Scenario into the corresponding
// engine configuration (sim/enumerate.h, sim/montecarlo.h, sim/worstcase.h,
// sim/resilience.h, vehicle/casestudy.h), runs it, and flattens the result
// into a uniform list of named metrics.  Metrics are plain (key, value)
// pairs so every analysis can feed the same report writer and the same
// golden tests; exact integer counters are stored losslessly (all counts in
// this codebase are far below 2^53).

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "scenario/scenario.h"
#include "sim/engine/cancel.h"
#include "sim/enumerate.h"

namespace arsf::scenario {

struct Metric {
  std::string key;
  double value = 0.0;
};

/// How one scenario run ended — the structured half of the error frame every
/// ResultSink carries (scenario/sink.h).  The Runner maintains the
/// invariant: `error` is non-empty exactly when the status is kFailed,
/// kTimedOut, kCancelled or kRejected, and metrics are present only for kOk
/// and kRetriedOk (a run that does not complete reports its status, never
/// partial data).
enum class ResultStatus {
  kOk,         ///< completed first try
  kFailed,     ///< threw; retries (if any) exhausted
  kTimedOut,   ///< deadline budget exceeded (cooperative abort)
  kCancelled,  ///< batch cancel token tripped before/while this ran
  kRejected,   ///< admission control: estimated cost over budget, not run
  kRetriedOk,  ///< completed after >= 1 failed attempt
};

[[nodiscard]] std::string to_string(ResultStatus status);

/// Uniform result record: one per scenario run.
struct ScenarioResult {
  std::string scenario;          ///< Scenario::name
  std::string analysis;          ///< dispatching analysis name
  std::vector<Metric> metrics;   ///< analysis-specific named values
  std::string error;             ///< non-empty iff the run failed
  ResultStatus status = ResultStatus::kOk;  ///< see the invariant above
  std::uint32_t attempts = 1;    ///< attempts consumed (includes the last one)
  /// True when the result comes from the scenario's smoke_variant() after
  /// the full run was over budget (RunnerOptions::degrade).
  bool degraded = false;
  /// True when the metrics were served from the content-addressed result
  /// cache (scenario/result_cache.h) instead of a fresh run — bit-identical
  /// to the fresh run by the cache-key soundness argument, but flagged so
  /// cached and fresh rows stay distinguishable in every output format.
  bool from_cache = false;

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
  /// Value of @p key; throws std::out_of_range when absent.
  [[nodiscard]] double metric(const std::string& key) const;
  /// Value of @p key, or @p fallback when absent.
  [[nodiscard]] double metric_or(const std::string& key, double fallback) const noexcept;
};

class Analysis {
 public:
  virtual ~Analysis() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Runs the (validated) scenario.  Throws on engine errors; the Runner
  /// turns exceptions into ScenarioResult::error.  A non-null @p cancel is
  /// threaded into the dispatched engine and aborts it cooperatively with
  /// sim::engine::CancelledError at block/round granularity; it never
  /// changes a completing run's result.
  [[nodiscard]] virtual ScenarioResult run(
      const Scenario& scenario, const sim::engine::CancelToken* cancel = nullptr) const = 0;
};

/// The analysis registered for @p kind (static lifetime, stateless, safe to
/// share across threads).
[[nodiscard]] const Analysis& analysis_for(AnalysisKind kind);

// ---- shared setup builders ------------------------------------------------
// The one place scenario ingredients become engine configurations; the
// direct drivers (sim/experiment.h) and the analyses both use these, so the
// registry-driven path is bit-identical to the hand-rolled calls by
// construction.

/// Slot order for a deterministic schedule kind (throws for kRandom, whose
/// order is drawn per round by the sampled engines).
[[nodiscard]] sched::Order resolve_order(const Scenario& scenario, const SystemConfig& system);

/// Attacked set: the explicit override when given, otherwise the rule
/// applied against @p order (ties and slot rules resolved exactly as the
/// experiment layer always has).
[[nodiscard]] std::vector<SensorId> resolve_attacked(const Scenario& scenario,
                                                     const SystemConfig& system,
                                                     const sched::Order& order);

/// Attacker policy object for the scenario (nullptr for PolicyKind::kNone).
[[nodiscard]] std::unique_ptr<attack::AttackPolicy> make_policy(const Scenario& scenario);

/// Fully-wired exhaustive-enumeration setup.  The policy (when any) is owned
/// by the returned struct and already linked into config.policy.
struct EnumerateSetup {
  sim::EnumerateConfig config;
  std::unique_ptr<attack::AttackPolicy> policy;
  bool oracle = false;
};
[[nodiscard]] EnumerateSetup make_enumerate_setup(const Scenario& scenario);

}  // namespace arsf::scenario
