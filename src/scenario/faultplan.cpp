#include "scenario/faultplan.h"

#include <algorithm>

#include "scenario/json.h"
#include "support/fnv.h"

namespace arsf::scenario {

const std::vector<std::string>& fault_sites() {
  static const std::vector<std::string> sites{"analysis", "pool",    "sink",    "checkpoint",
                                              "cache",    "accept",  "session", "respond",
                                              "journal",  "crash"};
  return sites;
}

void FaultPlan::validate() const {
  for (const FaultRule& rule : rules) {
    const auto& sites = fault_sites();
    if (std::find(sites.begin(), sites.end(), rule.site) == sites.end()) {
      throw std::invalid_argument("FaultPlan: unknown site '" + rule.site + "'");
    }
    if (rule.probability < 0.0 || rule.probability > 1.0) {
      throw std::invalid_argument("FaultPlan: probability " +
                                  json::number_text(rule.probability) +
                                  " outside [0, 1] for site '" + rule.site + "'");
    }
    if (rule.nth == 0 && rule.probability == 0.0) {
      throw std::invalid_argument("FaultPlan: rule for site '" + rule.site +
                                  "' has no trigger (nth == 0 and probability == 0)");
    }
  }
}

std::string FaultPlan::to_json() const {
  std::string rules_text = "[";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (i) rules_text += ",";
    json::JsonBuilder rule;
    rule.field("site", rules[i].site);
    rule.field("nth", rules[i].nth);
    rule.field("probability", rules[i].probability);
    rule.field("attempt_limit", static_cast<std::uint64_t>(rules[i].attempt_limit));
    rules_text += rule.render();
  }
  rules_text += "]";

  json::JsonBuilder builder;
  builder.field("seed", seed);
  builder.raw("rules", rules_text);
  return builder.render();
}

FaultPlan FaultPlan::from_json(const std::string& text) {
  const json::JsonValue root = json::parse(text, "FaultPlan");
  json::reject_unknown_keys(root, {"seed", "rules"}, "FaultPlan");

  FaultPlan plan;
  plan.seed = json::get_uint(root, "seed");
  const json::JsonValue& rules = json::object_field(root, "rules");
  if (rules.type != json::JsonValue::Type::kArray) {
    throw std::invalid_argument("FaultPlan JSON: 'rules' must be an array");
  }
  for (const json::JsonValue& entry : rules.array) {
    if (entry.type != json::JsonValue::Type::kObject) {
      throw std::invalid_argument("FaultPlan JSON: rule entries must be objects");
    }
    json::reject_unknown_keys(entry, {"site", "nth", "probability", "attempt_limit"},
                              "FaultPlan");
    FaultRule rule;
    rule.site = json::get_string(entry, "site");
    rule.nth = json::get_uint(entry, "nth");
    rule.probability = json::get_double(entry, "probability");
    rule.attempt_limit = static_cast<std::uint32_t>(json::get_uint(entry, "attempt_limit"));
    plan.rules.push_back(std::move(rule));
  }
  plan.validate();
  return plan;
}

bool operator==(const FaultRule& a, const FaultRule& b) {
  return a.site == b.site && a.nth == b.nth && a.probability == b.probability &&
         a.attempt_limit == b.attempt_limit;
}

bool operator==(const FaultPlan& a, const FaultPlan& b) {
  return a.seed == b.seed && a.rules == b.rules;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) { plan_.validate(); }

namespace {

/// Shared FNV-1a (support/fnv.h) over the decision coordinates; folded to a
/// double in [0, 1).  The generator quality bar here is "decorrelated across
/// (site, key, attempt)", not statistical perfection — the harness only
/// needs decisions that are stable and spread out.
double decision_point(std::uint64_t seed, const std::string& site, std::uint64_t key,
                      std::uint32_t attempt) {
  const std::uint64_t h =
      support::Fnv1a{}.u64(seed).text(site).separator().u64(key).u64(attempt).value();
  // Top 53 bits -> [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

bool FaultInjector::should_fail(const std::string& site, std::uint64_t key,
                                std::uint32_t attempt) const {
  for (const FaultRule& rule : plan_.rules) {
    if (rule.site != site) continue;
    if (rule.attempt_limit != 0 && attempt > rule.attempt_limit) continue;
    if (rule.nth != 0 && key == rule.nth) return true;
    if (rule.probability > 0.0 &&
        decision_point(plan_.seed, site, key, attempt) < rule.probability) {
      return true;
    }
  }
  return false;
}

void FaultInjector::maybe_fail(const std::string& site, std::uint64_t key,
                               std::uint32_t attempt) const {
  if (should_fail(site, key, attempt)) {
    throw InjectedFault("injected fault at site '" + site + "' key " + std::to_string(key) +
                        " attempt " + std::to_string(attempt));
  }
}

}  // namespace arsf::scenario
