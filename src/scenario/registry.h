#pragma once
// Named scenario catalogue.
//
// registry() is the process-wide, immutable catalogue of every scenario this
// repository knows how to run: the paper's Table I rows (both schedules),
// the Figure 2-5 setups, the LandShark/Table II case study, the announced
// extensions (trusted-last, faults + attacks) and a family of stress
// scenarios (large n, fine grids, heterogeneous widths, random schedules,
// the exhaustive over-all-sets worst case).  Benches, examples and tests
// look configurations up by name instead of re-declaring them, and the
// scenario_smoke ctest runs every entry through smoke_variant(), so a
// registered scenario can never land unexecuted.
//
// Naming convention: "<family>/<case>", e.g. "table1/r3/descending",
// "fig4/wc-2-3-5", "stress/fine-grid".  Prefix lookups (match()) return
// whole families in registration order.

#include <string>
#include <vector>

#include "scenario/scenario.h"
#include "scenario/sweep.h"

namespace arsf::scenario {

class ScenarioRegistry {
 public:
  /// Validates and stores; throws std::invalid_argument on an invalid
  /// scenario or a duplicate name.
  void add(Scenario scenario);
  /// Validates and stores a named sweep; sweep names share the scenario
  /// namespace, so a clash with either throws std::invalid_argument.
  void add_sweep(SweepSpec spec);

  /// nullptr when absent.
  [[nodiscard]] const Scenario* find(const std::string& name) const noexcept;
  /// Throws std::out_of_range (listing near-miss names) when absent.
  [[nodiscard]] const Scenario& at(const std::string& name) const;
  /// Every scenario whose name starts with @p prefix, in registration order.
  [[nodiscard]] std::vector<const Scenario*> match(const std::string& prefix) const;

  /// nullptr when absent.
  [[nodiscard]] const SweepSpec* find_sweep(const std::string& name) const noexcept;
  /// Throws std::out_of_range (listing near-miss names) when absent.
  [[nodiscard]] const SweepSpec& sweep_at(const std::string& name) const;

  [[nodiscard]] const std::vector<Scenario>& all() const noexcept { return scenarios_; }
  [[nodiscard]] std::size_t size() const noexcept { return scenarios_.size(); }
  [[nodiscard]] const std::vector<SweepSpec>& sweeps() const noexcept { return sweeps_; }

  // ---- overlays ------------------------------------------------------------
  // User workload files: one JSON object per line, each either a Scenario or
  // a SweepSpec (recognised by its "base" key).  Blank lines and lines
  // starting with '#' are skipped.  Every error (malformed JSON, trailing
  // garbage after the object, unknown/duplicate keys, validation failure,
  // duplicate name) throws std::invalid_argument naming the 1-based line.
  // The process-wide registry() is immutable — copy it, then merge overlays
  // into the copy (see examples/scenario_runner.cpp --overlay).

  /// Merges the overlay text (JSONL, see above).
  void merge(const std::string& jsonl);
  /// Reads @p path and merges it; throws std::runtime_error when unreadable.
  void load_overlay(const std::string& path);

 private:
  std::vector<Scenario> scenarios_;  ///< registration order = listing order
  std::vector<SweepSpec> sweeps_;    ///< registration order = listing order
};

/// The pre-populated global catalogue (constructed on first use; read-only
/// afterwards, safe to share across threads).
[[nodiscard]] const ScenarioRegistry& registry();

/// Coarse, time-bounded clone for the scenario_smoke ctest: capped rounds
/// and a cost-bounded attacker (joint planning off, strided candidates,
/// subsampled posterior).  The scenario still exercises the same analysis,
/// schedule and attacked-set path as the full run.  Smoking a SweepSpec =
/// smoking its base: rounds and policy-option caps are template fields every
/// grid point inherits.
[[nodiscard]] Scenario smoke_variant(Scenario scenario);

}  // namespace arsf::scenario
