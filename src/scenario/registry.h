#pragma once
// Named scenario catalogue.
//
// registry() is the process-wide, immutable catalogue of every scenario this
// repository knows how to run: the paper's Table I rows (both schedules),
// the Figure 2-5 setups, the LandShark/Table II case study, the announced
// extensions (trusted-last, faults + attacks) and a family of stress
// scenarios (large n, fine grids, heterogeneous widths, random schedules,
// the exhaustive over-all-sets worst case).  Benches, examples and tests
// look configurations up by name instead of re-declaring them, and the
// scenario_smoke ctest runs every entry through smoke_variant(), so a
// registered scenario can never land unexecuted.
//
// Naming convention: "<family>/<case>", e.g. "table1/r3/descending",
// "fig4/wc-2-3-5", "stress/fine-grid".  Prefix lookups (match()) return
// whole families in registration order.

#include <string>
#include <vector>

#include "scenario/scenario.h"

namespace arsf::scenario {

class ScenarioRegistry {
 public:
  /// Validates and stores; throws std::invalid_argument on an invalid
  /// scenario or a duplicate name.
  void add(Scenario scenario);

  /// nullptr when absent.
  [[nodiscard]] const Scenario* find(const std::string& name) const noexcept;
  /// Throws std::out_of_range (listing near-miss names) when absent.
  [[nodiscard]] const Scenario& at(const std::string& name) const;
  /// Every scenario whose name starts with @p prefix, in registration order.
  [[nodiscard]] std::vector<const Scenario*> match(const std::string& prefix) const;

  [[nodiscard]] const std::vector<Scenario>& all() const noexcept { return scenarios_; }
  [[nodiscard]] std::size_t size() const noexcept { return scenarios_.size(); }

 private:
  std::vector<Scenario> scenarios_;  ///< registration order = listing order
};

/// The pre-populated global catalogue (constructed on first use; read-only
/// afterwards, safe to share across threads).
[[nodiscard]] const ScenarioRegistry& registry();

/// Coarse, time-bounded clone for the scenario_smoke ctest: capped rounds
/// and a cost-bounded attacker (joint planning off, strided candidates,
/// subsampled posterior).  The scenario still exercises the same analysis,
/// schedule and attacked-set path as the full run.
[[nodiscard]] Scenario smoke_variant(Scenario scenario);

}  // namespace arsf::scenario
