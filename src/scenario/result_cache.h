#pragma once
// Content-addressed result cache: canonical scenario keys, an LRU store and
// an optional persistent JSONL backing file.
//
// PR 5 proved canonicalisation is the biggest lever in this codebase:
// equal-width sensors are interchangeable, so 816 attacked subsets collapsed
// to 3 equivalence classes.  This layer generalises the idea from attacked
// subsets to WHOLE scenarios: canonical_scenario() maps every scenario to a
// normal form such that two scenarios with the same normal form provably
// produce bit-identical metrics, and cache_key() pairs that normal form with
// a cheap field fingerprint.  The Runner consults the cache before scheduling a
// run (scenario/runner.h RunnerOptions::cache) and run_sweep() groups each
// chunk of a grid by canonical key so every equivalence class is evaluated
// once (scenario/sweep.h).
//
// Canonical form (src/sim/engine/README.md derives why this is sound):
//   * identity and execution knobs never reach a metric: name, description,
//     num_threads and deadline_ms are cleared, f is resolved to its paper
//     default ceil(n/2)-1.
//   * per analysis family, every knob the dispatched engines do not read is
//     reset to its default-constructed value — e.g. the enumerate family
//     drops rounds/fault/require_undetected/over_all_sets; the worst-case
//     family drops rounds/fault/policy/policy_options/max_worlds and its
//     schedule (the fixed-set lane hardcodes the ascending order, the
//     over-sets lane maximises over subsets); a clean enumerate run
//     (policy none or fa == 0) additionally drops every attack and schedule
//     knob because the closed-form clean pass reads none of them.
//   * the PR 5 exchange argument: on lanes whose metrics are invariant under
//     a relabeling of sensor ids — the clean enumerate family without a
//     width-argmax member, and the fixed-set worst case — sensors are sorted
//     by width with a STABLE id-remap (trusted / fixed_order /
//     attacked_override remapped alongside, attacked sensors sorted last
//     among equal widths — equal-width sensors are interchangeable whatever
//     their attacked status), so "widths {5,1,3}" and "widths {1,3,5}"
//     share one cache entry.  Lanes where ids are
//     observable keep their id order: width-argmax exposes a world INDEX
//     (worlds are enumerated by id), AttackedSetRule::kRandom draws over raw
//     ids, the over-sets worst case tie-breaks best_set_size in id order,
//     and the attacker-policy / sampled lanes thread a world-order RNG.
//
// The cache itself is a thread-safe LRU keyed by (fingerprint, canonical
// SCENARIO): the fingerprint is a cheap field hash (canonical_signature) and
// a hit always confirms with the full Scenario operator==, never just the
// 64-bit hash, so a fingerprint collision degrades to a miss instead of
// silently returning another scenario's metrics.  Keys deliberately hold the
// canonical struct rather than its JSON: keying every run through
// Scenario::to_json would cost more than the cheap closed-form analyses the
// cache exists to short-circuit, so serialisation happens only at the
// persistence boundary.  Eviction is by byte budget, oldest-use first.  Only
// completed, non-degraded results are ever stored (the Runner enforces this
// too): a cache hit is bit-identical to the fresh run it replaces, at every
// thread count.
//
// Persistence reuses the repository's durability idioms: save_file() is
// write-then-rename like sweep checkpoints, one JSONL line per entry
// embedding the canonical scenario (as JSON, rendered at save time) and the
// stored frame in JsonlSink's format; load_file() re-validates,
// re-canonicalises and re-fingerprints every line and rejects anything it
// cannot prove well-formed (a corrupt line is a miss, never a wrong answer).
//
// Reload protocol: save_file() stamps the store with a
// `{"cache_generation":N}` header line (N bumped per save) and both save and
// load record the file's mtime.  maybe_reload() re-loads the store only when
// that mtime has changed, which is how a long-running daemon picks up
// entries written by another process without a restart.  Stores without a
// header (older format) still load — they simply carry generation 0.

#include <cstdint>
#include <filesystem>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "scenario/analysis.h"
#include "scenario/scenario.h"

namespace arsf::scenario {

/// The normal form described in the file comment.  Idempotent; the input
/// must satisfy Scenario::validate() (the Runner keys the cache only after
/// validation).
[[nodiscard]] Scenario canonical_scenario(const Scenario& scenario);

/// Cache key: the canonical scenario itself plus its FNV-1a field signature
/// for cheap bucketing.  Equality of keys is Scenario operator== on the
/// canonical forms; the fingerprint only narrows the candidate set.
struct CacheKey {
  std::uint64_t fingerprint = 0;  ///< canonical_signature(canonical)
  Scenario canonical;             ///< canonical_scenario(...)
};

[[nodiscard]] CacheKey cache_key(const Scenario& scenario);

/// Cheap FNV-1a hash over the discriminating fields of an ALREADY canonical
/// scenario — no JSON serialisation.  This is the CacheKey fingerprint, and
/// run_sweep uses it directly to bucket a chunk's points before confirming
/// equality with the full Scenario operator==, so cache interactions and
/// grid sharing stay profitable even when the points themselves run in
/// microseconds.  It deliberately hashes a SUBSET of fields (enough to make
/// collisions rare in practice) and is therefore never used without the
/// struct compare.
[[nodiscard]] std::uint64_t canonical_signature(const Scenario& canonical);

/// How a Runner uses its cache.  kReadOnly serves hits but never stores
/// (e.g. a probe against a shared store); kWriteOnly recomputes everything
/// and refreshes the store (a cache-warming pass).
enum class CacheMode { kReadWrite, kReadOnly, kWriteOnly };

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;  ///< resident entries right now
  std::uint64_t bytes = 0;    ///< resident byte estimate right now
};

class ResultCache {
 public:
  static constexpr std::uint64_t kDefaultByteBudget = 256ull << 20;  // 256 MiB

  explicit ResultCache(std::uint64_t byte_budget = kDefaultByteBudget)
      : byte_budget_(byte_budget) {}

  /// The stored frame for @p key, or nullopt.  A hit refreshes recency and
  /// returns the NORMALISED stored frame (empty scenario name, status kOk,
  /// attempts 1); callers re-label it via cache_hit_frame().
  [[nodiscard]] std::optional<ScenarioResult> lookup(const CacheKey& key);

  /// Stores @p result under @p key; returns false (and stores nothing) for
  /// frames that must never be served from cache — failed / timed-out /
  /// cancelled / rejected / degraded — and for entries over the whole byte
  /// budget.  An existing entry with the same key is refreshed, not
  /// duplicated.  Evicts least-recently-used entries to the byte budget.
  bool insert(const CacheKey& key, const ScenarioResult& result);

  [[nodiscard]] CacheStats stats() const;
  void clear();

  [[nodiscard]] std::uint64_t byte_budget() const noexcept { return byte_budget_; }

  // ---- persistence ---------------------------------------------------------

  struct LoadReport {
    std::size_t loaded = 0;    ///< entries accepted into the cache
    std::size_t rejected = 0;  ///< lines that failed parsing or validation
  };

  /// Loads a file written by save_file().  A missing or unreadable file is a
  /// cold cache ({0, 0}); a malformed line is rejected (counted) and never
  /// aborts the load.  Loaded entries do not count as inserts.
  LoadReport load_file(const std::string& path);

  /// Atomically (write-then-rename) persists every resident entry, one JSONL
  /// line per entry, least-recently-used first (so a later load_file ends
  /// with the same recency order), under a `{"cache_generation":N}` header
  /// line.  Throws std::runtime_error on I/O failure.
  void save_file(const std::string& path) const;

  struct ReloadReport {
    bool reloaded = false;  ///< the store's mtime changed and a load ran
    LoadReport load;
  };

  /// Re-loads @p path only when its mtime differs from the one recorded at
  /// the last load_file / save_file of this cache — the daemon's cheap poll
  /// for externally-written entries.  A missing store is a no-op.
  ReloadReport maybe_reload(const std::string& path);

  /// Store generation: bumped on every save_file(); load_file() adopts a
  /// newer header generation from the file.  0 = never persisted (or a
  /// headerless legacy store).
  [[nodiscard]] std::uint64_t generation() const;

 private:
  struct Entry {
    CacheKey key;
    ScenarioResult result;  ///< normalised stored frame
    std::uint64_t bytes = 0;
  };
  using EntryList = std::list<Entry>;

  // All private helpers assume mutex_ is held.
  EntryList::iterator find_entry(const CacheKey& key);
  bool store(const CacheKey& key, ScenarioResult stored);
  void evict_to_budget();

  mutable std::mutex mutex_;
  EntryList lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::vector<EntryList::iterator>> index_;
  std::uint64_t byte_budget_;
  std::uint64_t bytes_ = 0;
  CacheStats counters_;  ///< hits/misses/inserts/evictions (entries/bytes derived)
  // Reload-protocol state; mutable because save_file() is logically const
  // (the cached entries do not change) yet stamps the store it writes.
  mutable std::uint64_t generation_ = 0;
  mutable std::optional<std::filesystem::file_time_type> last_store_mtime_;
};

/// The frame a cache hit delivers for @p scenario_name: the stored metrics
/// and analysis under the requesting scenario's name, status kOk, one
/// attempt, from_cache set.
[[nodiscard]] ScenarioResult cache_hit_frame(const ScenarioResult& stored,
                                             const std::string& scenario_name);

}  // namespace arsf::scenario
