#include "attack/expectation.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "core/fusion.h"

namespace arsf::attack {

namespace {

/// Flattened storage for the posterior completions (placements of the unseen
/// correct intervals).  stride == number of unseen sensors; count >= 1.
struct Completions {
  std::vector<TickInterval> flat;
  std::size_t stride = 0;
  std::size_t count = 1;  // stride == 0 -> one empty completion
};

/// Exact number of posterior atoms: |I*| x prod(w_u + 1), saturating.
std::uint64_t exact_completion_count(const TickInterval& support,
                                     std::span<const Tick> unseen_widths) {
  std::uint64_t count = static_cast<std::uint64_t>(support.width()) + 1;
  for (Tick w : unseen_widths) {
    const auto factor = static_cast<std::uint64_t>(w) + 1;
    if (count > std::numeric_limits<std::uint64_t>::max() / factor) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    count *= factor;
  }
  return count;
}

Completions build_exact_completions(const TickInterval& support,
                                    std::span<const Tick> unseen_widths) {
  Completions comps;
  comps.stride = unseen_widths.size();
  if (comps.stride == 0) return comps;

  const auto total = exact_completion_count(support, unseen_widths);
  comps.count = static_cast<std::size_t>(total);
  comps.flat.reserve(comps.count * comps.stride);

  // Odometer over (t, lower offsets): each unseen interval has lower bound
  // t - offset with offset in [0, w].
  std::vector<Tick> offsets(comps.stride, 0);
  for (Tick t = support.lo; t <= support.hi; ++t) {
    std::fill(offsets.begin(), offsets.end(), 0);
    for (;;) {
      for (std::size_t u = 0; u < comps.stride; ++u) {
        const Tick lo = t - offsets[u];
        comps.flat.push_back(TickInterval{lo, lo + unseen_widths[u]});
      }
      // Advance the odometer.
      std::size_t digit = 0;
      while (digit < comps.stride) {
        if (offsets[digit] < unseen_widths[digit]) {
          ++offsets[digit];
          break;
        }
        offsets[digit] = 0;
        ++digit;
      }
      if (digit == comps.stride) break;
    }
  }
  return comps;
}

Completions build_sampled_completions(const TickInterval& support,
                                      std::span<const Tick> unseen_widths, std::size_t target,
                                      support::Rng& rng) {
  Completions comps;
  comps.stride = unseen_widths.size();
  comps.count = target;
  comps.flat.reserve(target * comps.stride);
  for (std::size_t s = 0; s < target; ++s) {
    const Tick t = rng.uniform_int(support.lo, support.hi);
    for (Tick w : unseen_widths) {
      const Tick lo = t - rng.uniform_int(0, w);
      comps.flat.push_back(TickInterval{lo, lo + w});
    }
  }
  return comps;
}

Completions build_completions(const AttackContext& ctx, const ExpectationOptions& options,
                              support::Rng& sample_rng) {
  // With faulty (non-malicious) sensors on the bus the seen intervals need
  // not share a point with Delta; the attacker's measurement model is then
  // inconsistent and she falls back to her own sensors' evidence.
  TickInterval support = ctx.truth_support();
  if (support.is_empty()) support = ctx.delta;
  if (ctx.unseen_widths.empty()) return Completions{};
  const auto exact = exact_completion_count(support, ctx.unseen_widths);
  if (options.max_completions == 0 || exact <= options.max_completions) {
    return build_exact_completions(support, ctx.unseen_widths);
  }
  return build_sampled_completions(support, ctx.unseen_widths, options.max_completions,
                                   sample_rng);
}

/// Candidate lower bounds for planned interval @p j of a @p plan_size-joint
/// plan.  Exact with no unseen sensors via breakpoints; exact on the grid
/// otherwise (stride 1), approximate for larger strides.
std::vector<Tick> candidate_lows(const AttackContext& ctx, std::size_t j,
                                 std::size_t plan_size, bool have_unseen,
                                 const ExpectationOptions& options) {
  const Tick width = ctx.remaining_widths[j];
  const StealthMode mode = mode_for_slot(*ctx.setup, ctx.remaining_slots[j]);
  const TickInterval passive = passive_lo_range(ctx.delta, width);

  std::vector<Tick> lows;
  auto push_range_endpoints = [&](const TickInterval& range) {
    if (!range.is_empty()) {
      lows.push_back(range.lo);
      lows.push_back(range.hi);
    }
  };
  push_range_endpoints(passive);
  lows.push_back(ctx.remaining_readings[j].lo);  // always feasible fallback

  if (mode == StealthMode::kPassive) {
    // Whole passive range (it is at most width - |delta| + 1 points).
    for (Tick lo = passive.lo; lo <= passive.hi; ++lo) lows.push_back(lo);
  } else {
    const TickInterval range = candidate_lo_range(ctx, width);
    if (!have_unseen) {
      // Breakpoints: objective is piecewise linear in this interval's lower
      // bound with slope changes only where one of its endpoints crosses a
      // known endpoint (possibly shifted by a sibling width).
      std::vector<Tick> endpoints;
      auto push_interval = [&](const TickInterval& iv) {
        endpoints.push_back(iv.lo);
        endpoints.push_back(iv.hi);
      };
      push_interval(ctx.delta);
      for (const auto& iv : ctx.seen) push_interval(iv);
      for (const auto& iv : ctx.my_sent) push_interval(iv);
      const std::size_t base = endpoints.size();
      for (std::size_t k = 0; k < plan_size; ++k) {
        if (k == j) continue;
        const Tick sibling = ctx.remaining_widths[k];
        for (std::size_t e = 0; e < base; ++e) {
          endpoints.push_back(endpoints[e] - sibling);
          endpoints.push_back(endpoints[e] + sibling);
        }
      }
      for (Tick e : endpoints) {
        for (const Tick lo : {e, static_cast<Tick>(e - width)}) {
          if (range.contains(lo)) lows.push_back(lo);
        }
      }
      push_range_endpoints(range);
    } else {
      const Tick stride = std::max<Tick>(1, options.candidate_stride);
      for (Tick lo = range.lo; lo <= range.hi; lo += stride) lows.push_back(lo);
      push_range_endpoints(range);
    }
  }

  std::sort(lows.begin(), lows.end());
  lows.erase(std::unique(lows.begin(), lows.end()), lows.end());
  return lows;
}

/// Mean fused width (ticks) of the full sensor set under @p plan across all
/// completions.  @p buffer is reused between calls.
double evaluate_plan(const AttackContext& ctx, std::span<const TickInterval> plan,
                     const Completions& comps, std::vector<TickInterval>& buffer) {
  buffer.clear();
  buffer.insert(buffer.end(), ctx.seen.begin(), ctx.seen.end());
  buffer.insert(buffer.end(), ctx.my_sent.begin(), ctx.my_sent.end());
  for (std::size_t j = 0; j < ctx.remaining_slots.size(); ++j) {
    buffer.push_back(j < plan.size() ? plan[j] : ctx.remaining_readings[j]);
  }
  const std::size_t base = buffer.size();
  buffer.resize(base + comps.stride);

  double total = 0.0;
  for (std::size_t c = 0; c < comps.count; ++c) {
    for (std::size_t u = 0; u < comps.stride; ++u) {
      buffer[base + u] = comps.flat[c * comps.stride + u];
    }
    const Tick width = fused_width_ticks(buffer, ctx.setup->f);
    total += width > 0 ? static_cast<double>(width) : 0.0;
  }
  return total / static_cast<double>(comps.count);
}

/// Joint optimisation over the candidate grid; returns the best feasible
/// plan (the always-feasible correct readings are the baseline).
/// @param grid_candidates  force grid candidate generation even without
///                         unseen sensors (OraclePolicy: the pinned
///                         completion contributes breakpoints that
///                         candidate_lows does not know about).
std::vector<TickInterval> optimize_plan(const AttackContext& ctx, std::size_t plan_size,
                                        const Completions& comps,
                                        const ExpectationOptions& options, support::Rng& rng,
                                        bool grid_candidates) {
  const bool have_unseen = grid_candidates || comps.stride > 0;
  std::vector<std::vector<Tick>> lows(plan_size);
  for (std::size_t j = 0; j < plan_size; ++j) {
    lows[j] = candidate_lows(ctx, j, plan_size, have_unseen, options);
  }

  // Baseline: the correct readings.  They always hold their own passive
  // certificate, but when earlier intervals were sent on an *active*
  // certificate that leaned on a planned sibling placement, the readings may
  // fail to protect them — so the baseline is subject to plan_feasible like
  // every other candidate ("she may have to protect her earlier intervals").
  std::vector<TickInterval> buffer;
  std::vector<TickInterval> best(ctx.remaining_readings.begin(),
                                 ctx.remaining_readings.begin() +
                                     static_cast<std::ptrdiff_t>(plan_size));
  double best_value = -1.0;
  bool have_feasible = false;
  if (plan_feasible(ctx, best)) {
    best_value = evaluate_plan(ctx, best, comps, buffer);
    have_feasible = true;
  }
  std::vector<std::vector<TickInterval>> ties;
  if (have_feasible) ties.push_back(best);

  std::vector<std::size_t> index(plan_size, 0);
  std::vector<TickInterval> plan(plan_size);
  for (;;) {
    for (std::size_t j = 0; j < plan_size; ++j) {
      const Tick lo = lows[j][index[j]];
      plan[j] = TickInterval{lo, lo + ctx.remaining_widths[j]};
    }
    if (plan_feasible(ctx, plan)) {
      const double value = evaluate_plan(ctx, plan, comps, buffer);
      if (!have_feasible || value > best_value + 1e-9) {
        have_feasible = true;
        best_value = value;
        best = plan;
        if (options.random_tie_break) {
          ties.clear();
          ties.push_back(plan);
        }
      } else if (options.random_tie_break && value > best_value - 1e-9) {
        ties.push_back(plan);
      }
    }
    // Advance the odometer over candidate indices.
    std::size_t digit = 0;
    while (digit < plan_size) {
      if (++index[digit] < lows[digit].size()) break;
      index[digit] = 0;
      ++digit;
    }
    if (digit == plan_size) break;
  }
  if (options.random_tie_break && ties.size() > 1) {
    const auto pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(ties.size()) - 1));
    return ties[pick];
  }
  return best;
}

}  // namespace

std::size_t ExpectationPolicy::KeyHash::operator()(const std::vector<Tick>& key) const noexcept {
  std::uint64_t state = 0x51ab5e1fULL ^ (static_cast<std::uint64_t>(key.size()) << 32);
  std::uint64_t hash = 0;
  for (Tick value : key) {
    state ^= static_cast<std::uint64_t>(value) + 0x9e3779b97f4a7c15ULL + (state << 6);
    hash ^= support::splitmix64(state);
  }
  return static_cast<std::size_t>(hash);
}

ExpectationPolicy::ExpectationPolicy(ExpectationOptions options)
    : options_(options), sample_rng_(options.sample_seed) {}

void ExpectationPolicy::reset() {
  memo_.clear();
  sample_rng_.reseed(options_.sample_seed);
}

namespace {

/// Translation-canonical memo key: all coordinates are shifted by -base so
/// that worlds differing only by a translation share one decision.
std::vector<Tick> make_memo_key(const AttackContext& ctx, std::size_t plan_size) {
  const Tick base = ctx.delta.lo;
  std::vector<Tick> key;
  key.reserve(16 + 2 * (ctx.seen.size() + ctx.my_sent.size()) + ctx.unseen_widths.size());
  key.push_back(ctx.setup->n);
  key.push_back(ctx.setup->f);
  key.push_back(static_cast<Tick>(ctx.current_slot));
  key.push_back(static_cast<Tick>(plan_size));
  for (SensorId id : ctx.setup->attacked) {
    key.push_back(static_cast<Tick>(sched::slot_of(ctx.setup->order, id)));
  }
  key.push_back(ctx.delta.hi - base);

  auto push_sorted = [&](std::span<const TickInterval> intervals) {
    std::vector<std::pair<Tick, Tick>> pairs;
    pairs.reserve(intervals.size());
    for (const auto& iv : intervals) pairs.emplace_back(iv.lo - base, iv.hi - base);
    std::sort(pairs.begin(), pairs.end());
    key.push_back(static_cast<Tick>(pairs.size()));
    for (const auto& [lo, hi] : pairs) {
      key.push_back(lo);
      key.push_back(hi);
    }
  };
  push_sorted(ctx.seen);
  push_sorted(ctx.my_sent);

  key.push_back(static_cast<Tick>(ctx.remaining_slots.size()));
  for (std::size_t j = 0; j < ctx.remaining_slots.size(); ++j) {
    key.push_back(static_cast<Tick>(ctx.remaining_slots[j]));
    key.push_back(ctx.remaining_widths[j]);
    if (j >= plan_size) {
      // Tail intervals stay at their correct readings, which then influence
      // the objective; identical plans with different tails must not alias.
      key.push_back(ctx.remaining_readings[j].lo - base);
    }
  }
  std::vector<Tick> unseen(ctx.unseen_widths.begin(), ctx.unseen_widths.end());
  std::sort(unseen.begin(), unseen.end());
  for (Tick w : unseen) key.push_back(w);
  return key;
}

}  // namespace

TickInterval ExpectationPolicy::decide(const AttackContext& ctx, support::Rng& rng) {
  assert(!ctx.remaining_slots.empty());
  const std::size_t plan_size = std::min(options_.max_joint, ctx.remaining_slots.size());

  std::vector<Tick> key;
  if (options_.memoize) {
    key = make_memo_key(ctx, plan_size);
    const auto it = memo_.find(key);
    if (it != memo_.end()) return it->second.translated(ctx.delta.lo);
  }

  const Completions comps = build_completions(ctx, options_, sample_rng_);
  const auto plan =
      optimize_plan(ctx, plan_size, comps, options_, rng, /*grid_candidates=*/false);
  const TickInterval decision = plan.front();

  if (options_.memoize) memo_.emplace(std::move(key), decision.translated(-ctx.delta.lo));
  return decision;
}

double ExpectationPolicy::expected_width_of_plan(const AttackContext& ctx,
                                                 std::span<const TickInterval> plan) {
  const Completions comps = build_completions(ctx, options_, sample_rng_);
  std::vector<TickInterval> buffer;
  return evaluate_plan(ctx, plan, comps, buffer);
}

OraclePolicy::OraclePolicy(ExpectationOptions options) : options_(options) {}

TickInterval OraclePolicy::decide(const AttackContext& ctx, support::Rng& rng) {
  assert(ctx.unseen_actual.size() == ctx.unseen_widths.size() &&
         "OraclePolicy requires the driver to fill unseen_actual");
  Completions comps;
  comps.stride = ctx.unseen_actual.size();
  comps.count = 1;
  comps.flat = ctx.unseen_actual;
  // The pinned completion contributes breakpoints that candidate_lows does
  // not consult, so force grid candidates to stay exact (oracle runs are not
  // the hot path).
  ExpectationOptions options = options_;
  options.candidate_stride = 1;
  const std::size_t plan_size = std::min(options.max_joint, ctx.remaining_slots.size());
  return optimize_plan(ctx, plan_size, comps, options, rng, /*grid_candidates=*/true).front();
}

std::unique_ptr<AttackPolicy> make_expectation_policy(ExpectationOptions options) {
  return std::make_unique<ExpectationPolicy>(options);
}

std::unique_ptr<AttackPolicy> make_oracle_policy(ExpectationOptions options) {
  return std::make_unique<OraclePolicy>(options);
}

}  // namespace arsf::attack
