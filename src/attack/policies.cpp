#include "attack/policies.h"

#include <algorithm>

namespace arsf::attack {

std::vector<TickInterval> feasible_candidates(const AttackContext& ctx) {
  const Tick width = ctx.remaining_widths.front();
  const TickInterval range = candidate_lo_range(ctx, width);
  std::vector<TickInterval> candidates;
  std::vector<TickInterval> plan(1);
  for (Tick lo = range.lo; lo <= range.hi; ++lo) {
    plan[0] = TickInterval{lo, lo + width};
    if (plan_feasible(ctx, plan)) candidates.push_back(plan[0]);
  }
  return candidates;
}

TickInterval CorrectPolicy::decide(const AttackContext& ctx, support::Rng& rng) {
  (void)rng;
  return ctx.remaining_readings.front();
}

TickInterval ShiftPolicy::decide(const AttackContext& ctx, support::Rng& rng) {
  (void)rng;
  const auto candidates = feasible_candidates(ctx);
  if (candidates.empty()) return ctx.remaining_readings.front();
  const bool go_right = side_ == Side::kRight ||
                        (side_ == Side::kAlternate && ctx.my_sent.size() % 2 == 0);
  // Candidates are ordered by lower bound; extremes are the maximal shifts.
  return go_right ? candidates.back() : candidates.front();
}

std::string ShiftPolicy::name() const {
  switch (side_) {
    case Side::kLeft: return "shift-left";
    case Side::kRight: return "shift-right";
    case Side::kAlternate: return "shift-alternate";
  }
  return "shift";
}

TickInterval RandomFeasiblePolicy::decide(const AttackContext& ctx, support::Rng& rng) {
  const auto candidates = feasible_candidates(ctx);
  if (candidates.empty()) return ctx.remaining_readings.front();
  const auto index = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1));
  return candidates[index];
}

TickInterval NaiveOffsetPolicy::decide(const AttackContext& ctx, support::Rng& rng) {
  (void)rng;
  return ctx.remaining_readings.front().translated(offset_);
}

}  // namespace arsf::attack
