#pragma once
// Stealth constraints (paper, Section III-A-1).
//
// Detection discards any interval that does not intersect the fusion
// interval, so the attacker only plays moves that *guarantee* intersection:
//
//   * Passive mode — her interval contains Delta.  Since the true value t is
//     in Delta and in every correct interval, t lies in >= n-fa >= n-f
//     intervals, hence in the fusion interval; her interval contains t too.
//   * Active mode — allowed from the paper's gate
//     `transmitted >= n - f - far`; her interval shares a common point p with
//     at least n-f-1 other intervals whose placements are known or under her
//     control.  Then p lies in >= n-f intervals (them plus hers), hence in
//     the fusion interval.
//
// Both certificates are sufficient conditions for zero detection probability
// regardless of where the unseen correct intervals land; the enumeration
// tests verify this exhaustively.

#include <span>
#include <vector>

#include "attack/context.h"

namespace arsf::attack {

enum class StealthMode { kPassive, kActive };

/// Paper's mode gate for a decision at @p slot: every earlier slot has
/// transmitted (transmitted == slot) and far counts her slots >= slot.
[[nodiscard]] StealthMode mode_for_slot(const AttackSetup& setup, std::size_t slot);

/// Passive certificate: candidate contains Delta.
[[nodiscard]] bool passive_feasible(const TickInterval& candidate, const TickInterval& delta);

/// Maximum number of @p others sharing a single common point inside
/// @p within (closed-interval semantics).
[[nodiscard]] int max_point_overlap_within(const TickInterval& within,
                                           std::span<const TickInterval> others);

/// Active certificate: some point of @p candidate lies in >= need of
/// @p others.
[[nodiscard]] bool active_feasible(const TickInterval& candidate,
                                   std::span<const TickInterval> others, int need);

/// Inclusive range of candidate lower bounds for an interval of width
/// @p width that contains @p delta (the passive feasible set).
/// Empty (lo > hi) iff width < |delta|, which cannot happen for the sensor
/// that produced a reading of the same width.
[[nodiscard]] TickInterval passive_lo_range(const TickInterval& delta, Tick width);

/// Candidate lower-bound range wide enough to contain every placement of a
/// width-@p width interval that could hold any certificate: the hull of
/// (delta, seen, sent) expanded by this width plus the widest remaining
/// sibling (an active certificate may lean on a sibling's future placement).
[[nodiscard]] TickInterval candidate_lo_range(const AttackContext& ctx, Tick width);

/// Checks a complete plan for the attacker's intervals: every already-sent
/// interval and every planned interval must hold a stealth certificate,
/// where the "known others" of each interval are the seen correct intervals,
/// her other sent intervals and the other planned intervals.
///
/// @param ctx        decision context (provides seen/sent/delta/slots).
/// @param plan       placements for her remaining intervals, parallel to
///                   ctx.remaining_slots (may be a prefix: the tail defaults
///                   to the correct readings, which are always feasible).
[[nodiscard]] bool plan_feasible(const AttackContext& ctx, std::span<const TickInterval> plan);

}  // namespace arsf::attack
