#pragma once
// Optimising attack policies: the paper's problems (1) and (2).
//
// ExpectationPolicy implements problem (2): at each of her slots the attacker
// jointly plans her remaining intervals to maximise
//
//     E_{CRk} |S_{N,f}|
//
// where the expectation runs over the placements of the correct intervals
// she has not seen yet.  Her posterior (uniform measurement model on the
// tick grid) is: the true value t is uniform over Delta intersected with all
// seen correct intervals, and given t every unseen correct interval's lower
// bound is uniform on [t - w, t].  Only the interval for the current slot is
// committed; later slots re-solve with fresh information (receding horizon —
// the paper solves "an instance of (2) for each compromised interval").
//
// When the attacker's slot comes after every correct sensor there is nothing
// unseen, the expectation collapses, and the policy solves problem (1)
// exactly — the optimal attack with full knowledge.
//
// Every plan is constrained to hold stealth certificates (attack/stealth.h),
// so the optimisation never risks detection, matching the paper's "maximise
// the fusion interval while staying undetected".
//
// Implementation notes:
//   * everything is exact integer-tick arithmetic;
//   * decisions are memoised under translation canonicalisation (shifting
//     all coordinates by -delta.lo), which collapses most of the worlds the
//     exhaustive enumeration engine visits onto few distinct decisions;
//   * with no unseen sensors the objective is piecewise linear in each
//     planned lower bound with breakpoints at known endpoints, so only
//     breakpoint candidates are evaluated (exact); with unseen sensors the
//     objective is piecewise linear between *grid* points, so the full grid
//     is enumerated (exact) unless a stride/sampling budget is configured;
//   * max_completions > 0 (Monte Carlo subsampling of the posterior) bounds
//     the cost on fine grids, e.g. the continuous-domain case study.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "attack/policies.h"

namespace arsf::attack {

struct ExpectationOptions {
  /// How many of her remaining intervals are planned jointly (the rest of
  /// the tail is assumed correct until its own slot re-solves).
  std::size_t max_joint = 2;
  /// 0 = exact enumeration of the posterior; otherwise subsample this many
  /// completions (deterministic internal stream, see sample_seed).
  std::size_t max_completions = 0;
  /// Grid stride for candidate lower bounds (1 = exact; >1 trades accuracy
  /// for speed on fine grids; breakpoint candidates are always included).
  Tick candidate_stride = 1;
  /// Memoise decisions under translation canonicalisation.
  bool memoize = true;
  /// Seed of the private sampling stream used when max_completions > 0.
  std::uint64_t sample_seed = 0x900dcafeULL;
  /// Pick uniformly among expectation-maximising plans instead of the first
  /// one found (an indifferent attacker; balances left/right extensions in
  /// the case study).  Uses the rng passed to decide().
  bool random_tie_break = false;
};

class ExpectationPolicy final : public AttackPolicy {
 public:
  explicit ExpectationPolicy(ExpectationOptions options = {});

  [[nodiscard]] TickInterval decide(const AttackContext& ctx, support::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "expectation"; }
  void reset() override;

  /// Expected fused width (in ticks) of an explicit plan under the
  /// attacker's posterior — exposed for tests and the figure binaries.
  [[nodiscard]] double expected_width_of_plan(const AttackContext& ctx,
                                              std::span<const TickInterval> plan);

  /// Number of distinct canonical decision states cached so far.
  [[nodiscard]] std::size_t memo_size() const noexcept { return memo_.size(); }

 private:
  struct KeyHash {
    std::size_t operator()(const std::vector<Tick>& key) const noexcept;
  };

  ExpectationOptions options_;
  support::Rng sample_rng_;
  std::unordered_map<std::vector<Tick>, TickInterval, KeyHash> memo_;
};

/// Upper-bound oracle: solves problem (1) against the *actual* placements of
/// the unseen correct intervals (ctx.unseen_actual), i.e. an attacker with
/// full knowledge regardless of schedule.  Used by ablations to separate
/// "information denied by the schedule" from "power denied by stealth".
class OraclePolicy final : public AttackPolicy {
 public:
  explicit OraclePolicy(ExpectationOptions options = {});

  [[nodiscard]] TickInterval decide(const AttackContext& ctx, support::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "oracle"; }

 private:
  ExpectationOptions options_;
};

/// Factory helpers for readability at call sites.
[[nodiscard]] std::unique_ptr<AttackPolicy> make_expectation_policy(ExpectationOptions o = {});
[[nodiscard]] std::unique_ptr<AttackPolicy> make_oracle_policy(ExpectationOptions o = {});

}  // namespace arsf::attack
