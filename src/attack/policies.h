#pragma once
// Attack policy interface and the simple (non-optimising) policies.
//
// A policy decides, at each of the attacker's slots, which interval to
// transmit for the compromised sensor owning that slot.  All built-in
// policies only ever return moves carrying a stealth certificate
// (attack/stealth.h), so they are never flagged by the detector; the
// deliberately non-stealthy NaiveOffsetPolicy exists to demonstrate that the
// detector does catch certificate-free attacks.

#include <memory>
#include <string>

#include "attack/context.h"
#include "attack/stealth.h"
#include "support/rng.h"

namespace arsf::attack {

class AttackPolicy {
 public:
  virtual ~AttackPolicy() = default;

  /// Interval to transmit at ctx.current_slot (width must equal
  /// ctx.remaining_widths.front(); widths are public knowledge, a wrong
  /// width would be trivially detected).
  [[nodiscard]] virtual TickInterval decide(const AttackContext& ctx, support::Rng& rng) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Clears memoisation/caches between experiments (default: no-op).
  virtual void reset() {}
};

/// Benign baseline: always transmits the sensor's correct reading.
class CorrectPolicy final : public AttackPolicy {
 public:
  [[nodiscard]] TickInterval decide(const AttackContext& ctx, support::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "correct"; }
};

/// Greedy one-sided heuristic: shifts the interval as far as a stealth
/// certificate allows towards the configured side.
class ShiftPolicy final : public AttackPolicy {
 public:
  enum class Side { kLeft, kRight, kAlternate };

  explicit ShiftPolicy(Side side = Side::kRight) : side_(side) {}

  [[nodiscard]] TickInterval decide(const AttackContext& ctx, support::Rng& rng) override;
  [[nodiscard]] std::string name() const override;

 private:
  Side side_;
};

/// Uniformly random certificate-holding move (a weak but stealthy attacker).
class RandomFeasiblePolicy final : public AttackPolicy {
 public:
  [[nodiscard]] TickInterval decide(const AttackContext& ctx, support::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "random-feasible"; }
};

/// Certificate-free strawman: offsets its reading by a fixed number of ticks
/// regardless of stealth.  Used to validate the detector.
class NaiveOffsetPolicy final : public AttackPolicy {
 public:
  explicit NaiveOffsetPolicy(Tick offset) : offset_(offset) {}

  [[nodiscard]] TickInterval decide(const AttackContext& ctx, support::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "naive-offset"; }

 private:
  Tick offset_;
};

/// Enumerates every candidate placement for the current interval that holds
/// a stealth certificate given the context (other planned intervals default
/// to correct readings).  Shared by the simple policies; the optimising
/// policies build richer candidate sets internally.
[[nodiscard]] std::vector<TickInterval> feasible_candidates(const AttackContext& ctx);

}  // namespace arsf::attack
