#include "attack/stealth.h"

#include <algorithm>

namespace arsf::attack {

StealthMode mode_for_slot(const AttackSetup& setup, std::size_t slot) {
  int far = 0;
  for (SensorId id : setup.attacked) {
    if (sched::slot_of(setup.order, id) >= slot) ++far;
  }
  const int transmitted = static_cast<int>(slot);
  return transmitted >= setup.n - setup.f - far ? StealthMode::kActive : StealthMode::kPassive;
}

bool passive_feasible(const TickInterval& candidate, const TickInterval& delta) {
  return candidate.contains(delta);
}

int max_point_overlap_within(const TickInterval& within, std::span<const TickInterval> others) {
  if (within.is_empty()) return 0;
  // Sweep the clipped endpoint events; starts before ends at equal points.
  std::vector<std::pair<Tick, int>> events;
  events.reserve(2 * others.size());
  for (const auto& other : others) {
    const TickInterval clipped = other.intersect(within);
    if (clipped.is_empty()) continue;
    events.emplace_back(clipped.lo, +1);
    events.emplace_back(clipped.hi, -1);
  }
  std::sort(events.begin(), events.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second > b.second;
  });
  int count = 0;
  int best = 0;
  for (const auto& [x, delta] : events) {
    (void)x;
    count += delta;
    best = std::max(best, count);
  }
  return best;
}

bool active_feasible(const TickInterval& candidate, std::span<const TickInterval> others,
                     int need) {
  if (need <= 0) return true;
  return max_point_overlap_within(candidate, others) >= need;
}

TickInterval passive_lo_range(const TickInterval& delta, Tick width) {
  return TickInterval{delta.hi - width, delta.lo};
}

TickInterval candidate_lo_range(const AttackContext& ctx, Tick width) {
  TickInterval hull = ctx.delta;
  for (const auto& iv : ctx.seen) hull = hull.hull(iv);
  for (const auto& iv : ctx.my_sent) hull = hull.hull(iv);
  Tick sibling = 0;
  for (std::size_t j = 1; j < ctx.remaining_widths.size(); ++j) {
    sibling = std::max(sibling, ctx.remaining_widths[j]);
  }
  return TickInterval{hull.lo - width - sibling, hull.hi + sibling};
}

bool plan_feasible(const AttackContext& ctx, std::span<const TickInterval> plan) {
  const AttackSetup& setup = *ctx.setup;
  const int need = setup.n - setup.f - 1;

  // Full list of her intervals with the slot each occupies.
  struct Mine {
    TickInterval interval;
    std::size_t slot;
  };
  std::vector<Mine> mine;
  mine.reserve(ctx.my_sent.size() + ctx.remaining_slots.size());
  {
    // Reconstruct the slots of already-sent intervals: they are her attacked
    // slots before current_slot, in order.
    std::vector<std::size_t> my_slots;
    for (SensorId id : setup.attacked) my_slots.push_back(sched::slot_of(setup.order, id));
    std::sort(my_slots.begin(), my_slots.end());
    std::size_t sent_index = 0;
    for (std::size_t slot : my_slots) {
      if (slot < ctx.current_slot && sent_index < ctx.my_sent.size()) {
        mine.push_back({ctx.my_sent[sent_index], slot});
        ++sent_index;
      }
    }
  }
  for (std::size_t j = 0; j < ctx.remaining_slots.size(); ++j) {
    // Plan prefix; the tail defaults to correct readings (passively safe).
    const TickInterval iv = j < plan.size() ? plan[j] : ctx.remaining_readings[j];
    mine.push_back({iv, ctx.remaining_slots[j]});
  }

  // Known-position others for the certificates: seen corrects + all of her
  // intervals except the one under test.
  std::vector<TickInterval> others;
  others.reserve(ctx.seen.size() + mine.size());
  for (std::size_t i = 0; i < mine.size(); ++i) {
    const Mine& candidate = mine[i];
    if (passive_feasible(candidate.interval, ctx.delta)) continue;
    // Active certificate requires the mode gate at the interval's slot.
    if (mode_for_slot(setup, candidate.slot) != StealthMode::kActive) return false;
    others.clear();
    others.insert(others.end(), ctx.seen.begin(), ctx.seen.end());
    for (std::size_t k = 0; k < mine.size(); ++k) {
      if (k != i) others.push_back(mine[k].interval);
    }
    if (!active_feasible(candidate.interval, others, need)) return false;
  }
  return true;
}

}  // namespace arsf::attack
