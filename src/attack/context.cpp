#include "attack/context.h"

#include <algorithm>
#include <stdexcept>

namespace arsf::attack {

AttackSetup make_setup(const SystemConfig& config, const Quantizer& quant,
                       std::vector<SensorId> attacked, sched::Order order) {
  config.validate();
  if (!sched::is_valid_order(order, config.n())) {
    throw std::invalid_argument("make_setup: order is not a permutation of the sensors");
  }
  std::sort(attacked.begin(), attacked.end());
  if (std::adjacent_find(attacked.begin(), attacked.end()) != attacked.end()) {
    throw std::invalid_argument("make_setup: duplicate attacked sensor id");
  }
  for (SensorId id : attacked) {
    if (id >= config.n()) throw std::invalid_argument("make_setup: attacked id out of range");
  }
  if (static_cast<int>(attacked.size()) > config.f) {
    throw std::invalid_argument("make_setup: fa must not exceed f (paper assumption)");
  }

  AttackSetup setup;
  setup.n = static_cast<int>(config.n());
  setup.f = config.f;
  setup.widths = tick_widths(config, quant);
  setup.attacked = std::move(attacked);
  setup.order = std::move(order);
  return setup;
}

}  // namespace arsf::attack
