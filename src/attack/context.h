#pragma once
// Attacker knowledge model (paper, Sections II-B-1 and III-A).
//
// All attacker-side computation happens on the integer tick grid (exact
// arithmetic; the paper's own expectation is computed on a discretised real
// line).  The simulation driver assembles an AttackContext at each of the
// attacker's transmission slots; policies consume it and return the interval
// to transmit.
//
// What the attacker knows (and nothing more):
//   * the system parameters: n, f, every sensor's width, the slot order;
//   * which sensors she compromised and their *correct* readings — their
//     intersection is Delta, which must contain the true value;
//   * every interval already transmitted on the broadcast bus;
//   * her own previously transmitted (possibly spoofed) intervals.

#include <cstdint>
#include <vector>

#include "core/config.h"
#include "core/interval.h"
#include "schedule/schedule.h"

namespace arsf::attack {

/// Static round setup shared by every decision in a round.
struct AttackSetup {
  int n = 0;                        ///< total number of sensors
  int f = 0;                        ///< fusion parameter (f < ceil(n/2))
  std::vector<Tick> widths;         ///< widths by SensorId
  std::vector<SensorId> attacked;   ///< compromised sensor ids (sorted)
  sched::Order order;               ///< slot order for this round

  [[nodiscard]] std::size_t fa() const { return attacked.size(); }
};

/// Builds the round setup from a system configuration: tick widths via
/// @p quant, attacked ids sorted, order validated.  Throws
/// std::invalid_argument on inconsistencies (bad order, attacked id out of
/// range, fa > f).
[[nodiscard]] AttackSetup make_setup(const SystemConfig& config, const Quantizer& quant,
                                     std::vector<SensorId> attacked, sched::Order order);

/// Knowledge snapshot at one of the attacker's slots.
struct AttackContext {
  const AttackSetup* setup = nullptr;

  /// Intersection of the correct readings of all compromised sensors; the
  /// true value is guaranteed to lie inside.
  TickInterval delta;

  /// Correct intervals already transmitted (in slot order).
  std::vector<TickInterval> seen;

  /// Her own already-transmitted intervals (in slot order).
  std::vector<TickInterval> my_sent;

  /// Slot she is deciding for (0-based; == remaining_slots.front()).
  std::size_t current_slot = 0;

  /// Her remaining slots, ascending (first is current_slot), with the widths
  /// and correct readings of the sensors owning them.
  std::vector<std::size_t> remaining_slots;
  std::vector<Tick> remaining_widths;
  std::vector<TickInterval> remaining_readings;

  /// Widths of the correct sensors that transmit *after* current_slot
  /// (multiset; the attacker knows widths from the schedule but not values).
  std::vector<Tick> unseen_widths;

  /// Oracle channel: actual placements of the unseen correct intervals.
  /// Empty in honest play; filled only for the "oracle" upper-bound policy.
  std::vector<TickInterval> unseen_actual;

  [[nodiscard]] int transmitted() const {
    return static_cast<int>(seen.size() + my_sent.size());
  }
  /// Number of not-yet-sent compromised intervals (paper's `far`),
  /// including the one being decided.
  [[nodiscard]] int far() const { return static_cast<int>(remaining_slots.size()); }

  /// Posterior support of the true value given everything she has seen:
  /// Delta intersected with every seen correct interval.  Non-empty in any
  /// reachable state (the true value lies in all of them).
  [[nodiscard]] TickInterval truth_support() const {
    TickInterval support = delta;
    for (const auto& iv : seen) support = support.intersect(iv);
    return support;
  }
};

}  // namespace arsf::attack
