#include "schedule/schedule.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace arsf::sched {

std::string to_string(ScheduleKind kind) {
  switch (kind) {
    case ScheduleKind::kAscending: return "ascending";
    case ScheduleKind::kDescending: return "descending";
    case ScheduleKind::kRandom: return "random";
    case ScheduleKind::kFixed: return "fixed";
    case ScheduleKind::kTrustedLast: return "trusted-last";
  }
  return "unknown";
}

ScheduleKind schedule_kind_from_string(const std::string& text) {
  for (ScheduleKind kind : {ScheduleKind::kAscending, ScheduleKind::kDescending,
                            ScheduleKind::kRandom, ScheduleKind::kFixed,
                            ScheduleKind::kTrustedLast}) {
    if (to_string(kind) == text) return kind;
  }
  throw std::invalid_argument("schedule_kind_from_string: unknown schedule '" + text + "'");
}

namespace {

Order identity_order(std::size_t n) {
  Order order(n);
  std::iota(order.begin(), order.end(), SensorId{0});
  return order;
}

}  // namespace

Order ascending_order(const SystemConfig& config) {
  Order order = identity_order(config.n());
  std::stable_sort(order.begin(), order.end(), [&](SensorId a, SensorId b) {
    return config.sensors[a].width < config.sensors[b].width;
  });
  return order;
}

Order descending_order(const SystemConfig& config) {
  Order order = identity_order(config.n());
  std::stable_sort(order.begin(), order.end(), [&](SensorId a, SensorId b) {
    return config.sensors[a].width > config.sensors[b].width;
  });
  return order;
}

Order random_order(std::size_t n, support::Rng& rng) {
  auto perm = rng.permutation(n);
  return Order(perm.begin(), perm.end());
}

Order trusted_last_order(const SystemConfig& config) {
  Order order = ascending_order(config);
  std::stable_partition(order.begin(), order.end(),
                        [&](SensorId id) { return !config.sensors[id].trusted; });
  return order;
}

bool is_valid_order(const Order& order, std::size_t n) {
  if (order.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (SensorId id : order) {
    if (id >= n || seen[id]) return false;
    seen[id] = true;
  }
  return true;
}

std::size_t slot_of(const Order& order, SensorId id) {
  for (std::size_t slot = 0; slot < order.size(); ++slot) {
    if (order[slot] == id) return slot;
  }
  throw std::out_of_range("slot_of: sensor not in order");
}

ScheduleGenerator ScheduleGenerator::fixed(Order order) {
  const std::size_t n = order.size();
  return ScheduleGenerator{ScheduleKind::kFixed, std::move(order), n, 0};
}

ScheduleGenerator ScheduleGenerator::of_kind(ScheduleKind kind, const SystemConfig& config,
                                             std::uint64_t seed) {
  switch (kind) {
    case ScheduleKind::kAscending:
      return ScheduleGenerator{kind, ascending_order(config), config.n(), seed};
    case ScheduleKind::kDescending:
      return ScheduleGenerator{kind, descending_order(config), config.n(), seed};
    case ScheduleKind::kTrustedLast:
      return ScheduleGenerator{kind, trusted_last_order(config), config.n(), seed};
    case ScheduleKind::kRandom:
      return ScheduleGenerator{kind, identity_order(config.n()), config.n(), seed};
    case ScheduleKind::kFixed:
      return ScheduleGenerator{kind, identity_order(config.n()), config.n(), seed};
  }
  throw std::invalid_argument("ScheduleGenerator: unknown kind");
}

const Order& ScheduleGenerator::next() {
  if (kind_ == ScheduleKind::kRandom) order_ = random_order(n_, rng_);
  return order_;
}

std::string to_string(AttackedSetRule rule) {
  switch (rule) {
    case AttackedSetRule::kSmallestWidths: return "smallest-widths";
    case AttackedSetRule::kLargestWidths: return "largest-widths";
    case AttackedSetRule::kRandom: return "random";
    case AttackedSetRule::kLastSlots: return "last-slots";
    case AttackedSetRule::kFirstSlots: return "first-slots";
  }
  return "unknown";
}

std::vector<SensorId> choose_attacked_set(const SystemConfig& config, const Order& order,
                                          std::size_t fa, AttackedSetRule rule,
                                          support::Rng* rng) {
  const std::size_t n = config.n();
  if (fa > n) throw std::invalid_argument("choose_attacked_set: fa > n");

  std::vector<SensorId> ids = [&] {
    std::vector<SensorId> all(n);
    std::iota(all.begin(), all.end(), SensorId{0});
    return all;
  }();

  auto slot_or_id = [&](SensorId id) {
    // Fall back to id ordering when no slot order is supplied.
    return order.empty() ? id : slot_of(order, id);
  };

  switch (rule) {
    case AttackedSetRule::kSmallestWidths:
      std::sort(ids.begin(), ids.end(), [&](SensorId a, SensorId b) {
        if (config.sensors[a].width != config.sensors[b].width) {
          return config.sensors[a].width < config.sensors[b].width;
        }
        return slot_or_id(a) > slot_or_id(b);  // tie: later slot favours attacker
      });
      break;
    case AttackedSetRule::kLargestWidths:
      std::sort(ids.begin(), ids.end(), [&](SensorId a, SensorId b) {
        if (config.sensors[a].width != config.sensors[b].width) {
          return config.sensors[a].width > config.sensors[b].width;
        }
        return slot_or_id(a) > slot_or_id(b);
      });
      break;
    case AttackedSetRule::kLastSlots:
      std::sort(ids.begin(), ids.end(),
                [&](SensorId a, SensorId b) { return slot_or_id(a) > slot_or_id(b); });
      break;
    case AttackedSetRule::kFirstSlots:
      std::sort(ids.begin(), ids.end(),
                [&](SensorId a, SensorId b) { return slot_or_id(a) < slot_or_id(b); });
      break;
    case AttackedSetRule::kRandom: {
      if (rng == nullptr) {
        throw std::invalid_argument("choose_attacked_set: kRandom needs an Rng");
      }
      std::vector<std::size_t> perm = rng->permutation(n);
      ids.assign(perm.begin(), perm.end());
      break;
    }
  }

  ids.resize(fa);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace arsf::sched
