#pragma once
// Communication schedules (paper, Section IV).
//
// Sensors transmit on the shared bus in fixed slots; the only information
// available a-priori for ordering them is the interval widths.  The paper
// studies:
//
//   * Ascending  — most precise (smallest interval) sensors first.  The
//     paper's recommendation: an attacker who compromises the precise
//     sensors (her best move, Thms 3/4) is forced to transmit before seeing
//     any correct interval.
//   * Descending — least precise first; the attacker of precise sensors
//     transmits last with full knowledge.
//   * Random     — fresh random order every round (discussed with Table II).
//   * TrustedLast — hard-to-spoof sensors (e.g. IMU) last so nobody learns
//     their measurements beforehand (paper, Section IV-C).
//
// Ties between equal widths are broken by sensor id (deterministic); the
// experiment layer can still hand the attacker the most favourable sensor
// among equals via AttackedSetRule.

#include <string>
#include <vector>

#include "core/config.h"
#include "support/rng.h"

namespace arsf::sched {

/// Transmission order: order[k] is the SensorId that owns slot k.
using Order = std::vector<SensorId>;

enum class ScheduleKind { kAscending, kDescending, kRandom, kFixed, kTrustedLast };

[[nodiscard]] std::string to_string(ScheduleKind kind);
/// Inverse of to_string(); throws std::invalid_argument on an unknown name.
[[nodiscard]] ScheduleKind schedule_kind_from_string(const std::string& text);

/// Sorts by (width ascending, id ascending).
[[nodiscard]] Order ascending_order(const SystemConfig& config);
/// Sorts by (width descending, id ascending).
[[nodiscard]] Order descending_order(const SystemConfig& config);
/// Uniform random permutation.
[[nodiscard]] Order random_order(std::size_t n, support::Rng& rng);
/// Untrusted sensors in ascending-width order first, trusted sensors last
/// (also ascending among themselves).
[[nodiscard]] Order trusted_last_order(const SystemConfig& config);

/// True iff @p order is a permutation of {0..n-1}.
[[nodiscard]] bool is_valid_order(const Order& order, std::size_t n);

/// Slot index of @p id within @p order; throws std::out_of_range if absent.
[[nodiscard]] std::size_t slot_of(const Order& order, SensorId id);

/// Produces the order for each fusion round.  Fixed kinds return the same
/// order every round; kRandom reshuffles (seeded, reproducible).
class ScheduleGenerator {
 public:
  /// Fixed generator from an explicit order.
  static ScheduleGenerator fixed(Order order);
  /// Generator for a named kind.  @p seed only matters for kRandom.
  static ScheduleGenerator of_kind(ScheduleKind kind, const SystemConfig& config,
                                   std::uint64_t seed = 0x5eedULL);

  /// Order to use for the next round (kRandom draws a fresh permutation).
  [[nodiscard]] const Order& next();
  /// Last order handed out (valid after the first next()).
  [[nodiscard]] const Order& current() const { return order_; }
  [[nodiscard]] ScheduleKind kind() const { return kind_; }

 private:
  ScheduleGenerator(ScheduleKind kind, Order order, std::size_t n, std::uint64_t seed)
      : kind_(kind), order_(std::move(order)), n_(n), rng_(seed) {}

  ScheduleKind kind_;
  Order order_;
  std::size_t n_;
  support::Rng rng_;
};

/// Which sensors the attacker compromises (the paper leaves this to the
/// threat model; Theorems 3/4 argue the smallest widths are the strongest
/// choice, which is the evaluation default).
enum class AttackedSetRule {
  kSmallestWidths,  ///< fa smallest widths; ties -> latest slot (attacker-favourable)
  kLargestWidths,   ///< fa largest widths; ties -> latest slot
  kRandom,          ///< uniformly random fa-subset
  kLastSlots,       ///< the fa sensors transmitting last
  kFirstSlots,      ///< the fa sensors transmitting first
};

[[nodiscard]] std::string to_string(AttackedSetRule rule);

/// Chooses the attacked set per @p rule.  @p order is the (typical) slot
/// order used to resolve ties / slot-based rules; @p rng is required only for
/// kRandom.  Result is sorted by id.
[[nodiscard]] std::vector<SensorId> choose_attacked_set(const SystemConfig& config,
                                                        const Order& order, std::size_t fa,
                                                        AttackedSetRule rule,
                                                        support::Rng* rng = nullptr);

}  // namespace arsf::sched
