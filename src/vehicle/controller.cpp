#include "vehicle/controller.h"

#include <algorithm>

namespace arsf::vehicle {

double PIController::update(double error, double dt) {
  const double tentative_integral = integral_ + error * dt;
  double command = kp_ * error + ki_ * tentative_integral;
  if (command > limit_) {
    command = limit_;  // anti-windup: do not integrate past saturation
  } else if (command < -limit_) {
    command = -limit_;
  } else {
    integral_ = tentative_integral;
  }
  return command;
}

double SafetySupervisor::supervise(double low_level_command, const Interval& fused) {
  ++rounds_;
  const bool upper = envelope_.violates_upper(fused);
  const bool lower = envelope_.violates_lower(fused);
  if (upper) ++upper_violations_;
  if (lower) ++lower_violations_;
  // Preemption: when the envelope cannot be guaranteed, steer conservatively
  // back towards the target rather than trusting the low-level command.
  if (upper && !lower) return std::min(low_level_command, -1.0);
  if (lower && !upper) return std::max(low_level_command, 1.0);
  return low_level_command;
}

}  // namespace arsf::vehicle
