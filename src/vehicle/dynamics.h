#pragma once
// Longitudinal vehicle dynamics for the LandShark case study.
//
// The paper's evaluation only needs a plant whose speed a low-level
// controller can hold near the target; a first-order longitudinal model with
// quadratic-free drag and actuator limits is sufficient and standard:
//
//     v' = (u - c_drag * v) ,  u clamped to [-max_brake, max_accel]
//
// Units are mph and seconds throughout (matching the paper's numbers).

namespace arsf::vehicle {

struct VehicleParams {
  double drag = 0.08;        ///< 1/s, linear drag coefficient
  double max_accel = 3.0;    ///< mph/s
  double max_brake = 5.0;    ///< mph/s
  double initial_speed = 0.0;
};

/// First-order longitudinal speed model.
class Longitudinal {
 public:
  explicit Longitudinal(VehicleParams params = {})
      : params_(params), speed_(params.initial_speed) {}

  /// Advances the model by @p dt seconds under acceleration command @p u
  /// (mph/s, clamped to the actuator limits).  Returns the new speed.
  double step(double u, double dt);

  [[nodiscard]] double speed() const noexcept { return speed_; }
  [[nodiscard]] const VehicleParams& params() const noexcept { return params_; }
  void set_speed(double v) noexcept { speed_ = v; }

 private:
  VehicleParams params_;
  double speed_;
};

}  // namespace arsf::vehicle
