#include "vehicle/casestudy.h"

namespace arsf::vehicle {

CaseStudyResult run_case_study(const CaseStudyConfig& config) {
  LandSharkSensing sensing = make_landshark_sensing(config.quant_step);

  support::Rng rng{config.seed};
  support::Rng sensor_rng = rng.split();
  support::Rng policy_rng = rng.split();

  sched::ScheduleGenerator generator =
      sched::ScheduleGenerator::of_kind(config.schedule, sensing.config, rng.next());

  // The attacked set is chosen against the representative order so width
  // ties resolve to the attacker-favourable slot (for kRandom the ascending
  // order stands in; slots vary per round anyway).
  const sched::Order representative = config.schedule == sched::ScheduleKind::kRandom
                                          ? sched::ascending_order(sensing.config)
                                          : generator.next();
  CaseStudyResult result;
  result.attacked = config.attack_enabled
                        ? sched::choose_attacked_set(sensing.config, representative, 1,
                                                     config.attacked_rule, &rng)
                        : std::vector<SensorId>{};

  attack::ExpectationPolicy policy{config.policy_options};
  SpeedPipeline attacked_pipeline{sensing, result.attacked,
                                  config.attack_enabled ? &policy : nullptr};
  SpeedPipeline benign_pipeline{sensing, {}, nullptr};

  PlatoonParams platoon_params;
  platoon_params.target_speed = config.target_speed;
  Platoon platoon{platoon_params};
  constexpr std::size_t kAttackedVehicle = 1;  // middle follower

  SafetySupervisor supervisor{
      SafetyEnvelope{config.target_speed, config.delta_upper, config.delta_lower}};

  std::vector<double> commands(platoon.size(), 0.0);
  std::vector<double> last_estimate(platoon.size(), config.target_speed);

  for (std::uint64_t round = 0; round < config.rounds; ++round) {
    if (config.cancel != nullptr) config.cancel->check();
    const sched::Order& order = generator.next();

    for (std::size_t v = 0; v < platoon.size(); ++v) {
      SpeedPipeline& pipeline = v == kAttackedVehicle ? attacked_pipeline : benign_pipeline;
      const sim::RoundResult measured =
          pipeline.measure(platoon.speed(v), order, v == kAttackedVehicle ? policy_rng
                                                                          : sensor_rng,
                           round);
      if (measured.estimate) last_estimate[v] = *measured.estimate;
      double command = platoon.controller_command(v, last_estimate[v], config.dt);
      if (v == kAttackedVehicle) {
        const Interval fused =
            measured.fusion.interval.value_or(Interval::empty_interval());
        command = supervisor.supervise(command, fused);
        result.fused_width.add(measured.fusion.width());
        result.estimate_bias.add(last_estimate[v] - platoon.speed(v));
        if (measured.attacked_detected) ++result.detected_rounds;
      }
      commands[v] = command;
    }

    platoon.step_with_commands(commands, config.dt);
    result.true_speed.add(platoon.speed(kAttackedVehicle));
  }

  result.rounds = supervisor.rounds();
  result.collided = platoon.collided();
  if (result.rounds > 0) {
    const double denominator = static_cast<double>(result.rounds);
    result.pct_upper = 100.0 * static_cast<double>(supervisor.upper_violations()) / denominator;
    result.pct_lower = 100.0 * static_cast<double>(supervisor.lower_violations()) / denominator;
  }
  return result;
}

std::vector<std::pair<sched::ScheduleKind, CaseStudyResult>> reproduce_table2(
    CaseStudyConfig base) {
  std::vector<std::pair<sched::ScheduleKind, CaseStudyResult>> rows;
  for (const sched::ScheduleKind kind :
       {sched::ScheduleKind::kAscending, sched::ScheduleKind::kDescending,
        sched::ScheduleKind::kRandom}) {
    CaseStudyConfig config = base;
    config.schedule = kind;
    rows.emplace_back(kind, run_case_study(config));
  }
  return rows;
}

std::span<const Table2Reference> paper_table2_reference() {
  static const std::vector<Table2Reference> reference = {
      {0.0, 0.0},      // Ascending
      {17.42, 17.65},  // Descending
      {5.72, 5.97},    // Random
  };
  return reference;
}

}  // namespace arsf::vehicle
