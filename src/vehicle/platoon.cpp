#include "vehicle/platoon.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace arsf::vehicle {

Platoon::Platoon(PlatoonParams params) : params_(params) {
  if (params_.size < 1) throw std::invalid_argument("Platoon: need at least one vehicle");
  members_.reserve(params_.size);
  VehicleParams vp = params_.vehicle;
  vp.initial_speed = params_.target_speed;  // platoon starts at cruise
  for (std::size_t i = 0; i < params_.size; ++i) {
    // Leader at the largest position; gaps descending behind it.
    const double position =
        static_cast<double>(params_.size - 1 - i) * params_.initial_gap;
    members_.emplace_back(vp, params_.kp, params_.ki, params_.command_limit, position);
  }
}

void Platoon::step(std::span<const double> speed_estimates, double dt) {
  if (speed_estimates.size() != members_.size()) {
    throw std::invalid_argument("Platoon::step: one estimate per vehicle required");
  }
  for (std::size_t i = 0; i < members_.size(); ++i) {
    PlatoonMember& member = members_[i];
    const double command = controller_command(i, speed_estimates[i], dt);
    member.dynamics.step(command, dt);
    member.position += member.dynamics.speed() * dt;
  }
  if (min_gap() <= 0.0) collided_ = true;
}

void Platoon::step_with_commands(std::span<const double> commands, double dt) {
  if (commands.size() != members_.size()) {
    throw std::invalid_argument("Platoon::step_with_commands: one command per vehicle");
  }
  for (std::size_t i = 0; i < members_.size(); ++i) {
    PlatoonMember& member = members_[i];
    member.dynamics.step(commands[i], dt);
    member.position += member.dynamics.speed() * dt;
  }
  if (min_gap() <= 0.0) collided_ = true;
}

double Platoon::controller_command(std::size_t i, double estimate, double dt) {
  PlatoonMember& member = members_.at(i);
  // Drag feedforward holds cruise without waiting for the integrator, so the
  // platoon does not dip below the safety envelope during start-up.
  const double feedforward = params_.vehicle.drag * params_.target_speed;
  return feedforward + member.controller.update(params_.target_speed - estimate, dt);
}

double Platoon::gap(std::size_t i) const {
  if (i == 0 || i >= members_.size()) {
    throw std::out_of_range("Platoon::gap: follower index required");
  }
  return members_[i - 1].position - members_[i].position;
}

double Platoon::min_gap() const {
  double smallest = std::numeric_limits<double>::infinity();
  for (std::size_t i = 1; i < members_.size(); ++i) smallest = std::min(smallest, gap(i));
  return smallest;
}

}  // namespace arsf::vehicle
