#pragma once
// Table II case-study runner (paper, Section IV-B).
//
// Three LandSharks drive in a platoon at v = 10 mph.  One sensor of the
// middle vehicle is compromised (the paper assumes at most one attacked
// sensor; the default rule picks an encoder — the most precise sensor,
// Theorem 4's strongest choice).  For each communication schedule
// (Ascending / Descending / Random) the runner counts the percentage of
// fusion rounds whose fusion interval exceeds v + delta1 = 10.5 mph or drops
// below v - delta2 = 9.5 mph — the two rows of Table II.

#include "sim/engine/cancel.h"
#include "sim/montecarlo.h"
#include "support/stats.h"
#include "vehicle/landshark.h"
#include "vehicle/platoon.h"

namespace arsf::vehicle {

struct CaseStudyConfig {
  sched::ScheduleKind schedule = sched::ScheduleKind::kAscending;
  std::size_t rounds = 10'000;
  std::uint64_t seed = 0x1a2db4d5ULL;
  double target_speed = 10.0;  ///< v (mph)
  double delta_upper = 0.5;    ///< delta1
  double delta_lower = 0.5;    ///< delta2
  double dt = 0.1;             ///< seconds per fusion round
  double quant_step = 0.01;    ///< attacker grid (mph)
  bool attack_enabled = true;
  sched::AttackedSetRule attacked_rule = sched::AttackedSetRule::kSmallestWidths;
  attack::ExpectationOptions policy_options = default_policy_options();
  /// Optional cooperative cancellation (nullptr = not cancellable): polled
  /// once per simulated round, aborts via sim::engine::CancelledError.
  const sim::engine::CancelToken* cancel = nullptr;

  /// Cost-bounded Bayesian attacker for the continuous domain: posterior
  /// subsampling, strided candidates, indifferent tie-breaking.
  [[nodiscard]] static attack::ExpectationOptions default_policy_options() {
    attack::ExpectationOptions options;
    options.max_joint = 1;          // fa = 1 in the case study
    options.max_completions = 48;
    options.candidate_stride = 4;
    options.memoize = false;        // continuous domain: keys never repeat
    options.random_tie_break = true;
    return options;
  }
};

struct CaseStudyResult {
  double pct_upper = 0.0;  ///< % rounds with fusion upper bound > v + delta1
  double pct_lower = 0.0;  ///< % rounds with fusion lower bound < v - delta2
  std::uint64_t rounds = 0;
  std::uint64_t detected_rounds = 0;   ///< attacker flagged (expect 0)
  std::vector<SensorId> attacked;      ///< compromised sensor ids
  support::RunningStats fused_width;   ///< fusion-interval width (mph)
  support::RunningStats true_speed;    ///< attacked vehicle's actual speed
  support::RunningStats estimate_bias; ///< estimate - true speed
  bool collided = false;
};

[[nodiscard]] CaseStudyResult run_case_study(const CaseStudyConfig& config);

/// Runs Ascending, Descending and Random with the same base configuration.
[[nodiscard]] std::vector<std::pair<sched::ScheduleKind, CaseStudyResult>> reproduce_table2(
    CaseStudyConfig base = {});

/// Paper-reported Table II percentages {upper, lower} for
/// {Ascending, Descending, Random}.
struct Table2Reference {
  double upper;
  double lower;
};
[[nodiscard]] std::span<const Table2Reference> paper_table2_reference();

}  // namespace arsf::vehicle
