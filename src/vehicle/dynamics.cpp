#include "vehicle/dynamics.h"

#include <algorithm>

namespace arsf::vehicle {

double Longitudinal::step(double u, double dt) {
  u = std::clamp(u, -params_.max_brake, params_.max_accel);
  const double accel = u - params_.drag * speed_;
  speed_ += accel * dt;
  speed_ = std::max(speed_, 0.0);  // no reverse in the platoon scenario
  return speed_;
}

}  // namespace arsf::vehicle
