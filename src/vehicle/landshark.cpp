#include "vehicle/landshark.h"

namespace arsf::vehicle {

LandSharkSensing make_landshark_sensing(double quant_step) {
  LandSharkSensing sensing;
  sensing.suite = sensors::landshark_suite(/*bus_grid=*/quant_step);
  sensing.config = sensors::landshark_config();
  sensing.quant = Quantizer{quant_step};
  (void)tick_widths(sensing.config, sensing.quant);  // validate grid fit
  return sensing;
}

SpeedPipeline::SpeedPipeline(LandSharkSensing sensing, std::vector<SensorId> attacked,
                             attack::AttackPolicy* policy)
    : sensing_(std::move(sensing)),
      round_(sensing_.config, sensing_.quant, std::move(attacked), policy) {}

sim::RoundResult SpeedPipeline::measure(double true_speed, const sched::Order& order,
                                        support::Rng& rng, std::uint64_t round_index) {
  std::vector<Interval> readings;
  readings.reserve(sensing_.suite.size());
  for (const auto& sensor : sensing_.suite) {
    readings.push_back(sensor.sample(true_speed, rng).interval);
  }
  return round_.run(order, readings, rng, round_index);
}

}  // namespace arsf::vehicle
