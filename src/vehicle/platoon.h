#pragma once
// Three-LandShark platoon (paper, Section IV-B).
//
// The leader sets a speed target v for all vehicles; every vehicle runs a
// low-level controller holding its own speed at v using its *fused* speed
// estimate.  Speeding beyond v + delta1 risks rear-ending the vehicle ahead
// (or the leader hitting an obstacle); dropping below v - delta2 risks being
// hit from behind.  The platoon model tracks positions so tests can assert
// the geometric consequences (gap shrinkage/collisions) of estimate bias.

#include <span>
#include <vector>

#include "vehicle/controller.h"
#include "vehicle/dynamics.h"

namespace arsf::vehicle {

struct PlatoonParams {
  std::size_t size = 3;
  double target_speed = 10.0;    ///< v (mph)
  double initial_gap = 20.0;     ///< inter-vehicle gap (mph-seconds ~ distance)
  double kp = 1.2;
  double ki = 0.4;
  double command_limit = 3.0;    ///< mph/s
  VehicleParams vehicle{};
};

/// One vehicle's kinematic state within the platoon.
struct PlatoonMember {
  Longitudinal dynamics;
  PIController controller;
  double position = 0.0;  ///< along-track position (mph-seconds)

  PlatoonMember(const VehicleParams& params, double kp, double ki, double limit,
                double initial_position)
      : dynamics(params), controller(kp, ki, limit), position(initial_position) {}
};

class Platoon {
 public:
  explicit Platoon(PlatoonParams params = {});

  /// Advances all vehicles by @p dt.  @p speed_estimates[i] is vehicle i's
  /// fused speed estimate (what its controller believes); pass the true
  /// speeds for an ideal-sensing platoon.
  void step(std::span<const double> speed_estimates, double dt);

  /// Advances all vehicles with externally supplied acceleration commands
  /// (the case study routes PI output through the safety supervisor first).
  void step_with_commands(std::span<const double> commands, double dt);

  /// PI command vehicle @p i would issue for @p estimate (exposed so callers
  /// using step_with_commands share the same controller state).
  [[nodiscard]] double controller_command(std::size_t i, double estimate, double dt);

  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] double speed(std::size_t i) const { return members_[i].dynamics.speed(); }
  [[nodiscard]] double position(std::size_t i) const { return members_[i].position; }
  /// Gap between vehicle i and the one ahead of it (i >= 1).
  [[nodiscard]] double gap(std::size_t i) const;
  [[nodiscard]] double min_gap() const;
  [[nodiscard]] bool collided() const noexcept { return collided_; }
  [[nodiscard]] const PlatoonParams& params() const noexcept { return params_; }

 private:
  PlatoonParams params_;
  std::vector<PlatoonMember> members_;  ///< index 0 = leader
  bool collided_ = false;
};

}  // namespace arsf::vehicle
