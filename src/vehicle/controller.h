#pragma once
// Low-level cruise controller and high-level safety supervisor
// (paper, Section IV-B).
//
// Each LandShark runs a low-level controller holding speed at the platoon
// target v.  Two safety constraints are encoded on the *fusion interval*:
// if its upper bound exceeds v + delta1 or its lower bound drops below
// v - delta2, a high-level algorithm preempts the low-level controller.
// Table II counts exactly these two violation events per schedule.

#include <cstdint>

#include "core/interval.h"

namespace arsf::vehicle {

/// PI controller with output clamping and integrator anti-windup.
class PIController {
 public:
  PIController(double kp, double ki, double output_limit)
      : kp_(kp), ki_(ki), limit_(output_limit) {}

  /// One update from tracking error (target - estimate); returns the
  /// acceleration command in mph/s.
  double update(double error, double dt);

  void reset() noexcept { integral_ = 0.0; }
  [[nodiscard]] double integral() const noexcept { return integral_; }

 private:
  double kp_;
  double ki_;
  double limit_;
  double integral_ = 0.0;
};

/// Safety envelope checks on the fusion interval.
struct SafetyEnvelope {
  double target = 10.0;  ///< platoon speed v (mph)
  double delta_upper = 0.5;  ///< delta1: max overshoot before preemption
  double delta_lower = 0.5;  ///< delta2: max undershoot before preemption

  [[nodiscard]] double upper_bound() const noexcept { return target + delta_upper; }
  [[nodiscard]] double lower_bound() const noexcept { return target - delta_lower; }

  [[nodiscard]] bool violates_upper(const Interval& fused) const {
    return !fused.is_empty() && fused.hi > upper_bound();
  }
  [[nodiscard]] bool violates_lower(const Interval& fused) const {
    return !fused.is_empty() && fused.lo < lower_bound();
  }
};

/// High-level supervisor: preempts the low-level command when the fusion
/// interval leaves the envelope (brakes on upper violations, accelerates on
/// lower ones), and keeps violation counts for Table II.
class SafetySupervisor {
 public:
  explicit SafetySupervisor(SafetyEnvelope envelope) : envelope_(envelope) {}

  /// Filters the low-level command given the current fusion interval.
  double supervise(double low_level_command, const Interval& fused);

  [[nodiscard]] const SafetyEnvelope& envelope() const noexcept { return envelope_; }
  [[nodiscard]] std::uint64_t upper_violations() const noexcept { return upper_violations_; }
  [[nodiscard]] std::uint64_t lower_violations() const noexcept { return lower_violations_; }
  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }
  void reset_counts() noexcept { upper_violations_ = lower_violations_ = rounds_ = 0; }

 private:
  SafetyEnvelope envelope_;
  std::uint64_t upper_violations_ = 0;
  std::uint64_t lower_violations_ = 0;
  std::uint64_t rounds_ = 0;
};

}  // namespace arsf::vehicle
