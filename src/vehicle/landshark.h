#pragma once
// LandShark sensing pipeline: the four speed sensors of the case study wired
// to the bus-backed fusion protocol.

#include "attack/expectation.h"
#include "schedule/schedule.h"
#include "sensors/models.h"
#include "sim/protocol.h"

namespace arsf::vehicle {

/// Static description of a LandShark's speed-sensing subsystem.
struct LandSharkSensing {
  std::vector<sensors::AbstractSensor> suite;  ///< gps, camera, encoder x2
  SystemConfig config;                         ///< widths {1, 2, 0.2, 0.2}, f = 1
  Quantizer quant{0.01};                       ///< attacker grid (mph)
};

[[nodiscard]] LandSharkSensing make_landshark_sensing(double quant_step = 0.01);

/// Per-vehicle sensing-and-fusion pipeline.  Samples every sensor at the
/// true speed, runs one protocol round over the shared bus (with the
/// attacker's policy deciding at the compromised slots) and returns the
/// fused result.
class SpeedPipeline {
 public:
  /// @param attacked  compromised sensor ids (empty -> benign pipeline).
  /// @param policy    attacker policy (may be nullptr).
  SpeedPipeline(LandSharkSensing sensing, std::vector<SensorId> attacked,
                attack::AttackPolicy* policy);

  /// One measurement round at the given true speed.
  [[nodiscard]] sim::RoundResult measure(double true_speed, const sched::Order& order,
                                         support::Rng& rng, std::uint64_t round_index);

  [[nodiscard]] const LandSharkSensing& sensing() const noexcept { return sensing_; }
  [[nodiscard]] const sim::FusionRound& round_driver() const noexcept { return round_; }

 private:
  LandSharkSensing sensing_;
  sim::FusionRound round_;
};

}  // namespace arsf::vehicle
