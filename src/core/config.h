#pragma once
// System configuration types shared by the scheduling, attack and simulation
// layers: per-sensor interval specifications and the fused system setup.
//
// Interval widths are "known and fixed" a-priori (paper, Section II-B): they
// come from manufacturer precision guarantees, implementation guarantees and
// sampling jitter, not from run-time data.  Everything downstream (schedules,
// attacked-set selection, attacker candidate grids) keys off these widths.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/bounds.h"
#include "core/interval.h"

namespace arsf {

using SensorId = std::size_t;

/// Static description of one abstract sensor.
struct SensorSpec {
  std::string name;      ///< e.g. "gps", "encoder-left"
  double width = 0.0;    ///< guaranteed interval width (2*precision + jitter)
  bool trusted = false;  ///< hard to spoof (paper: e.g. IMU); see TrustedLast

  [[nodiscard]] bool valid() const { return width > 0.0; }
};

/// The fused sensing subsystem: sensor specs plus the fusion parameter f.
struct SystemConfig {
  std::vector<SensorSpec> sensors;
  int f = 0;

  [[nodiscard]] std::size_t n() const { return sensors.size(); }

  [[nodiscard]] std::vector<double> widths() const {
    std::vector<double> ws;
    ws.reserve(sensors.size());
    for (const auto& s : sensors) ws.push_back(s.width);
    return ws;
  }

  /// Throws std::invalid_argument unless 1 <= n, every width > 0, and
  /// 0 <= f < ceil(n/2) (the paper's boundedness requirement).
  void validate() const {
    if (sensors.empty()) throw std::invalid_argument("SystemConfig: no sensors");
    for (const auto& s : sensors) {
      if (!s.valid()) throw std::invalid_argument("SystemConfig: sensor width must be > 0");
    }
    const int n_int = static_cast<int>(sensors.size());
    if (f < 0 || f > max_bounded_f(n_int)) {
      throw std::invalid_argument("SystemConfig: require 0 <= f < ceil(n/2)");
    }
  }
};

/// Builds a config from widths alone (names auto-generated "s0","s1",...);
/// f defaults to the paper's evaluation choice ceil(n/2)-1 when passed -1.
[[nodiscard]] SystemConfig make_config(std::span<const double> widths, int f = -1);
[[nodiscard]] SystemConfig make_config(std::initializer_list<double> widths, int f = -1);

/// Integer tick widths of a config under a quantiser; throws if any width is
/// not an integer multiple of the step (the exact-enumeration engines require
/// exact grids).
[[nodiscard]] std::vector<Tick> tick_widths(const SystemConfig& config, const Quantizer& quant);

}  // namespace arsf
