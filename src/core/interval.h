#pragma once
// Closed real intervals — the "abstract sensor" representation of the paper.
//
// Every sensor measurement is converted by the controller into a closed
// interval guaranteed to contain the true value whenever the sensor is
// correct (Section II-B of the paper).  The library works with two
// instantiations of the same template:
//
//   * arsf::Interval      — double endpoints, the public API type;
//   * arsf::TickInterval  — int64 "tick" endpoints used by the exhaustive
//     enumeration and attacker-optimisation engines, which discretise the
//     real line exactly as the paper's simulations do (footnote 5).
//
// An interval is *empty* iff lo > hi; the canonical empty interval is
// returned by BasicInterval<T>::empty_interval().

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

namespace arsf {

using Tick = std::int64_t;

template <typename T>
struct BasicInterval {
  T lo{};
  T hi{};

  constexpr BasicInterval() = default;
  constexpr BasicInterval(T lo_in, T hi_in) : lo(lo_in), hi(hi_in) {}

  /// Canonical empty interval (lo > hi).
  [[nodiscard]] static constexpr BasicInterval empty_interval() {
    return BasicInterval{T{1}, T{0}};
  }

  /// Interval of width w centred at m (the controller's construction from a
  /// measurement m with precision guarantee w/2).
  [[nodiscard]] static constexpr BasicInterval centered(T midpoint, T width) {
    return BasicInterval{static_cast<T>(midpoint - width / 2),
                         static_cast<T>(midpoint + width / 2)};
  }

  [[nodiscard]] constexpr bool is_empty() const { return lo > hi; }
  [[nodiscard]] constexpr T width() const { return is_empty() ? T{} : static_cast<T>(hi - lo); }
  [[nodiscard]] constexpr T midpoint() const { return static_cast<T>(lo + (hi - lo) / 2); }

  [[nodiscard]] constexpr bool contains(T x) const { return !is_empty() && lo <= x && x <= hi; }
  [[nodiscard]] constexpr bool contains(const BasicInterval& other) const {
    return other.is_empty() || (!is_empty() && lo <= other.lo && other.hi <= hi);
  }
  /// Closed intervals: touching endpoints count as intersecting.
  [[nodiscard]] constexpr bool intersects(const BasicInterval& other) const {
    return !is_empty() && !other.is_empty() && lo <= other.hi && other.lo <= hi;
  }

  [[nodiscard]] constexpr BasicInterval intersect(const BasicInterval& other) const {
    if (is_empty() || other.is_empty()) return empty_interval();
    const BasicInterval result{std::max(lo, other.lo), std::min(hi, other.hi)};
    return result.is_empty() ? empty_interval() : result;
  }

  /// Convex hull; the hull of anything with the empty interval is the other
  /// operand.
  [[nodiscard]] constexpr BasicInterval hull(const BasicInterval& other) const {
    if (is_empty()) return other;
    if (other.is_empty()) return *this;
    return BasicInterval{std::min(lo, other.lo), std::max(hi, other.hi)};
  }

  [[nodiscard]] constexpr BasicInterval translated(T delta) const {
    if (is_empty()) return *this;
    return BasicInterval{static_cast<T>(lo + delta), static_cast<T>(hi + delta)};
  }

  friend constexpr bool operator==(const BasicInterval& a, const BasicInterval& b) {
    if (a.is_empty() && b.is_empty()) return true;
    return a.lo == b.lo && a.hi == b.hi;
  }
};

using Interval = BasicInterval<double>;
using TickInterval = BasicInterval<Tick>;

/// Maps between continuous values and integer ticks on a uniform grid.
///
/// The enumeration/optimisation engines work on ticks; `step` is the grid
/// resolution (the paper: "we have discretized the real line with a
/// sufficiently high precision").
struct Quantizer {
  double step = 1.0;

  [[nodiscard]] Tick to_tick(double x) const {
    return static_cast<Tick>(std::llround(x / step));
  }
  [[nodiscard]] double to_value(Tick t) const { return static_cast<double>(t) * step; }

  [[nodiscard]] TickInterval to_ticks(const Interval& iv) const {
    if (iv.is_empty()) return TickInterval::empty_interval();
    return TickInterval{to_tick(iv.lo), to_tick(iv.hi)};
  }
  [[nodiscard]] Interval to_interval(const TickInterval& iv) const {
    if (iv.is_empty()) return Interval::empty_interval();
    return Interval{to_value(iv.lo), to_value(iv.hi)};
  }
};

/// "[lo, hi]" or "(empty)".
[[nodiscard]] std::string to_string(const Interval& iv);
[[nodiscard]] std::string to_string(const TickInterval& iv);

/// True if |a.lo - b.lo| and |a.hi - b.hi| are both within eps (or both empty).
[[nodiscard]] bool approx_equal(const Interval& a, const Interval& b, double eps = 1e-9);

}  // namespace arsf
