#include "core/estimate.h"

#include <stdexcept>
#include <vector>

#include "support/stats.h"

namespace arsf {

std::string to_string(Estimator estimator) {
  switch (estimator) {
    case Estimator::kFusedMidpoint: return "fused-midpoint";
    case Estimator::kMeanMidpoint: return "mean-midpoint";
    case Estimator::kMedianMidpoint: return "median-midpoint";
    case Estimator::kWeightedMidpoint: return "weighted-midpoint";
  }
  return "unknown";
}

std::optional<double> estimate(std::span<const Interval> intervals, int f, Estimator estimator) {
  switch (estimator) {
    case Estimator::kFusedMidpoint: return fused_midpoint(intervals, f);
    case Estimator::kMeanMidpoint: return mean_midpoint(intervals);
    case Estimator::kMedianMidpoint: return median_midpoint(intervals);
    case Estimator::kWeightedMidpoint: return weighted_midpoint(intervals);
  }
  throw std::invalid_argument("estimate: unknown estimator");
}

std::optional<double> fused_midpoint(std::span<const Interval> intervals, int f) {
  const FusionResult result = fuse(intervals, f);
  if (!result.interval) return std::nullopt;
  return result.interval->midpoint();
}

namespace {

std::vector<double> midpoints(std::span<const Interval> intervals) {
  std::vector<double> mids;
  mids.reserve(intervals.size());
  for (const auto& iv : intervals) mids.push_back(iv.midpoint());
  return mids;
}

}  // namespace

double mean_midpoint(std::span<const Interval> intervals) {
  const auto mids = midpoints(intervals);
  return support::mean_of(mids);
}

double median_midpoint(std::span<const Interval> intervals) {
  auto mids = midpoints(intervals);
  return support::median_of(mids);
}

double weighted_midpoint(std::span<const Interval> intervals) {
  // Weight 1/width; a zero-width interval is a perfectly precise sensor and
  // dominates, which we honour by returning its midpoint directly.
  double weight_sum = 0.0;
  double value_sum = 0.0;
  for (const auto& iv : intervals) {
    const double width = iv.width();
    if (width <= 0.0) return iv.midpoint();
    const double weight = 1.0 / width;
    weight_sum += weight;
    value_sum += weight * iv.midpoint();
  }
  return weight_sum > 0.0 ? value_sum / weight_sum : 0.0;
}

}  // namespace arsf
