#include "core/detection.h"

namespace arsf {

namespace {

template <typename T>
DetectionReport detect_impl(std::span<const BasicInterval<T>> intervals,
                            const BasicInterval<T>& fusion) {
  DetectionReport report;
  report.flagged.assign(intervals.size(), false);
  if (fusion.is_empty()) {
    report.fusion_empty = true;
    return report;
  }
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    if (!intervals[i].intersects(fusion)) {
      report.flagged[i] = true;
      ++report.num_flagged;
    }
  }
  return report;
}

}  // namespace

DetectionReport detect(std::span<const Interval> intervals, const FusionResult& fusion) {
  const Interval fused = fusion.interval.value_or(Interval::empty_interval());
  return detect_impl<double>(intervals, fused);
}

DetectionReport detect_ticks(std::span<const TickInterval> intervals,
                             const TickInterval& fusion) {
  return detect_impl<Tick>(intervals, fusion);
}

DetectionReport fuse_and_detect(std::span<const Interval> intervals, int f) {
  return detect(intervals, fuse(intervals, f));
}

}  // namespace arsf
