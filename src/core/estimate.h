#pragma once
// Point estimators on top of interval fusion.
//
// The controller ultimately feeds a single number into the control law; the
// paper's case study uses the fusion interval midpoint.  The remaining
// estimators are the standard non-resilient baselines (mean / median /
// precision-weighted mean of the interval midpoints) used by the ablation
// bench to show how much a stealthy attacker can bias them compared with the
// Marzullo midpoint.

#include <optional>
#include <span>
#include <string>

#include "core/fusion.h"
#include "core/interval.h"

namespace arsf {

enum class Estimator {
  kFusedMidpoint,     ///< midpoint of the Marzullo fusion interval
  kMeanMidpoint,      ///< arithmetic mean of interval midpoints
  kMedianMidpoint,    ///< median of interval midpoints
  kWeightedMidpoint,  ///< midpoints weighted by 1/width (precision weighting)
};

[[nodiscard]] std::string to_string(Estimator estimator);

/// Applies @p estimator; returns nullopt when the estimate is undefined
/// (kFusedMidpoint with an empty fusion region).
[[nodiscard]] std::optional<double> estimate(std::span<const Interval> intervals, int f,
                                             Estimator estimator);

/// Individual estimators (see enum for semantics).
[[nodiscard]] std::optional<double> fused_midpoint(std::span<const Interval> intervals, int f);
[[nodiscard]] double mean_midpoint(std::span<const Interval> intervals);
[[nodiscard]] double median_midpoint(std::span<const Interval> intervals);
[[nodiscard]] double weighted_midpoint(std::span<const Interval> intervals);

}  // namespace arsf
