#include "core/brooks_iyengar.h"

#include <algorithm>
#include <stdexcept>

namespace arsf {

BrooksIyengarResult brooks_iyengar(std::span<const Interval> intervals, int f) {
  const int n = static_cast<int>(intervals.size());
  if (n < 1) throw std::invalid_argument("brooks_iyengar: need at least one interval");
  if (f < 0 || f >= n) throw std::invalid_argument("brooks_iyengar: require 0 <= f < n");
  for (const auto& iv : intervals) {
    if (iv.is_empty()) throw std::invalid_argument("brooks_iyengar: empty input interval");
  }

  // Sweep all endpoints, tracking the overlap count on every elementary
  // segment; keep maximal runs with count >= n-f as weighted regions.
  struct Event {
    double x;
    int delta;
  };
  std::vector<Event> events;
  events.reserve(2 * static_cast<std::size_t>(n));
  for (const auto& iv : intervals) {
    events.push_back({iv.lo, +1});
    events.push_back({iv.hi, -1});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.x != b.x) return a.x < b.x;
    return a.delta > b.delta;  // starts before ends: closed intervals
  });

  BrooksIyengarResult result;
  result.threshold = n - f;

  int count = 0;
  double previous = 0.0;
  bool have_previous = false;
  for (const Event& event : events) {
    if (have_previous && count >= result.threshold && event.x >= previous) {
      // Elementary segment [previous, event.x] carries `count` overlaps;
      // merge with the last region when contiguous and equally weighted.
      if (!result.regions.empty() && result.regions.back().count == count &&
          result.regions.back().range.hi == previous) {
        result.regions.back().range.hi = event.x;
      } else {
        result.regions.push_back({Interval{previous, event.x}, count});
      }
    }
    count += event.delta;
    previous = event.x;
    have_previous = true;
  }

  if (!result.regions.empty()) {
    result.interval = Interval{result.regions.front().range.lo,
                               result.regions.back().range.hi};
    double weight_sum = 0.0;
    double value_sum = 0.0;
    for (const auto& region : result.regions) {
      // Weight by count times extent; degenerate (point) regions get the
      // count itself so single-point agreement still contributes.
      const double extent = std::max(region.range.width(), 1e-12);
      const double weight = static_cast<double>(region.count) * extent;
      weight_sum += weight;
      value_sum += weight * region.range.midpoint();
    }
    result.estimate = value_sum / weight_sum;
  }
  return result;
}

BrooksIyengarResult brooks_iyengar(const std::vector<Interval>& intervals, int f) {
  return brooks_iyengar(std::span<const Interval>{intervals}, f);
}

}  // namespace arsf
