#include "core/interval.h"

#include "support/ascii.h"

namespace arsf {

std::string to_string(const Interval& iv) {
  if (iv.is_empty()) return "(empty)";
  return "[" + support::format_number(iv.lo) + ", " + support::format_number(iv.hi) + "]";
}

std::string to_string(const TickInterval& iv) {
  if (iv.is_empty()) return "(empty)";
  return "[" + std::to_string(iv.lo) + ", " + std::to_string(iv.hi) + "]";
}

bool approx_equal(const Interval& a, const Interval& b, double eps) {
  if (a.is_empty() || b.is_empty()) return a.is_empty() && b.is_empty();
  return std::abs(a.lo - b.lo) <= eps && std::abs(a.hi - b.hi) <= eps;
}

}  // namespace arsf
