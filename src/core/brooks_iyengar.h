#pragma once
// Brooks-Iyengar hybrid fusion (R. R. Brooks, S. S. Iyengar, "Robust
// Distributed Computing and Sensing Algorithm", IEEE Computer 1996) — the
// paper's reference [6], described there as "an extension of [Marzullo] that
// relaxes the worst-case guarantees in favor of obtaining more precise fused
// measurements".
//
// The algorithm starts from the same >= n-f overlap regions as Marzullo's
// but returns, in addition to the conservative interval, a *weighted point
// estimate*: each maximal region is weighted by the number of intervals
// covering it, so heavily-agreed regions dominate.  We implement it as the
// comparison baseline for the ablation benches: under a stealthy attack the
// Brooks-Iyengar point estimate is smoother but can be dragged further than
// the Marzullo midpoint, which is exactly the precision-vs-worst-case trade
// the two papers discuss.

#include <optional>
#include <span>
#include <vector>

#include "core/interval.h"

namespace arsf {

struct BrooksIyengarResult {
  /// Conservative output interval: hull of the >= n-f overlap regions (the
  /// same interval Marzullo's algorithm returns); empty optional when no
  /// point reaches the threshold.
  std::optional<Interval> interval;
  /// Weighted point estimate: sum over regions of midpoint * overlap count,
  /// normalised; nullopt when the region set is empty.
  std::optional<double> estimate;
  /// The maximal regions with their overlap counts (>= n-f), ascending.
  struct Region {
    Interval range;
    int count = 0;
  };
  std::vector<Region> regions;
  int threshold = 0;
};

/// Runs Brooks-Iyengar fusion assuming at most @p f faulty sensors.
/// Preconditions as for marzullo_fuse: 1 <= n, 0 <= f < n, no empty inputs
/// (throws std::invalid_argument).
[[nodiscard]] BrooksIyengarResult brooks_iyengar(std::span<const Interval> intervals, int f);
[[nodiscard]] BrooksIyengarResult brooks_iyengar(const std::vector<Interval>& intervals, int f);

}  // namespace arsf
