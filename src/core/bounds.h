#pragma once
// Width guarantees for Marzullo fusion (paper, Section II-A) and the paper's
// Theorem 2 worst-case bound.
//
// From Marzullo's analysis, restated by the paper:
//   * f < ceil(n/3)  ->  |S_{N,f}| is bounded by the width of some *correct*
//                        interval;
//   * f < ceil(n/2)  ->  |S_{N,f}| is bounded by the width of some interval
//                        (not necessarily correct);
//   * f >= ceil(n/2) ->  the fusion interval can be arbitrarily large and may
//                        not contain the true value.
// The paper therefore always requires f < ceil(n/2); max_bounded_f gives the
// largest admissible f (the evaluation uses exactly this value).

#include <span>

#include "core/interval.h"

namespace arsf {

/// ceil(n/k) for positive integers.
[[nodiscard]] constexpr int ceil_div(int n, int k) { return (n + k - 1) / k; }

/// Largest f with the bounded-width guarantee: ceil(n/2) - 1.
[[nodiscard]] constexpr int max_bounded_f(int n) { return ceil_div(n, 2) - 1; }

/// True iff |S| is guaranteed bounded by some correct interval's width.
[[nodiscard]] constexpr bool width_bounded_by_correct(int n, int f) {
  return f < ceil_div(n, 3);
}

/// True iff |S| is guaranteed bounded by some interval's width.
[[nodiscard]] constexpr bool width_bounded_by_any(int n, int f) {
  return f < ceil_div(n, 2);
}

/// Theorem 2: with f < ceil(n/2), |S_{N,f}| <= |sc1| + |sc2| where sc1, sc2
/// are the two largest-width *correct* intervals.  For n-fa == 1 the single
/// correct width is returned.
[[nodiscard]] double theorem2_bound(std::span<const Interval> correct_intervals);
[[nodiscard]] Tick theorem2_bound_ticks(std::span<const TickInterval> correct_intervals);

}  // namespace arsf
