#pragma once
// Attack/fault detection (paper, Section III-A-1).
//
// "the detection mechanism the system uses is to check for overlap with the
//  fusion interval; if an interval does not intersect the fusion interval,
//  then it must be compromised."
//
// DetectionReport flags every such interval.  When the fusion region is
// empty (possible when more than f sensors actually lie), detection is
// inconclusive and `fusion_empty` is set instead of flagging anyone.

#include <span>
#include <vector>

#include "core/fusion.h"
#include "core/interval.h"

namespace arsf {

struct DetectionReport {
  /// flagged[i] == true -> sensor i's interval does not intersect the fusion
  /// interval and is discarded as compromised.
  std::vector<bool> flagged;
  int num_flagged = 0;
  bool fusion_empty = false;

  [[nodiscard]] bool any() const { return num_flagged > 0; }
};

/// Flags intervals that do not intersect @p fusion.
[[nodiscard]] DetectionReport detect(std::span<const Interval> intervals,
                                     const FusionResult& fusion);
[[nodiscard]] DetectionReport detect_ticks(std::span<const TickInterval> intervals,
                                           const TickInterval& fusion);

/// Fuses then detects in one call.
[[nodiscard]] DetectionReport fuse_and_detect(std::span<const Interval> intervals, int f);

}  // namespace arsf
