#include "core/bounds.h"

#include <algorithm>
#include <stdexcept>

namespace arsf {

namespace {

template <typename T>
T two_largest_widths(std::span<const BasicInterval<T>> intervals) {
  if (intervals.empty()) {
    throw std::invalid_argument("theorem2_bound: need at least one correct interval");
  }
  T largest{};
  T second{};
  bool have_largest = false;
  for (const auto& iv : intervals) {
    const T w = iv.width();
    if (!have_largest || w > largest) {
      second = have_largest ? largest : T{};
      largest = w;
      have_largest = true;
    } else if (w > second) {
      second = w;
    }
  }
  return intervals.size() == 1 ? largest : static_cast<T>(largest + second);
}

}  // namespace

double theorem2_bound(std::span<const Interval> correct_intervals) {
  return two_largest_widths<double>(correct_intervals);
}

Tick theorem2_bound_ticks(std::span<const TickInterval> correct_intervals) {
  return two_largest_widths<Tick>(correct_intervals);
}

}  // namespace arsf
