#include "core/config.h"

#include <cmath>

namespace arsf {

SystemConfig make_config(std::span<const double> widths, int f) {
  SystemConfig config;
  config.sensors.reserve(widths.size());
  for (std::size_t i = 0; i < widths.size(); ++i) {
    config.sensors.push_back(SensorSpec{"s" + std::to_string(i), widths[i], false});
  }
  config.f = f >= 0 ? f : max_bounded_f(static_cast<int>(widths.size()));
  config.validate();
  return config;
}

SystemConfig make_config(std::initializer_list<double> widths, int f) {
  return make_config(std::span<const double>{widths.begin(), widths.size()}, f);
}

std::vector<Tick> tick_widths(const SystemConfig& config, const Quantizer& quant) {
  std::vector<Tick> ticks;
  ticks.reserve(config.sensors.size());
  for (const auto& sensor : config.sensors) {
    const double exact = sensor.width / quant.step;
    const Tick rounded = static_cast<Tick>(std::llround(exact));
    if (std::abs(exact - static_cast<double>(rounded)) > 1e-9) {
      throw std::invalid_argument("tick_widths: width " + std::to_string(sensor.width) +
                                  " is not a multiple of step " + std::to_string(quant.step));
    }
    ticks.push_back(rounded);
  }
  return ticks;
}

}  // namespace arsf
