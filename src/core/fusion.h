#pragma once
// Marzullo's fault-tolerant sensor fusion (K. Marzullo, TOCS 1990), as used by
// the paper (Section II-A).
//
// Given n closed intervals and a bound f on the number of faulty/compromised
// sensors, the fusion interval is
//
//     [ smallest point contained in >= n-f intervals,
//       largest  point contained in >= n-f intervals ].
//
// The implementation is a sweep over the 2n sorted endpoints (O(n log n)).
// Besides the fusion interval itself, the result exposes the maximal
// *segments* where the overlap count reaches n-f (the fusion interval is
// their convex hull; for f >= 1 the covered region may be disconnected) and
// the maximum overlap count encountered, which callers can use to pick a
// larger f when the region is empty.

#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/interval.h"

namespace arsf {

template <typename T>
struct BasicFusionResult {
  /// Convex hull of all points contained in >= n-f intervals; empty optional
  /// when no point reaches the threshold.
  std::optional<BasicInterval<T>> interval;
  /// Maximal segments with overlap count >= n-f, in ascending order.
  std::vector<BasicInterval<T>> segments;
  /// The threshold n-f that was applied.
  int threshold = 0;
  /// Maximum overlap count over the whole line (<= n).
  int max_overlap = 0;

  [[nodiscard]] bool has_value() const { return interval.has_value(); }
  /// Width of the fusion interval; 0 when empty.
  [[nodiscard]] T width() const { return interval ? interval->width() : T{}; }
};

using FusionResult = BasicFusionResult<double>;
using TickFusionResult = BasicFusionResult<Tick>;

/// Marzullo fusion of @p intervals assuming at most @p f faulty sensors.
///
/// Preconditions: 1 <= n, 0 <= f < n.  Empty input intervals are rejected
/// (a sensor always reports *some* interval; faulty means "does not contain
/// the true value", not "empty").  Throws std::invalid_argument on violation.
///
/// Note (paper, Section II-A): the fusion interval is guaranteed bounded by
/// the width of some interval only when f < ceil(n/2); the caller is expected
/// to configure f accordingly (see core/bounds.h).
template <typename T>
[[nodiscard]] BasicFusionResult<T> marzullo_fuse(std::span<const BasicInterval<T>> intervals,
                                                 int f) {
  const int n = static_cast<int>(intervals.size());
  if (n < 1) throw std::invalid_argument("marzullo_fuse: need at least one interval");
  if (f < 0 || f >= n) throw std::invalid_argument("marzullo_fuse: require 0 <= f < n");
  for (const auto& iv : intervals) {
    if (iv.is_empty()) throw std::invalid_argument("marzullo_fuse: empty input interval");
  }

  // Sweep events: +1 at lo, -1 at hi.  At equal coordinates starts are
  // processed before ends so that closed intervals touching at a point are
  // counted as overlapping there.
  struct Event {
    T x;
    int delta;  // +1 start, -1 end
  };
  std::vector<Event> events;
  events.reserve(2 * static_cast<std::size_t>(n));
  for (const auto& iv : intervals) {
    events.push_back({iv.lo, +1});
    events.push_back({iv.hi, -1});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.x != b.x) return a.x < b.x;
    return a.delta > b.delta;  // starts first
  });

  BasicFusionResult<T> result;
  result.threshold = n - f;

  int count = 0;
  T segment_start{};
  bool in_segment = false;
  for (const Event& event : events) {
    if (event.delta > 0) {
      ++count;
      result.max_overlap = std::max(result.max_overlap, count);
      if (count == result.threshold && !in_segment) {
        segment_start = event.x;
        in_segment = true;
      }
    } else {
      if (count == result.threshold && in_segment) {
        result.segments.push_back(BasicInterval<T>{segment_start, event.x});
        in_segment = false;
      }
      --count;
    }
  }

  if (!result.segments.empty()) {
    result.interval =
        BasicInterval<T>{result.segments.front().lo, result.segments.back().hi};
  }
  return result;
}

/// Convenience overloads for containers.
[[nodiscard]] FusionResult fuse(std::span<const Interval> intervals, int f);
[[nodiscard]] FusionResult fuse(const std::vector<Interval>& intervals, int f);
[[nodiscard]] TickFusionResult fuse_ticks(std::span<const TickInterval> intervals, int f);
[[nodiscard]] TickFusionResult fuse_ticks(const std::vector<TickInterval>& intervals, int f);

/// Fusion intervals for every f in [0, n-1] (Fig. 1 of the paper).
[[nodiscard]] std::vector<FusionResult> fuse_all_f(std::span<const Interval> intervals);

/// Width of the fusion interval for tick inputs without materialising
/// segments — the hot path of the enumeration engines.  Returns -1 when the
/// fusion region is empty.  Same preconditions as marzullo_fuse, but they are
/// asserted (not thrown): callers are internal engines with validated input.
[[nodiscard]] Tick fused_width_ticks(std::span<const TickInterval> intervals, int f) noexcept;

/// Fusion interval bounds for tick inputs on the hot path; returns the empty
/// interval when no point reaches the threshold.
[[nodiscard]] TickInterval fused_interval_ticks(std::span<const TickInterval> intervals,
                                                int f) noexcept;

/// Core of the tick hot path: Marzullo sweep over *pre-sorted* endpoint
/// arrays (ascending lows, ascending highs, both of length n).  Exposed so
/// engines that maintain sorted endpoints incrementally (sim/engine/) can
/// fuse without re-sorting.  Returns the empty interval when no point is
/// covered by at least @p threshold intervals; requires 1 <= threshold <= n.
[[nodiscard]] TickInterval fuse_sorted_endpoints_ticks(const Tick* lows, const Tick* highs,
                                                       std::size_t n, int threshold) noexcept;

}  // namespace arsf
