#include "core/fusion.h"

#include <algorithm>
#include <array>
#include <cassert>

namespace arsf {

FusionResult fuse(std::span<const Interval> intervals, int f) {
  return marzullo_fuse<double>(intervals, f);
}

FusionResult fuse(const std::vector<Interval>& intervals, int f) {
  return marzullo_fuse<double>(std::span<const Interval>{intervals}, f);
}

TickFusionResult fuse_ticks(std::span<const TickInterval> intervals, int f) {
  return marzullo_fuse<Tick>(intervals, f);
}

TickFusionResult fuse_ticks(const std::vector<TickInterval>& intervals, int f) {
  return marzullo_fuse<Tick>(std::span<const TickInterval>{intervals}, f);
}

std::vector<FusionResult> fuse_all_f(std::span<const Interval> intervals) {
  // One sorted endpoint pass serves every threshold simultaneously instead
  // of n independent full fusions: the overlap count moves by +-1 per event,
  // so an increment to c opens the pending segment of threshold c and a
  // decrement from c closes it (count >= c just ended there).
  const int n = static_cast<int>(intervals.size());
  if (n == 0) return {};  // no thresholds to sweep (pre-engine behaviour)
  for (const auto& iv : intervals) {
    if (iv.is_empty()) throw std::invalid_argument("fuse_all_f: empty input interval");
  }

  struct Event {
    double x;
    int delta;  // +1 start, -1 end
  };
  std::vector<Event> events;
  events.reserve(2 * static_cast<std::size_t>(n));
  for (const auto& iv : intervals) {
    events.push_back({iv.lo, +1});
    events.push_back({iv.hi, -1});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.x != b.x) return a.x < b.x;
    return a.delta > b.delta;  // starts first (closed intervals touch)
  });

  std::vector<FusionResult> results(static_cast<std::size_t>(n));
  for (int f = 0; f < n; ++f) results[static_cast<std::size_t>(f)].threshold = n - f;

  std::vector<double> open(static_cast<std::size_t>(n) + 1, 0.0);  // start x per threshold
  int count = 0;
  int max_overlap = 0;
  for (const Event& event : events) {
    if (event.delta > 0) {
      ++count;
      max_overlap = std::max(max_overlap, count);
      open[static_cast<std::size_t>(count)] = event.x;  // threshold `count` segment opens
    } else {
      // Segment of threshold `count` closes here (threshold index f = n - count).
      results[static_cast<std::size_t>(n - count)].segments.push_back(
          Interval{open[static_cast<std::size_t>(count)], event.x});
      --count;
    }
  }

  for (auto& result : results) {
    result.max_overlap = max_overlap;
    if (!result.segments.empty()) {
      result.interval = Interval{result.segments.front().lo, result.segments.back().hi};
    }
  }
  return results;
}

namespace {

// The enumeration engines fuse millions of small interval sets; this path
// avoids the event vector of marzullo_fuse by sorting lows and highs
// separately on the stack (insertion sort: n is single-digit in practice).
constexpr std::size_t kStackFusion = 16;

void insertion_sort(Tick* data, std::size_t n) noexcept {
  for (std::size_t i = 1; i < n; ++i) {
    const Tick key = data[i];
    std::size_t j = i;
    while (j > 0 && data[j - 1] > key) {
      data[j] = data[j - 1];
      --j;
    }
    data[j] = key;
  }
}

TickInterval sweep_ticks(const Tick* lows, const Tick* highs, std::size_t n,
                         int threshold) noexcept {
  // Two-pointer merge of the sorted endpoint lists; starts are processed
  // before ends at equal coordinates (closed intervals).
  std::size_t i = 0;
  std::size_t j = 0;
  int count = 0;
  bool found_lo = false;
  Tick fused_lo = 0;
  Tick fused_hi = 0;
  bool found_hi = false;
  while (j < n) {
    if (i < n && lows[i] <= highs[j]) {
      ++count;
      if (count == threshold && !found_lo) {
        fused_lo = lows[i];
        found_lo = true;
      }
      ++i;
    } else {
      if (count == threshold) {
        fused_hi = highs[j];
        found_hi = true;
      }
      --count;
      ++j;
    }
  }
  if (!found_lo || !found_hi) return TickInterval::empty_interval();
  return TickInterval{fused_lo, fused_hi};
}

}  // namespace

TickInterval fuse_sorted_endpoints_ticks(const Tick* lows, const Tick* highs, std::size_t n,
                                         int threshold) noexcept {
  assert(threshold >= 1 && threshold <= static_cast<int>(n));
  return sweep_ticks(lows, highs, n, threshold);
}

TickInterval fused_interval_ticks(std::span<const TickInterval> intervals, int f) noexcept {
  const std::size_t n = intervals.size();
  assert(n >= 1 && f >= 0 && f < static_cast<int>(n));
  const int threshold = static_cast<int>(n) - f;

  if (n <= kStackFusion) {
    std::array<Tick, kStackFusion> lows;
    std::array<Tick, kStackFusion> highs;
    for (std::size_t k = 0; k < n; ++k) {
      lows[k] = intervals[k].lo;
      highs[k] = intervals[k].hi;
    }
    insertion_sort(lows.data(), n);
    insertion_sort(highs.data(), n);
    return sweep_ticks(lows.data(), highs.data(), n, threshold);
  }

  std::vector<Tick> lows(n);
  std::vector<Tick> highs(n);
  for (std::size_t k = 0; k < n; ++k) {
    lows[k] = intervals[k].lo;
    highs[k] = intervals[k].hi;
  }
  std::sort(lows.begin(), lows.end());
  std::sort(highs.begin(), highs.end());
  return sweep_ticks(lows.data(), highs.data(), n, threshold);
}

Tick fused_width_ticks(std::span<const TickInterval> intervals, int f) noexcept {
  const TickInterval fused = fused_interval_ticks(intervals, f);
  return fused.is_empty() ? Tick{-1} : fused.width();
}

}  // namespace arsf
