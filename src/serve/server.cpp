#include "serve/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <utility>

#include "scenario/faultplan.h"
#include "scenario/sweep.h"
#include "sim/engine/saturating.h"

namespace arsf::serve {

namespace fs = std::filesystem;
using sim::engine::CancelledError;
using sim::engine::saturating_add;

namespace {

// Poll period of every transport/worker wait: bounds the reaction latency to
// flags (stopping_, cancel tokens) that have no condition variable of their
// own.  Small enough that shutdown feels immediate, large enough to be
// invisible in profiles.
constexpr int kPollMs = 50;
constexpr std::chrono::milliseconds kPollSlice{kPollMs};

void close_fd(int& fd) noexcept {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

/// One transport attachment: a socket connection (fd >= 0, reader + writer
/// threads) or a claimed spool file (fd == -1, writer thread only — the
/// spool thread itself plays reader).  Owned by connections_; never erased
/// before shutdown, so raw pointers handed to the threads stay valid.
struct Server::Connection {
  std::shared_ptr<Session> session;
  int fd = -1;
  std::thread reader;
  std::thread writer;
  // Spool transport paths (empty for sockets); see the header's spool notes.
  std::string spool_claimed;  ///< claimed input (NAME.req.claimed)
  std::string spool_partial;  ///< output in progress (NAME.out.partial)
  std::string spool_out;      ///< sealed output (NAME.out)
  std::string spool_done;     ///< sealed input (NAME.req.done)
};

Server::Server(ServeOptions options) : options_(std::move(options)) {}

Server::~Server() {
  if (started_ && !stopped_) {
    request_stop();
    request_stop();  // second = hard cancel: a destructor must not hang
    try {
      wait();
    } catch (...) {
    }
  }
  close_fd(listen_fd_);
  close_fd(wake_pipe_[0]);
  close_fd(wake_pipe_[1]);
}

void Server::start() {
  std::lock_guard<std::mutex> lifecycle{lifecycle_mutex_};
  if (started_) throw std::logic_error("Server::start called twice");
  if (options_.socket_path.empty() && options_.spool_dir.empty()) {
    throw std::invalid_argument("Server: configure a socket_path and/or a spool_dir");
  }
  if (options_.limits.max_output_frames == 0 || options_.limits.max_queued_requests == 0) {
    throw std::invalid_argument("Server: session limits must be positive");
  }

  if (::pipe(wake_pipe_) != 0) {
    throw std::runtime_error("Server: pipe() failed: " + std::string(std::strerror(errno)));
  }

  if (options_.cache_bytes > 0) {
    cache_.emplace(options_.cache_bytes);
    if (!options_.cache_file.empty()) cache_->load_file(options_.cache_file);
  }

  if (!options_.socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
      throw std::invalid_argument("Server: socket_path too long for sockaddr_un");
    }
    std::memcpy(addr.sun_path, options_.socket_path.c_str(), options_.socket_path.size() + 1);

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      throw std::runtime_error("Server: socket() failed: " + std::string(std::strerror(errno)));
    }
    ::unlink(options_.socket_path.c_str());  // stale socket from a dead daemon
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
      const std::string reason = std::strerror(errno);
      close_fd(listen_fd_);
      throw std::runtime_error("Server: cannot listen on '" + options_.socket_path +
                               "': " + reason);
    }
  }

  if (!options_.spool_dir.empty()) {
    std::error_code ec;
    fs::create_directories(options_.spool_dir, ec);
    if (ec) {
      throw std::runtime_error("Server: cannot create spool_dir '" + options_.spool_dir +
                               "': " + ec.message());
    }
  }

  unsigned workers = options_.workers;
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  if (listen_fd_ >= 0) accept_thread_ = std::thread([this] { accept_loop(); });
  if (!options_.spool_dir.empty()) spool_thread_ = std::thread([this] { spool_loop(); });
  started_ = true;
}

void Server::request_stop() noexcept {
  const int prev = stop_requested_.fetch_add(1, std::memory_order_relaxed);
  // Second call = hard cancel.  CancelToken::cancel() is a relaxed atomic
  // store, so tripping it straight from a signal handler is safe — and doing
  // it HERE (not in wait()'s drain loop) unblocks the drain wherever it
  // happens to be, including a reader join stuck behind a full output queue.
  if (prev >= 1) shutdown_.cancel();
  if (wake_pipe_[1] >= 0) {
    const char byte = prev == 0 ? 'g' : 'h';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void Server::stop() {
  request_stop();
  wait();
}

void Server::wait() {
  std::lock_guard<std::mutex> lifecycle{lifecycle_mutex_};
  if (!started_ || stopped_) return;

  // Block until the first request_stop() byte arrives.  The handler's pipe
  // write is the wake-up; the atomic is the authority (polled as a backstop
  // in case request_stop ran before the pipe existed... it cannot, but a
  // missed byte must not hang the daemon forever).
  while (stop_requested_.load(std::memory_order_relaxed) == 0) {
    pollfd pfd{wake_pipe_[0], POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (rc > 0 && (pfd.revents & POLLIN) != 0) {
      char byte = 0;
      [[maybe_unused]] const ssize_t n = ::read(wake_pipe_[0], &byte, 1);
      break;
    }
  }

  // 1. Stop the intake: no new connections, spool claims or request lines.
  //    The drain deadline arms FIRST so every blocking step below (reader
  //    joins included — a reader can sit in push_frame behind a client that
  //    stopped reading) is bounded when drain_ms is configured.
  stopping_.store(true, std::memory_order_relaxed);
  if (options_.drain_ms > 0) {
    shutdown_.set_deadline_after(std::chrono::milliseconds(options_.drain_ms));
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (spool_thread_.joinable()) spool_thread_.join();
  // connections_ is append-only and both appenders just exited: safe to
  // iterate without the scheduler lock from here on.
  for (const auto& conn : connections_) {
    if (conn->reader.joinable()) conn->reader.join();
  }

  // 2. Queued-but-never-started requests get their kCancelled frames.
  drain_queued_requests();

  // 3. Wait for the in-flight tail: each request finishes under its own
  //    deadline, the armed drain deadline, or a hard request_stop() (which
  //    trips the shutdown token directly).
  {
    std::unique_lock<std::mutex> lock{sched_mutex_};
    while (in_flight_total_ > 0) {
      drain_cv_.wait_for(lock, kPollSlice);
    }
  }

  // 4. Release the pool, flush the writers, seal the transports.
  workers_exit_.store(true, std::memory_order_relaxed);
  sched_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  for (const auto& conn : connections_) {
    maybe_finish_locked(*conn->session);  // lock-free here: all mutators joined
    if (conn->writer.joinable()) conn->writer.join();
  }
  for (const auto& conn : connections_) close_fd(conn->fd);

  if (cache_ && !options_.cache_file.empty()) {
    try {
      cache_->save_file(options_.cache_file);
    } catch (const std::exception&) {
      // A failed persistence write must not turn a clean drain into a crash.
    }
  }
  close_fd(listen_fd_);
  if (!options_.socket_path.empty()) ::unlink(options_.socket_path.c_str());
  stopped_ = true;
}

ServeStats Server::stats() const {
  ServeStats s;
  s.connections_accepted = connections_accepted_.load();
  s.connections_faulted = connections_faulted_.load();
  s.spool_files = spool_files_.load();
  s.requests_accepted = requests_accepted_.load();
  s.requests_rejected = requests_rejected_.load();
  s.requests_completed = requests_completed_.load();
  s.requests_failed = requests_failed_.load();
  s.requests_cancelled = requests_cancelled_.load();
  s.frames_written = frames_written_.load();
  return s;
}

// ---- transports -------------------------------------------------------------

Server::Connection* Server::add_connection(std::unique_ptr<Connection> conn) {
  Connection* raw = conn.get();
  std::lock_guard<std::mutex> lock{sched_mutex_};
  connections_.push_back(std::move(conn));
  return raw;
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, kPollMs);
    if (rc <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC | SOCK_NONBLOCK);
    if (fd < 0) continue;

    const std::uint64_t ordinal = connections_accepted_.fetch_add(1) + 1;
    if (options_.fault_injector != nullptr &&
        options_.fault_injector->should_fail("accept", ordinal, 1)) {
      // "accept" fault: the connection is torn down on arrival; the daemon
      // and every other connection carry on.
      connections_faulted_.fetch_add(1);
      ::close(fd);
      continue;
    }

    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->session =
        std::make_shared<Session>(next_session_id_.fetch_add(1) + 1, options_.limits,
                                  &shutdown_);
    Connection* raw = add_connection(std::move(conn));
    raw->reader = std::thread([this, raw] { reader_loop(raw); });
    raw->writer = std::thread([this, raw] { writer_loop(raw); });
  }
}

void Server::reader_loop(Connection* conn) {
  Session& session = *conn->session;
  std::string buffer;
  char chunk[4096];
  bool poisoned = false;
  while (!stopping_.load(std::memory_order_relaxed) && !session.cancelled() && !poisoned) {
    pollfd pfd{conn->fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, kPollMs);
    if (rc <= 0) continue;
    const ssize_t n = ::read(conn->fd, chunk, sizeof chunk);
    if (n == 0) break;  // EOF: client finished submitting
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      session.cancel();
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos;
    while ((pos = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      handle_request_line(conn, line);
    }
    if (buffer.size() > session.limits().max_line_bytes) {
      // Protocol poison: stop reading (we could never find the line's end),
      // answer what was already queued, then close.
      reject(session, std::string{}, std::string{}, scenario::ResultStatus::kRejected,
             "request line exceeds max_line_bytes");
      requests_rejected_.fetch_add(1);
      poisoned = true;
    }
  }
  if (!poisoned && !buffer.empty() && !stopping_.load(std::memory_order_relaxed) &&
      !session.cancelled()) {
    handle_request_line(conn, buffer);  // unterminated final line counts
  }
  mark_input_closed(session);
}

bool Server::write_all(int fd, const std::string& data, Session& session) {
  std::size_t off = 0;
  while (off < data.size()) {
    if (session.cancelled()) return false;
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      pollfd pfd{fd, POLLOUT, 0};
      (void)::poll(&pfd, 1, kPollMs);
      continue;
    }
    return false;  // broken pipe / hard error
  }
  return true;
}

void Server::writer_loop(Connection* conn) {
  Session& session = *conn->session;
  std::string line;
  while (session.pop_frame(line)) {
    const std::uint64_t ordinal = session.next_frame_ordinal();
    if (options_.fault_injector != nullptr &&
        options_.fault_injector->should_fail("respond", ordinal, 1)) {
      // "respond" fault: the client's pipe broke — tear the connection down;
      // its in-flight request observes the cancel and frames kCancelled.
      session.cancel();
      break;
    }
    line += '\n';
    if (!write_all(conn->fd, line, session)) {
      session.cancel();
      break;
    }
    frames_written_.fetch_add(1);
    sched_cv_.notify_all();  // drained below the bound: session may be eligible
  }
  ::shutdown(conn->fd, SHUT_WR);  // flush-and-close handshake for the client
}

// ---- spool transport --------------------------------------------------------

void Server::spool_loop() {
  using Clock = std::chrono::steady_clock;
  auto next_scan = Clock::now();
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (Clock::now() >= next_scan) {
      scan_spool_dir();
      next_scan = Clock::now() + std::chrono::milliseconds(options_.spool_poll_ms);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(
        std::min<std::uint64_t>(options_.spool_poll_ms, kPollMs)));
  }
}

void Server::scan_spool_dir() {
  std::error_code ec;
  fs::directory_iterator it{options_.spool_dir, ec};
  if (ec) return;
  for (const fs::directory_entry& entry : it) {
    if (stopping_.load(std::memory_order_relaxed)) return;
    std::error_code entry_ec;
    if (!entry.is_regular_file(entry_ec)) continue;
    const fs::path path = entry.path();
    if (path.extension() != ".req") continue;

    // Claim by rename: atomic, and a concurrent daemon instance loses the
    // race cleanly (its rename fails, it moves on).
    const std::string input = path.string();
    const std::string claimed = input + ".claimed";
    std::error_code rename_ec;
    fs::rename(input, claimed, rename_ec);
    if (rename_ec) continue;
    spool_files_.fetch_add(1);

    const std::string base = input.substr(0, input.size() - 4);  // strip ".req"
    auto conn = std::make_unique<Connection>();
    conn->session =
        std::make_shared<Session>(next_session_id_.fetch_add(1) + 1, options_.limits,
                                  &shutdown_);
    conn->spool_claimed = claimed;
    conn->spool_partial = base + ".out.partial";
    conn->spool_out = base + ".out";
    conn->spool_done = input + ".done";
    Connection* raw = add_connection(std::move(conn));
    raw->writer = std::thread([this, raw] { spool_writer_loop(raw); });

    // The spool thread plays reader: enqueue every line, then close input.
    std::ifstream in{claimed};
    std::string line;
    while (std::getline(in, line)) {
      if (stopping_.load(std::memory_order_relaxed) || raw->session->cancelled()) break;
      handle_request_line(raw, line);
    }
    mark_input_closed(*raw->session);
  }
}

void Server::spool_writer_loop(Connection* conn) {
  Session& session = *conn->session;
  std::ofstream out{conn->spool_partial, std::ios::trunc};
  bool healthy = out.is_open();
  if (!healthy) session.cancel();  // nowhere to answer: don't burn compute

  std::string line;
  while (session.pop_frame(line)) {
    const std::uint64_t ordinal = session.next_frame_ordinal();
    if (options_.fault_injector != nullptr &&
        options_.fault_injector->should_fail("respond", ordinal, 1)) {
      session.cancel();
      healthy = false;
      break;
    }
    out << line << '\n';
    out.flush();
    if (!out) {
      session.cancel();
      healthy = false;
      break;
    }
    frames_written_.fetch_add(1);
    sched_cv_.notify_all();
  }
  out.close();

  if (healthy && session.finished_cleanly()) {
    // Seal: answers become NAME.out atomically, input becomes NAME.req.done.
    // A crash or fault instead leaves .claimed/.partial for inspection.
    std::error_code ec;
    fs::rename(conn->spool_partial, conn->spool_out, ec);
    if (!ec) fs::rename(conn->spool_claimed, conn->spool_done, ec);
  }
}

// ---- request intake ---------------------------------------------------------

void Server::reject(Session& session, const std::string& request_id, const std::string& name,
                    scenario::ResultStatus status, const std::string& error) {
  // Best effort: if the session died the frames are moot anyway.
  if (!session.push_frame(error_frame(request_id, name, status, error))) return;
  session.push_frame(done_frame(request_id, 1, 1));
}

void Server::handle_request_line(Connection* conn, const std::string& line) {
  Session& session = *conn->session;
  if (line.find_first_not_of(" \t\r") == std::string::npos) return;  // blank line

  // The arrival ordinal keys the "session" fault site whether or not the
  // line parses — determinism must not depend on request wellformedness.
  const std::uint64_t ordinal = session.next_request_ordinal();

  Request request;
  try {
    request = parse_request(line);
  } catch (const RequestError& e) {
    requests_rejected_.fetch_add(1);
    reject(session, e.request_id(), std::string{}, scenario::ResultStatus::kRejected,
           e.what());
    return;
  }

  if (options_.fault_injector != nullptr) {
    try {
      options_.fault_injector->maybe_fail("session", ordinal, 1);
    } catch (const scenario::InjectedFault& e) {
      requests_rejected_.fetch_add(1);
      reject(session, request.request_id, request.name(),
             scenario::ResultStatus::kRejected, e.what());
      return;
    }
  }

  enum class Verdict { kQueued, kFull, kStopping };
  Verdict verdict;
  {
    std::lock_guard<std::mutex> lock{sched_mutex_};
    if (draining_ || stopping_.load(std::memory_order_relaxed)) {
      verdict = Verdict::kStopping;
    } else if (session.sched.pending.size() >= options_.limits.max_queued_requests) {
      verdict = Verdict::kFull;
    } else {
      if (session.sched.pending.empty() && !session.sched.in_flight) {
        // Re-joining the round-robin after idling: normalise to the busiest
        // peers' floor so a long-idle session cannot bank priority.
        std::uint64_t min_active = std::numeric_limits<std::uint64_t>::max();
        for (const auto& c : connections_) {
          const Session::Sched& peer = c->session->sched;
          if (!peer.in_flight && peer.pending.empty()) continue;
          min_active = std::min(min_active, peer.vtime);
        }
        if (min_active != std::numeric_limits<std::uint64_t>::max()) {
          session.sched.vtime = std::max(session.sched.vtime, min_active);
        }
      }
      session.sched.pending.push_back(std::move(request));
      verdict = Verdict::kQueued;
    }
  }
  switch (verdict) {
    case Verdict::kQueued:
      requests_accepted_.fetch_add(1);
      sched_cv_.notify_one();
      break;
    case Verdict::kFull:
      requests_rejected_.fetch_add(1);
      reject(session, request.request_id, request.name(),
             scenario::ResultStatus::kRejected,
             "request queue full (max_queued_requests)");
      break;
    case Verdict::kStopping:
      requests_cancelled_.fetch_add(1);
      reject(session, request.request_id, request.name(),
             scenario::ResultStatus::kCancelled, "daemon stopping");
      break;
  }
}

void Server::mark_input_closed(Session& session) {
  std::lock_guard<std::mutex> lock{sched_mutex_};
  session.sched.input_closed = true;
  maybe_finish_locked(session);
}

// ---- scheduling + execution -------------------------------------------------

void Server::maybe_finish_locked(Session& session) {
  Session::Sched& sched = session.sched;
  if (sched.finished) return;
  if (!sched.input_closed || !sched.pending.empty() || sched.in_flight) return;
  sched.finished = true;
  session.finish_output();
}

bool Server::pick_next_locked(std::shared_ptr<Session>& session, Request& request) {
  Connection* best = nullptr;
  for (const auto& conn : connections_) {
    Session& s = *conn->session;
    if (s.sched.in_flight || s.sched.pending.empty()) continue;
    if (s.cancelled()) {
      // Dead connection: nobody will read the answers — drop its queue.
      requests_cancelled_.fetch_add(s.sched.pending.size());
      s.sched.pending.clear();
      maybe_finish_locked(s);
      continue;
    }
    if (!s.output_has_room()) continue;  // backpressure: skip, never block here
    if (best == nullptr || s.sched.vtime < best->session->sched.vtime) best = conn.get();
  }
  if (best == nullptr) return false;

  Session& s = *best->session;
  request = std::move(s.sched.pending.front());
  s.sched.pending.pop_front();
  s.sched.in_flight = true;
  s.sched.vtime = saturating_add(s.sched.vtime, request_cost(request));
  ++in_flight_total_;
  session = best->session;
  return true;
}

void Server::worker_loop() {
  for (;;) {
    std::shared_ptr<Session> session;
    Request request;
    {
      std::unique_lock<std::mutex> lock{sched_mutex_};
      for (;;) {
        if (workers_exit_.load(std::memory_order_relaxed)) return;
        if (!draining_ && pick_next_locked(session, request)) break;
        sched_cv_.wait_for(lock, kPollSlice);
      }
    }
    execute(session, std::move(request));
    {
      std::lock_guard<std::mutex> lock{sched_mutex_};
      session->sched.in_flight = false;
      --in_flight_total_;
      maybe_finish_locked(*session);
    }
    sched_cv_.notify_all();
    drain_cv_.notify_all();
  }
}

void Server::execute(const std::shared_ptr<Session>& session, Request request) {
  RequestSink sink{request.request_id, [&session](const std::string& line) {
                     if (!session->push_frame(line)) {
                       // Connection gone or daemon hard-stopping: abort the
                       // producing run through the sink-exception path.
                       throw CancelledError(false);
                     }
                   }};

  scenario::RunnerOptions runner_options;
  // One request = one serial execution lane: the scenario's engine fan-out is
  // forced to 1 so a worker blocked on backpressure can never sit on the
  // shared engine ThreadPool; the daemon's parallelism is requests-across-
  // workers.  num_threads never reaches a frame or a cache key, so the
  // answers stay byte-identical to any offline thread count.
  runner_options.num_threads = 1;
  runner_options.capture_errors = true;
  runner_options.default_deadline_ms = options_.default_deadline_ms;
  runner_options.admission_budget = options_.admission_budget;
  runner_options.degrade = options_.degrade;
  runner_options.retry = options_.retry;
  runner_options.cancel = session->token();
  runner_options.fault_injector = options_.fault_injector;
  runner_options.cache = cache_ ? &*cache_ : nullptr;

  try {
    const scenario::Runner runner{runner_options};
    if (request.is_sweep) {
      request.sweep.base.num_threads = 1;
      scenario::SweepRunOptions sweep_options;
      sweep_options.chunk_scenarios = options_.chunk_scenarios;
      scenario::run_sweep(request.sweep, runner, sink, sweep_options);
    } else {
      request.scenario.num_threads = 1;
      sink.on_result(0, runner.run(request.scenario));
      sink.on_finish(1);
    }
    requests_completed_.fetch_add(1);
  } catch (const CancelledError&) {
    requests_cancelled_.fetch_add(1);
  } catch (const std::exception& e) {
    // Sweep materialisation / sink failures that are not cancellation: close
    // the request with a structured error frame (best effort — the session
    // may be gone).
    requests_failed_.fetch_add(1);
    if (session->push_frame(error_frame(request.request_id, request.name(),
                                        scenario::ResultStatus::kFailed, e.what()))) {
      session->push_frame(
          done_frame(request.request_id, sink.results() + 1, sink.failed() + 1));
    }
  }
}

// ---- shutdown ---------------------------------------------------------------

void Server::drain_queued_requests() {
  std::vector<std::pair<std::shared_ptr<Session>, Request>> dropped;
  {
    std::lock_guard<std::mutex> lock{sched_mutex_};
    draining_ = true;
    for (const auto& conn : connections_) {
      Session& session = *conn->session;
      session.sched.input_closed = true;
      while (!session.sched.pending.empty()) {
        dropped.emplace_back(conn->session, std::move(session.sched.pending.front()));
        session.sched.pending.pop_front();
      }
      // maybe_finish deliberately NOT here: the kCancelled frames below must
      // reach the output queue before it is sealed.
    }
  }
  for (auto& [session, request] : dropped) {
    requests_cancelled_.fetch_add(1);
    reject(*session, request.request_id, request.name(),
           scenario::ResultStatus::kCancelled,
           "daemon stopping: request cancelled before execution");
  }
  {
    std::lock_guard<std::mutex> lock{sched_mutex_};
    for (const auto& conn : connections_) maybe_finish_locked(*conn->session);
  }
}

}  // namespace arsf::serve
