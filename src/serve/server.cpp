#include "serve/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <utility>

#include "scenario/faultplan.h"
#include "scenario/json.h"
#include "scenario/sweep.h"
#include "sim/engine/saturating.h"

namespace arsf::serve {

namespace fs = std::filesystem;
namespace json = scenario::json;
using sim::engine::CancelledError;
using sim::engine::saturating_add;

namespace {

// Poll period of every transport/worker wait: bounds the reaction latency to
// flags (stopping_, cancel tokens) that have no condition variable of their
// own.  Small enough that shutdown feels immediate, large enough to be
// invisible in profiles.
constexpr int kPollMs = 50;
constexpr std::chrono::milliseconds kPollSlice{kPollMs};

void close_fd(int& fd) noexcept {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

/// One transport attachment: a socket connection (fd >= 0, reader + writer
/// threads) or a claimed spool file (fd == -1, writer thread only — the
/// spool thread itself plays reader).  Owned by connections_; never erased
/// before shutdown, so raw pointers handed to the threads stay valid.
struct Server::Connection {
  std::shared_ptr<Session> session;
  int fd = -1;
  std::thread reader;
  std::thread writer;
  // Spool transport paths (empty for sockets); see the header's spool notes.
  std::string spool_claimed;  ///< claimed input (NAME.req.claimed)
  std::string spool_partial;  ///< output in progress (NAME.out.partial)
  std::string spool_out;      ///< sealed output (NAME.out)
  std::string spool_done;     ///< sealed input (NAME.req.done)
};

Server::Server(ServeOptions options) : options_(std::move(options)) {}

Server::~Server() {
  if (started_ && !stopped_) {
    request_stop();
    request_stop();  // second = hard cancel: a destructor must not hang
    try {
      wait();
    } catch (...) {
    }
  }
  close_fd(listen_fd_);
  close_fd(wake_pipe_[0]);
  close_fd(wake_pipe_[1]);
}

void Server::start() {
  std::lock_guard<std::mutex> lifecycle{lifecycle_mutex_};
  if (started_) throw std::logic_error("Server::start called twice");
  if (options_.socket_path.empty() && options_.spool_dir.empty()) {
    throw std::invalid_argument("Server: configure a socket_path and/or a spool_dir");
  }
  if (options_.limits.max_output_frames == 0 || options_.limits.max_queued_requests == 0) {
    throw std::invalid_argument("Server: session limits must be positive");
  }
  if (options_.cache_reload_ms > 0 &&
      (options_.cache_bytes == 0 || options_.cache_file.empty())) {
    throw std::invalid_argument("Server: cache_reload_ms requires cache_bytes and cache_file");
  }

  if (::pipe(wake_pipe_) != 0) {
    throw std::runtime_error("Server: pipe() failed: " + std::string(std::strerror(errno)));
  }

  if (options_.cache_bytes > 0) {
    cache_.emplace(options_.cache_bytes);
    if (!options_.cache_file.empty()) cache_->load_file(options_.cache_file);
  }

  if (!options_.state_dir.empty()) {
    journal_.emplace(options_.state_dir);
    journal_->set_fault_injector(options_.fault_injector);
    const JournalLoadReport report = journal_->open();
    journal_rejected_.store(report.rejected);
    if (report.rejected > 0) {
      std::fprintf(stderr, "arsf_serve: journal: dropped %zu torn/corrupt line(s)\n",
                   report.rejected);
    }
  }

  if (!options_.socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
      throw std::invalid_argument("Server: socket_path too long for sockaddr_un");
    }
    std::memcpy(addr.sun_path, options_.socket_path.c_str(), options_.socket_path.size() + 1);

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      throw std::runtime_error("Server: socket() failed: " + std::string(std::strerror(errno)));
    }
    ::unlink(options_.socket_path.c_str());  // stale socket from a dead daemon
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
      const std::string reason = std::strerror(errno);
      close_fd(listen_fd_);
      throw std::runtime_error("Server: cannot listen on '" + options_.socket_path +
                               "': " + reason);
    }
  }

  if (!options_.spool_dir.empty()) {
    std::error_code ec;
    fs::create_directories(options_.spool_dir, ec);
    if (ec) {
      throw std::runtime_error("Server: cannot create spool_dir '" + options_.spool_dir +
                               "': " + ec.message());
    }
    reclaim_spool_dir();
  }

  // Re-queue journaled work BEFORE any transport can submit: a client
  // re-submitting a recovered id must find it active (follower) or already
  // answered, never racing a half-registered recovery.
  requeue_incomplete();

  unsigned workers = options_.workers;
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  if (listen_fd_ >= 0) accept_thread_ = std::thread([this] { accept_loop(); });
  if (!options_.spool_dir.empty()) spool_thread_ = std::thread([this] { spool_loop(); });
  if (cache_ && options_.cache_reload_ms > 0) {
    reload_thread_ = std::thread([this] { cache_reload_loop(); });
  }
  started_ = true;
}

void Server::request_stop() noexcept {
  const int prev = stop_requested_.fetch_add(1, std::memory_order_relaxed);
  // Second call = hard cancel.  CancelToken::cancel() is a relaxed atomic
  // store, so tripping it straight from a signal handler is safe — and doing
  // it HERE (not in wait()'s drain loop) unblocks the drain wherever it
  // happens to be, including a reader join stuck behind a full output queue.
  if (prev >= 1) shutdown_.cancel();
  if (wake_pipe_[1] >= 0) {
    const char byte = prev == 0 ? 'g' : 'h';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void Server::stop() {
  request_stop();
  wait();
}

void Server::wait() {
  std::lock_guard<std::mutex> lifecycle{lifecycle_mutex_};
  if (!started_ || stopped_) return;

  // Block until the first request_stop() byte arrives.  The handler's pipe
  // write is the wake-up; the atomic is the authority (polled as a backstop
  // in case request_stop ran before the pipe existed... it cannot, but a
  // missed byte must not hang the daemon forever).
  while (stop_requested_.load(std::memory_order_relaxed) == 0) {
    pollfd pfd{wake_pipe_[0], POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (rc > 0 && (pfd.revents & POLLIN) != 0) {
      char byte = 0;
      [[maybe_unused]] const ssize_t n = ::read(wake_pipe_[0], &byte, 1);
      break;
    }
  }

  // 1. Stop the intake: no new connections, spool claims or request lines.
  //    The drain deadline arms FIRST so every blocking step below (reader
  //    joins included — a reader can sit in push_frame behind a client that
  //    stopped reading) is bounded when drain_ms is configured.
  stopping_.store(true, std::memory_order_relaxed);
  if (options_.drain_ms > 0) {
    shutdown_.set_deadline_after(std::chrono::milliseconds(options_.drain_ms));
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (spool_thread_.joinable()) spool_thread_.join();
  if (reload_thread_.joinable()) reload_thread_.join();
  // connections_ is append-only and both appenders just exited: safe to
  // iterate without the scheduler lock from here on.
  for (const auto& conn : connections_) {
    if (conn->reader.joinable()) conn->reader.join();
  }

  // 2. Queued-but-never-started requests get their kCancelled frames.
  drain_queued_requests();

  // 3. Wait for the in-flight tail: each request finishes under its own
  //    deadline, the armed drain deadline, or a hard request_stop() (which
  //    trips the shutdown token directly).
  {
    std::unique_lock<std::mutex> lock{sched_mutex_};
    while (in_flight_total_ > 0) {
      drain_cv_.wait_for(lock, kPollSlice);
    }
  }

  // 4. Release the pool, flush the writers, seal the transports.
  workers_exit_.store(true, std::memory_order_relaxed);
  sched_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  for (const auto& conn : connections_) {
    // Lock-free here: all mutators joined.  Any follower gate still armed is
    // unsettleable (no worker will ever settle it) — clear it so the writer
    // join below cannot hang a shutdown.
    conn->session->sched.waiting = 0;
    maybe_finish_locked(*conn->session);
    if (conn->writer.joinable()) conn->writer.join();
  }
  for (const auto& conn : connections_) close_fd(conn->fd);

  if (cache_ && !options_.cache_file.empty()) {
    try {
      cache_->save_file(options_.cache_file);
    } catch (const std::exception&) {
      // A failed persistence write must not turn a clean drain into a crash.
    }
  }
  close_fd(listen_fd_);
  if (!options_.socket_path.empty()) ::unlink(options_.socket_path.c_str());
  stopped_ = true;
}

ServeStats Server::stats() const {
  ServeStats s;
  s.connections_accepted = connections_accepted_.load();
  s.connections_faulted = connections_faulted_.load();
  s.spool_files = spool_files_.load();
  s.requests_accepted = requests_accepted_.load();
  s.requests_rejected = requests_rejected_.load();
  s.requests_completed = requests_completed_.load();
  s.requests_failed = requests_failed_.load();
  s.requests_cancelled = requests_cancelled_.load();
  s.frames_written = frames_written_.load();
  s.spool_reclaimed = spool_reclaimed_.load();
  s.journal_recovered = journal_recovered_.load();
  s.journal_rejected = journal_rejected_.load();
  s.requests_deduped = requests_deduped_.load();
  s.sweeps_resumed = sweeps_resumed_.load();
  s.cache_reloads = cache_reloads_.load();
  return s;
}

// ---- crash recovery ---------------------------------------------------------

void Server::reclaim_spool_dir() {
  // Collect first, act second: renaming while a directory_iterator walks the
  // same directory is implementation-defined territory.
  std::vector<std::string> claimed;
  std::vector<std::string> partial;
  std::error_code ec;
  fs::directory_iterator it{options_.spool_dir, ec};
  if (ec) return;
  for (const fs::directory_entry& entry : it) {
    std::error_code entry_ec;
    if (!entry.is_regular_file(entry_ec)) continue;
    const std::string path = entry.path().string();
    const auto ends_with = [&path](const char* suffix) {
      const std::size_t n = std::strlen(suffix);
      return path.size() > n && path.compare(path.size() - n, n, suffix) == 0;
    };
    if (ends_with(".req.claimed")) claimed.push_back(path);
    if (ends_with(".out.partial")) partial.push_back(path);
  }
  for (const std::string& path : claimed) {
    // A .req.claimed is a request a dead daemon took but never sealed: give
    // it back to the spool (rename to .req) so this instance re-claims it.
    const std::string original = path.substr(0, path.size() - std::strlen(".claimed"));
    std::error_code rename_ec;
    fs::rename(path, original, rename_ec);
    if (!rename_ec) {
      spool_reclaimed_.fetch_add(1);
      std::fprintf(stderr, "arsf_serve: reclaimed orphaned spool input %s -> %s\n",
                   path.c_str(), original.c_str());
    }
  }
  for (const std::string& path : partial) {
    // A .out.partial may stop mid-frame: never trust it, rebuild the answer.
    std::error_code remove_ec;
    fs::remove(path, remove_ec);
    if (!remove_ec) {
      spool_reclaimed_.fetch_add(1);
      std::fprintf(stderr, "arsf_serve: removed orphaned spool output %s\n", path.c_str());
    }
  }
}

void Server::requeue_incomplete() {
  if (!journal_) return;
  std::vector<JournalRecord> todo;
  for (const JournalRecord& record : journal_->incomplete()) {
    // Spool-origin requests re-arrive on their own: reclaim_spool_dir() put
    // the .req file back and the spool scan will re-claim and re-submit it
    // under the same request_id.
    if (record.origin == "spool") continue;
    todo.push_back(record);
  }
  if (todo.empty()) return;

  // One recovery connection carries every re-queued socket request.  Its
  // writer discards frames — the original client is gone; the run exists to
  // finish the journaled work, and a re-submitting client is answered from
  // the frame spool (or joins as a follower while the run is active).
  auto conn = std::make_unique<Connection>();
  conn->session = std::make_shared<Session>(next_session_id_.fetch_add(1) + 1,
                                            options_.limits, &shutdown_);
  Connection* raw = add_connection(std::move(conn));
  raw->writer = std::thread([raw] {
    std::string line;
    while (raw->session->pop_frame(line)) {
    }
  });

  std::uint64_t queued = 0;
  for (const JournalRecord& record : todo) {
    Request request;
    try {
      request = parse_request(record.line);
    } catch (const std::exception& e) {
      // The journaled line no longer parses (it parsed once to be admitted —
      // so a corrupted or hand-edited journal).  Close the id out as failed
      // so it cannot be re-queued forever.
      journal_->reset_frames(record.request_id);
      journal_->append_frame(record.request_id,
                             error_frame(record.request_id, std::string{},
                                         scenario::ResultStatus::kFailed, e.what()));
      journal_->append_frame(record.request_id, done_frame(record.request_id, 1, 1));
      journal_->sync_frames(record.request_id);
      journal_->record_state(record.request_id, JournalState::kFailed, 1, 1);
      journal_->close_frames(record.request_id);
      requests_failed_.fetch_add(1);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock{sched_mutex_};
      active_.insert(record.request_id);
      raw->session->sched.pending.push_back(std::move(request));
    }
    ++queued;
    std::fprintf(stderr, "arsf_serve: recovery: re-queued request '%s' (was %s)\n",
                 record.request_id.c_str(), to_string(record.state).c_str());
  }
  journal_recovered_.store(queued);
  requests_accepted_.fetch_add(queued);
  mark_input_closed(*raw->session);
}

void Server::cache_reload_loop() {
  using Clock = std::chrono::steady_clock;
  auto next = Clock::now() + std::chrono::milliseconds(options_.cache_reload_ms);
  while (!stopping_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(kPollSlice);
    if (Clock::now() < next) continue;
    next = Clock::now() + std::chrono::milliseconds(options_.cache_reload_ms);
    const scenario::ResultCache::ReloadReport report =
        cache_->maybe_reload(options_.cache_file);
    if (report.reloaded) {
      cache_reloads_.fetch_add(1);
      std::fprintf(stderr, "arsf_serve: cache store reloaded (%zu loaded, %zu rejected)\n",
                   report.load.loaded, report.load.rejected);
    }
  }
}

// ---- transports -------------------------------------------------------------

Server::Connection* Server::add_connection(std::unique_ptr<Connection> conn) {
  Connection* raw = conn.get();
  std::lock_guard<std::mutex> lock{sched_mutex_};
  connections_.push_back(std::move(conn));
  return raw;
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, kPollMs);
    if (rc <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC | SOCK_NONBLOCK);
    if (fd < 0) continue;

    const std::uint64_t ordinal = connections_accepted_.fetch_add(1) + 1;
    if (options_.fault_injector != nullptr &&
        options_.fault_injector->should_fail("accept", ordinal, 1)) {
      // "accept" fault: the connection is torn down on arrival; the daemon
      // and every other connection carry on.
      connections_faulted_.fetch_add(1);
      ::close(fd);
      continue;
    }

    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->session =
        std::make_shared<Session>(next_session_id_.fetch_add(1) + 1, options_.limits,
                                  &shutdown_);
    Connection* raw = add_connection(std::move(conn));
    raw->reader = std::thread([this, raw] { reader_loop(raw); });
    raw->writer = std::thread([this, raw] { writer_loop(raw); });
  }
}

void Server::reader_loop(Connection* conn) {
  Session& session = *conn->session;
  std::string buffer;
  char chunk[4096];
  bool poisoned = false;
  while (!stopping_.load(std::memory_order_relaxed) && !session.cancelled() && !poisoned) {
    pollfd pfd{conn->fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, kPollMs);
    if (rc <= 0) continue;
    const ssize_t n = ::read(conn->fd, chunk, sizeof chunk);
    if (n == 0) break;  // EOF: client finished submitting
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      session.cancel();
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos;
    while ((pos = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      handle_request_line(conn, line);
    }
    if (buffer.size() > session.limits().max_line_bytes) {
      // Protocol poison: stop reading (we could never find the line's end),
      // answer what was already queued, then close.
      reject(session, std::string{}, std::string{}, scenario::ResultStatus::kRejected,
             "request line exceeds max_line_bytes");
      requests_rejected_.fetch_add(1);
      poisoned = true;
    }
  }
  if (!poisoned && !buffer.empty() && !stopping_.load(std::memory_order_relaxed) &&
      !session.cancelled()) {
    handle_request_line(conn, buffer);  // unterminated final line counts
  }
  mark_input_closed(session);
}

bool Server::write_all(int fd, const std::string& data, Session& session) {
  std::size_t off = 0;
  while (off < data.size()) {
    if (session.cancelled()) return false;
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      pollfd pfd{fd, POLLOUT, 0};
      (void)::poll(&pfd, 1, kPollMs);
      continue;
    }
    return false;  // broken pipe / hard error
  }
  return true;
}

void Server::writer_loop(Connection* conn) {
  Session& session = *conn->session;
  std::string line;
  while (session.pop_frame(line)) {
    const std::uint64_t ordinal = session.next_frame_ordinal();
    if (options_.fault_injector != nullptr &&
        options_.fault_injector->should_fail("respond", ordinal, 1)) {
      // "respond" fault: the client's pipe broke — tear the connection down;
      // its in-flight request observes the cancel and frames kCancelled.
      session.cancel();
      break;
    }
    line += '\n';
    if (!write_all(conn->fd, line, session)) {
      session.cancel();
      break;
    }
    frames_written_.fetch_add(1);
    sched_cv_.notify_all();  // drained below the bound: session may be eligible
  }
  ::shutdown(conn->fd, SHUT_WR);  // flush-and-close handshake for the client
}

// ---- spool transport --------------------------------------------------------

void Server::spool_loop() {
  using Clock = std::chrono::steady_clock;
  auto next_scan = Clock::now();
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (Clock::now() >= next_scan) {
      scan_spool_dir();
      next_scan = Clock::now() + std::chrono::milliseconds(options_.spool_poll_ms);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(
        std::min<std::uint64_t>(options_.spool_poll_ms, kPollMs)));
  }
}

void Server::scan_spool_dir() {
  std::error_code ec;
  fs::directory_iterator it{options_.spool_dir, ec};
  if (ec) return;
  for (const fs::directory_entry& entry : it) {
    if (stopping_.load(std::memory_order_relaxed)) return;
    std::error_code entry_ec;
    if (!entry.is_regular_file(entry_ec)) continue;
    const fs::path path = entry.path();
    if (path.extension() != ".req") continue;

    // Claim by rename: atomic, and a concurrent daemon instance loses the
    // race cleanly (its rename fails, it moves on).
    const std::string input = path.string();
    const std::string claimed = input + ".claimed";
    std::error_code rename_ec;
    fs::rename(input, claimed, rename_ec);
    if (rename_ec) continue;
    spool_files_.fetch_add(1);

    const std::string base = input.substr(0, input.size() - 4);  // strip ".req"
    auto conn = std::make_unique<Connection>();
    conn->session =
        std::make_shared<Session>(next_session_id_.fetch_add(1) + 1, options_.limits,
                                  &shutdown_);
    conn->spool_claimed = claimed;
    conn->spool_partial = base + ".out.partial";
    conn->spool_out = base + ".out";
    conn->spool_done = input + ".done";
    Connection* raw = add_connection(std::move(conn));
    raw->writer = std::thread([this, raw] { spool_writer_loop(raw); });

    // The spool thread plays reader: enqueue every line, then close input.
    std::ifstream in{claimed};
    std::string line;
    while (std::getline(in, line)) {
      if (stopping_.load(std::memory_order_relaxed) || raw->session->cancelled()) break;
      handle_request_line(raw, line);
    }
    mark_input_closed(*raw->session);
  }
}

void Server::spool_writer_loop(Connection* conn) {
  Session& session = *conn->session;
  std::ofstream out{conn->spool_partial, std::ios::trunc};
  bool healthy = out.is_open();
  if (!healthy) session.cancel();  // nowhere to answer: don't burn compute

  std::string line;
  while (session.pop_frame(line)) {
    const std::uint64_t ordinal = session.next_frame_ordinal();
    if (options_.fault_injector != nullptr &&
        options_.fault_injector->should_fail("respond", ordinal, 1)) {
      session.cancel();
      healthy = false;
      break;
    }
    out << line << '\n';
    out.flush();
    if (!out) {
      session.cancel();
      healthy = false;
      break;
    }
    frames_written_.fetch_add(1);
    sched_cv_.notify_all();
  }
  out.close();

  if (healthy && session.finished_cleanly()) {
    // Seal: answers become NAME.out atomically, input becomes NAME.req.done.
    // A crash or fault instead leaves .claimed/.partial for inspection.
    std::error_code ec;
    fs::rename(conn->spool_partial, conn->spool_out, ec);
    if (!ec) fs::rename(conn->spool_claimed, conn->spool_done, ec);
  }
}

// ---- request intake ---------------------------------------------------------

void Server::reject(Session& session, const std::string& request_id, const std::string& name,
                    scenario::ResultStatus status, const std::string& error) {
  // Best effort: if the session died the frames are moot anyway.
  if (!session.push_frame(error_frame(request_id, name, status, error))) return;
  session.push_frame(done_frame(request_id, 1, 1));
}

void Server::handle_request_line(Connection* conn, const std::string& line) {
  Session& session = *conn->session;
  if (line.find_first_not_of(" \t\r") == std::string::npos) return;  // blank line

  // The arrival ordinal keys the "session" fault site whether or not the
  // line parses — determinism must not depend on request wellformedness.
  const std::uint64_t ordinal = session.next_request_ordinal();

  Request request;
  try {
    request = parse_request(line);
  } catch (const RequestError& e) {
    requests_rejected_.fetch_add(1);
    reject(session, e.request_id(), std::string{}, scenario::ResultStatus::kRejected,
           e.what());
    return;
  }

  if (options_.fault_injector != nullptr) {
    try {
      options_.fault_injector->maybe_fail("session", ordinal, 1);
    } catch (const scenario::InjectedFault& e) {
      requests_rejected_.fetch_add(1);
      reject(session, request.request_id, request.name(),
             scenario::ResultStatus::kRejected, e.what());
      return;
    }
  }

  // Journal dedup only has an identity to key on when the client supplied a
  // request_id — anonymous requests are admitted exactly as before (and are
  // not crash-safe: an id is the unit of exactly-once recovery).
  const bool journaled = journal_.has_value() && !request.request_id.empty();

  enum class Verdict { kQueued, kFull, kStopping, kFollower, kReplay };
  Verdict verdict;
  bool force_queue = false;  // a degraded replay falls back to a fresh run
  bool claimed = false;      // the id was inserted into active_ (and journaled)
  for (;;) {
    {
      std::lock_guard<std::mutex> lock{sched_mutex_};
      if (draining_ || stopping_.load(std::memory_order_relaxed)) {
        verdict = Verdict::kStopping;
      } else if (journaled && active_.count(request.request_id) > 0) {
        // The id is already queued or running: this submission becomes a
        // FOLLOWER of the one active run instead of executing twice.
        followers_[request.request_id].push_back(conn->session);
        ++session.sched.waiting;
        verdict = Verdict::kFollower;
      } else if (journaled && !force_queue &&
                 [this, &request] {
                   const std::optional<JournalRecord> rec = journal_->find(request.request_id);
                   return rec && (rec->state == JournalState::kDone ||
                                  rec->state == JournalState::kFailed);
                 }()) {
        verdict = Verdict::kReplay;
      } else if (session.sched.pending.size() >= options_.limits.max_queued_requests) {
        verdict = Verdict::kFull;
      } else {
        // Claim the id now; the pending push happens after the journal
        // append below so no worker can start an unjournaled request.
        if (journaled) {
          active_.insert(request.request_id);
          claimed = true;
        }
        verdict = Verdict::kQueued;
      }
    }
    if (verdict != Verdict::kReplay) break;
    // Terminal id: answer from the frame spool — exactly-once across kills.
    const std::vector<std::string> frames = journal_->read_frames(request.request_id);
    if (!frames.empty() && frame_is_done(frames.back())) {
      requests_deduped_.fetch_add(1);
      for (const std::string& frame : frames) {
        if (!session.push_frame(frame)) break;
      }
      return;
    }
    // The journal says done but the frame spool cannot prove it (lost or
    // torn): fall back to a fresh run — it reproduces the same answer.
    force_queue = true;
  }

  if (verdict == Verdict::kQueued) {
    if (journaled) {
      // The durable accept happens OUTSIDE the scheduler lock (it fsyncs);
      // the active_ claim above keeps the id's admission single-flight.
      journal_->record_accepted(request.request_id,
                                conn->spool_claimed.empty() ? "socket" : "spool", line);
    }
    std::lock_guard<std::mutex> lock{sched_mutex_};
    if (draining_ || stopping_.load(std::memory_order_relaxed)) {
      // The daemon started draining between the two critical sections: the
      // request must not enter pending (the drain already swept it).
      verdict = Verdict::kStopping;
    } else {
      if (session.sched.pending.empty() && !session.sched.in_flight) {
        // Re-joining the round-robin after idling: normalise to the busiest
        // peers' floor so a long-idle session cannot bank priority.
        std::uint64_t min_active = std::numeric_limits<std::uint64_t>::max();
        for (const auto& c : connections_) {
          const Session::Sched& peer = c->session->sched;
          if (!peer.in_flight && peer.pending.empty()) continue;
          min_active = std::min(min_active, peer.vtime);
        }
        if (min_active != std::numeric_limits<std::uint64_t>::max()) {
          session.sched.vtime = std::max(session.sched.vtime, min_active);
        }
      }
      session.sched.pending.push_back(std::move(request));
    }
  }

  switch (verdict) {
    case Verdict::kQueued:
      requests_accepted_.fetch_add(1);
      sched_cv_.notify_one();
      break;
    case Verdict::kFollower:
      requests_deduped_.fetch_add(1);
      break;  // frames arrive when the active run settles
    case Verdict::kFull:
      requests_rejected_.fetch_add(1);
      reject(session, request.request_id, request.name(),
             scenario::ResultStatus::kRejected,
             "request queue full (max_queued_requests)");
      break;
    case Verdict::kStopping: {
      std::vector<std::shared_ptr<Session>> followers;
      if (claimed) {
        // The id was claimed (and its accept journaled) before the drain
        // began: release the claim, journal the cancel, settle anyone who
        // registered as a follower in the window.
        {
          std::lock_guard<std::mutex> lock{sched_mutex_};
          active_.erase(request.request_id);
          const auto it = followers_.find(request.request_id);
          if (it != followers_.end()) {
            followers = std::move(it->second);
            followers_.erase(it);
          }
        }
        journal_->record_state(request.request_id, JournalState::kCancelled);
      }
      requests_cancelled_.fetch_add(1);
      reject(session, request.request_id, request.name(),
             scenario::ResultStatus::kCancelled, "daemon stopping");
      for (const std::shared_ptr<Session>& follower : followers) {
        reject(*follower, request.request_id, request.name(),
               scenario::ResultStatus::kCancelled, "daemon stopping");
        std::lock_guard<std::mutex> lock{sched_mutex_};
        --follower->sched.waiting;
        maybe_finish_locked(*follower);
      }
      break;
    }
    case Verdict::kReplay:
      break;  // unreachable: handled in the loop
  }
}

void Server::mark_input_closed(Session& session) {
  std::lock_guard<std::mutex> lock{sched_mutex_};
  session.sched.input_closed = true;
  maybe_finish_locked(session);
}

// ---- scheduling + execution -------------------------------------------------

void Server::maybe_finish_locked(Session& session) {
  Session::Sched& sched = session.sched;
  if (sched.finished) return;
  if (!sched.input_closed || !sched.pending.empty() || sched.in_flight ||
      sched.waiting > 0) {
    return;
  }
  sched.finished = true;
  session.finish_output();
}

bool Server::pick_next_locked(std::shared_ptr<Session>& session, Request& request,
                              std::vector<DroppedRequest>& dropped) {
  Connection* best = nullptr;
  for (const auto& conn : connections_) {
    Session& s = *conn->session;
    if (s.sched.in_flight || s.sched.pending.empty()) continue;
    if (s.cancelled()) {
      // Dead connection: nobody will read the answers — drop its queue.  The
      // journal bookkeeping (cancel events, follower settlement) happens in
      // cancel_dropped(), outside this lock: journal appends fsync.
      while (!s.sched.pending.empty()) {
        dropped.push_back({conn->session, std::move(s.sched.pending.front())});
        s.sched.pending.pop_front();
      }
      maybe_finish_locked(s);
      continue;
    }
    if (!s.output_has_room()) continue;  // backpressure: skip, never block here
    if (best == nullptr || s.sched.vtime < best->session->sched.vtime) best = conn.get();
  }
  if (best == nullptr) return false;

  Session& s = *best->session;
  request = std::move(s.sched.pending.front());
  s.sched.pending.pop_front();
  s.sched.in_flight = true;
  s.sched.vtime = saturating_add(s.sched.vtime, request_cost(request));
  ++in_flight_total_;
  session = best->session;
  return true;
}

void Server::worker_loop() {
  for (;;) {
    std::shared_ptr<Session> session;
    Request request;
    std::vector<DroppedRequest> dropped;
    bool have = false;
    {
      std::unique_lock<std::mutex> lock{sched_mutex_};
      for (;;) {
        if (workers_exit_.load(std::memory_order_relaxed)) return;
        if (!draining_) have = pick_next_locked(session, request, dropped);
        if (have || !dropped.empty()) break;
        sched_cv_.wait_for(lock, kPollSlice);
      }
    }
    cancel_dropped(dropped, "connection closed: request cancelled before execution");
    if (!have) continue;

    const std::string request_id = request.request_id;
    const bool journaled = journal_.has_value() && !request_id.empty();
    execute(session, std::move(request));

    std::vector<std::shared_ptr<Session>> followers;
    {
      std::lock_guard<std::mutex> lock{sched_mutex_};
      session->sched.in_flight = false;
      --in_flight_total_;
      if (journaled) {
        // Release the id atomically with popping its followers: a submission
        // arriving after this block sees the settled journal, never a lost
        // follower slot.
        active_.erase(request_id);
        const auto it = followers_.find(request_id);
        if (it != followers_.end()) {
          followers = std::move(it->second);
          followers_.erase(it);
        }
      }
      maybe_finish_locked(*session);
    }
    if (journaled) settle_followers(request_id, std::move(followers));
    sched_cv_.notify_all();
    drain_cv_.notify_all();
  }
}

void Server::settle_followers(const std::string& request_id,
                              std::vector<std::shared_ptr<Session>> followers) {
  if (followers.empty()) return;
  const std::vector<std::string> frames = journal_->read_frames(request_id);
  const bool complete = !frames.empty() && frame_is_done(frames.back());
  for (const std::shared_ptr<Session>& follower : followers) {
    if (complete) {
      for (const std::string& frame : frames) {
        if (!follower->push_frame(frame)) break;
      }
    } else {
      // The active run settled without a done frame (cancelled): tell the
      // follower the truth instead of replaying a partial answer.
      reject(*follower, request_id, std::string{}, scenario::ResultStatus::kCancelled,
             "deduplicated request did not complete");
    }
    std::lock_guard<std::mutex> lock{sched_mutex_};
    --follower->sched.waiting;
    maybe_finish_locked(*follower);
  }
  sched_cv_.notify_all();
}

void Server::cancel_dropped(std::vector<DroppedRequest>& dropped, const std::string& reason) {
  for (DroppedRequest& item : dropped) {
    requests_cancelled_.fetch_add(1);
    const bool journaled = journal_.has_value() && !item.request.request_id.empty();
    std::vector<std::shared_ptr<Session>> followers;
    if (journaled) {
      {
        std::lock_guard<std::mutex> lock{sched_mutex_};
        active_.erase(item.request.request_id);
        const auto it = followers_.find(item.request.request_id);
        if (it != followers_.end()) {
          followers = std::move(it->second);
          followers_.erase(it);
        }
      }
      journal_->record_state(item.request.request_id, JournalState::kCancelled);
    }
    reject(*item.session, item.request.request_id, item.request.name(),
           scenario::ResultStatus::kCancelled, reason);
    for (const std::shared_ptr<Session>& follower : followers) {
      reject(*follower, item.request.request_id, item.request.name(),
             scenario::ResultStatus::kCancelled, reason);
      std::lock_guard<std::mutex> lock{sched_mutex_};
      --follower->sched.waiting;
      maybe_finish_locked(*follower);
    }
  }
}

void Server::prepare_recovery(Request& request, std::vector<std::string>& prefix,
                              std::size_t& resume_from, std::size_t& prefix_failed,
                              bool& already_complete) {
  const std::string& id = request.request_id;
  std::vector<std::string> frames = journal_->read_frames(id);

  if (!frames.empty() && frame_is_done(frames.back())) {
    // A frame spool ending with its done frame IS the complete answer,
    // whatever the journal claims — the crash may have hit between the done
    // frame landing and the terminal journal event (or between checkpoint
    // removal and the done event).  Replaying it byte for byte is the
    // recovery; reconcile the journal to match.
    already_complete = true;
    const std::optional<JournalRecord> record = journal_->find(id);
    if (!record || !is_terminal(record->state)) {
      std::uint64_t results = 1;
      std::uint64_t failed = 0;
      try {
        const json::JsonValue root = json::parse(frames.back(), "done frame");
        results = json::get_uint(root, "results");
        failed = json::get_uint(root, "failed");
      } catch (const std::exception&) {
      }
      journal_->record_state(id, JournalState::kDone, results, failed);
    }
    journal_->close_frames(id);
    prefix = std::move(frames);
    return;
  }

  if (!request.is_sweep) {
    // Scenarios are single-shot: any partial frames are simply re-derived.
    journal_->reset_frames(id);
    return;
  }

  // Sweep resume: the fingerprint must be computed over the spec EXACTLY as
  // it will run (execute() forces the serial lane), or a checkpoint written
  // by this daemon would never match on restart.
  request.sweep.base.num_threads = 1;
  const std::uint64_t fingerprint = scenario::sweep_fingerprint(request.sweep);
  std::optional<scenario::SweepCheckpoint> checkpoint;
  try {
    checkpoint = scenario::load_sweep_checkpoint(journal_->checkpoint_path(id));
  } catch (const std::exception&) {
    checkpoint.reset();  // corrupt token: dropped (fresh run), never fatal
  }
  const std::uint64_t grid = request.sweep.size();
  if (checkpoint && checkpoint->spec_fingerprint == fingerprint &&
      checkpoint->next_index > 0 && checkpoint->next_index <= grid &&
      checkpoint->next_index <= frames.size()) {
    // Everything below next_index was flushed before the checkpoint was
    // written; frames past it may exist (the killed run got into the next
    // chunk) but were never acknowledged as a checkpoint — cut back to the
    // boundary and re-emit only the tail.
    const std::size_t keep = static_cast<std::size_t>(checkpoint->next_index);
    journal_->truncate_frames(id, keep);
    frames.resize(keep);
    for (const std::string& frame : frames) {
      try {
        const json::JsonValue root = json::parse(frame, "recovered frame");
        if (json::get_string(root, "status") !=
            scenario::to_string(scenario::ResultStatus::kOk)) {
          ++prefix_failed;
        }
      } catch (const std::exception&) {
        ++prefix_failed;
      }
    }
    prefix = std::move(frames);
    resume_from = keep;
    sweeps_resumed_.fetch_add(1);
    std::fprintf(stderr,
                 "arsf_serve: resuming sweep request '%s' at grid index %zu/%llu\n",
                 id.c_str(), keep, static_cast<unsigned long long>(grid));
  } else {
    journal_->reset_frames(id);
  }
}

void Server::execute(const std::shared_ptr<Session>& session, Request request) {
  const bool journaled = journal_.has_value() && !request.request_id.empty();
  const std::string id = request.request_id;

  std::vector<std::string> prefix;
  std::size_t resume_from = 0;
  std::size_t prefix_failed = 0;
  if (journaled) {
    bool already_complete = false;
    prepare_recovery(request, prefix, resume_from, prefix_failed, already_complete);
    if (already_complete) {
      for (const std::string& frame : prefix) {
        if (!session->push_frame(frame)) break;
      }
      requests_completed_.fetch_add(1);
      return;
    }
    // Replay the recovered prefix to this session before resuming the run,
    // so the client's stream is byte-identical to an uninterrupted one.
    for (const std::string& frame : prefix) {
      if (!session->push_frame(frame)) {
        // Session died during the replay: the frames stay spooled for the
        // next attempt; journal the cancel.
        journal_->record_state(id, JournalState::kCancelled);
        journal_->close_frames(id);
        requests_cancelled_.fetch_add(1);
        return;
      }
    }
    journal_->record_state(id, JournalState::kRunning);
  }

  RequestSink sink{request.request_id,
                   [this, &session, &id, journaled](const std::string& line) {
                     // Durability first: the frame spool must always be a
                     // superset of what any client has seen.
                     if (journaled) journal_->append_frame(id, line);
                     if (!session->push_frame(line)) {
                       // Connection gone or daemon hard-stopping: abort the
                       // producing run through the sink-exception path.
                       throw CancelledError(false);
                     }
                   }};
  sink.resume_counts(prefix.size(), prefix_failed);

  scenario::RunnerOptions runner_options;
  // One request = one serial execution lane: the scenario's engine fan-out is
  // forced to 1 so a worker blocked on backpressure can never sit on the
  // shared engine ThreadPool; the daemon's parallelism is requests-across-
  // workers.  num_threads never reaches a frame or a cache key, so the
  // answers stay byte-identical to any offline thread count.
  runner_options.num_threads = 1;
  runner_options.capture_errors = true;
  runner_options.default_deadline_ms = options_.default_deadline_ms;
  runner_options.admission_budget = options_.admission_budget;
  runner_options.degrade = options_.degrade;
  runner_options.retry = options_.retry;
  runner_options.cancel = session->token();
  runner_options.fault_injector = options_.fault_injector;
  runner_options.cache = cache_ ? &*cache_ : nullptr;

  try {
    const scenario::Runner runner{runner_options};
    if (request.is_sweep) {
      request.sweep.base.num_threads = 1;
      scenario::SweepRunOptions sweep_options;
      sweep_options.chunk_scenarios = options_.chunk_scenarios;
      if (journaled) {
        // Checkpoint next to the frame spool after every flushed chunk; a
        // restart resumes at the recorded boundary (prepare_recovery above).
        sweep_options.checkpoint_path = journal_->checkpoint_path(id);
        sweep_options.checkpoint_output = journal_->frame_path(id);
        sweep_options.resume_from = resume_from;
        sweep_options.fault_injector = options_.fault_injector;
      }
      scenario::run_sweep(request.sweep, runner, sink, sweep_options);
    } else {
      request.scenario.num_threads = 1;
      sink.on_result(0, runner.run(request.scenario));
      sink.on_finish(1);
    }
    if (journaled) {
      journal_->sync_frames(id);
      journal_->record_state(id, JournalState::kDone, sink.results(), sink.failed());
      journal_->close_frames(id);
    }
    requests_completed_.fetch_add(1);
  } catch (const CancelledError&) {
    if (journaled) {
      journal_->record_state(id, JournalState::kCancelled);
      journal_->close_frames(id);
    }
    requests_cancelled_.fetch_add(1);
  } catch (const std::exception& e) {
    // Sweep materialisation / sink failures that are not cancellation: close
    // the request with a structured error frame (best effort — the session
    // may be gone).
    requests_failed_.fetch_add(1);
    const std::string error = error_frame(request.request_id, request.name(),
                                          scenario::ResultStatus::kFailed, e.what());
    const std::string done =
        done_frame(request.request_id, sink.results() + 1, sink.failed() + 1);
    if (journaled) {
      // Spool the failure frames too, so the file ends with its done frame
      // and a re-submission replays the failure instead of re-executing.
      journal_->append_frame(id, error);
      journal_->append_frame(id, done);
      journal_->sync_frames(id);
      journal_->record_state(id, JournalState::kFailed, sink.results() + 1,
                            sink.failed() + 1);
      journal_->close_frames(id);
    }
    if (session->push_frame(error)) session->push_frame(done);
  }
}

// ---- shutdown ---------------------------------------------------------------

void Server::drain_queued_requests() {
  std::vector<DroppedRequest> dropped;
  {
    std::lock_guard<std::mutex> lock{sched_mutex_};
    draining_ = true;
    for (const auto& conn : connections_) {
      Session& session = *conn->session;
      session.sched.input_closed = true;
      while (!session.sched.pending.empty()) {
        dropped.push_back({conn->session, std::move(session.sched.pending.front())});
        session.sched.pending.pop_front();
      }
      // maybe_finish deliberately NOT here: the kCancelled frames below must
      // reach the output queue before it is sealed.
    }
  }
  // Journals the cancels (cancelled is terminal: the next start does NOT
  // re-queue these — a client re-submits to re-run) and settles followers.
  cancel_dropped(dropped, "daemon stopping: request cancelled before execution");
  {
    std::lock_guard<std::mutex> lock{sched_mutex_};
    for (const auto& conn : connections_) maybe_finish_locked(*conn->session);
  }
}

}  // namespace arsf::serve
