#include "serve/protocol.h"

#include <algorithm>

#include "scenario/json.h"
#include "sim/engine/saturating.h"

namespace arsf::serve {

namespace json = scenario::json;
using sim::engine::saturating_add;
using sim::engine::saturating_mul;

Request parse_request(const std::string& line) {
  json::JsonValue root;
  try {
    root = json::parse(line, "request");
  } catch (const std::exception& e) {
    throw RequestError("", e.what());
  }
  if (root.type != json::JsonValue::Type::kObject) {
    throw RequestError("", "request JSON: expected one object per line");
  }

  // Pull the transport-level request_id OUT of the object before handing it
  // to the scenario/sweep builders, whose strict unknown-key rejection would
  // otherwise (correctly) refuse it.
  std::string request_id;
  bool found = false;
  for (auto it = root.object.begin(); it != root.object.end(); ++it) {
    if (it->first != "request_id") continue;
    if (it->second.type != json::JsonValue::Type::kString) {
      throw RequestError("", "request JSON: request_id must be a string");
    }
    request_id = it->second.string;
    root.object.erase(it);
    found = true;
    break;
  }
  if (!found || request_id.empty()) {
    throw RequestError(request_id, "request JSON: missing or empty request_id");
  }

  Request request;
  request.request_id = request_id;
  try {
    if (root.has("base")) {
      request.is_sweep = true;
      request.sweep = scenario::sweep_from_value(root);
      request.sweep.validate();
    } else {
      request.scenario = scenario::scenario_from_value(root);
      request.scenario.validate();
    }
  } catch (const std::exception& e) {
    throw RequestError(request_id, e.what());
  }
  return request;
}

std::uint64_t request_cost(const Request& request) noexcept {
  std::uint64_t total = 0;
  try {
    if (!request.is_sweep) {
      total = scenario::estimated_worlds(request.scenario);
    } else {
      const std::uint64_t size = request.sweep.size();
      if (size <= 64) {
        // Small grid: price every point exactly (an invalid point simply
        // contributes nothing — the Runner will frame it when it runs).
        for (std::uint64_t i = 0; i < size; ++i) {
          try {
            total = saturating_add(total, scenario::estimated_worlds(request.sweep.at(i)));
          } catch (const std::exception&) {
          }
        }
      } else {
        // Huge grid: extrapolate from the base template.  This is a
        // round-robin WEIGHT, not an admission decision — per-point
        // admission control still runs inside the Runner.
        total = saturating_mul(scenario::estimated_worlds(request.sweep.base), size);
      }
    }
  } catch (const std::exception&) {
    total = 0;
  }
  return std::max<std::uint64_t>(1, total);
}

std::string result_frame(const std::string& request_id, std::size_t index,
                         const scenario::ScenarioResult& result) {
  // Splice the id in as the first field of the offline frame, so removing
  // that one field recovers scenario::to_json(index, result) byte for byte.
  const std::string rendered = scenario::to_json(index, result);
  std::string frame = "{\"request_id\":\"" + json::escape(request_id) + "\",";
  frame.append(rendered, 1, rendered.size() - 1);
  return frame;
}

std::string done_frame(const std::string& request_id, std::size_t results,
                       std::size_t failed) {
  json::JsonBuilder builder;
  builder.field("request_id", request_id);
  builder.field("done", true);
  builder.field("results", static_cast<std::uint64_t>(results));
  builder.field("failed", static_cast<std::uint64_t>(failed));
  return builder.render();
}

std::string error_frame(const std::string& request_id, const std::string& scenario_name,
                        scenario::ResultStatus status, const std::string& error) {
  scenario::ScenarioResult result;
  result.scenario = scenario_name;
  result.status = status;
  result.error = error;
  return result_frame(request_id, 0, result);
}

std::optional<std::string> strip_request_id(const std::string& frame) {
  static constexpr const char kPrefix[] = "{\"request_id\":\"";
  static constexpr std::size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (frame.compare(0, kPrefixLen, kPrefix) != 0) return std::nullopt;
  // Find the id's closing quote, honouring backslash escapes.
  std::size_t i = kPrefixLen;
  while (i < frame.size() && frame[i] != '"') {
    i += frame[i] == '\\' ? 2 : 1;
  }
  if (i + 1 >= frame.size() || frame[i] != '"' || frame[i + 1] != ',') return std::nullopt;
  return "{" + frame.substr(i + 2);
}

std::optional<std::string> frame_request_id(const std::string& frame) {
  // Full parse instead of a prefix scan: the id must come back UNESCAPED,
  // exactly as the client chose it.
  try {
    const json::JsonValue root = json::parse(frame, "frame");
    if (root.type != json::JsonValue::Type::kObject) return std::nullopt;
    for (const auto& [key, value] : root.object) {
      if (key == "request_id" && value.type == json::JsonValue::Type::kString) {
        return value.string;
      }
    }
  } catch (const std::exception&) {
  }
  return std::nullopt;
}

}  // namespace arsf::serve
