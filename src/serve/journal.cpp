#include "serve/journal.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "scenario/faultplan.h"
#include "scenario/json.h"
#include "serve/protocol.h"
#include "support/fnv.h"

namespace arsf::serve {

namespace fs = std::filesystem;
namespace json = scenario::json;

namespace {

bool write_fully(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<JournalState> state_from_event(const std::string& event) {
  if (event == "running") return JournalState::kRunning;
  if (event == "done") return JournalState::kDone;
  if (event == "failed") return JournalState::kFailed;
  if (event == "cancelled") return JournalState::kCancelled;
  return std::nullopt;
}

std::string accepted_event(const JournalRecord& record) {
  json::JsonBuilder builder;
  builder.field("event", "accepted");
  builder.field("request_id", record.request_id);
  builder.field("origin", record.origin);
  builder.field("line", record.line);
  return builder.render();
}

std::string state_event(const JournalRecord& record) {
  json::JsonBuilder builder;
  builder.field("event", to_string(record.state));
  builder.field("request_id", record.request_id);
  builder.field("results", record.results);
  builder.field("failed", record.failed);
  return builder.render();
}

/// Complete (newline-terminated), parseable lines of a JSONL file, stopping
/// at the first torn or non-JSON line — the shared tail discipline of the
/// journal and the frame spool.
std::vector<std::string> read_complete_lines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in{path, std::ios::binary};
  if (!in) return lines;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) break;  // torn tail: dropped
    std::string line = text.substr(start, nl - start);
    start = nl + 1;
    if (line.empty()) continue;
    try {
      (void)json::parse(line, "frame spool");
    } catch (const std::exception&) {
      break;  // everything past a corrupt line is untrustworthy
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

}  // namespace

std::string to_string(JournalState state) {
  switch (state) {
    case JournalState::kAccepted:
      return "accepted";
    case JournalState::kRunning:
      return "running";
    case JournalState::kDone:
      return "done";
    case JournalState::kFailed:
      return "failed";
    case JournalState::kCancelled:
      return "cancelled";
  }
  return "accepted";
}

bool is_terminal(JournalState state) noexcept {
  return state == JournalState::kDone || state == JournalState::kFailed ||
         state == JournalState::kCancelled;
}

bool frame_is_done(const std::string& frame) {
  const std::optional<std::string> stripped = strip_request_id(frame);
  return stripped.has_value() && stripped->rfind("{\"done\":true,", 0) == 0;
}

Journal::Journal(std::string state_dir)
    : dir_(std::move(state_dir)),
      path_(dir_ + "/journal.jsonl"),
      frames_dir_(dir_ + "/frames") {}

Journal::~Journal() {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (fd_ >= 0) ::close(fd_);
  for (auto& [id, fd] : frame_fds_) {
    if (fd >= 0) ::close(fd);
  }
}

JournalRecord& Journal::upsert_locked(const std::string& request_id) {
  const auto it = index_.find(request_id);
  if (it != index_.end()) return records_[it->second];
  index_.emplace(request_id, records_.size());
  records_.push_back(JournalRecord{});
  records_.back().request_id = request_id;
  return records_.back();
}

JournalLoadReport Journal::open() {
  const std::lock_guard<std::mutex> lock{mutex_};
  std::error_code ec;
  fs::create_directories(frames_dir_, ec);
  if (ec) {
    throw std::runtime_error("Journal: cannot create state dir '" + dir_ +
                             "': " + ec.message());
  }

  JournalLoadReport report;
  std::string text;
  {
    std::ifstream in{path_, std::ios::binary};
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      text = buffer.str();
    }
  }
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      ++report.rejected;  // torn tail: a crash mid-append — dropped, counted
      break;
    }
    const std::string line = text.substr(start, nl - start);
    start = nl + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      const json::JsonValue root = json::parse(line, "journal");
      if (root.type != json::JsonValue::Type::kObject) {
        throw std::invalid_argument("journal: expected one event object per line");
      }
      const std::string event = json::get_string(root, "event");
      if (event == "accepted") {
        json::reject_unknown_keys(root, {"event", "request_id", "origin", "line"},
                                  "journal");
        const std::string id = json::get_string(root, "request_id");
        if (id.empty()) throw std::invalid_argument("journal: empty request_id");
        JournalRecord& rec = upsert_locked(id);
        rec.state = JournalState::kAccepted;
        rec.origin = json::get_string(root, "origin");
        rec.line = json::get_string(root, "line");
        rec.results = 0;
        rec.failed = 0;
      } else if (const std::optional<JournalState> state = state_from_event(event)) {
        json::reject_unknown_keys(root, {"event", "request_id", "results", "failed"},
                                  "journal");
        const std::string id = json::get_string(root, "request_id");
        if (id.empty()) throw std::invalid_argument("journal: empty request_id");
        JournalRecord& rec = upsert_locked(id);
        rec.state = *state;
        rec.results = json::get_uint(root, "results");
        rec.failed = json::get_uint(root, "failed");
      } else {
        throw std::invalid_argument("journal: unknown event '" + event + "'");
      }
    } catch (const std::exception&) {
      ++report.rejected;  // corrupt line: never replayed, never fatal
    }
  }
  report.records = records_.size();

  compact_locked();

  // Frame/checkpoint files that belong to no live record are leftovers of a
  // deleted journal — remove them so a stale spool can never replay into a
  // future request that happens to reuse the id.
  std::unordered_set<std::string> keep;
  keep.reserve(records_.size());
  for (const JournalRecord& rec : records_) keep.insert(frame_file_stem(rec.request_id));
  std::error_code iter_ec;
  fs::directory_iterator it{frames_dir_, iter_ec};
  if (!iter_ec) {
    for (const fs::directory_entry& entry : it) {
      const std::string ext = entry.path().extension().string();
      if (ext != ".jsonl" && ext != ".progress") continue;
      if (keep.count(entry.path().stem().string()) > 0) continue;
      std::error_code remove_ec;
      fs::remove(entry.path(), remove_ec);
    }
  }
  return report;
}

void Journal::compact() {
  const std::lock_guard<std::mutex> lock{mutex_};
  compact_locked();
}

void Journal::compact_locked() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  std::ostringstream text;
  for (const JournalRecord& rec : records_) {
    text << accepted_event(rec) << '\n';
    if (rec.state != JournalState::kAccepted) text << state_event(rec) << '\n';
  }
  // Write-then-rename (the sweep-checkpoint / cache-store discipline): a
  // kill mid-compaction leaves the previous journal intact.
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out{tmp, std::ios::trunc | std::ios::binary};
    out << text.str();
    out.flush();
    if (!out) throw std::runtime_error("Journal: cannot write " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path_, ec);
  if (ec) {
    throw std::runtime_error("Journal: cannot rename " + tmp + " to " + path_ + ": " +
                             ec.message());
  }
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) {
    throw std::runtime_error("Journal: cannot reopen " + path_ + " for append: " +
                             std::strerror(errno));
  }
}

void Journal::append_event_locked(const std::string& line) {
  ++append_ordinal_;
  if (injector_ != nullptr && injector_->should_fail("journal", append_ordinal_, 1)) {
    // Injected append failure: durability degrades (this event would be lost
    // by a crash), the daemon's in-memory state and the request carry on.
    ++appends_failed_;
    return;
  }
  if (fd_ < 0) {
    ++appends_failed_;
    return;
  }
  const std::string data = line + '\n';
  if (!write_fully(fd_, data.data(), data.size())) {
    ++appends_failed_;
    return;
  }
  ::fsync(fd_);
}

void Journal::durable_event_locked() {
  ++durable_ordinal_;
  if (injector_ != nullptr && injector_->should_fail("crash", durable_ordinal_, 1)) {
    // The kill-and-recover harness's seeded kill point: the event above is
    // durable, then the daemon dies as hard as a machine can — no unwinding,
    // no destructors, no flushes.
    ::kill(::getpid(), SIGKILL);
  }
}

void Journal::record_accepted(const std::string& request_id, const std::string& origin,
                              const std::string& line) {
  const std::lock_guard<std::mutex> lock{mutex_};
  JournalRecord& rec = upsert_locked(request_id);
  rec.state = JournalState::kAccepted;
  rec.origin = origin;
  rec.line = line;
  rec.results = 0;
  rec.failed = 0;
  append_event_locked(accepted_event(rec));
  durable_event_locked();
}

void Journal::record_state(const std::string& request_id, JournalState state,
                           std::uint64_t results, std::uint64_t failed) {
  const std::lock_guard<std::mutex> lock{mutex_};
  JournalRecord& rec = upsert_locked(request_id);
  rec.state = state;
  rec.results = results;
  rec.failed = failed;
  append_event_locked(state_event(rec));
  durable_event_locked();
}

std::optional<JournalRecord> Journal::find(const std::string& request_id) const {
  const std::lock_guard<std::mutex> lock{mutex_};
  const auto it = index_.find(request_id);
  if (it == index_.end()) return std::nullopt;
  return records_[it->second];
}

std::vector<JournalRecord> Journal::incomplete() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  std::vector<JournalRecord> result;
  for (const JournalRecord& rec : records_) {
    if (!is_terminal(rec.state)) result.push_back(rec);
  }
  return result;
}

std::size_t Journal::size() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return records_.size();
}

std::uint64_t Journal::appends_failed() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return appends_failed_;
}

// ---- frame spool ------------------------------------------------------------

std::string Journal::frame_file_stem(const std::string& request_id) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(support::fnv1a(request_id)));
  return std::string{buffer};
}

std::string Journal::frame_path(const std::string& request_id) const {
  return frames_dir_ + "/" + frame_file_stem(request_id) + ".jsonl";
}

std::string Journal::checkpoint_path(const std::string& request_id) const {
  return frames_dir_ + "/" + frame_file_stem(request_id) + ".progress";
}

int Journal::frame_fd_locked(const std::string& request_id) {
  const auto it = frame_fds_.find(request_id);
  if (it != frame_fds_.end()) return it->second;
  const int fd = ::open(frame_path(request_id).c_str(),
                        O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  frame_fds_.emplace(request_id, fd);
  return fd;
}

void Journal::append_frame(const std::string& request_id, const std::string& frame) {
  const std::lock_guard<std::mutex> lock{mutex_};
  const int fd = frame_fd_locked(request_id);
  if (fd < 0) {
    ++appends_failed_;
  } else {
    const std::string data = frame + '\n';
    if (!write_fully(fd, data.data(), data.size())) ++appends_failed_;
  }
  durable_event_locked();
}

void Journal::sync_frames(const std::string& request_id) {
  const std::lock_guard<std::mutex> lock{mutex_};
  const auto it = frame_fds_.find(request_id);
  if (it != frame_fds_.end() && it->second >= 0) ::fsync(it->second);
}

void Journal::close_frames(const std::string& request_id) {
  const std::lock_guard<std::mutex> lock{mutex_};
  const auto it = frame_fds_.find(request_id);
  if (it != frame_fds_.end()) {
    if (it->second >= 0) ::close(it->second);
    frame_fds_.erase(it);
  }
}

std::vector<std::string> Journal::read_frames(const std::string& request_id) const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return read_complete_lines(frame_path(request_id));
}

void Journal::truncate_frames(const std::string& request_id, std::size_t keep) {
  const std::lock_guard<std::mutex> lock{mutex_};
  const auto it = frame_fds_.find(request_id);
  if (it != frame_fds_.end()) {
    if (it->second >= 0) ::close(it->second);
    frame_fds_.erase(it);  // the rename below would orphan the cached fd
  }
  const std::string path = frame_path(request_id);
  if (keep == 0) {
    std::error_code ec;
    fs::remove(path, ec);
    return;
  }
  std::vector<std::string> lines = read_complete_lines(path);
  if (lines.size() > keep) lines.resize(keep);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out{tmp, std::ios::trunc | std::ios::binary};
    for (const std::string& line : lines) out << line << '\n';
    out.flush();
    if (!out) return;  // keep the old (longer) file rather than lose frames
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
}

void Journal::reset_frames(const std::string& request_id) {
  truncate_frames(request_id, 0);
  const std::lock_guard<std::mutex> lock{mutex_};
  std::error_code ec;
  fs::remove(checkpoint_path(request_id), ec);
}

}  // namespace arsf::serve
