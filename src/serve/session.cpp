#include "serve/session.h"

#include <chrono>

namespace arsf::serve {

namespace {
// Bound on every blocking wait: the waits poll the cancel token at this
// cadence instead of trusting wake-ups alone, so a parent (daemon) cancel or
// an armed drain deadline — neither of which knows this session's condition
// variables — still unblocks them promptly.
constexpr std::chrono::milliseconds kPollSlice{20};
}  // namespace

bool Session::push_frame(const std::string& line) {
  std::unique_lock<std::mutex> lock{mutex_};
  for (;;) {
    if (token_.cancelled()) return false;
    if (finished_) return false;
    if (queue_.size() < limits_.max_output_frames) break;
    space_cv_.wait_for(lock, kPollSlice);
  }
  queue_.push_back(line);
  ++frames_pushed_;
  frame_cv_.notify_one();
  return true;
}

bool Session::pop_frame(std::string& line) {
  std::unique_lock<std::mutex> lock{mutex_};
  for (;;) {
    if (token_.cancelled()) return false;
    if (!queue_.empty()) {
      line = std::move(queue_.front());
      queue_.pop_front();
      space_cv_.notify_all();
      return true;
    }
    if (finished_) return false;
    frame_cv_.wait_for(lock, kPollSlice);
  }
}

void Session::finish_output() {
  {
    std::lock_guard<std::mutex> lock{mutex_};
    finished_ = true;
  }
  frame_cv_.notify_all();
  space_cv_.notify_all();
}

void Session::cancel() noexcept {
  token_.cancel();
  // Wake both sides; the queue content is abandoned (the transport is gone
  // or the daemon is hard-stopping, either way nobody will read it).
  frame_cv_.notify_all();
  space_cv_.notify_all();
}

bool Session::finished_cleanly() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return finished_ && !token_.cancelled();
}

bool Session::output_has_room() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return queue_.size() < limits_.max_output_frames;
}

std::size_t Session::frames_pushed() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return frames_pushed_;
}

}  // namespace arsf::serve
